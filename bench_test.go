package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/webtable"
	"repro/internal/world"
)

// benchSuite is shared across benchmarks so world generation and model
// training are paid once; each benchmark then measures regenerating its
// table (including the experiment runs the table needs, via the suite's
// caches for setup shared with other tables).
var (
	benchOnce sync.Once
	benchS    *report.Suite
)

func suite() *report.Suite {
	benchOnce.Do(func() {
		benchS = report.NewSuite(report.Options{WorldScale: 0.15, CorpusScale: 0.08, Seed: 1})
	})
	return benchS
}

// BenchmarkTable01 regenerates Table 1 (instances and facts per class).
func BenchmarkTable01(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Table1(context.Background())
		if err != nil || len(got.Rows) != 3 {
			b.Fatal("bad table 1")
		}
	}
}

// BenchmarkTable02 regenerates Table 2 (property densities).
func BenchmarkTable02(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Table2(context.Background())
		if err != nil || len(got.Rows) == 0 {
			b.Fatal("bad table 2")
		}
	}
}

// BenchmarkTable03 regenerates Table 3 (corpus characteristics).
func BenchmarkTable03(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Table3(context.Background())
		if err != nil || len(got.Rows) != 2 {
			b.Fatal("bad table 3")
		}
	}
}

// BenchmarkTable04 regenerates Table 4 (tables and value correspondences).
func BenchmarkTable04(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Table4(context.Background())
		if err != nil || len(got.Rows) != 3 {
			b.Fatal("bad table 4")
		}
	}
}

// BenchmarkTable05 regenerates Table 5 (gold standard overview).
func BenchmarkTable05(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Table5(context.Background())
		if err != nil || len(got.Rows) != 3 {
			b.Fatal("bad table 5")
		}
	}
}

// BenchmarkTable06 regenerates Table 6 (schema matching by iteration).
func BenchmarkTable06(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Table6Data(context.Background())
		if err != nil || len(got) != 3 {
			b.Fatal("bad table 6")
		}
	}
}

// BenchmarkTable07 regenerates Table 7 (row clustering ablation).
func BenchmarkTable07(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Table7Data(context.Background())
		if err != nil || len(got) != 6 {
			b.Fatal("bad table 7")
		}
	}
}

// BenchmarkTable08 regenerates Table 8 (new detection ablation).
func BenchmarkTable08(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Table8Data(context.Background())
		if err != nil || len(got) != 6 {
			b.Fatal("bad table 8")
		}
	}
}

// BenchmarkTable09 regenerates Table 9 (new instances found).
func BenchmarkTable09(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Table9Data(context.Background())
		if err != nil || len(got) != 7 {
			b.Fatal("bad table 9")
		}
	}
}

// BenchmarkTable10 regenerates Table 10 (facts found, fusion scoring).
func BenchmarkTable10(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Table10Data(context.Background())
		if err != nil || len(got) != 10 {
			b.Fatal("bad table 10")
		}
	}
}

// BenchmarkTable11 regenerates Table 11 (large-scale profiling).
func BenchmarkTable11(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Table11Data(context.Background())
		if err != nil || len(got) != 3 {
			b.Fatal("bad table 11")
		}
	}
}

// BenchmarkTable12 regenerates Table 12 (new entity property densities).
func BenchmarkTable12(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Table12(context.Background())
		if err != nil || len(got.Rows) == 0 {
			b.Fatal("bad table 12")
		}
	}
}

// BenchmarkRankedEval regenerates the §6 ranked evaluation (MAP, P@k).
func BenchmarkRankedEval(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := s.RankedData(context.Background())
		if err != nil || rs.MAP < 0 || rs.MAP > 1 {
			b.Fatal("bad ranked eval")
		}
	}
}

// BenchmarkPipelineEndToEnd measures a full two-iteration pipeline run over
// the gold tables of the Song class (the hardest class).
func BenchmarkPipelineEndToEnd(b *testing.B) {
	s := suite()
	if _, err := s.ModelsFor(context.Background(), kb.ClassSong); err != nil { // train outside the timed region
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.GoldRun(context.Background(), kb.ClassSong)
		if err != nil || len(out.Entities) == 0 {
			b.Fatal("no entities")
		}
	}
}

// BenchmarkWorldGeneration measures synthetic world generation.
func BenchmarkWorldGeneration(b *testing.B) {
	cfg := world.DefaultConfig(0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		world.Generate(cfg)
	}
}

// BenchmarkCorpusSynthesis measures synthetic corpus generation.
func BenchmarkCorpusSynthesis(b *testing.B) {
	w := world.Generate(world.DefaultConfig(0.3))
	cfg := webtable.DefaultSynthConfig(0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		webtable.Synthesize(w, cfg)
	}
}

// --- Incremental ingestion benchmarks ---
//
// The pair BenchmarkIngestBatch / BenchmarkFullRerun quantifies the win of
// the incremental engine: when the corpus grows by one batch, ingesting
// just that batch against the retained state must do measurably less work
// than re-running the whole pipeline from scratch over the grown corpus.

// ingestSetup returns the gold tables of the class split at the midpoint
// and an engine that has already ingested the first half.
func ingestSetup(b *testing.B) (base *core.Engine, firstHalf, secondHalf []int) {
	b.Helper()
	s := suite()
	models, err := s.ModelsFor(context.Background(), kb.ClassGFPlayer)
	if err != nil {
		b.Fatal(err)
	}
	tables := s.Golds[kb.ClassGFPlayer].TableIDs
	if len(tables) < 2 {
		b.Skip("not enough tables at bench scale")
	}
	half := len(tables) / 2
	cfg := s.Config(kb.ClassGFPlayer)
	cfg.Iterations = 1
	base = core.NewEngine(cfg, models)
	base.WriteBack = false // keep the shared bench KB pristine
	base.Ingest(context.Background(), tables[:half])
	return base, tables[:half], tables[half:]
}

// BenchmarkIngestBatch measures ingesting the second half of the corpus
// into an engine that retains the first half's state (each iteration forks
// the pre-loaded engine, so retained state is reused, not rebuilt).
func BenchmarkIngestBatch(b *testing.B) {
	base, _, second := ingestSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := base.Fork()
		out, _, _ := eng.Ingest(context.Background(), second)
		if len(out.Entities) == 0 {
			b.Fatal("no entities")
		}
	}
}

// BenchmarkFullRerun measures the from-scratch alternative on the same
// grown corpus: a full pipeline run over both halves.
func BenchmarkFullRerun(b *testing.B) {
	s := suite()
	models, err := s.ModelsFor(context.Background(), kb.ClassGFPlayer)
	if err != nil {
		b.Fatal(err)
	}
	tables := s.Golds[kb.ClassGFPlayer].TableIDs
	cfg := s.Config(kb.ClassGFPlayer)
	cfg.Iterations = 1
	p := core.New(cfg, models)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := p.Run(context.Background(), tables)
		if len(out.Entities) == 0 {
			b.Fatal("no entities")
		}
	}
}

// --- Ablation benchmarks for the design choices called out in DESIGN.md ---

// benchClusterAblation clusters the corpus rows of the Song class (the
// class where clustering choices matter most) under the given blocking and
// KLj settings, reporting quality alongside time.
func benchClusterAblation(b *testing.B, blocking, klj bool) {
	s := suite()
	models, err := s.ModelsFor(context.Background(), kb.ClassSong)
	if err != nil {
		b.Fatal(err)
	}
	cfg := s.Config(kb.ClassSong)
	cfg.ClusterOpts = cluster.Options{Blocking: blocking, KLj: klj, BatchSize: 64, MaxKLjRounds: 4}
	cfg.Iterations = 1
	p := core.New(cfg, models)
	tables := s.Golds[kb.ClassSong].TableIDs
	b.ReportAllocs()
	b.ResetTimer()
	var clusters int
	for i := 0; i < b.N; i++ {
		out, _ := p.Run(context.Background(), tables)
		clusters = out.Clustering.NumClusters()
	}
	b.ReportMetric(float64(clusters), "clusters")
}

// benchIterations measures the full pipeline at the given iteration count.
func benchIterations(b *testing.B, iters int) {
	s := suite()
	models, err := s.ModelsFor(context.Background(), kb.ClassGFPlayer)
	if err != nil {
		b.Fatal(err)
	}
	cfg := s.Config(kb.ClassGFPlayer)
	cfg.Iterations = iters
	p := core.New(cfg, models)
	tables := s.Golds[kb.ClassGFPlayer].TableIDs
	b.ReportAllocs()
	b.ResetTimer()
	var mapped int
	for i := 0; i < b.N; i++ {
		out, _ := p.Run(context.Background(), tables)
		mapped = 0
		for _, m := range out.Mapping {
			mapped += len(m)
		}
	}
	b.ReportMetric(float64(mapped), "mapped-cols")
}

// BenchmarkAblationBlockingOn measures clustering with label blocking.
func BenchmarkAblationBlockingOn(b *testing.B) {
	benchClusterAblation(b, true, true)
}

// BenchmarkAblationBlockingOff measures clustering without blocking (every
// row compared against every cluster). F1 is unchanged; time is much worse.
func BenchmarkAblationBlockingOff(b *testing.B) {
	benchClusterAblation(b, false, true)
}

// BenchmarkAblationGreedyOnly measures the parallel greedy pass without the
// KLj refinement.
func BenchmarkAblationGreedyOnly(b *testing.B) {
	benchClusterAblation(b, true, false)
}

// BenchmarkAblationIterations1 runs the pipeline with a single iteration.
func BenchmarkAblationIterations1(b *testing.B) { benchIterations(b, 1) }

// BenchmarkAblationIterations2 runs the standard two iterations.
func BenchmarkAblationIterations2(b *testing.B) { benchIterations(b, 2) }

// BenchmarkAblationIterations3 runs a third iteration (the paper: no gain).
func BenchmarkAblationIterations3(b *testing.B) { benchIterations(b, 3) }

// serveBench holds the shared serving fixture: one grown KB served by two
// servers that differ only in response caching, so the cached and uncached
// paths measure the same retrieval work.
var (
	serveBenchOnce     sync.Once
	serveBenchErr      error
	serveBenchCached   *serve.Server
	serveBenchUncached *serve.Server
	serveBenchLookup   string
	serveBenchSearch   string
)

func serveBenchSetup(b *testing.B) (cached, uncached *serve.Server) {
	b.Helper()
	serveBenchOnce.Do(func() {
		w := world.Generate(world.DefaultConfig(0.2))
		c := webtable.Synthesize(w, webtable.DefaultSynthConfig(0.12))
		byClass, _ := core.ClassifyTables(context.Background(), w.KB, c, 0.3, 0)
		tables := byClass[kb.ClassGFPlayer]
		cfg := core.DefaultConfig(w.KB, c, kb.ClassGFPlayer)
		cfg.Iterations = 1
		writerEngine := core.NewEngine(cfg, core.Models{})
		readerEngine := core.NewEngine(cfg, core.Models{})

		var err error
		serveBenchCached, err = serve.New(serve.Config{
			KB: w.KB, Corpus: c,
			Engines: map[kb.ClassID]*core.Engine{kb.ClassGFPlayer: writerEngine},
		})
		if err != nil {
			serveBenchErr = err
			return
		}
		// Grow the KB by one epoch so lookups hit ingested instances too.
		body, _ := json.Marshal(serve.IngestRequest{Class: "GF-Player", Tables: tables})
		req := httptest.NewRequest(http.MethodPost, "/v1/ingest?wait=1", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		serveBenchCached.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			serveBenchErr = fmt.Errorf("bench ingest = %d: %s", rec.Code, rec.Body.String())
			return
		}
		// The uncached server shares the grown KB; CacheEntries < 0
		// disables its response cache entirely.
		serveBenchUncached, err = serve.New(serve.Config{
			KB: w.KB, Corpus: c,
			Engines:      map[kb.ClassID]*core.Engine{kb.ClassGFPlayer: readerEngine},
			CacheEntries: -1,
		})
		if err != nil {
			serveBenchErr = err
			return
		}
		serveBenchLookup = fmt.Sprintf("/v1/instances/%d", w.KB.NumInstances()-1)
		label := w.KB.Instance(0).Label()
		serveBenchSearch = "/v1/search?q=" + url.QueryEscape(label) + "&class=GF-Player"
	})
	if serveBenchErr != nil {
		b.Fatalf("serve bench fixture: %v", serveBenchErr)
	}
	return serveBenchCached, serveBenchUncached
}

func benchServeGet(b *testing.B, s *serve.Server, target string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, target, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("GET %s = %d", target, rec.Code)
		}
	}
}

// BenchmarkServeLookup measures entity lookup by instance ID through the
// serving stack: the cached path (LRU keyed on kb.Version) against the
// uncached path that renders from the KB every time. The first serving
// latency numbers of the repo; the cached figure must come in under the
// uncached one.
func BenchmarkServeLookup(b *testing.B) {
	cached, uncached := serveBenchSetup(b)
	b.Run("cached", func(b *testing.B) { benchServeGet(b, cached, serveBenchLookup) })
	b.Run("uncached", func(b *testing.B) { benchServeGet(b, uncached, serveBenchLookup) })
}

// BenchmarkServeSearch measures fuzzy label search (a query with one
// misspelled token, so the index's fuzzy fallback runs on every cache
// miss) through the serving stack: warm (LRU response cache hit), cold
// (cache disabled, deletion-neighborhood posting index), and oldscan
// (cache disabled, reference length-bucketed vocabulary scan). These are
// the tracked serve-layer numbers of BENCH_hotpath.json; see also
// internal/bench.
func BenchmarkServeSearch(b *testing.B) {
	b.Run("warm", bench.ServeSearchWarm)
	b.Run("cold", bench.ServeSearchCold)
	b.Run("oldscan", bench.ServeSearchOldScan)
}

// BenchmarkClusterGreedy measures the parallel greedy correlation
// clustering (blocking on, KLj off) over prepared rows — the per-pair
// similarity scoring hot path. Tracked in BENCH_hotpath.json.
func BenchmarkClusterGreedy(b *testing.B) {
	bench.ClusterGreedy(b)
}
