// Command ltee-bench runs the repo's tracked hot-path benchmarks in
// process (via testing.Benchmark) and emits machine-readable
// BENCH_hotpath.json — ns/op, B/op and allocs/op per benchmark — so the
// repo carries a perf trajectory and CI can hold every PR to it.
//
// Usage:
//
//	ltee-bench                             # full run, writes BENCH_hotpath.json
//	ltee-bench -short                      # CI smoke: tiny benchtime
//	ltee-bench -baseline BENCH_hotpath.json
//	                                       # compare allocs/op against a
//	                                       # previous run; exit 1 on regression
//	ltee-bench -run 'ServeSearch' -out -   # subset, JSON to stdout
//	ltee-bench -scale                      # corpus-scale benches + 2x gate
//	ltee-bench -best 5                     # keep the best of 5 runs
//
// Every benchmark runs -best times (default 3) and records the per-metric
// minimum: the minimum is the run least disturbed by scheduler and GC
// noise, which is what makes ns/op trends and the -scale ratio gate
// comparable across runs.
//
// With -scale, the corpus-scale benchmarks (internal/bench.Scale) run too,
// and the run fails unless per-epoch ingest cost stays near-flat under
// corpus growth: IngestScale/10x must cost at most twice IngestScale/1x —
// the headline sub-linear-candidate-generation claim of the LSH blocking
// layer, gated rather than assumed.
//
// Unlike the other binaries, ltee-bench deliberately imports
// internal/bench — the repo's tracked benchmark corpus is internal
// tooling, not public API.
//
// The -baseline file is simply a previous output file: any tracked
// benchmark present in both runs whose allocs/op exceeds the baseline by
// more than -slack (default 25%) fails the run. allocs/op is the compared
// metric because it is stable across machines; ns/op is recorded for
// trend-reading, not gating.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"testing"

	"repro/internal/bench"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra carries custom benchmark metrics (b.ReportMetric), e.g. the
	// storage benches' kb-bytes/inst and written-bytes/op. Every extra
	// metric is lower-is-better and gated against the baseline exactly
	// like allocs/op.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the BENCH_hotpath.json document.
type Report struct {
	GeneratedBy string   `json:"generated_by"`
	BenchTime   string   `json:"benchtime"`
	Benchmarks  []Result `json:"benchmarks"`
	// Baseline echoes the compared baseline results (when -baseline was
	// given), so one file records before and after side by side.
	Baseline []Result `json:"baseline,omitempty"`
	// Regressions lists benchmarks whose allocs/op regressed beyond the
	// slack; non-empty means the run failed.
	Regressions []string `json:"regressions,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ltee-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "BENCH_hotpath.json", "output file (- for stdout)")
	baselineFile := fs.String("baseline", "", "previous BENCH_hotpath.json to gate allocs/op against")
	benchtime := fs.String("benchtime", "", "testing benchtime (e.g. 1s, 100x); default 1s, or 20ms with -short")
	short := fs.Bool("short", false, "smoke mode: minimal benchtime for CI")
	slack := fs.Float64("slack", 0.25, "allowed fractional allocs/op increase over the baseline")
	runPat := fs.String("run", "", "only run benchmarks matching this regexp")
	best := fs.Int("best", 3, "runs per benchmark; the per-metric minimum is kept")
	scale := fs.Bool("scale", false, "also run the corpus-scale benchmarks and gate IngestScale/10x <= 2x IngestScale/1x")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *best < 1 {
		fmt.Fprintf(stderr, "-best must be >= 1 (got %d)\n", *best)
		fs.Usage()
		return 2
	}
	if *slack < 0 {
		fmt.Fprintf(stderr, "-slack must be >= 0 (a fractional allowance; got %g)\n", *slack)
		fs.Usage()
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "-out must name a file (or - for stdout)")
		fs.Usage()
		return 2
	}

	bt := *benchtime
	if bt == "" {
		bt = "1s"
		if *short {
			bt = "20ms"
		}
	}
	// Register the testing flags (test.benchtime drives
	// testing.Benchmark); in a test binary they already exist.
	if flag.Lookup("test.benchtime") == nil {
		testing.Init()
	}
	if err := flag.Set("test.benchtime", bt); err != nil {
		fmt.Fprintf(stderr, "bad -benchtime %q: %v\n", bt, err)
		return 2
	}

	var filter *regexp.Regexp
	if *runPat != "" {
		re, err := regexp.Compile(*runPat)
		if err != nil {
			fmt.Fprintf(stderr, "bad -run pattern: %v\n", err)
			return 2
		}
		filter = re
	}

	report := Report{GeneratedBy: "ltee-bench", BenchTime: bt}
	all := bench.All()
	if *scale {
		all = append(all, bench.Scale()...)
	}
	for _, nb := range all {
		if filter != nil && !filter.MatchString(nb.Name) {
			continue
		}
		fmt.Fprintf(stderr, "running %-22s ", nb.Name)
		res := bestOf(nb, *best)
		fmt.Fprintf(stderr, "%12.0f ns/op %12d B/op %10d allocs/op%s\n",
			res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, extraSummary(res.Extra))
		report.Benchmarks = append(report.Benchmarks, res)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "no benchmarks matched")
		return 2
	}

	if *baselineFile != "" {
		base, err := loadReport(*baselineFile)
		if err != nil {
			fmt.Fprintf(stderr, "baseline: %v\n", err)
			return 2
		}
		report.Baseline = base.Benchmarks
		report.Regressions = regressions(report.Benchmarks, base.Benchmarks, *slack)
	}
	if *scale {
		report.Regressions = append(report.Regressions, scaleGate(report.Benchmarks)...)
	}

	body, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "marshal: %v\n", err)
		return 1
	}
	body = append(body, '\n')
	if *out == "-" {
		stdout.Write(body)
	} else if err := os.WriteFile(*out, body, 0o644); err != nil {
		fmt.Fprintf(stderr, "write %s: %v\n", *out, err)
		return 1
	}

	if len(report.Regressions) > 0 {
		for _, r := range report.Regressions {
			fmt.Fprintf(stderr, "REGRESSION: %s\n", r)
		}
		return 1
	}
	return 0
}

// bestOf runs the benchmark n times and keeps each metric's minimum —
// the measurement least disturbed by scheduler and GC noise.
func bestOf(nb bench.Named, n int) Result {
	var best Result
	for i := 0; i < n; i++ {
		r := testing.Benchmark(nb.Fn)
		res := Result{
			Name:        nb.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Extra[k] = v
			}
		}
		if i == 0 {
			best = res
			continue
		}
		best.Iterations += res.Iterations
		best.NsPerOp = math.Min(best.NsPerOp, res.NsPerOp)
		best.BytesPerOp = min(best.BytesPerOp, res.BytesPerOp)
		best.AllocsPerOp = min(best.AllocsPerOp, res.AllocsPerOp)
		for k, v := range res.Extra {
			if prev, ok := best.Extra[k]; !ok || v < prev {
				if best.Extra == nil {
					best.Extra = make(map[string]float64, len(res.Extra))
				}
				best.Extra[k] = v
			}
		}
	}
	return best
}

// extraSummary renders a benchmark's custom metrics for the progress
// line, keys sorted for stable output.
func extraSummary(extra map[string]float64) string {
	if len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s string
	for _, k := range keys {
		s += fmt.Sprintf(" %12.1f %s", extra[k], k)
	}
	return s
}

// scaleGate holds the corpus-scale claim: the per-epoch ingest cost at 10x
// label scale must stay within 2x of the 1x cost. A ratio, not an absolute
// time, so the gate is comparable across machines.
func scaleGate(cur []Result) []string {
	var one, ten *Result
	for i := range cur {
		switch cur[i].Name {
		case "IngestScale/1x":
			one = &cur[i]
		case "IngestScale/10x":
			ten = &cur[i]
		}
	}
	if one == nil || ten == nil || one.NsPerOp <= 0 {
		return []string{"scale gate: IngestScale/1x and IngestScale/10x must both run (use -scale without -run filters)"}
	}
	if ratio := ten.NsPerOp / one.NsPerOp; ratio > 2 {
		return []string{fmt.Sprintf("scale gate: IngestScale/10x is %.2fx IngestScale/1x (limit 2x) — per-epoch cost is growing with the label corpus", ratio)}
	}
	return nil
}

// loadReport reads a previous output file for baseline comparison.
func loadReport(path string) (*Report, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(body, &r); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &r, nil
}

// regressions compares allocs/op per benchmark against the baseline,
// returning a message per benchmark exceeding baseline·(1+slack).
// Benchmarks missing on either side are skipped (new benchmarks are not
// regressions; removed ones are caught in review).
func regressions(cur, base []Result, slack float64) []string {
	baseBy := make(map[string]Result, len(base))
	for _, r := range base {
		baseBy[r.Name] = r
	}
	var out []string
	for _, r := range cur {
		b, ok := baseBy[r.Name]
		if !ok {
			continue
		}
		limit := float64(b.AllocsPerOp) * (1 + slack)
		if float64(r.AllocsPerOp) > limit {
			out = append(out, fmt.Sprintf("%s: %d allocs/op > baseline %d (+%.0f%% slack)",
				r.Name, r.AllocsPerOp, b.AllocsPerOp, slack*100))
		}
		// Extra metrics (kb-bytes/inst, written-bytes/op, ...) are all
		// lower-is-better and gate with the same slack; metrics present on
		// only one side are skipped like whole benchmarks are.
		keys := make([]string, 0, len(b.Extra))
		for k := range b.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv := b.Extra[k]
			cv, ok := r.Extra[k]
			if !ok {
				continue
			}
			if cv > bv*(1+slack) {
				out = append(out, fmt.Sprintf("%s: %.1f %s > baseline %.1f (+%.0f%% slack)",
					r.Name, cv, k, bv, slack*100))
			}
		}
	}
	return out
}
