package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunEmitsReport runs one cheap micro benchmark end to end and checks
// the emitted JSON document.
func TestRunEmitsReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-run", "^Levenshtein$", "-benchtime", "5x", "-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	body, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(r.Benchmarks) != 1 || r.Benchmarks[0].Name != "Levenshtein" {
		t.Fatalf("benchmarks = %+v", r.Benchmarks)
	}
	if r.Benchmarks[0].Iterations < 5 || r.Benchmarks[0].NsPerOp <= 0 {
		t.Fatalf("implausible result: %+v", r.Benchmarks[0])
	}
}

// TestRunGatesOnBaseline: a baseline with a much smaller allocs/op must
// fail the run and list the regression in the report.
func TestRunGatesOnBaseline(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	// A negative baseline forces a regression verdict however few allocs
	// the benchmark makes (the tracked kernels are allocation-free in
	// steady state, so any non-negative measurement must still trip it).
	if err := os.WriteFile(base, []byte(`{"benchmarks":[{"name":"Levenshtein","allocs_per_op":-1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-run", "^Levenshtein$", "-benchtime", "5x", "-out", out, "-baseline", base}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (regression), stderr: %s", code, stderr.String())
	}
	body, _ := os.ReadFile(out)
	var r Report
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Regressions) != 1 {
		t.Fatalf("regressions = %v", r.Regressions)
	}
}

func TestRegressions(t *testing.T) {
	cur := []Result{{Name: "A", AllocsPerOp: 130}, {Name: "B", AllocsPerOp: 10}, {Name: "new", AllocsPerOp: 999}}
	base := []Result{{Name: "A", AllocsPerOp: 100}, {Name: "B", AllocsPerOp: 10}, {Name: "gone", AllocsPerOp: 1}}
	got := regressions(cur, base, 0.25)
	if len(got) != 1 {
		t.Fatalf("regressions = %v, want exactly the A overshoot", got)
	}
	if got := regressions(cur, base, 0.5); len(got) != 0 {
		t.Fatalf("with 50%% slack want none, got %v", got)
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "["}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad regexp: exit = %d, want 2", code)
	}
	if code := run([]string{"-run", "nothing-matches-this"}, &stdout, &stderr); code != 2 {
		t.Fatalf("no matches: exit = %d, want 2", code)
	}
	if code := run([]string{"-baseline", "/nonexistent.json", "-run", "^Levenshtein$", "-benchtime", "2x", "-out", "-"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing baseline: exit = %d, want 2", code)
	}
}
