// Command ltee-extract converts raw HTML pages into a relational web table
// corpus in the WDC JSON format, reproducing the extraction step that
// produced the Web Data Commons corpus the paper uses.
//
// Usage:
//
//	ltee-extract page1.html page2.html > corpus.json
//	ltee-extract -dir ./pages > corpus.json
//
// Each relational table found becomes one JSON line; layout tables,
// header-less tables and tables with fewer than two columns are dropped.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/webtable"
)

func main() {
	dir := flag.String("dir", "", "extract every .html/.htm file in this directory")
	flag.Parse()

	files := flag.Args()
	if *dir != "" {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			fatal("reading %s: %v", *dir, err)
		}
		for _, e := range entries {
			name := strings.ToLower(e.Name())
			if strings.HasSuffix(name, ".html") || strings.HasSuffix(name, ".htm") {
				files = append(files, filepath.Join(*dir, e.Name()))
			}
		}
		sort.Strings(files)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ltee-extract [-dir DIR] [file.html ...]")
		os.Exit(2)
	}

	var tables []*webtable.Table
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fatal("reading %s: %v", f, err)
		}
		extracted := webtable.ExtractHTML(string(data))
		for _, t := range extracted {
			if t.SourceURL == "" {
				t.SourceURL = "file://" + f
			}
		}
		fmt.Fprintf(os.Stderr, "%s: %d relational table(s)\n", f, len(extracted))
		tables = append(tables, extracted...)
	}
	corpus := webtable.NewCorpus(tables)
	if err := webtable.WriteWDC(os.Stdout, corpus); err != nil {
		fatal("writing corpus: %v", err)
	}
	st := corpus.Stats()
	fmt.Fprintf(os.Stderr, "wrote %d tables (%d rows, avg %.1f cols)\n",
		st.Tables, st.Rows, st.ColsAvg)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ltee-extract: "+format+"\n", args...)
	os.Exit(1)
}
