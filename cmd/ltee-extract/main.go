// Command ltee-extract converts raw HTML pages into a relational web table
// corpus in the WDC JSON format, reproducing the extraction step that
// produced the Web Data Commons corpus the paper uses.
//
// Usage:
//
//	ltee-extract page1.html page2.html > corpus.json
//	ltee-extract -dir ./pages > corpus.json
//
// Each relational table found becomes one JSON line; layout tables,
// header-less tables and tables with fewer than two columns are dropped.
// The command is built entirely on the public ltee API (repro/ltee/webtable).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/ltee/webtable"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the extraction (split from main so the command is testable:
// flags, file collection, extraction and corpus output all go through it).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ltee-extract", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "extract every .html/.htm file in this directory")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	files := fs.Args()
	if *dir != "" {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			fmt.Fprintf(stderr, "ltee-extract: reading %s: %v\n", *dir, err)
			return 1
		}
		for _, e := range entries {
			name := strings.ToLower(e.Name())
			if strings.HasSuffix(name, ".html") || strings.HasSuffix(name, ".htm") {
				files = append(files, filepath.Join(*dir, e.Name()))
			}
		}
		sort.Strings(files)
	}
	if len(files) == 0 {
		fmt.Fprintln(stderr, "usage: ltee-extract [-dir DIR] [file.html ...]")
		return 2
	}

	var tables []*webtable.Table
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(stderr, "ltee-extract: reading %s: %v\n", f, err)
			return 1
		}
		extracted := webtable.ExtractHTML(string(data))
		for _, t := range extracted {
			if t.SourceURL == "" {
				t.SourceURL = "file://" + f
			}
		}
		fmt.Fprintf(stderr, "%s: %d relational table(s)\n", f, len(extracted))
		tables = append(tables, extracted...)
	}
	corpus := webtable.NewCorpus(tables)
	if err := webtable.WriteWDC(stdout, corpus); err != nil {
		fmt.Fprintf(stderr, "ltee-extract: writing corpus: %v\n", err)
		return 1
	}
	st := corpus.Stats()
	fmt.Fprintf(stderr, "wrote %d tables (%d rows, avg %.1f cols)\n",
		st.Tables, st.Rows, st.ColsAvg)
	return 0
}
