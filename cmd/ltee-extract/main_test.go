package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/ltee/webtable"
)

const samplePage = `<html><body>
<h1>Quarterbacks</h1>
<table>
<tr><th>Player</th><th>Team</th><th>Position</th></tr>
<tr><td>Tom Brady</td><td>Patriots</td><td>QB</td></tr>
<tr><td>Drew Brees</td><td>Saints</td><td>QB</td></tr>
<tr><td>Aaron Rodgers</td><td>Packers</td><td>QB</td></tr>
</table>
<table><tr><td>layout only</td></tr></table>
</body></html>`

func writeSample(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(samplePage), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExtractsFiles(t *testing.T) {
	dir := t.TempDir()
	page := writeSample(t, dir, "page1.html")

	var stdout, stderr bytes.Buffer
	if code := run([]string{page}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	corpus, err := webtable.ReadWDC(&stdout)
	if err != nil {
		t.Fatalf("output is not a WDC corpus: %v", err)
	}
	if corpus.Len() != 1 {
		t.Fatalf("extracted %d tables, want 1 (layout table dropped)", corpus.Len())
	}
	tb := corpus.Tables[0]
	if len(tb.Headers) != 3 || tb.Headers[0] != "Player" {
		t.Errorf("headers = %v", tb.Headers)
	}
	if tb.NumRows() != 3 {
		t.Errorf("rows = %d, want 3", tb.NumRows())
	}
	if !strings.HasPrefix(tb.SourceURL, "file://") {
		t.Errorf("source URL not stamped: %q", tb.SourceURL)
	}
	if !strings.Contains(stderr.String(), "wrote 1 tables") {
		t.Errorf("summary missing: %q", stderr.String())
	}
}

func TestRunExtractsDirectory(t *testing.T) {
	dir := t.TempDir()
	writeSample(t, dir, "b.html")
	writeSample(t, dir, "a.htm")
	if err := os.WriteFile(filepath.Join(dir, "skip.txt"), []byte("not html"), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	corpus, err := webtable.ReadWDC(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Len() != 2 {
		t.Errorf("extracted %d tables, want 2", corpus.Len())
	}
	// Files are processed in sorted order: a.htm before b.html.
	msgs := stderr.String()
	if ia, ib := strings.Index(msgs, "a.htm"), strings.Index(msgs, "b.html"); ia < 0 || ib < 0 || ia > ib {
		t.Errorf("directory files not processed in sorted order: %q", msgs)
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// No inputs at all is a usage error.
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no inputs: exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Errorf("usage not printed: %q", stderr.String())
	}
	// Missing file and missing directory fail cleanly.
	stderr.Reset()
	if code := run([]string{"/nonexistent/page.html"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit code = %d, want 1", code)
	}
	stderr.Reset()
	if code := run([]string{"-dir", "/nonexistent"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing dir: exit code = %d, want 1", code)
	}
	// Unknown flags are reported as usage errors.
	stderr.Reset()
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit code = %d, want 2", code)
	}
}
