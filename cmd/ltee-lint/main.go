// Command ltee-lint runs the repository's project-specific static
// analyzers (internal/lint) over the given package patterns — a
// multichecker enforcing the determinism, cancellation, aliasing, pool,
// import-boundary, lock-order, goroutine-lifecycle and durability
// invariants that earlier PRs established by hand:
//
//	go run ./cmd/ltee-lint ./...
//
// It prints one line per finding (or one JSON record per finding with
// -json) and exits 1 when any finding survives the //lteelint:ignore
// directives (see internal/lint for the directive grammar), 2 on a load
// or usage error, 0 when the tree is clean. -tests widens the run to the
// packages' test files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the -json record shape: one object per line (NDJSON), the
// fields the CI problem matcher and artifact consumers key on.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ltee-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "run as if started in `dir` (the module root)")
	jsonOut := fs.Bool("json", false, "emit findings as NDJSON records instead of text")
	tests := fs.Bool("tests", false, "also analyze the packages' test files")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ltee-lint [-C dir] [-list] [-json] [-tests] [packages]\n\n"+
			"Runs the project analyzers over the packages (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	runner := lint.Run
	if *tests {
		runner = lint.RunTests
	}
	diags, err := runner(*dir, patterns, lint.All())
	if err != nil {
		fmt.Fprintf(stderr, "ltee-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		if *jsonOut {
			rec := finding{File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message}
			raw, err := json.Marshal(rec)
			if err != nil {
				fmt.Fprintf(stderr, "ltee-lint: encoding finding: %v\n", err)
				return 2
			}
			fmt.Fprintln(stdout, string(raw))
		} else {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ltee-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
