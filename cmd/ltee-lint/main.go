// Command ltee-lint runs the repository's project-specific static
// analyzers (internal/lint) over the given package patterns — a
// multichecker enforcing the determinism, cancellation, aliasing, pool and
// import-boundary invariants that earlier PRs established by hand:
//
//	go run ./cmd/ltee-lint ./...
//
// It prints one line per finding and exits 1 when any finding survives the
// //lteelint:ignore directives (see internal/lint for the directive
// grammar), 2 on a load or usage error, 0 when the tree is clean.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ltee-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "run as if started in `dir` (the module root)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ltee-lint [-C dir] [-list] [packages]\n\n"+
			"Runs the project analyzers over the packages (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(*dir, patterns, lint.All())
	if err != nil {
		fmt.Fprintf(stderr, "ltee-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ltee-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
