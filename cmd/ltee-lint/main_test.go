package main

import (
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"sortedrange", "ctxflow", "aliasret", "poolput", "internalboundary"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-nope) = %d, want 2", code)
	}
}

func TestCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped under -short")
	}
	var out, errOut strings.Builder
	if code := run([]string{"-C", "../..", "./internal/par"}, &out, &errOut); code != 0 {
		t.Fatalf("run(./internal/par) = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}
