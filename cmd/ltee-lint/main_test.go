package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{
		"sortedrange", "ctxflow", "aliasret", "poolput", "internalboundary",
		"lockorder", "goleak", "fsyncdisc", "errdrop",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-nope) = %d, want 2", code)
	}
}

func TestCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped under -short")
	}
	var out, errOut strings.Builder
	if code := run([]string{"-C", "../..", "./internal/par"}, &out, &errOut); code != 0 {
		t.Fatalf("run(./internal/par) = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

// TestJSONFindings runs the suite over a lint fixture tree — guaranteed
// findings — and checks every output line is a well-formed NDJSON record.
func TestJSONFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped under -short")
	}
	var out, errOut strings.Builder
	code := run([]string{"-C", "../../internal/lint/testdata/src/lockorder", "-json", "."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run(-json lockorder fixture) = %d, want 1\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no findings emitted")
	}
	for _, line := range lines {
		var rec struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSON record %q: %v", line, err)
		}
		if rec.File == "" || rec.Line == 0 || rec.Analyzer == "" || rec.Message == "" {
			t.Errorf("incomplete record: %s", line)
		}
	}
}

// TestTestsFlag lints this command's own package including its test
// files; the tree is kept clean, so the run must exit 0 either way.
func TestTestsFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped under -short")
	}
	var out, errOut strings.Builder
	if code := run([]string{"-C", "../..", "-tests", "./cmd/ltee-lint"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-tests ./cmd/ltee-lint) = %d\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
}
