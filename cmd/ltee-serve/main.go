// Command ltee-serve runs the long-running KB query/ingest server: it
// generates the synthetic world and corpus, builds one incremental
// ingestion engine per served class, and exposes the serve API over HTTP —
// entity lookup, fuzzy label search, per-class/per-epoch stats, async
// ingestion with cancellable jobs, and snapshot persistence. It is built
// entirely on the public ltee API (repro/ltee and friends).
//
// Usage:
//
//	ltee-serve -addr :8080 -snapshot ./kbdata
//	ltee-serve -classes GF-Player,Song -train -workers 8
//
// Endpoints (all JSON):
//
//	GET    /healthz                        liveness
//	GET    /v1/classes                     served classes + epochs
//	GET    /v1/classes/{class}/entities    entities of the last epoch (?new=1)
//	GET    /v1/instances/{id}              entity lookup by instance ID
//	GET    /v1/search?q=&class=&k=         fuzzy label search
//	GET    /v1/stats                       KB/cache/ingest statistics
//	POST   /v1/ingest                      {"class","tables","auto","raw","after"} (?wait=1)
//	GET    /v1/jobs                        job listing (?status=interrupted&limit=N)
//	GET    /v1/jobs/{id}                   async job status (+ current stage)
//	DELETE /v1/jobs/{id}                   cancel a queued or running job
//	POST   /v1/snapshot                    persist KB discoveries (?wait=1)
//
// Each served class has its own writer lane (-queue-depth jobs each);
// classes ingest in parallel, jobs within a class in submission order. A
// full lane answers 429 with a Retry-After header — clients back off and
// resubmit. With -snapshot DIR the server loads any existing snapshot at
// startup (warm start: earlier discoveries and epoch counters survive
// restarts), journals every job to DIR/jobs.ndjson so work lost to a crash
// is reported as "interrupted" with resubmittable inputs on the next
// start, and saves a final snapshot on SIGINT/SIGTERM before shutting
// down. Finished job records are evicted after -job-ttl.
//
// Shutdown is context-respecting end to end: on a signal the HTTP server
// drains in-flight requests, a final snapshot is taken, and the job
// writers are given a bounded grace period — if one is still mid-ingest
// when the deadline expires, the epoch is cancelled cooperatively and
// nothing of it is committed.
//
// With -pprof the net/http/pprof endpoints are mounted under
// /debug/pprof/ so the live server can be profiled
// (go tool pprof http://host/debug/pprof/profile?seconds=10).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/ltee"
	"repro/ltee/kb"
	"repro/ltee/scenario"
	"repro/ltee/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	// Restore the default handler once the first signal lands, so a second
	// Ctrl-C force-kills instead of being swallowed during a slow drain.
	go func() { <-ctx.Done(); stop() }()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// config is the parsed command line.
type config struct {
	addr         string
	classes      []kb.ClassID
	snapshotDir  string
	worldScale   float64
	corpusScale  float64
	seed         int64
	workers      int
	iterations   int
	train        bool
	cacheEntries int
	drainFor     time.Duration
	queueDepth   int
	jobTTL       time.Duration
	journal      bool
	progress     bool
	pprof        bool
}

// parseFlags parses the command line into a config (split from run so flag
// handling is testable without building a suite). Out-of-range values
// produce a diagnostic plus the usage text.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("ltee-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	var classes string
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&classes, "classes", "GF-Player,Song,Settlement", "comma-separated classes to serve")
	fs.StringVar(&cfg.snapshotDir, "snapshot", "", "snapshot directory (enables warm start and persistence)")
	fs.Float64Var(&cfg.worldScale, "world", 0.35, "world scale (entity counts)")
	fs.Float64Var(&cfg.corpusScale, "corpus", 0.22, "corpus scale (table counts)")
	fs.Int64Var(&cfg.seed, "seed", 1, "generation and learning seed")
	fs.IntVar(&cfg.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	fs.IntVar(&cfg.iterations, "iterations", 2, "pipeline iterations per ingest epoch")
	fs.BoolVar(&cfg.train, "train", false, "train the learned models at startup (slower start, better matching)")
	fs.IntVar(&cfg.cacheEntries, "cache", 1024, "response cache entries (negative disables)")
	fs.DurationVar(&cfg.drainFor, "drain", 30*time.Second, "shutdown grace period before an in-flight ingest is cancelled")
	fs.IntVar(&cfg.queueDepth, "queue-depth", 0, "per-class job queue capacity (0 = default); a full lane answers 429")
	fs.DurationVar(&cfg.jobTTL, "job-ttl", 0, "retention of finished job records (0 = default 15m, negative keeps forever)")
	fs.BoolVar(&cfg.journal, "journal", true, "journal jobs to the snapshot directory (crash-visible interrupted jobs)")
	fs.BoolVar(&cfg.progress, "progress", false, "log per-stage ingest progress to stdout")
	fs.BoolVar(&cfg.pprof, "pprof", false, "expose net/http/pprof endpoints under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	fail := func(format string, args ...any) (*config, error) {
		fmt.Fprintf(stderr, format+"\n", args...)
		fs.Usage()
		return nil, errors.New("usage")
	}
	if cfg.iterations < 1 {
		return fail("-iterations must be at least 1 (got %d)", cfg.iterations)
	}
	if cfg.workers < 0 {
		return fail("-workers must be >= 0 (0 = GOMAXPROCS, 1 = serial; got %d)", cfg.workers)
	}
	if cfg.worldScale <= 0 {
		return fail("-world must be positive (got %g)", cfg.worldScale)
	}
	if cfg.corpusScale <= 0 {
		return fail("-corpus must be positive (got %g)", cfg.corpusScale)
	}
	if cfg.drainFor <= 0 {
		return fail("-drain must be positive (got %s)", cfg.drainFor)
	}
	if cfg.queueDepth < 0 {
		return fail("-queue-depth must be >= 0 (0 = default; got %d)", cfg.queueDepth)
	}
	for _, name := range strings.Split(classes, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		class := classByName(name)
		if class == "" {
			return fail("unknown class %q (want GF-Player, Song, or Settlement)", name)
		}
		cfg.classes = append(cfg.classes, class)
	}
	if len(cfg.classes) == 0 {
		return fail("-classes must name at least one class")
	}
	return cfg, nil
}

// classByName resolves the user-facing class names to class IDs ("" for an
// unknown name).
func classByName(name string) kb.ClassID {
	switch strings.ToLower(name) {
	case "gf-player", "gfplayer", "player":
		return kb.ClassGFPlayer
	case "song":
		return kb.ClassSong
	case "settlement":
		return kb.ClassSettlement
	default:
		return ""
	}
}

// run builds the world, engines and server, listens on cfg.addr, and
// blocks until ctx is cancelled (then snapshots, if configured, and shuts
// down gracefully). ready, when non-nil, receives the bound listen address
// once the server accepts connections — tests use it to find the port.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	cfg, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}

	s := scenario.NewSuite(scenario.Options{
		WorldScale: cfg.worldScale, CorpusScale: cfg.corpusScale,
		Seed: cfg.seed, Workers: cfg.workers,
	})
	fmt.Fprintf(stdout, "world: %d entities, KB: %d instances, corpus: %d tables / %d rows\n",
		len(s.World.Entities), s.World.KB.NumInstances(), s.Corpus.Len(), s.Corpus.TotalRows())

	byClass, err := s.TablesByClass(ctx)
	if err != nil {
		fmt.Fprintln(stderr, "ltee-serve:", err)
		return 2
	}
	engines := make(map[kb.ClassID]*ltee.Engine, len(cfg.classes))
	tables := make(map[kb.ClassID][]int, len(cfg.classes))
	for _, class := range cfg.classes {
		opts := []ltee.Option{
			ltee.WithSeed(cfg.seed),
			ltee.WithWorkers(cfg.workers),
			ltee.WithIterations(cfg.iterations),
		}
		if cfg.train {
			models, err := s.ModelsFor(ctx, class)
			if err != nil {
				fmt.Fprintln(stderr, "ltee-serve:", err)
				return 2
			}
			opts = append(opts, ltee.WithModels(models))
		}
		if cfg.progress {
			opts = append(opts, ltee.WithProgress(func(ev ltee.Event) {
				fmt.Fprintf(stdout, "progress %s: epoch %d it %d %s (%d units)\n",
					kb.ClassShortName(ev.Class), ev.Epoch, ev.Iteration, ev.Stage, ev.Count)
			}))
		}
		eng, eerr := ltee.NewEngine(s.World.KB, s.Corpus, class, opts...)
		if eerr != nil {
			fmt.Fprintf(stderr, "ltee-serve: %v\n", eerr)
			return 1
		}
		engines[class] = eng
		tables[class] = byClass[class]
		fmt.Fprintf(stdout, "class %s: %d corpus tables, %d KB instances\n",
			kb.ClassShortName(class), len(byClass[class]), s.World.KB.NumInstancesOf(class))
	}

	srv, err := serve.New(serve.Config{
		KB:             s.World.KB,
		Corpus:         s.Corpus,
		Engines:        engines,
		Tables:         tables,
		SnapshotDir:    cfg.snapshotDir,
		WorldKey:       fmt.Sprintf("world=%g corpus=%g seed=%d", cfg.worldScale, cfg.corpusScale, cfg.seed),
		CacheEntries:   cfg.cacheEntries,
		QueueDepth:     cfg.queueDepth,
		JobTTL:         cfg.jobTTL,
		DisableJournal: !cfg.journal,
	})
	if err != nil {
		fmt.Fprintf(stderr, "ltee-serve: %v\n", err)
		return 1
	}
	if srv.Warm != nil {
		fmt.Fprintf(stdout, "warm start: %d ingested instances restored, epochs %v\n",
			srv.Warm.Instances, srv.Warm.Epochs)
	}
	if interrupted := srv.InterruptedJobs(); len(interrupted) > 0 {
		// Jobs the journal shows were cut off by a crash committed nothing;
		// their inputs are in the listing and safe to resubmit verbatim.
		fmt.Fprintf(stdout, "%d job(s) interrupted by a previous crash — GET /v1/jobs?status=interrupted for resubmittable inputs\n",
			len(interrupted))
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintf(stderr, "ltee-serve: %v\n", err)
		srv.Close()
		return 1
	}
	handler := srv.Handler()
	if cfg.pprof {
		// Mount the pprof endpoints next to the API (off by default:
		// profiles expose internals, so they are opt-in). Profile the
		// live server with e.g.
		//   go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
		fmt.Fprintln(stdout, "pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintf(stderr, "ltee-serve: %v\n", err)
		srv.Close()
		return 1
	}

	// Graceful shutdown: stop accepting traffic and drain in-flight
	// handlers first, then snapshot — an ingest acknowledged to a client
	// during the drain window is therefore always included in the final
	// snapshot (the writer loop is still running until Shutdown).
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "ltee-serve: shutdown: %v\n", err)
	}
	if cfg.snapshotDir != "" {
		// The final snapshot is bounded by the -drain grace: jobs ahead of
		// it in the snapshot lane get that long to finish, then they are
		// cancelled cooperatively (committing nothing) and the snapshot is
		// retried without a deadline — an in-flight ingest must not be able
		// to hold the shutdown (and the snapshot) hostage indefinitely.
		snapCtx, cancelSnap := context.WithTimeout(context.Background(), cfg.drainFor)
		m, serr := srv.SnapshotCtx(snapCtx)
		cancelSnap()
		if serr != nil && errors.Is(serr, context.DeadlineExceeded) {
			fmt.Fprintf(stderr, "ltee-serve: drain grace (%s) expired; cancelling in-flight jobs to take the final snapshot\n", cfg.drainFor)
			srv.CancelActiveJobs()
			m, serr = srv.Snapshot()
		}
		if serr != nil {
			fmt.Fprintf(stderr, "ltee-serve: final snapshot: %v\n", serr)
		} else {
			fmt.Fprintf(stdout, "snapshot saved: %d ingested instances, epochs %v\n", m.Instances, m.Epochs)
		}
	}
	// Bounded job drain (no-op if the snapshot path already shut down):
	// pending ingests get -drain to finish; past that they are cancelled
	// cooperatively and nothing of theirs commits.
	jobCtx, cancelJobs := context.WithTimeout(context.Background(), cfg.drainFor)
	defer cancelJobs()
	if err := srv.Shutdown(jobCtx); err != nil {
		fmt.Fprintf(stderr, "ltee-serve: cancelled pending jobs after %s drain: %v\n", cfg.drainFor, err)
	}
	fmt.Fprintln(stdout, "bye")
	return 0
}
