package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/ltee/kb"
	"repro/ltee/serve"
)

// TestMain doubles as the entry point for a re-exec'd server child: the
// kill-and-restart test needs a real OS process it can SIGKILL mid-job,
// which an in-process run() cannot model. With the child env set, the
// test binary becomes ltee-serve itself.
func TestMain(m *testing.M) {
	if os.Getenv("LTEE_SERVE_E2E_CHILD") == "1" {
		// The child is torn down with SIGKILL; a cancellable context would
		// never fire. (ctxflow skips main packages and test files, so no
		// directive is needed.)
		os.Exit(run(context.Background(), strings.Fields(os.Getenv("LTEE_SERVE_E2E_ARGS")), os.Stdout, os.Stderr, nil))
	}
	os.Exit(m.Run())
}

func TestParseFlagsDefaults(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags(nil, &stderr)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.addr != ":8080" || cfg.train || cfg.iterations != 2 || cfg.cacheEntries != 1024 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if len(cfg.classes) != 3 {
		t.Errorf("default classes = %v", cfg.classes)
	}
}

func TestParseFlagsClasses(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags([]string{"-classes", "song, player"}, &stderr)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(cfg.classes) != 2 || cfg.classes[0] != kb.ClassSong || cfg.classes[1] != kb.ClassGFPlayer {
		t.Errorf("classes = %v", cfg.classes)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	cases := [][]string{
		{"-classes", "Nope"},
		{"-classes", ""},
		{"-iterations", "0"},
		{"-nope"},
	}
	for _, args := range cases {
		var stderr bytes.Buffer
		if _, err := parseFlags(args, &stderr); err == nil {
			t.Errorf("parseFlags(%v) should fail", args)
		}
	}
}

// serverProc is one run() invocation under test.
type serverProc struct {
	addr   string
	cancel context.CancelFunc
	exited chan int
	stdout *bytes.Buffer
}

// startServer launches run() with the given extra args and waits until it
// listens.
func startServer(t *testing.T, snapshotDir string) *serverProc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	p := &serverProc{
		cancel: cancel,
		exited: make(chan int, 1),
		stdout: &bytes.Buffer{},
	}
	args := []string{
		"-addr", "127.0.0.1:0",
		"-classes", "GF-Player",
		"-world", "0.2", "-corpus", "0.12",
		"-iterations", "1",
		"-snapshot", snapshotDir,
		// All API assertions below run through the pprof outer mux, so
		// the delegation to the serve handler is covered too.
		"-pprof",
	}
	ready := make(chan string, 1)
	var stderr bytes.Buffer
	go func() {
		p.exited <- run(ctx, args, p.stdout, &stderr, ready)
	}()
	select {
	case p.addr = <-ready:
	case code := <-p.exited:
		t.Fatalf("server exited early with %d: %s", code, stderr.String())
	case <-time.After(120 * time.Second):
		t.Fatal("server did not become ready")
	}
	return p
}

// shutdown closes the server and asserts a clean exit.
func (p *serverProc) shutdown(t *testing.T) {
	t.Helper()
	p.cancel()
	select {
	case code := <-p.exited:
		if code != 0 {
			t.Fatalf("server exited with %d", code)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// get fetches a URL and decodes the JSON body into out (when non-nil).
func (p *serverProc) get(t *testing.T, path string, out any) int {
	t.Helper()
	resp, err := http.Get("http://" + p.addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", path, body, err)
		}
	}
	return resp.StatusCode
}

// post sends a JSON body and decodes the response.
func (p *serverProc) post(t *testing.T, path, body string, out any) int {
	t.Helper()
	resp, err := http.Post("http://"+p.addr+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode
}

// TestLteeServeEndToEnd is the CI smoke test: start the server, query it,
// ingest a batch, snapshot, restart, and re-query the persisted
// discoveries over real HTTP.
func TestLteeServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end server test is not short")
	}
	dir := t.TempDir()
	p := startServer(t, dir)

	var health map[string]string
	if code := p.get(t, "/healthz", &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, health)
	}
	// -pprof mounts the profiling index next to the API.
	if resp, err := http.Get("http://" + p.addr + "/debug/pprof/"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("pprof index: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
	var classes []serve.ClassView
	p.get(t, "/v1/classes", &classes)
	if len(classes) != 1 || classes[0].CorpusTables == 0 || classes[0].Epoch != 0 {
		t.Fatalf("classes = %+v", classes)
	}

	// Ingest every classified table in one epoch.
	var jv serve.JobView
	body := fmt.Sprintf(`{"class":"GF-Player","auto":%d}`, classes[0].CorpusTables)
	if code := p.post(t, "/v1/ingest?wait=1", body, &jv); code != 200 || jv.Status != "done" {
		t.Fatalf("ingest = %d %+v", code, jv)
	}
	if jv.Stats == nil || jv.Stats.Epoch != 1 || jv.Stats.WrittenBack == 0 {
		t.Fatalf("ingest stats = %+v", jv.Stats)
	}
	writtenID := jv.Stats.KBInstances - jv.Stats.WrittenBack

	// Query a discovery directly and through fuzzy search.
	var inst serve.InstanceView
	if code := p.get(t, fmt.Sprintf("/v1/instances/%d", writtenID), &inst); code != 200 {
		t.Fatalf("instance lookup = %d", code)
	}
	if inst.Provenance != kb.ProvenanceIngest {
		t.Fatalf("instance = %+v", inst)
	}
	var sv serve.SearchView
	q := strings.ReplaceAll(inst.Labels[0], " ", "+")
	p.get(t, "/v1/search?q="+q+"&class=GF-Player", &sv)
	found := false
	for _, h := range sv.Hits {
		if h.ID == inst.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("search for %q missed instance %d: %+v", inst.Labels[0], inst.ID, sv.Hits)
	}

	// Snapshot explicitly, then shut down (which snapshots again).
	var snap serve.JobView
	if code := p.post(t, "/v1/snapshot?wait=1", "", &snap); code != 200 || snap.Status != "done" {
		t.Fatalf("snapshot = %d %+v", code, snap)
	}
	p.shutdown(t)
	if !strings.Contains(p.stdout.String(), "snapshot saved") {
		t.Errorf("shutdown did not snapshot: %q", p.stdout.String())
	}

	// Restart: the discovery and the epoch counter survive.
	p2 := startServer(t, dir)
	defer p2.shutdown(t)
	if !strings.Contains(p2.stdout.String(), "warm start") {
		t.Fatalf("no warm start logged: %q", p2.stdout.String())
	}
	var inst2 serve.InstanceView
	if code := p2.get(t, fmt.Sprintf("/v1/instances/%d", writtenID), &inst2); code != 200 {
		t.Fatalf("warm lookup = %d", code)
	}
	if inst2.Labels[0] != inst.Labels[0] {
		t.Errorf("warm label %q, want %q", inst2.Labels[0], inst.Labels[0])
	}
	p2.get(t, "/v1/classes", &classes)
	if classes[0].Epoch != 1 {
		t.Errorf("warm epoch = %d, want 1", classes[0].Epoch)
	}
	// Auto ingestion keeps advancing after the restart: the manifest
	// recorded the ingested table IDs, so re-requesting every classified
	// table resolves to nothing new and must not burn an epoch.
	if code := p2.post(t, "/v1/ingest?wait=1", body, &jv); code != 200 || jv.Status != "done" {
		t.Fatalf("post-restart auto ingest = %d %+v", code, jv)
	}
	if jv.Stats == nil || jv.Stats.BatchTables != 0 || jv.Stats.Epoch != 1 {
		t.Errorf("post-restart auto ingest re-picked old tables: %+v", jv.Stats)
	}
}

// del issues a DELETE and decodes the response.
func (p *serverProc) del(t *testing.T, path string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, "http://"+p.addr+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("DELETE %s: decoding %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode
}

// TestLteeServeJobCancelOverHTTP drives DELETE /v1/jobs/{id} through the
// real TCP stack: cancelling a finished job conflicts, and cancelling an
// in-flight ingest ends it as "cancelled" without committing an epoch.
func TestLteeServeJobCancelOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end server test is not short")
	}
	p := startServer(t, t.TempDir())
	defer p.shutdown(t)

	var classes []serve.ClassView
	p.get(t, "/v1/classes", &classes)
	if len(classes) != 1 || classes[0].CorpusTables < 2 {
		t.Fatalf("classes = %+v", classes)
	}

	// A finished job cannot be cancelled.
	var done serve.JobView
	if code := p.post(t, "/v1/ingest?wait=1", `{"class":"GF-Player","auto":1}`, &done); code != 200 || done.Status != "done" {
		t.Fatalf("warm-up ingest = %d %+v", code, done)
	}
	if code := p.del(t, fmt.Sprintf("/v1/jobs/%d", done.ID), nil); code != http.StatusConflict {
		t.Errorf("DELETE finished job = %d, want 409", code)
	}

	// Cancel an in-flight ingest: submit async, cancel immediately, and
	// wait for the terminal state.
	var jv serve.JobView
	body := fmt.Sprintf(`{"class":"GF-Player","auto":%d}`, classes[0].CorpusTables)
	if code := p.post(t, "/v1/ingest", body, &jv); code != http.StatusAccepted {
		t.Fatalf("async ingest = %d", code)
	}
	var epochBefore int
	p.get(t, "/v1/classes", &classes)
	epochBefore = classes[0].Epoch

	code := p.del(t, fmt.Sprintf("/v1/jobs/%d", jv.ID), &jv)
	if code == http.StatusConflict {
		// The ingest finished before the DELETE landed — legal on a tiny
		// world. The job must then be in a terminal state already.
		p.get(t, fmt.Sprintf("/v1/jobs/%d", jv.ID), &jv)
		if jv.Status != "done" && jv.Status != "failed" {
			t.Fatalf("409 for non-terminal job: %+v", jv)
		}
		return
	}
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("DELETE running job = %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		p.get(t, fmt.Sprintf("/v1/jobs/%d", jv.ID), &jv)
		if jv.Status == "cancelled" || jv.Status == "done" || jv.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after cancel", jv.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The race between cancel and completion is inherent; both terminal
	// states are legal, but a cancelled job must not have committed.
	p.get(t, "/v1/classes", &classes)
	switch jv.Status {
	case "cancelled":
		if classes[0].Epoch != epochBefore {
			t.Errorf("cancelled ingest committed an epoch: %d -> %d", epochBefore, classes[0].Epoch)
		}
		// The engine stays healthy: a fresh ingest still works.
		var again serve.JobView
		if code := p.post(t, "/v1/ingest?wait=1", `{"class":"GF-Player","auto":1}`, &again); code != 200 || again.Status != "done" {
			t.Fatalf("post-cancel ingest = %d %+v", code, again)
		}
	case "done":
		// epochBefore may already include this job's commit: the engine
		// publishes its epoch at Ingest's commit point, slightly before
		// the job status flips to done, so both values are legal here.
		if got := classes[0].Epoch; got != epochBefore && got != epochBefore+1 {
			t.Errorf("done job but epoch %d, want %d or %d", got, epochBefore, epochBefore+1)
		}
	default:
		t.Fatalf("job ended %+v", jv)
	}
}

// TestLteeServeKillRestartReportsInterrupted is the crash e2e: a real
// ltee-serve process (the re-exec'd test binary) is SIGKILLed while an
// ingest job is running, and a restarted server over the same snapshot
// directory must report that job as interrupted — with inputs that, when
// resubmitted verbatim, converge (the commits-nothing invariant means the
// crash left no partial state behind).
func TestLteeServeKillRestartReportsInterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end server test is not short")
	}
	dir := t.TempDir()
	child := exec.Command(os.Args[0])
	child.Env = append(os.Environ(),
		"LTEE_SERVE_E2E_CHILD=1",
		"LTEE_SERVE_E2E_ARGS=-addr 127.0.0.1:0 -classes GF-Player -world 0.2 -corpus 0.12 -iterations 2 -workers 1 -snapshot "+dir,
	)
	stdout, err := child.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		child.Process.Kill()
		child.Wait()
	})

	// The child prints its bound address once it accepts connections.
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if line, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			addr = line
			break
		}
	}
	if addr == "" {
		t.Fatalf("child never listened (scan err %v)", sc.Err())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	p := &serverProc{addr: addr} // reuse the HTTP helpers against the child
	var classes []serve.ClassView
	if code := p.get(t, "/v1/classes", &classes); code != 200 || len(classes) != 1 {
		t.Fatalf("classes = %d %+v", code, classes)
	}
	auto := classes[0].CorpusTables

	// Submit a full-corpus ingest, wait until it is journaled as running,
	// then kill -9 the process mid-job.
	var jv serve.JobView
	body := fmt.Sprintf(`{"class":"GF-Player","auto":%d}`, auto)
	if code := p.post(t, "/v1/ingest", body, &jv); code != http.StatusAccepted {
		t.Fatalf("async ingest = %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for jv.Status != "running" {
		if time.Now().After(deadline) {
			t.Fatalf("job never started running: %+v", jv)
		}
		time.Sleep(5 * time.Millisecond)
		p.get(t, fmt.Sprintf("/v1/jobs/%d", jv.ID), &jv)
	}
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	child.Wait()

	// Restart over the same directory (in-process is fine now — the crash
	// already happened) and ask what was lost.
	p2 := startServer(t, dir)
	defer p2.shutdown(t)
	if !strings.Contains(p2.stdout.String(), "interrupted by a previous crash") {
		t.Errorf("restart did not announce interrupted jobs: %q", p2.stdout.String())
	}
	var jl serve.JobsView
	if code := p2.get(t, "/v1/jobs?status=interrupted", &jl); code != 200 || len(jl.Jobs) != 1 {
		t.Fatalf("interrupted listing = %d %+v", code, jl)
	}
	ij := jl.Jobs[0]
	if ij.ID != jv.ID || ij.Inputs == nil || ij.Inputs.Auto != auto {
		t.Fatalf("interrupted job = %+v", ij)
	}

	// Resubmit the reported inputs: the epoch the crash stole lands now.
	var redo serve.JobView
	body = fmt.Sprintf(`{"class":"GF-Player","auto":%d}`, ij.Inputs.Auto)
	if code := p2.post(t, "/v1/ingest?wait=1", body, &redo); code != 200 || redo.Status != "done" {
		t.Fatalf("resubmitted ingest = %d %+v", code, redo)
	}
	if redo.Stats == nil || redo.Stats.Epoch != 1 || redo.Stats.WrittenBack == 0 {
		t.Errorf("resubmission stats = %+v", redo.Stats)
	}
}

// TestParseFlagsRejectsNonsense: out-of-range numeric flags are usage
// errors with diagnostics.
func TestParseFlagsRejectsNonsense(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-workers", "-1"}, "-workers must be >= 0"},
		{[]string{"-world", "0"}, "-world must be positive"},
		{[]string{"-corpus", "-2"}, "-corpus must be positive"},
		{[]string{"-drain", "-1s"}, "-drain must be positive"},
	}
	for _, tc := range cases {
		var stderr bytes.Buffer
		if _, err := parseFlags(tc.args, &stderr); err == nil {
			t.Errorf("parseFlags(%v): want error", tc.args)
			continue
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("parseFlags(%v): diagnostic %q missing %q", tc.args, stderr.String(), tc.want)
		}
	}
}
