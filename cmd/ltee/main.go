// Command ltee runs the LTEE reproduction: it generates the synthetic
// world and web table corpus, trains the pipeline, and regenerates any of
// the paper's evaluation tables.
//
// Usage:
//
//	ltee -table 7              # print paper Table 7 (row clustering ablation)
//	ltee -all                  # print every table (Tables 1-12 + ranked eval)
//	ltee -run GF-Player        # run the full pipeline for one class and
//	                           # print a summary of the new entities found
//	ltee -world 0.3 -corpus 0.2 -seed 7 -table 11
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/kb"
	"repro/internal/report"
)

func main() {
	var (
		tableNum    = flag.Int("table", 0, "paper table to regenerate (1-13; 13 = ranked eval)")
		all         = flag.Bool("all", false, "regenerate every table")
		runClass    = flag.String("run", "", "run the full pipeline for a class (GF-Player, Song, Settlement)")
		worldScale  = flag.Float64("world", 0.35, "world scale (entity counts)")
		corpusScale = flag.Float64("corpus", 0.22, "corpus scale (table counts)")
		seed        = flag.Int64("seed", 1, "generation and learning seed")
		weights     = flag.Bool("weights", false, "print learned matcher weights (§3.1 analysis)")
		ablation    = flag.Bool("ablation", false, "print the aggregation-strategy ablation (§3.2)")
	)
	flag.Parse()

	s := report.NewSuite(report.Options{
		WorldScale: *worldScale, CorpusScale: *corpusScale, Seed: *seed,
	})
	fmt.Printf("world: %d entities, KB: %d instances, corpus: %d tables / %d rows\n\n",
		len(s.World.Entities), s.World.KB.NumInstances(), s.Corpus.Len(), s.Corpus.TotalRows())

	switch {
	case *all:
		for n := 1; n <= 13; n++ {
			printTable(s, n)
		}
	case *tableNum > 0:
		printTable(s, *tableNum)
	case *weights:
		fmt.Println(s.MatcherWeights())
	case *ablation:
		fmt.Println(s.AblationAggregation())
	case *runClass != "":
		runPipeline(s, *runClass)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printTable(s *report.Suite, n int) {
	switch n {
	case 1:
		fmt.Println(s.Table1())
	case 2:
		fmt.Println(s.Table2())
	case 3:
		fmt.Println(s.Table3())
	case 4:
		fmt.Println(s.Table4())
	case 5:
		fmt.Println(s.Table5())
	case 6:
		fmt.Println(s.Table6())
	case 7:
		fmt.Println(s.Table7())
	case 8:
		fmt.Println(s.Table8())
	case 9:
		fmt.Println(s.Table9())
	case 10:
		fmt.Println(s.Table10())
	case 11:
		fmt.Println(s.Table11())
	case 12:
		fmt.Println(s.Table12())
	case 13:
		fmt.Println(s.Table13())
	default:
		fmt.Fprintf(os.Stderr, "unknown table %d (want 1-13)\n", n)
		os.Exit(2)
	}
}

func runPipeline(s *report.Suite, name string) {
	var class kb.ClassID
	switch strings.ToLower(name) {
	case "gf-player", "gfplayer", "player":
		class = kb.ClassGFPlayer
	case "song":
		class = kb.ClassSong
	case "settlement":
		class = kb.ClassSettlement
	default:
		fmt.Fprintf(os.Stderr, "unknown class %q\n", name)
		os.Exit(2)
	}
	out := s.FullRun(class)
	newEnts := out.NewEntities()
	existing, _ := out.ExistingEntities()
	fmt.Printf("class %s: %d tables, %d rows, %d clusters\n",
		kb.ClassShortName(class), len(out.TableIDs), len(out.Rows), len(out.Entities))
	fmt.Printf("existing entities: %d, new entities: %d\n\n", len(existing), len(newEnts))
	max := 15
	if len(newEnts) < max {
		max = len(newEnts)
	}
	fmt.Println("sample of new entities:")
	for _, e := range newEnts[:max] {
		var facts []string
		for pid, v := range e.Facts {
			facts = append(facts, fmt.Sprintf("%s=%s", string(pid)[4:], v))
		}
		fmt.Printf("  %-28s %s\n", e.Label(), strings.Join(facts, ", "))
	}
}
