// Command ltee runs the LTEE reproduction: it generates the synthetic
// world and web table corpus, trains the pipeline, and regenerates any of
// the paper's evaluation tables. It is built entirely on the public ltee
// API (repro/ltee and friends).
//
// Usage:
//
//	ltee -table 7              # print paper Table 7 (row clustering ablation)
//	ltee -all                  # print every table (Tables 1-12 + ranked eval)
//	ltee -all -workers 8       # generate the tables on 8 workers
//	ltee -run GF-Player        # run the full pipeline for one class and
//	                           # print a summary of the new entities found
//	ltee -run Song -ingest-batches 4 -progress
//	                           # stream the class's tables through the
//	                           # incremental engine in 4 batches, printing
//	                           # per-epoch KB growth and per-stage progress
//	ltee -world 0.3 -corpus 0.2 -seed 7 -table 11
//	ltee -all -cpuprofile cpu.pprof -memprofile mem.pprof
//	                           # profile a full run (see README "Performance")
//
// With -workers N (default GOMAXPROCS; 1 = fully serial) the suite trains
// per-class models concurrently and -all generates all tables in parallel,
// printing them in order. Output is identical at every worker count.
//
// Interrupting the epoch loop of a streaming ingest (-ingest-batches)
// with Ctrl-C cancels it cooperatively: the in-flight epoch unwinds at
// its next checkpoint without committing anything, and a second Ctrl-C
// force-kills. Everywhere else — the other modes, and the classification/
// training that precedes the epoch loop — the default signal behavior is
// kept: Ctrl-C terminates immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"

	"repro/ltee"
	"repro/ltee/kb"
	"repro/ltee/scenario"
)

// errUsage signals a bad or missing action; unlike flag.ErrHelp (an
// explicit -h) it exits non-zero.
var errUsage = errors.New("usage")

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// config is the parsed command line.
type config struct {
	tableNum      int
	all           bool
	runClass      string
	ingestBatches int
	worldScale    float64
	corpusScale   float64
	seed          int64
	workers       int
	weights       bool
	ablation      bool
	progress      bool
	cpuProfile    string
	memProfile    string
}

// parseFlags parses the command line into a config (split from run so flag
// handling is testable without building a suite). Out-of-range values
// produce a diagnostic on stderr plus the usage text, never silent
// misbehavior.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("ltee", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.IntVar(&cfg.tableNum, "table", 0, "paper table to regenerate (1-13; 13 = ranked eval)")
	fs.BoolVar(&cfg.all, "all", false, "regenerate every table")
	fs.StringVar(&cfg.runClass, "run", "", "run the full pipeline for a class (GF-Player, Song, Settlement)")
	fs.IntVar(&cfg.ingestBatches, "ingest-batches", 0, "with -run: stream the class's tables through the incremental engine in N batches, writing new entities back to the KB per epoch")
	fs.Float64Var(&cfg.worldScale, "world", 0.35, "world scale (entity counts)")
	fs.Float64Var(&cfg.corpusScale, "corpus", 0.22, "corpus scale (table counts)")
	fs.Int64Var(&cfg.seed, "seed", 1, "generation and learning seed")
	fs.IntVar(&cfg.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	fs.BoolVar(&cfg.weights, "weights", false, "print learned matcher weights (§3.1 analysis)")
	fs.BoolVar(&cfg.ablation, "ablation", false, "print the aggregation-strategy ablation (§3.2)")
	fs.BoolVar(&cfg.progress, "progress", false, "print per-stage pipeline progress to stderr (requires -run)")
	fs.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&cfg.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	fail := func(format string, args ...any) (*config, error) {
		fmt.Fprintf(stderr, format+"\n", args...)
		fs.Usage()
		return nil, errUsage
	}
	if cfg.workers < 0 {
		return fail("-workers must be >= 0 (0 = GOMAXPROCS, 1 = serial; got %d)", cfg.workers)
	}
	if cfg.worldScale <= 0 {
		return fail("-world must be positive (got %g)", cfg.worldScale)
	}
	if cfg.corpusScale <= 0 {
		return fail("-corpus must be positive (got %g)", cfg.corpusScale)
	}
	if cfg.ingestBatches < 0 {
		return fail("-ingest-batches must be positive (got %d)", cfg.ingestBatches)
	}
	if cfg.ingestBatches > 0 && cfg.runClass == "" {
		return fail("-ingest-batches requires -run CLASS")
	}
	if cfg.progress && cfg.runClass == "" {
		return fail("-progress requires -run CLASS (the table modes emit no stage events)")
	}
	if cfg.tableNum < 0 || cfg.tableNum > 13 {
		return fail("unknown table %d (want 1-13)", cfg.tableNum)
	}
	if !cfg.all && cfg.tableNum == 0 && cfg.runClass == "" && !cfg.weights && !cfg.ablation {
		fs.Usage()
		return nil, errUsage
	}
	return cfg, nil
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	cfg, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}

	// Profiling hooks (-cpuprofile / -memprofile): hot-path work in this
	// repo is profile-driven, not guessed — see README "Performance".
	if cfg.cpuProfile != "" {
		f, ferr := os.Create(cfg.cpuProfile)
		if ferr != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", ferr)
			return 2
		}
		defer f.Close()
		if perr := pprof.StartCPUProfile(f); perr != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", perr)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if cfg.memProfile != "" {
		defer func() {
			f, ferr := os.Create(cfg.memProfile)
			if ferr != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", ferr)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live heap
			if perr := pprof.WriteHeapProfile(f); perr != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", perr)
			}
		}()
	}

	s := scenario.NewSuite(scenario.Options{
		WorldScale: cfg.worldScale, CorpusScale: cfg.corpusScale,
		Seed: cfg.seed, Workers: cfg.workers,
	})
	fmt.Fprintf(stdout, "world: %d entities, KB: %d instances, corpus: %d tables / %d rows\n\n",
		len(s.World.Entities), s.World.KB.NumInstances(), s.Corpus.Len(), s.Corpus.TotalRows())

	switch {
	case cfg.all:
		// Render all tables on the worker pool. Each table is delivered
		// through its own slot and printed as soon as its ordered prefix
		// is complete, so early tables stream out while later ones still
		// compute and the output is identical at every worker count.
		const nTables = 13
		type rendered struct {
			text string
			err  error
		}
		slots := make([]chan rendered, nTables)
		for i := range slots {
			slots[i] = make(chan rendered, 1)
		}
		workers := cfg.workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		sem := make(chan struct{}, workers)
		for i := range slots {
			go func(i int) {
				sem <- struct{}{}
				defer func() { <-sem }()
				text, err := renderTable(ctx, s, i+1)
				slots[i] <- rendered{text, err}
			}(i)
		}
		for i, slot := range slots {
			r := <-slot
			if r.err != nil {
				fmt.Fprintf(stderr, "ltee: table %d: %v\n", i+1, r.err)
				return 2
			}
			fmt.Fprintln(stdout, r.text)
		}
	case cfg.tableNum > 0:
		text, err := renderTable(ctx, s, cfg.tableNum)
		if err != nil {
			fmt.Fprintf(stderr, "ltee: table %d: %v\n", cfg.tableNum, err)
			return 2
		}
		fmt.Fprintln(stdout, text)
	case cfg.weights:
		t, err := s.MatcherWeights(ctx)
		if err != nil {
			fmt.Fprintln(stderr, "ltee:", err)
			return 2
		}
		fmt.Fprintln(stdout, t)
	case cfg.ablation:
		t, err := s.AblationAggregation(ctx)
		if err != nil {
			fmt.Fprintln(stderr, "ltee:", err)
			return 2
		}
		fmt.Fprintln(stdout, t)
	case cfg.runClass != "" && cfg.ingestBatches > 0:
		if !runIngest(ctx, s, cfg, stdout, stderr) {
			return 2
		}
	case cfg.runClass != "":
		if !runPipeline(ctx, s, cfg, stdout, stderr) {
			return 2
		}
	}
	return 0
}

func renderTable(ctx context.Context, s *scenario.Suite, n int) (string, error) {
	var t *scenario.TextTable
	var err error
	switch n {
	case 1:
		t, err = s.Table1(ctx)
	case 2:
		t, err = s.Table2(ctx)
	case 3:
		t, err = s.Table3(ctx)
	case 4:
		t, err = s.Table4(ctx)
	case 5:
		t, err = s.Table5(ctx)
	case 6:
		t, err = s.Table6(ctx)
	case 7:
		t, err = s.Table7(ctx)
	case 8:
		t, err = s.Table8(ctx)
	case 9:
		t, err = s.Table9(ctx)
	case 10:
		t, err = s.Table10(ctx)
	case 11:
		t, err = s.Table11(ctx)
	case 12:
		t, err = s.Table12(ctx)
	case 13:
		t, err = s.Table13(ctx)
	default:
		// parseFlags bounds n to 1-13; reaching this is a bug.
		panic(fmt.Sprintf("renderTable: table %d out of range", n))
	}
	if err != nil {
		return "", err
	}
	return t.String(), nil
}

// classByName resolves the user-facing class names to class IDs ("" for an
// unknown name).
func classByName(name string) kb.ClassID {
	switch strings.ToLower(name) {
	case "gf-player", "gfplayer", "player":
		return kb.ClassGFPlayer
	case "song":
		return kb.ClassSong
	case "settlement":
		return kb.ClassSettlement
	default:
		return ""
	}
}

// progressPrinter renders ltee progress events as per-stage lines.
func progressPrinter(stderr io.Writer) func(ltee.Event) {
	return func(ev ltee.Event) {
		switch {
		case ev.Iteration > 0:
			fmt.Fprintf(stderr, "  [epoch %d it %d] %-9s %d units\n", ev.Epoch, ev.Iteration, ev.Stage, ev.Count)
		case ev.Epoch > 0:
			fmt.Fprintf(stderr, "  [epoch %d]      %-9s %d units\n", ev.Epoch, ev.Stage, ev.Count)
		default:
			fmt.Fprintf(stderr, "  [%s%s] %d units\n", ev.Stage, trainDetail(ev), ev.Count)
		}
	}
}

func trainDetail(ev ltee.Event) string {
	if ev.Detail == "" {
		return ""
	}
	return ":" + ev.Detail
}

// reportIngestSetupErr prints a classification/training failure ahead of
// the epoch loop, naming cancellation explicitly so an interrupted ingest
// reads as cancelled rather than broken.
func reportIngestSetupErr(stderr io.Writer, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "ingest cancelled during setup: %v (nothing committed)\n", err)
		return
	}
	fmt.Fprintf(stderr, "ltee: %v\n", err)
}

// runIngest streams the class's corpus tables through the incremental
// ingestion engine in the given number of batches, printing per-epoch KB
// growth: tables ingested, entities, new detections, and instances written
// back into the knowledge base. Cancelling ctx (Ctrl-C) abandons the
// in-flight epoch without committing it.
func runIngest(ctx context.Context, s *scenario.Suite, cfg *config, stdout, stderr io.Writer) bool {
	class := classByName(cfg.runClass)
	if class == "" {
		fmt.Fprintf(stderr, "unknown class %q\n", cfg.runClass)
		return false
	}
	byClass, err := s.TablesByClass(ctx)
	if err != nil {
		reportIngestSetupErr(stderr, err)
		return false
	}
	tables := byClass[class]
	if len(tables) == 0 {
		fmt.Fprintf(stderr, "no corpus tables matched to %s\n", kb.ClassShortName(class))
		return false
	}
	batches := cfg.ingestBatches
	if batches > len(tables) {
		batches = len(tables)
	}
	models, err := s.ModelsFor(ctx, class)
	if err != nil {
		reportIngestSetupErr(stderr, err)
		return false
	}
	opts := []ltee.Option{
		ltee.WithModels(models),
		ltee.WithSeed(s.Seed),
		ltee.WithWorkers(cfg.workers),
	}
	if cfg.progress {
		opts = append(opts, ltee.WithProgress(progressPrinter(stderr)))
	}
	eng, err := ltee.NewEngine(s.World.KB, s.Corpus, class, opts...)
	if err != nil {
		fmt.Fprintf(stderr, "ltee: %v\n", err)
		return false
	}
	// Capture the interrupt signal only now, around the cancellable ingest
	// loop: the first Ctrl-C cancels the context (the epoch unwinds at its
	// next checkpoint, committing nothing) and stop() then restores the
	// default handler so a second Ctrl-C force-kills. The classification
	// and training above — and every non-ingest mode — never capture the
	// signal at all, so Ctrl-C terminates them immediately, as before.
	ctx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() { <-ctx.Done(); stop() }()
	before := s.World.KB.NumInstances()
	fmt.Fprintf(stdout, "incremental ingest: %d %s tables in %d batches (KB starts at %d instances)\n",
		len(tables), kb.ClassShortName(class), batches, before)
	for i := 0; i < batches; i++ {
		lo, hi := i*len(tables)/batches, (i+1)*len(tables)/batches
		_, st, err := eng.Ingest(ctx, tables[lo:hi])
		if err != nil {
			fmt.Fprintf(stderr, "ingest cancelled during epoch %d: %v (nothing committed for this epoch)\n", i+1, err)
			return false
		}
		fmt.Fprintf(stdout,
			"epoch %d: +%d tables (%d total) -> %d entities (%d new, %d matched), wrote %d instances, KB now %d\n",
			st.Epoch, st.BatchTables, st.TotalTables,
			st.Entities, st.NewEntities, st.Matched, st.WrittenBack, st.KBInstances)
	}
	fmt.Fprintf(stdout, "\nKB grew by %d instances over %d epochs (provenance %s)\n",
		s.World.KB.NumInstances()-before, eng.Epoch(), kb.ProvenanceIngest)
	return true
}

func runPipeline(ctx context.Context, s *scenario.Suite, cfg *config, stdout, stderr io.Writer) bool {
	class := classByName(cfg.runClass)
	if class == "" {
		fmt.Fprintf(stderr, "unknown class %q\n", cfg.runClass)
		return false
	}
	var out *ltee.Output
	if cfg.progress {
		// The suite's cached FullRun carries no progress hook, so the
		// -progress path builds the identical pipeline through the public
		// constructor (same models, seed and workers — the output is the
		// same) and attaches the callback.
		models, err := s.ModelsFor(ctx, class)
		if err != nil {
			fmt.Fprintf(stderr, "ltee: %v\n", err)
			return false
		}
		p, err := ltee.NewPipeline(s.World.KB, s.Corpus, class,
			ltee.WithModels(models),
			ltee.WithSeed(s.Seed),
			ltee.WithWorkers(cfg.workers),
			ltee.WithProgress(progressPrinter(stderr)),
		)
		if err != nil {
			fmt.Fprintf(stderr, "ltee: %v\n", err)
			return false
		}
		byClass, err := s.TablesByClass(ctx)
		if err != nil {
			fmt.Fprintf(stderr, "ltee: %v\n", err)
			return false
		}
		out, err = p.Run(ctx, byClass[class])
		if err != nil {
			fmt.Fprintf(stderr, "ltee: %v\n", err)
			return false
		}
	} else {
		var err error
		out, err = s.FullRun(ctx, class)
		if err != nil {
			fmt.Fprintf(stderr, "ltee: %v\n", err)
			return false
		}
	}
	newEnts := out.NewEntities()
	existing, _ := out.ExistingEntities()
	fmt.Fprintf(stdout, "class %s: %d tables, %d rows, %d clusters\n",
		kb.ClassShortName(class), len(out.TableIDs), len(out.Rows), len(out.Entities))
	fmt.Fprintf(stdout, "existing entities: %d, new entities: %d\n\n", len(existing), len(newEnts))
	max := 15
	if len(newEnts) < max {
		max = len(newEnts)
	}
	fmt.Fprintln(stdout, "sample of new entities:")
	for _, e := range newEnts[:max] {
		// Emit facts in sorted property order so runs are byte-identical.
		pids := make([]string, 0, len(e.Facts))
		for pid := range e.Facts {
			pids = append(pids, string(pid))
		}
		sort.Strings(pids)
		facts := make([]string, 0, len(pids))
		for _, pid := range pids {
			facts = append(facts, fmt.Sprintf("%s=%s", pid[4:], e.Facts[kb.PropertyID(pid)]))
		}
		fmt.Fprintf(stdout, "  %-28s %s\n", e.Label(), strings.Join(facts, ", "))
	}
	return true
}
