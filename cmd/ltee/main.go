// Command ltee runs the LTEE reproduction: it generates the synthetic
// world and web table corpus, trains the pipeline, and regenerates any of
// the paper's evaluation tables.
//
// Usage:
//
//	ltee -table 7              # print paper Table 7 (row clustering ablation)
//	ltee -all                  # print every table (Tables 1-12 + ranked eval)
//	ltee -all -workers 8       # generate the tables on 8 workers
//	ltee -run GF-Player        # run the full pipeline for one class and
//	                           # print a summary of the new entities found
//	ltee -run Song -ingest-batches 4
//	                           # stream the class's tables through the
//	                           # incremental engine in 4 batches, writing
//	                           # new entities back into the KB after each
//	                           # epoch and printing per-epoch KB growth
//	ltee -world 0.3 -corpus 0.2 -seed 7 -table 11
//	ltee -all -cpuprofile cpu.pprof -memprofile mem.pprof
//	                           # profile a full run (see README "Performance")
//
// With -workers N (default GOMAXPROCS; 1 = fully serial) the suite trains
// per-class models concurrently and -all generates all tables in parallel,
// printing them in order. Output is identical at every worker count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/par"
	"repro/internal/report"
)

// errUsage signals a bad or missing action; unlike flag.ErrHelp (an
// explicit -h) it exits non-zero.
var errUsage = errors.New("usage")

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config is the parsed command line.
type config struct {
	tableNum      int
	all           bool
	runClass      string
	ingestBatches int
	worldScale    float64
	corpusScale   float64
	seed          int64
	workers       int
	weights       bool
	ablation      bool
	cpuProfile    string
	memProfile    string
}

// parseFlags parses the command line into a config (split from run so flag
// handling is testable without building a suite).
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("ltee", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.IntVar(&cfg.tableNum, "table", 0, "paper table to regenerate (1-13; 13 = ranked eval)")
	fs.BoolVar(&cfg.all, "all", false, "regenerate every table")
	fs.StringVar(&cfg.runClass, "run", "", "run the full pipeline for a class (GF-Player, Song, Settlement)")
	fs.IntVar(&cfg.ingestBatches, "ingest-batches", 0, "with -run: stream the class's tables through the incremental engine in N batches, writing new entities back to the KB per epoch")
	fs.Float64Var(&cfg.worldScale, "world", 0.35, "world scale (entity counts)")
	fs.Float64Var(&cfg.corpusScale, "corpus", 0.22, "corpus scale (table counts)")
	fs.Int64Var(&cfg.seed, "seed", 1, "generation and learning seed")
	fs.IntVar(&cfg.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	fs.BoolVar(&cfg.weights, "weights", false, "print learned matcher weights (§3.1 analysis)")
	fs.BoolVar(&cfg.ablation, "ablation", false, "print the aggregation-strategy ablation (§3.2)")
	fs.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&cfg.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if cfg.ingestBatches < 0 {
		fmt.Fprintf(stderr, "-ingest-batches must be positive (got %d)\n", cfg.ingestBatches)
		return nil, errUsage
	}
	if cfg.ingestBatches > 0 && cfg.runClass == "" {
		fmt.Fprintln(stderr, "-ingest-batches requires -run CLASS")
		return nil, errUsage
	}
	if !cfg.all && cfg.tableNum == 0 && cfg.runClass == "" && !cfg.weights && !cfg.ablation {
		fs.Usage()
		return nil, errUsage
	}
	if cfg.tableNum < 0 || cfg.tableNum > 13 {
		fmt.Fprintf(stderr, "unknown table %d (want 1-13)\n", cfg.tableNum)
		return nil, errUsage
	}
	return cfg, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	cfg, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}

	// Profiling hooks (-cpuprofile / -memprofile): hot-path work in this
	// repo is profile-driven, not guessed — see README "Performance".
	if cfg.cpuProfile != "" {
		f, ferr := os.Create(cfg.cpuProfile)
		if ferr != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", ferr)
			return 2
		}
		defer f.Close()
		if perr := pprof.StartCPUProfile(f); perr != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", perr)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if cfg.memProfile != "" {
		defer func() {
			f, ferr := os.Create(cfg.memProfile)
			if ferr != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", ferr)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live heap
			if perr := pprof.WriteHeapProfile(f); perr != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", perr)
			}
		}()
	}

	s := report.NewSuite(report.Options{
		WorldScale: cfg.worldScale, CorpusScale: cfg.corpusScale,
		Seed: cfg.seed, Workers: cfg.workers,
	})
	fmt.Fprintf(stdout, "world: %d entities, KB: %d instances, corpus: %d tables / %d rows\n\n",
		len(s.World.Entities), s.World.KB.NumInstances(), s.Corpus.Len(), s.Corpus.TotalRows())

	switch {
	case cfg.all:
		// Render all tables on the worker pool. Each table is delivered
		// through its own slot and printed as soon as its ordered prefix
		// is complete, so early tables stream out while later ones still
		// compute and the output is identical at every worker count.
		const nTables = 13
		slots := make([]chan string, nTables)
		for i := range slots {
			slots[i] = make(chan string, 1)
		}
		go par.ForEach(cfg.workers, nTables, func(i int) {
			slots[i] <- renderTable(s, i+1)
		})
		for _, slot := range slots {
			fmt.Fprintln(stdout, <-slot)
		}
	case cfg.tableNum > 0:
		fmt.Fprintln(stdout, renderTable(s, cfg.tableNum))
	case cfg.weights:
		fmt.Fprintln(stdout, s.MatcherWeights())
	case cfg.ablation:
		fmt.Fprintln(stdout, s.AblationAggregation())
	case cfg.runClass != "" && cfg.ingestBatches > 0:
		if !runIngest(s, cfg.runClass, cfg.ingestBatches, stdout, stderr) {
			return 2
		}
	case cfg.runClass != "":
		if !runPipeline(s, cfg.runClass, stdout, stderr) {
			return 2
		}
	}
	return 0
}

func renderTable(s *report.Suite, n int) string {
	switch n {
	case 1:
		return s.Table1().String()
	case 2:
		return s.Table2().String()
	case 3:
		return s.Table3().String()
	case 4:
		return s.Table4().String()
	case 5:
		return s.Table5().String()
	case 6:
		return s.Table6().String()
	case 7:
		return s.Table7().String()
	case 8:
		return s.Table8().String()
	case 9:
		return s.Table9().String()
	case 10:
		return s.Table10().String()
	case 11:
		return s.Table11().String()
	case 12:
		return s.Table12().String()
	case 13:
		return s.Table13().String()
	default:
		// parseFlags bounds n to 1-13; reaching this is a bug.
		panic(fmt.Sprintf("renderTable: table %d out of range", n))
	}
}

// classByName resolves the user-facing class names to class IDs ("" for an
// unknown name).
func classByName(name string) kb.ClassID {
	switch strings.ToLower(name) {
	case "gf-player", "gfplayer", "player":
		return kb.ClassGFPlayer
	case "song":
		return kb.ClassSong
	case "settlement":
		return kb.ClassSettlement
	default:
		return ""
	}
}

// runIngest streams the class's corpus tables through the incremental
// ingestion engine in the given number of batches, printing per-epoch KB
// growth: tables ingested, entities, new detections, and instances written
// back into the knowledge base.
func runIngest(s *report.Suite, name string, batches int, stdout, stderr io.Writer) bool {
	class := classByName(name)
	if class == "" {
		fmt.Fprintf(stderr, "unknown class %q\n", name)
		return false
	}
	tables := s.TablesByClass()[class]
	if len(tables) == 0 {
		fmt.Fprintf(stderr, "no corpus tables matched to %s\n", kb.ClassShortName(class))
		return false
	}
	if batches > len(tables) {
		batches = len(tables)
	}
	models := s.ModelsFor(class)
	eng := core.NewEngine(s.Config(class), models)
	before := s.World.KB.NumInstances()
	fmt.Fprintf(stdout, "incremental ingest: %d %s tables in %d batches (KB starts at %d instances)\n",
		len(tables), kb.ClassShortName(class), batches, before)
	for i := 0; i < batches; i++ {
		lo, hi := i*len(tables)/batches, (i+1)*len(tables)/batches
		_, st := eng.Ingest(tables[lo:hi])
		fmt.Fprintf(stdout,
			"epoch %d: +%d tables (%d total) -> %d entities (%d new, %d matched), wrote %d instances, KB now %d\n",
			st.Epoch, st.BatchTables, st.TotalTables,
			st.Entities, st.NewEntities, st.Matched, st.WrittenBack, st.KBInstances)
	}
	fmt.Fprintf(stdout, "\nKB grew by %d instances over %d epochs (provenance %s)\n",
		s.World.KB.NumInstances()-before, eng.Epoch(), kb.ProvenanceIngest)
	return true
}

func runPipeline(s *report.Suite, name string, stdout, stderr io.Writer) bool {
	class := classByName(name)
	if class == "" {
		fmt.Fprintf(stderr, "unknown class %q\n", name)
		return false
	}
	out := s.FullRun(class)
	newEnts := out.NewEntities()
	existing, _ := out.ExistingEntities()
	fmt.Fprintf(stdout, "class %s: %d tables, %d rows, %d clusters\n",
		kb.ClassShortName(class), len(out.TableIDs), len(out.Rows), len(out.Entities))
	fmt.Fprintf(stdout, "existing entities: %d, new entities: %d\n\n", len(existing), len(newEnts))
	max := 15
	if len(newEnts) < max {
		max = len(newEnts)
	}
	fmt.Fprintln(stdout, "sample of new entities:")
	for _, e := range newEnts[:max] {
		// Emit facts in sorted property order so runs are byte-identical.
		pids := make([]string, 0, len(e.Facts))
		for pid := range e.Facts {
			pids = append(pids, string(pid))
		}
		sort.Strings(pids)
		facts := make([]string, 0, len(pids))
		for _, pid := range pids {
			facts = append(facts, fmt.Sprintf("%s=%s", pid[4:], e.Facts[kb.PropertyID(pid)]))
		}
		fmt.Fprintf(stdout, "  %-28s %s\n", e.Label(), strings.Join(facts, ", "))
	}
	return true
}
