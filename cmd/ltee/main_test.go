package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/ltee/kb"
)

func TestParseFlagsDefaults(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags([]string{"-table", "3"}, &stderr)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.tableNum != 3 || cfg.all || cfg.workers != 0 {
		t.Errorf("unexpected config: %+v", cfg)
	}
	if cfg.worldScale != 0.35 || cfg.corpusScale != 0.22 || cfg.seed != 1 {
		t.Errorf("default scales wrong: %+v", cfg)
	}
}

func TestParseFlagsAllOptions(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags(
		[]string{"-all", "-workers", "4", "-world", "0.3", "-corpus", "0.2", "-seed", "7"},
		&stderr)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !cfg.all || cfg.workers != 4 || cfg.worldScale != 0.3 || cfg.corpusScale != 0.2 || cfg.seed != 7 {
		t.Errorf("unexpected config: %+v", cfg)
	}
}

func TestParseFlagsNoAction(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseFlags(nil, &stderr); err == nil {
		t.Fatal("want usage error with no action flags")
	}
	if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "-table") {
		t.Errorf("usage not printed: %q", stderr.String())
	}
}

func TestParseFlagsBadTable(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseFlags([]string{"-table", "99"}, &stderr); err == nil {
		t.Fatal("want error for out-of-range table")
	}
	if !strings.Contains(stderr.String(), "unknown table") {
		t.Errorf("missing diagnostic: %q", stderr.String())
	}
}

func TestParseFlagsUnknownFlag(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseFlags([]string{"-nope"}, &stderr); err == nil {
		t.Fatal("want error for unknown flag")
	}
}

func TestClassByName(t *testing.T) {
	cases := map[string]kb.ClassID{
		"GF-Player":  kb.ClassGFPlayer,
		"gfplayer":   kb.ClassGFPlayer,
		"player":     kb.ClassGFPlayer,
		"Song":       kb.ClassSong,
		"settlement": kb.ClassSettlement,
		"nonsense":   "",
	}
	for name, want := range cases {
		if got := classByName(name); got != want {
			t.Errorf("classByName(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestRunBadArgs exercises run() on the error paths that do not build a
// suite (building one is covered by the report package tests).
func TestRunBadArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-table", "14"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}

func TestParseFlagsIngestBatches(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags([]string{"-run", "Song", "-ingest-batches", "3"}, &stderr)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.ingestBatches != 3 || cfg.runClass != "Song" {
		t.Errorf("unexpected config: %+v", cfg)
	}
	// -ingest-batches without -run is a usage error.
	if _, err := parseFlags([]string{"-ingest-batches", "3"}, &stderr); err == nil {
		t.Error("want usage error for -ingest-batches without -run")
	}
	if !strings.Contains(stderr.String(), "requires -run") {
		t.Errorf("missing diagnostic: %q", stderr.String())
	}
	// Negative batch counts are rejected.
	stderr.Reset()
	if _, err := parseFlags([]string{"-run", "Song", "-ingest-batches", "-1"}, &stderr); err == nil {
		t.Error("want usage error for negative -ingest-batches")
	}
}

// TestRunIngestBatchesEndToEnd exercises the streaming path end-to-end on
// a tiny world: every epoch must be reported, and the KB must grow.
func TestRunIngestBatchesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite build; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-run", "GF-Player", "-ingest-batches", "2",
		"-world", "0.15", "-corpus", "0.08",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"incremental ingest:", "epoch 1:", "epoch 2:", "KB grew by"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunIngestUnknownClass(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite build; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-run", "nonsense", "-ingest-batches", "2",
		"-world", "0.15", "-corpus", "0.08",
	}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown class") {
		t.Errorf("missing diagnostic: %q", stderr.String())
	}
}

// TestRunWritesProfiles exercises the -cpuprofile/-memprofile hooks: both
// files must exist and be non-empty after a small run.
func TestRunWritesProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite build; skipped in -short")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-table", "1", "-world", "0.15", "-corpus", "0.08",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestRunBadProfilePath: an unwritable profile path is a usage error, not
// a panic.
func TestRunBadProfilePath(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-table", "1", "-cpuprofile", "/nonexistent-dir/x.pprof"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestParseFlagsRejectsNonsense: negative or zero-nonsense numeric flags
// are usage errors with a diagnostic, not silent misbehavior.
func TestParseFlagsRejectsNonsense(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-table", "1", "-workers", "-2"}, "-workers must be >= 0"},
		{[]string{"-table", "1", "-world", "0"}, "-world must be positive"},
		{[]string{"-table", "1", "-world", "-0.5"}, "-world must be positive"},
		{[]string{"-table", "1", "-corpus", "0"}, "-corpus must be positive"},
	}
	for _, tc := range cases {
		var stderr bytes.Buffer
		if _, err := parseFlags(tc.args, &stderr); err == nil {
			t.Errorf("parseFlags(%v): want error", tc.args)
			continue
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("parseFlags(%v): diagnostic %q missing %q", tc.args, stderr.String(), tc.want)
		}
		if !strings.Contains(stderr.String(), "Usage") {
			t.Errorf("parseFlags(%v): usage text not printed", tc.args)
		}
	}
}

// TestRunIngestCancelledContext: an already-cancelled context aborts the
// streaming ingest without committing an epoch.
func TestRunIngestCancelledContext(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite build; skipped in -short")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{
		"-run", "GF-Player", "-ingest-batches", "2",
		"-world", "0.15", "-corpus", "0.08",
	}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "cancelled") {
		t.Errorf("missing cancellation diagnostic: %q", stderr.String())
	}
	if strings.Contains(stdout.String(), "epoch 1:") {
		t.Errorf("cancelled run still reported a committed epoch:\n%s", stdout.String())
	}
}

// TestParseFlagsProgressRequiresRun: -progress in a mode with no stage
// events is a usage error, not a silently ignored flag.
func TestParseFlagsProgressRequiresRun(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseFlags([]string{"-table", "1", "-progress"}, &stderr); err == nil {
		t.Fatal("want usage error for -progress without -run")
	}
	if !strings.Contains(stderr.String(), "-progress requires -run") {
		t.Errorf("missing diagnostic: %q", stderr.String())
	}
	if _, err := parseFlags([]string{"-run", "Song", "-progress"}, &stderr); err != nil {
		t.Fatalf("-run with -progress rejected: %v", err)
	}
}
