package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/kb"
)

func TestParseFlagsDefaults(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags([]string{"-table", "3"}, &stderr)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.tableNum != 3 || cfg.all || cfg.workers != 0 {
		t.Errorf("unexpected config: %+v", cfg)
	}
	if cfg.worldScale != 0.35 || cfg.corpusScale != 0.22 || cfg.seed != 1 {
		t.Errorf("default scales wrong: %+v", cfg)
	}
}

func TestParseFlagsAllOptions(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags(
		[]string{"-all", "-workers", "4", "-world", "0.3", "-corpus", "0.2", "-seed", "7"},
		&stderr)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !cfg.all || cfg.workers != 4 || cfg.worldScale != 0.3 || cfg.corpusScale != 0.2 || cfg.seed != 7 {
		t.Errorf("unexpected config: %+v", cfg)
	}
}

func TestParseFlagsNoAction(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseFlags(nil, &stderr); err == nil {
		t.Fatal("want usage error with no action flags")
	}
	if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "-table") {
		t.Errorf("usage not printed: %q", stderr.String())
	}
}

func TestParseFlagsBadTable(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseFlags([]string{"-table", "99"}, &stderr); err == nil {
		t.Fatal("want error for out-of-range table")
	}
	if !strings.Contains(stderr.String(), "unknown table") {
		t.Errorf("missing diagnostic: %q", stderr.String())
	}
}

func TestParseFlagsUnknownFlag(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseFlags([]string{"-nope"}, &stderr); err == nil {
		t.Fatal("want error for unknown flag")
	}
}

func TestClassByName(t *testing.T) {
	cases := map[string]kb.ClassID{
		"GF-Player":  kb.ClassGFPlayer,
		"gfplayer":   kb.ClassGFPlayer,
		"player":     kb.ClassGFPlayer,
		"Song":       kb.ClassSong,
		"settlement": kb.ClassSettlement,
		"nonsense":   "",
	}
	for name, want := range cases {
		if got := classByName(name); got != want {
			t.Errorf("classByName(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestRunBadArgs exercises run() on the error paths that do not build a
// suite (building one is covered by the report package tests).
func TestRunBadArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-table", "14"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}
