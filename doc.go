// Package repro reproduces "Extending Cross-Domain Knowledge Bases with
// Long Tail Entities using Web Table Data" (Oulabi & Bizer, EDBT 2019)
// and grows it into an incremental, servable long-tail entity extraction
// system.
//
// # Public API
//
// Everything importable lives under ltee/ — the versioned public surface:
//
//   - ltee: Engine/Pipeline construction via functional options
//     (WithWorkers, WithWriteBack, WithDedup, WithSeed, WithProgress, ...),
//     table-to-class matching, progress events, and the v1 stability
//     contract (see ltee.APIVersion).
//   - ltee/kb: the knowledge base — classes, instances, concurrent
//     growth, fuzzy search.
//   - ltee/webtable: the relational web-table model, HTML extraction, and
//     the WDC corpus format.
//   - ltee/dtype: typed values and comparison thresholds.
//   - ltee/scenario: the reproduction harness — deterministic synthetic
//     world, corpus, gold standards, trained models, and every evaluation
//     table of the paper.
//   - ltee/serve: the embeddable HTTP query/ingest server.
//   - ltee/cluster, ltee/agg, ltee/newdet, ltee/strsim, ltee/eval:
//     research-surface re-exports for clustering and detection studies.
//
// The minimal flow (see the package example and examples/quickstart):
//
//	byClass, _ := ltee.ClassifyTables(ctx, k, corpus)
//	eng, err := ltee.NewEngine(k, corpus, kb.ClassGFPlayer, ltee.WithWorkers(8))
//	out, stats, err := eng.Ingest(ctx, byClass[kb.ClassGFPlayer])
//
// # Cancellation
//
// Every long-running entry point takes a context.Context and cancels
// cooperatively: checkpoints sit at stage boundaries, inside the
// per-table and per-entity fan-outs, and between clustering batches and
// refinement rounds. A cancelled Ingest commits nothing — engine state
// and knowledge base are untouched, and the same batch can simply be
// retried. The serving layer exposes cancellation over HTTP as
// DELETE /v1/jobs/{id} and a deadline-bounded Shutdown.
//
// # The paper's pipeline
//
// The implementation under internal/ realizes the four-step LTEE process
// (schema matching, row clustering, entity creation, new detection, run
// for two iterations) over substrates built from scratch: a knowledge
// base with a class hierarchy and typed facts, a web-table model with
// HTML extraction and a synthetic corpus, string-similarity kernels, an
// inverted label index, learned matchers/scorers/detectors, the gold
// standard, and the paper's evaluation measures. internal/par provides
// the bounded worker pool behind every fan-out; all reductions are
// deterministic, so parallel runs are byte-identical to serial ones.
//
// # Incremental ingestion
//
// Beyond the paper's one-shot batch (ltee.Pipeline), ltee.Engine closes
// the knowledge-base completion loop for continuously arriving tables:
// each Ingest call is one epoch that matches, clusters and detects the
// batch against all retained state, then writes entities classified as
// new back into the KB (kb.ProvenanceIngest) so later batches match
// against earlier discoveries. Ingesting the whole corpus as one batch
// reproduces Pipeline.Run bit-for-bit.
//
// # Serving
//
// ltee/serve wraps one engine per class in a long-running HTTP/JSON
// server (cmd/ltee-serve): entity lookup, fuzzy label search,
// per-class/per-epoch statistics, asynchronous ingestion jobs —
// queryable, stage-annotated, and cancellable via DELETE /v1/jobs/{id} —
// and atomic snapshot persistence with warm restarts.
//
// # Performance
//
// The similarity hot path is an allocation-free, memoizing kernel
// (ltee/strsim re-exports it): pooled ASCII-fast Levenshtein, banded
// bounded variants, interned tokens with a Monge-Elkan pair memo, and
// prepared label forms threaded through clustering, matching, detection
// and the label index (whose fuzzy fallback runs on a single-deletion
// neighborhood index). cmd/ltee-bench tracks the hot-path benchmarks in
// BENCH_hotpath.json, gated in CI against bench_baseline.json.
//
// The benchmarks in bench_test.go regenerate every evaluation table of
// the paper; cmd/ltee prints them, and examples/ holds runnable
// end-to-end scenarios built exclusively on the public API.
//
// # Static analysis
//
// The invariants above — deterministic reductions, an unbroken
// cancellation chain, mutex-guarded state that never leaks, pooled
// buffers that always return, and the internal/ import boundary — are
// enforced mechanically by five project-specific analyzers (internal/lint:
// sortedrange, ctxflow, aliasret, poolput, internalboundary). CI runs
// them over the whole tree via the cmd/ltee-lint multichecker:
//
//	go run ./cmd/ltee-lint ./...
//
// A justified exception is suppressed in place with
// "//lteelint:ignore <analyzer> <reason>" on the line above the finding;
// the reason is mandatory and unused directives are themselves findings.
package repro
