// Package repro reproduces "Extending Cross-Domain Knowledge Bases with
// Long Tail Entities using Web Table Data" (Oulabi & Bizer, EDBT 2019).
//
// The library lives under internal/: internal/core is the four-step LTEE
// pipeline (schema matching, row clustering, entity creation, new
// detection, run for two iterations), and the surrounding packages are the
// substrates it depends on — a knowledge base (internal/kb), a web table
// model with HTML extraction and a synthetic corpus (internal/webtable), a
// synthetic world of head and long-tail entities (internal/world), typed
// values (internal/dtype), string similarity (internal/strsim), an inverted
// label index (internal/index), learning machinery (internal/ml,
// internal/agg), the gold standard (internal/gold), the paper's evaluation
// measures (internal/eval), and the table harness (internal/report).
//
// A shared concurrency layer (internal/par) provides the bounded worker
// pool and memoized lazy cells behind every hot path: the pipeline fans
// per-table schema matching and per-entity new detection out over the
// pool, training parallelizes its per-table and per-cluster loops, the
// greedy clusterer scores its batches on the same pool, and the report
// harness trains per-class models and CV folds concurrently behind
// singleflight-style cells. All fan-outs reduce in deterministic order,
// so parallel runs are byte-identical to serial ones (workers = 1).
//
// The benchmarks in bench_test.go regenerate every evaluation table of the
// paper; cmd/ltee prints them (the -workers flag drives all tables in
// parallel), and examples/ holds runnable end-to-end scenarios.
package repro
