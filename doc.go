// Package repro reproduces "Extending Cross-Domain Knowledge Bases with
// Long Tail Entities using Web Table Data" (Oulabi & Bizer, EDBT 2019).
//
// The library lives under internal/: internal/core is the four-step LTEE
// pipeline (schema matching, row clustering, entity creation, new
// detection, run for two iterations), and the surrounding packages are the
// substrates it depends on — a knowledge base (internal/kb), a web table
// model with HTML extraction and a synthetic corpus (internal/webtable), a
// synthetic world of head and long-tail entities (internal/world), typed
// values (internal/dtype), string similarity (internal/strsim), an inverted
// label index (internal/index), learning machinery (internal/ml,
// internal/agg), the gold standard (internal/gold), the paper's evaluation
// measures (internal/eval), and the table harness (internal/report).
//
// The benchmarks in bench_test.go regenerate every evaluation table of the
// paper; cmd/ltee prints them, and examples/ holds runnable end-to-end
// scenarios.
package repro
