// Package repro reproduces "Extending Cross-Domain Knowledge Bases with
// Long Tail Entities using Web Table Data" (Oulabi & Bizer, EDBT 2019).
//
// The library lives under internal/: internal/core is the four-step LTEE
// pipeline (schema matching, row clustering, entity creation, new
// detection, run for two iterations), and the surrounding packages are the
// substrates it depends on — a knowledge base (internal/kb), a web table
// model with HTML extraction and a synthetic corpus (internal/webtable), a
// synthetic world of head and long-tail entities (internal/world), typed
// values (internal/dtype), string similarity (internal/strsim), an inverted
// label index (internal/index), learning machinery (internal/ml,
// internal/agg), the gold standard (internal/gold), the paper's evaluation
// measures (internal/eval), and the table harness (internal/report).
//
// A shared concurrency layer (internal/par) provides the bounded worker
// pool and memoized lazy cells behind every hot path: the pipeline fans
// per-table schema matching, table-to-class matching and per-entity new
// detection out over the pool, training parallelizes its per-table and
// per-cluster loops, the greedy clusterer scores its batches on the same
// pool, and the report harness trains per-class models and CV folds
// concurrently behind singleflight-style cells. All fan-outs reduce in
// deterministic order, so parallel runs are byte-identical to serial ones
// (workers = 1).
//
// # Incremental ingestion
//
// Beyond the paper's one-shot batch (core.Pipeline.Run), core.Engine
// closes the knowledge-base completion loop for continuously arriving
// tables. Engine.Ingest accepts a table batch, runs the pipeline
// iterations scoped to the batch while clustering its rows against the
// retained state of all earlier batches, and then writes every entity
// classified as new back into the KB as a first-class instance carrying
// kb.ProvenanceIngest and the ingest epoch. Each Ingest call is one epoch:
//
//   - kb.KB supports safe concurrent post-construction growth and bumps a
//     monotonic Version on every mutation;
//   - match.Context property profiles and newdet.Detector candidate
//     lookups key their caches on that version, so they invalidate and
//     rebuild over the grown KB between epochs;
//   - cluster.Incremental retains the block index and grows the clustering
//     with each batch's rows instead of re-clustering from scratch;
//   - index.Index serves lookups concurrently while later batches add
//     postings.
//
// Rows arriving in a later batch therefore match the instances discovered
// earlier instead of re-creating them. Ingesting the whole corpus as one
// batch reproduces Pipeline.Run bit-for-bit; Pipeline is a thin wrapper
// over a single-use Engine with write-back disabled. The CLI exercises the
// streaming path with "ltee -run CLASS -ingest-batches N", printing KB
// growth per epoch, and BenchmarkIngestBatch vs BenchmarkFullRerun tracks
// the incremental speedup.
//
// # Serving
//
// internal/serve wraps one Engine per class in a long-running HTTP/JSON
// server (cmd/ltee-serve): entity lookup by instance ID, fuzzy label
// search over the inverted index, per-class/per-epoch statistics, and
// asynchronous ingestion. All mutation funnels through a single-writer
// job loop; concurrent readers rely on the KB's lock-free growth
// guarantees, the Engine's copy-returning accessors (Epoch, TableIDs,
// History, Last), and an LRU response cache keyed on kb.Version so hot
// lookups skip retrieval until the KB actually changes. With a snapshot
// directory configured, the server persists its discoveries atomically
// (kb.SaveSnapshot: write-backs as NDJSON plus a manifest with per-class
// epochs, temp-file + rename) and warm-starts from them after a restart,
// resuming each engine's epoch sequence via Engine.Resume instead of
// re-ingesting. BenchmarkServeLookup and BenchmarkServeSearch establish
// the serving-path latency numbers, cached vs uncached.
//
// # Performance
//
// internal/strsim is the allocation-free, memoizing similarity kernel
// every stage bottoms out in: pooled ASCII-fast Levenshtein, the banded
// bounded variants, interned tokens with a Monge-Elkan pair memo, and
// PreparedLabel forms threaded through cluster, match, newdet and the
// label index (whose fuzzy fallback runs on a single-deletion
// neighborhood index). Optimized kernels are provably equivalent to the
// retained naive references. cmd/ltee-bench runs the tracked hot-path
// benchmarks and emits BENCH_hotpath.json, gated in CI against
// bench_baseline.json; cmd/ltee takes -cpuprofile/-memprofile and
// cmd/ltee-serve mounts net/http/pprof behind -pprof.
//
// The benchmarks in bench_test.go regenerate every evaluation table of the
// paper; cmd/ltee prints them (the -workers flag drives all tables in
// parallel), and examples/ holds runnable end-to-end scenarios.
package repro
