package repro_test

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/webtable"
)

// Example demonstrates the minimal end-to-end flow: a knowledge base, a
// few web tables, and the two-iteration pipeline producing new entities.
func Example() {
	k := kb.New()
	k.AddInstance(&kb.Instance{
		Class:  kb.ClassGFPlayer,
		Labels: []string{"Tom Brady"},
		Facts: map[kb.PropertyID]dtype.Value{
			"dbo:position": dtype.NewNominal("QB"),
			"dbo:weight":   dtype.NewQuantity(225),
		},
		Popularity: 100,
	})

	corpus := webtable.NewCorpus([]*webtable.Table{
		{
			LabelCol: -1,
			Headers:  []string{"Player", "Position", "Weight"},
			Cells: [][]string{
				{"Tom Brady", "QB", "225"},
				{"Ulysses Drake", "TE", "250"},
			},
		},
		{
			LabelCol: -1,
			Headers:  []string{"Name", "Pos"},
			Cells: [][]string{
				{"Ulysses Drake", "TE"},
				{"Tom Brady", "QB"},
			},
		},
	})

	byClass := core.ClassifyTables(k, corpus, 0.3)
	cfg := core.DefaultConfig(k, corpus, kb.ClassGFPlayer)
	out := core.New(cfg, core.Models{}).Run(byClass[kb.ClassGFPlayer])

	var lines []string
	for i, e := range out.Entities {
		kind := "existing"
		if out.Detections[i].IsNew {
			kind = "new"
		}
		lines = append(lines, fmt.Sprintf("%s: %s (%d rows)", kind, e.Label(), len(e.Rows)))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// existing: Tom Brady (2 rows)
	// new: Ulysses Drake (2 rows)
}
