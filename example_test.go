package repro_test

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/ltee"
	"repro/ltee/dtype"
	"repro/ltee/kb"
	"repro/ltee/webtable"
)

// Example demonstrates the minimal end-to-end flow on the public API: a
// knowledge base, a few web tables, and the two-iteration pipeline
// producing new entities.
func Example() {
	k := kb.New()
	k.AddInstance(&kb.Instance{
		Class:  kb.ClassGFPlayer,
		Labels: []string{"Tom Brady"},
		Facts: map[kb.PropertyID]dtype.Value{
			"dbo:position": dtype.NewNominal("QB"),
			"dbo:weight":   dtype.NewQuantity(225),
		},
		Popularity: 100,
	})

	corpus := webtable.NewCorpus([]*webtable.Table{
		{
			LabelCol: -1,
			Headers:  []string{"Player", "Position", "Weight"},
			Cells: [][]string{
				{"Tom Brady", "QB", "225"},
				{"Ulysses Drake", "TE", "250"},
			},
		},
		{
			LabelCol: -1,
			Headers:  []string{"Name", "Pos"},
			Cells: [][]string{
				{"Ulysses Drake", "TE"},
				{"Tom Brady", "QB"},
			},
		},
	})

	ctx := context.Background()
	byClass, err := ltee.ClassifyTables(ctx, k, corpus)
	if err != nil {
		log.Fatal(err)
	}
	p, err := ltee.NewPipeline(k, corpus, kb.ClassGFPlayer)
	if err != nil {
		log.Fatal(err)
	}
	out, err := p.Run(ctx, byClass[kb.ClassGFPlayer])
	if err != nil {
		log.Fatal(err)
	}

	var lines []string
	for i, e := range out.Entities {
		kind := "existing"
		if out.Detections[i].IsNew {
			kind = "new"
		}
		lines = append(lines, fmt.Sprintf("%s: %s (%d rows)", kind, e.Label(), len(e.Rows)))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// existing: Tom Brady (2 rows)
	// new: Ulysses Drake (2 rows)
}
