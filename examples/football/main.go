// Football: the GF-Player scenario of the paper at laptop scale, on the
// public ltee API.
//
// The example generates a synthetic world of football players (some in the
// knowledge base, some long-tail), a corpus of roster/draft web tables over
// them, trains the pipeline on the derived gold standard, and runs the
// large-scale profiling for the class: how many new players can be added,
// with which property densities, and how accurate their facts are —
// mirroring §5 of the paper, where GF-Player gains +67% instances.
//
// Run with:
//
//	go run ./examples/football
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/ltee"
	"repro/ltee/dtype"
	"repro/ltee/eval"
	"repro/ltee/kb"
	"repro/ltee/scenario"
)

func main() {
	s := scenario.NewSuite(scenario.Options{WorldScale: 0.25, CorpusScale: 0.15, Seed: 42})
	class := kb.ClassGFPlayer

	prof := s.World.KB.ProfileClass(class)
	fmt.Printf("knowledge base: %d players with %d facts\n", prof.Instances, prof.Facts)
	fmt.Printf("world long tail: %d players not in the KB\n\n", len(s.World.NewEntities(class)))

	out, err := s.FullRun(context.Background(), class)
	if err != nil {
		log.Fatal(err)
	}
	newEnts := out.NewEntities()
	existing, _ := out.ExistingEntities()
	fmt.Printf("pipeline over %d tables: %d existing entities, %d new entities\n",
		len(out.TableIDs), len(existing), len(newEnts))

	// Fact accuracy against the world truth (the paper reports 0.95 for
	// GF-Player fact accuracy in Table 11).
	th := dtype.DefaultThresholds()
	acc := eval.FactAccuracy(newEnts, func(e *ltee.Entity) map[string]dtype.Value {
		for _, we := range s.World.NewEntities(class) {
			if we.Name == e.Label() {
				out := make(map[string]dtype.Value, len(we.Truth))
				for pid, v := range we.Truth {
					out[string(pid)] = v
				}
				return out
			}
		}
		return nil
	}, th)
	fmt.Printf("fact accuracy of new players: %.2f\n\n", acc)

	// Property densities of the new players (Table 12 shape: position and
	// team dense, birthDate and birthPlace sparse).
	counts := make(map[kb.PropertyID]int)
	for _, e := range newEnts {
		for pid := range e.Facts {
			counts[pid]++
		}
	}
	type pd struct {
		pid kb.PropertyID
		d   float64
	}
	var densities []pd
	for _, p := range s.World.KB.Schema(class) {
		d := 0.0
		if len(newEnts) > 0 {
			d = float64(counts[p.ID]) / float64(len(newEnts))
		}
		densities = append(densities, pd{p.ID, d})
	}
	sort.Slice(densities, func(i, j int) bool { return densities[i].d > densities[j].d })
	fmt.Println("property densities of new players:")
	for _, p := range densities {
		fmt.Printf("  %-18s %5.1f%%\n", string(p.pid)[4:], 100*p.d)
	}

	fmt.Println("\nsample new players:")
	max := 8
	if len(newEnts) < max {
		max = len(newEnts)
	}
	for _, e := range newEnts[:max] {
		fmt.Printf("  %-24s %d facts from %d rows\n", e.Label(), len(e.Facts), len(e.Rows))
	}
}
