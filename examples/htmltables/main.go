// HTML tables: from raw HTML pages to new knowledge base entities, using
// only the public ltee API.
//
// The WDC corpus the paper uses was extracted from Common Crawl HTML. This
// example exercises the same path end to end: raw HTML pages are parsed by
// the from-scratch extractor in ltee/webtable, relational tables are kept,
// layout tables are rejected, and the resulting corpus feeds the pipeline
// against a small knowledge base.
//
// Run with:
//
//	go run ./examples/htmltables
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/ltee"
	"repro/ltee/dtype"
	"repro/ltee/kb"
	"repro/ltee/webtable"
)

var pages = []string{
	`<html><body>
	<h2>Team roster 2012</h2>
	<table>
	  <caption>Offense</caption>
	  <tr><th>Player</th><th>Pos</th><th>College</th><th>Weight</th></tr>
	  <tr><td><a href="/brady">Tom Brady</a></td><td>QB</td><td>Michigan</td><td>225</td></tr>
	  <tr><td>Orville Plunkett</td><td>OT</td><td>Fresno State</td><td>310</td></tr>
	  <tr><td>Jerry Rice</td><td>WR</td><td>Mississippi Valley State</td><td>200</td></tr>
	</table>
	<table><tr><td>nav</td></tr></table>
	</body></html>`,
	`<html><body>
	<table>
	  <tr><th>Name</th><th>Position</th><th>Wt</th></tr>
	  <tr><td>Orville&nbsp;Plunkett</td><td>OT</td><td>312</td></tr>
	  <tr><td>Casper Nudge</td><td>K</td><td>180</td></tr>
	  <tr><td>Jerry Rice</td><td>WR</td><td>200</td></tr>
	</table>
	</body></html>`,
	`<html><body><p>No tables here at all.</p></body></html>`,
}

func main() {
	// 1. Extract relational tables from the HTML pages.
	var tables []*webtable.Table
	for i, page := range pages {
		extracted := webtable.ExtractHTML(page)
		fmt.Printf("page %d: %d relational table(s)\n", i+1, len(extracted))
		tables = append(tables, extracted...)
	}
	corpus := webtable.NewCorpus(tables)
	st := corpus.Stats()
	fmt.Printf("\ncorpus: %d tables, %d rows, avg %.1f columns\n\n",
		st.Tables, st.Rows, st.ColsAvg)

	// 2. A small knowledge base of known players.
	k := kb.New()
	for _, name := range []string{"Tom Brady", "Jerry Rice"} {
		k.AddInstance(&kb.Instance{
			Class:  kb.ClassGFPlayer,
			Labels: []string{name},
			Facts: map[kb.PropertyID]dtype.Value{
				"dbo:position": dtype.NewNominal("QB"),
			},
			Popularity: 50,
		})
	}

	// 3. Classify tables and run the pipeline.
	ctx := context.Background()
	byClass, err := ltee.ClassifyTables(ctx, k, corpus)
	if err != nil {
		log.Fatal(err)
	}
	p, err := ltee.NewPipeline(k, corpus, kb.ClassGFPlayer)
	if err != nil {
		log.Fatal(err)
	}
	out, err := p.Run(ctx, byClass[kb.ClassGFPlayer])
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pipeline results:")
	for i, e := range out.Entities {
		res := out.Detections[i]
		status := "UNSURE  "
		if res.IsNew {
			status = "NEW     "
		} else if res.Matched {
			status = "EXISTING"
		}
		fmt.Printf("  %s %-20s facts=%d rows=%d\n", status, e.Label(), len(e.Facts), len(e.Rows))
		pids := make([]string, 0, len(e.Facts))
		for pid := range e.Facts {
			pids = append(pids, string(pid))
		}
		sort.Strings(pids)
		for _, pid := range pids {
			fmt.Printf("             %-10s = %s\n", pid[4:], e.Facts[kb.PropertyID(pid)])
		}
	}
}
