// Quickstart: extend a tiny knowledge base with long-tail entities from a
// handful of hand-written web tables, using only the public ltee API.
//
// The example builds a knowledge base with three known football players,
// three small web tables that mention both known and unknown players, and
// runs the LTEE pipeline end to end: schema matching, row clustering,
// entity creation, and new detection. It prints which entities were
// matched to existing instances and which were identified as new, together
// with their fused descriptions.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/ltee"
	"repro/ltee/dtype"
	"repro/ltee/kb"
	"repro/ltee/webtable"
)

func main() {
	// 1. The knowledge base: three known players.
	k := kb.New()
	known := []struct {
		name, pos, college string
		weight             float64
	}{
		{"Tom Brady", "QB", "Michigan", 225},
		{"Jerry Rice", "WR", "Mississippi Valley State", 200},
		{"Joe Montana", "QB", "Notre Dame", 200},
	}
	for _, p := range known {
		k.AddInstance(&kb.Instance{
			Class:    kb.ClassGFPlayer,
			Labels:   []string{p.name},
			Abstract: p.name + " is an american football player.",
			Facts: map[kb.PropertyID]dtype.Value{
				"dbo:position": dtype.NewNominal(p.pos),
				"dbo:college":  dtype.NewRef(p.college),
				"dbo:weight":   dtype.NewQuantity(p.weight),
			},
			Popularity: 100,
		})
	}

	// 2. The web tables: known players mixed with long-tail ones. The
	// same unknown player appears in two tables under slightly different
	// labels, so clustering has something to merge.
	corpus := webtable.NewCorpus([]*webtable.Table{
		{
			LabelCol: -1,
			Caption:  "All-time roster",
			Headers:  []string{"Player", "Position", "College", "Weight"},
			Cells: [][]string{
				{"Tom Brady", "QB", "Michigan", "225"},
				{"Dexter Vance", "TE", "Toledo", "250"},
				{"Joe Montana", "QB", "Notre Dame", "200"},
			},
		},
		{
			LabelCol: -1,
			Caption:  "Draft class",
			Headers:  []string{"Name", "Pos", "School"},
			Cells: [][]string{
				{"Dexter Vance", "TE", "Toledo"},
				{"Marlon Quibble", "K", "Akron"},
				{"Jerry Rice", "WR", "Mississippi Valley State"},
			},
		},
		{
			LabelCol: -1,
			Caption:  "Special teams",
			Headers:  []string{"Player", "Weight", "Position"},
			Cells: [][]string{
				{"Marlon Quibble", "185", "K"},
				{"Tom Brady", "225", "QB"},
			},
		},
	})

	// 3. Run the two-iteration pipeline with unlearned defaults (the
	// defaults are plenty for clean tables; real corpora use trained
	// models via ltee.WithModels).
	ctx := context.Background()
	byClass, err := ltee.ClassifyTables(ctx, k, corpus)
	if err != nil {
		log.Fatal(err)
	}
	p, err := ltee.NewPipeline(k, corpus, kb.ClassGFPlayer)
	if err != nil {
		log.Fatal(err)
	}
	out, err := p.Run(ctx, byClass[kb.ClassGFPlayer])
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	fmt.Printf("processed %d tables, %d rows, %d entities\n\n",
		len(out.TableIDs), len(out.Rows), len(out.Entities))
	for i, e := range out.Entities {
		res := out.Detections[i]
		switch {
		case res.Matched:
			inst := k.Instance(res.Instance)
			fmt.Printf("EXISTING  %-16s -> %s (score %.2f)\n",
				e.Label(), inst.Label(), res.BestScore)
		case res.IsNew:
			fmt.Printf("NEW       %-16s rows=%d facts:\n", e.Label(), len(e.Rows))
			pids := make([]string, 0, len(e.Facts))
			for pid := range e.Facts {
				pids = append(pids, string(pid))
			}
			sort.Strings(pids)
			for _, pid := range pids {
				fmt.Printf("            %-14s = %s\n", pid[4:], e.Facts[kb.PropertyID(pid)])
			}
		default:
			fmt.Printf("UNSURE    %-16s (score %.2f)\n", e.Label(), res.BestScore)
		}
	}
}
