// Settlements: the class where almost everything already exists — on the
// public ltee API.
//
// Wikipedia deems any legally recognized place notable, so DBpedia's
// Settlement coverage is nearly complete — the paper finds only a +1%
// increase, and most returned "new" settlements are errors caused by
// conflicting values (outdated population counts, alternative isPartOf
// assignments) or by region/mountain tables slipping through
// table-to-class matching.
//
// This example reproduces those two failure modes directly: it shows how a
// conflicting population number lowers the entity-to-instance ATTRIBUTE
// similarity of a genuinely existing settlement, and how the confusable
// Region/Mountain instances in the KB attract near-miss candidates.
//
// Run with:
//
//	go run ./examples/settlements
package main

import (
	"context"
	"fmt"
	"log"

	"repro/ltee"
	"repro/ltee/agg"
	"repro/ltee/cluster"
	"repro/ltee/dtype"
	"repro/ltee/kb"
	"repro/ltee/newdet"
	"repro/ltee/scenario"
	"repro/ltee/strsim"
)

func main() {
	s := scenario.NewSuite(scenario.Options{WorldScale: 0.25, CorpusScale: 0.15, Seed: 11})
	class := kb.ClassSettlement

	fmt.Printf("world: %d settlements in the KB, %d long-tail settlements\n\n",
		len(s.World.HeadEntities(class)), len(s.World.NewEntities(class)))

	// Pick a head settlement whose KB instance carries both population
	// and isPartOf facts (KB densities are 62% and 89%, so not all do),
	// and create two versions of the entity a web table would yield: one
	// agreeing with the KB, one with an outdated population (±18%) and a
	// different isPartOf.
	heads := s.World.HeadEntities(class)
	headIdx := -1
	for i, e := range heads {
		_, hasPop := s.World.KB.Fact(e.KBID, "dbo:populationTotal")
		_, hasPart := s.World.KB.Fact(e.KBID, "dbo:isPartOf")
		if hasPop && hasPart {
			headIdx = i
			break
		}
	}
	head := heads[headIdx]
	pop := head.Truth["dbo:populationTotal"].Num
	region := head.Truth["dbo:isPartOf"]

	mk := func(pop float64, part dtype.Value) *ltee.Entity {
		return &ltee.Entity{
			Class:  class,
			Labels: []string{head.Name},
			Facts: map[kb.PropertyID]dtype.Value{
				"dbo:populationTotal": dtype.NewQuantity(pop),
				"dbo:isPartOf":        part,
			},
			BOW:      strsim.BinaryTermVector(head.Name),
			Implicit: map[kb.PropertyID]cluster.ImplicitAttr{},
		}
	}
	agreeing := mk(pop, region)
	conflicting := mk(pop*1.18, dtype.NewRef("Some Other County"))

	det := detector(s)
	env := &newdet.Env{KB: s.World.KB, Thresholds: dtype.DefaultThresholds()}
	fmt.Printf("settlement %q (KB instance %d):\n", head.Name, head.KBID)
	fmt.Printf("  agreeing entity   similarity = %+.3f\n", det.Score(env, agreeing, head.KBID))
	fmt.Printf("  conflicting entity similarity = %+.3f\n", det.Score(env, conflicting, head.KBID))
	fmt.Println("  (outdated population + different isPartOf push an existing")
	fmt.Println("   settlement toward a wrong NEW classification — §5's main")
	fmt.Println("   Settlement error source)")

	// Confusable places: Region/Mountain instances share names with
	// settlements and attract candidates.
	fmt.Println("\nconfusable Place instances in the KB:")
	for _, id := range s.World.KB.InstancesOf(kb.ClassRegion)[:2] {
		fmt.Printf("  %s (%s)\n", s.World.KB.InstanceLabel(id), "Region")
	}
	for _, id := range s.World.KB.InstancesOf(kb.ClassMountain)[:2] {
		fmt.Printf("  %s (%s)\n", s.World.KB.InstanceLabel(id), "Mountain")
	}

	// Full run: the headline number — settlements yield almost nothing.
	out, err := s.FullRun(context.Background(), class)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull pipeline run: %d entities, %d new (paper: Settlement gains ~+1%%)\n",
		len(out.Entities), len(out.NewEntities()))
}

func detector(s *scenario.Suite) *newdet.Detector {
	metrics := newdet.MetricSet()
	w := make([]float64, len(metrics))
	for i := range w {
		w[i] = 1 / float64(len(w))
	}
	return newdet.NewDetector(s.World.KB, &agg.WeightedAverage{Weights: w, Threshold: 0.5})
}
