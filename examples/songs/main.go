// Songs: the hardest class of the paper — homonyms and cover versions.
//
// Song titles collide constantly: different songs by different artists
// share a name, and cover versions even share runtime and writer. The
// paper finds Song is where row clustering and new detection lose the most
// performance (Table 9: F1 0.72 vs 0.87/0.80 for the other classes).
//
// This example builds a small world with an elevated homonym rate, then
// shows (1) how the ATTRIBUTE and BOW metrics pull apart same-title rows
// that labels alone cannot, and (2) the clustering quality gap between a
// label-only scorer and the full metric set.
//
// Run with:
//
//	go run ./examples/songs
package main

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/match"
	"repro/internal/report"
	"repro/internal/webtable"
)

func main() {
	s := report.NewSuite(report.Options{WorldScale: 0.25, CorpusScale: 0.15, Seed: 7})
	class := kb.ClassSong
	g := s.Golds[class]

	// Show the homonym problem in the generated world.
	byName := make(map[string][]string)
	for _, e := range s.World.ByClass[class] {
		artist := e.Truth["dbo:musicalArtist"].Str
		byName[e.Name] = append(byName[e.Name], artist)
	}
	fmt.Println("homonym titles in the world (same title, different artists):")
	shown := 0
	for name, artists := range byName {
		if len(artists) > 1 && shown < 5 {
			fmt.Printf("  %-20s by %v\n", name, artists)
			shown++
		}
	}

	// Prepare rows with the learned first-iteration mapping.
	models := s.ModelsFor(class)
	ctx := match.NewContext(s.World.KB, s.Corpus)
	ctx.Class = class
	mapping := make(map[int]map[int]kb.PropertyID)
	for _, tid := range g.TableIDs {
		t := s.Corpus.Table(tid)
		if t.ColKinds == nil {
			match.DetectColumnKinds(t)
		}
		if t.LabelCol < 0 {
			match.DetectLabelColumn(t)
		}
		mapping[tid] = match.MatchAttributes(ctx, models.AttrFirst, match.FirstIterationMatchers(), t)
	}
	builder := &cluster.Builder{KB: s.World.KB, Corpus: s.Corpus, Class: class, Mapping: mapping}
	rows := builder.Build(g.TableIDs)

	goldRows := make([][]webtable.RowRef, len(g.Clusters))
	for i, c := range g.Clusters {
		goldRows[i] = c.Rows
	}

	// Label-only clustering vs the full metric set.
	labelOnly := &cluster.Scorer{
		Metrics: cluster.MetricPrefix(1),
		Agg:     &agg.WeightedAverage{Weights: []float64{1}, Threshold: 0.85},
	}
	evalOf := func(sc *cluster.Scorer) eval.ClusterScores {
		cl := cluster.Cluster(rows, sc, cluster.NewOptions())
		var produced [][]webtable.RowRef
		for _, members := range cl.Clusters {
			refs := make([]webtable.RowRef, len(members))
			for i, r := range members {
				refs[i] = r.Ref
			}
			produced = append(produced, refs)
		}
		return eval.EvaluateClustering(goldRows, produced)
	}
	lab := evalOf(labelOnly)
	full := evalOf(models.ClusterScorer)
	fmt.Printf("\nclustering songs with labels only:  PCP=%.3f AR=%.3f F1=%.3f\n",
		lab.PCP, lab.AR, lab.F1)
	fmt.Printf("clustering songs with all metrics:  PCP=%.3f AR=%.3f F1=%.3f\n",
		full.PCP, full.AR, full.F1)
	fmt.Println("\nlabels alone merge homonym songs into one cluster; the ATTRIBUTE")
	fmt.Println("and BOW metrics use artist/runtime/album values to keep them apart.")
}
