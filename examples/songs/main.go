// Songs: the hardest class of the paper — homonyms and cover versions —
// on the public ltee API.
//
// Song titles collide constantly: different songs by different artists
// share a name, and cover versions even share runtime and writer. The
// paper finds Song is where row clustering and new detection lose the most
// performance (Table 9: F1 0.72 vs 0.87/0.80 for the other classes).
//
// This example builds a small world with an elevated homonym rate, then
// shows (1) how the ATTRIBUTE and BOW metrics pull apart same-title rows
// that labels alone cannot, and (2) the clustering quality gap between a
// label-only scorer and the full metric set.
//
// Run with:
//
//	go run ./examples/songs
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/ltee/agg"
	"repro/ltee/cluster"
	"repro/ltee/eval"
	"repro/ltee/kb"
	"repro/ltee/scenario"
	"repro/ltee/webtable"
)

func main() {
	s := scenario.NewSuite(scenario.Options{WorldScale: 0.25, CorpusScale: 0.15, Seed: 7})
	class := kb.ClassSong
	g := s.Golds[class]

	// Show the homonym problem in the generated world.
	byName := make(map[string][]string)
	for _, e := range s.World.ByClass[class] {
		artist := e.Truth["dbo:musicalArtist"].Str
		byName[e.Name] = append(byName[e.Name], artist)
	}
	fmt.Println("homonym titles in the world (same title, different artists):")
	// Sorted order so the sample is the same every run (map iteration
	// order used to make this listing nondeterministic).
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	shown := 0
	for _, name := range names {
		if artists := byName[name]; len(artists) > 1 && shown < 5 {
			fmt.Printf("  %-20s by %v\n", name, artists)
			shown++
		}
	}

	// Rows of the gold tables, prepared with the learned first-iteration
	// mapping (the same rows every clustering study in the suite uses).
	ctx := context.Background()
	models, err := s.ModelsFor(ctx, class)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := s.ClusterRows(ctx, class)
	if err != nil {
		log.Fatal(err)
	}

	goldRows := make([][]webtable.RowRef, len(g.Clusters))
	for i, c := range g.Clusters {
		goldRows[i] = c.Rows
	}

	// Label-only clustering vs the full metric set.
	labelOnly := &cluster.Scorer{
		Metrics: cluster.MetricPrefix(1),
		Agg:     &agg.WeightedAverage{Weights: []float64{1}, Threshold: 0.85},
	}
	evalOf := func(sc *cluster.Scorer) eval.ClusterScores {
		cl := cluster.Cluster(rows, sc, cluster.NewOptions())
		var produced [][]webtable.RowRef
		for _, members := range cl.Clusters {
			refs := make([]webtable.RowRef, len(members))
			for i, r := range members {
				refs[i] = r.Ref
			}
			produced = append(produced, refs)
		}
		return eval.EvaluateClustering(goldRows, produced)
	}
	lab := evalOf(labelOnly)
	full := evalOf(models.ClusterScorer)
	fmt.Printf("\nclustering songs with labels only:  PCP=%.3f AR=%.3f F1=%.3f\n",
		lab.PCP, lab.AR, lab.F1)
	fmt.Printf("clustering songs with all metrics:  PCP=%.3f AR=%.3f F1=%.3f\n",
		full.PCP, full.AR, full.F1)
	fmt.Println("\nlabels alone merge homonym songs into one cluster; the ATTRIBUTE")
	fmt.Println("and BOW metrics use artist/runtime/album values to keep them apart.")
}
