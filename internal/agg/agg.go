// Package agg implements the similarity score aggregation strategies shared
// by row clustering (§3.2) and new detection (§3.4): a learned weighted
// average, a random forest regression over similarity and confidence
// features, and their learned combination. All aggregators output a
// normalized score in [-1, 1] where positive means "match".
package agg

import (
	"math"
	"sync"

	"repro/internal/ml"
)

// Features holds one comparison's metric outputs: parallel slices of
// similarity scores and confidences (one entry per metric).
type Features struct {
	Scores []float64
	Confs  []float64
}

// Example is one labeled comparison for learning.
type Example struct {
	F     Features
	Match bool
}

// Aggregator maps a feature vector to a normalized match score in [-1, 1].
//
// Contract: Score must not retain or mutate f's slices after returning —
// the scoring hot paths (cluster.Scorer.Pair, newdet.Detector.Score)
// recycle feature vectors through BorrowFeatures/ReturnFeatures.
type Aggregator interface {
	Score(f Features) float64
}

// featuresPool backs BorrowFeatures/ReturnFeatures.
var featuresPool = sync.Pool{New: func() any { return new(Features) }}

// BorrowFeatures returns a pooled feature vector with n slots per side
// (contents unspecified; callers overwrite every slot). Pair-scoring hot
// paths wrap an Aggregator.Score call in BorrowFeatures/ReturnFeatures;
// the Aggregator contract above is what makes the recycling safe.
func BorrowFeatures(n int) *Features {
	f := featuresPool.Get().(*Features)
	if cap(f.Scores) < n {
		f.Scores, f.Confs = make([]float64, n), make([]float64, n)
	}
	f.Scores, f.Confs = f.Scores[:n], f.Confs[:n]
	return f
}

// ReturnFeatures recycles f; the caller must not touch it afterwards.
func ReturnFeatures(f *Features) { featuresPool.Put(f) }

// WeightedAverage aggregates metric scores by a learned weighted average
// with a learned decision threshold. Confidences are not considered (as in
// the paper). The raw average is mapped so that the threshold lands on 0.
type WeightedAverage struct {
	Weights   []float64
	Threshold float64
}

// Score returns the normalized weighted-average score.
func (w *WeightedAverage) Score(f Features) float64 {
	var s float64
	for i, wt := range w.Weights {
		if i < len(f.Scores) {
			s += wt * f.Scores[i]
		}
	}
	return normalizeAround(s, w.Threshold)
}

// normalizeAround maps s in [0,1] to [-1,1] with th landing on 0.
func normalizeAround(s, th float64) float64 {
	if th <= 0 {
		th = 1e-9
	}
	if th >= 1 {
		th = 1 - 1e-9
	}
	var out float64
	if s >= th {
		out = (s - th) / (1 - th)
	} else {
		out = (s - th) / th
	}
	return clamp(out)
}

// LearnWeighted fits weights and the threshold with a genetic algorithm
// maximizing pair-classification F1 on the (upsampled) learning set.
func LearnWeighted(examples []Example, nMetrics int, seed int64) *WeightedAverage {
	if len(examples) == 0 {
		return uniformWA(nMetrics)
	}
	idx := ml.Upsample(len(examples), seed, func(i int) bool { return examples[i].Match })
	fitness := func(genes []float64) float64 {
		w := ml.NormalizeWeights(genes[:nMetrics])
		th := genes[nMetrics]
		tp, fp, fn := 0, 0, 0
		for _, i := range idx {
			ex := examples[i]
			var s float64
			for j, wt := range w {
				if j < len(ex.F.Scores) {
					s += wt * ex.F.Scores[j]
				}
			}
			pred := s >= th
			switch {
			case pred && ex.Match:
				tp++
			case pred && !ex.Match:
				fp++
			case !pred && ex.Match:
				fn++
			}
		}
		return f1(tp, fp, fn)
	}
	genes, _ := ml.Optimize(ml.GAConfig{
		Genes: nMetrics + 1, Seed: seed, Generations: 40, Population: 50,
	}, fitness)
	return &WeightedAverage{
		Weights:   ml.NormalizeWeights(genes[:nMetrics]),
		Threshold: genes[nMetrics],
	}
}

func uniformWA(n int) *WeightedAverage {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return &WeightedAverage{Weights: w, Threshold: 0.5}
}

// ForestAggregator aggregates with a random forest regression over both
// similarity and confidence features; targets are +1 for matching pairs and
// -1 for non-matching pairs.
type ForestAggregator struct {
	Forest   *ml.Forest
	nMetrics int
}

// fvPool recycles the flattened feature vectors of ForestAggregator.Score
// (Forest.Predict only reads them), keeping the scoring hot path
// allocation-free. Package-level rather than per-aggregator so learned
// models stay plain comparable data (determinism tests DeepEqual them).
var fvPool = sync.Pool{New: func() any { return new([]float64) }}

// Score predicts the normalized match score.
func (fa *ForestAggregator) Score(f Features) float64 {
	n := 2 * fa.nMetrics
	xp := fvPool.Get().(*[]float64)
	if cap(*xp) < n {
		*xp = make([]float64, n)
	}
	x := (*xp)[:n]
	fillFeatureVector(x, f, fa.nMetrics)
	v := clamp(fa.Forest.Predict(x))
	*xp = x
	fvPool.Put(xp)
	return v
}

// featureVector lays out [score_0, conf_0, score_1, conf_1, ...].
func featureVector(f Features, nMetrics int) []float64 {
	x := make([]float64, 2*nMetrics)
	fillFeatureVector(x, f, nMetrics)
	return x
}

func fillFeatureVector(x []float64, f Features, nMetrics int) {
	for i := 0; i < nMetrics; i++ {
		x[2*i], x[2*i+1] = 0, 0
		if i < len(f.Scores) {
			x[2*i] = f.Scores[i]
		}
		if i < len(f.Confs) {
			x[2*i+1] = f.Confs[i]
		}
	}
}

// LearnForest trains the forest aggregator, selecting hyperparameters by
// out-of-bag error over a small candidate grid (as the paper does with
// different out-of-bag rates).
func LearnForest(examples []Example, nMetrics int, seed int64) *ForestAggregator {
	if len(examples) == 0 {
		return nil
	}
	idx := ml.Upsample(len(examples), seed, func(i int) bool { return examples[i].Match })
	X := make([][]float64, len(idx))
	y := make([]float64, len(idx))
	for k, i := range idx {
		X[k] = featureVector(examples[i].F, nMetrics)
		if examples[i].Match {
			y[k] = 1
		} else {
			y[k] = -1
		}
	}
	grid := []ml.ForestConfig{
		{Trees: 30, BagFraction: 0.6, Seed: seed},
		{Trees: 30, BagFraction: 0.8, Seed: seed},
		{Trees: 30, BagFraction: 1.0, Seed: seed},
	}
	forest, err := ml.TuneForest(X, y, grid)
	if err != nil {
		// Degenerate learning set (upsampling can only shrink to empty when
		// the input was empty, but guard anyway): fall back to no forest;
		// Combined degrades to the weighted average alone.
		return nil
	}
	return &ForestAggregator{Forest: forest, nMetrics: nMetrics}
}

// Combined aggregates the weighted average and the random forest with a
// learned mixing weight Alpha (score = Alpha·WA + (1−Alpha)·RF).
type Combined struct {
	WA    *WeightedAverage
	RF    *ForestAggregator
	Alpha float64
}

// Score returns the mixed normalized score.
func (c *Combined) Score(f Features) float64 {
	switch {
	case c.RF == nil:
		return c.WA.Score(f)
	case c.WA == nil:
		return c.RF.Score(f)
	}
	return clamp(c.Alpha*c.WA.Score(f) + (1-c.Alpha)*c.RF.Score(f))
}

// LearnCombined learns both aggregators and then the mixing weight.
func LearnCombined(examples []Example, nMetrics int, seed int64) *Combined {
	wa := LearnWeighted(examples, nMetrics, seed)
	rf := LearnForest(examples, nMetrics, seed)
	c := &Combined{WA: wa, RF: rf, Alpha: 0.5}
	if rf == nil || len(examples) == 0 {
		return c
	}
	idx := ml.Upsample(len(examples), seed, func(i int) bool { return examples[i].Match })
	genes, _ := ml.Optimize(ml.GAConfig{Genes: 1, Seed: seed, Generations: 25, Population: 25},
		func(g []float64) float64 {
			alpha := g[0]
			tp, fp, fn := 0, 0, 0
			for _, i := range idx {
				ex := examples[i]
				s := alpha*wa.Score(ex.F) + (1-alpha)*rf.Score(ex.F)
				pred := s > 0
				switch {
				case pred && ex.Match:
					tp++
				case pred && !ex.Match:
					fp++
				case !pred && ex.Match:
					fn++
				}
			}
			return f1(tp, fp, fn)
		})
	c.Alpha = genes[0]
	return c
}

// Importance returns the per-metric importance of a combined aggregator:
// the average of the metric's weight in the weighted average and its
// relative importance (score feature) in the random forest, as reported in
// Tables 7 and 8 of the paper.
func (c *Combined) Importance() []float64 {
	n := len(c.WA.Weights)
	out := make([]float64, n)
	var rfImp []float64
	if c.RF != nil {
		raw := c.RF.Forest.Importance()
		rfImp = make([]float64, n)
		var sum float64
		for i := 0; i < n; i++ {
			// Attribute both the score and the confidence feature of a
			// metric to that metric.
			rfImp[i] = raw[2*i] + raw[2*i+1]
			sum += rfImp[i]
		}
		if sum > 0 {
			for i := range rfImp {
				rfImp[i] /= sum
			}
		}
	}
	for i := 0; i < n; i++ {
		if rfImp != nil {
			out[i] = (c.WA.Weights[i] + rfImp[i]) / 2
		} else {
			out[i] = c.WA.Weights[i]
		}
	}
	return out
}

func clamp(x float64) float64 {
	return math.Max(-1, math.Min(1, x))
}

func f1(tp, fp, fn int) float64 {
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}
