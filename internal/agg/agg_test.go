package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeExamples builds a learnable dataset: metric 0 is the signal (high for
// matches), metric 1 is noise.
func makeExamples(n int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	var out []Example
	for i := 0; i < n; i++ {
		match := rng.Float64() < 0.35
		var s0 float64
		if match {
			s0 = 0.7 + 0.3*rng.Float64()
		} else {
			s0 = 0.4 * rng.Float64()
		}
		out = append(out, Example{
			F: Features{
				Scores: []float64{s0, rng.Float64()},
				Confs:  []float64{1, 1},
			},
			Match: match,
		})
	}
	return out
}

func accuracy(a Aggregator, examples []Example) float64 {
	ok := 0
	for _, ex := range examples {
		if (a.Score(ex.F) > 0) == ex.Match {
			ok++
		}
	}
	return float64(ok) / float64(len(examples))
}

func TestWeightedAverageLearning(t *testing.T) {
	ex := makeExamples(300, 1)
	wa := LearnWeighted(ex, 2, 1)
	if acc := accuracy(wa, ex); acc < 0.9 {
		t.Errorf("weighted average accuracy = %v, want > 0.9", acc)
	}
	// The signal metric should dominate the weights.
	if wa.Weights[0] <= wa.Weights[1] {
		t.Errorf("weights = %v, metric 0 should dominate", wa.Weights)
	}
}

func TestWeightedAverageEmpty(t *testing.T) {
	wa := LearnWeighted(nil, 3, 1)
	if len(wa.Weights) != 3 {
		t.Fatal("uniform fallback dims")
	}
	for _, w := range wa.Weights {
		if math.Abs(w-1.0/3.0) > 1e-9 {
			t.Errorf("uniform weights = %v", wa.Weights)
		}
	}
}

func TestWeightedAverageScoreRange(t *testing.T) {
	wa := &WeightedAverage{Weights: []float64{0.6, 0.4}, Threshold: 0.5}
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		s := wa.Score(Features{Scores: []float64{a, b}})
		return s >= -1 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Threshold lands on 0.
	if s := wa.Score(Features{Scores: []float64{0.5, 0.5}}); math.Abs(s) > 1e-9 {
		t.Errorf("score at threshold = %v, want 0", s)
	}
	if s := wa.Score(Features{Scores: []float64{1, 1}}); math.Abs(s-1) > 1e-9 {
		t.Errorf("score at max = %v, want 1", s)
	}
	if s := wa.Score(Features{Scores: []float64{0, 0}}); math.Abs(s+1) > 1e-9 {
		t.Errorf("score at min = %v, want -1", s)
	}
}

func TestNormalizeAroundDegenerate(t *testing.T) {
	if s := normalizeAround(0.5, 0); s <= 0 || s > 1 {
		t.Errorf("degenerate threshold 0: %v", s)
	}
	if s := normalizeAround(0.5, 1); s >= 0 || s < -1 {
		t.Errorf("degenerate threshold 1: %v", s)
	}
}

func TestForestAggregatorLearning(t *testing.T) {
	ex := makeExamples(300, 2)
	rf := LearnForest(ex, 2, 2)
	if rf == nil {
		t.Fatal("nil forest")
	}
	if acc := accuracy(rf, ex); acc < 0.9 {
		t.Errorf("forest accuracy = %v, want > 0.9", acc)
	}
}

func TestForestNilOnEmpty(t *testing.T) {
	if rf := LearnForest(nil, 2, 1); rf != nil {
		t.Error("empty training set should return nil")
	}
}

func TestCombinedLearning(t *testing.T) {
	ex := makeExamples(300, 3)
	c := LearnCombined(ex, 2, 3)
	if acc := accuracy(c, ex); acc < 0.9 {
		t.Errorf("combined accuracy = %v, want > 0.9", acc)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		t.Errorf("alpha = %v", c.Alpha)
	}
}

func TestCombinedFallsBackWithoutForest(t *testing.T) {
	c := &Combined{WA: uniformWA(2), RF: nil, Alpha: 0.5}
	s := c.Score(Features{Scores: []float64{1, 1}})
	if s <= 0 {
		t.Errorf("WA-only combined score = %v", s)
	}
}

func TestImportance(t *testing.T) {
	ex := makeExamples(400, 4)
	c := LearnCombined(ex, 2, 4)
	imp := c.Importance()
	if len(imp) != 2 {
		t.Fatalf("importance dims = %d", len(imp))
	}
	if imp[0] <= imp[1] {
		t.Errorf("importance = %v, signal metric should dominate", imp)
	}
}

func TestImportanceWithoutForest(t *testing.T) {
	c := &Combined{WA: &WeightedAverage{Weights: []float64{0.7, 0.3}, Threshold: 0.5}}
	imp := c.Importance()
	if imp[0] != 0.7 || imp[1] != 0.3 {
		t.Errorf("WA-only importance = %v", imp)
	}
}

func TestFeatureVectorLayout(t *testing.T) {
	f := Features{Scores: []float64{0.1, 0.2}, Confs: []float64{3, 4}}
	x := featureVector(f, 2)
	want := []float64{0.1, 3, 0.2, 4}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("featureVector = %v, want %v", x, want)
		}
	}
	// Missing confidences are zero-filled.
	x = featureVector(Features{Scores: []float64{0.5}}, 2)
	if x[1] != 0 || x[2] != 0 || x[3] != 0 {
		t.Errorf("zero filling = %v", x)
	}
}

func TestScoreRangeProperty(t *testing.T) {
	ex := makeExamples(150, 5)
	c := LearnCombined(ex, 2, 5)
	f := func(a, b, ca, cb float64) bool {
		feats := Features{
			Scores: []float64{math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))},
			Confs:  []float64{math.Abs(math.Mod(ca, 5)), math.Abs(math.Mod(cb, 5))},
		}
		s := c.Score(feats)
		return s >= -1 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCombinedScore(b *testing.B) {
	ex := makeExamples(200, 6)
	c := LearnCombined(ex, 2, 6)
	f := Features{Scores: []float64{0.6, 0.4}, Confs: []float64{1, 2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Score(f)
	}
}

func BenchmarkLearnCombined(b *testing.B) {
	ex := makeExamples(200, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LearnCombined(ex, 2, 7)
	}
}
