// Package bench holds the repo's hot-path benchmark bodies in importable
// form, so the same measurements run two ways: as ordinary `go test -bench`
// benchmarks (thin wrappers in the repo root) and through cmd/ltee-bench,
// which executes them with testing.Benchmark and emits machine-readable
// BENCH_hotpath.json — the perf trajectory every later PR is held to.
//
// Fixtures are built lazily and shared across benchmarks: world generation,
// corpus synthesis, and engine warm-up are paid once per process, outside
// the timed regions. All fixtures are deterministic (fixed seeds).
package bench

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/serve"
	"repro/internal/webtable"
	"repro/internal/world"
)

// Named pairs a benchmark body with the name it is tracked under in
// BENCH_hotpath.json.
type Named struct {
	Name string
	Fn   func(b *testing.B)
}

// All returns every tracked benchmark in a fixed order: similarity micro
// kernels first, then the pipeline-level paths (clustering, ingest, serve).
func All() []Named {
	return []Named{
		{Name: "Levenshtein", Fn: Levenshtein},
		{Name: "LevenshteinSim", Fn: LevenshteinSim},
		{Name: "MongeElkanSym", Fn: MongeElkanSym},
		{Name: "TermVector", Fn: TermVector},
		{Name: "ClusterGreedy", Fn: ClusterGreedy},
		{Name: "IngestBatch", Fn: IngestBatch},
		{Name: "ServeSearch/cold", Fn: ServeSearchCold},
		{Name: "ServeSearch/warm", Fn: ServeSearchWarm},
		{Name: "ServeSearch/oldscan", Fn: ServeSearchOldScan},
	}
}

// ---------------------------------------------------------------------------
// Shared fixtures.

// pipeFix is the clustering/world fixture: a small deterministic world and
// corpus plus prepared rows and an unlearned (uniform-weight) scorer, so
// the benchmark measures the clustering kernels rather than model training.
type pipeFix struct {
	w      *world.World
	corpus *webtable.Corpus
	tables []int
	rows   []*cluster.Row
	scorer *cluster.Scorer
}

var (
	pipeOnce sync.Once
	pipe     *pipeFix
)

func pipeFixture(b *testing.B) *pipeFix {
	b.Helper()
	pipeOnce.Do(func() {
		w := world.Generate(world.DefaultConfig(0.2))
		c := webtable.Synthesize(w, webtable.DefaultSynthConfig(0.12))
		byClass, _ := core.ClassifyTables(context.Background(), w.KB, c, 0.3, 0)
		tables := byClass[kb.ClassGFPlayer]
		builder := &cluster.Builder{KB: w.KB, Corpus: c, Class: kb.ClassGFPlayer}
		rows := builder.Build(tables)
		n := len(cluster.MetricSet())
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 1 / float64(n)
		}
		pipe = &pipeFix{
			w: w, corpus: c, tables: tables, rows: rows,
			scorer: &cluster.Scorer{
				Metrics: cluster.MetricSet(),
				Agg:     &agg.WeightedAverage{Weights: weights, Threshold: 0.5},
			},
		}
	})
	if len(pipe.rows) == 0 {
		b.Fatal("cluster fixture: no rows")
	}
	return pipe
}

// ClusterGreedy measures the parallelized greedy correlation clustering
// (blocking on, KLj off) over the prepared rows of the GF-Player class —
// the per-pair scoring hot path of every clustering run.
func ClusterGreedy(b *testing.B) {
	f := pipeFixture(b)
	opts := cluster.Options{Blocking: true, KLj: false, BatchSize: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := cluster.Cluster(f.rows, f.scorer, opts)
		if out.NumClusters() == 0 {
			b.Fatal("no clusters")
		}
	}
}

// ingestFix holds an engine that has already ingested the first half of
// the class's tables; the benchmark forks it and ingests the second half.
type ingestFix struct {
	base   *core.Engine
	second []int
}

var (
	ingestOnce sync.Once
	ingestErr  error
	ingest     *ingestFix
)

func ingestFixture(b *testing.B) *ingestFix {
	b.Helper()
	ingestOnce.Do(func() {
		f := pipeFixture(b)
		if len(f.tables) < 2 {
			ingestErr = fmt.Errorf("ingest fixture: only %d tables", len(f.tables))
			return
		}
		cfg := core.DefaultConfig(f.w.KB, f.corpus, kb.ClassGFPlayer)
		cfg.Iterations = 1
		eng := core.NewEngine(cfg, core.Models{})
		eng.WriteBack = false // keep the shared fixture KB pristine
		half := len(f.tables) / 2
		eng.Ingest(context.Background(), f.tables[:half])
		ingest = &ingestFix{base: eng, second: f.tables[half:]}
	})
	if ingestErr != nil {
		b.Fatalf("ingest fixture: %v", ingestErr)
	}
	return ingest
}

// IngestBatch measures ingesting the second half of the corpus into an
// engine retaining the first half's state (forked per iteration).
func IngestBatch(b *testing.B) {
	f := ingestFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := f.base.Fork()
		//lteelint:ignore ctxflow benchmark body; testing.B carries no context and the run must not be cancellable
		out, _, _ := eng.Ingest(context.Background(), f.second)
		if len(out.Entities) == 0 {
			b.Fatal("no entities")
		}
	}
}

// serveFix is the serving fixture: one grown KB behind two servers that
// differ only in response caching, plus a fuzzy query (one misspelled
// token) that exercises the index's fuzzy fallback on every cache miss.
type serveFix struct {
	cached   *serve.Server
	uncached *serve.Server
	query    string
}

var (
	serveOnce sync.Once
	serveErr  error
	serveF    *serveFix
)

func serveFixture(b *testing.B) *serveFix {
	b.Helper()
	serveOnce.Do(func() {
		f := pipeFixture(b)
		cfg := core.DefaultConfig(f.w.KB, f.corpus, kb.ClassGFPlayer)
		cfg.Iterations = 1
		cached, err := serve.New(serve.Config{
			KB: f.w.KB, Corpus: f.corpus,
			Engines: map[kb.ClassID]*core.Engine{kb.ClassGFPlayer: core.NewEngine(cfg, core.Models{})},
		})
		if err != nil {
			serveErr = err
			return
		}
		uncached, err := serve.New(serve.Config{
			KB: f.w.KB, Corpus: f.corpus,
			Engines:      map[kb.ClassID]*core.Engine{kb.ClassGFPlayer: core.NewEngine(cfg, core.Models{})},
			CacheEntries: -1,
		})
		if err != nil {
			serveErr = err
			return
		}
		serveF = &serveFix{
			cached:   cached,
			uncached: uncached,
			query:    "/v1/search?class=GF-Player&q=" + url.QueryEscape(fuzzQuery(f.w)),
		}
	})
	if serveErr != nil {
		b.Fatalf("serve fixture: %v", serveErr)
	}
	return serveF
}

// fuzzQuery derives a query from the first instance label carrying a
// ≥5-letter token, with that token misspelled (one middle letter dropped,
// so it stays ≥4 letters and has no exact posting) — search then takes the
// per-token fuzzy fallback on every cache miss, the path this PR rebuilds.
func fuzzQuery(w *world.World) string {
	for id := 0; id < w.KB.NumInstances(); id++ {
		label := w.KB.InstanceLabel(kb.InstanceID(id))
		toks := strings.Fields(label)
		for i, t := range toks {
			if len(t) >= 5 {
				toks[i] = t[:len(t)/2] + t[len(t)/2+1:]
				return strings.Join(toks, " ")
			}
		}
	}
	return "unmatchable"
}

func serveGet(b *testing.B, s *serve.Server, target string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, target, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("GET %s = %d", target, rec.Code)
		}
	}
}

// ServeSearchCold measures fuzzy label search with the response cache
// disabled: every request walks the posting index.
func ServeSearchCold(b *testing.B) {
	f := serveFixture(b)
	serveGet(b, f.uncached, f.query)
}

// ServeSearchWarm measures the same query through the LRU response cache.
func ServeSearchWarm(b *testing.B) {
	f := serveFixture(b)
	serveGet(b, f.cached, f.query)
}

// ServeSearchOldScan measures the cold path with the index forced onto the
// pre-optimization length-bucketed vocabulary scan, quantifying the win of
// the deletion-neighborhood posting index.
func ServeSearchOldScan(b *testing.B) {
	f := serveFixture(b)
	restore := useScanFuzzy()
	defer restore()
	serveGet(b, f.uncached, f.query)
}
