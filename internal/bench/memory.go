package bench

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/dtype"
	"repro/internal/kb"
)

// This file holds the storage benchmarks of the columnar KB substrate.
// Two tracked metrics prove the million-entity storage claims:
//
//   - KBMemory/100k reports kb-bytes/inst: the resident heap bytes per
//     instance of a KB holding 100k synthetic write-back-shaped instances
//     (one label, ~6 schema facts, popularity, ingest provenance),
//     including the label indexes. The columnar store must keep this
//     strictly below the row-store baseline recorded in
//     bench_baseline.json.
//   - SnapshotDelta reports written-bytes/op: the bytes SaveSnapshot
//     writes when persisting a small ingest epoch on top of an already
//     persisted base. Monolithic persistence rewrites the whole KB every
//     time; segmented persistence writes one small segment plus the
//     manifest, so this metric is the delta property in number form.
//
// Both run behind -scale (they build corpus-scale fixtures) and are gated
// against bench_baseline.json like every other tracked metric.

const (
	memKBSize     = 100_000
	snapBaseSize  = 20_000
	snapDeltaSize = 256
	snapWorldKey  = "bench-snapshot-delta"
)

// memPools are the small value vocabularies the synthetic facts draw
// from: nominal sets repeat heavily across instances (as real KB facts
// do), which is exactly what interned columnar storage exploits.
var (
	memPositions = []string{"quarterback", "running back", "wide receiver", "linebacker", "cornerback", "safety", "tight end", "guard"}
	memTeams     = []string{"ravens", "bears", "bengals", "browns", "cowboys", "broncos", "lions", "packers", "texans", "colts", "jaguars", "chiefs", "dolphins", "vikings", "patriots", "saints"}
	memColleges  = []string{"alabama", "ohio state", "michigan", "clemson", "georgia", "texas", "oklahoma", "notre dame"}
	memGenres    = []string{"rock", "pop", "country", "jazz", "blues", "folk", "soul", "electronic"}
	memArtists   = []string{"the meadowlarks", "silver canyon", "june atlas", "paper rivers", "cold harbor", "the night owls"}
	memLabels    = []string{"atlantic", "columbia", "decca", "motown", "sun", "verve"}
	memCountries = []string{"germany", "france", "italy", "spain", "poland", "austria", "portugal", "greece"}
	memRegions   = []string{"bavaria", "normandy", "tuscany", "andalusia", "silesia", "tyrol", "alentejo", "crete"}
)

// memInstance returns the i-th synthetic instance: classes cycle over the
// three evaluation classes, the label reuses the scale benchmarks'
// synthetic vocabulary, and the facts fill the class schema's common
// properties with values drawn from small pools — the shape of a KB grown
// by write-back at scale.
func memInstance(i, epoch int) *kb.Instance {
	label := synthLabel(i)
	in := &kb.Instance{
		Labels:      []string{label},
		Popularity:  float64(i%1000) / 10,
		Provenance:  kb.ProvenanceIngest,
		IngestEpoch: epoch,
	}
	switch i % 3 {
	case 0:
		in.Class = kb.ClassGFPlayer
		in.Facts = map[kb.PropertyID]dtype.Value{
			"dbo:position":  dtype.NewNominal(memPositions[i%len(memPositions)]),
			"dbo:team":      dtype.NewRef(memTeams[i%len(memTeams)]),
			"dbo:college":   dtype.NewRef(memColleges[i%len(memColleges)]),
			"dbo:number":    dtype.NewNominalInt(i%99 + 1),
			"dbo:height":    dtype.NewQuantity(float64(66 + i%18)),
			"dbo:birthDate": dtype.NewDate(1960+i%40, 1+i%12, 1+i%28),
		}
	case 1:
		in.Class = kb.ClassSong
		in.Facts = map[kb.PropertyID]dtype.Value{
			"dbo:genre":         dtype.NewNominal(memGenres[i%len(memGenres)]),
			"dbo:musicalArtist": dtype.NewRef(memArtists[i%len(memArtists)]),
			"dbo:recordLabel":   dtype.NewRef(memLabels[i%len(memLabels)]),
			"dbo:runtime":       dtype.NewQuantity(float64(120 + i%300)),
			"dbo:releaseDate":   dtype.NewYear(1950 + i%75),
		}
	default:
		in.Class = kb.ClassSettlement
		in.Facts = map[kb.PropertyID]dtype.Value{
			"dbo:country":         dtype.NewRef(memCountries[i%len(memCountries)]),
			"dbo:isPartOf":        dtype.NewRef(memRegions[i%len(memRegions)]),
			"dbo:populationTotal": dtype.NewQuantity(float64(500 + i%2_000_000)),
			"dbo:postalCode":      dtype.NewNominal("pc-" + synthVocab[i%len(synthVocab)]),
			"dbo:elevation":       dtype.NewQuantity(float64(i % 2400)),
		}
	}
	return in
}

// memInstances builds instances [lo, lo+n) at the given epoch.
func memInstances(lo, n, epoch int) []*kb.Instance {
	out := make([]*kb.Instance, n)
	for i := range out {
		out[i] = memInstance(lo+i, epoch)
	}
	return out
}

// buildMemKB builds a fresh KB holding n synthetic instances.
func buildMemKB(n int) *kb.KB {
	k := kb.New()
	k.AddInstances(memInstances(0, n, 1))
	return k
}

// KBMemory100k measures KB build time for 100k synthetic instances and
// reports kb-bytes/inst: the retained heap growth per instance once the
// temporary construction inputs are collected. The number includes the
// label indexes (identical across storage layouts), so a drop isolates
// the instance storage itself.
func KBMemory100k(b *testing.B) {
	var perInst float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		heapBefore := settledHeap()
		b.StartTimer()
		k := buildMemKB(memKBSize)
		b.StopTimer()
		heapAfter := settledHeap()
		perInst = float64(heapAfter-heapBefore) / float64(memKBSize)
		if k.NumInstances() != memKBSize {
			b.Fatalf("built %d instances, want %d", k.NumInstances(), memKBSize)
		}
		runtime.KeepAlive(k)
		b.StartTimer()
	}
	b.ReportMetric(perInst, "kb-bytes/inst")
}

// settledHeap returns HeapAlloc after back-to-back collections, so
// the delta across a build counts retained bytes, not garbage.
func settledHeap() int64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// ---------------------------------------------------------------------------
// SnapshotDelta: bytes written per incremental save.

type snapFix struct {
	k *kb.KB
	// baseDir holds the persisted state of the KB before the delta epoch;
	// each benchmark op restores it and saves on top.
	baseDir string
}

var (
	snapFixOnce sync.Once
	snapFixVal  *snapFix
	snapFixErr  error
)

// snapFixture builds (once per process) a KB of snapBaseSize ingested
// instances whose snapshot is persisted to a base directory, then adds a
// snapDeltaSize second epoch that the benchmark saves incrementally.
func snapFixture(b *testing.B) *snapFix {
	b.Helper()
	snapFixOnce.Do(func() {
		k := kb.New()
		k.AddInstances(memInstances(0, snapBaseSize, 1))
		dir, err := os.MkdirTemp("", "ltee-bench-snapbase-")
		if err != nil {
			snapFixErr = err
			return
		}
		if _, err := k.SaveSnapshot(dir, kb.Manifest{WorldKey: snapWorldKey}); err != nil {
			snapFixErr = err
			return
		}
		k.AddInstances(memInstances(snapBaseSize, snapDeltaSize, 2))
		snapFixVal = &snapFix{k: k, baseDir: dir}
	})
	if snapFixErr != nil {
		b.Fatalf("snapshot fixture: %v", snapFixErr)
	}
	return snapFixVal
}

// SnapshotDelta measures SaveSnapshot with a small second epoch on top of
// an already persisted base, reporting written-bytes/op: the total size
// of snapshot files created or replaced by the save. Restoring the base
// directory is untimed harness work.
func SnapshotDelta(b *testing.B) {
	f := snapFixture(b)
	work, err := os.MkdirTemp("", "ltee-bench-snapwork-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(work)
	var written int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := restoreDir(work, f.baseDir); err != nil {
			b.Fatal(err)
		}
		before := dirState(b, work)
		b.StartTimer()
		m, err := f.k.SaveSnapshot(work, kb.Manifest{WorldKey: snapWorldKey})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if m.Instances != snapBaseSize+snapDeltaSize {
			b.Fatalf("snapshot holds %d instances, want %d", m.Instances, snapBaseSize+snapDeltaSize)
		}
		written += changedBytes(b, work, before)
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(written)/float64(b.N), "written-bytes/op")
}

type fileState struct {
	size int64
	mod  time.Time
}

// dirState records size and mtime of every regular file in dir.
func dirState(b *testing.B, dir string) map[string]fileState {
	b.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	out := make(map[string]fileState, len(ents))
	for _, e := range ents {
		if !e.Type().IsRegular() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			b.Fatal(err)
		}
		out[e.Name()] = fileState{size: fi.Size(), mod: fi.ModTime()}
	}
	return out
}

// changedBytes sums the sizes of files that are new or rewritten since
// the before state — the bytes this save actually produced.
func changedBytes(b *testing.B, dir string, before map[string]fileState) int64 {
	b.Helper()
	var n int64
	for name, st := range dirState(b, dir) {
		if prev, ok := before[name]; ok && prev.size == st.size && prev.mod.Equal(st.mod) {
			continue
		}
		n += st.size
	}
	return n
}

// restoreDir resets dst to an exact copy of src's regular files.
func restoreDir(dst, src string) error {
	if err := os.RemoveAll(dst); err != nil {
		return err
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if !e.Type().IsRegular() {
			continue
		}
		body, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), body, 0o644); err != nil {
			return err
		}
	}
	return nil
}
