package bench

import (
	"testing"

	"repro/internal/strsim"
)

// microLabels is a deterministic mix of the label shapes the pipeline
// compares: short/long, ASCII and non-ASCII, near-duplicates and
// unrelated strings.
var microLabels = []string{
	"Aaron Rodgers",
	"Aron Rodgers (QB)",
	"Green Bay Packers",
	"green bay packers 2010",
	"Yesterday",
	"Yeserday — The Beatles",
	"São Paulo",
	"Sao Paolo settlement",
	"Zürich",
	"zurich (kanton)",
	"The Long and Winding Road",
	"long & winding road",
}

// Levenshtein measures the raw edit-distance kernel over all label pairs.
func Levenshtein(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range microLabels {
			for _, y := range microLabels {
				strsim.Levenshtein(x, y)
			}
		}
	}
}

// LevenshteinSim measures the normalized similarity over all label pairs.
func LevenshteinSim(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range microLabels {
			for _, y := range microLabels {
				strsim.LevenshteinSim(x, y)
			}
		}
	}
}

// MongeElkanSym measures the symmetric Monge-Elkan similarity (the LABEL
// metrics' kernel) over all label pairs.
func MongeElkanSym(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range microLabels {
			for _, y := range microLabels {
				strsim.MongeElkanSym(x, y)
			}
		}
	}
}

// TermVector measures the term-vector cosine over all label pairs (the BOW
// metrics' kernel shape). Vectors come from the prepared-label cache, as on
// the real hot paths — construction is paid once per distinct label, not
// once per comparison, and the steady state is allocation-free.
func TermVector(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range microLabels {
			for _, y := range microLabels {
				strsim.TermCosine(x, y)
			}
		}
	}
}
