package bench

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/strsim"
	"repro/internal/webtable"
	"repro/internal/world"
)

// This file holds the corpus-scale benchmarks of the LSH blocking layer.
// Two families prove the headline claim of sub-linear candidate
// generation:
//
//   - BlockAssign/{10k,100k}: block assignment for a fixed probe batch
//     against a label index of 10k vs 100k synthetic labels. The labels
//     share vocabulary tokens, so the exact reference path (full TF-IDF
//     search) scores a posting list that grows with the corpus, while the
//     hybrid retrieval (LSH buckets plus the capped rare-token walk)
//     stays bounded.
//   - IngestScale/{1x,10x}: a full engine epoch over a fixed 12-table
//     batch, with the retained corpus (tables, clusterer state, KB
//     instances, block labels) grown 10x by a filler population that
//     reuses the base population's common tokens. Per-epoch cost must
//     stay near-flat (the CI gate holds 10x within 2x of 1x); the -exact
//     variants document the reference path's growth.
//
// Scale() lists both families; cmd/ltee-bench runs them behind -scale.

// Scale returns the corpus-scale benchmarks in a fixed order. Besides the
// two LSH families above, the list carries the storage benchmarks of
// memory.go: KBMemory/100k (resident bytes per instance) and
// SnapshotDelta (bytes written per incremental save).
func Scale() []Named {
	return []Named{
		{Name: "BlockAssign/10k", Fn: BlockAssign10k},
		{Name: "BlockAssign/10k-exact", Fn: BlockAssign10kExact},
		{Name: "BlockAssign/100k", Fn: BlockAssign100k},
		{Name: "BlockAssign/100k-exact", Fn: BlockAssign100kExact},
		{Name: "IngestScale/1x", Fn: IngestScale1x},
		{Name: "IngestScale/1x-exact", Fn: IngestScale1xExact},
		{Name: "IngestScale/10x", Fn: IngestScale10x},
		{Name: "IngestScale/10x-exact", Fn: IngestScale10xExact},
		{Name: "KBMemory/100k", Fn: KBMemory100k},
		{Name: "SnapshotDelta", Fn: SnapshotDelta},
	}
}

// useExactCandidates forces the clustering blocker and the KB candidate
// retrieval onto their exact reference paths (full search instead of LSH
// plus re-ranking) and returns a restore func.
func useExactCandidates() func() {
	cluster.SetScanBlocking(true)
	kb.SetScanCandidates(true)
	return func() {
		cluster.SetScanBlocking(false)
		kb.SetScanCandidates(false)
	}
}

// ---------------------------------------------------------------------------
// BlockAssign: block retrieval cost vs label-corpus size.

// synthVocab is the shared token vocabulary of the synthetic labels.
// Reusing tokens across labels is the point: it makes the exact path's
// posting lists grow with the corpus, as a real Zipfian vocabulary would.
var synthVocab = func() []string {
	out := make([]string, 257)
	for i := range out {
		out[i] = fmt.Sprintf("w%c%c%d", 'a'+rune(i%26), 'a'+rune((i/26)%26), i%10)
	}
	return out
}()

// synthLabel returns the i-th synthetic label: two vocabulary tokens plus
// a unique disambiguator, so labels collide on postings yet stay distinct.
// The two token streams cycle with coprime periods (257 and 251), so token
// PAIRS essentially never repeat: the corpus grows each token's posting
// list linearly — the exact path's cost — without manufacturing an
// ever-growing class of near-duplicate labels that no blocker could prune.
func synthLabel(i int) string {
	a := synthVocab[(i*7+3)%len(synthVocab)]
	b := synthVocab[(i*13+5)%251]
	return a + " " + b + " u" + strconv.Itoa(i)
}

type blockFix struct {
	bi    *cluster.BlockIndex
	probe []*cluster.Row
}

var blockFixes sync.Map // labels int -> *blockFix

// blockFixture builds (once per size) a BlockIndex over n synthetic labels
// and a 64-row probe batch whose labels are already indexed, so each
// benchmark op measures pure block retrieval at corpus size n.
func blockFixture(b *testing.B, n int) *blockFix {
	b.Helper()
	if v, ok := blockFixes.Load(n); ok {
		return v.(*blockFix)
	}
	rows := make([]*cluster.Row, n)
	for i := range rows {
		rows[i] = &cluster.Row{NormLabel: strsim.Normalize(synthLabel(i))}
	}
	bi := cluster.NewBlockIndex()
	bi.Assign(rows, blockTopK)
	probe := make([]*cluster.Row, 64)
	step := n / len(probe)
	for i := range probe {
		probe[i] = &cluster.Row{NormLabel: strsim.Normalize(synthLabel(i * step))}
	}
	bf := &blockFix{bi: bi, probe: probe}
	blockFixes.Store(n, bf)
	return bf
}

// blockTopK mirrors the engine's default block fan-out.
const blockTopK = 6

func blockAssign(b *testing.B, n int, exact bool) {
	f := blockFixture(b, n)
	if exact {
		defer useExactCandidates()()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.bi.Assign(f.probe, blockTopK)
		if len(f.probe[0].Blocks) == 0 {
			b.Fatal("no blocks assigned")
		}
	}
}

func BlockAssign10k(b *testing.B)       { blockAssign(b, 10_000, false) }
func BlockAssign10kExact(b *testing.B)  { blockAssign(b, 10_000, true) }
func BlockAssign100k(b *testing.B)      { blockAssign(b, 100_000, false) }
func BlockAssign100kExact(b *testing.B) { blockAssign(b, 100_000, true) }

// ---------------------------------------------------------------------------
// IngestScale: engine epoch cost vs retained-corpus size.

type scaleFix struct {
	eng   *core.Engine
	batch []int
}

var scaleFixes sync.Map // scale int -> *scaleFix

// scaleFixture builds (once per scale) an engine whose retained state —
// clusterer, block labels, PHI statistics, and KB instances — covers the
// base world plus (scale-1) filler copies of it, then returns the engine
// and a fixed 12-table batch from the base population. Filler labels
// recombine the base vocabulary with a unique disambiguator token: the
// exact candidate paths must wade through the shared postings, while the
// batch's true match neighborhood (the base population) is identical at
// every scale. The warm-up ingests in two steps so the engine's
// entity/detection memos cover the retained clusters, exactly as a
// long-running engine's would.
func scaleFixture(b *testing.B, scale int) *scaleFix {
	b.Helper()
	sf, err := buildScaleFixture(scale)
	if err != nil {
		b.Fatalf("scale fixture: %v", err)
	}
	return sf
}

func buildScaleFixture(scale int) (*scaleFix, error) {
	if v, ok := scaleFixes.Load(scale); ok {
		return v.(*scaleFix), nil
	}
	w := world.Generate(world.DefaultConfig(0.2))
	c := webtable.Synthesize(w, webtable.DefaultSynthConfig(0.12))
	byClass, err := core.ClassifyTables(context.Background(), w.KB, c, 0.3, 0)
	if err != nil {
		return nil, fmt.Errorf("classify: %v", err)
	}
	base := byClass[kb.ClassGFPlayer]
	if len(base) < 13 {
		return nil, fmt.Errorf("only %d base tables", len(base))
	}
	batch := append([]int(nil), base[len(base)-12:]...)
	warm := append([]int(nil), base[:len(base)-12]...)

	// The two most frequent tokens of the base population's instance
	// labels, ties broken alphabetically. Filler labels borrow exactly
	// these: Zipfian corpus growth concentrates new postings on already
	// common tokens, so growing the corpus 10x pushes the common tokens'
	// document frequency past the rare-token cap — both retrieval layers
	// (LSH banding and the rare-token walk) then prune filler matches,
	// while the rare name tokens of the base population gain no postings
	// at all and keep their walks bounded. The exact paths have no such
	// cap and must score every posting of a shared common token.
	freq := make(map[string]int)
	for _, id := range w.KB.InstancesOf(kb.ClassGFPlayer) {
		for _, tok := range strsim.Tokens(w.KB.InstanceLabel(id)) {
			freq[tok]++
		}
	}
	vocab := make([]string, 0, len(freq))
	for tok := range freq {
		vocab = append(vocab, tok)
	}
	sort.Slice(vocab, func(i, j int) bool {
		if freq[vocab[i]] != freq[vocab[j]] {
			return freq[vocab[i]] > freq[vocab[j]]
		}
		return vocab[i] < vocab[j]
	})
	common := vocab[0] + " " + vocab[1]
	// fillerLabel names the filler entity for base row index i: the two
	// common base tokens (so the exact paths' posting lists for those
	// tokens grow linearly with scale, past the rare cap) diluted by two
	// filler-own tokens (so the trigram Jaccard against any base label
	// stays low and LSH prunes the pair, and the common tokens' relative
	// TF-IDF mass stays under the block score floor). The label is keyed
	// by the BASE row, not a running counter: the scale copies repeat it,
	// giving every filler entity its own duplicate class — as real corpus
	// growth does — instead of a unique label whose nearest neighbours
	// are all in the base population.
	fillerLabel := func(i int) string {
		return common +
			" qf" + strconv.Itoa((i*3+1)%53) +
			"x n" + strconv.Itoa(i)
	}

	// kbLabel names the s-th copy's distinct KB filler instance for base
	// row index i — same shape as fillerLabel (common tokens, diluted),
	// but unique per copy: the KB gains ~10x distinct instances carrying
	// common tokens, which is what the detector's exact candidate path
	// must wade through.
	kbLabel := func(s, i int) string {
		return common +
			" qk" + strconv.Itoa((i*5+2)%59) +
			"w um" + strconv.Itoa(i) + "e" + strconv.Itoa(s)
	}

	var fillerIns []*kb.Instance
	for s := 1; s < scale; s++ {
		li := 0
		for _, tid := range base {
			src := c.Tables[tid]
			if src.LabelCol < 0 {
				continue
			}
			nt := &webtable.Table{
				SourceURL: src.SourceURL,
				Caption:   src.Caption,
				Headers:   append([]string(nil), src.Headers...),
				LabelCol:  src.LabelCol,
				ColKinds:  append(src.ColKinds[:0:0], src.ColKinds...),
				Cells:     make([][]string, len(src.Cells)),
			}
			for r := range src.Cells {
				// Rotate the attribute cells by the copy number: filler
				// rows draw values from the base distribution without
				// being cell-for-cell twins of any base row, so they are
				// genuinely new entities rather than relabeled duplicates
				// that would cluster into the batch's neighborhood.
				row := append([]string(nil), src.Cells[(r+s)%len(src.Cells)]...)
				l := fillerLabel(li)
				li++
				row[src.LabelCol] = l
				nt.Cells[r] = row
				if s == 1 {
					fillerIns = append(fillerIns, &kb.Instance{Class: kb.ClassGFPlayer, Labels: []string{l}})
				}
				fillerIns = append(fillerIns, &kb.Instance{Class: kb.ClassGFPlayer, Labels: []string{kbLabel(s, li-1)}})
			}
			nt.ID = len(c.Tables)
			c.Tables = append(c.Tables, nt)
			warm = append(warm, nt.ID)
		}
	}
	w.KB.AddInstances(fillerIns)

	cfg := core.DefaultConfig(w.KB, c, kb.ClassGFPlayer)
	cfg.Iterations = 1
	eng := core.NewEngine(cfg, core.Models{})
	eng.WriteBack = false // the filler KB instances stay; epochs must not add more
	cut := len(warm) - 2
	if _, _, err := eng.Ingest(context.Background(), warm[:cut]); err != nil {
		return nil, fmt.Errorf("warm ingest: %v", err)
	}
	if _, _, err := eng.Ingest(context.Background(), warm[cut:]); err != nil {
		return nil, fmt.Errorf("warm ingest: %v", err)
	}
	sf := &scaleFix{eng: eng, batch: batch}
	scaleFixes.Store(scale, sf)
	return sf, nil
}

func ingestScale(b *testing.B, scale int, exact bool) {
	f := scaleFixture(b, scale)
	if exact {
		defer useExactCandidates()()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The fork is the bench harness's isolation, not epoch work: a
		// long-running engine ingests in place.
		b.StopTimer()
		eng := f.eng.Fork()
		b.StartTimer()
		out, _, err := eng.Ingest(context.Background(), f.batch)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Entities) == 0 {
			b.Fatal("no entities")
		}
	}
}

func IngestScale1x(b *testing.B)       { ingestScale(b, 1, false) }
func IngestScale1xExact(b *testing.B)  { ingestScale(b, 1, true) }
func IngestScale10x(b *testing.B)      { ingestScale(b, 10, false) }
func IngestScale10xExact(b *testing.B) { ingestScale(b, 10, true) }
