package bench

import "repro/internal/index"

// useScanFuzzy forces the label index onto the reference length-bucketed
// fuzzy scan and returns a restore func.
func useScanFuzzy() func() {
	index.SetScanFuzzy(true)
	return func() { index.SetScanFuzzy(false) }
}
