package cluster

import (
	"testing"

	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/webtable"
)

// implicitFixture builds a KB with players sharing a team and a table
// listing exactly those players without a team column.
func implicitFixture() (*kb.KB, *webtable.Corpus) {
	k := kb.New()
	names := []string{"Amos Quill", "Barton Hedge", "Cyrus Fenn"}
	for _, n := range names {
		k.AddInstance(&kb.Instance{
			Class:  kb.ClassGFPlayer,
			Labels: []string{n},
			Facts: map[kb.PropertyID]dtype.Value{
				"dbo:team":     dtype.NewRef("Patriots"),
				"dbo:position": dtype.NewNominal("QB"),
			},
		})
	}
	// A distractor with a different team.
	k.AddInstance(&kb.Instance{
		Class:  kb.ClassGFPlayer,
		Labels: []string{"Dorian Blunt"},
		Facts: map[kb.PropertyID]dtype.Value{
			"dbo:team": dtype.NewRef("Raiders"),
		},
	})
	corpus := webtable.NewCorpus([]*webtable.Table{
		{
			Headers:  []string{"Player", "Pos"},
			LabelCol: 0,
			Cells: [][]string{
				{"Amos Quill", "QB"},
				{"Barton Hedge", "QB"},
				{"Cyrus Fenn", "QB"},
			},
		},
	})
	return k, corpus
}

func TestBuilderDerivesImplicitAttributes(t *testing.T) {
	k, corpus := implicitFixture()
	b := &Builder{
		KB: k, Corpus: corpus, Class: kb.ClassGFPlayer,
		Mapping: map[int]map[int]kb.PropertyID{0: {1: "dbo:position"}},
	}
	rows := b.Build([]int{0})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Every row of the table shares the implicit team=Patriots attribute.
	for _, r := range rows {
		ia, ok := r.Implicit["dbo:team"]
		if !ok {
			t.Fatalf("row %v missing implicit team attribute: %v", r.Ref, r.Implicit)
		}
		if ia.Value.Str != "patriots" {
			t.Errorf("implicit team = %+v", ia.Value)
		}
		if ia.Score < 0.99 {
			t.Errorf("implicit team support = %v, want 1.0 (all rows)", ia.Score)
		}
	}
}

func TestBuilderImplicitThreshold(t *testing.T) {
	k, corpus := implicitFixture()
	b := &Builder{
		KB: k, Corpus: corpus, Class: kb.ClassGFPlayer,
		Mapping: map[int]map[int]kb.PropertyID{},
		Config:  BuildConfig{ImplicitThreshold: 1.1}, // impossible
	}
	rows := b.Build([]int{0})
	for _, r := range rows {
		if len(r.Implicit) != 0 {
			t.Errorf("implicit attributes above impossible threshold: %v", r.Implicit)
		}
	}
}

func TestBuilderValuesAndBOW(t *testing.T) {
	k, corpus := implicitFixture()
	b := &Builder{
		KB: k, Corpus: corpus, Class: kb.ClassGFPlayer,
		Mapping: map[int]map[int]kb.PropertyID{0: {1: "dbo:position"}},
	}
	rows := b.Build([]int{0})
	r := rows[0]
	if r.Values["dbo:position"].Str != "qb" {
		t.Errorf("mapped value = %+v", r.Values["dbo:position"])
	}
	if r.BOW["amos"] != 1 || r.BOW["qb"] != 1 {
		t.Errorf("BOW = %v", r.BOW)
	}
	if r.NormLabel != "amos quill" {
		t.Errorf("NormLabel = %q", r.NormLabel)
	}
}

func TestBuilderSkipsUnlabeledTables(t *testing.T) {
	k, _ := implicitFixture()
	corpus := webtable.NewCorpus([]*webtable.Table{
		{Headers: []string{"A", "B"}, Cells: [][]string{{"1", "2"}}, LabelCol: -1},
	})
	b := &Builder{KB: k, Corpus: corpus, Class: kb.ClassGFPlayer, Mapping: nil}
	if rows := b.Build([]int{0}); len(rows) != 0 {
		t.Errorf("unlabeled table produced %d rows", len(rows))
	}
}

func TestBlocksShareLabel(t *testing.T) {
	rows := []*Row{
		mkRow(0, 0, "Springfield", nil),
		mkRow(1, 0, "Springfield", nil),
		mkRow(2, 0, "Oakville", nil),
	}
	NewBlockIndex().Assign(rows, 4)
	shared := func(a, b *Row) bool {
		set := make(map[string]bool)
		for _, bl := range a.Blocks {
			set[bl] = true
		}
		for _, bl := range b.Blocks {
			if set[bl] {
				return true
			}
		}
		return false
	}
	if !shared(rows[0], rows[1]) {
		t.Error("identical labels must share a block")
	}
	if shared(rows[0], rows[2]) {
		t.Error("unrelated labels should not share a block")
	}
}
