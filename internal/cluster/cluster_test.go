package cluster

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/agg"
	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/strsim"
	"repro/internal/webtable"
)

// mkRow builds a test row from a label, table and mapped values.
func mkRow(table, row int, label string, values map[kb.PropertyID]dtype.Value) *Row {
	if values == nil {
		values = map[kb.PropertyID]dtype.Value{}
	}
	return &Row{
		Ref:       webtable.RowRef{Table: table, Row: row},
		Label:     label,
		NormLabel: strsim.Normalize(label),
		BOW:       strsim.BinaryTermVector(label),
		Values:    values,
		Implicit:  map[kb.PropertyID]ImplicitAttr{},
		Blocks:    []string{strsim.Normalize(label)},
	}
}

// labelScorer scores pairs purely by label similarity with threshold 0.8.
func labelScorer() *Scorer {
	return &Scorer{
		Metrics: []Metric{labelMetric{}},
		Agg:     &agg.WeightedAverage{Weights: []float64{1}, Threshold: 0.8},
	}
}

func TestMetricLabel(t *testing.T) {
	a := mkRow(0, 0, "Tom Brady", nil)
	b := mkRow(1, 0, "tom brady", nil)
	s, conf := (labelMetric{}).Compare(a, b)
	if s != 1 || conf != 1 {
		t.Errorf("LABEL = %v/%v", s, conf)
	}
}

func TestMetricBOW(t *testing.T) {
	a := mkRow(0, 0, "x", nil)
	a.BOW = map[string]float64{"qb": 1, "patriots": 1}
	b := mkRow(1, 0, "y", nil)
	b.BOW = map[string]float64{"qb": 1, "patriots": 1}
	s, _ := (bowMetric{}).Compare(a, b)
	if s < 0.99 {
		t.Errorf("identical BOW = %v", s)
	}
}

func TestMetricAttribute(t *testing.T) {
	m := attributeMetric{th: dtype.DefaultThresholds()}
	a := mkRow(0, 0, "x", map[kb.PropertyID]dtype.Value{
		"p1": dtype.NewNominal("QB"),
		"p2": dtype.NewQuantity(200),
	})
	b := mkRow(1, 0, "y", map[kb.PropertyID]dtype.Value{
		"p1": dtype.NewNominal("QB"),
		"p2": dtype.NewQuantity(201),
		"p3": dtype.NewText("ignored"),
	})
	s, conf := m.Compare(a, b)
	if s != 1 || conf != 2 {
		t.Errorf("ATTRIBUTE = %v conf %v, want 1.0 conf 2 (two overlapping pairs)", s, conf)
	}
	// No overlap: zero confidence.
	c := mkRow(2, 0, "z", map[kb.PropertyID]dtype.Value{"p9": dtype.NewText("v")})
	if _, conf := m.Compare(a, c); conf != 0 {
		t.Errorf("no-overlap confidence = %v", conf)
	}
}

func TestMetricImplicit(t *testing.T) {
	m := implicitMetric{th: dtype.DefaultThresholds()}
	a := mkRow(0, 0, "x", nil)
	a.Implicit = map[kb.PropertyID]ImplicitAttr{
		"dbo:team": {Value: dtype.NewRef("Patriots"), Score: 0.8},
	}
	b := mkRow(1, 0, "y", map[kb.PropertyID]dtype.Value{
		"dbo:team": dtype.NewRef("Patriots"),
	})
	s, conf := m.Compare(a, b)
	if s != 1 || conf <= 0 {
		t.Errorf("IMPLICIT_ATT = %v conf %v", s, conf)
	}
	// Conflicting implicit attributes score 0.
	c := mkRow(2, 0, "z", nil)
	c.Implicit = map[kb.PropertyID]ImplicitAttr{
		"dbo:team": {Value: dtype.NewRef("Raiders"), Score: 0.9},
	}
	s, _ = m.Compare(a, c)
	if s != 0 {
		t.Errorf("conflicting implicit = %v", s)
	}
}

func TestMetricSameTable(t *testing.T) {
	a := mkRow(5, 0, "x", nil)
	b := mkRow(5, 1, "y", nil)
	c := mkRow(6, 0, "z", nil)
	if s, _ := (sameTableMetric{}).Compare(a, b); s != 0 {
		t.Error("same-table rows should score 0")
	}
	if s, _ := (sameTableMetric{}).Compare(a, c); s != 1 {
		t.Error("cross-table rows should score 1")
	}
}

func TestMetricPrefix(t *testing.T) {
	if got := len(MetricPrefix(3)); got != 3 {
		t.Errorf("prefix 3 = %d", got)
	}
	if got := len(MetricPrefix(99)); got != 6 {
		t.Errorf("prefix clamps to 6, got %d", got)
	}
	names := []string{"LABEL", "BOW", "PHI", "ATTRIBUTE", "IMPLICIT_ATT", "SAME_TABLE"}
	for i, m := range MetricSet() {
		if m.Name() != names[i] {
			t.Errorf("metric %d = %s, want %s", i, m.Name(), names[i])
		}
	}
}

func TestGreedyClustersSameLabels(t *testing.T) {
	rows := []*Row{
		mkRow(0, 0, "Tom Brady", nil),
		mkRow(1, 0, "Tom Brady", nil),
		mkRow(2, 0, "Jerry Rice", nil),
		mkRow(3, 0, "Tom Brady", nil),
		mkRow(4, 0, "Jerry Rice", nil),
	}
	cl := Cluster(rows, labelScorer(), Options{Blocking: true, KLj: false, BatchSize: 1})
	if cl.NumClusters() != 2 {
		t.Fatalf("clusters = %d, want 2", cl.NumClusters())
	}
	if cl.Assign[rows[0].Ref] != cl.Assign[rows[1].Ref] {
		t.Error("identical labels should share a cluster")
	}
	if cl.Assign[rows[0].Ref] == cl.Assign[rows[2].Ref] {
		t.Error("different labels should not share a cluster")
	}
}

func TestGreedySingletons(t *testing.T) {
	rows := []*Row{
		mkRow(0, 0, "Alpha One", nil),
		mkRow(1, 0, "Beta Two", nil),
		mkRow(2, 0, "Gamma Three", nil),
	}
	cl := Cluster(rows, labelScorer(), Options{Blocking: true, KLj: false, BatchSize: 8})
	if cl.NumClusters() != 3 {
		t.Errorf("distinct rows should form singletons: %d", cl.NumClusters())
	}
}

func TestKLjRepairsBatchErrors(t *testing.T) {
	// Large batch forces both "Tom Brady" rows to be processed in one
	// snapshot, creating two singleton clusters; KLj must merge them.
	rows := []*Row{
		mkRow(0, 0, "Tom Brady", nil),
		mkRow(1, 0, "Tom Brady", nil),
	}
	noKLj := Cluster(rows, labelScorer(), Options{Blocking: true, KLj: false, BatchSize: 8})
	if noKLj.NumClusters() != 2 {
		t.Fatalf("batched greedy should have split the pair, got %d clusters", noKLj.NumClusters())
	}
	withKLj := Cluster(rows, labelScorer(), Options{Blocking: true, KLj: true, BatchSize: 8, MaxKLjRounds: 3})
	if withKLj.NumClusters() != 1 {
		t.Errorf("KLj should merge the duplicate singletons: %d clusters", withKLj.NumClusters())
	}
}

func TestKLjSplitsNegativeRows(t *testing.T) {
	// Force a bad cluster via a scorer that changes its mind: use
	// SAME_TABLE-style conflict where two same-table rows ended up
	// together (always -1 for same table).
	s := &Scorer{
		Metrics: []Metric{sameTableMetric{}},
		Agg:     &agg.WeightedAverage{Weights: []float64{1}, Threshold: 0.5},
	}
	a := mkRow(7, 0, "x", nil)
	b := mkRow(7, 1, "x", nil)
	st := &clusterer{scorer: s, opts: Options{Blocking: true, MaxKLjRounds: 2}, blockIndex: map[string]map[int]bool{}}
	ci := st.newCluster(a)
	st.addToCluster(ci, b)
	st.klj(context.Background())
	res := st.result()
	if res.NumClusters() != 2 {
		t.Errorf("KLj should split same-table pair: %d clusters", res.NumClusters())
	}
}

func TestBlockingOffEquivalence(t *testing.T) {
	var rows []*Row
	for i := 0; i < 12; i++ {
		rows = append(rows, mkRow(i, 0, fmt.Sprintf("Entity %d", i%4), nil))
	}
	on := Cluster(rows, labelScorer(), Options{Blocking: true, KLj: true, BatchSize: 1, MaxKLjRounds: 3})
	off := Cluster(rows, labelScorer(), Options{Blocking: false, KLj: true, BatchSize: 1, MaxKLjRounds: 3})
	if on.NumClusters() != off.NumClusters() {
		t.Errorf("blocking changed the clustering: %d vs %d clusters",
			on.NumClusters(), off.NumClusters())
	}
}

func TestClusteringAssignConsistent(t *testing.T) {
	rows := []*Row{
		mkRow(0, 0, "A B C", nil),
		mkRow(1, 0, "A B C", nil),
		mkRow(2, 0, "X Y Z", nil),
	}
	cl := Cluster(rows, labelScorer(), NewOptions())
	for id, members := range cl.Clusters {
		for _, r := range members {
			if cl.Assign[r.Ref] != id {
				t.Fatalf("Assign inconsistent for %v", r.Ref)
			}
		}
	}
	total := 0
	for _, m := range cl.Clusters {
		total += len(m)
	}
	if total != len(rows) {
		t.Errorf("clusters cover %d rows, want %d", total, len(rows))
	}
}

func TestBuilderOnSyntheticCorpus(t *testing.T) {
	w, corpus := testWorldCorpus()
	// Perfect mapping from provenance.
	mapping := make(map[int]map[int]kb.PropertyID)
	var tids []int
	for _, tb := range corpus.Tables {
		if tb.Truth == nil || tb.Truth.Class != kb.ClassGFPlayer {
			continue
		}
		tb.LabelCol = 0
		m := make(map[int]kb.PropertyID)
		for c, pid := range tb.Truth.ColProperty {
			if pid != "" {
				m[c] = pid
			}
		}
		mapping[tb.ID] = m
		tids = append(tids, tb.ID)
	}
	b := &Builder{KB: w.KB, Corpus: corpus, Class: kb.ClassGFPlayer, Mapping: mapping}
	rows := b.Build(tids)
	if len(rows) == 0 {
		t.Fatal("no rows built")
	}
	withValues, withBlocks := 0, 0
	for _, r := range rows {
		if r.NormLabel == "" {
			t.Fatal("row without label")
		}
		if len(r.Values) > 0 {
			withValues++
		}
		if len(r.Blocks) > 0 {
			withBlocks++
		}
	}
	if withValues == 0 {
		t.Error("no rows with mapped values")
	}
	if withBlocks != len(rows) {
		t.Errorf("all rows should have blocks: %d/%d", withBlocks, len(rows))
	}
}

func TestPhiModel(t *testing.T) {
	p := newPhiModel()
	// Labels a and b always co-occur; c appears alone.
	p.addTable(0, []string{"a", "b"})
	p.addTable(1, []string{"a", "b"})
	p.addTable(2, []string{"c", "d"})
	p.finalize()
	va := p.tableVector(0)
	if len(va) == 0 {
		t.Fatal("empty PHI vector for co-occurring labels")
	}
	vc := p.tableVector(2)
	sim := strsim.Cosine(va, vc)
	if sim != 0 {
		t.Errorf("unrelated tables PHI similarity = %v, want 0", sim)
	}
	vb := p.tableVector(1)
	if s := strsim.Cosine(va, vb); s < 0.99 {
		t.Errorf("identical tables PHI similarity = %v, want 1", s)
	}
}

func TestLearnScorerSeparates(t *testing.T) {
	var pairs []PairExample
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("Player %c", 'A'+i%8)
		pairs = append(pairs, PairExample{
			A: mkRow(2*i, 0, name, nil), B: mkRow(2*i+1, 0, name, nil), Match: true,
		})
		other := fmt.Sprintf("Player %c", 'A'+(i+1)%8)
		pairs = append(pairs, PairExample{
			A: mkRow(200+2*i, 0, name, nil), B: mkRow(201+2*i, 0, other, nil), Match: false,
		})
	}
	scorer, combined := LearnScorer(MetricPrefix(2), pairs, 1)
	if combined == nil {
		t.Fatal("nil combined model")
	}
	good := scorer.Pair(mkRow(900, 0, "Player A", nil), mkRow(901, 0, "Player A", nil))
	bad := scorer.Pair(mkRow(902, 0, "Player A", nil), mkRow(903, 0, "Player B", nil))
	if good <= 0 {
		t.Errorf("matching pair score = %v, want positive", good)
	}
	if bad >= good {
		t.Errorf("non-matching pair %v should score below matching %v", bad, good)
	}
}

func BenchmarkClusterGreedy(b *testing.B) {
	var rows []*Row
	for i := 0; i < 300; i++ {
		rows = append(rows, mkRow(i, 0, fmt.Sprintf("Entity %d", i%60), nil))
	}
	opts := Options{Blocking: true, KLj: false, BatchSize: 32}
	s := labelScorer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(rows, s, opts)
	}
}

func BenchmarkClusterWithKLj(b *testing.B) {
	var rows []*Row
	for i := 0; i < 200; i++ {
		rows = append(rows, mkRow(i, 0, fmt.Sprintf("Entity %d", i%40), nil))
	}
	opts := NewOptions()
	s := labelScorer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(rows, s, opts)
	}
}
