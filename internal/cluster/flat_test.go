package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// phiTables generates overlapping label sets per table from a small shared
// vocabulary, including duplicate labels within a table (rows sharing a
// label) — the regime the incremental co-occurrence counts must mirror.
func phiTables(rng *rand.Rand, nTables, vocab int) [][]string {
	words := make([]string, vocab)
	for i := range words {
		words[i] = fmt.Sprintf("label-%02d", i)
	}
	out := make([][]string, nTables)
	for t := range out {
		n := 2 + rng.Intn(5)
		labels := make([]string, 0, n)
		for i := 0; i < n; i++ {
			labels = append(labels, words[rng.Intn(vocab)])
		}
		out[t] = labels
	}
	return out
}

// TestPhiFinalizeIncrementalMatchesReference proves the fast finalize path
// (incremental co-occurrence counts) is float-identical to the reference
// derivation, across fresh adds and identical re-adds.
func TestPhiFinalizeIncrementalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tables := phiTables(rng, 30, 18)
	fast := newPhiModel()
	ref := newPhiModel()
	addBoth := func(id int, labels []string) {
		fast.addTable(id, labels)
		ref.addTable(id, labels)
	}
	for id, labels := range tables {
		addBoth(id, labels)
		if id%7 == 0 { // interleave finalize calls, as per-epoch builds do
			fast.finalize()
			ref.finalizeReference()
			if !reflect.DeepEqual(fast.vectors, ref.vectors) {
				t.Fatalf("after table %d: fast vectors diverge from reference", id)
			}
		}
	}
	// Identical re-adds (the engine re-builds each batch table once per
	// pipeline iteration) must not perturb the counts or trip the stale
	// flag.
	for id := 0; id < 10; id++ {
		addBoth(id, tables[id])
	}
	if fast.coocStale {
		t.Fatal("identical re-add tripped coocStale")
	}
	fast.finalize()
	ref.finalizeReference()
	if fast.nLabels != ref.nLabels {
		t.Fatalf("nLabels %d vs %d", fast.nLabels, ref.nLabels)
	}
	if !reflect.DeepEqual(fast.vectors, ref.vectors) {
		t.Fatal("fast vectors diverge from reference after re-adds")
	}
	for tb := range tables {
		a, b := fast.tableVector(tb), ref.tableVector(tb)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("tableVector(%d) diverges: %v vs %v", tb, a, b)
		}
	}
}

// TestPhiFinalizeStaleFallsBack proves a re-add with different labels trips
// the stale flag and finalize then reproduces the reference exactly.
func TestPhiFinalizeStaleFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	tables := phiTables(rng, 12, 10)
	fast := newPhiModel()
	ref := newPhiModel()
	for id, labels := range tables {
		fast.addTable(id, labels)
		ref.addTable(id, labels)
	}
	shrunk := tables[3][:1]
	fast.addTable(3, shrunk)
	ref.addTable(3, shrunk)
	if !fast.coocStale {
		t.Fatal("differing re-add did not trip coocStale")
	}
	fast.finalize()
	ref.finalizeReference()
	if !reflect.DeepEqual(fast.vectors, ref.vectors) {
		t.Fatal("stale fallback diverges from reference")
	}
}

// kljUnmemoized clears the refinement memos, forcing the next Add's KLj to
// re-evaluate every candidate pair from scratch — the reference behavior
// the cross-batch memo persistence must reproduce while rows are immutable.
func kljUnmemoized(inc *Incremental) {
	inc.c.pairNoop = make(map[[2]int][2]uint64)
	inc.c.splitNoop = make(map[int]uint64)
	inc.c.lastKljVer = nil
}

// TestKLjMemoEquivalentAcrossBatches runs the same multi-batch incremental
// build twice — once with the persistent no-op memos, once clearing them
// before every Add — and requires identical clusterings after each batch.
func TestKLjMemoEquivalentAcrossBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	rows := blockTestRows(rng, 300)
	mk := func(src []*Row) []*Row {
		out := make([]*Row, len(src))
		for i, r := range src {
			rr := *r
			rr.Ref.Table = i / 7
			rr.Ref.Row = i % 7
			rr.Blocks = []string{rr.NormLabel}
			out[i] = &rr
		}
		return out
	}
	memo := NewIncremental(labelScorer(), NewOptions())
	plain := NewIncremental(labelScorer(), NewOptions())
	a, b := mk(rows), mk(rows)
	for start := 0; start < len(rows); start += 100 {
		end := start + 100
		kljUnmemoized(plain)
		if err := memo.Add(context.Background(), a[start:end]); err != nil {
			t.Fatal(err)
		}
		if err := plain.Add(context.Background(), b[start:end]); err != nil {
			t.Fatal(err)
		}
		mr, pr := memo.Result(), plain.Result()
		if !reflect.DeepEqual(mr.Assign, pr.Assign) {
			t.Fatalf("batch ending %d: memoized assignment diverges from unmemoized", end)
		}
		if len(mr.Clusters) != len(pr.Clusters) {
			t.Fatalf("batch ending %d: %d vs %d clusters", end, len(mr.Clusters), len(pr.Clusters))
		}
	}
}

// TestCompactInvariants checks the internal state after each Add: no empty
// clusters linger once a KLj mutation happened, the version slice tracks
// the cluster slice, and block bookkeeping matches exactly what a from-
// scratch rebuild would produce — whether compact ran or was skipped as a
// no-op.
func TestCompactInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	rows := blockTestRows(rng, 200)
	for i, r := range rows {
		r.Ref.Table = i / 5
		r.Ref.Row = i % 5
	}
	inc := NewIncremental(labelScorer(), NewOptions())
	for start := 0; start < len(rows); start += 50 {
		if err := inc.Add(context.Background(), rows[start:start+50]); err != nil {
			t.Fatal(err)
		}
		c := inc.c
		if c.moved {
			t.Fatal("moved flag survived compact")
		}
		if len(c.ver) != len(c.clusters) {
			t.Fatalf("ver len %d, clusters len %d", len(c.ver), len(c.clusters))
		}
		wantIndex := make(map[string]map[int]bool)
		for ci, cl := range c.clusters {
			if len(cl.rows) == 0 {
				t.Fatalf("empty cluster %d survived compact", ci)
			}
			wantBlocks := make(map[string]bool)
			for _, r := range cl.rows {
				for _, b := range r.Blocks {
					wantBlocks[b] = true
					if wantIndex[b] == nil {
						wantIndex[b] = make(map[int]bool)
					}
					wantIndex[b][ci] = true
				}
			}
			if !reflect.DeepEqual(cl.blocks, wantBlocks) {
				t.Fatalf("cluster %d blocks drifted from membership", ci)
			}
		}
		if !reflect.DeepEqual(c.blockIndex, wantIndex) {
			t.Fatal("blockIndex drifted from live membership")
		}
		for p := range c.pairNoop {
			if p[0] >= len(c.clusters) || p[1] >= len(c.clusters) {
				t.Fatalf("pairNoop key %v out of range after compact", p)
			}
		}
		for ci := range c.splitNoop {
			if ci >= len(c.clusters) {
				t.Fatalf("splitNoop key %d out of range after compact", ci)
			}
		}
	}
}
