package cluster

import (
	"context"
	"sort"
	"sync"

	"repro/internal/par"
	"repro/internal/webtable"
)

// Clustering is the result of row clustering: a cluster ID per row and the
// cluster membership lists.
type Clustering struct {
	// Assign maps each row to its cluster ID.
	Assign map[webtable.RowRef]int
	// Clusters lists the member rows per cluster ID.
	Clusters [][]*Row
}

// NumClusters returns the number of non-empty clusters.
func (c *Clustering) NumClusters() int {
	n := 0
	for _, m := range c.Clusters {
		if len(m) > 0 {
			n++
		}
	}
	return n
}

// Options configures the clustering run.
type Options struct {
	// Workers is the parallelism of the greedy pass (default GOMAXPROCS;
	// 1 runs fully serial).
	Workers int
	// BatchSize is the number of rows assigned per parallel batch; larger
	// batches are faster but make more correctable mistakes (default 64).
	BatchSize int
	// Blocking enables label-based comparison blocking (default on via
	// NewOptions; turning it off compares every row with every cluster).
	Blocking bool
	// KLj enables the Kernighan-Lin-with-joins refinement pass.
	KLj bool
	// MaxKLjRounds bounds the refinement (default 4).
	MaxKLjRounds int
}

// NewOptions returns the default clustering options: parallel greedy with
// blocking and KLj refinement.
func NewOptions() Options {
	return Options{Blocking: true, KLj: true, BatchSize: 64, MaxKLjRounds: 4}
}

// clusterState is the mutable working state of one cluster.
type clusterState struct {
	rows   []*Row
	blocks map[string]bool
}

// Cluster partitions the rows so that rows describing the same instance
// share a cluster. It is the context-free convenience form of ClusterCtx
// for callers with nothing to cancel.
func Cluster(rows []*Row, scorer *Scorer, opts Options) *Clustering {
	//lteelint:ignore ctxflow ClusterCtx is the cancellable form; this wrapper exists for callers with no context
	return ClusterCtx(context.Background(), rows, scorer, opts)
}

// ClusterCtx partitions the rows so that rows describing the same instance
// share a cluster, honouring ctx's cancellation between batches. It runs
// the parallelized greedy correlation clustering and, when enabled, the
// KLj refinement. It is the one-shot form of the Incremental clusterer: a
// single Add over a fresh Incremental produces exactly the same
// clustering.
func ClusterCtx(ctx context.Context, rows []*Row, scorer *Scorer, opts Options) *Clustering {
	inc := NewIncremental(scorer, opts)
	inc.Add(ctx, rows)
	return inc.Result()
}

type clusterer struct {
	scorer   *Scorer
	opts     Options
	clusters []*clusterState
	// blockIndex maps a block label to the set of cluster IDs whose rows
	// carry that block.
	blockIndex map[string]map[int]bool
	// ver holds a membership version per cluster (parallel to clusters),
	// bumped through verTick on every row addition or removal, so equal
	// versions always mean identical membership. KLj's no-op memos key on
	// these versions; see klj.go for the exactness argument.
	ver     []uint64
	verTick uint64
	// pairNoop records the member versions at a cluster pair's last fully
	// no-op KLj evaluation; while both versions stand, re-evaluating the
	// pair would provably repeat the no-op and is skipped.
	pairNoop map[[2]int][2]uint64
	// splitNoop records the version at a cluster's last no-op split pass.
	splitNoop map[int]uint64
	// pairCache memoizes directed row-pair scores for the duration of one
	// klj call (rows and their vectors are immutable within an Add). The
	// refinement re-reads the same products many times — a cluster's
	// internal attachment sums are recomputed against every block
	// neighbor, and a failed merge's cross products are immediately
	// re-read by the move pass — so caching turns the dominant refinement
	// cost from pairs×rereads into distinct pairs.
	pairCache map[[2]*Row]float64
	// moved is set by any KLj mutation (merge, move, split) since the last
	// compact. Greedy additions keep the block bookkeeping exact
	// incrementally and never empty a cluster, so compact is skipped while
	// moved is unset.
	moved bool
	// lastKljVer snapshots each cluster's version as of its last completed
	// KLj enumeration round (parallel to clusters; missing tail entries
	// mean "never enumerated"). candidatePairs only walks the blocks of
	// clusters whose version moved past this snapshot — every pair of two
	// unmoved clusters provably carries a valid pairNoop verdict (see
	// candidatePairs), so enumerating it would only re-skip it.
	lastKljVer []uint64
	// tableGen counts Add batches. Table-level row state (TableVec) may be
	// rewritten between Adds by the engine's PHI refresh, so per-worker
	// tablePairMemos are stamped with the generation they were filled under
	// and cleared when it moves on.
	tableGen uint64
	// tableMemo is the serial KLj pass's table-pair metric memo, fresh per
	// klj call (the parallel greedy pass uses per-scratch memos instead).
	tableMemo *tablePairMemo
	// scratch recycles the candidate-gathering state of bestCluster
	// across rows and worker goroutines.
	scratch sync.Pool
}

// bump marks cluster ci's membership as changed. Versions are draws from a
// shared monotonic counter, never reused, so a stored version can only
// match a cluster whose membership is unchanged since it was stored.
func (c *clusterer) bump(ci int) {
	c.verTick++
	c.ver[ci] = c.verTick
}

// bestScratch is the per-call working state of bestCluster: a visited set
// and the sorted candidate list. Reused via clusterer.scratch; seen is
// cleared on the way out (by the candidates just gathered, so clearing is
// O(candidates)).
type bestScratch struct {
	seen map[int]bool
	cand []int
	// memo caches table-level metric outputs for this worker; valid for
	// the Add generation stamped in memoGen (TableVec may be rewritten
	// between Adds).
	memo    *tablePairMemo
	memoGen uint64
}

// greedy sequentially applies batches; scores within a batch are computed
// in parallel against a snapshot of the clusters, so batch members cannot
// see each other — the "errors during clustering" the paper accepts and
// repairs with KLj. Cancellation is checked once per batch: a batch whose
// scores were computed is still applied in full, so the state never holds a
// half-applied batch.
func (c *clusterer) greedy(ctx context.Context, rows []*Row) error {
	type decision struct {
		row     *Row
		cluster int // -1: create new
		score   float64
	}
	for start := 0; start < len(rows); start += c.opts.BatchSize {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := start + c.opts.BatchSize
		if end > len(rows) {
			end = len(rows)
		}
		batch := rows[start:end]
		decisions := make([]decision, len(batch))
		par.ForEach(c.opts.Workers, len(batch), func(i int) {
			best, score := c.bestCluster(batch[i])
			decisions[i] = decision{row: batch[i], cluster: best, score: score}
		})
		for _, d := range decisions {
			if d.cluster >= 0 && d.score > 0 {
				c.addToCluster(d.cluster, d.row)
			} else {
				c.newCluster(d.row)
			}
		}
	}
	return nil
}

// bestCluster finds the cluster with the highest summed similarity to the
// row, considering only clusters sharing a block when blocking is enabled.
// Candidates are visited in ascending cluster ID so that score ties resolve
// deterministically (map iteration order must not leak into the result).
func (c *clusterer) bestCluster(row *Row) (int, float64) {
	sc, _ := c.scratch.Get().(*bestScratch)
	if sc == nil {
		sc = &bestScratch{seen: make(map[int]bool, 64)}
	}
	if sc.memo == nil {
		sc.memo = newTablePairMemo(c.scorer)
		sc.memoGen = c.tableGen
	} else if sc.memoGen != c.tableGen {
		sc.memo.Reset()
		sc.memoGen = c.tableGen
	}
	best, bestScore := -1, 0.0
	score := func(ci int) {
		cl := c.clusters[ci]
		var sum float64
		for _, other := range cl.rows {
			sum += c.scorer.pairMemo(row, other, sc.memo)
		}
		if sum > bestScore {
			best, bestScore = ci, sum
		}
	}
	if !c.opts.Blocking {
		// Without blocking every cluster is a candidate; iterate
		// directly, already in ascending ID order.
		for ci := range c.clusters {
			score(ci)
		}
		c.scratch.Put(sc)
		return best, bestScore
	}
	cand := sc.cand[:0]
	for _, b := range row.Blocks {
		for ci := range c.blockIndex[b] {
			if !sc.seen[ci] {
				sc.seen[ci] = true
				cand = append(cand, ci)
			}
		}
	}
	sort.Ints(cand)
	for _, ci := range cand {
		delete(sc.seen, ci)
		score(ci)
	}
	sc.cand = cand
	c.scratch.Put(sc)
	return best, bestScore
}

func (c *clusterer) newCluster(row *Row) int {
	ci := len(c.clusters)
	cl := &clusterState{rows: []*Row{row}, blocks: make(map[string]bool)}
	c.clusters = append(c.clusters, cl)
	c.ver = append(c.ver, 0)
	c.bump(ci)
	c.indexBlocks(ci, row)
	return ci
}

func (c *clusterer) addToCluster(ci int, row *Row) {
	c.clusters[ci].rows = append(c.clusters[ci].rows, row)
	c.bump(ci)
	c.indexBlocks(ci, row)
}

func (c *clusterer) indexBlocks(ci int, row *Row) {
	cl := c.clusters[ci]
	for _, b := range row.Blocks {
		cl.blocks[b] = true
		if c.blockIndex[b] == nil {
			c.blockIndex[b] = make(map[int]bool)
		}
		c.blockIndex[b][ci] = true
	}
}

// result materializes the final clustering with compacted cluster IDs.
func (c *clusterer) result() *Clustering {
	out := &Clustering{Assign: make(map[webtable.RowRef]int)}
	for _, cl := range c.clusters {
		if len(cl.rows) == 0 {
			continue
		}
		id := len(out.Clusters)
		members := make([]*Row, len(cl.rows))
		copy(members, cl.rows)
		sort.Slice(members, func(i, j int) bool {
			a, b := members[i].Ref, members[j].Ref
			if a.Table != b.Table {
				return a.Table < b.Table
			}
			return a.Row < b.Row
		})
		out.Clusters = append(out.Clusters, members)
		for _, r := range members {
			out.Assign[r.Ref] = id
		}
	}
	return out
}
