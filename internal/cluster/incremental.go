package cluster

import (
	"context"

	"repro/internal/par"
)

// Incremental is a clusterer that accepts rows in batches and retains its
// working state — the cluster membership lists and the block index — so a
// later batch is clustered against everything seen so far instead of
// re-clustering from scratch. The incremental ingestion engine
// (internal/core.Engine) keeps one per class across ingest epochs.
//
// Each Add runs the parallelized greedy pass over the new rows only (their
// block lookups hit the retained block index, so they compare against old
// clusters too) followed by a KLj refinement over the whole state, which
// may also repair earlier assignments. A single Add on a fresh Incremental
// is exactly Cluster.
//
// Incremental is not safe for concurrent use; Clone provides cheap
// isolation for speculative batches.
type Incremental struct {
	c *clusterer
}

// NewIncremental returns an empty incremental clusterer.
func NewIncremental(scorer *Scorer, opts Options) *Incremental {
	opts.Workers = par.Workers(opts.Workers)
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	if opts.MaxKLjRounds <= 0 {
		opts.MaxKLjRounds = 4
	}
	return &Incremental{c: &clusterer{
		scorer:     scorer,
		opts:       opts,
		blockIndex: make(map[string]map[int]bool),
		pairNoop:   make(map[[2]int][2]uint64),
		splitNoop:  make(map[int]uint64),
	}}
}

// Add clusters a batch of new rows against the retained state: greedy
// assignment of each new row to its best existing-or-new cluster, then the
// KLj refinement when enabled. Adding an empty batch leaves the state
// untouched.
//
// Cancellation checkpoints sit between greedy batches and between KLj
// rounds; a non-nil error means the clusterer state is torn mid-refinement
// and the caller must discard it (the ingestion engine always Adds to a
// clone, so abandoning the clone is enough).
func (inc *Incremental) Add(ctx context.Context, rows []*Row) error {
	if len(rows) == 0 {
		return nil
	}
	// New batch: table-level row state (TableVec) may have been refreshed
	// since the last Add, so per-worker table-pair memos must restart.
	inc.c.tableGen++
	if err := inc.c.greedy(ctx, rows); err != nil {
		return err
	}
	if inc.c.opts.KLj {
		if err := inc.c.klj(ctx); err != nil {
			return err
		}
	}
	// Compact after every batch so retained state tracks live rows, not
	// history: KLj-emptied clusters and their stale block entries would
	// otherwise accumulate across epochs (and be deep-copied by every
	// Clone). Order-preserving, so the materialized Result is unchanged.
	inc.c.compact()
	return nil
}

// Clone returns an independent deep copy of the clusterer state: Adds on
// the clone never affect the original (the rows themselves are shared and
// immutable). The ingestion engine clones the retained state once per
// pipeline iteration so a refined schema mapping can re-cluster its batch
// without corrupting the persistent baseline.
func (inc *Incremental) Clone() *Incremental {
	src := inc.c
	dst := &clusterer{
		scorer:     src.scorer,
		opts:       src.opts,
		clusters:   make([]*clusterState, len(src.clusters)),
		blockIndex: make(map[string]map[int]bool, len(src.blockIndex)),
		ver:        append([]uint64(nil), src.ver...),
		verTick:    src.verTick,
		pairNoop:   make(map[[2]int][2]uint64, len(src.pairNoop)),
		splitNoop:  make(map[int]uint64, len(src.splitNoop)),
		moved:      src.moved,
		lastKljVer: append([]uint64(nil), src.lastKljVer...),
		tableGen:   src.tableGen,
	}
	for p, v := range src.pairNoop {
		dst.pairNoop[p] = v
	}
	for ci, v := range src.splitNoop {
		dst.splitNoop[ci] = v
	}
	for i, cl := range src.clusters {
		nc := &clusterState{
			rows:   make([]*Row, len(cl.rows)),
			blocks: make(map[string]bool, len(cl.blocks)),
		}
		copy(nc.rows, cl.rows)
		for b := range cl.blocks {
			nc.blocks[b] = true
		}
		dst.clusters[i] = nc
	}
	for b, members := range src.blockIndex {
		m := make(map[int]bool, len(members))
		for ci := range members {
			m[ci] = true
		}
		dst.blockIndex[b] = m
	}
	return &Incremental{c: dst}
}

// NumRows returns the number of rows currently clustered.
func (inc *Incremental) NumRows() int {
	n := 0
	for _, cl := range inc.c.clusters {
		n += len(cl.rows)
	}
	return n
}

// Result materializes the current state as a Clustering with compacted
// cluster IDs. The state is not consumed; Add may be called again after.
func (inc *Incremental) Result() *Clustering {
	return inc.c.result()
}
