package cluster

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/kb"
	"repro/internal/match"
	"repro/internal/strsim"
	"repro/internal/webtable"
)

// incTestRows builds a deterministic row set with several same-label groups
// spread over distinct tables.
func incTestRows() []*Row {
	labels := []string{
		"Tom Brady", "Eli Manning", "Peyton Manning", "Drew Brees",
		"Aaron Rodgers", "Russell Wilson",
	}
	var rows []*Row
	for table := 0; table < 3; table++ {
		for i, l := range labels {
			rows = append(rows, mkRow(table, i, l, nil))
		}
	}
	return rows
}

// TestIncrementalOneShotEqualsCluster is the bit-for-bit equivalence the
// engine refactor relies on: a single Add over a fresh Incremental must
// reproduce Cluster exactly.
func TestIncrementalOneShotEqualsCluster(t *testing.T) {
	rows := incTestRows()
	for _, klj := range []bool{true, false} {
		opts := NewOptions()
		opts.KLj = klj
		opts.Workers = 1
		want := Cluster(rows, labelScorer(), opts)

		inc := NewIncremental(labelScorer(), opts)
		inc.Add(context.Background(), rows)
		got := inc.Result()
		if !reflect.DeepEqual(want.Assign, got.Assign) {
			t.Errorf("klj=%v: one-shot incremental differs from Cluster", klj)
		}
	}
}

// TestIncrementalGrowth verifies a second batch clusters against the
// retained state: same-label rows arriving later join the clusters created
// by the first batch instead of forming duplicates.
func TestIncrementalGrowth(t *testing.T) {
	opts := NewOptions()
	opts.Workers = 1
	inc := NewIncremental(labelScorer(), opts)

	batch1 := []*Row{
		mkRow(0, 0, "Tom Brady", nil),
		mkRow(0, 1, "Eli Manning", nil),
	}
	inc.Add(context.Background(), batch1)
	if n := inc.Result().NumClusters(); n != 2 {
		t.Fatalf("batch 1: %d clusters, want 2", n)
	}
	if inc.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", inc.NumRows())
	}

	batch2 := []*Row{
		mkRow(1, 0, "Tom Brady", nil),      // joins the existing Brady cluster
		mkRow(1, 1, "Russell Wilson", nil), // genuinely new
	}
	inc.Add(context.Background(), batch2)
	out := inc.Result()
	if n := out.NumClusters(); n != 3 {
		t.Fatalf("after batch 2: %d clusters, want 3", n)
	}
	if out.Assign[batch1[0].Ref] != out.Assign[batch2[0].Ref] {
		t.Errorf("later same-label row did not join the retained cluster: %v vs %v",
			out.Assign[batch1[0].Ref], out.Assign[batch2[0].Ref])
	}
}

// TestPersistentBlocksReachEarlierLabels guards the cross-epoch blocking
// fix: a later batch's row whose label is a fuzzy variant of an earlier
// batch's label must receive that earlier label as a block (a fresh
// per-batch index could not — the label is not in the batch).
func TestPersistentBlocksReachEarlierLabels(t *testing.T) {
	bi := NewBlockIndex()
	first := []*Row{mkRow(0, 0, "Tom Brady", nil)}
	bi.Assign(first, 6)

	second := []*Row{mkRow(1, 0, "Brady Tom Jr", nil)}
	bi.Assign(second, 6)
	found := false
	for _, b := range second[0].Blocks {
		if b == "tom brady" {
			found = true
		}
	}
	if !found {
		t.Errorf("later batch's blocks %v miss the earlier label", second[0].Blocks)
	}
	// And the clusterer therefore compares and joins them across batches.
	opts := NewOptions()
	opts.Workers = 1
	inc := NewIncremental(labelScorer(), opts)
	inc.Add(context.Background(), first)
	inc.Add(context.Background(), second)
	out := inc.Result()
	if out.Assign[first[0].Ref] != out.Assign[second[0].Ref] {
		t.Error("fuzzy cross-batch variant did not reach the retained cluster")
	}
}

// TestBlockIndexCloneIsolated verifies fork isolation of the label
// universe.
func TestBlockIndexCloneIsolated(t *testing.T) {
	bi := NewBlockIndex()
	bi.Assign([]*Row{mkRow(0, 0, "Tom Brady", nil)}, 6)
	fork := bi.Clone()
	fork.Assign([]*Row{mkRow(1, 0, "Drew Brees", nil)}, 6)

	probe := []*Row{mkRow(2, 0, "Brees Drew", nil)}
	bi.Assign(probe, 6)
	for _, b := range probe[0].Blocks {
		if b == "drew brees" {
			t.Fatal("fork's labels leaked into the original index")
		}
	}
}

// TestPersistentPhiMatchesOneShot guards the cross-epoch PHI fix: after a
// multi-batch build over a shared PhiModel plus a Refresh of the earlier
// rows, every row must carry exactly the TableVec a one-shot build over
// the full table set produces — all vectors come from one model.
func TestPersistentPhiMatchesOneShot(t *testing.T) {
	k := kb.New()
	mk := func(labels ...string) *webtable.Table {
		cells := make([][]string, len(labels))
		for i, l := range labels {
			cells[i] = []string{l}
		}
		return &webtable.Table{Headers: []string{"Player"}, LabelCol: 0, Cells: cells}
	}
	corpus := webtable.NewCorpus([]*webtable.Table{
		mk("Tom Brady", "Drew Brees"),
		mk("Tom Brady", "Aaron Rodgers"),
		mk("Drew Brees", "Aaron Rodgers"),
	})
	oneShot := (&Builder{KB: k, Corpus: corpus, Class: kb.ClassGFPlayer}).Build([]int{0, 1, 2})
	want := make(map[webtable.RowRef]strsim.SparseVec, len(oneShot))
	for _, r := range oneShot {
		want[r.Ref] = r.TableVec
	}

	pm := NewPhiModel()
	b := &Builder{KB: k, Corpus: corpus, Class: kb.ClassGFPlayer, Phi: pm}
	first := b.Build([]int{0, 1})
	second := b.Build([]int{2})
	pm.Refresh(first)
	for _, r := range append(first, second...) {
		if !reflect.DeepEqual(want[r.Ref], r.TableVec) {
			t.Fatalf("row %v: incremental TableVec %v != one-shot %v",
				r.Ref, r.TableVec, want[r.Ref])
		}
	}
}

// TestIncrementalCompactsEmptyClusters guards the state-compaction fix:
// clusters emptied by the KLj merge pass must not linger in the retained
// state, and the block index must only reference live clusters.
func TestIncrementalCompactsEmptyClusters(t *testing.T) {
	opts := NewOptions()
	opts.Workers = 1
	inc := NewIncremental(labelScorer(), opts)
	// Same batch, so the parallel greedy snapshot makes each row its own
	// cluster; KLj then merges them, emptying one.
	inc.Add(context.Background(), []*Row{mkRow(0, 0, "Tom Brady", nil), mkRow(1, 0, "Tom Brady", nil)})
	if got := inc.Result().NumClusters(); got != 1 {
		t.Fatalf("clusters = %d, want 1", got)
	}
	if got := len(inc.c.clusters); got != 1 {
		t.Errorf("retained state holds %d clusterStates, want 1 (empties compacted)", got)
	}
	for b, members := range inc.c.blockIndex {
		for ci := range members {
			if ci >= len(inc.c.clusters) || len(inc.c.clusters[ci].rows) == 0 {
				t.Errorf("block %q references dead cluster %d", b, ci)
			}
		}
	}
}

// TestIncrementalAddEmptyIsNoop verifies the empty batch contract.
func TestIncrementalAddEmptyIsNoop(t *testing.T) {
	opts := NewOptions()
	opts.Workers = 1
	inc := NewIncremental(labelScorer(), opts)
	inc.Add(context.Background(), []*Row{mkRow(0, 0, "Tom Brady", nil)})
	before := inc.Result()
	inc.Add(context.Background(), nil)
	after := inc.Result()
	if !reflect.DeepEqual(before.Assign, after.Assign) {
		t.Error("empty Add changed the clustering")
	}
}

// TestIncrementalClone verifies Clone isolation: adds on a clone leave the
// original untouched, and the clone starts from the original's state.
func TestIncrementalClone(t *testing.T) {
	opts := NewOptions()
	opts.Workers = 1
	base := NewIncremental(labelScorer(), opts)
	seed := mkRow(0, 0, "Tom Brady", nil)
	base.Add(context.Background(), []*Row{seed})

	fork := base.Clone()
	joiner := mkRow(1, 0, "Tom Brady", nil)
	fork.Add(context.Background(), []*Row{joiner, mkRow(1, 1, "Drew Brees", nil)})

	if got := base.NumRows(); got != 1 {
		t.Errorf("clone add leaked into base: %d rows", got)
	}
	if got := fork.NumRows(); got != 3 {
		t.Errorf("fork rows = %d, want 3", got)
	}
	forkOut := fork.Result()
	if forkOut.Assign[seed.Ref] != forkOut.Assign[joiner.Ref] {
		t.Error("fork did not cluster the new row against inherited state")
	}
}

// BenchmarkIncrementalClone100k isolates the engine's per-iteration
// speculative Clone at production scale: 100k retained rows in 20k
// clusters behind a 20k-key block index — the deferred O(corpus) term
// PR 7 left in the epoch loop. The synthetic state is built directly
// (clustering 100k rows in a benchmark setup would dominate the run);
// shapes mirror compacted post-epoch state. ROADMAP records the
// measured numbers against the per-epoch ingest cost.
func BenchmarkIncrementalClone100k(b *testing.B) {
	const nClusters = 20_000
	const rowsPer = 5
	opts := NewOptions()
	opts.Workers = 1
	inc := NewIncremental(labelScorer(), opts)
	c := inc.c
	for ci := 0; ci < nClusters; ci++ {
		cl := &clusterState{rows: make([]*Row, rowsPer), blocks: make(map[string]bool, 2)}
		label := fmt.Sprintf("player %06d", ci)
		for r := 0; r < rowsPer; r++ {
			cl.rows[r] = mkRow(ci%97, ci*rowsPer+r, label, nil)
		}
		for _, bk := range []string{label, fmt.Sprintf("player %06d", (ci+1)%nClusters)} {
			cl.blocks[bk] = true
			m := c.blockIndex[bk]
			if m == nil {
				m = make(map[int]bool, 2)
				c.blockIndex[bk] = m
			}
			m[ci] = true
		}
		c.clusters = append(c.clusters, cl)
	}
	c.ver = make([]uint64, nClusters)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if clone := inc.Clone(); clone.NumRows() != nClusters*rowsPer {
			b.Fatal("clone lost rows")
		}
	}
}

// TestIncrementalMultiBatchCloseToOneShot checks growth quality on
// realistic corpus rows: incrementally added rows must cover every row and
// produce a cluster count close to one-shot clustering (KLj repairs
// batch-boundary errors).
func TestIncrementalMultiBatchCloseToOneShot(t *testing.T) {
	w, corpus := testWorldCorpus()
	class := kb.ClassID("dbo:GridironFootballPlayer")
	var tableIDs []int
	for _, tb := range corpus.Tables {
		if tb.Truth != nil && tb.Truth.Class == class {
			match.EnsureDetected(tb)
			tableIDs = append(tableIDs, tb.ID)
		}
	}
	if len(tableIDs) < 4 {
		t.Skip("not enough player tables at this scale")
	}
	builder := &Builder{KB: w.KB, Corpus: corpus, Class: class,
		Mapping: map[int]map[int]kb.PropertyID{}}
	rows := builder.Build(tableIDs)
	if len(rows) == 0 {
		t.Skip("no rows built")
	}
	opts := NewOptions()
	opts.Workers = 1
	full := Cluster(rows, labelScorer(), opts)

	inc := NewIncremental(labelScorer(), opts)
	half := len(rows) / 2
	inc.Add(context.Background(), rows[:half])
	inc.Add(context.Background(), rows[half:])
	grown := inc.Result()

	if got, want := len(grown.Assign), len(full.Assign); got != want {
		t.Fatalf("row coverage differs: %d vs %d", got, want)
	}
	lo, hi := full.NumClusters()*8/10, full.NumClusters()*12/10+1
	if n := grown.NumClusters(); n < lo || n > hi {
		t.Errorf("incremental clusters = %d, one-shot = %d (want within ±20%%)",
			n, full.NumClusters())
	}
}
