package cluster

import (
	"context"
	"sort"
)

// klj runs the Kernighan-Lin-with-joins refinement (§3.2): cluster pairs
// sharing a block are compared and individual rows are moved between them
// or the clusters merged when that increases the local correlation
// clustering fitness (the sum of pairwise similarities within clusters).
// Each cluster is also compared against an empty set, so that splitting
// rows out of a cluster is possible. Rounds repeat until no operation
// improves the fitness or MaxKLjRounds is reached. Cancellation is checked
// once per round; between rounds the state is a valid (just unrefined)
// clustering.
//
// Evaluations are memoized on cluster membership versions: a pair (or a
// split candidate) whose last evaluation was a complete no-op is skipped
// while both members' versions are unchanged. Skipping is exact whenever
// row similarities are stable across evaluations — an evaluation's outcome
// depends only on the member rows, the checks happen at the pair's position
// in the same deterministic order the unmemoized pass would use, and a
// skipped no-op has no side effects, so the mutation sequence is identical.
// The memos persist across Add batches; there they additionally trust
// no-op verdicts recorded under an earlier PHI model refresh (which
// rewrites row vectors in place and so may drift pair scores of clusters no
// batch touched). That is the intended incremental tradeoff: refinement
// work stays proportional to the batch's neighborhood instead of rescanning
// all retained state each epoch, and a drifted region is re-examined as
// soon as any operation touches one of its clusters.
func (c *clusterer) klj(ctx context.Context) error {
	if c.pairNoop == nil {
		c.pairNoop = make(map[[2]int][2]uint64)
	}
	if c.splitNoop == nil {
		c.splitNoop = make(map[int]uint64)
	}
	// Fresh per-call caches: row vectors may be rewritten between Adds
	// (the engine's PHI refresh), so cached scores must not outlive the call.
	c.pairCache = make(map[[2]*Row]float64)
	c.tableMemo = newTablePairMemo(c.scorer)
	defer func() { c.pairCache, c.tableMemo = nil, nil }()
	for round := 0; round < c.opts.MaxKLjRounds; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		improved := false
		// Candidate cluster pairs: sharing a block (or all pairs when
		// blocking is off).
		pairs := c.candidatePairs()
		// Snapshot the versions as of this enumeration; committed only
		// after the round completes, so a cancelled round leaves its
		// clusters dirty and the next call re-enumerates their pairs.
		versnap := append([]uint64(nil), c.ver...)
		for _, p := range pairs {
			a, b := c.clusters[p[0]], c.clusters[p[1]]
			if len(a.rows) == 0 || len(b.rows) == 0 {
				continue
			}
			cur := [2]uint64{c.ver[p[0]], c.ver[p[1]]}
			if c.pairNoop[p] == cur {
				continue
			}
			acted := false
			if c.tryMerge(p[0], p[1]) {
				improved, acted = true, true
			} else {
				if c.tryMoves(p[0], p[1]) {
					improved, acted = true, true
				}
				if c.tryMoves(p[1], p[0]) {
					improved, acted = true, true
				}
			}
			if acted {
				delete(c.pairNoop, p)
			} else {
				c.pairNoop[p] = cur
			}
		}
		// Split pass: moving a row out to a singleton improves fitness
		// when its summed similarity to the rest of its cluster is
		// negative. Singletons created during the pass are not revisited
		// until the next round (the range length is captured on entry).
		for ci := range c.clusters {
			if len(c.clusters[ci].rows) < 2 {
				continue
			}
			if c.splitNoop[ci] == c.ver[ci] {
				continue
			}
			if c.trySplit(ci) {
				improved = true
				delete(c.splitNoop, ci)
			} else {
				c.splitNoop[ci] = c.ver[ci]
			}
		}
		// The round completed: clusters enumerated this round are clean as
		// of the snapshot (mutations during the round bumped them past it,
		// so they stay dirty for the next enumeration).
		c.lastKljVer = versnap
		if !improved {
			return nil
		}
	}
	return nil
}

// candidatePairs enumerates cluster ID pairs that share at least one block
// (all pairs when blocking is off) and have at least one member whose
// version moved since the last completed enumeration round, in a
// deterministic order (KLj operations are order-sensitive, so map iteration
// order must not leak into the refinement).
//
// Restricting to pairs with a moved member is exact: a pair of two unmoved
// clusters was enumerated in the round lastKljVer snapshots (their block
// sets are part of the versioned membership, so sharing a block now means
// they shared it then), and that evaluation either acted — bumping a member
// past the snapshot, contradiction — or recorded a pairNoop verdict at
// versions that still stand, which the pair loop would skip anyway.
func (c *clusterer) candidatePairs() [][2]int {
	seen := make(map[[2]int]bool)
	var out [][2]int
	add := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	for ci := range c.clusters {
		if ci < len(c.lastKljVer) && c.ver[ci] == c.lastKljVer[ci] {
			continue // unmoved since the last completed round
		}
		if len(c.clusters[ci].rows) == 0 {
			continue
		}
		if !c.opts.Blocking {
			for cj := range c.clusters {
				if cj != ci && len(c.clusters[cj].rows) > 0 {
					add(ci, cj)
				}
			}
			continue
		}
		for b := range c.clusters[ci].blocks {
			for cj := range c.blockIndex[b] {
				if cj != ci && len(c.clusters[cj].rows) > 0 {
					add(ci, cj)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// tryMerge merges cluster b into a when the summed inter-cluster
// similarity is positive.
func (c *clusterer) tryMerge(ai, bi int) bool {
	a, b := c.clusters[ai], c.clusters[bi]
	var delta float64
	for _, ra := range a.rows {
		for _, rb := range b.rows {
			delta += c.pairScore(ra, rb)
		}
	}
	if delta <= 0 {
		return false
	}
	for _, rb := range b.rows {
		c.addToCluster(ai, rb)
	}
	b.rows = nil
	c.bump(bi)
	c.moved = true
	return true
}

// tryMoves attempts to move individual rows from cluster src to dst when
// the move increases the local fitness.
func (c *clusterer) tryMoves(srci, dsti int) bool {
	src, dst := c.clusters[srci], c.clusters[dsti]
	moved := false
	for i := 0; i < len(src.rows); i++ {
		row := src.rows[i]
		var toSrc, toDst float64
		for _, other := range src.rows {
			if other != row {
				toSrc += c.pairScore(row, other)
			}
		}
		for _, other := range dst.rows {
			toDst += c.pairScore(row, other)
		}
		if toDst > toSrc && toDst > 0 {
			src.rows = append(src.rows[:i], src.rows[i+1:]...)
			i--
			c.addToCluster(dsti, row)
			moved = true
		}
	}
	if moved {
		c.bump(srci)
		c.moved = true
	}
	return moved
}

// trySplit moves rows with negative attachment out of their cluster into
// fresh singletons (the comparison "with an empty set" of the paper).
func (c *clusterer) trySplit(ci int) bool {
	cl := c.clusters[ci]
	if len(cl.rows) < 2 {
		return false
	}
	split := false
	for i := 0; i < len(cl.rows); i++ {
		row := cl.rows[i]
		var sum float64
		for _, other := range cl.rows {
			if other != row {
				sum += c.pairScore(row, other)
			}
		}
		if sum < 0 {
			cl.rows = append(cl.rows[:i], cl.rows[i+1:]...)
			i--
			c.newCluster(row)
			split = true
		}
	}
	if split {
		c.bump(ci)
		c.moved = true
	}
	return split
}

// pairScore is Scorer.Pair through the per-call caches; identical floats,
// each distinct directed pair computed at most once per klj call and
// table-level metric outputs computed once per table pair.
func (c *clusterer) pairScore(ra, rb *Row) float64 {
	k := [2]*Row{ra, rb}
	if v, ok := c.pairCache[k]; ok {
		return v
	}
	v := c.scorer.pairMemo(ra, rb, c.tableMemo)
	c.pairCache[k] = v
	return v
}
