package cluster

import (
	"context"
	"sort"
)

// klj runs the Kernighan-Lin-with-joins refinement (§3.2): cluster pairs
// sharing a block are compared and individual rows are moved between them
// or the clusters merged when that increases the local correlation
// clustering fitness (the sum of pairwise similarities within clusters).
// Each cluster is also compared against an empty set, so that splitting
// rows out of a cluster is possible. Rounds repeat until no operation
// improves the fitness or MaxKLjRounds is reached. Cancellation is checked
// once per round; between rounds the state is a valid (just unrefined)
// clustering.
func (c *clusterer) klj(ctx context.Context) error {
	for round := 0; round < c.opts.MaxKLjRounds; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		improved := false
		// Candidate cluster pairs: sharing a block (or all pairs when
		// blocking is off).
		pairs := c.candidatePairs()
		for _, p := range pairs {
			a, b := c.clusters[p[0]], c.clusters[p[1]]
			if len(a.rows) == 0 || len(b.rows) == 0 {
				continue
			}
			if c.tryMerge(p[0], p[1]) {
				improved = true
				continue
			}
			if c.tryMoves(p[0], p[1]) {
				improved = true
			}
			if c.tryMoves(p[1], p[0]) {
				improved = true
			}
		}
		// Split pass: moving a row out to a singleton improves fitness
		// when its summed similarity to the rest of its cluster is
		// negative.
		for ci := range c.clusters {
			if c.trySplit(ci) {
				improved = true
			}
		}
		if !improved {
			return nil
		}
	}
	return nil
}

// candidatePairs enumerates cluster ID pairs that share at least one block,
// in a deterministic order (KLj operations are order-sensitive, so map
// iteration order must not leak into the refinement).
func (c *clusterer) candidatePairs() [][2]int {
	seen := make(map[[2]int]bool)
	var out [][2]int
	if !c.opts.Blocking {
		for i := range c.clusters {
			for j := i + 1; j < len(c.clusters); j++ {
				out = append(out, [2]int{i, j})
			}
		}
		return out
	}
	for _, members := range c.blockIndex {
		ids := make([]int, 0, len(members))
		for ci := range members {
			if len(c.clusters[ci].rows) > 0 {
				ids = append(ids, ci)
			}
		}
		sort.Ints(ids)
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				key := [2]int{ids[i], ids[j]}
				if !seen[key] {
					seen[key] = true
					out = append(out, key)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// tryMerge merges cluster b into a when the summed inter-cluster
// similarity is positive.
func (c *clusterer) tryMerge(ai, bi int) bool {
	a, b := c.clusters[ai], c.clusters[bi]
	var delta float64
	for _, ra := range a.rows {
		for _, rb := range b.rows {
			delta += c.scorer.Pair(ra, rb)
		}
	}
	if delta <= 0 {
		return false
	}
	for _, rb := range b.rows {
		c.addToCluster(ai, rb)
	}
	b.rows = nil
	return true
}

// tryMoves attempts to move individual rows from cluster src to dst when
// the move increases the local fitness.
func (c *clusterer) tryMoves(srci, dsti int) bool {
	src, dst := c.clusters[srci], c.clusters[dsti]
	moved := false
	for i := 0; i < len(src.rows); i++ {
		row := src.rows[i]
		var toSrc, toDst float64
		for _, other := range src.rows {
			if other != row {
				toSrc += c.scorer.Pair(row, other)
			}
		}
		for _, other := range dst.rows {
			toDst += c.scorer.Pair(row, other)
		}
		if toDst > toSrc && toDst > 0 {
			src.rows = append(src.rows[:i], src.rows[i+1:]...)
			i--
			c.addToCluster(dsti, row)
			moved = true
		}
	}
	return moved
}

// trySplit moves rows with negative attachment out of their cluster into
// fresh singletons (the comparison "with an empty set" of the paper).
func (c *clusterer) trySplit(ci int) bool {
	cl := c.clusters[ci]
	if len(cl.rows) < 2 {
		return false
	}
	split := false
	for i := 0; i < len(cl.rows); i++ {
		row := cl.rows[i]
		var sum float64
		for _, other := range cl.rows {
			if other != row {
				sum += c.scorer.Pair(row, other)
			}
		}
		if sum < 0 {
			cl.rows = append(cl.rows[:i], cl.rows[i+1:]...)
			i--
			c.newCluster(row)
			split = true
		}
	}
	return split
}
