package cluster

import (
	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/strsim"
)

// Metric is one row similarity metric. Compare returns a similarity score
// in [0, 1] and a confidence; confidence 0 means the metric has no signal
// for this pair (aggregators may then ignore or down-weight it).
type Metric interface {
	Name() string
	Compare(a, b *Row) (score, confidence float64)
}

// MetricSet returns the paper's six row similarity metrics in ablation
// order: LABEL, BOW, PHI, ATTRIBUTE, IMPLICIT_ATT, SAME_TABLE.
func MetricSet() []Metric {
	return []Metric{
		labelMetric{}, bowMetric{}, phiMetric{},
		attributeMetric{th: dtype.DefaultThresholds()},
		implicitMetric{th: dtype.DefaultThresholds()},
		sameTableMetric{},
	}
}

// MetricPrefix returns the first n metrics of MetricSet, supporting the
// ablation study of Table 7.
func MetricPrefix(n int) []Metric {
	set := MetricSet()
	if n > len(set) {
		n = len(set)
	}
	return set[:n]
}

// LABEL: Monge-Elkan similarity (Levenshtein inner) of the row labels.
// Builder-prepared rows compare their interned token forms (no
// re-tokenization, memoized token pairs); hand-built rows fall back to the
// string kernel, which computes exactly the same values.
type labelMetric struct{}

func (labelMetric) Name() string { return "LABEL" }

func (labelMetric) Compare(a, b *Row) (float64, float64) {
	if a.Prep != nil && b.Prep != nil {
		return a.Prep.MongeElkanSym(b.Prep), 1
	}
	return strsim.MongeElkanSym(a.NormLabel, b.NormLabel), 1
}

// BOW: cosine similarity of the binary term vectors over all row cells.
// Builder-prepared rows carry their vector in sorted sparse form with the
// norm cached, so the cosine is a merge join with no hashing; the values
// are exactly the map-based ones (binary weights make every accumulation
// order-independent).
type bowMetric struct{}

func (bowMetric) Name() string { return "BOW" }

func (bowMetric) Compare(a, b *Row) (float64, float64) {
	if a.bowPrepared && b.bowPrepared {
		return strsim.CosineSparse(a.bowVec, b.bowVec), 1
	}
	return strsim.Cosine(a.BOW, b.BOW), 1
}

// PHI: cosine similarity of the rows' table PHI vectors — a table-level
// signal of whether the two tables describe semantically related rows.
type phiMetric struct{}

func (phiMetric) Name() string { return "PHI" }

// TableLevel marks PHI as memoizable per table pair: Compare reads only
// the rows' TableVec, which all rows of a table share.
func (phiMetric) TableLevel() {}

func (phiMetric) Compare(a, b *Row) (float64, float64) {
	if a.TableVec.Len() == 0 || b.TableVec.Len() == 0 {
		return 0, 0
	}
	return strsim.CosineSparse(a.TableVec, b.TableVec), 1
}

// ATTRIBUTE: data-type-specific equality over overlapping mapped values;
// the confidence is the number of compared pairs.
type attributeMetric struct {
	th dtype.Thresholds
}

func (attributeMetric) Name() string { return "ATTRIBUTE" }

func (m attributeMetric) Compare(a, b *Row) (float64, float64) {
	pairs, equal := 0, 0
	for pid, va := range a.Values {
		vb, ok := b.Values[pid]
		if !ok {
			continue
		}
		pairs++
		if m.th.Equal(va, vb) {
			equal++
		}
	}
	if pairs == 0 {
		return 0, 0
	}
	return float64(equal) / float64(pairs), float64(pairs)
}

// IMPLICIT_ATT: compares the implicit attributes of one row's table with
// overlapping implicit attributes and column attributes of the other row,
// in both directions.
type implicitMetric struct {
	th dtype.Thresholds
}

func (implicitMetric) Name() string { return "IMPLICIT_ATT" }

func (m implicitMetric) Compare(a, b *Row) (float64, float64) {
	simSum, confSum := 0.0, 0.0
	pairs := 0
	direction := func(x, y *Row) {
		// Fixed property order: confSum accumulates floats, so map
		// iteration order must not leak into the score. Builder-prepared
		// rows carry the order precomputed per table.
		order := x.implicitOrder
		if order == nil && len(x.Implicit) > 0 {
			order = kb.SortedPropertyIDs(x.Implicit)
		}
		for _, pid := range order {
			ia := x.Implicit[pid]
			// Implicit vs the other table's implicit attribute.
			if ib, ok := y.Implicit[pid]; ok {
				pairs++
				confSum += ia.Score
				if m.th.Equal(ia.Value, ib.Value) {
					simSum++
				}
			}
			// Implicit vs the other row's explicit column value.
			if vb, ok := y.Values[pid]; ok {
				pairs++
				confSum += ia.Score
				if m.th.Equal(ia.Value, vb) {
					simSum++
				}
			}
		}
	}
	direction(a, b)
	direction(b, a)
	if pairs == 0 {
		return 0, 0
	}
	return simSum / float64(pairs), confSum
}

// SAME_TABLE: rows of one table usually describe different entities: 0.0
// for same-table pairs, 1.0 otherwise.
type sameTableMetric struct{}

func (sameTableMetric) Name() string { return "SAME_TABLE" }

func (sameTableMetric) Compare(a, b *Row) (float64, float64) {
	if a.Ref.Table == b.Ref.Table {
		return 0, 1
	}
	return 1, 1
}
