package cluster

import (
	"sync/atomic"

	"repro/internal/index"
	"repro/internal/lsh"
	"repro/internal/par"
	"repro/internal/strsim"
)

// scanBlocking, when set, forces block assignment onto the reference
// full-index TF-IDF search instead of LSH retrieval plus exact re-ranking.
// It mirrors index.SetScanFuzzy: a benchmark and equivalence-test knob that
// lets recall be verified against the reference rather than assumed;
// production code never sets it.
var scanBlocking atomic.Bool

// SetScanBlocking toggles the reference blocking path. Benchmark and test
// knob only.
func SetScanBlocking(v bool) { scanBlocking.Store(v) }

// BlockIndex assigns label blocks to rows. It persists across Build calls:
// the incremental ingestion engine keeps one per class so a batch's rows
// block against every label seen in earlier batches too — a fuzzy label
// variant arriving later still lands in the block of the original label
// and gets compared with its retained cluster. A fresh BlockIndex used for
// a single Build reproduces the one-shot blocking exactly.
//
// Retrieval runs in two stages: the LSH index plus a bounded rare-token
// posting walk propose a candidate set in near-constant time (see
// internal/lsh, "Hybrid retrieval"), and the inverted index re-scores
// exactly those candidates with the same TF-IDF floats the reference
// search computes, so the top-k blocks are identical to the reference
// whenever the candidates cover its top hits (the recall-equivalence
// tests in internal/core assert they do).
type BlockIndex struct {
	ix       *index.Index
	cand     *lsh.Index
	labelDoc map[string]int
	// labels lists the normalized labels in doc-ID order, so Clone can
	// rebuild an identical index deterministically and the LSH path can
	// map scored docs back to block labels without a lock.
	labels []string
}

// NewBlockIndex returns an empty block index.
func NewBlockIndex() *BlockIndex {
	return &BlockIndex{
		ix:       index.New(),
		cand:     lsh.NewIndex(lsh.DefaultParams()),
		labelDoc: make(map[string]int),
	}
}

// Assign indexes the rows' labels (skipping those already present) and
// assigns each row the blocks of its top-k most similar labels over
// everything indexed so far. A row always belongs at least to its own
// label block.
func (bi *BlockIndex) Assign(rows []*Row, k int) {
	for _, r := range rows {
		if _, ok := bi.labelDoc[r.NormLabel]; !ok {
			doc := len(bi.labels)
			bi.labelDoc[r.NormLabel] = doc
			bi.labels = append(bi.labels, r.NormLabel)
			bi.ix.Add(doc, r.NormLabel)
			bi.cand.Add(doc, r.NormLabel)
		}
	}
	// The result cache lives per call: a later Assign sees more labels and
	// must not serve block lists computed against fewer.
	cache := make(map[string][]string)
	for _, r := range rows {
		if blocks, ok := cache[r.NormLabel]; ok {
			r.Blocks = blocks
			continue
		}
		blocks := bi.topLabels(r.NormLabel, k)
		found := false
		for _, bl := range blocks {
			if bl == r.NormLabel {
				found = true
				break
			}
		}
		if !found {
			blocks = append(blocks, r.NormLabel)
		}
		cache[r.NormLabel] = blocks
		r.Blocks = blocks
	}
}

// blockScoreFloor drops block labels scoring below this fraction of the
// query's best hit. TF-IDF scores are length-normalized, so the ratio
// separates informative blocks from incidental ones: a fuzzy variant or a
// two-token homonym sharing a name token keeps roughly half the query's
// own score, while a longer label sharing one common token keeps a
// quarter or less. Without the floor, top-k always returns k blocks once
// the corpus is large enough, and every such weak block becomes a
// cluster-pair edge the KLj refinement must evaluate — per-epoch
// refinement cost then grows with the label corpus instead of the batch's
// true neighborhood.
const blockScoreFloor = 0.35

// topLabels returns the distinct labels of the top-k scored documents for
// the query, through LSH retrieval plus exact re-ranking — or through the
// reference full search when SetScanBlocking is forced. Both paths apply
// blockScoreFloor to the same exact scores, so they stay float-identical
// whenever the LSH candidates cover the reference's top hits.
func (bi *BlockIndex) topLabels(norm string, k int) []string {
	var hits []index.Hit
	if scanBlocking.Load() {
		hits = bi.ix.Search(norm, k)
	} else {
		docs := bi.cand.AppendQuery(nil, norm)
		docs = bi.ix.AppendRareDocs(docs, norm, index.DefaultRareCap)
		hits = bi.ix.ScoreDocs(norm, index.SortDedupDocs(docs))
		if len(hits) > k {
			hits = hits[:k]
		}
	}
	var out []string
	for _, h := range hits {
		if h.Score < hits[0].Score*blockScoreFloor {
			break // hits are sorted by score; everything after is weaker
		}
		// Each doc carries exactly one label here, so top-k docs map to
		// (at most) k distinct labels with no dedup needed.
		out = append(out, bi.labels[h.Doc])
	}
	return out
}

// Clone returns an independent copy (engine forks must not cross-pollinate
// each other's label universes).
func (bi *BlockIndex) Clone() *BlockIndex {
	nc := &BlockIndex{
		ix:       index.New(),
		cand:     bi.cand.Clone(),
		labelDoc: make(map[string]int, len(bi.labelDoc)),
	}
	entries := make([]index.Entry, len(bi.labels))
	for doc, l := range bi.labels {
		nc.labelDoc[l] = doc
		entries[doc] = index.Entry{Doc: doc, Label: l}
	}
	nc.labels = append(nc.labels, bi.labels...)
	nc.ix.AddBatch(entries, par.DefaultWorkers())
	return nc
}

// PhiModel is a corpus-wide PHI label-correlation model that persists
// across Build calls. The one-shot pipeline computes PHI statistics over
// the tables of a single Build; under incremental ingestion that would
// leave each epoch's rows carrying vectors from incompatible batch-local
// probability spaces. The engine instead keeps one PhiModel per class:
// every Build extends it with the batch's tables and re-finalizes over all
// tables seen so far, and Refresh then realigns the retained rows'
// TableVec to the same model, so cross-epoch pair scores always compare
// vectors from one distribution.
type PhiModel struct {
	m *phiModel
}

// NewPhiModel returns an empty model.
func NewPhiModel() *PhiModel {
	return &PhiModel{m: newPhiModel()}
}

// Clone returns an independent copy of the accumulated statistics (label
// slices are shared; they are immutable once added).
func (pm *PhiModel) Clone() *PhiModel {
	nc := newPhiModel()
	for id, labels := range pm.m.tables {
		nc.tables[id] = labels
	}
	for l, ts := range pm.m.labelTables {
		set := make(map[int]bool, len(ts))
		for t := range ts {
			set[t] = true
		}
		nc.labelTables[l] = set
	}
	for id, ms := range pm.m.members {
		nc.members[id] = append([]string(nil), ms...)
	}
	for x, ys := range pm.m.cooc {
		m := make(map[string]int, len(ys))
		for y, cnt := range ys {
			m[y] = cnt
		}
		nc.cooc[x] = m
	}
	nc.coocStale = pm.m.coocStale
	return &PhiModel{m: nc}
}

// Refresh recomputes the TableVec of the given rows from the current
// model. It requires a preceding Build (which finalizes the model); the
// engine calls it for the retained rows after each batch extends the
// statistics.
func (pm *PhiModel) Refresh(rows []*Row) {
	assignVectors(pm.m, rows)
}

// assignVectors computes one sorted PHI vector per distinct table and
// shares it across the table's rows.
func assignVectors(phi *phiModel, rows []*Row) {
	vecOf := make(map[int]strsim.SparseVec)
	for _, r := range rows {
		v, ok := vecOf[r.Ref.Table]
		if !ok {
			v = strsim.ToSparse(phi.tableVector(r.Ref.Table))
			vecOf[r.Ref.Table] = v
		}
		r.TableVec = v
	}
}

// compact drops clusters emptied by KLj merges/moves and rebuilds the
// block bookkeeping from live membership, so a long-lived incremental
// clusterer's state tracks its live rows instead of its whole history.
// Relative cluster order is preserved, keeping ID-ordered tie-breaks and
// the materialized Result identical to the uncompacted state. The no-op
// memos are carried across with their keys remapped to the compacted IDs
// (remapping is monotonic, so pair key ordering is preserved).
//
// It is a no-op while no KLj mutation happened since the last compact:
// greedy additions never empty a cluster and extend the block bookkeeping
// incrementally, so there is nothing to rebuild.
func (c *clusterer) compact() {
	if !c.moved {
		return
	}
	c.moved = false
	remap := make([]int, len(c.clusters))
	n := 0
	for ci, cl := range c.clusters {
		if len(cl.rows) == 0 {
			remap[ci] = -1
			continue
		}
		remap[ci] = n
		n++
	}
	live := c.clusters[:0]
	liveVer := c.ver[:0]
	liveLast := make([]uint64, 0, len(c.clusters))
	for ci, cl := range c.clusters {
		if remap[ci] < 0 {
			continue
		}
		live = append(live, cl)
		liveVer = append(liveVer, c.ver[ci])
		// 0 never matches a real version (verTick starts at 1), so
		// clusters without a snapshot stay dirty after the remap.
		if ci < len(c.lastKljVer) {
			liveLast = append(liveLast, c.lastKljVer[ci])
		} else {
			liveLast = append(liveLast, 0)
		}
	}
	// Trim the tail so dropped clusterStates are not retained by the
	// backing array.
	tail := c.clusters[len(live):]
	for i := range tail {
		tail[i] = nil
	}
	c.clusters = live
	c.ver = liveVer
	c.lastKljVer = liveLast
	pairNoop := make(map[[2]int][2]uint64, len(c.pairNoop))
	for p, v := range c.pairNoop {
		a, b := remap[p[0]], remap[p[1]]
		if a < 0 || b < 0 {
			continue
		}
		pairNoop[[2]int{a, b}] = v
	}
	c.pairNoop = pairNoop
	splitNoop := make(map[int]uint64, len(c.splitNoop))
	for ci, v := range c.splitNoop {
		if remap[ci] >= 0 {
			splitNoop[remap[ci]] = v
		}
	}
	c.splitNoop = splitNoop
	c.blockIndex = make(map[string]map[int]bool, len(c.blockIndex))
	for ci, cl := range c.clusters {
		cl.blocks = make(map[string]bool, len(cl.blocks))
		for _, r := range cl.rows {
			for _, b := range r.Blocks {
				cl.blocks[b] = true
				if c.blockIndex[b] == nil {
					c.blockIndex[b] = make(map[int]bool)
				}
				c.blockIndex[b][ci] = true
			}
		}
	}
}
