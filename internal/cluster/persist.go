package cluster

import (
	"repro/internal/index"
	"repro/internal/strsim"
)

// BlockIndex assigns label blocks to rows. It persists across Build calls:
// the incremental ingestion engine keeps one per class so a batch's rows
// block against every label seen in earlier batches too — a fuzzy label
// variant arriving later still lands in the block of the original label
// and gets compared with its retained cluster. A fresh BlockIndex used for
// a single Build reproduces the one-shot blocking exactly.
type BlockIndex struct {
	ix       *index.Index
	labelDoc map[string]int
	// labels lists the normalized labels in doc-ID order, so Clone can
	// rebuild an identical index deterministically.
	labels []string
}

// NewBlockIndex returns an empty block index.
func NewBlockIndex() *BlockIndex {
	return &BlockIndex{ix: index.New(), labelDoc: make(map[string]int)}
}

// Assign indexes the rows' labels (skipping those already present) and
// assigns each row the blocks of its top-k most similar labels over
// everything indexed so far. A row always belongs at least to its own
// label block.
func (bi *BlockIndex) Assign(rows []*Row, k int) {
	for _, r := range rows {
		if _, ok := bi.labelDoc[r.NormLabel]; !ok {
			doc := len(bi.labels)
			bi.labelDoc[r.NormLabel] = doc
			bi.labels = append(bi.labels, r.NormLabel)
			bi.ix.Add(doc, r.NormLabel)
		}
	}
	// The result cache lives per call: a later Assign sees more labels and
	// must not serve block lists computed against fewer.
	cache := make(map[string][]string)
	for _, r := range rows {
		if blocks, ok := cache[r.NormLabel]; ok {
			r.Blocks = blocks
			continue
		}
		blocks := bi.ix.SearchLabels(r.NormLabel, k)
		found := false
		for _, bl := range blocks {
			if bl == r.NormLabel {
				found = true
				break
			}
		}
		if !found {
			blocks = append(blocks, r.NormLabel)
		}
		cache[r.NormLabel] = blocks
		r.Blocks = blocks
	}
}

// Clone returns an independent copy (engine forks must not cross-pollinate
// each other's label universes).
func (bi *BlockIndex) Clone() *BlockIndex {
	nc := NewBlockIndex()
	for doc, l := range bi.labels {
		nc.labelDoc[l] = doc
		nc.labels = append(nc.labels, l)
		nc.ix.Add(doc, l)
	}
	return nc
}

// PhiModel is a corpus-wide PHI label-correlation model that persists
// across Build calls. The one-shot pipeline computes PHI statistics over
// the tables of a single Build; under incremental ingestion that would
// leave each epoch's rows carrying vectors from incompatible batch-local
// probability spaces. The engine instead keeps one PhiModel per class:
// every Build extends it with the batch's tables and re-finalizes over all
// tables seen so far, and Refresh then realigns the retained rows'
// TableVec to the same model, so cross-epoch pair scores always compare
// vectors from one distribution.
type PhiModel struct {
	m *phiModel
}

// NewPhiModel returns an empty model.
func NewPhiModel() *PhiModel {
	return &PhiModel{m: newPhiModel()}
}

// Clone returns an independent copy of the accumulated statistics (label
// slices are shared; they are immutable once added).
func (pm *PhiModel) Clone() *PhiModel {
	nc := newPhiModel()
	for id, labels := range pm.m.tables {
		nc.tables[id] = labels
	}
	for l, ts := range pm.m.labelTables {
		set := make(map[int]bool, len(ts))
		for t := range ts {
			set[t] = true
		}
		nc.labelTables[l] = set
	}
	return &PhiModel{m: nc}
}

// Refresh recomputes the TableVec of the given rows from the current
// model. It requires a preceding Build (which finalizes the model); the
// engine calls it for the retained rows after each batch extends the
// statistics.
func (pm *PhiModel) Refresh(rows []*Row) {
	assignVectors(pm.m, rows)
}

// assignVectors computes one sorted PHI vector per distinct table and
// shares it across the table's rows.
func assignVectors(phi *phiModel, rows []*Row) {
	vecOf := make(map[int]strsim.SparseVec)
	for _, r := range rows {
		v, ok := vecOf[r.Ref.Table]
		if !ok {
			v = strsim.ToSparse(phi.tableVector(r.Ref.Table))
			vecOf[r.Ref.Table] = v
		}
		r.TableVec = v
	}
}

// compact drops clusters emptied by KLj merges/moves and rebuilds the
// block bookkeeping from live membership, so a long-lived incremental
// clusterer's state tracks its live rows instead of its whole history.
// Relative cluster order is preserved, keeping ID-ordered tie-breaks and
// the materialized Result identical to the uncompacted state.
func (c *clusterer) compact() {
	live := c.clusters[:0]
	for _, cl := range c.clusters {
		if len(cl.rows) == 0 {
			continue
		}
		live = append(live, cl)
	}
	// Trim the tail so dropped clusterStates are not retained by the
	// backing array.
	tail := c.clusters[len(live):]
	for i := range tail {
		tail[i] = nil
	}
	c.clusters = live
	c.blockIndex = make(map[string]map[int]bool, len(c.blockIndex))
	for ci, cl := range c.clusters {
		cl.blocks = make(map[string]bool, len(cl.blocks))
		for _, r := range cl.rows {
			for _, b := range r.Blocks {
				cl.blocks[b] = true
				if c.blockIndex[b] == nil {
					c.blockIndex[b] = make(map[int]bool)
				}
				c.blockIndex[b][ci] = true
			}
		}
	}
}
