package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/strsim"
)

// blockTestRows builds rows over a shared narrow vocabulary with fuzzy
// variants, the regime blocking exists for.
func blockTestRows(rng *rand.Rand, n int) []*Row {
	word := func(ln int) string {
		b := make([]byte, ln)
		for i := range b {
			b[i] = byte('a' + rng.Intn(8))
		}
		return string(b)
	}
	base := make([]string, n/3+1)
	for i := range base {
		base[i] = fmt.Sprintf("%s %s", word(5+rng.Intn(4)), word(6+rng.Intn(4)))
	}
	rows := make([]*Row, 0, n)
	for i := 0; i < n; i++ {
		l := base[rng.Intn(len(base))]
		switch rng.Intn(3) {
		case 0: // exact duplicate
		case 1: // typo in one token
			cut := 1 + rng.Intn(len(l)-2)
			if l[cut] != ' ' {
				l = l[:cut] + l[cut+1:]
			}
		case 2: // extra qualifier token
			l = l + " " + word(4)
		}
		rows = append(rows, &Row{NormLabel: strsim.Normalize(l)})
	}
	return rows
}

// TestBlockAssignLSHRecall compares LSH blocking against the reference
// full-search path over two persistent Assign waves: every row keeps its
// own-label block, the LSH path is deterministic, and its block sets cover
// at least 95% of the reference blocks.
func TestBlockAssignLSHRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rows := blockTestRows(rng, 240)
	assign := func() []*Row {
		rs := make([]*Row, len(rows))
		for i, r := range rows {
			rs[i] = &Row{NormLabel: r.NormLabel}
		}
		bi := NewBlockIndex()
		bi.Assign(rs[:len(rs)/2], 6)
		bi.Assign(rs[len(rs)/2:], 6)
		return rs
	}

	lshRows := assign()
	lshRows2 := assign()
	SetScanBlocking(true)
	refRows := assign()
	SetScanBlocking(false)

	refBlocks, hitBlocks := 0, 0
	for i := range rows {
		if !reflect.DeepEqual(lshRows[i].Blocks, lshRows2[i].Blocks) {
			t.Fatalf("row %d: LSH blocking not deterministic: %v vs %v", i, lshRows[i].Blocks, lshRows2[i].Blocks)
		}
		own := false
		got := make(map[string]bool, len(lshRows[i].Blocks))
		for _, b := range lshRows[i].Blocks {
			got[b] = true
			own = own || b == rows[i].NormLabel
		}
		if !own {
			t.Fatalf("row %d lost its own-label block", i)
		}
		for _, b := range refRows[i].Blocks {
			refBlocks++
			if got[b] {
				hitBlocks++
			}
		}
	}
	if recall := float64(hitBlocks) / float64(refBlocks); recall < 0.95 {
		t.Fatalf("LSH block recall = %.3f over %d reference blocks, want >= 0.95", recall, refBlocks)
	}
}

// TestBlockIndexCloneEquivalent proves a cloned index (batch-built inverted
// index + cloned LSH buckets) assigns the same blocks as the original.
func TestBlockIndexCloneEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seedRows := blockTestRows(rng, 90)
	bi := NewBlockIndex()
	bi.Assign(seedRows, 6)
	cl := bi.Clone()

	probe := blockTestRows(rng, 40)
	mk := func(src []*Row) []*Row {
		rs := make([]*Row, len(src))
		for i, r := range src {
			rs[i] = &Row{NormLabel: r.NormLabel}
		}
		return rs
	}
	a, b := mk(probe), mk(probe)
	bi.Assign(a, 6)
	cl.Assign(b, 6)
	for i := range probe {
		if !reflect.DeepEqual(a[i].Blocks, b[i].Blocks) {
			t.Fatalf("row %d: original blocks %v, clone blocks %v", i, a[i].Blocks, b[i].Blocks)
		}
	}
	// And the clone must be isolated: new labels added to it do not appear
	// in the original.
	extra := []*Row{{NormLabel: "zzzz qqqq ffff"}}
	cl.Assign(extra, 6)
	if _, leaked := bi.labelDoc["zzzz qqqq ffff"]; leaked {
		t.Fatal("clone Assign leaked a label into the original")
	}
}
