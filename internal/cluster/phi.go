package cluster

import "math"

// phiModel computes the PHI label-correlation table vectors of §3.2: for
// each label a vector of PHI correlations with co-occurring labels, and for
// each table the average of its row labels' vectors.
type phiModel struct {
	// tables maps table ID to its (normalized) row labels.
	tables map[int][]string
	// labelTables maps label to the set of tables containing it.
	labelTables map[string]map[int]bool
	nLabels     int
	vectors     map[string]map[string]float64
}

func newPhiModel() *phiModel {
	return &phiModel{
		tables:      make(map[int][]string),
		labelTables: make(map[string]map[int]bool),
	}
}

func (p *phiModel) addTable(id int, labels []string) {
	p.tables[id] = labels
	for _, l := range labels {
		if p.labelTables[l] == nil {
			p.labelTables[l] = make(map[int]bool)
		}
		p.labelTables[l][id] = true
	}
}

// finalize computes the per-label PHI vectors:
//
//	PHI(x,y) = (n·n_xy − n_x·n_y) / sqrt(n_x·n_y·(n−n_x)·(n−n_y))
//
// where n is the total number of unique labels, n_xy the co-occurrence of x
// and y in the same table, and n_x the occurrence of label x in a table.
func (p *phiModel) finalize() {
	p.nLabels = len(p.labelTables)
	p.vectors = make(map[string]map[string]float64, p.nLabels)
	n := float64(p.nLabels)
	if n == 0 {
		return
	}
	// Count co-occurrence via table membership.
	occ := func(l string) float64 { return float64(len(p.labelTables[l])) }
	for x, xTables := range p.labelTables {
		vec := make(map[string]float64)
		// Labels co-occurring with x are those in x's tables.
		seen := make(map[string]bool)
		for t := range xTables {
			for _, y := range p.tables[t] {
				if y == x || seen[y] {
					continue
				}
				seen[y] = true
				nxy := 0.0
				for t2 := range xTables {
					if p.labelTables[y][t2] {
						nxy++
					}
				}
				nx, ny := occ(x), occ(y)
				den := math.Sqrt(nx * ny * (n - nx) * (n - ny))
				if den == 0 {
					continue
				}
				phi := (n*nxy - nx*ny) / den
				if phi > 0 {
					vec[y] = phi
				}
			}
		}
		p.vectors[x] = vec
	}
}

// tableVector averages the PHI vectors of a table's row labels.
func (p *phiModel) tableVector(table int) map[string]float64 {
	labels := p.tables[table]
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]float64)
	for _, l := range labels {
		for k, v := range p.vectors[l] {
			out[k] += v
		}
	}
	inv := 1 / float64(len(labels))
	for k := range out {
		out[k] *= inv
	}
	return out
}
