package cluster

import "math"

// phiModel computes the PHI label-correlation table vectors of §3.2: for
// each label a vector of PHI correlations with co-occurring labels, and for
// each table the average of its row labels' vectors.
//
// Co-occurrence pair counts are maintained incrementally by addTable, so
// finalize costs O(co-occurring pairs) instead of re-deriving every count
// from the table sets — the difference between a model rebuild that stays
// proportional to the batch-touched neighborhood and one that rescans all
// accumulated state each epoch. finalizeReference keeps the original
// derivation as the executable specification.
type phiModel struct {
	// tables maps table ID to its (normalized) row labels.
	tables map[int][]string
	// labelTables maps label to the set of tables containing it.
	labelTables map[string]map[int]bool
	// members lists each table's distinct labels in first-seen order across
	// all addTable calls — the append-only mirror of labelTables, used to
	// extend cooc when a later call adds new labels to a table.
	members map[int][]string
	// cooc[x][y] counts the tables containing both x and y (symmetric; both
	// directions stored so finalize can range one map per label).
	cooc map[string]map[string]int
	// coocStale is set when a table is re-added with different labels: the
	// reference derivation then enumerates candidates from the new table
	// contents while counting against the sticky labelTables sets, a
	// combination the incremental counts cannot mirror. finalize falls back
	// to finalizeReference until the next reset. The ingestion engine
	// re-adds each table with identical labels per pipeline iteration, so
	// the fast path holds there.
	coocStale bool
	nLabels   int
	vectors   map[string]map[string]float64
}

func newPhiModel() *phiModel {
	return &phiModel{
		tables:      make(map[int][]string),
		labelTables: make(map[string]map[int]bool),
		members:     make(map[int][]string),
		cooc:        make(map[string]map[string]int),
	}
}

func (p *phiModel) addTable(id int, labels []string) {
	if old, ok := p.tables[id]; ok && !equalLabels(old, labels) {
		p.coocStale = true
	}
	p.tables[id] = labels
	for _, l := range labels {
		if p.labelTables[l] == nil {
			p.labelTables[l] = make(map[int]bool)
		}
		if p.labelTables[l][id] {
			continue
		}
		p.labelTables[l][id] = true
		// First time l appears in this table: it now co-occurs with every
		// label already in the table (including earlier labels of this same
		// call, already appended to members).
		for _, m := range p.members[id] {
			p.bumpCooc(l, m)
			p.bumpCooc(m, l)
		}
		p.members[id] = append(p.members[id], l)
	}
}

func (p *phiModel) bumpCooc(x, y string) {
	if p.cooc[x] == nil {
		p.cooc[x] = make(map[string]int)
	}
	p.cooc[x][y]++
}

func equalLabels(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// finalize computes the per-label PHI vectors:
//
//	PHI(x,y) = (n·n_xy − n_x·n_y) / sqrt(n_x·n_y·(n−n_x)·(n−n_y))
//
// where n is the total number of unique labels, n_xy the co-occurrence of x
// and y in the same table, and n_x the occurrence of label x in a table.
//
// The fast path reads the incrementally maintained pair counts; it is
// float-identical to finalizeReference (both accumulate n_xy as unit
// increments, and the PHI expression is evaluated in the same shape) with
// the same candidate sets whenever tables are only added or re-added with
// identical labels.
func (p *phiModel) finalize() {
	if p.coocStale {
		p.finalizeReference()
		return
	}
	p.nLabels = len(p.labelTables)
	// Labels are append-only, so the vector maps of the previous finalize
	// can be cleared and refilled in place: re-finalizing over a grown
	// corpus then reuses ~all of its map storage instead of reallocating
	// O(labels) maps per epoch. (Clones start with nil vectors, so no two
	// models ever share these maps.)
	if p.vectors == nil {
		p.vectors = make(map[string]map[string]float64, p.nLabels)
	}
	n := float64(p.nLabels)
	if n == 0 {
		return
	}
	for x, xTables := range p.labelTables {
		vec := p.vectors[x]
		if vec == nil {
			vec = make(map[string]float64, len(p.cooc[x]))
			p.vectors[x] = vec
		} else {
			clear(vec)
		}
		nx := float64(len(xTables))
		for y, cnt := range p.cooc[x] {
			nxy := float64(cnt)
			ny := float64(len(p.labelTables[y]))
			den := math.Sqrt(nx * ny * (n - nx) * (n - ny))
			if den == 0 {
				continue
			}
			phi := (n*nxy - nx*ny) / den
			if phi > 0 {
				vec[y] = phi
			}
		}
	}
}

// finalizeReference derives every co-occurrence count from the table sets
// on each call. It is the executable specification the incremental fast
// path is tested against, and the fallback when a table re-add changed its
// labels (see coocStale).
func (p *phiModel) finalizeReference() {
	p.nLabels = len(p.labelTables)
	p.vectors = make(map[string]map[string]float64, p.nLabels)
	n := float64(p.nLabels)
	if n == 0 {
		return
	}
	// Count co-occurrence via table membership.
	occ := func(l string) float64 { return float64(len(p.labelTables[l])) }
	for x, xTables := range p.labelTables {
		vec := make(map[string]float64)
		// Labels co-occurring with x are those in x's tables.
		seen := make(map[string]bool)
		for t := range xTables {
			for _, y := range p.tables[t] {
				if y == x || seen[y] {
					continue
				}
				seen[y] = true
				nxy := 0.0
				for t2 := range xTables {
					if p.labelTables[y][t2] {
						nxy++
					}
				}
				nx, ny := occ(x), occ(y)
				den := math.Sqrt(nx * ny * (n - nx) * (n - ny))
				if den == 0 {
					continue
				}
				phi := (n*nxy - nx*ny) / den
				if phi > 0 {
					vec[y] = phi
				}
			}
		}
		p.vectors[x] = vec
	}
}

// tableVector averages the PHI vectors of a table's row labels.
func (p *phiModel) tableVector(table int) map[string]float64 {
	labels := p.tables[table]
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]float64)
	for _, l := range labels {
		for k, v := range p.vectors[l] {
			out[k] += v
		}
	}
	inv := 1 / float64(len(labels))
	for k := range out {
		out[k] *= inv
	}
	return out
}
