package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestClusteringPartitionProperty: for random row sets, the clustering is
// always a partition — every row appears in exactly one cluster, and Assign
// agrees with cluster membership.
func TestClusteringPartitionProperty(t *testing.T) {
	f := func(seed int64, nRows uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRows%40) + 2
		rows := make([]*Row, n)
		for i := range rows {
			label := fmt.Sprintf("Entity %d", rng.Intn(8))
			rows[i] = mkRow(i, 0, label, nil)
		}
		cl := Cluster(rows, labelScorer(), Options{
			Blocking: seed%2 == 0, KLj: seed%3 == 0,
			BatchSize:    int(absMod(seed, 5)) + 1,
			MaxKLjRounds: 2,
		})
		seen := make(map[string]int)
		for id, members := range cl.Clusters {
			for _, r := range members {
				seen[r.Ref.String()]++
				if cl.Assign[r.Ref] != id {
					return false
				}
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMetricsRangeProperty: every metric returns scores in [0, 1] and
// non-negative confidence for arbitrary row pairs.
func TestMetricsRangeProperty(t *testing.T) {
	f := func(la, lb string, ta, tb uint8) bool {
		if len(la) > 24 {
			la = la[:24]
		}
		if len(lb) > 24 {
			lb = lb[:24]
		}
		a := mkRow(int(ta), 0, la, nil)
		b := mkRow(int(tb), 0, lb, nil)
		for _, m := range MetricSet() {
			s, c := m.Compare(a, b)
			if s < 0 || s > 1 || c < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestGreedyIdempotentOnSingletons: re-clustering a set of all-distinct
// rows keeps them singletons regardless of options.
func TestGreedyIdempotentOnSingletons(t *testing.T) {
	f := func(seed int64) bool {
		n := int(absMod(seed, 20)) + 3
		rows := make([]*Row, n)
		for i := range rows {
			rows[i] = mkRow(i, 0, fmt.Sprintf("Unique Entity Number %d Xyz", i), nil)
		}
		cl := Cluster(rows, labelScorer(), NewOptions())
		return cl.NumClusters() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// absMod returns |x mod m|, safe for negative x.
func absMod(x int64, m int64) int64 {
	v := x % m
	if v < 0 {
		v = -v
	}
	return v
}
