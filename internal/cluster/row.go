// Package cluster implements the row clustering step of the pipeline
// (§3.2): six row similarity metrics (LABEL, BOW, PHI, ATTRIBUTE,
// IMPLICIT_ATT, SAME_TABLE), three score aggregation strategies (learned
// weighted average, random forest regression, and their combination),
// label-based blocking, a parallelized greedy correlation clustering, and a
// Kernighan-Lin-with-joins (KLj) refinement.
package cluster

import (
	"sort"

	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/strsim"
	"repro/internal/webtable"
)

// Row is one web table row prepared for clustering: its label, bag of
// words, schema-mapped values, and table-level implicit attributes.
type Row struct {
	Ref       webtable.RowRef
	Label     string
	NormLabel string
	// BOW is the binary term vector over all cells of the row.
	BOW map[string]float64
	// Values holds the row's cell values mapped to KB properties via the
	// attribute-to-property correspondences.
	Values map[kb.PropertyID]dtype.Value
	// Implicit holds the implicit property-value combinations of the
	// row's table with their confidence scores.
	Implicit map[kb.PropertyID]ImplicitAttr
	// TableVec is the table's PHI label-correlation vector, sorted by key
	// so the PHI metric's accumulation order is fixed across runs.
	TableVec strsim.SparseVec
	// Blocks are the normalized label blocks assigned by the blocker.
	Blocks []string
	// Prep is the prepared (tokenized and interned) form of NormLabel,
	// set by Builder.Build so the LABEL metric never re-tokenizes. Nil
	// for hand-built rows; the metrics fall back to the string kernels.
	Prep *strsim.PreparedLabel
	// bowVec is BOW in sorted sparse form with its norm cached, set with
	// bowPrepared by Builder.Build; the BOW metric then runs an
	// allocation-free merge join instead of hashing map keys per pair.
	bowVec      strsim.SparseVec
	bowPrepared bool
	// implicitOrder is kb.SortedPropertyIDs(Implicit), computed once per
	// table (rows of a table share the Implicit map) so the IMPLICIT_ATT
	// metric does not sort property IDs on every pair comparison.
	implicitOrder []kb.PropertyID
}

// ImplicitAttr is one implicit property-value combination derived for a
// table, with the fraction of rows supporting it as its confidence.
type ImplicitAttr struct {
	Value dtype.Value
	Score float64
}

// BuildConfig controls row preparation.
type BuildConfig struct {
	// ImplicitThreshold is the minimum support for keeping an implicit
	// property-value combination (default 0.5).
	ImplicitThreshold float64
	// ImplicitCandidates is the number of KB candidates consulted per row
	// label when deriving implicit attributes (default 5).
	ImplicitCandidates int
	// BlockK is the number of similar labels retrieved per row during
	// blocking (default 6).
	BlockK int
}

// Builder prepares Rows for a class: it extracts labels, bags of words and
// mapped values, derives implicit table attributes from the knowledge base,
// computes PHI table vectors, and assigns blocks.
type Builder struct {
	KB     *kb.KB
	Corpus *webtable.Corpus
	Class  kb.ClassID
	// Mapping gives the attribute-to-property correspondences per table:
	// Mapping[tableID][col] = property.
	Mapping map[int]map[int]kb.PropertyID
	Config  BuildConfig
	// Blocks, when set, persists the blocking label index across Build
	// calls so later batches block against every label seen so far (the
	// incremental engine's mode). Nil builds a fresh per-call index, the
	// one-shot pipeline behavior.
	Blocks *BlockIndex
	// Phi, when set, persists the PHI statistics across Build calls: each
	// Build extends them with its tables and re-finalizes over everything
	// seen so far. Nil keeps the statistics local to the call.
	Phi *PhiModel
}

// Build prepares the rows of the given tables (identified by table ID).
func (b *Builder) Build(tableIDs []int) []*Row {
	cfg := b.Config
	if cfg.ImplicitThreshold <= 0 {
		cfg.ImplicitThreshold = 0.5
	}
	if cfg.ImplicitCandidates <= 0 {
		cfg.ImplicitCandidates = 5
	}
	if cfg.BlockK <= 0 {
		cfg.BlockK = 6
	}

	pm := b.Phi
	if pm == nil {
		pm = NewPhiModel()
	}
	phi := pm.m
	var rows []*Row
	for _, tid := range tableIDs {
		t := b.Corpus.Table(tid)
		if t == nil || t.LabelCol < 0 {
			continue
		}
		implicit := b.implicitAttrs(t, cfg)
		implicitOrder := kb.SortedPropertyIDs(implicit)
		var tableLabels []string
		for r := 0; r < t.NumRows(); r++ {
			label := t.RowLabel(r)
			norm := strsim.Normalize(label)
			if norm == "" {
				continue
			}
			tableLabels = append(tableLabels, norm)
			bow := rowBOW(t, r)
			row := &Row{
				Ref:           webtable.RowRef{Table: tid, Row: r},
				Label:         label,
				NormLabel:     norm,
				BOW:           bow,
				Implicit:      implicit,
				Prep:          strsim.PrepareCached(norm),
				bowVec:        strsim.ToSparse(bow),
				bowPrepared:   true,
				implicitOrder: implicitOrder,
			}
			if m := b.Mapping[tid]; m != nil {
				row.Values = extractValues(b.KB, b.Class, t, r, m)
			} else {
				row.Values = map[kb.PropertyID]dtype.Value{}
			}
			rows = append(rows, row)
		}
		phi.addTable(tid, tableLabels)
	}
	phi.finalize()
	// One sorted PHI vector per table, shared by all of its rows.
	assignVectors(phi, rows)
	bi := b.Blocks
	if bi == nil {
		bi = NewBlockIndex()
	}
	bi.Assign(rows, cfg.BlockK)
	return rows
}

// rowBOW builds the binary term vector over all cells of a row.
func rowBOW(t *webtable.Table, row int) map[string]float64 {
	v := make(map[string]float64)
	for c := 0; c < t.NumCols(); c++ {
		for _, tok := range strsim.Tokens(t.Cell(row, c)) {
			v[tok] = 1
		}
	}
	return v
}

// extractValues parses the mapped cells of a row into typed values.
// Columns are visited in ascending order so that when two columns map to
// the same property, the winner is deterministic.
func extractValues(k *kb.KB, class kb.ClassID, t *webtable.Table, row int, mapping map[int]kb.PropertyID) map[kb.PropertyID]dtype.Value {
	out := make(map[kb.PropertyID]dtype.Value)
	for _, col := range sortedCols(mapping) {
		pid := mapping[col]
		prop, ok := k.Property(class, pid)
		if !ok {
			continue
		}
		if v, ok := dtype.Parse(t.Cell(row, col), prop.Kind); ok {
			out[pid] = v
		}
	}
	return out
}

// sortedCols returns the mapping's column indices in ascending order.
func sortedCols(mapping map[int]kb.PropertyID) []int {
	cols := make([]int, 0, len(mapping))
	for c := range mapping {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	return cols
}

// implicitAttrs derives the implicit property-value combinations of a table
// (§3.2, IMPLICIT_ATT): row labels retrieve candidate instances; every
// property-value combination of any candidate is scored by the fraction of
// rows having it; combinations above the threshold are kept.
func (b *Builder) implicitAttrs(t *webtable.Table, cfg BuildConfig) map[kb.PropertyID]ImplicitAttr {
	type pv struct {
		pid kb.PropertyID
		key string
	}
	support := make(map[pv]int)
	values := make(map[pv]dtype.Value)
	// reps records, per property, the group-representative keys in
	// first-seen order so that near-equal grouping is deterministic.
	reps := make(map[kb.PropertyID][]pv)
	n := 0
	th := dtype.DefaultThresholds()
	for r := 0; r < t.NumRows(); r++ {
		label := t.RowLabel(r)
		if label == "" {
			continue
		}
		n++
		cands := b.KB.Candidates(label, kb.CandidateOpts{K: cfg.ImplicitCandidates, Class: b.Class})
		// Deduplicate combinations across this row's candidates so one
		// row contributes at most one unit of support per combination.
		seen := make(map[pv]bool)
		for _, iid := range cands {
			b.KB.ForEachFact(iid, func(pid kb.PropertyID, v dtype.Value) {
				key := pv{pid, v.String()}
				if seen[key] {
					return
				}
				// Group near-equal values under the earliest-seen
				// representative key.
				for _, existing := range reps[pid] {
					if th.Equal(values[existing], v) {
						key = existing
						break
					}
				}
				if seen[key] {
					return
				}
				seen[key] = true
				support[key]++
				if _, ok := values[key]; !ok {
					values[key] = v
					reps[pid] = append(reps[pid], key)
				}
			})
		}
	}
	out := make(map[kb.PropertyID]ImplicitAttr)
	if n == 0 {
		return out
	}
	// Visit combinations in deterministic order so equal-support ties
	// resolve identically across runs.
	keys := make([]pv, 0, len(support))
	for key := range support {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].key < keys[j].key
	})
	for _, key := range keys {
		score := float64(support[key]) / float64(n)
		if score < cfg.ImplicitThreshold {
			continue
		}
		// Keep the best-supported combination per property.
		if cur, ok := out[key.pid]; !ok || score > cur.Score {
			out[key.pid] = ImplicitAttr{Value: values[key], Score: score}
		}
	}
	return out
}
