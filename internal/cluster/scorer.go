package cluster

import (
	"repro/internal/agg"
)

// Scorer combines a metric set with an aggregator into the row similarity
// function used by the clustering algorithms: a normalized score in
// [-1, 1], positive meaning "same instance". Pair is safe for concurrent
// use (the greedy pass scores batches in parallel) and allocation-free:
// feature vectors cycle through a pool, which agg.Aggregator's contract
// (Score must not retain the slices) makes safe.
type Scorer struct {
	Metrics []Metric
	Agg     agg.Aggregator
}

// Features evaluates all metrics on a pair. The result is freshly
// allocated and may be retained (learning keeps features in Examples);
// the scoring hot path is Pair, which recycles its vectors instead.
func (s *Scorer) Features(a, b *Row) agg.Features {
	f := agg.Features{
		Scores: make([]float64, len(s.Metrics)),
		Confs:  make([]float64, len(s.Metrics)),
	}
	s.featuresInto(&f, a, b)
	return f
}

func (s *Scorer) featuresInto(f *agg.Features, a, b *Row) {
	for i, m := range s.Metrics {
		f.Scores[i], f.Confs[i] = m.Compare(a, b)
	}
}

// Pair returns the aggregated, normalized similarity of two rows.
func (s *Scorer) Pair(a, b *Row) float64 {
	f := agg.BorrowFeatures(len(s.Metrics))
	s.featuresInto(f, a, b)
	score := s.Agg.Score(*f)
	agg.ReturnFeatures(f)
	return score
}

// tableLevelMetric marks a Metric whose Compare output depends only on the
// two rows' tables (not on the individual rows). Such metrics can be
// memoized per table pair while the rows' table-level state is stable.
type tableLevelMetric interface {
	Metric
	// TableLevel is a marker; implementations need no behaviour.
	TableLevel()
}

// tablePairMemo caches the outputs of a scorer's table-level metrics per
// (metric, tableA, tableB) key. PHI is the motivating case: its cosine
// compares per-table vectors whose support grows with the corpus
// vocabulary, yet every row pair drawn from the same two tables repeats
// the identical computation. The memo is exact — values are the metrics'
// own outputs — but it must not outlive the table-level state it caches
// (the engine's PHI refresh rewrites TableVec between Add batches), so
// holders reset or discard it whenever that state may have changed. Not
// safe for concurrent use; the parallel greedy pass keeps one per worker
// scratch.
type tablePairMemo struct {
	// mask flags the table-level metric indices; nil when the scorer has
	// none (pairMemo then degenerates to Pair).
	mask []bool
	m    map[[3]int][2]float64
}

// newTablePairMemo returns a memo sized for the scorer's metric set.
func newTablePairMemo(s *Scorer) *tablePairMemo {
	var mask []bool
	for i, m := range s.Metrics {
		if _, ok := m.(tableLevelMetric); ok {
			if mask == nil {
				mask = make([]bool, len(s.Metrics))
			}
			mask[i] = true
		}
	}
	if mask == nil {
		return &tablePairMemo{}
	}
	return &tablePairMemo{mask: mask, m: make(map[[3]int][2]float64)}
}

// Reset drops all cached values (keeping the metric mask).
func (tm *tablePairMemo) Reset() {
	clear(tm.m)
}

// pairMemo is Pair with table-level metric outputs served from the memo.
// The returned score is bit-identical to Pair's: cached entries are the
// metrics' own Compare outputs, and table-level metrics return the same
// floats for every row pair of the same two tables by definition.
func (s *Scorer) pairMemo(a, b *Row, memo *tablePairMemo) float64 {
	if memo == nil || memo.mask == nil {
		return s.Pair(a, b)
	}
	f := agg.BorrowFeatures(len(s.Metrics))
	for i, m := range s.Metrics {
		if memo.mask[i] {
			k := [3]int{i, a.Ref.Table, b.Ref.Table}
			if v, ok := memo.m[k]; ok {
				f.Scores[i], f.Confs[i] = v[0], v[1]
				continue
			}
			sc, cf := m.Compare(a, b)
			memo.m[k] = [2]float64{sc, cf}
			f.Scores[i], f.Confs[i] = sc, cf
			continue
		}
		f.Scores[i], f.Confs[i] = m.Compare(a, b)
	}
	score := s.Agg.Score(*f)
	agg.ReturnFeatures(f)
	return score
}

// PairExample is a labeled row pair for learning the aggregators.
type PairExample struct {
	A, B  *Row
	Match bool
}

// BuildExamples converts labeled row pairs into aggregation examples by
// evaluating the metric set on each pair.
func BuildExamples(metrics []Metric, pairs []PairExample) []agg.Example {
	s := &Scorer{Metrics: metrics}
	out := make([]agg.Example, len(pairs))
	for i, p := range pairs {
		out[i] = agg.Example{F: s.Features(p.A, p.B), Match: p.Match}
	}
	return out
}

// LearnScorer learns the combined aggregator (weighted average + random
// forest) for a metric set from labeled pairs and returns the ready-to-use
// scorer together with the combined model (for importance reporting).
func LearnScorer(metrics []Metric, pairs []PairExample, seed int64) (*Scorer, *agg.Combined) {
	examples := BuildExamples(metrics, pairs)
	c := agg.LearnCombined(examples, len(metrics), seed)
	return &Scorer{Metrics: metrics, Agg: c}, c
}
