package cluster

import (
	"repro/internal/agg"
)

// Scorer combines a metric set with an aggregator into the row similarity
// function used by the clustering algorithms: a normalized score in
// [-1, 1], positive meaning "same instance".
type Scorer struct {
	Metrics []Metric
	Agg     agg.Aggregator
}

// Features evaluates all metrics on a pair.
func (s *Scorer) Features(a, b *Row) agg.Features {
	f := agg.Features{
		Scores: make([]float64, len(s.Metrics)),
		Confs:  make([]float64, len(s.Metrics)),
	}
	for i, m := range s.Metrics {
		f.Scores[i], f.Confs[i] = m.Compare(a, b)
	}
	return f
}

// Pair returns the aggregated, normalized similarity of two rows.
func (s *Scorer) Pair(a, b *Row) float64 {
	return s.Agg.Score(s.Features(a, b))
}

// PairExample is a labeled row pair for learning the aggregators.
type PairExample struct {
	A, B  *Row
	Match bool
}

// BuildExamples converts labeled row pairs into aggregation examples by
// evaluating the metric set on each pair.
func BuildExamples(metrics []Metric, pairs []PairExample) []agg.Example {
	s := &Scorer{Metrics: metrics}
	out := make([]agg.Example, len(pairs))
	for i, p := range pairs {
		out[i] = agg.Example{F: s.Features(p.A, p.B), Match: p.Match}
	}
	return out
}

// LearnScorer learns the combined aggregator (weighted average + random
// forest) for a metric set from labeled pairs and returns the ready-to-use
// scorer together with the combined model (for importance reporting).
func LearnScorer(metrics []Metric, pairs []PairExample, seed int64) (*Scorer, *agg.Combined) {
	examples := BuildExamples(metrics, pairs)
	c := agg.LearnCombined(examples, len(metrics), seed)
	return &Scorer{Metrics: metrics, Agg: c}, c
}
