package cluster

import (
	"repro/internal/agg"
)

// Scorer combines a metric set with an aggregator into the row similarity
// function used by the clustering algorithms: a normalized score in
// [-1, 1], positive meaning "same instance". Pair is safe for concurrent
// use (the greedy pass scores batches in parallel) and allocation-free:
// feature vectors cycle through a pool, which agg.Aggregator's contract
// (Score must not retain the slices) makes safe.
type Scorer struct {
	Metrics []Metric
	Agg     agg.Aggregator
}

// Features evaluates all metrics on a pair. The result is freshly
// allocated and may be retained (learning keeps features in Examples);
// the scoring hot path is Pair, which recycles its vectors instead.
func (s *Scorer) Features(a, b *Row) agg.Features {
	f := agg.Features{
		Scores: make([]float64, len(s.Metrics)),
		Confs:  make([]float64, len(s.Metrics)),
	}
	s.featuresInto(&f, a, b)
	return f
}

func (s *Scorer) featuresInto(f *agg.Features, a, b *Row) {
	for i, m := range s.Metrics {
		f.Scores[i], f.Confs[i] = m.Compare(a, b)
	}
}

// Pair returns the aggregated, normalized similarity of two rows.
func (s *Scorer) Pair(a, b *Row) float64 {
	f := agg.BorrowFeatures(len(s.Metrics))
	s.featuresInto(f, a, b)
	score := s.Agg.Score(*f)
	agg.ReturnFeatures(f)
	return score
}

// PairExample is a labeled row pair for learning the aggregators.
type PairExample struct {
	A, B  *Row
	Match bool
}

// BuildExamples converts labeled row pairs into aggregation examples by
// evaluating the metric set on each pair.
func BuildExamples(metrics []Metric, pairs []PairExample) []agg.Example {
	s := &Scorer{Metrics: metrics}
	out := make([]agg.Example, len(pairs))
	for i, p := range pairs {
		out[i] = agg.Example{F: s.Features(p.A, p.B), Match: p.Match}
	}
	return out
}

// LearnScorer learns the combined aggregator (weighted average + random
// forest) for a metric set from labeled pairs and returns the ready-to-use
// scorer together with the combined model (for importance reporting).
func LearnScorer(metrics []Metric, pairs []PairExample, seed int64) (*Scorer, *agg.Combined) {
	examples := BuildExamples(metrics, pairs)
	c := agg.LearnCombined(examples, len(metrics), seed)
	return &Scorer{Metrics: metrics, Agg: c}, c
}
