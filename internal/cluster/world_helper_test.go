package cluster

import (
	"sync"

	"repro/internal/webtable"
	"repro/internal/world"
)

var (
	helperOnce sync.Once
	helperW    *world.World
	helperC    *webtable.Corpus
)

// testWorldCorpus returns a shared small world and corpus for tests.
func testWorldCorpus() (*world.World, *webtable.Corpus) {
	helperOnce.Do(func() {
		helperW = world.Generate(world.DefaultConfig(0.15))
		helperC = webtable.Synthesize(helperW, webtable.DefaultSynthConfig(0.08))
	})
	return helperW, helperC
}
