package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gold"
	"repro/internal/kb"
)

// cancelAt returns a Progress hook that cancels the context the first time
// the given stage of the given iteration starts — a deterministic
// mid-ingest cancellation point.
func cancelAt(cancel context.CancelFunc, stage Stage, iteration int) func(Event) {
	fired := false
	return func(ev Event) {
		if !fired && ev.Stage == stage && ev.Iteration == iteration {
			fired = true
			cancel()
		}
	}
}

// TestIngestCancelledCommitsNothing is the cancellation consistency
// criterion: an Ingest cancelled mid-epoch (at several different stages)
// returns context.Canceled, publishes nothing — epoch, history, retained
// output and the KB are exactly as before — and the same engine then
// completes the identical batch on a retry, producing output byte-identical
// to a never-cancelled engine's.
func TestIngestCancelledCommitsNothing(t *testing.T) {
	w, corpus := fixture()
	tables := classify(w.KB, corpus)[kb.ClassGFPlayer]
	if len(tables) < 2 {
		t.Fatal("fixture needs at least two GF-Player tables")
	}

	// The reference run: an uncancelled engine over the same batches.
	refCfg := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
	refCfg.Iterations = 2
	ref := NewEngine(refCfg, Models{})
	ref.WriteBack = false
	refOut, refStats, err := ref.Ingest(context.Background(), tables)
	if err != nil {
		t.Fatalf("reference ingest: %v", err)
	}

	stages := []struct {
		stage Stage
		it    int
	}{
		{StageMatch, 1},
		{StageCluster, 1},
		{StageDetect, 1},
		{StageMatch, 2}, // second iteration: retained-state paths
		{StageFuse, 2},
	}
	for _, tc := range stages {
		t.Run(string(tc.stage), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cfg := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
			cfg.Iterations = 2
			cfg.Progress = cancelAt(cancel, tc.stage, tc.it)
			eng := NewEngine(cfg, Models{})
			eng.WriteBack = false

			kbBefore := w.KB.NumInstances()
			out, stats, err := eng.Ingest(ctx, tables)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Ingest after cancel at %s/it%d: err = %v, want context.Canceled", tc.stage, tc.it, err)
			}
			if out != nil || stats != (IngestStats{}) {
				t.Errorf("cancelled Ingest leaked output: out=%v stats=%+v", out, stats)
			}
			// Nothing published, nothing in the KB.
			if got := eng.Epoch(); got != 0 {
				t.Errorf("Epoch after cancelled ingest = %d, want 0", got)
			}
			if eng.Last() != nil {
				t.Error("Last() non-nil after cancelled ingest")
			}
			if h := eng.History(); len(h) != 0 {
				t.Errorf("History after cancelled ingest = %v", h)
			}
			if got := w.KB.NumInstances(); got != kbBefore {
				t.Errorf("KB grew during cancelled ingest: %d -> %d", kbBefore, got)
			}

			// The engine is resumable: retrying the identical batch on the
			// same engine reproduces the uncancelled run exactly.
			eng.Cfg.Progress = nil
			out, stats, err = eng.Ingest(context.Background(), tables)
			if err != nil {
				t.Fatalf("retry after cancel: %v", err)
			}
			if stats != refStats {
				t.Errorf("retry stats = %+v, want %+v", stats, refStats)
			}
			outputsEqual(t, refOut, out)
		})
	}
}

// TestIngestCancelledBeforeStart: an already-cancelled context returns
// immediately without touching anything.
func TestIngestCancelledBeforeStart(t *testing.T) {
	w, corpus := fixture()
	tables := classify(w.KB, corpus)[kb.ClassGFPlayer]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := NewEngine(DefaultConfig(w.KB, corpus, kb.ClassGFPlayer), Models{})
	eng.WriteBack = false
	if _, _, err := eng.Ingest(ctx, tables); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if eng.Epoch() != 0 || eng.Last() != nil {
		t.Error("pre-cancelled ingest published state")
	}
}

// TestTrainCancelled: Train honors cancellation and returns empty models.
func TestTrainCancelled(t *testing.T) {
	w, corpus := fixture()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
	g := gold.FromWorld(w, corpus, kb.ClassGFPlayer, 40)
	all := make([]int, len(g.Clusters))
	for i := range all {
		all[i] = i
	}
	models, err := Train(ctx, cfg, g, all)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Train err = %v, want context.Canceled", err)
	}
	if models != (Models{}) {
		t.Error("cancelled Train returned partial models")
	}
}

// TestClassifyTablesCancelled: the classify fan-out honors cancellation.
func TestClassifyTablesCancelled(t *testing.T) {
	w, corpus := fixture()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ClassifyTables(ctx, w.KB, corpus, 0.3, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestIngestProgressEvents: the progress callback sees every stage of
// every iteration, in order, and write-back once per epoch.
func TestIngestProgressEvents(t *testing.T) {
	w, corpus := fixture()
	tables := classify(w.KB, corpus)[kb.ClassGFPlayer]
	cfg := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
	cfg.Iterations = 2
	var got []Event
	cfg.Progress = func(ev Event) { got = append(got, ev) }
	eng := NewEngine(cfg, Models{})
	eng.WriteBack = false
	if _, _, err := eng.Ingest(context.Background(), tables); err != nil {
		t.Fatal(err)
	}
	want := []struct {
		stage Stage
		it    int
	}{
		{StageMatch, 1}, {StageBuild, 1}, {StageCluster, 1}, {StageFuse, 1}, {StageDetect, 1},
		{StageMatch, 2}, {StageBuild, 2}, {StageCluster, 2}, {StageFuse, 2}, {StageDetect, 2},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Stage != w.stage || got[i].Iteration != w.it || got[i].Epoch != 1 {
			t.Errorf("event %d = %+v, want stage %s it %d epoch 1", i, got[i], w.stage, w.it)
		}
		if got[i].Class != kb.ClassGFPlayer {
			t.Errorf("event %d class = %q", i, got[i].Class)
		}
	}
}
