// Package core implements the paper's primary contribution: the complete
// LTEE pipeline that, given a knowledge base and a corpus of web tables,
// constructs descriptions of formerly unknown long-tail entities. The
// pipeline (Figure 1) runs schema matching, row clustering, entity
// creation, and new detection, iterating twice: the second iteration uses
// the row clusters and entity-to-instance correspondences of the first run
// to refine the schema mapping with the duplicate-based matchers.
//
// Two entry points share the implementation: Pipeline runs one-shot
// batches (the paper's setting), and Engine ingests table batches
// incrementally, writing newly discovered entities back into the KB after
// each epoch so later batches match against them.
package core

import (
	"context"
	"sort"

	"repro/internal/agg"
	"repro/internal/cluster"
	"repro/internal/fusion"
	"repro/internal/kb"
	"repro/internal/match"
	"repro/internal/newdet"
	"repro/internal/par"
	"repro/internal/webtable"
)

// Config configures a pipeline run for one class.
type Config struct {
	KB     *kb.KB
	Corpus *webtable.Corpus
	Class  kb.ClassID
	// Iterations is the number of pipeline iterations (default 2, as the
	// paper found a third iteration adds nothing).
	Iterations int
	// Scoring is the fusion value-scoring method (default Voting).
	Scoring fusion.ScoringMethod
	// ClusterOpts configures the clustering algorithms.
	ClusterOpts cluster.Options
	// MinClassRowFrac is the minimum fraction of rows with a KB candidate
	// for a table to be matched to a class (default 0.3).
	MinClassRowFrac float64
	// Dedup enables the post-clustering entity deduplication extension
	// (§5 lessons learned): near-identical entities whose facts agree are
	// merged before new detection, lowering the entity-to-instance
	// matching ratio for homonym-heavy classes.
	Dedup bool
	// DedupConfig tunes the deduplication when Dedup is set.
	DedupConfig fusion.DedupConfig
	// Seed drives all learned components.
	Seed int64
	// Workers bounds the worker pool of the per-table schema matching and
	// per-entity new detection fan-outs (0 = GOMAXPROCS, 1 = serial). The
	// parallel and serial paths produce identical output.
	Workers int
	// Progress, when non-nil, receives an Event at the start of every
	// pipeline stage (see Event for the callback contract). Progress never
	// affects the pipeline output.
	Progress func(Event)
}

// DefaultConfig returns the standard two-iteration configuration.
func DefaultConfig(k *kb.KB, corpus *webtable.Corpus, class kb.ClassID) Config {
	return Config{
		KB: k, Corpus: corpus, Class: class,
		Iterations:      2,
		Scoring:         fusion.Voting,
		ClusterOpts:     cluster.NewOptions(),
		MinClassRowFrac: 0.3,
		Seed:            1,
	}
}

// Models bundles the learned components of the pipeline.
type Models struct {
	// AttrFirst is the attribute-to-property model of the first iteration
	// (KB-Overlap and KB-Label only).
	AttrFirst *match.Model
	// AttrSecond is the refined model using all five matchers.
	AttrSecond *match.Model
	// ClusterScorer aggregates the row similarity metrics.
	ClusterScorer *cluster.Scorer
	// ClusterModel is the combined aggregator behind ClusterScorer (for
	// importance reporting).
	ClusterModel *agg.Combined
	// Detector is the learned new-detection classifier.
	Detector *newdet.Detector
	// DetectorModel is the combined aggregator behind Detector.
	DetectorModel *agg.Combined
}

// Output is the result of a pipeline run on one class.
type Output struct {
	Class kb.ClassID
	// TableIDs are the tables processed.
	TableIDs []int
	// Mapping is the final attribute-to-property mapping per table.
	Mapping map[int]map[int]kb.PropertyID
	// MatchScores holds the aggregated matching score per mapped column.
	MatchScores map[fusion.ColKey]float64
	// Rows are the prepared rows that were clustered.
	Rows []*cluster.Row
	// Clustering is the final row clustering.
	Clustering *cluster.Clustering
	// Entities are the created entities, parallel to Detections.
	Entities []*fusion.Entity
	// Detections classify each entity as new or existing.
	Detections []newdet.Result
	// RowInstance maps rows of matched entities to their KB instances.
	RowInstance map[webtable.RowRef]kb.InstanceID
}

// NewEntities returns the entities classified as new.
func (o *Output) NewEntities() []*fusion.Entity {
	var out []*fusion.Entity
	for i, e := range o.Entities {
		if o.Detections[i].IsNew {
			out = append(out, e)
		}
	}
	return out
}

// ExistingEntities returns the entities matched to existing instances,
// paired with their instances.
func (o *Output) ExistingEntities() ([]*fusion.Entity, []kb.InstanceID) {
	var es []*fusion.Entity
	var ids []kb.InstanceID
	for i, e := range o.Entities {
		if o.Detections[i].Matched {
			es = append(es, e)
			ids = append(ids, o.Detections[i].Instance)
		}
	}
	return es, ids
}

// Pipeline executes the LTEE process for one class as a one-shot batch: a
// thin wrapper over a single-use Engine with write-back disabled, so a Run
// leaves the knowledge base untouched.
type Pipeline struct {
	Cfg    Config
	Models Models
}

// New assembles a pipeline.
func New(cfg Config, models Models) *Pipeline {
	return &Pipeline{Cfg: normalizeConfig(cfg), Models: models}
}

// ClassifyTables runs data-type detection, label-attribute detection and
// table-to-class matching over the whole corpus and returns the table IDs
// matched to each class. Tables are matched concurrently on a pool of at
// most workers goroutines (0 = GOMAXPROCS, 1 = serial) — each worker owns
// its table, so the in-place detection annotations are race-free — and
// reduced in corpus order, making the output identical at every worker
// count. Cancelling ctx stops the fan-out between tables and returns the
// context's error.
func ClassifyTables(ctx context.Context, k *kb.KB, corpus *webtable.Corpus, minRowFrac float64, workers int) (map[kb.ClassID][]int, error) {
	if minRowFrac <= 0 {
		minRowFrac = 0.3
	}
	mctx := match.NewContext(k, corpus)
	classes, err := par.MapCtx(ctx, workers, corpus.Tables, func(_ int, t *webtable.Table) kb.ClassID {
		match.EnsureDetected(t)
		return match.MatchTableClass(mctx, t, minRowFrac).Class
	})
	if err != nil {
		return nil, err
	}
	out := make(map[kb.ClassID][]int)
	for i, t := range corpus.Tables {
		if class := classes[i]; class != "" {
			out[class] = append(out[class], t.ID)
		}
	}
	return out, nil
}

// Run executes the configured number of pipeline iterations over the given
// tables (all already matched to the pipeline's class) and returns the
// final output. Run delegates to a fresh Engine ingesting everything as
// one batch; the KB is not modified.
//
// Cancelling ctx makes Run return the context's error at the next
// checkpoint (see Engine.Ingest); the one-shot engine is discarded, so a
// cancelled Run has no effect at all.
func (p *Pipeline) Run(ctx context.Context, tableIDs []int) (*Output, error) {
	e := NewEngine(p.Cfg, p.Models)
	e.WriteBack = false
	out, _, err := e.Ingest(ctx, tableIDs)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sortedTableIDs returns a deduplicated ascending copy of the table IDs:
// output assembly iterates tables in this order, and the parallel matching
// fan-out relies on distinct IDs so no two workers touch the same table.
func sortedTableIDs(tableIDs []int) []int {
	ids := make([]int, len(tableIDs))
	copy(ids, tableIDs)
	sort.Ints(ids)
	dedup := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			dedup = append(dedup, id)
		}
	}
	return dedup
}

// defaultScorer is the unlearned fallback: uniform weighted average over
// all six metrics with threshold 0.55.
func defaultScorer() *cluster.Scorer {
	metrics := cluster.MetricSet()
	w := make([]float64, len(metrics))
	for i := range w {
		w[i] = 1 / float64(len(w))
	}
	return &cluster.Scorer{
		Metrics: metrics,
		Agg:     &agg.WeightedAverage{Weights: w, Threshold: 0.55},
	}
}

// defaultDetector is the unlearned fallback detector.
func defaultDetector(k *kb.KB) *newdet.Detector {
	metrics := newdet.MetricSet()
	w := make([]float64, len(metrics))
	for i := range w {
		w[i] = 1 / float64(len(w))
	}
	return newdet.NewDetector(k, &agg.WeightedAverage{Weights: w, Threshold: 0.5})
}
