package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/gold"
	"repro/internal/kb"
	"repro/internal/webtable"
	"repro/internal/world"
)

var (
	fixtureOnce sync.Once
	fw          *world.World
	fc          *webtable.Corpus
)

func fixture() (*world.World, *webtable.Corpus) {
	fixtureOnce.Do(func() {
		fw = world.Generate(world.DefaultConfig(0.2))
		fc = webtable.Synthesize(fw, webtable.DefaultSynthConfig(0.12))
	})
	return fw, fc
}

// classify is the test shorthand for ClassifyTables with the default pool
// and no cancellation (the error path cannot fire under Background).
func classify(k *kb.KB, corpus *webtable.Corpus) map[kb.ClassID][]int {
	byClass, _ := ClassifyTables(context.Background(), k, corpus, 0.3, 0)
	return byClass
}

func TestClassifyTables(t *testing.T) {
	w, corpus := fixture()
	byClass := classify(w.KB, corpus)
	for _, class := range kb.EvalClasses() {
		if len(byClass[class]) == 0 {
			t.Errorf("no tables classified as %s", class)
		}
	}
	// Precision of the classification against provenance.
	correct, total := 0, 0
	for class, tids := range byClass {
		for _, tid := range tids {
			truth := corpus.Table(tid).Truth
			if truth == nil {
				continue
			}
			total++
			if truth.Class == class {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no classified tables with provenance")
	}
	if acc := float64(correct) / float64(total); acc < 0.75 {
		t.Errorf("table-to-class accuracy = %.2f, want >= 0.75", acc)
	}
}

func TestPipelineUnlearnedRuns(t *testing.T) {
	w, corpus := fixture()
	byClass := classify(w.KB, corpus)
	cfg := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
	cfg.Iterations = 1
	p := New(cfg, Models{})
	out, _ := p.Run(context.Background(), byClass[kb.ClassGFPlayer])
	if out == nil || len(out.Entities) == 0 {
		t.Fatal("pipeline produced no entities")
	}
	if len(out.Detections) != len(out.Entities) {
		t.Fatal("detections not parallel to entities")
	}
	if out.Clustering.NumClusters() != len(out.Entities) {
		t.Errorf("clusters %d != entities %d", out.Clustering.NumClusters(), len(out.Entities))
	}
	if len(out.NewEntities()) == 0 {
		t.Error("expected some new entities")
	}
	es, ids := out.ExistingEntities()
	if len(es) != len(ids) {
		t.Error("existing entities not parallel to instances")
	}
}

func TestTrainAndRunEndToEnd(t *testing.T) {
	w, corpus := fixture()
	g := gold.FromWorld(w, corpus, kb.ClassGFPlayer, 40)
	cfg := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
	all := make([]int, len(g.Clusters))
	for i := range all {
		all[i] = i
	}
	models, _ := Train(context.Background(), cfg, g, all)
	if models.AttrFirst == nil || models.AttrSecond == nil {
		t.Fatal("attribute models not learned")
	}
	if models.ClusterScorer == nil || models.Detector == nil {
		t.Fatal("scorer/detector not learned")
	}

	p := New(cfg, models)
	out, _ := p.Run(context.Background(), g.TableIDs)
	if len(out.Entities) == 0 {
		t.Fatal("no entities")
	}

	// Clustering quality on training data should be solid.
	goldRows := make([][]webtable.RowRef, len(g.Clusters))
	for i, c := range g.Clusters {
		goldRows[i] = c.Rows
	}
	var prodRows [][]webtable.RowRef
	for _, members := range out.Clustering.Clusters {
		var refs []webtable.RowRef
		for _, r := range members {
			refs = append(refs, r.Ref)
		}
		prodRows = append(prodRows, refs)
	}
	cs := eval.EvaluateClustering(goldRows, prodRows)
	if cs.F1 < 0.5 {
		t.Errorf("clustering F1 on training data = %.3f, want >= 0.5", cs.F1)
	}

	// New instances found should be meaningfully better than chance.
	var produced []eval.NewEntityResult
	for i, e := range out.Entities {
		var refs []webtable.RowRef
		for _, r := range e.Rows {
			refs = append(refs, r.Ref)
		}
		produced = append(produced, eval.NewEntityResult{Rows: refs, Result: out.Detections[i]})
	}
	prf := eval.EvaluateNewInstancesFound(g, produced)
	if prf.F1 < 0.4 {
		t.Errorf("new instances found F1 = %.3f, want >= 0.4", prf.F1)
	}
}

func TestSecondIterationImprovesMappingRecall(t *testing.T) {
	w, corpus := fixture()
	g := gold.FromWorld(w, corpus, kb.ClassGFPlayer, 40)
	cfg := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
	all := make([]int, len(g.Clusters))
	for i := range all {
		all[i] = i
	}
	models, _ := Train(context.Background(), cfg, g, all)

	run := func(iters int) int {
		cfg2 := cfg
		cfg2.Iterations = iters
		out, _ := New(cfg2, models).Run(context.Background(), g.TableIDs)
		mapped := 0
		for _, m := range out.Mapping {
			mapped += len(m)
		}
		return mapped
	}
	one, two := run(1), run(2)
	// The second iteration adds duplicate-based evidence, which mostly
	// adds correspondences (cryptically-headed columns) but whose learned
	// thresholds can also prune a few spurious ones; allow 10% slack.
	if float64(two) < 0.9*float64(one) {
		t.Errorf("second iteration mapped far fewer columns: %d vs %d", two, one)
	}
}

func TestDedupReducesEntityCount(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Song runs; skipped in -short")
	}
	w, corpus := fixture()
	byClass := classify(w.KB, corpus)
	base := DefaultConfig(w.KB, corpus, kb.ClassSong)
	base.Iterations = 1
	plain, _ := New(base, Models{}).Run(context.Background(), byClass[kb.ClassSong])

	deduped := base
	deduped.Dedup = true
	withDedup, _ := New(deduped, Models{}).Run(context.Background(), byClass[kb.ClassSong])

	if len(withDedup.Entities) > len(plain.Entities) {
		t.Errorf("dedup increased entities: %d > %d",
			len(withDedup.Entities), len(plain.Entities))
	}
	if len(withDedup.Entities) == 0 {
		t.Fatal("dedup removed everything")
	}
	// Detections stay parallel after dedup.
	if len(withDedup.Detections) != len(withDedup.Entities) {
		t.Error("detections not parallel after dedup")
	}
}
