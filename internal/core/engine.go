package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/dtype"
	"repro/internal/fusion"
	"repro/internal/kb"
	"repro/internal/match"
	"repro/internal/newdet"
	"repro/internal/par"
	"repro/internal/strsim"
	"repro/internal/webtable"
)

// Engine is the long-lived incremental ingestion engine for one class: it
// accepts table batches over time via Ingest and maintains persistent state
// between batches — the learned models, the attribute mapping and match
// scores of every ingested table, the prepared rows, the grown row
// clustering (with its block index), and the set of instances written back
// to the KB.
//
// After each batch, entities classified as new are written back into the
// knowledge base as first-class instances carrying kb.ProvenanceIngest and
// the ingest epoch, so the next batch's candidate retrieval, property
// profiles and new detection see them: rows describing an entity
// discovered earlier match it instead of re-creating it. Ingesting the
// full corpus in a single batch reproduces Pipeline.Run bit-for-bit
// (Pipeline is a thin wrapper over a single-use Engine).
//
// Ingest must run on a single writer goroutine at a time (the serve layer
// funnels all batches through one ingest loop), but the published-state
// accessors — Epoch, TableIDs, Last, History — are safe to call from
// concurrent readers while an Ingest is in flight: they take a read lock
// and return copies, so an HTTP handler can never observe a later epoch's
// in-place mutation of retained state. Fork provides an independent copy
// for speculative or parallel ingestion experiments.
type Engine struct {
	Cfg    Config
	Models Models
	// WriteBack controls whether entities detected as new are added to the
	// KB after each batch. It defaults to true for engines built with
	// NewEngine; Pipeline.Run disables it to keep the one-shot pipeline
	// side-effect free.
	WriteBack bool

	scorer   *cluster.Scorer
	detector *newdet.Detector

	// mu guards the published state read by concurrent accessors (epoch,
	// tableIDs, last, history) and the cross-epoch in-place refresh of
	// retained rows' PHI vectors. Ingest itself stays single-writer.
	mu sync.RWMutex
	// epoch counts *completed* epochs; it is published together with last
	// and history in one critical section at the end of Ingest, so a
	// concurrent reader never sees the new epoch number paired with the
	// previous epoch's output. cur is the in-flight epoch (writer-only).
	epoch    int
	cur      int
	history  []IngestStats
	ingested map[int]bool
	tableIDs []int
	mapping  map[int]map[int]kb.PropertyID
	scores   map[fusion.ColKey]float64
	rows     []*cluster.Row
	clusters *cluster.Incremental
	// blocks persists the blocking label index across epochs: a batch's
	// rows block against every label seen so far, so a fuzzy variant of an
	// earlier label still reaches its retained cluster.
	blocks *cluster.BlockIndex
	// phi persists the PHI statistics across epochs; after each batch
	// extends them, the retained rows' vectors are refreshed so every
	// cross-epoch pair score compares vectors from one model.
	phi  *cluster.PhiModel
	last *Output
	// written maps an entity signature (class + normalized primary label)
	// to the instance written back for it, preventing duplicate write-backs
	// when a cluster persists across epochs without being re-matched.
	written map[string]kb.InstanceID
	// entMemo and detMemo cache entity creation and detection results per
	// cluster membership signature, so an epoch only pays for clusters the
	// batch actually touched — the bulk of the retained state passes
	// through unchanged, and without the memos every epoch re-fuses and
	// re-detects all of it (the dominant super-linear term at scale).
	// Entries are valid only while the KB version they were computed at
	// stands, and only for clusters made entirely of retained rows; both
	// maps are swept to the live cluster set each pass. See createEntities
	// for the exactness argument.
	entMemo map[string]entMemoEntry
	detMemo map[string]detMemoEntry
}

// entMemoEntry is one memoized entity: the canonical *Entity created for a
// cluster membership at a KB version. Entity innards (Labels, Facts, BOW,
// Implicit) are immutable once created, so hits share them and only the
// struct (ID, Rows) is copied fresh.
type entMemoEntry struct {
	kbVersion uint64
	ent       *fusion.Entity
}

// detMemoEntry is one memoized detection result. Valid while the KB
// version stands; the detector configuration (thresholds, aggregator,
// metrics) is fixed for an engine's lifetime, as with all Models.
type detMemoEntry struct {
	kbVersion uint64
	res       newdet.Result
}

// clusterMemoKey identifies a cluster by its member row refs. Result()
// sorts members by Ref, so equal membership always yields equal keys.
func clusterMemoKey(rows []*cluster.Row) string {
	var sb strings.Builder
	sb.Grow(len(rows) * 8)
	for _, r := range rows {
		sb.WriteString(strconv.Itoa(r.Ref.Table))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(r.Ref.Row))
		sb.WriteByte(';')
	}
	return sb.String()
}

// IngestStats summarizes one Ingest call for logging and monitoring.
type IngestStats struct {
	// Epoch is the 1-based ingest epoch this batch ran as.
	Epoch int
	// BatchTables is the number of not-yet-ingested tables in the batch.
	BatchTables int
	// TotalTables is the number of tables ingested so far.
	TotalTables int
	// Entities is the total number of entities after this batch.
	Entities int
	// NewEntities is how many of them are classified as new.
	NewEntities int
	// Matched is how many are matched to existing KB instances (including
	// instances written back by earlier epochs).
	Matched int
	// WrittenBack is the number of instances this epoch added to the KB.
	WrittenBack int
	// KBInstances is the KB instance count after write-back.
	KBInstances int
}

// NewEngine builds an incremental ingestion engine with write-back enabled.
func NewEngine(cfg Config, models Models) *Engine {
	cfg = normalizeConfig(cfg)
	scorer := models.ClusterScorer
	if scorer == nil {
		scorer = defaultScorer()
	}
	detector := models.Detector
	if detector == nil {
		detector = defaultDetector(cfg.KB)
	}
	return &Engine{
		Cfg:       cfg,
		Models:    models,
		WriteBack: true,
		scorer:    scorer,
		detector:  detector,
		ingested:  make(map[int]bool),
		mapping:   make(map[int]map[int]kb.PropertyID),
		scores:    make(map[fusion.ColKey]float64),
		clusters:  cluster.NewIncremental(scorer, cfg.ClusterOpts),
		blocks:    cluster.NewBlockIndex(),
		phi:       cluster.NewPhiModel(),
		written:   make(map[string]kb.InstanceID),
		entMemo:   make(map[string]entMemoEntry),
		detMemo:   make(map[string]detMemoEntry),
	}
}

// Epoch returns the number of Ingest calls completed (plus any resumed
// base epoch). Safe to call while an Ingest is in flight.
func (e *Engine) Epoch() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.epoch
}

// IngestedIDs returns the sorted IDs of every table the engine considers
// ingested, including tables restored by Resume that are not part of any
// retained output. This is the set a serving layer consults when picking
// not-yet-ingested tables. Writer-context only: call it from the same
// goroutine that runs Ingest (unlike the published-state accessors it
// reads the writer's working set).
func (e *Engine) IngestedIDs() []int {
	ids := make([]int, 0, len(e.ingested))
	for tid := range e.ingested {
		ids = append(ids, tid)
	}
	sort.Ints(ids)
	return ids
}

// TableIDs returns a copy of the IDs of all tables processed into the
// retained output since this engine started (tables restored by Resume are
// excluded; see IngestedIDs). Safe to call while an Ingest is in flight.
func (e *Engine) TableIDs() []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]int, len(e.tableIDs))
	copy(out, e.tableIDs)
	return out
}

// History returns a copy of the IngestStats of every completed epoch in
// order. Safe to call while an Ingest is in flight.
func (e *Engine) History() []IngestStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]IngestStats(nil), e.history...)
}

// Published returns one consistent snapshot of the published counters:
// completed epochs, ingested table IDs, and per-epoch history. Reading
// them through separate accessors could interleave with an epoch's
// publication and pair a new epoch count with the previous history.
func (e *Engine) Published() (epoch int, tableIDs []int, history []IngestStats) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	tableIDs = make([]int, len(e.tableIDs))
	copy(tableIDs, e.tableIDs)
	return e.epoch, tableIDs, append([]IngestStats(nil), e.history...)
}

// Last returns the output of the most recent Ingest (nil before the
// first), as a defensive copy that is safe to retain while later epochs
// run: the engine refreshes retained rows' PHI vectors in place each
// batch, so handing out the internal Output would let a concurrent reader
// observe a later epoch's mutation. Row structs are value-copied and the
// entities re-pointed at the copies; the maps inside each Row (BOW,
// Values, Implicit) are immutable after row building and stay shared.
func (e *Engine) Last() *Output {
	out, _ := e.LastWithEpoch()
	return out
}

// LastEntities returns copies of the most recent epoch's entities (with
// Rows omitted — member rows alias engine-internal state that later
// epochs refresh in place), their detections, and the completed-epoch
// count, all from one consistent read. Entity maps (Facts, BOW, Implicit)
// are rebuilt fresh each epoch and never mutated afterwards, so sharing
// them is safe; this is the cheap accessor for read paths that only
// render entities and must not pay Last()'s full deep copy.
func (e *Engine) LastEntities() ([]*fusion.Entity, []newdet.Result, int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.last == nil {
		return nil, nil, e.epoch
	}
	ents := make([]*fusion.Entity, len(e.last.Entities))
	for i, ent := range e.last.Entities {
		ec := *ent
		ec.Rows = nil
		ents[i] = &ec
	}
	return ents, append([]newdet.Result(nil), e.last.Detections...), e.epoch
}

// LastWithEpoch returns Last() plus the completed-epoch count from the
// same consistent read, so a caller can label the output with the epoch
// that actually produced it.
func (e *Engine) LastWithEpoch() (*Output, int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.last == nil {
		return nil, e.epoch
	}
	return snapshotOutput(e.last), e.epoch
}

// snapshotOutput deep-copies an Output far enough that no later Ingest can
// mutate anything reachable from the copy. Must be called with e.mu held
// (read or write): it reads Row.TableVec fields that Ingest refreshes under
// the write lock.
func snapshotOutput(o *Output) *Output {
	cp := &Output{
		Class:       o.Class,
		TableIDs:    append([]int(nil), o.TableIDs...),
		Mapping:     make(map[int]map[int]kb.PropertyID, len(o.Mapping)),
		MatchScores: make(map[fusion.ColKey]float64, len(o.MatchScores)),
		RowInstance: make(map[webtable.RowRef]kb.InstanceID, len(o.RowInstance)),
		Detections:  append([]newdet.Result(nil), o.Detections...),
	}
	// Inner mapping maps are immutable once an epoch merges them; sharing
	// them is safe, only the outer map is rebuilt per epoch.
	for tid, m := range o.Mapping {
		cp.Mapping[tid] = m
	}
	for k, v := range o.MatchScores {
		cp.MatchScores[k] = v
	}
	for k, v := range o.RowInstance {
		cp.RowInstance[k] = v
	}
	rowCopy := make(map[*cluster.Row]*cluster.Row, len(o.Rows))
	copyRow := func(r *cluster.Row) *cluster.Row {
		if rc, ok := rowCopy[r]; ok {
			return rc
		}
		rc := *r
		rowCopy[r] = &rc
		return &rc
	}
	cp.Rows = make([]*cluster.Row, len(o.Rows))
	for i, r := range o.Rows {
		cp.Rows[i] = copyRow(r)
	}
	if o.Clustering != nil {
		cl := &cluster.Clustering{
			Assign:   make(map[webtable.RowRef]int, len(o.Clustering.Assign)),
			Clusters: make([][]*cluster.Row, len(o.Clustering.Clusters)),
		}
		for ref, c := range o.Clustering.Assign {
			cl.Assign[ref] = c
		}
		for ci, rows := range o.Clustering.Clusters {
			members := make([]*cluster.Row, len(rows))
			for i, r := range rows {
				members[i] = copyRow(r)
			}
			cl.Clusters[ci] = members
		}
		cp.Clustering = cl
	}
	cp.Entities = make([]*fusion.Entity, len(o.Entities))
	for i, ent := range o.Entities {
		ec := *ent
		ec.Rows = make([]*cluster.Row, len(ent.Rows))
		for j, r := range ent.Rows {
			ec.Rows[j] = copyRow(r)
		}
		cp.Entities[i] = &ec
	}
	return cp
}

// Resume prepares a freshly constructed engine to continue from a KB
// snapshot: it seeds the epoch counter (so later write-backs carry
// monotonically increasing epochs), marks tableIDs as already ingested
// (their entities live on as KB write-backs; the tables themselves are
// not re-processed), and rebuilds the write-back signature set from the
// instances already in the KB carrying kb.ProvenanceIngest, so an entity
// discovered before the snapshot is not written back again after a
// restart. It must be called before the first Ingest.
func (e *Engine) Resume(epoch int, tableIDs []int) error {
	if epoch < 0 {
		return fmt.Errorf("core: Resume epoch %d is negative", epoch)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.epoch != 0 || len(e.ingested) > 0 {
		return fmt.Errorf("core: Resume on an engine that already ingested (epoch %d)", e.epoch)
	}
	e.epoch = epoch
	for _, tid := range tableIDs {
		// Tables appended after startup (inline raw ingests) are not part
		// of the regenerated corpus; marking their IDs ingested would make
		// the engine silently drop whichever future table is assigned the
		// same ID, so only IDs backed by a corpus table are restored.
		if e.Cfg.Corpus.Table(tid) == nil {
			continue
		}
		e.ingested[tid] = true
	}
	for _, iid := range e.Cfg.KB.InstancesOf(e.Cfg.Class) {
		prov, _ := e.Cfg.KB.InstanceProvenance(iid)
		if prov != kb.ProvenanceIngest {
			continue
		}
		sig := instanceSignature(e.Cfg.Class, e.Cfg.KB.InstanceLabel(iid))
		if _, done := e.written[sig]; !done {
			e.written[sig] = iid
		}
	}
	return nil
}

// Fork returns an independent copy of the engine: Ingest on the fork never
// affects the original's state. The knowledge base, corpus, models, caches
// and retained Row objects are shared — fork with WriteBack disabled
// unless the forked ingest should really grow the shared KB, and do not
// run Ingest on a fork concurrently with Ingest OR the accessors of the
// original (and vice versa): the shared Row objects are guarded by each
// engine's own lock, so the concurrent-accessor guarantee holds only
// within one engine, not across the fork boundary.
func (e *Engine) Fork() *Engine {
	e.mu.RLock()
	f := &Engine{
		Cfg:       e.Cfg,
		Models:    e.Models,
		WriteBack: e.WriteBack,
		scorer:    e.scorer,
		detector:  e.detector,
		epoch:     e.epoch,
		cur:       e.cur,
		history:   append([]IngestStats(nil), e.history...),
		last:      e.last,
	}
	e.mu.RUnlock()
	f.ingested = make(map[int]bool, len(e.ingested))
	for tid := range e.ingested {
		f.ingested[tid] = true
	}
	f.tableIDs = append([]int(nil), e.tableIDs...)
	// Per-table maps and score entries are immutable once merged, so a
	// shallow copy of the outer maps suffices.
	f.mapping = make(map[int]map[int]kb.PropertyID, len(e.mapping))
	for tid, m := range e.mapping {
		f.mapping[tid] = m
	}
	f.scores = make(map[fusion.ColKey]float64, len(e.scores))
	for k, v := range e.scores {
		f.scores[k] = v
	}
	f.rows = append([]*cluster.Row(nil), e.rows...)
	f.clusters = e.clusters.Clone()
	f.blocks = e.blocks.Clone()
	f.phi = e.phi.Clone()
	f.written = make(map[string]kb.InstanceID, len(e.written))
	for sig, id := range e.written {
		f.written[sig] = id
	}
	// Memo entries are immutable once stored; copying the outer maps keeps
	// the fork's sweeps from evicting the original's entries.
	f.entMemo = make(map[string]entMemoEntry, len(e.entMemo))
	for k, v := range e.entMemo {
		f.entMemo[k] = v
	}
	f.detMemo = make(map[string]detMemoEntry, len(e.detMemo))
	for k, v := range e.detMemo {
		f.detMemo[k] = v
	}
	return f
}

// Ingest processes one batch of tables (all matched to the engine's class):
// it runs the configured number of pipeline iterations scoped to the
// batch's not-yet-ingested tables, clusters their rows against the
// retained state, re-creates and re-detects entities over everything
// ingested so far, persists the grown state, and (unless WriteBack is
// off) writes entities classified as new back into the KB.
//
// The returned Output always covers all tables ingested so far, so a
// single full-corpus batch is exactly a Pipeline.Run.
//
// Cancelling ctx makes Ingest return the context's error at the next
// cooperative checkpoint — checkpoints sit at every stage boundary, inside
// the per-table and per-entity fan-outs, and between clustering batches
// and refinement rounds. A cancelled epoch commits nothing: the published
// state (epoch counter, history, retained output) is untouched and no
// entity reaches the KB, so re-issuing the same batch later runs it as a
// fresh epoch. The persistent blocking and PHI statistics may already
// include the abandoned batch's tables; both are idempotent under
// re-addition, so the retry reproduces what an uncancelled run would have
// produced.
func (e *Engine) Ingest(ctx context.Context, batch []int) (*Output, IngestStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, IngestStats{}, err
	}
	newIDs := e.newTableIDs(batch)
	e.cur = e.epoch + 1

	// A fresh matching context per epoch: the KB may have grown since the
	// previous batch (write-back), and the context's profiles key their
	// validity on the KB version.
	mc := match.NewContext(e.Cfg.KB, e.Cfg.Corpus)
	mc.Class = e.Cfg.Class

	var out *Output
	var grown *cluster.Incremental
	for it := 0; it < e.Cfg.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, IngestStats{}, err
		}
		model := e.Models.AttrFirst
		matchers := match.FirstIterationMatchers()
		mctx := mc
		if it > 0 && out != nil {
			model = e.Models.AttrSecond
			matchers = match.AllMatchers()
			prelim := make(map[match.ColRef]kb.PropertyID)
			for tid, m := range out.Mapping {
				for col, pid := range m {
					prelim[match.ColRef{Table: tid, Col: col}] = pid
				}
			}
			rowCluster := make(map[webtable.RowRef]int, len(out.Clustering.Assign))
			for ref, c := range out.Clustering.Assign {
				rowCluster[ref] = c
			}
			mctx = mc.WithIterationOutput(out.RowInstance, rowCluster, prelim)
		}
		if model == nil {
			model = match.DefaultModel(e.Cfg.Class, matchers)
		}
		var err error
		out, grown, err = e.iterate(ctx, it+1, mctx, model, matchers, newIDs)
		if err != nil {
			return nil, IngestStats{}, err
		}
	}

	// Last checkpoint before the commit point: past here the epoch is
	// published atomically, so cancellation no longer applies.
	if err := ctx.Err(); err != nil {
		return nil, IngestStats{}, err
	}

	// Persist the grown state of the final iteration. The published fields
	// (tableIDs, last, history) are swapped under the write lock so the
	// concurrent accessors never see a half-updated epoch.
	e.clusters = grown
	e.rows = out.Rows
	e.mapping = out.Mapping
	e.scores = out.MatchScores
	for _, tid := range newIDs {
		e.ingested[tid] = true
	}

	written := 0
	if e.WriteBack {
		e.Cfg.emit(Event{Epoch: e.cur, Stage: StageWriteBack, Count: len(out.NewEntities())})
		written = e.writeBack(out)
	}
	stats := IngestStats{
		Epoch:       e.cur,
		BatchTables: len(newIDs),
		TotalTables: len(out.TableIDs),
		Entities:    len(out.Entities),
		NewEntities: len(out.NewEntities()),
		WrittenBack: written,
		KBInstances: e.Cfg.KB.NumInstances(),
	}
	for _, d := range out.Detections {
		if d.Matched {
			stats.Matched++
		}
	}
	e.mu.Lock()
	e.epoch = e.cur
	e.tableIDs = out.TableIDs
	e.last = out
	e.history = append(e.history, stats)
	e.mu.Unlock()
	return out, stats, nil
}

// iterate performs one pass of the epoch: schema matching over the new
// tables, row building for them, incremental clustering against a clone of
// the retained state, then entity creation and new detection over the full
// ingested set. With empty retained state and newIDs covering the whole
// corpus this is exactly one pre-refactor pipeline iteration.
//
// it is the 1-based iteration number, used only for progress events.
// Cancellation mid-iterate abandons the pass before anything is committed;
// see Ingest for the consistency argument.
func (e *Engine) iterate(ctx context.Context, it int, mctx *match.Context, model *match.Model, matchers []match.Matcher, newIDs []int) (*Output, *cluster.Incremental, error) {
	allIDs := sortedTableIDs(append(append([]int(nil), e.tableIDs...), newIDs...))
	out := &Output{
		Class:       e.Cfg.Class,
		TableIDs:    allIDs,
		Mapping:     make(map[int]map[int]kb.PropertyID, len(e.mapping)+len(newIDs)),
		MatchScores: make(map[fusion.ColKey]float64, len(e.scores)),
		RowInstance: make(map[webtable.RowRef]kb.InstanceID),
	}
	// Retained tables keep the mapping and scores of their own final
	// iteration; only the batch's tables are (re-)matched.
	for tid, m := range e.mapping {
		out.Mapping[tid] = m
	}
	for key, s := range e.scores {
		out.MatchScores[key] = s
	}

	// Schema matching: attribute-to-property correspondences per new table,
	// fanned out over the worker pool. Every worker writes only its own
	// slot; the reduction below runs serially in table order, so the
	// parallel path emits exactly what the serial one would.
	e.Cfg.emit(Event{Epoch: e.cur, Iteration: it, Stage: StageMatch, Count: len(newIDs)})
	scoredByTable, err := par.MapCtx(ctx, e.Cfg.Workers, newIDs, func(_, tid int) map[int]match.Correspondence {
		t := e.Cfg.Corpus.Table(tid)
		if t == nil {
			return nil
		}
		match.EnsureDetected(t)
		return match.MatchAttributesScored(mctx, model, matchers, t)
	})
	if err != nil {
		return nil, nil, err
	}
	for i, tid := range newIDs {
		if e.Cfg.Corpus.Table(tid) == nil {
			continue
		}
		scored := scoredByTable[i]
		m := make(map[int]kb.PropertyID, len(scored))
		for col, corr := range scored {
			m[col] = corr.Property
			out.MatchScores[fusion.ColKey{Table: tid, Col: col}] = corr.Score
		}
		out.Mapping[tid] = m
	}

	// Row building for the new tables; retained rows are reused as built
	// (their tables' mapping did not change). Blocking and PHI statistics
	// persist across epochs: new rows block against every label seen so
	// far, and after the batch extends the PHI model the retained rows'
	// vectors are refreshed so all pair scores compare within one model.
	e.Cfg.emit(Event{Epoch: e.cur, Iteration: it, Stage: StageBuild, Count: len(newIDs)})
	builder := &cluster.Builder{
		KB: e.Cfg.KB, Corpus: e.Cfg.Corpus, Class: e.Cfg.Class,
		Mapping: out.Mapping,
		Blocks:  e.blocks,
		Phi:     e.phi,
	}
	newRows := builder.Build(newIDs)
	// The refresh rewrites retained rows' TableVec in place; concurrent
	// Last() snapshots read those fields under the read lock, so the
	// mutation takes the write lock.
	e.mu.Lock()
	e.phi.Refresh(e.rows)
	e.mu.Unlock()
	allRows := make([]*cluster.Row, 0, len(e.rows)+len(newRows))
	allRows = append(allRows, e.rows...)
	allRows = append(allRows, newRows...)
	out.Rows = allRows

	// Incremental clustering: grow a clone of the retained state with the
	// batch's rows (the clone keeps the persistent baseline intact while
	// the epoch's iterations each re-cluster the batch under a refined
	// mapping).
	e.Cfg.emit(Event{Epoch: e.cur, Iteration: it, Stage: StageCluster, Count: len(newRows)})
	grown := e.clusters.Clone()
	if err := grown.Add(ctx, newRows); err != nil {
		return nil, nil, err
	}
	out.Clustering = grown.Result()

	// Entity creation over every cluster, retained and new.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	e.Cfg.emit(Event{Epoch: e.cur, Iteration: it, Stage: StageFuse, Count: len(out.Clustering.Clusters)})
	src := &fusion.Sources{
		KB: e.Cfg.KB, Corpus: e.Cfg.Corpus, Class: e.Cfg.Class,
		Mapping:     out.Mapping,
		Thresholds:  dtype.DefaultThresholds(),
		Scoring:     e.Cfg.Scoring,
		MatchScores: out.MatchScores,
	}
	// Memoization is sound only for clusters made entirely of rows retained
	// from earlier epochs: batch rows are rebuilt per iteration (possibly
	// under a refined mapping), so any cluster containing one must be
	// re-fused. Deduplicate may merge and re-fuse entities after creation,
	// so memos are disabled outright under Dedup.
	var retained map[*cluster.Row]bool
	if !e.Cfg.Dedup {
		retained = make(map[*cluster.Row]bool, len(e.rows))
		for _, r := range e.rows {
			retained[r] = true
		}
	}
	out.Entities = e.createEntities(src, out.Clustering, retained)
	if e.Cfg.Dedup {
		out.Entities = fusion.Deduplicate(src, out.Entities, e.Cfg.DedupConfig)
	}

	// New detection: memoized like entity creation; the misses classify
	// independently on the pool, and RowInstance is then assembled serially
	// in entity order.
	e.Cfg.emit(Event{Epoch: e.cur, Iteration: it, Stage: StageDetect, Count: len(out.Entities)})
	if err := e.detectEntities(ctx, out, retained); err != nil {
		return nil, nil, err
	}
	for i, ent := range out.Entities {
		if res := out.Detections[i]; res.Matched {
			for _, r := range ent.Rows {
				out.RowInstance[r.Ref] = res.Instance
			}
		}
	}
	return out, grown, nil
}

// createEntities is fusion.CreateAll with a memo over cluster membership:
// clusters whose exact membership was already fused at the current KB
// version reuse the stored entity instead of re-reading every member row.
//
// Exactness: Create derives an entity solely from its member rows (their
// Label, BOW, Implicit, Ref, corpus cells under the mapping) and the KB —
// never from the phi TableVec the in-place Refresh rewrites. Retained rows
// are immutable between epochs and their tables' mapping is frozen, so for
// an all-retained cluster the only mutable input is the KB, captured by its
// version. Entity innards are immutable once created; a hit copies the
// struct and re-stamps ID and Rows, exactly what CreateAll would produce.
//
// retained is nil when memoization is disabled (Dedup mode); then this is
// plain CreateAll.
func (e *Engine) createEntities(src *fusion.Sources, cl *cluster.Clustering, retained map[*cluster.Row]bool) []*fusion.Entity {
	if retained == nil {
		e.entMemo = make(map[string]entMemoEntry)
		return fusion.CreateAll(src, cl)
	}
	kbVer := e.Cfg.KB.Version()
	next := make(map[string]entMemoEntry, len(cl.Clusters))
	out := make([]*fusion.Entity, 0, len(cl.Clusters))
	for _, rows := range cl.Clusters {
		if len(rows) == 0 {
			continue
		}
		memoable := true
		for _, r := range rows {
			if !retained[r] {
				memoable = false
				break
			}
		}
		if !memoable {
			ent := fusion.Create(src, rows)
			ent.ID = len(out)
			out = append(out, ent)
			continue
		}
		key := clusterMemoKey(rows)
		if m, ok := e.entMemo[key]; ok && m.kbVersion == kbVer {
			ec := *m.ent
			ec.ID = len(out)
			ec.Rows = rows
			out = append(out, &ec)
			next[key] = m
			continue
		}
		ent := fusion.Create(src, rows)
		ent.ID = len(out)
		out = append(out, ent)
		next[key] = entMemoEntry{kbVersion: kbVer, ent: ent}
	}
	e.entMemo = next
	return out
}

// detectEntities fills out.Detections for out.Entities, reusing memoized
// results for entities whose cluster membership was already classified at
// the current KB version. Result is a plain value (no entity identity), the
// detector reads only the entity's immutable innards and the KB, and the
// detector's configuration is fixed for the engine's lifetime — so a
// membership+version hit is exact. Misses fan out over the worker pool and
// are written back serially.
func (e *Engine) detectEntities(ctx context.Context, out *Output, retained map[*cluster.Row]bool) error {
	out.Detections = make([]newdet.Result, len(out.Entities))
	if retained == nil {
		e.detMemo = make(map[string]detMemoEntry)
		return par.ForEachCtx(ctx, e.Cfg.Workers, len(out.Entities), func(i int) {
			out.Detections[i] = e.detector.Detect(out.Entities[i])
		})
	}
	kbVer := e.Cfg.KB.Version()
	next := make(map[string]detMemoEntry, len(out.Entities))
	keys := make([]string, len(out.Entities))
	var missIdx []int
	for i, ent := range out.Entities {
		memoable := true
		for _, r := range ent.Rows {
			if !retained[r] {
				memoable = false
				break
			}
		}
		if !memoable {
			missIdx = append(missIdx, i)
			continue
		}
		keys[i] = clusterMemoKey(ent.Rows)
		if m, ok := e.detMemo[keys[i]]; ok && m.kbVersion == kbVer {
			out.Detections[i] = m.res
			next[keys[i]] = m
			continue
		}
		missIdx = append(missIdx, i)
	}
	if err := par.ForEachCtx(ctx, e.Cfg.Workers, len(missIdx), func(j int) {
		i := missIdx[j]
		out.Detections[i] = e.detector.Detect(out.Entities[i])
	}); err != nil {
		return err
	}
	for _, i := range missIdx {
		if keys[i] != "" {
			next[keys[i]] = detMemoEntry{kbVersion: kbVer, res: out.Detections[i]}
		}
	}
	e.detMemo = next
	return nil
}

// writeBack adds every entity classified as new to the KB as a first-class
// instance with provenance and the current epoch, skipping signatures
// already written by an earlier epoch. It returns the number written.
func (e *Engine) writeBack(out *Output) int {
	n := 0
	for i, ent := range out.Entities {
		if !out.Detections[i].IsNew {
			continue
		}
		sig := entitySignature(ent)
		if _, done := e.written[sig]; done {
			continue
		}
		facts := make(map[kb.PropertyID]dtype.Value, len(ent.Facts))
		for pid, v := range ent.Facts {
			facts[pid] = v
		}
		id := e.Cfg.KB.AddInstance(&kb.Instance{
			Class:       ent.Class,
			Labels:      append([]string(nil), ent.Labels...),
			Facts:       facts,
			Provenance:  kb.ProvenanceIngest,
			IngestEpoch: e.cur,
		})
		e.written[sig] = id
		n++
	}
	return n
}

// entitySignature identifies an entity across epochs for write-back
// deduplication: its class plus its normalized primary label.
func entitySignature(ent *fusion.Entity) string {
	return instanceSignature(ent.Class, ent.Label())
}

// instanceSignature is the one signature format shared by write-back
// deduplication and Resume's restoration of the written set — if they
// ever diverged, every pre-snapshot entity would be re-written after a
// restart.
func instanceSignature(class kb.ClassID, label string) string {
	return string(class) + "\x00" + strsim.Normalize(label)
}

// newTableIDs returns the batch's table IDs that have not been ingested
// yet, sorted and deduplicated.
func (e *Engine) newTableIDs(batch []int) []int {
	fresh := make([]int, 0, len(batch))
	for _, tid := range batch {
		if !e.ingested[tid] {
			fresh = append(fresh, tid)
		}
	}
	return sortedTableIDs(fresh)
}

// normalizeConfig applies the Config defaults shared by New and NewEngine.
func normalizeConfig(cfg Config) Config {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 2
	}
	if cfg.MinClassRowFrac <= 0 {
		cfg.MinClassRowFrac = 0.3
	}
	// A single Workers knob governs the whole run: when the clustering
	// options don't set their own pool size, they inherit it, so
	// Workers=1 really is a fully serial pipeline.
	if cfg.ClusterOpts.Workers == 0 {
		cfg.ClusterOpts.Workers = cfg.Workers
	}
	return cfg
}
