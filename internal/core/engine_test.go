package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/kb"
	"repro/internal/webtable"
	"repro/internal/world"
)

// engineFixture generates a private world and corpus: engine tests grow
// the KB via write-back and must not pollute the shared test fixture.
func engineFixture(t *testing.T) (*world.World, *webtable.Corpus) {
	t.Helper()
	w := world.Generate(world.DefaultConfig(0.2))
	c := webtable.Synthesize(w, webtable.DefaultSynthConfig(0.12))
	return w, c
}

// splitBatches cuts the table IDs into n roughly equal contiguous batches.
func splitBatches(tables []int, n int) [][]int {
	out := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(tables)/n, (i+1)*len(tables)/n
		out = append(out, tables[lo:hi])
	}
	return out
}

// TestEngineSingleBatchMatchesPipeline is the refactor's equivalence
// criterion: ingesting the full corpus as one batch must produce output
// identical to Pipeline.Run in every emitted structure.
func TestEngineSingleBatchMatchesPipeline(t *testing.T) {
	w, corpus := fixture()
	byClass := classify(w.KB, corpus)
	tables := byClass[kb.ClassGFPlayer]

	cfg := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
	cfg.Iterations = 2
	want, _ := New(cfg, Models{}).Run(context.Background(), tables)

	eng := NewEngine(cfg, Models{})
	eng.WriteBack = false
	got, stats, _ := eng.Ingest(context.Background(), tables)
	outputsEqual(t, want, got)

	if stats.Epoch != 1 || stats.TotalTables != len(sortedTableIDs(tables)) {
		t.Errorf("stats = %+v", stats)
	}
	if stats.WrittenBack != 0 {
		t.Errorf("write-back disabled but %d instances written", stats.WrittenBack)
	}
	if eng.Epoch() != 1 {
		t.Errorf("Epoch = %d", eng.Epoch())
	}
}

// TestEngineMultiBatchWriteBack is the write-back criterion: after a
// two-batch ingest, every batch-1 new entity is present in the KB with
// provenance and epoch, is matchable through candidate retrieval, and
// batch 2's detection matches entities to those written-back instances.
func TestEngineMultiBatchWriteBack(t *testing.T) {
	w, corpus := engineFixture(t)
	byClass := classify(w.KB, corpus)
	tables := byClass[kb.ClassGFPlayer]
	if len(tables) < 2 {
		t.Fatal("need at least two player tables")
	}
	cfg := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
	cfg.Iterations = 1
	eng := NewEngine(cfg, Models{})

	before := w.KB.NumInstances()
	batches := splitBatches(tables, 2)
	out1, st1, _ := eng.Ingest(context.Background(), batches[0])
	if st1.WrittenBack == 0 {
		t.Fatal("batch 1 wrote nothing back")
	}
	if got := w.KB.NumInstances(); got != before+st1.WrittenBack {
		t.Fatalf("KB grew by %d, stats say %d", got-before, st1.WrittenBack)
	}
	if st1.KBInstances != before+st1.WrittenBack {
		t.Errorf("stats.KBInstances = %d, want %d", st1.KBInstances, before+st1.WrittenBack)
	}
	// Sequential IDs: the epoch-1 write-backs are exactly [before, after).
	writtenSet := make(map[kb.InstanceID]bool)
	for id := before; id < before+st1.WrittenBack; id++ {
		in := w.KB.Instance(kb.InstanceID(id))
		if in.Provenance != kb.ProvenanceIngest {
			t.Fatalf("instance %d: provenance %q", id, in.Provenance)
		}
		if in.IngestEpoch != 1 {
			t.Fatalf("instance %d: epoch %d, want 1", id, in.IngestEpoch)
		}
		if in.Class != kb.ClassGFPlayer {
			t.Fatalf("instance %d: class %s", id, in.Class)
		}
		writtenSet[kb.InstanceID(id)] = true
		// Matchable: candidate retrieval by the instance's own label must
		// find it.
		cands := w.KB.Candidates(in.Label(), kb.CandidateOpts{K: 20, Class: kb.ClassGFPlayer})
		found := false
		for _, c := range cands {
			if c == kb.InstanceID(id) {
				found = true
			}
		}
		if !found {
			t.Fatalf("written instance %d (%q) not retrievable as candidate", id, in.Label())
		}
	}
	// Every batch-1 new entity is covered by a write-back (same count, as
	// signatures within one epoch's new set are distinct or merged).
	if st1.WrittenBack > len(out1.NewEntities()) {
		t.Errorf("wrote %d > %d new entities", st1.WrittenBack, len(out1.NewEntities()))
	}

	out2, st2, _ := eng.Ingest(context.Background(), batches[1])
	if st2.Epoch != 2 || st2.TotalTables != len(sortedTableIDs(tables)) {
		t.Errorf("stats after batch 2 = %+v", st2)
	}
	// Batch 2 must match entities against the instances batch 1 wrote.
	matchedToWritten := 0
	for i := range out2.Entities {
		if d := out2.Detections[i]; d.Matched && writtenSet[d.Instance] {
			matchedToWritten++
		}
	}
	if matchedToWritten == 0 {
		t.Error("no batch-2 entity matched a batch-1 write-back")
	}
	// Write-back dedup: epoch-2 instances carry epoch 2, and no signature
	// is written twice.
	for id := before + st1.WrittenBack; id < w.KB.NumInstances(); id++ {
		in := w.KB.Instance(kb.InstanceID(id))
		if in.IngestEpoch != 2 {
			t.Errorf("instance %d: epoch %d, want 2", id, in.IngestEpoch)
		}
	}
	if len(eng.written) != st1.WrittenBack+st2.WrittenBack {
		t.Errorf("written signatures %d != %d+%d",
			len(eng.written), st1.WrittenBack, st2.WrittenBack)
	}
}

// TestEngineIncrementalConvergesToFull sanity-checks the streaming path:
// a three-batch ingest ends with all tables covered, detections parallel
// to entities, and a final output whose shape matches a one-shot run's
// (every table mapped, every row clustered).
func TestEngineIncrementalConvergesToFull(t *testing.T) {
	w, corpus := engineFixture(t)
	byClass := classify(w.KB, corpus)
	tables := byClass[kb.ClassSettlement]
	if len(tables) < 3 {
		t.Fatal("need at least three settlement tables")
	}
	cfg := DefaultConfig(w.KB, corpus, kb.ClassSettlement)
	cfg.Iterations = 1
	eng := NewEngine(cfg, Models{})

	var out *Output
	for _, b := range splitBatches(tables, 3) {
		out, _, _ = eng.Ingest(context.Background(), b)
	}
	if !reflect.DeepEqual(out.TableIDs, sortedTableIDs(tables)) {
		t.Errorf("final TableIDs %v != all tables", out.TableIDs)
	}
	if len(out.Detections) != len(out.Entities) {
		t.Fatal("detections not parallel to entities")
	}
	if len(out.Rows) == 0 || len(out.Clustering.Assign) != len(out.Rows) {
		t.Errorf("rows %d, assigned %d", len(out.Rows), len(out.Clustering.Assign))
	}
	for _, tid := range out.TableIDs {
		if corpus.Table(tid) != nil {
			if _, ok := out.Mapping[tid]; !ok {
				t.Errorf("table %d has no mapping in final output", tid)
			}
		}
	}
	// Last returns a defensive copy equal to the final output, not the
	// internal pointer (concurrent handlers must not alias retained rows).
	last := eng.Last()
	if last == out {
		t.Error("Last() must not return the internal output pointer")
	}
	outputsEqual(t, out, last)
	for i := range out.Rows {
		if last.Rows[i] == out.Rows[i] {
			t.Fatalf("Last() row %d aliases the engine's retained row", i)
		}
		if !reflect.DeepEqual(last.Rows[i].TableVec, out.Rows[i].TableVec) {
			t.Fatalf("Last() row %d copy diverged", i)
		}
	}
	// Re-ingesting already-seen tables is a no-op batch.
	_, st, _ := eng.Ingest(context.Background(), tables[:1])
	if st.BatchTables != 0 {
		t.Errorf("re-ingest counted %d new tables", st.BatchTables)
	}
}

// TestEngineHistoryAndResume covers the serving-layer contract: History
// returns per-epoch stats copies, and a fresh engine resumed from a KB that
// already holds write-backs continues the epoch sequence without
// re-writing entities discovered before the restart.
func TestEngineHistoryAndResume(t *testing.T) {
	w, corpus := engineFixture(t)
	byClass := classify(w.KB, corpus)
	tables := byClass[kb.ClassGFPlayer]
	if len(tables) < 2 {
		t.Fatal("need at least two player tables")
	}
	cfg := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
	cfg.Iterations = 1
	eng := NewEngine(cfg, Models{})

	batches := splitBatches(tables, 2)
	_, st1, _ := eng.Ingest(context.Background(), batches[0])
	hist := eng.History()
	if len(hist) != 1 || hist[0] != st1 {
		t.Fatalf("history after one epoch = %+v", hist)
	}
	// Mutating the returned copy must not affect the engine.
	hist[0].Epoch = 99
	if eng.History()[0].Epoch != 1 {
		t.Error("History() leaked internal state")
	}

	// A fresh engine over the grown KB resumes the epoch sequence and does
	// not duplicate the earlier write-backs.
	resumed := NewEngine(cfg, Models{})
	if err := resumed.Resume(eng.Epoch(), nil); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if resumed.Epoch() != 1 {
		t.Fatalf("resumed epoch = %d, want 1", resumed.Epoch())
	}
	if len(resumed.written) != st1.WrittenBack {
		t.Fatalf("resumed written set = %d signatures, want %d", len(resumed.written), st1.WrittenBack)
	}
	before := w.KB.NumInstances()
	out, st2, _ := resumed.Ingest(context.Background(), batches[0])
	if st2.Epoch != 2 {
		t.Errorf("epoch after resumed ingest = %d, want 2", st2.Epoch)
	}
	// Same batch, same KB: every entity written back before the restart is
	// recognized by signature, so nothing is written twice.
	if st2.WrittenBack != 0 {
		t.Errorf("resumed ingest re-wrote %d instances", st2.WrittenBack)
	}
	if got := w.KB.NumInstances(); got != before {
		t.Errorf("KB grew by %d on resumed re-ingest", got-before)
	}
	if len(out.Entities) == 0 {
		t.Error("resumed ingest produced no entities")
	}

	// Resuming with the ingested table set marks those tables done: they
	// are skipped by later batches and reported by IngestedIDs (but not by
	// TableIDs, which covers only this engine's own outputs).
	resumed2 := NewEngine(cfg, Models{})
	if err := resumed2.Resume(eng.Epoch(), eng.IngestedIDs()); err != nil {
		t.Fatalf("Resume with tables: %v", err)
	}
	if got, want := resumed2.IngestedIDs(), eng.IngestedIDs(); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed IngestedIDs = %v, want %v", got, want)
	}
	if len(resumed2.TableIDs()) != 0 {
		t.Errorf("resumed TableIDs = %v, want empty", resumed2.TableIDs())
	}
	if got := resumed2.newTableIDs(batches[0]); len(got) != 0 {
		t.Errorf("restored tables not skipped: %v", got)
	}

	// Resume after ingesting is a contract violation.
	if err := resumed.Resume(3, nil); err == nil {
		t.Error("Resume on a used engine should fail")
	}
	if err := NewEngine(cfg, Models{}).Resume(-1, nil); err == nil {
		t.Error("negative Resume epoch should fail")
	}
}

// TestEngineFork verifies fork isolation: ingesting on a fork leaves the
// original engine's state and epoch untouched.
func TestEngineFork(t *testing.T) {
	w, corpus := engineFixture(t)
	byClass := classify(w.KB, corpus)
	tables := byClass[kb.ClassGFPlayer]
	if len(tables) < 2 {
		t.Fatal("need at least two player tables")
	}
	cfg := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
	cfg.Iterations = 1
	base := NewEngine(cfg, Models{})
	base.WriteBack = false
	batches := splitBatches(tables, 2)
	base.Ingest(context.Background(), batches[0])
	baseTables := base.TableIDs()

	fork := base.Fork()
	forkOut, _, _ := fork.Ingest(context.Background(), batches[1])
	if base.Epoch() != 1 || fork.Epoch() != 2 {
		t.Errorf("epochs: base %d fork %d", base.Epoch(), fork.Epoch())
	}
	if !reflect.DeepEqual(base.TableIDs(), baseTables) {
		t.Error("fork ingest changed the base engine's tables")
	}
	if len(forkOut.TableIDs) != len(sortedTableIDs(tables)) {
		t.Errorf("fork covers %d tables, want %d",
			len(forkOut.TableIDs), len(sortedTableIDs(tables)))
	}
	// The fork's own state diverged; the base can still ingest its batch
	// and arrive at the same table coverage.
	baseOut, _, _ := base.Ingest(context.Background(), batches[1])
	if !reflect.DeepEqual(baseOut.TableIDs, forkOut.TableIDs) {
		t.Error("base and fork disagree on final table coverage")
	}
}
