package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/kb"
)

// exactPaths forces both LSH retrieval layers (clustering block assignment
// and KB candidate generation) onto their exact reference paths and
// returns a restore func.
func exactPaths() func() {
	cluster.SetScanBlocking(true)
	kb.SetScanCandidates(true)
	return func() {
		cluster.SetScanBlocking(false)
		kb.SetScanCandidates(false)
	}
}

// TestLSHEquivalenceOverScenarios runs the full pipeline over every seed
// scenario class twice — once on the default LSH candidate paths, once on
// the exact reference paths — and requires identical final output: the
// same clustering assignment, the same entities, and the same detections.
// It also holds the block-level candidate recall to a floor, so a future
// retuning of the LSH parameters cannot silently trade recall away while
// the output equivalence happens to survive on this corpus.
//
// Identity (not mere similarity) is achievable because LSH retrieval is
// re-ranked by the same exact TF-IDF scorer the reference search uses:
// output can only diverge when the candidate union (LSH buckets plus the
// rare-token posting walk) misses one of the reference's above-floor
// top-k hits. The two halves split the similarity spectrum between them —
// banding covers multi-token/fuzzy matches, the rare-token walk covers
// high-IDF single-token matches — so on corpora whose informative tokens
// stay within the rare cap the union covers everything the exact scorer
// can rank highly (see internal/lsh, "Hybrid retrieval").
func TestLSHEquivalenceOverScenarios(t *testing.T) {
	w, corpus := fixture()
	byClass := classify(w.KB, corpus)
	for _, class := range kb.EvalClasses() {
		tids := byClass[class]
		if len(tids) == 0 {
			t.Errorf("%s: no tables classified", class)
			continue
		}
		cfg := DefaultConfig(w.KB, corpus, class)
		cfg.Iterations = 1

		lsh, err := New(cfg, Models{}).Run(context.Background(), tids)
		if err != nil {
			t.Fatalf("%s: lsh run: %v", class, err)
		}

		restore := exactPaths()
		exact, err := New(cfg, Models{}).Run(context.Background(), tids)
		restore()
		if err != nil {
			t.Fatalf("%s: exact run: %v", class, err)
		}

		// Block-level recall: every block the exact path assigned should
		// also be proposed by LSH retrieval (measured before requiring
		// full identity, to localize a failure to the retrieval layer).
		hit, total := 0, 0
		lshBlocks := make(map[string]map[string]bool)
		for _, r := range lsh.Rows {
			set := make(map[string]bool, len(r.Blocks))
			for _, b := range r.Blocks {
				set[b] = true
			}
			lshBlocks[r.NormLabel] = set
		}
		for _, r := range exact.Rows {
			set := lshBlocks[r.NormLabel]
			for _, b := range r.Blocks {
				total++
				if set[b] {
					hit++
				}
			}
		}
		if total == 0 {
			t.Fatalf("%s: exact run assigned no blocks", class)
		}
		if recall := float64(hit) / float64(total); recall < 0.97 {
			t.Errorf("%s: block recall = %.4f over %d reference blocks, want >= 0.97", class, recall, total)
		}

		// Full output identity at default thresholds.
		if !reflect.DeepEqual(lsh.Clustering.Assign, exact.Clustering.Assign) {
			t.Errorf("%s: clustering assignment differs between LSH and exact paths", class)
		}
		if len(lsh.Entities) != len(exact.Entities) {
			t.Fatalf("%s: entity counts differ: %d (lsh) vs %d (exact)", class, len(lsh.Entities), len(exact.Entities))
		}
		for i := range lsh.Entities {
			if lsh.Entities[i].Label() != exact.Entities[i].Label() {
				t.Errorf("%s: entity %d label differs: %q vs %q",
					class, i, lsh.Entities[i].Label(), exact.Entities[i].Label())
			}
			ld, ed := lsh.Detections[i], exact.Detections[i]
			if ld.Matched != ed.Matched || ld.IsNew != ed.IsNew || ld.Instance != ed.Instance {
				t.Errorf("%s: entity %d detection differs: %+v vs %+v", class, i, ld, ed)
			}
		}
		if !reflect.DeepEqual(lsh.RowInstance, exact.RowInstance) {
			t.Errorf("%s: row-instance mapping differs between LSH and exact paths", class)
		}
	}
}
