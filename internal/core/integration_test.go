package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/kb"
	"repro/internal/webtable"
)

// TestPipelineOverWDCRoundTrip serializes the synthetic corpus to the WDC
// JSON format, reads it back (losing generation provenance, exactly like a
// real dump), and verifies the pipeline still finds new entities — the
// full "real data" path: WDC JSON → corpus → classify → pipeline.
func TestPipelineOverWDCRoundTrip(t *testing.T) {
	w, corpus := fixture()
	var buf bytes.Buffer
	if err := webtable.WriteWDC(&buf, corpus); err != nil {
		t.Fatal(err)
	}
	loaded, err := webtable.ReadWDC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() == 0 {
		t.Fatal("round-trip corpus empty")
	}
	for _, tb := range loaded.Tables {
		if tb.Truth != nil {
			t.Fatal("provenance must not survive serialization")
		}
	}

	byClass := classify(w.KB, loaded)
	if len(byClass[kb.ClassGFPlayer]) == 0 {
		t.Fatal("no player tables classified after round trip")
	}
	cfg := DefaultConfig(w.KB, loaded, kb.ClassGFPlayer)
	cfg.Iterations = 1
	out, _ := New(cfg, Models{}).Run(context.Background(), byClass[kb.ClassGFPlayer])
	if len(out.Entities) == 0 {
		t.Fatal("no entities from round-tripped corpus")
	}
	if len(out.NewEntities()) == 0 {
		t.Error("no new entities from round-tripped corpus")
	}
}

// TestPipelineDeterministic verifies that two runs with the same seed yield
// identical outputs (clustering included, despite the parallel greedy pass,
// because batch decisions are applied in order).
func TestPipelineDeterministic(t *testing.T) {
	w, corpus := fixture()
	byClass := classify(w.KB, corpus)
	cfg := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
	cfg.Iterations = 1
	a, _ := New(cfg, Models{}).Run(context.Background(), byClass[kb.ClassGFPlayer])
	b, _ := New(cfg, Models{}).Run(context.Background(), byClass[kb.ClassGFPlayer])
	if len(a.Entities) != len(b.Entities) {
		t.Fatalf("entity counts differ: %d vs %d", len(a.Entities), len(b.Entities))
	}
	for i := range a.Entities {
		if a.Entities[i].Label() != b.Entities[i].Label() {
			t.Fatalf("entity %d label differs: %q vs %q",
				i, a.Entities[i].Label(), b.Entities[i].Label())
		}
		if a.Detections[i].IsNew != b.Detections[i].IsNew {
			t.Fatalf("entity %d detection differs", i)
		}
	}
}

// TestOutputAccessors covers NewEntities/ExistingEntities partitioning.
func TestOutputAccessors(t *testing.T) {
	w, corpus := fixture()
	byClass := classify(w.KB, corpus)
	cfg := DefaultConfig(w.KB, corpus, kb.ClassSettlement)
	cfg.Iterations = 1
	out, _ := New(cfg, Models{}).Run(context.Background(), byClass[kb.ClassSettlement])
	newN := len(out.NewEntities())
	exist, _ := out.ExistingEntities()
	abstained := 0
	for _, d := range out.Detections {
		if !d.IsNew && !d.Matched {
			abstained++
		}
	}
	if newN+len(exist)+abstained != len(out.Entities) {
		t.Errorf("partition broken: %d new + %d existing + %d abstained != %d total",
			newN, len(exist), abstained, len(out.Entities))
	}
}

// TestEmptyTableList degenerates gracefully.
func TestEmptyTableList(t *testing.T) {
	w, corpus := fixture()
	cfg := DefaultConfig(w.KB, corpus, kb.ClassSong)
	out, _ := New(cfg, Models{}).Run(context.Background(), nil)
	if len(out.Entities) != 0 || len(out.Rows) != 0 {
		t.Errorf("empty run produced %d entities", len(out.Entities))
	}
}
