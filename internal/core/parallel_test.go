package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/gold"
	"repro/internal/kb"
)

// outputsEqual deep-compares the externally visible parts of two pipeline
// outputs: mapping, match scores, clustering, entity labels and facts,
// detections, and row-to-instance correspondences.
func outputsEqual(t *testing.T, a, b *Output) {
	t.Helper()
	if !reflect.DeepEqual(a.TableIDs, b.TableIDs) {
		t.Fatalf("table IDs differ: %v vs %v", a.TableIDs, b.TableIDs)
	}
	if !reflect.DeepEqual(a.Mapping, b.Mapping) {
		t.Fatal("attribute mappings differ")
	}
	if !reflect.DeepEqual(a.MatchScores, b.MatchScores) {
		t.Fatal("match scores differ")
	}
	if !reflect.DeepEqual(a.Clustering.Assign, b.Clustering.Assign) {
		t.Fatal("cluster assignments differ")
	}
	if len(a.Entities) != len(b.Entities) {
		t.Fatalf("entity counts differ: %d vs %d", len(a.Entities), len(b.Entities))
	}
	for i := range a.Entities {
		if !reflect.DeepEqual(a.Entities[i].Labels, b.Entities[i].Labels) {
			t.Fatalf("entity %d labels differ: %v vs %v",
				i, a.Entities[i].Labels, b.Entities[i].Labels)
		}
		if !reflect.DeepEqual(a.Entities[i].Facts, b.Entities[i].Facts) {
			t.Fatalf("entity %d facts differ", i)
		}
	}
	if !reflect.DeepEqual(a.Detections, b.Detections) {
		t.Fatal("detections differ")
	}
	if !reflect.DeepEqual(a.RowInstance, b.RowInstance) {
		t.Fatal("row-instance correspondences differ")
	}
}

// TestParallelMatchesSerial is the parallelism regression test: a pipeline
// run fanned out over a worker pool must produce output identical to the
// fully serial run for the same seed.
func TestParallelMatchesSerial(t *testing.T) {
	w, corpus := fixture()
	byClass := classify(w.KB, corpus)
	tables := byClass[kb.ClassGFPlayer]

	serial := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
	serial.Iterations = 2
	serial.Workers = 1
	serial.ClusterOpts.Workers = 1
	outSerial, _ := New(serial, Models{}).Run(context.Background(), tables)

	for _, workers := range []int{2, 8} {
		parallel := serial
		parallel.Workers = workers
		parallel.ClusterOpts.Workers = workers
		outParallel, _ := New(parallel, Models{}).Run(context.Background(), tables)
		outputsEqual(t, outSerial, outParallel)
	}
}

// TestSameSeedTwiceIdentical verifies full-output determinism: two runs
// with identical configuration (parallel workers included) must agree on
// every mapping, cluster, entity and detection — map iteration order must
// not leak into any emitted structure.
func TestSameSeedTwiceIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Song runs; skipped in -short (TestParallelMatchesSerial covers determinism)")
	}
	w, corpus := fixture()
	byClass := classify(w.KB, corpus)
	tables := byClass[kb.ClassSong]

	cfg := DefaultConfig(w.KB, corpus, kb.ClassSong)
	cfg.Iterations = 2
	a, _ := New(cfg, Models{}).Run(context.Background(), tables)
	b, _ := New(cfg, Models{}).Run(context.Background(), tables)
	outputsEqual(t, a, b)
}

// TestTrainParallelMatchesSerial verifies that training with a worker pool
// learns models identical to fully serial training — including the random
// forest, which is sensitive to any float jitter in its inputs (the PHI
// and IMPLICIT_ATT metrics accumulate in fixed key order for exactly this
// reason).
func TestTrainParallelMatchesSerial(t *testing.T) {
	w, corpus := fixture()
	g := gold.FromWorld(w, corpus, kb.ClassGFPlayer, 40)
	all := make([]int, len(g.Clusters))
	for i := range all {
		all[i] = i
	}
	cfg := DefaultConfig(w.KB, corpus, kb.ClassGFPlayer)
	cfg.Workers = 1
	serial, _ := Train(context.Background(), cfg, g, all)
	cfg.Workers = 4
	parallel, _ := Train(context.Background(), cfg, g, all)

	if !reflect.DeepEqual(serial.AttrFirst, parallel.AttrFirst) {
		t.Error("first-iteration attribute models differ")
	}
	if !reflect.DeepEqual(serial.AttrSecond, parallel.AttrSecond) {
		t.Error("second-iteration attribute models differ")
	}
	if !reflect.DeepEqual(serial.ClusterModel, parallel.ClusterModel) {
		t.Error("cluster aggregators differ")
	}
	if !reflect.DeepEqual(serial.DetectorModel, parallel.DetectorModel) {
		t.Error("detector aggregators differ")
	}
	if serial.Detector.NewThreshold != parallel.Detector.NewThreshold ||
		serial.Detector.ExistThreshold != parallel.Detector.ExistThreshold {
		t.Error("detector thresholds differ")
	}
}

// TestClassifyTablesParallelMatchesSerial is the determinism regression
// test for the parallelized table-to-class matching: the per-table fan-out
// must produce the same class assignment (same tables, same order) at
// every worker count.
func TestClassifyTablesParallelMatchesSerial(t *testing.T) {
	w, corpus := fixture()
	serial, _ := ClassifyTables(context.Background(), w.KB, corpus, 0.3, 1)
	if len(serial) == 0 {
		t.Fatal("serial classification empty")
	}
	for _, workers := range []int{2, 8} {
		got, _ := ClassifyTables(context.Background(), w.KB, corpus, 0.3, workers)
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d: classification differs from serial", workers)
		}
	}
	// The default entry point is the parallel path.
	if got := classify(w.KB, corpus); !reflect.DeepEqual(serial, got) {
		t.Error("default-pool ClassifyTables differs from serial")
	}
}

// TestSortedTableIDs covers the ID canonicalization the parallel fan-out
// relies on (distinct IDs so no two workers share a table).
func TestSortedTableIDs(t *testing.T) {
	got := sortedTableIDs([]int{5, 3, 5, 1, 3})
	want := []int{1, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sortedTableIDs = %v, want %v", got, want)
	}
	if out := sortedTableIDs(nil); len(out) != 0 {
		t.Errorf("nil input: %v", out)
	}
}
