package core

import "repro/internal/kb"

// Stage names one phase of a pipeline epoch (or of training) for progress
// reporting. The stages of an ingest epoch fire in order, once per
// iteration: StageMatch, StageBuild, StageCluster, StageFuse, StageDetect,
// and then StageWriteBack once per epoch (when write-back is enabled).
type Stage string

const (
	// StageClassify is table-to-class matching over a corpus.
	StageClassify Stage = "classify"
	// StageMatch is per-table attribute-to-property schema matching.
	StageMatch Stage = "match"
	// StageBuild is row building (similarity preparation, blocking, PHI).
	StageBuild Stage = "build"
	// StageCluster is row clustering (greedy pass plus KLj refinement).
	StageCluster Stage = "cluster"
	// StageFuse is entity creation (fusion) over the clusters.
	StageFuse Stage = "fuse"
	// StageDetect is new detection over the created entities.
	StageDetect Stage = "detect"
	// StageWriteBack is the KB write-back of entities detected as new.
	StageWriteBack Stage = "writeback"
	// StageTrain covers the model-learning phases of Train; the Event's
	// Detail field names the model being learned.
	StageTrain Stage = "train"
)

// Event is one progress notification. The engine emits an Event at the
// start of every stage; a callback therefore always describes work that is
// about to run, and the previous stage is complete when the next event
// arrives. Events fire on the goroutine running the pipeline — callbacks
// must be fast and must not call back into the engine.
type Event struct {
	// Class is the pipeline's class.
	Class kb.ClassID
	// Epoch is the ingest epoch the stage runs in (0 during Train and
	// ClassifyTables, which run outside any epoch).
	Epoch int
	// Iteration is the 1-based pipeline iteration within the epoch (0 for
	// stages that run once per epoch, like StageWriteBack).
	Iteration int
	// Stage identifies the phase that is starting.
	Stage Stage
	// Count is the number of units entering the stage: tables for
	// StageClassify/StageMatch/StageBuild, rows for StageCluster, clusters
	// for StageFuse, entities for StageDetect, and candidate entities for
	// StageWriteBack.
	Count int
	// Detail optionally refines the stage (the model name during
	// StageTrain).
	Detail string
}

// emit invokes the configured progress callback, if any.
func (cfg *Config) emit(ev Event) {
	if cfg.Progress != nil {
		ev.Class = cfg.Class
		cfg.Progress(ev)
	}
}
