package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/kb"
	"repro/internal/webtable"
	"repro/internal/world"
)

// kbBytes serializes a KB's instances for byte-level comparison.
func kbBytes(t *testing.T, k *kb.KB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := k.WriteInstances(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEngineSnapshotRoundTrip is the snapshot acceptance test: after N
// ingest epochs, saving the KB, regenerating the seed world, and loading
// the snapshot must restore byte-identical KB state, and a further Ingest
// from a resumed engine must produce byte-identical output (entities,
// detections, write-backs) to the same Ingest running over the
// unsnapshotted KB.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	const preEpochs = 2
	dir := t.TempDir()

	// Run A: the unsnapshotted baseline. N epochs on a fresh world.
	wA := world.Generate(world.DefaultConfig(0.2))
	cA := webtable.Synthesize(wA, webtable.DefaultSynthConfig(0.12))
	tablesA := classify(wA.KB, cA)[kb.ClassGFPlayer]
	if len(tablesA) < preEpochs+1 {
		t.Fatal("need at least three player tables")
	}
	cfgA := DefaultConfig(wA.KB, cA, kb.ClassGFPlayer)
	cfgA.Iterations = 1
	engA := NewEngine(cfgA, Models{})
	batches := splitBatches(tablesA, preEpochs+1)
	// Save after every epoch: the first save writes the whole chain, each
	// later one appends only that epoch's write-backs as a delta segment,
	// so run B below restores from a genuine multi-segment chain.
	var saved kb.Manifest
	for i := 0; i < preEpochs; i++ {
		engA.Ingest(context.Background(), batches[i])
		var err error
		if saved, err = wA.KB.SaveSnapshot(dir, kb.Manifest{
			Epochs: map[string]int{string(kb.ClassGFPlayer): engA.Epoch()},
			Tables: map[string][]int{string(kb.ClassGFPlayer): engA.IngestedIDs()},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(saved.Segments) != preEpochs {
		t.Fatalf("per-epoch saves built %d segments, want %d (delta saves are not incremental)",
			len(saved.Segments), preEpochs)
	}

	// Run B: regenerate the identical seed world, load the snapshot.
	wB := world.Generate(world.DefaultConfig(0.2))
	cB := webtable.Synthesize(wB, webtable.DefaultSynthConfig(0.12))
	m, err := wB.KB.LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != preEpochs {
		t.Fatalf("loaded manifest lists %d segments, want %d", len(m.Segments), preEpochs)
	}
	if got, want := kbBytes(t, wB.KB), kbBytes(t, wA.KB); !bytes.Equal(got, want) {
		t.Fatal("restored KB serialization differs from the unsnapshotted KB")
	}

	// Fresh engines over both KBs (the baseline intentionally also uses a
	// fresh engine: a snapshot persists KB discoveries, not clustering
	// state, so the comparable baseline is a restart without the
	// save/load cycle). Both resume at the recorded epoch.
	engA2 := NewEngine(cfgA, Models{})
	if err := engA2.Resume(preEpochs, nil); err != nil {
		t.Fatal(err)
	}
	cfgB := DefaultConfig(wB.KB, cB, kb.ClassGFPlayer)
	cfgB.Iterations = 1
	engB := NewEngine(cfgB, Models{})
	if err := engB.Resume(m.Epochs[string(kb.ClassGFPlayer)], nil); err != nil {
		t.Fatal(err)
	}

	// The further Ingest: identical output and identical KB bytes. This
	// also proves the kb.Version-keyed caches (match profiles, detector
	// candidates) rebuilt correctly over the restored KB — a stale cache
	// would change candidate sets and diverge the outputs.
	outA, stA, _ := engA2.Ingest(context.Background(), batches[preEpochs])
	outB, stB, _ := engB.Ingest(context.Background(), batches[preEpochs])
	if stA != stB {
		t.Fatalf("ingest stats diverged:\n  unsnapshotted %+v\n  restored      %+v", stA, stB)
	}
	if stA.Epoch != preEpochs+1 {
		t.Errorf("continued epoch = %d, want %d", stA.Epoch, preEpochs+1)
	}
	outputsEqual(t, outA, outB)
	if got, want := kbBytes(t, wB.KB), kbBytes(t, wA.KB); !bytes.Equal(got, want) {
		t.Fatal("post-ingest KB serializations diverged")
	}
	// Epoch provenance continues the sequence across the restart.
	for id := stA.KBInstances - stA.WrittenBack; id < stA.KBInstances; id++ {
		if in := wB.KB.Instance(kb.InstanceID(id)); in.IngestEpoch != preEpochs+1 {
			t.Fatalf("instance %d epoch = %d, want %d", id, in.IngestEpoch, preEpochs+1)
		}
	}
}
