package core

import (
	"context"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dtype"
	"repro/internal/fusion"
	"repro/internal/gold"
	"repro/internal/kb"
	"repro/internal/match"
	"repro/internal/newdet"
	"repro/internal/par"
	"repro/internal/webtable"
)

// Train learns all pipeline models from the gold standard, using only the
// clusters whose indices appear in trainClusters (the learning folds of the
// cross-validation). Passing all cluster indices trains on the full gold
// standard.
//
// Cancelling ctx abandons training at the next phase boundary (or inside
// the per-table fan-outs) and returns the context's error; the partial
// Models are discarded. Train has no side effects, so a cancelled call can
// simply be retried.
func Train(ctx context.Context, cfg Config, g *gold.Standard, trainClusters []int) (Models, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	trainSet := make(map[int]bool, len(trainClusters))
	for _, i := range trainClusters {
		trainSet[i] = true
	}
	// Training tables: annotated tables whose rows mostly belong to
	// training clusters.
	tableVotes := make(map[int][2]int) // table -> (train rows, total rows)
	for ref, ci := range g.RowCluster {
		v := tableVotes[ref.Table]
		if trainSet[ci] {
			v[0]++
		}
		v[1]++
		tableVotes[ref.Table] = v
	}
	var trainTables []int
	for _, tid := range g.TableIDs {
		v := tableVotes[tid]
		if v[1] > 0 && v[0]*2 >= v[1] {
			trainTables = append(trainTables, tid)
		}
	}
	sort.Ints(trainTables)
	trainTableSet := make(map[int]bool, len(trainTables))
	for _, tid := range trainTables {
		trainTableSet[tid] = true
	}

	// Attribute examples restricted to training tables.
	var attrs []match.Example
	for _, ex := range g.Attributes {
		if trainTableSet[ex.Table.ID] {
			attrs = append(attrs, ex)
		}
	}

	mc := match.NewContext(cfg.KB, cfg.Corpus)
	mc.Class = cfg.Class
	models := Models{}
	cfg.emit(Event{Stage: StageTrain, Detail: "attr-first", Count: len(attrs)})
	models.AttrFirst = match.Learn(mc, match.FirstIterationMatchers(), cfg.Class, attrs, cfg.Seed)
	if err := ctx.Err(); err != nil {
		return Models{}, err
	}

	// Iteration outputs for the second-iteration model come from the gold
	// annotations (standing in for a first pipeline run on the learning
	// set): gold correspondences as RowInstance, gold clusters as
	// RowCluster, and the first model's mapping as the preliminary
	// mapping.
	rowInstance := make(map[webtable.RowRef]kb.InstanceID)
	rowCluster := make(map[webtable.RowRef]int)
	for ref, ci := range g.RowCluster {
		if !trainSet[ci] {
			continue
		}
		rowCluster[ref] = ci
		c := g.Clusters[ci]
		if !c.IsNew {
			rowInstance[ref] = c.Instance
		}
	}
	prelim := make(map[match.ColRef]kb.PropertyID)
	mapping := make(map[int]map[int]kb.PropertyID)
	firstMatchers := match.FirstIterationMatchers()
	// First-iteration mapping per training table, fanned out over the pool
	// (trainTables is sorted and duplicate-free, so each worker owns its
	// table) and reduced serially in table order.
	perTable, err := par.MapCtx(ctx, cfg.Workers, trainTables, func(_, tid int) map[int]kb.PropertyID {
		t := cfg.Corpus.Table(tid)
		match.EnsureDetected(t)
		return match.MatchAttributes(mc, models.AttrFirst, firstMatchers, t)
	})
	if err != nil {
		return Models{}, err
	}
	for i, tid := range trainTables {
		m := perTable[i]
		mapping[tid] = m
		for col, pid := range m {
			prelim[match.ColRef{Table: tid, Col: col}] = pid
		}
	}
	cfg.emit(Event{Stage: StageTrain, Detail: "attr-second", Count: len(attrs)})
	mc2 := mc.WithIterationOutput(rowInstance, rowCluster, prelim)
	models.AttrSecond = match.Learn(mc2, match.AllMatchers(), cfg.Class, attrs, cfg.Seed)
	if err := ctx.Err(); err != nil {
		return Models{}, err
	}

	// Row clustering: build rows for the training tables with the
	// first-iteration mapping and learn the combined aggregator from gold
	// pair labels.
	builder := &cluster.Builder{
		KB: cfg.KB, Corpus: cfg.Corpus, Class: cfg.Class, Mapping: mapping,
	}
	rows := builder.Build(trainTables)
	pairs := labeledPairs(g, trainSet, rows, 4000)
	cfg.emit(Event{Stage: StageTrain, Detail: "cluster-scorer", Count: len(pairs)})
	models.ClusterScorer, models.ClusterModel = cluster.LearnScorer(cluster.MetricSet(), pairs, cfg.Seed)
	if err := ctx.Err(); err != nil {
		return Models{}, err
	}

	// New detection: entities created from the gold training clusters,
	// labeled with the gold new/existing annotations.
	examples, err := detectionExamples(ctx, cfg, g, trainSet, rows, mapping)
	if err != nil {
		return Models{}, err
	}
	cfg.emit(Event{Stage: StageTrain, Detail: "detector", Count: len(examples)})
	detAgg, _ := newdet.LearnAggregator(cfg.KB, newdet.MetricSet(), examples, cfg.Seed)
	models.DetectorModel = detAgg
	models.Detector = newdet.LearnThresholds(cfg.KB, newdet.MetricSet(), detAgg, examples, cfg.Seed)
	return models, nil
}

// labeledPairs generates labeled row pairs from the gold clustering:
// positives are intra-cluster pairs; negatives are block-sharing pairs from
// different clusters plus a spread of random cross-cluster pairs. maxPairs
// bounds the output.
func labeledPairs(g *gold.Standard, trainSet map[int]bool, rows []*cluster.Row, maxPairs int) []cluster.PairExample {
	annotated := rows[:0:0]
	for _, r := range rows {
		if ci, ok := g.RowCluster[r.Ref]; ok && trainSet[ci] {
			annotated = append(annotated, r)
		}
	}
	var pairs []cluster.PairExample
	// Block index to find negative candidates cheaply.
	byBlock := make(map[string][]*cluster.Row)
	for _, r := range annotated {
		for _, b := range r.Blocks {
			byBlock[b] = append(byBlock[b], r)
		}
	}
	seen := make(map[[2]webtable.RowRef]bool)
	addPair := func(a, b *cluster.Row, match bool) {
		ka, kp := a.Ref, b.Ref
		if kp.Table < ka.Table || (kp.Table == ka.Table && kp.Row < ka.Row) {
			ka, kp = kp, ka
		}
		key := [2]webtable.RowRef{ka, kp}
		if seen[key] || ka == kp {
			return
		}
		seen[key] = true
		pairs = append(pairs, cluster.PairExample{A: a, B: b, Match: match})
	}
	// Positives: all intra-cluster pairs.
	byCluster := make(map[int][]*cluster.Row)
	for _, r := range annotated {
		byCluster[g.RowCluster[r.Ref]] = append(byCluster[g.RowCluster[r.Ref]], r)
	}
	cids := make([]int, 0, len(byCluster))
	for ci := range byCluster {
		cids = append(cids, ci)
	}
	sort.Ints(cids)
	for _, ci := range cids {
		members := byCluster[ci]
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				addPair(members[i], members[j], true)
			}
		}
	}
	// Negatives: block-sharing cross-cluster pairs (the hard cases).
	blocks := make([]string, 0, len(byBlock))
	for b := range byBlock {
		blocks = append(blocks, b)
	}
	sort.Strings(blocks)
	for _, b := range blocks {
		members := byBlock[b]
		for i := 0; i < len(members) && len(pairs) < maxPairs; i++ {
			for j := i + 1; j < len(members); j++ {
				if g.RowCluster[members[i].Ref] != g.RowCluster[members[j].Ref] {
					addPair(members[i], members[j], false)
				}
			}
		}
		if len(pairs) >= maxPairs {
			break
		}
	}
	// Easy negatives: adjacent rows across the annotated list.
	for i := 0; i+1 < len(annotated) && len(pairs) < maxPairs; i += 2 {
		a, b := annotated[i], annotated[i+1]
		if g.RowCluster[a.Ref] != g.RowCluster[b.Ref] {
			addPair(a, b, false)
		}
	}
	return pairs
}

// detectionExamples creates entities from the gold training clusters and
// labels them with the gold annotations.
func detectionExamples(ctx context.Context, cfg Config, g *gold.Standard, trainSet map[int]bool, rows []*cluster.Row, mapping map[int]map[int]kb.PropertyID) ([]newdet.Example, error) {
	rowByRef := make(map[webtable.RowRef]*cluster.Row, len(rows))
	for _, r := range rows {
		rowByRef[r.Ref] = r
	}
	src := &fusion.Sources{
		KB: cfg.KB, Corpus: cfg.Corpus, Class: cfg.Class,
		Mapping:    mapping,
		Thresholds: dtype.DefaultThresholds(),
		Scoring:    fusion.Voting,
	}
	// Entity creation per training cluster runs on the pool (VOTING scoring
	// keeps the sources read-only); the nil-filtering reduction keeps the
	// examples in cluster order.
	created, err := par.MapCtx(ctx, cfg.Workers, g.Clusters, func(ci int, c *gold.Cluster) *newdet.Example {
		if !trainSet[ci] {
			return nil
		}
		var members []*cluster.Row
		for _, ref := range c.Rows {
			if r, ok := rowByRef[ref]; ok {
				members = append(members, r)
			}
		}
		if len(members) == 0 {
			return nil
		}
		e := fusion.Create(src, members)
		return &newdet.Example{Entity: e, IsNew: c.IsNew, Instance: c.Instance}
	})
	if err != nil {
		return nil, err
	}
	var out []newdet.Example
	for _, ex := range created {
		if ex != nil {
			out = append(out, *ex)
		}
	}
	return out, nil
}
