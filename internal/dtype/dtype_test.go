package dtype

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Text.String() != "text" || Date.String() != "date" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind formatting")
	}
}

func TestKindCoarse(t *testing.T) {
	cases := map[Kind]Kind{
		Text:              Text,
		NominalString:     Text,
		InstanceReference: Text,
		Quantity:          Quantity,
		NominalInteger:    Quantity,
		Date:              Date,
		Unknown:           Unknown,
	}
	for k, want := range cases {
		if got := k.Coarse(); got != want {
			t.Errorf("%v.Coarse() = %v, want %v", k, got, want)
		}
	}
}

func TestDetectKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
	}{
		{"Tom Brady", Text},
		{"1,234", Quantity},
		{"12.5", Quantity},
		{"-3", Quantity},
		{"$1,000", Quantity},
		{"85 kg", Quantity},
		{"3:45", Quantity},
		{"6'2\"", Quantity},
		{"1995", Date},
		{"1995-08-03", Date},
		{"08/03/1995", Date},
		{"3.8.1995", Date},
		{"August 3, 1995", Date},
		{"3 August 1995", Date},
		{"Aug 3, 1995", Date},
		{"", Unknown},
		{"  ", Unknown},
		{"QB", Text},
	}
	for _, c := range cases {
		if got := DetectKind(c.in); got != c.want {
			t.Errorf("DetectKind(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseQuantity(t *testing.T) {
	v, ok := Parse("1,234.5", Quantity)
	if !ok || v.Num != 1234.5 {
		t.Fatalf("Parse quantity = %+v ok=%v", v, ok)
	}
	v, ok = Parse("3:45", Quantity)
	if !ok || v.Num != 225 {
		t.Errorf("duration = %v, want 225 seconds", v.Num)
	}
	v, ok = Parse("6'2\"", Quantity)
	if !ok || v.Num != 74 {
		t.Errorf("height = %v, want 74 inches", v.Num)
	}
	v, ok = Parse("6-2", Quantity)
	if !ok || v.Num != 74 {
		t.Errorf("dash height = %v, want 74", v.Num)
	}
	if _, ok := Parse("hello", Quantity); ok {
		t.Error("text should not parse as quantity")
	}
	if _, ok := Parse("3:99", Quantity); ok {
		t.Error("invalid duration should not parse")
	}
}

func TestParseNominalInteger(t *testing.T) {
	v, ok := Parse("12", NominalInteger)
	if !ok || v.Num != 12 {
		t.Fatalf("Parse nominal int = %+v ok=%v", v, ok)
	}
	if _, ok := Parse("12.5", NominalInteger); ok {
		t.Error("fractional value should not parse as nominal integer")
	}
}

func TestParseDate(t *testing.T) {
	v, ok := Parse("1995-08-03", Date)
	if !ok || v.Year != 1995 || v.Month != 8 || v.Day != 3 || v.Gran != GranDay {
		t.Fatalf("ISO date = %+v ok=%v", v, ok)
	}
	v, ok = Parse("August 3, 1995", Date)
	if !ok || v.Year != 1995 || v.Month != 8 || v.Day != 3 {
		t.Fatalf("textual date = %+v ok=%v", v, ok)
	}
	v, ok = Parse("1995", Date)
	if !ok || v.Year != 1995 || v.Gran != GranYear {
		t.Fatalf("year = %+v ok=%v", v, ok)
	}
	if _, ok := Parse("13/45/1995", Date); ok {
		t.Error("invalid date should not parse")
	}
	if _, ok := Parse("not a date", Date); ok {
		t.Error("text should not parse as date")
	}
}

func TestParseText(t *testing.T) {
	v, ok := Parse("  Tom  BRADY ", Text)
	if !ok || v.Str != "tom brady" {
		t.Fatalf("text normalization = %+v", v)
	}
	if _, ok := Parse("", Text); ok {
		t.Error("empty string should not parse")
	}
}

func TestSimilarityText(t *testing.T) {
	th := DefaultThresholds()
	a, b := NewText("Tom Brady"), NewText("tom brady")
	if s := th.Similarity(a, b); s != 1 {
		t.Errorf("identical text sim = %v", s)
	}
	if !th.Equal(a, b) {
		t.Error("identical text should be equal")
	}
	c := NewText("Peyton Manning")
	if th.Equal(a, c) {
		t.Error("different names should not be equal")
	}
}

func TestSimilarityNominal(t *testing.T) {
	th := DefaultThresholds()
	a, b := NewNominal("US"), NewNominal("us")
	if !th.Equal(a, b) {
		t.Error("case-normalized nominals should be equal")
	}
	c := NewNominal("USA")
	if th.Equal(a, c) {
		t.Error("nominals differ: strict equality required")
	}
}

func TestSimilarityNominalInt(t *testing.T) {
	th := DefaultThresholds()
	if !th.Equal(NewNominalInt(12), NewNominalInt(12)) {
		t.Error("equal nominal ints")
	}
	if th.Equal(NewNominalInt(12), NewNominalInt(13)) {
		t.Error("adjacent nominal ints must be unequal")
	}
}

func TestSimilarityQuantity(t *testing.T) {
	th := DefaultThresholds()
	if !th.Equal(NewQuantity(100), NewQuantity(100)) {
		t.Error("equal quantities")
	}
	if !th.Equal(NewQuantity(100), NewQuantity(102)) {
		t.Error("2%% deviation within 5%% tolerance should be equal")
	}
	if th.Equal(NewQuantity(100), NewQuantity(150)) {
		t.Error("50%% deviation should not be equal")
	}
	// Closeness is semantically graded.
	s1 := th.Similarity(NewQuantity(100), NewQuantity(101))
	s2 := th.Similarity(NewQuantity(100), NewQuantity(120))
	if s1 <= s2 {
		t.Errorf("closer quantity should score higher: %v vs %v", s1, s2)
	}
	if !th.Equal(NewQuantity(0), NewQuantity(0)) {
		t.Error("two zeros are equal")
	}
}

func TestSimilarityDate(t *testing.T) {
	th := DefaultThresholds()
	if !th.Equal(NewDate(1995, 8, 3), NewDate(1995, 8, 3)) {
		t.Error("identical day dates")
	}
	if !th.Equal(NewDate(1995, 8, 3), NewYear(1995)) {
		t.Error("day date should equal matching year-granularity date")
	}
	if th.Equal(NewDate(1995, 8, 3), NewDate(1995, 8, 4)) {
		t.Error("different days are unequal")
	}
	if th.Equal(NewYear(1995), NewYear(1996)) {
		t.Error("different years are unequal")
	}
}

func TestSimilarityCrossKind(t *testing.T) {
	th := DefaultThresholds()
	if s := th.Similarity(NewText("12"), NewQuantity(12)); s != 0 {
		t.Errorf("text vs quantity = %v, want 0", s)
	}
	// Text vs InstanceReference share the text coarse type and compare.
	if s := th.Similarity(NewText("patriots"), NewRef("Patriots")); s != 1 {
		t.Errorf("text vs ref = %v, want 1", s)
	}
}

func TestSimilarityRangeProperty(t *testing.T) {
	th := DefaultThresholds()
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		s := th.Similarity(NewQuantity(a), NewQuantity(b))
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilaritySymmetryProperty(t *testing.T) {
	th := DefaultThresholds()
	f := func(a, b string) bool {
		if len(a) > 24 {
			a = a[:24]
		}
		if len(b) > 24 {
			b = b[:24]
		}
		va, vb := NewText(a), NewText(b)
		return math.Abs(th.Similarity(va, vb)-th.Similarity(vb, va)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// mustFuse fuses or fails the test: the happy-path tests all use non-empty
// groups, so an error is a test bug.
func mustFuse(t *testing.T, values []Value, weights []float64) Value {
	t.Helper()
	v, err := Fuse(values, weights)
	if err != nil {
		t.Fatalf("Fuse: %v", err)
	}
	return v
}

func TestFuseMajority(t *testing.T) {
	vals := []Value{NewText("a"), NewText("b"), NewText("a")}
	got := mustFuse(t, vals, nil)
	if got.Str != "a" {
		t.Errorf("majority = %q, want a", got.Str)
	}
	// Weighted: b outweighs two a's.
	got = mustFuse(t, vals, []float64{1, 3, 1})
	if got.Str != "b" {
		t.Errorf("weighted majority = %q, want b", got.Str)
	}
}

func TestFuseMajorityTieDeterministic(t *testing.T) {
	vals := []Value{NewText("x"), NewText("y")}
	for i := 0; i < 10; i++ {
		if got := mustFuse(t, vals, nil); got.Str != "x" {
			t.Fatalf("tie should break to first-seen, got %q", got.Str)
		}
	}
}

func TestFuseWeightedMedian(t *testing.T) {
	vals := []Value{NewQuantity(1), NewQuantity(100), NewQuantity(3)}
	got := mustFuse(t, vals, nil)
	if got.Num != 3 {
		t.Errorf("median = %v, want 3", got.Num)
	}
	// Heavy weight drags the median.
	got = mustFuse(t, vals, []float64{10, 1, 1})
	if got.Num != 1 {
		t.Errorf("weighted median = %v, want 1", got.Num)
	}
}

func TestFuseDatesPrefersDayGranularity(t *testing.T) {
	vals := []Value{NewYear(1995), NewDate(1995, 8, 3), NewYear(1995)}
	got := mustFuse(t, vals, nil)
	if got.Gran != GranDay || got.Month != 8 {
		t.Errorf("fused date = %+v, want day granularity", got)
	}
}

func TestFuseNominalNoFusion(t *testing.T) {
	vals := []Value{NewNominal("US"), NewNominal("US")}
	if got := mustFuse(t, vals, nil); got.Str != "us" {
		t.Errorf("nominal fuse = %+v", got)
	}
	ints := []Value{NewNominalInt(7)}
	if got := mustFuse(t, ints, nil); got.Num != 7 {
		t.Errorf("nominal int fuse = %+v", got)
	}
}

// TestFuseDegenerateInput is the crash-vector regression test: a
// long-running server derives fusion groups from user-supplied ingest
// batches, so empty or inconsistent input must return an error instead of
// panicking.
func TestFuseDegenerateInput(t *testing.T) {
	if _, err := Fuse(nil, nil); !errors.Is(err, ErrEmptyGroup) {
		t.Errorf("empty group error = %v, want ErrEmptyGroup", err)
	}
	if _, err := Fuse([]Value{}, []float64{}); !errors.Is(err, ErrEmptyGroup) {
		t.Errorf("empty slices error = %v, want ErrEmptyGroup", err)
	}
	if _, err := Fuse([]Value{NewText("a")}, []float64{1, 2}); err == nil {
		t.Error("mismatched weights should return an error")
	}
}

func TestValueString(t *testing.T) {
	if NewQuantity(2.5).String() != "2.5" {
		t.Error("quantity string")
	}
	if NewNominalInt(12).String() != "12" {
		t.Error("nominal int string")
	}
	if NewYear(1995).String() != "1995" {
		t.Error("year string")
	}
	if NewDate(1995, 8, 3).String() != "1995-08-03" {
		t.Error("date string")
	}
	if NewText("Hi").String() != "hi" {
		t.Error("text string uses normalized payload")
	}
}

func TestValueIsZero(t *testing.T) {
	var v Value
	if !v.IsZero() {
		t.Error("zero value should be zero")
	}
	if NewText("x").IsZero() {
		t.Error("text value should not be zero")
	}
}

func BenchmarkDetectKind(b *testing.B) {
	inputs := []string{"Tom Brady", "1,234", "August 3, 1995", "3:45", "6'2\""}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DetectKind(inputs[i%len(inputs)])
	}
}

func BenchmarkSimilarityQuantity(b *testing.B) {
	th := DefaultThresholds()
	x, y := NewQuantity(1234), NewQuantity(1250)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		th.Similarity(x, y)
	}
}
