package dtype

import (
	"errors"
	"fmt"
	"sort"
)

// ErrEmptyGroup is returned by Fuse for an empty value group.
var ErrEmptyGroup = errors.New("dtype: Fuse on empty group")

// Fuse merges a group of equal values into a single fused value (§3.3 step
// 4). Weights parallel values; a nil weights slice means uniform weights.
//
//   - Text and InstanceReference use the (weighted) majority value.
//   - Quantity and Date use a weighted median.
//   - NominalString and NominalInteger need no fusion (all group members are
//     equal) and return the first value.
//
// An empty group returns ErrEmptyGroup and a non-nil weights slice whose
// length differs from values returns an error: a long-running server feeds
// Fuse data derived from user-supplied ingest batches, so degenerate input
// must surface as an error instead of a process-killing panic.
func Fuse(values []Value, weights []float64) (Value, error) {
	if len(values) == 0 {
		return Value{}, ErrEmptyGroup
	}
	if weights != nil && len(weights) != len(values) {
		return Value{}, fmt.Errorf("dtype: Fuse got %d weights for %d values", len(weights), len(values))
	}
	if weights == nil {
		weights = make([]float64, len(values))
		for i := range weights {
			weights[i] = 1
		}
	}
	switch values[0].Kind {
	case NominalString, NominalInteger:
		return values[0], nil
	case Quantity:
		return weightedMedianBy(values, weights, func(v Value) float64 { return v.Num }), nil
	case Date:
		return fuseDates(values, weights), nil
	default: // Text, InstanceReference
		return weightedMajority(values, weights), nil
	}
}

// weightedMajority picks the value whose normalized string payload has the
// highest total weight. Ties break toward the value seen first, keeping the
// result deterministic.
func weightedMajority(values []Value, weights []float64) Value {
	totals := make(map[string]float64)
	first := make(map[string]int)
	for i, v := range values {
		key := v.Str
		totals[key] += weights[i]
		if _, seen := first[key]; !seen {
			first[key] = i
		}
	}
	bestKey, bestW, bestIdx := "", -1.0, 0
	for key, w := range totals {
		idx := first[key]
		if w > bestW || (w == bestW && idx < bestIdx) {
			bestKey, bestW, bestIdx = key, w, idx
		}
	}
	_ = bestKey
	return values[bestIdx]
}

// weightedMedianBy returns the value at the weighted median of the keys.
func weightedMedianBy(values []Value, weights []float64, key func(Value) float64) Value {
	type kv struct {
		v Value
		w float64
	}
	items := make([]kv, len(values))
	var total float64
	for i, v := range values {
		items[i] = kv{v, weights[i]}
		total += weights[i]
	}
	sort.SliceStable(items, func(i, j int) bool { return key(items[i].v) < key(items[j].v) })
	half := total / 2
	var acc float64
	for _, it := range items {
		acc += it.w
		if acc >= half {
			return it.v
		}
	}
	return items[len(items)-1].v
}

// fuseDates prefers day-granularity values: the weighted median over day
// dates when any exist, otherwise over years.
func fuseDates(values []Value, weights []float64) Value {
	var dayVals []Value
	var dayWs []float64
	for i, v := range values {
		if v.Gran == GranDay {
			dayVals = append(dayVals, v)
			dayWs = append(dayWs, weights[i])
		}
	}
	if len(dayVals) > 0 {
		values, weights = dayVals, dayWs
	}
	return weightedMedianBy(values, weights, func(v Value) float64 {
		return float64(v.Year)*372 + float64(v.Month)*31 + float64(v.Day)
	})
}
