package dtype

import (
	"regexp"
	"strconv"
	"strings"
	"unicode"
)

// The detection regular expressions mirror the paper's "manually defined
// regular expressions" for the three coarse detection types.
var (
	reNumber = regexp.MustCompile(`^[+-]?\$?\s*\d{1,3}(,\d{3})*(\.\d+)?\s*(%|kg|km|mi|lb|lbs|m|ft|in)?$|^[+-]?\$?\s*\d+(\.\d+)?\s*(%|kg|km|mi|lb|lbs|m|ft|in)?$`)
	reYear   = regexp.MustCompile(`^(1[5-9]\d{2}|20\d{2})$`)
	// ISO and common numeric date layouts.
	reISODate = regexp.MustCompile(`^(\d{4})-(\d{1,2})-(\d{1,2})$`)
	reSlash   = regexp.MustCompile(`^(\d{1,2})/(\d{1,2})/(\d{4})$`)
	reDotDate = regexp.MustCompile(`^(\d{1,2})\.(\d{1,2})\.(\d{4})$`)
	// Textual month layouts ("January 2, 1995", "2 January 1995").
	reMonthFirst = regexp.MustCompile(`^([A-Za-z]{3,9})\.?\s+(\d{1,2})(?:st|nd|rd|th)?,?\s+(\d{4})$`)
	reDayFirst   = regexp.MustCompile(`^(\d{1,2})(?:st|nd|rd|th)?\s+([A-Za-z]{3,9})\.?,?\s+(\d{4})$`)
	// Durations like "3:45" (song runtimes) parse as quantities in seconds.
	reDuration = regexp.MustCompile(`^(\d{1,2}):(\d{2})$`)
	// Heights like 6'2" or 6-2 (football rosters) parse as inches.
	reHeight = regexp.MustCompile(`^(\d)'\s?(\d{1,2})"?$|^(\d)-(\d{1,2})$`)
)

var monthNum = map[string]int{
	"jan": 1, "january": 1,
	"feb": 2, "february": 2,
	"mar": 3, "march": 3,
	"apr": 4, "april": 4,
	"may": 5,
	"jun": 6, "june": 6,
	"jul": 7, "july": 7,
	"aug": 8, "august": 8,
	"sep": 9, "sept": 9, "september": 9,
	"oct": 10, "october": 10,
	"nov": 11, "november": 11,
	"dec": 12, "december": 12,
}

// DetectKind classifies a raw cell string into one of the three coarse
// detection types (Text, Date, Quantity) or Unknown for empty input.
func DetectKind(raw string) Kind {
	s := strings.TrimSpace(raw)
	if s == "" {
		return Unknown
	}
	if _, _, _, _, ok := parseDate(s); ok {
		return Date
	}
	if _, ok := parseNumber(s); ok {
		return Quantity
	}
	return Text
}

// Parse converts a raw cell string into a Value of the requested kind.
// It returns false when the string cannot be interpreted as that kind.
func Parse(raw string, kind Kind) (Value, bool) {
	s := strings.TrimSpace(raw)
	if s == "" {
		return Value{}, false
	}
	switch kind {
	case Text:
		return Value{Kind: Text, Raw: raw, Str: normString(s)}, true
	case NominalString:
		return Value{Kind: NominalString, Raw: raw, Str: normString(s)}, true
	case InstanceReference:
		return Value{Kind: InstanceReference, Raw: raw, Str: normString(s)}, true
	case Quantity:
		n, ok := parseNumber(s)
		if !ok {
			return Value{}, false
		}
		return Value{Kind: Quantity, Raw: raw, Num: n}, true
	case NominalInteger:
		n, ok := parseNumber(s)
		if !ok || n != float64(int64(n)) {
			return Value{}, false
		}
		return Value{Kind: NominalInteger, Raw: raw, Num: n}, true
	case Date:
		y, m, d, g, ok := parseDate(s)
		if !ok {
			// A bare quantity that looks like a year is accepted when a
			// date is requested (the paper lets date attributes match
			// quantity-typed columns).
			if n, nok := parseNumber(s); nok && reYear.MatchString(strconv.Itoa(int(n))) && n == float64(int64(n)) {
				return Value{Kind: Date, Raw: raw, Year: int(n), Gran: GranYear}, true
			}
			return Value{}, false
		}
		return Value{Kind: Date, Raw: raw, Year: y, Month: m, Day: d, Gran: g}, true
	default:
		return Value{}, false
	}
}

// parseNumber parses the numeric formats accepted by the detector, including
// thousands separators, currency/unit suffixes, durations (mm:ss → seconds),
// and roster heights (6'2" → inches).
func parseNumber(s string) (float64, bool) {
	if m := reDuration.FindStringSubmatch(s); m != nil {
		mins, _ := strconv.Atoi(m[1])
		secs, _ := strconv.Atoi(m[2])
		if secs < 60 {
			return float64(mins*60 + secs), true
		}
		return 0, false
	}
	if m := reHeight.FindStringSubmatch(s); m != nil {
		var ft, in int
		if m[1] != "" {
			ft, _ = strconv.Atoi(m[1])
			in, _ = strconv.Atoi(m[2])
		} else {
			ft, _ = strconv.Atoi(m[3])
			in, _ = strconv.Atoi(m[4])
		}
		if in < 12 {
			return float64(ft*12 + in), true
		}
		return 0, false
	}
	if !reNumber.MatchString(s) {
		return 0, false
	}
	cleaned := strings.Map(func(r rune) rune {
		switch {
		case unicode.IsDigit(r), r == '.', r == '-', r == '+':
			return r
		default:
			return -1
		}
	}, s)
	n, err := strconv.ParseFloat(cleaned, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// parseDate parses the date formats accepted by the detector and returns
// year, month, day and granularity.
func parseDate(s string) (y, m, d int, g Granularity, ok bool) {
	if mm := reISODate.FindStringSubmatch(s); mm != nil {
		return dateFrom(mm[1], mm[2], mm[3])
	}
	if mm := reSlash.FindStringSubmatch(s); mm != nil {
		// Interpret as month/day/year (the corpus is English-language).
		return dateFrom(mm[3], mm[1], mm[2])
	}
	if mm := reDotDate.FindStringSubmatch(s); mm != nil {
		// day.month.year
		return dateFrom(mm[3], mm[2], mm[1])
	}
	if mm := reMonthFirst.FindStringSubmatch(s); mm != nil {
		mon, found := monthNum[strings.ToLower(mm[1])]
		if !found {
			return 0, 0, 0, 0, false
		}
		day, _ := strconv.Atoi(mm[2])
		year, _ := strconv.Atoi(mm[3])
		return validDate(year, mon, day)
	}
	if mm := reDayFirst.FindStringSubmatch(s); mm != nil {
		mon, found := monthNum[strings.ToLower(mm[2])]
		if !found {
			return 0, 0, 0, 0, false
		}
		day, _ := strconv.Atoi(mm[1])
		year, _ := strconv.Atoi(mm[3])
		return validDate(year, mon, day)
	}
	if reYear.MatchString(s) {
		year, _ := strconv.Atoi(s)
		return year, 0, 0, GranYear, true
	}
	return 0, 0, 0, 0, false
}

func dateFrom(ys, ms, ds string) (int, int, int, Granularity, bool) {
	year, _ := strconv.Atoi(ys)
	mon, _ := strconv.Atoi(ms)
	day, _ := strconv.Atoi(ds)
	return validDate(year, mon, day)
}

func validDate(year, mon, day int) (int, int, int, Granularity, bool) {
	if year < 1000 || year > 2999 || mon < 1 || mon > 12 || day < 1 || day > 31 {
		return 0, 0, 0, 0, false
	}
	return year, mon, day, GranDay, true
}

// normString is the normalization applied to string payloads: lowercase and
// whitespace-collapsed but punctuation-preserving enough for nominal
// comparison.
func normString(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}
