package dtype

import (
	"math"

	"repro/internal/strsim"
)

// Thresholds holds the per-kind equivalence thresholds. Similarity at or
// above the threshold means "the two values are equal" for grouping,
// duplicate-based matching, and fact evaluation. The zero value is unusable;
// use DefaultThresholds.
type Thresholds struct {
	// Text is the minimum Monge-Elkan similarity for two texts to be equal.
	Text float64
	// Ref is the minimum Monge-Elkan similarity for two instance
	// references to point at the same instance.
	Ref float64
	// QuantityTol is the maximum relative deviation |a-b| / max(|a|,|b|)
	// for two quantities to be equal (the paper's "learned tolerance
	// range").
	QuantityTol float64
}

// DefaultThresholds are the equivalence thresholds used throughout the
// pipeline unless a component learned its own.
func DefaultThresholds() Thresholds {
	return Thresholds{Text: 0.85, Ref: 0.80, QuantityTol: 0.05}
}

// Similarity computes the data-type-specific similarity of two values in
// [0, 1]. Values of incomparable kinds score 0. Comparing a Date against a
// year-granularity Date compares only years.
func (t Thresholds) Similarity(a, b Value) float64 {
	ka, kb := a.Kind, b.Kind
	if ka.Coarse() != kb.Coarse() && !(ka == Date && kb == Date) {
		return 0
	}
	switch {
	case ka == NominalString || kb == NominalString:
		if a.Str == b.Str && a.Str != "" {
			return 1
		}
		return 0
	case ka == NominalInteger || kb == NominalInteger:
		if a.Num == b.Num {
			return 1
		}
		return 0
	case ka == Date && kb == Date:
		return dateSim(a, b)
	case ka == Quantity && kb == Quantity:
		return quantitySim(a.Num, b.Num, t.QuantityTol)
	case ka == InstanceReference || kb == InstanceReference:
		// Value strings recur across rows and instances (the same fact
		// values are compared over and over by the ATTRIBUTE and
		// IMPLICIT_ATT metrics); the prepared-label cache tokenizes each
		// distinct string once per process.
		return strsim.MongeElkanSymCached(a.Str, b.Str)
	default: // Text vs Text
		return strsim.MongeElkanSymCached(a.Str, b.Str)
	}
}

// Equal reports whether a and b are equal under the kind-specific
// equivalence threshold.
func (t Thresholds) Equal(a, b Value) bool {
	s := t.Similarity(a, b)
	switch {
	case a.Kind == NominalString || a.Kind == NominalInteger ||
		b.Kind == NominalString || b.Kind == NominalInteger:
		return s == 1
	case a.Kind == Date && b.Kind == Date:
		return s == 1
	case a.Kind == Quantity && b.Kind == Quantity:
		return s >= 1-t.QuantityTol
	case a.Kind == InstanceReference || b.Kind == InstanceReference:
		return s >= t.Ref
	default:
		return s >= t.Text
	}
}

func dateSim(a, b Value) float64 {
	if a.Year != b.Year {
		return 0
	}
	// If either side only knows the year, matching years suffice.
	if a.Gran == GranYear || b.Gran == GranYear {
		return 1
	}
	if a.Month == b.Month && a.Day == b.Day {
		return 1
	}
	return 0
}

func quantitySim(a, b, tol float64) float64 {
	if a == b {
		return 1
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 1
	}
	rel := math.Abs(a-b) / den
	if tol > 0 && rel <= tol {
		// Inside the tolerance band, degrade linearly from 1 to 1-tol so
		// closer values still rank higher.
		return 1 - rel
	}
	s := 1 - rel
	if s < 0 {
		return 0
	}
	return s
}
