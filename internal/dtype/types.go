// Package dtype implements the six data types the LTEE pipeline uses to
// type values, facts, attribute columns, and knowledge base properties:
// Text, NominalString, InstanceReference, Date, Quantity, and NominalInteger.
//
// Each type carries a similarity function and an equivalence threshold used
// to decide whether two values are equal (§3.1 of the paper), plus a fuser
// used during entity creation (§3.3): majority value for text-like types and
// a weighted median for quantities and dates.
package dtype

import "fmt"

// Kind enumerates the six data types of the pipeline plus detection-level
// coarse types. Column detection only distinguishes Text, Date, and
// Quantity; the finer types (NominalString, InstanceReference,
// NominalInteger) are assigned by the attribute-to-property matcher once an
// attribute is matched to a KB property.
type Kind int

const (
	// Unknown marks values that could not be typed.
	Unknown Kind = iota
	// Text is a free-form string compared fuzzily (e.g. instance labels).
	Text
	// NominalString is a string that is either exactly equal or unequal
	// (e.g. the ISO code of a country, a postal code).
	NominalString
	// InstanceReference is a reference to another KB instance (e.g. the
	// team of an athlete or the musical artist of a song).
	InstanceReference
	// Date is a date with year or day granularity.
	Date
	// Quantity is a numeric quantity where numeric closeness is
	// semantically meaningful (e.g. the population of a settlement).
	Quantity
	// NominalInteger is an integer where nearby numbers are unrelated
	// (e.g. jersey numbers, draft rounds).
	NominalInteger
)

var kindNames = map[Kind]string{
	Unknown:           "unknown",
	Text:              "text",
	NominalString:     "nominalString",
	InstanceReference: "instanceReference",
	Date:              "date",
	Quantity:          "quantity",
	NominalInteger:    "nominalInteger",
}

// String returns the lowerCamel name of the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Coarse maps the kind onto the three detection-level types: Text covers
// text, nominal strings and instance references; Quantity covers quantities
// and nominal integers; Date stays Date.
func (k Kind) Coarse() Kind {
	switch k {
	case NominalString, InstanceReference, Text:
		return Text
	case NominalInteger, Quantity:
		return Quantity
	case Date:
		return Date
	default:
		return Unknown
	}
}

// Numeric reports whether values of this kind carry a numeric payload.
func (k Kind) Numeric() bool {
	return k == Quantity || k == NominalInteger
}

// Granularity is the precision of a Date value.
type Granularity int

const (
	// GranYear means only the year is known.
	GranYear Granularity = iota
	// GranDay means the full date is known.
	GranDay
)

// Value is a typed cell or fact value. Exactly one payload field is
// meaningful depending on Kind: Str for Text/NominalString/
// InstanceReference, Num for Quantity/NominalInteger, and
// Year/Month/Day (+Gran) for Date. Raw preserves the original string.
type Value struct {
	Kind Kind
	// Raw is the original, unnormalized string.
	Raw string
	// Str is the normalized string payload for string-like kinds. For
	// InstanceReference it holds the normalized label of the referenced
	// instance.
	Str string
	// Num is the numeric payload for Quantity and NominalInteger.
	Num float64
	// Year, Month, Day and Gran encode Date payloads.
	Year, Month, Day int
	Gran             Granularity
}

// String renders the value for display and logging.
func (v Value) String() string {
	switch v.Kind {
	case Quantity:
		return fmt.Sprintf("%g", v.Num)
	case NominalInteger:
		return fmt.Sprintf("%d", int64(v.Num))
	case Date:
		if v.Gran == GranYear {
			return fmt.Sprintf("%04d", v.Year)
		}
		return fmt.Sprintf("%04d-%02d-%02d", v.Year, v.Month, v.Day)
	case Unknown:
		return v.Raw
	default:
		return v.Str
	}
}

// IsZero reports whether the value is the zero Value.
func (v Value) IsZero() bool {
	return v.Kind == Unknown && v.Raw == "" && v.Str == "" && v.Num == 0 &&
		v.Year == 0 && v.Month == 0 && v.Day == 0
}

// NewText constructs a Text value.
func NewText(s string) Value { return Value{Kind: Text, Raw: s, Str: normString(s)} }

// NewNominal constructs a NominalString value.
func NewNominal(s string) Value {
	return Value{Kind: NominalString, Raw: s, Str: normString(s)}
}

// NewRef constructs an InstanceReference value whose Str is the normalized
// label of the referenced instance.
func NewRef(label string) Value {
	return Value{Kind: InstanceReference, Raw: label, Str: normString(label)}
}

// NewQuantity constructs a Quantity value.
func NewQuantity(x float64) Value {
	return Value{Kind: Quantity, Raw: fmt.Sprintf("%g", x), Num: x}
}

// NewNominalInt constructs a NominalInteger value.
func NewNominalInt(n int) Value {
	return Value{Kind: NominalInteger, Raw: fmt.Sprintf("%d", n), Num: float64(n)}
}

// NewYear constructs a Date value with year granularity.
func NewYear(y int) Value {
	return Value{Kind: Date, Raw: fmt.Sprintf("%04d", y), Year: y, Gran: GranYear}
}

// NewDate constructs a Date value with day granularity.
func NewDate(y, m, d int) Value {
	return Value{
		Kind: Date,
		Raw:  fmt.Sprintf("%04d-%02d-%02d", y, m, d),
		Year: y, Month: m, Day: d, Gran: GranDay,
	}
}
