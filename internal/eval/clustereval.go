// Package eval implements the paper's evaluation machinery: the
// Hassanzadeh et al. clustering evaluation (average recall, penalized
// clustering precision), new detection accuracy and per-class F1, the
// new-instances-found and facts-found evaluations of §4, and the ranked
// evaluation (MAP, P@k) used for the set-expansion comparison in §6.
package eval

import (
	"repro/internal/webtable"
)

// ClusterScores holds the clustering evaluation results of Table 7.
type ClusterScores struct {
	// PCP is the penalized clustering precision.
	PCP float64
	// AR is the average recall.
	AR float64
	// F1 is the harmonic mean of PCP and AR.
	F1 float64
}

// EvaluateClustering compares a produced clustering C against gold clusters
// G following Hassanzadeh et al. [17]: a one-to-one mapping M from C to G
// maps each produced cluster to the gold cluster it overlaps most (largest
// fraction of its rows; ties by absolute overlap); average recall averages
// the per-gold-cluster recall; pairwise precision is computed over same-
// cluster row pairs in C and penalized by min(|C|,|G|,|M|)/max(...) for
// deviating cluster counts.
func EvaluateClustering(gold [][]webtable.RowRef, produced [][]webtable.RowRef) ClusterScores {
	goldOf := make(map[webtable.RowRef]int)
	for gi, rows := range gold {
		for _, r := range rows {
			goldOf[r] = gi
		}
	}

	// Map each produced cluster to its dominant gold cluster.
	type mapping struct {
		gold    int
		overlap int
		frac    float64
	}
	maps := make([]mapping, len(produced))
	for ci, rows := range produced {
		counts := make(map[int]int)
		for _, r := range rows {
			if gi, ok := goldOf[r]; ok {
				counts[gi]++
			}
		}
		best := mapping{gold: -1}
		for gi, n := range counts {
			frac := float64(n) / float64(len(rows))
			if frac > best.frac || (frac == best.frac && n > best.overlap) ||
				(frac == best.frac && n == best.overlap && best.gold >= 0 && gi < best.gold) {
				best = mapping{gold: gi, overlap: n, frac: frac}
			}
		}
		maps[ci] = best
	}
	// One-to-one: per gold cluster keep the produced cluster with the
	// highest overlap (ties to lower produced index).
	bestFor := make(map[int]int) // gold -> produced
	for ci, m := range maps {
		if m.gold < 0 {
			continue
		}
		cur, ok := bestFor[m.gold]
		if !ok || m.overlap > maps[cur].overlap {
			bestFor[m.gold] = ci
		}
	}

	// Average recall over gold clusters.
	var recallSum float64
	for gi, rows := range gold {
		ci, ok := bestFor[gi]
		if !ok || len(rows) == 0 {
			continue // recall 0 for unmapped gold clusters
		}
		overlap := 0
		for _, r := range produced[ci] {
			if g, k := goldOf[r]; k && g == gi {
				overlap++
			}
		}
		recallSum += float64(overlap) / float64(len(rows))
	}
	ar := 0.0
	if len(gold) > 0 {
		ar = recallSum / float64(len(gold))
	}

	// Pairwise clustering precision over produced same-cluster pairs.
	pairs, correct := 0, 0
	for _, rows := range produced {
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				gi, iok := goldOf[rows[i]]
				gj, jok := goldOf[rows[j]]
				if !iok || !jok {
					continue
				}
				pairs++
				if gi == gj {
					correct++
				}
			}
		}
	}
	precision := 1.0 // all-singleton clusterings have no pairs and full precision
	if pairs > 0 {
		precision = float64(correct) / float64(pairs)
	}
	// Penalize deviation of the cluster count: min size / max size over
	// |C|, |G| and |M|.
	sizes := []int{len(produced), len(gold), len(bestFor)}
	lo, hi := sizes[0], sizes[0]
	for _, s := range sizes[1:] {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	penalty := 1.0
	if hi > 0 {
		penalty = float64(lo) / float64(hi)
	}
	pcp := precision * penalty

	f1 := 0.0
	if pcp+ar > 0 {
		f1 = 2 * pcp * ar / (pcp + ar)
	}
	return ClusterScores{PCP: pcp, AR: ar, F1: f1}
}

// MapClusters returns, for each produced cluster, the index of the gold
// cluster that the majority of its rows belong to (-1 when no row is
// annotated or no majority exists). Used by the §4 evaluations.
func MapClusters(gold [][]webtable.RowRef, produced [][]webtable.RowRef) []int {
	goldOf := make(map[webtable.RowRef]int)
	for gi, rows := range gold {
		for _, r := range rows {
			goldOf[r] = gi
		}
	}
	out := make([]int, len(produced))
	for ci, rows := range produced {
		counts := make(map[int]int)
		for _, r := range rows {
			if gi, ok := goldOf[r]; ok {
				counts[gi]++
			}
		}
		best, bestN := -1, 0
		for gi, n := range counts {
			if n > bestN || (n == bestN && best >= 0 && gi < best) {
				best, bestN = gi, n
			}
		}
		// Majority condition: more than half the produced rows.
		if best >= 0 && bestN*2 > len(rows) {
			out[ci] = best
		} else {
			out[ci] = -1
		}
	}
	return out
}
