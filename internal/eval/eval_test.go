package eval

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dtype"
	"repro/internal/fusion"
	"repro/internal/gold"
	"repro/internal/kb"
	"repro/internal/newdet"
	"repro/internal/webtable"
)

func refs(pairs ...[2]int) []webtable.RowRef {
	out := make([]webtable.RowRef, len(pairs))
	for i, p := range pairs {
		out[i] = webtable.RowRef{Table: p[0], Row: p[1]}
	}
	return out
}

func TestEvaluateClusteringPerfect(t *testing.T) {
	g := [][]webtable.RowRef{
		refs([2]int{0, 0}, [2]int{1, 0}),
		refs([2]int{2, 0}),
	}
	s := EvaluateClustering(g, g)
	if s.PCP != 1 || s.AR != 1 || s.F1 != 1 {
		t.Errorf("perfect clustering = %+v", s)
	}
}

func TestEvaluateClusteringAllSingletons(t *testing.T) {
	g := [][]webtable.RowRef{
		refs([2]int{0, 0}, [2]int{1, 0}, [2]int{2, 0}),
	}
	produced := [][]webtable.RowRef{
		refs([2]int{0, 0}), refs([2]int{1, 0}), refs([2]int{2, 0}),
	}
	s := EvaluateClustering(g, produced)
	// Recall: only one singleton maps to the gold cluster → 1/3.
	if math.Abs(s.AR-1.0/3.0) > 1e-9 {
		t.Errorf("AR = %v, want 1/3", s.AR)
	}
	// Precision is 1 (no wrong pairs) but penalized by 1/3 cluster count.
	if math.Abs(s.PCP-1.0/3.0) > 1e-9 {
		t.Errorf("PCP = %v, want 1/3 (count penalty)", s.PCP)
	}
}

func TestEvaluateClusteringOverMerged(t *testing.T) {
	g := [][]webtable.RowRef{
		refs([2]int{0, 0}, [2]int{1, 0}),
		refs([2]int{2, 0}, [2]int{3, 0}),
	}
	produced := [][]webtable.RowRef{
		refs([2]int{0, 0}, [2]int{1, 0}, [2]int{2, 0}, [2]int{3, 0}),
	}
	s := EvaluateClustering(g, produced)
	// 2 of 6 pairs correct; penalty 1/2.
	wantPrec := 2.0 / 6.0 * 0.5
	if math.Abs(s.PCP-wantPrec) > 1e-9 {
		t.Errorf("PCP = %v, want %v", s.PCP, wantPrec)
	}
	// Only one gold cluster can be mapped (one produced cluster).
	if s.AR != 0.5 {
		t.Errorf("AR = %v, want 0.5", s.AR)
	}
}

func TestMapClustersMajority(t *testing.T) {
	g := [][]webtable.RowRef{
		refs([2]int{0, 0}, [2]int{1, 0}),
		refs([2]int{2, 0}),
	}
	produced := [][]webtable.RowRef{
		refs([2]int{0, 0}, [2]int{1, 0}, [2]int{2, 0}), // 2/3 from gold 0
		refs([2]int{9, 9}), // unknown rows
	}
	m := MapClusters(g, produced)
	if m[0] != 0 {
		t.Errorf("majority mapping = %v, want 0", m[0])
	}
	if m[1] != -1 {
		t.Errorf("unannotated cluster mapping = %v, want -1", m[1])
	}
}

func TestMapClustersNoMajority(t *testing.T) {
	g := [][]webtable.RowRef{
		refs([2]int{0, 0}),
		refs([2]int{1, 0}),
	}
	produced := [][]webtable.RowRef{
		refs([2]int{0, 0}, [2]int{1, 0}), // 50/50: no majority
	}
	m := MapClusters(g, produced)
	if m[0] != -1 {
		t.Errorf("50/50 split should have no majority, got %v", m[0])
	}
}

// buildGold creates a small gold standard by hand.
func buildGold() *gold.Standard {
	g := &gold.Standard{
		Class:      kb.ClassGFPlayer,
		RowCluster: make(map[webtable.RowRef]int),
	}
	add := func(isNew bool, inst kb.InstanceID, facts map[kb.PropertyID]dtype.Value, present map[kb.PropertyID]bool, rows ...webtable.RowRef) {
		c := &gold.Cluster{
			ID: len(g.Clusters), Rows: rows, IsNew: isNew, Instance: inst,
			Facts: facts, CorrectPresent: present,
		}
		for _, r := range rows {
			g.RowCluster[r] = c.ID
		}
		g.Clusters = append(g.Clusters, c)
	}
	add(true, 0,
		map[kb.PropertyID]dtype.Value{"dbo:position": dtype.NewNominal("QB")},
		map[kb.PropertyID]bool{"dbo:position": true},
		webtable.RowRef{Table: 0, Row: 0}, webtable.RowRef{Table: 1, Row: 0})
	add(false, 7,
		map[kb.PropertyID]dtype.Value{"dbo:position": dtype.NewNominal("WR")},
		map[kb.PropertyID]bool{"dbo:position": true},
		webtable.RowRef{Table: 2, Row: 0})
	add(true, 0,
		map[kb.PropertyID]dtype.Value{"dbo:weight": dtype.NewQuantity(200)},
		map[kb.PropertyID]bool{"dbo:weight": true},
		webtable.RowRef{Table: 3, Row: 0})
	return g
}

func TestEvaluateDetection(t *testing.T) {
	g := buildGold()
	results := []newdet.Result{
		{IsNew: true},                // correct (cluster 0 is new)
		{Matched: true, Instance: 7}, // correct (cluster 1 → instance 7)
		{Matched: true, Instance: 9}, // wrong (cluster 2 is new)
	}
	s := EvaluateDetection(g, []int{0, 1, 2}, results)
	if math.Abs(s.Accuracy-2.0/3.0) > 1e-9 {
		t.Errorf("accuracy = %v, want 2/3", s.Accuracy)
	}
	// Existing: tp=1, fp=1 (the wrong match on the new cluster), fn=0
	// → P=0.5, R=1, F1=2/3.
	if math.Abs(s.F1Existing-2.0/3.0) > 1e-9 {
		t.Errorf("F1Existing = %v, want 2/3", s.F1Existing)
	}
	// New: tp=1, fp=0, fn=1 → P=1, R=0.5, F1=2/3.
	if math.Abs(s.F1New-2.0/3.0) > 1e-9 {
		t.Errorf("F1New = %v, want 2/3", s.F1New)
	}
}

func TestEvaluateDetectionWrongInstance(t *testing.T) {
	g := buildGold()
	// Matching the wrong instance is not correct even though the cluster
	// is existing.
	results := []newdet.Result{{Matched: true, Instance: 99}}
	s := EvaluateDetection(g, []int{1}, results)
	if s.Accuracy != 0 {
		t.Errorf("wrong instance accuracy = %v", s.Accuracy)
	}
}

func TestEvaluateDetectionAbstention(t *testing.T) {
	g := buildGold()
	results := []newdet.Result{{}} // abstained on a new cluster
	s := EvaluateDetection(g, []int{0}, results)
	if s.Accuracy != 0 {
		t.Errorf("abstention accuracy = %v", s.Accuracy)
	}
}

func TestEvaluateNewInstancesFound(t *testing.T) {
	g := buildGold()
	produced := []NewEntityResult{
		{Rows: refs([2]int{0, 0}, [2]int{1, 0}), Result: newdet.Result{IsNew: true}},  // correct new
		{Rows: refs([2]int{2, 0}), Result: newdet.Result{IsNew: true}},                // wrongly new (existing)
		{Rows: refs([2]int{3, 0}), Result: newdet.Result{Matched: true, Instance: 1}}, // missed new
	}
	s := EvaluateNewInstancesFound(g, produced)
	if math.Abs(s.P-0.5) > 1e-9 {
		t.Errorf("P = %v, want 0.5", s.P)
	}
	if math.Abs(s.R-0.5) > 1e-9 {
		t.Errorf("R = %v, want 0.5 (one of two new clusters found)", s.R)
	}
}

func TestEvaluateNewInstancesMajorityConditions(t *testing.T) {
	g := buildGold()
	// Entity holds one of the two rows of new cluster 0 plus a foreign
	// row: no row majority of the cluster → not correct.
	produced := []NewEntityResult{
		{Rows: refs([2]int{0, 0}, [2]int{9, 9}), Result: newdet.Result{IsNew: true}},
	}
	s := EvaluateNewInstancesFound(g, produced)
	if s.P != 0 {
		t.Errorf("partial entity P = %v, want 0", s.P)
	}
}

func mkEntity(rows []webtable.RowRef, facts map[kb.PropertyID]dtype.Value) *fusion.Entity {
	e := &fusion.Entity{Class: kb.ClassGFPlayer, Facts: facts}
	for _, r := range rows {
		e.Rows = append(e.Rows, &cluster.Row{Ref: r})
	}
	return e
}

func TestEvaluateFactsFound(t *testing.T) {
	g := buildGold()
	th := dtype.DefaultThresholds()
	produced := []*fusion.Entity{
		mkEntity(refs([2]int{0, 0}, [2]int{1, 0}),
			map[kb.PropertyID]dtype.Value{"dbo:position": dtype.NewNominal("QB")}),
		mkEntity(refs([2]int{3, 0}),
			map[kb.PropertyID]dtype.Value{"dbo:weight": dtype.NewQuantity(300)}), // wrong value
	}
	s := EvaluateFactsFound(g, produced, []bool{true, true}, th)
	// tp=1 (position QB), fp=1 (weight 300) → P = 0.5.
	if math.Abs(s.P-0.5) > 1e-9 {
		t.Errorf("P = %v, want 0.5", s.P)
	}
	// Recall: 1 of 2 present groups on new clusters found.
	if math.Abs(s.R-0.5) > 1e-9 {
		t.Errorf("R = %v, want 0.5", s.R)
	}
}

func TestEvaluateFactsFoundWrongEntityPenalized(t *testing.T) {
	g := buildGold()
	th := dtype.DefaultThresholds()
	// Entity mapped to an existing cluster but classified new: its facts
	// all count as wrong.
	produced := []*fusion.Entity{
		mkEntity(refs([2]int{2, 0}),
			map[kb.PropertyID]dtype.Value{"dbo:position": dtype.NewNominal("WR")}),
	}
	s := EvaluateFactsFound(g, produced, []bool{true}, th)
	if s.P != 0 {
		t.Errorf("wrongly-new entity facts P = %v, want 0", s.P)
	}
}

func TestEvaluateRanked(t *testing.T) {
	produced := []NewEntityResult{
		{Result: newdet.Result{IsNew: true, BestScore: -0.9}}, // most distant, correct
		{Result: newdet.Result{IsNew: true, BestScore: -0.5}}, // correct
		{Result: newdet.Result{IsNew: true, BestScore: 0.1}},  // least distant, wrong
		{Result: newdet.Result{Matched: true}},                // not ranked
	}
	correct := []bool{true, true, false, false}
	s := EvaluateRanked(produced, correct, 256)
	// AP: hits at ranks 1 and 2 → (1/1 + 2/2)/2 = 1.
	if math.Abs(s.MAP-1) > 1e-9 {
		t.Errorf("MAP = %v, want 1", s.MAP)
	}
	if math.Abs(s.P5-2.0/3.0) > 1e-9 {
		t.Errorf("P5 = %v, want 2/3 (3 ranked, 2 correct)", s.P5)
	}
}

func TestEvaluateRankedEmpty(t *testing.T) {
	s := EvaluateRanked(nil, nil, 10)
	if s.MAP != 0 || s.P5 != 0 {
		t.Errorf("empty ranked eval = %+v", s)
	}
}

func TestFactAccuracy(t *testing.T) {
	th := dtype.DefaultThresholds()
	e := mkEntity(nil, map[kb.PropertyID]dtype.Value{
		"dbo:position": dtype.NewNominal("QB"),
		"dbo:weight":   dtype.NewQuantity(200),
	})
	truth := func(*fusion.Entity) map[string]dtype.Value {
		return map[string]dtype.Value{
			"dbo:position": dtype.NewNominal("QB"),
			"dbo:weight":   dtype.NewQuantity(260),
		}
	}
	acc := FactAccuracy([]*fusion.Entity{e}, truth, th)
	if math.Abs(acc-0.5) > 1e-9 {
		t.Errorf("accuracy = %v, want 0.5", acc)
	}
	// Unknown entity: all facts wrong.
	accNil := FactAccuracy([]*fusion.Entity{e}, func(*fusion.Entity) map[string]dtype.Value { return nil }, th)
	if accNil != 0 {
		t.Errorf("unknown-entity accuracy = %v", accNil)
	}
}
