package eval

import (
	"repro/internal/dtype"
	"repro/internal/fusion"
	"repro/internal/gold"
	"repro/internal/webtable"
)

// EvaluateFactsFound implements the §4.2 facts-found evaluation over
// *new* entities: produced entities are mapped to gold clusters via row
// majority; facts of correctly-mapped new entities are compared to the
// annotated facts with type-specific similarity; facts of wrongly created
// or wrongly-new entities count as wrong. Recall is measured against the
// value groups whose correct value is present in the tables.
func EvaluateFactsFound(g *gold.Standard, produced []*fusion.Entity, isNew []bool, th dtype.Thresholds) PRF {
	goldRows := make([][]webtable.RowRef, len(g.Clusters))
	for i, c := range g.Clusters {
		goldRows[i] = c.Rows
	}
	prodRows := make([][]webtable.RowRef, len(produced))
	for i, e := range produced {
		for _, r := range e.Rows {
			prodRows[i] = append(prodRows[i], r.Ref)
		}
	}
	mapped := MapClusters(goldRows, prodRows)

	tp, fp := 0, 0
	found := make(map[[2]int]bool) // (gold cluster, property-ordinal) found
	propOrd := make(map[string]int)
	ordOf := func(pid string) int {
		if o, ok := propOrd[pid]; ok {
			return o
		}
		o := len(propOrd)
		propOrd[pid] = o
		return o
	}
	for i, e := range produced {
		if !isNew[i] {
			continue // facts evaluation targets entities returned as new
		}
		gi := mapped[i]
		if gi < 0 || !g.Clusters[gi].IsNew {
			// Wrongly created or wrongly-new entity: all its facts are
			// wrong.
			fp += len(e.Facts)
			continue
		}
		gc := g.Clusters[gi]
		for pid, v := range e.Facts {
			want, ok := gc.Facts[pid]
			if ok && th.Equal(v, want) {
				tp++
				found[[2]int{gi, ordOf(string(pid))}] = true
			} else {
				fp++
			}
		}
	}
	// Recall denominator: value groups of new gold clusters whose correct
	// value is present in the tables.
	total := 0
	for _, c := range g.Clusters {
		if !c.IsNew {
			continue
		}
		total += len(c.CorrectPresent)
	}
	var out PRF
	if tp+fp > 0 {
		out.P = float64(tp) / float64(tp+fp)
	}
	if total > 0 {
		recalled := 0
		for gi, c := range g.Clusters {
			if !c.IsNew {
				continue
			}
			for pid := range c.CorrectPresent {
				if found[[2]int{gi, ordOf(string(pid))}] {
					recalled++
				}
			}
		}
		out.R = float64(recalled) / float64(total)
	}
	if out.P+out.R > 0 {
		out.F1 = 2 * out.P * out.R / (out.P + out.R)
	}
	return out
}

// FactAccuracy computes the fraction of an entity set's facts that agree
// with the world truth, used by the large-scale profiling (Table 11's
// "N. Facts Accuracy").
func FactAccuracy(entities []*fusion.Entity, truth func(e *fusion.Entity) map[string]dtype.Value, th dtype.Thresholds) float64 {
	correct, total := 0, 0
	for _, e := range entities {
		want := truth(e)
		if want == nil {
			total += len(e.Facts)
			continue
		}
		for pid, v := range e.Facts {
			total++
			if wv, ok := want[string(pid)]; ok && th.Equal(v, wv) {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
