package eval

import (
	"sort"

	"repro/internal/gold"
	"repro/internal/newdet"
	"repro/internal/webtable"
)

// DetectionScores holds the new detection evaluation of Table 8: overall
// accuracy plus separate F1 scores for the existing and new classes.
type DetectionScores struct {
	Accuracy   float64
	F1Existing float64
	F1New      float64
}

// EvaluateDetection scores entity classifications against gold clusters.
// results[i] is the detection result for the entity created from gold
// cluster clusterIdx[i]. An existing entity counts as correct only when
// matched to the correct instance.
func EvaluateDetection(g *gold.Standard, clusterIdx []int, results []newdet.Result) DetectionScores {
	var s DetectionScores
	if len(results) == 0 {
		return s
	}
	correct := 0
	tpNew, fpNew, fnNew := 0, 0, 0
	tpEx, fpEx, fnEx := 0, 0, 0
	for i, res := range results {
		gc := g.Clusters[clusterIdx[i]]
		switch {
		case res.IsNew:
			if gc.IsNew {
				correct++
				tpNew++
			} else {
				fpNew++
				fnEx++
			}
		case res.Matched:
			if !gc.IsNew && res.Instance == gc.Instance {
				correct++
				tpEx++
			} else {
				fpEx++
				if gc.IsNew {
					fnNew++
				} else {
					fnEx++
				}
			}
		default: // abstained
			if gc.IsNew {
				fnNew++
			} else {
				fnEx++
			}
		}
	}
	s.Accuracy = float64(correct) / float64(len(results))
	s.F1New = f1(tpNew, fpNew, fnNew)
	s.F1Existing = f1(tpEx, fpEx, fnEx)
	return s
}

// PRF holds precision, recall and F1.
type PRF struct {
	P, R, F1 float64
}

// NewEntityResult pairs one produced entity's rows with its detection.
type NewEntityResult struct {
	Rows   []webtable.RowRef
	Result newdet.Result
}

// EvaluateNewInstancesFound implements the §4.1 evaluation: an entity
// correctly finds a new gold instance when (1) the majority of its rows
// belong to that gold cluster, (2) it contains the majority of the rows of
// that cluster, and (3) it was classified as new. Recall is over new gold
// clusters; precision over entities returned as new.
func EvaluateNewInstancesFound(g *gold.Standard, produced []NewEntityResult) PRF {
	goldRows := make([][]webtable.RowRef, len(g.Clusters))
	for i, c := range g.Clusters {
		goldRows[i] = c.Rows
	}
	prodRows := make([][]webtable.RowRef, len(produced))
	for i, p := range produced {
		prodRows[i] = p.Rows
	}
	mapped := MapClusters(goldRows, prodRows)

	foundNew := make(map[int]bool) // gold cluster indices correctly found
	returnedNew, correctNew := 0, 0
	for i, p := range produced {
		if !p.Result.IsNew {
			continue
		}
		returnedNew++
		gi := mapped[i]
		if gi < 0 || !g.Clusters[gi].IsNew {
			continue
		}
		// Condition 2: the entity contains the majority of the gold
		// cluster's rows.
		rowSet := make(map[webtable.RowRef]bool, len(p.Rows))
		for _, r := range p.Rows {
			rowSet[r] = true
		}
		overlap := 0
		for _, r := range g.Clusters[gi].Rows {
			if rowSet[r] {
				overlap++
			}
		}
		if overlap*2 > len(g.Clusters[gi].Rows) {
			correctNew++
			foundNew[gi] = true
		}
	}
	totalNew := 0
	for _, c := range g.Clusters {
		if c.IsNew {
			totalNew++
		}
	}
	var out PRF
	if returnedNew > 0 {
		out.P = float64(correctNew) / float64(returnedNew)
	}
	if totalNew > 0 {
		out.R = float64(len(foundNew)) / float64(totalNew)
	}
	if out.P+out.R > 0 {
		out.F1 = 2 * out.P * out.R / (out.P + out.R)
	}
	return out
}

// RankedScores holds the §6 ranked evaluation numbers.
type RankedScores struct {
	MAP  float64
	P5   float64
	P20  float64
	CutK int
}

type rankedEntry struct {
	dist float64
	ok   bool
}

// EvaluateRanked ranks entities returned as new by the distance to their
// closest existing instance (higher distance = more confidently new, ranked
// first) and computes MAP with a cut-off at k plus precision at 5 and 20.
// correct[i] reports whether produced entity i is genuinely new.
func EvaluateRanked(produced []NewEntityResult, correct []bool, k int) RankedScores {
	var list []rankedEntry
	for i, p := range produced {
		if !p.Result.IsNew {
			continue
		}
		// BestScore is the similarity to the closest existing instance;
		// distance is its negation.
		list = append(list, rankedEntry{dist: -p.Result.BestScore, ok: correct[i]})
	}
	sort.SliceStable(list, func(i, j int) bool { return list[i].dist > list[j].dist })
	if k > 0 && len(list) > k {
		list = list[:k]
	}
	var out RankedScores
	out.CutK = k
	if len(list) == 0 {
		return out
	}
	// MAP: mean of precision@i at each correct position.
	var apSum float64
	hits := 0
	for i, r := range list {
		if r.ok {
			hits++
			apSum += float64(hits) / float64(i+1)
		}
	}
	if hits > 0 {
		out.MAP = apSum / float64(hits)
	}
	out.P5 = precisionAt(list, 5)
	out.P20 = precisionAt(list, 20)
	return out
}

func precisionAt(list []rankedEntry, k int) float64 {
	if len(list) == 0 {
		return 0
	}
	if k > len(list) {
		k = len(list)
	}
	hits := 0
	for i := 0; i < k; i++ {
		if list[i].ok {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// InstanceCorrect reports whether an entity mapped to gold cluster gi (via
// MapClusters) was correctly detected as new.
func InstanceCorrect(g *gold.Standard, gi int) bool {
	return gi >= 0 && g.Clusters[gi].IsNew
}

func f1(tp, fp, fn int) float64 {
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}
