package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/webtable"
)

// randomPartition splits rows 0..n-1 into clusters at random.
func randomPartition(rng *rand.Rand, n, k int) [][]webtable.RowRef {
	out := make([][]webtable.RowRef, k)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		out[c] = append(out[c], webtable.RowRef{Table: i, Row: 0})
	}
	var nonEmpty [][]webtable.RowRef
	for _, c := range out {
		if len(c) > 0 {
			nonEmpty = append(nonEmpty, c)
		}
	}
	return nonEmpty
}

// TestClusteringScoresRangeProperty: PCP, AR and F1 always lie in [0, 1]
// for arbitrary gold/produced partitions of the same rows.
func TestClusteringScoresRangeProperty(t *testing.T) {
	f := func(seed int64, rows, gk, pk uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rows%30) + 2
		gold := randomPartition(rng, n, int(gk%5)+1)
		produced := randomPartition(rng, n, int(pk%5)+1)
		s := EvaluateClustering(gold, produced)
		return s.PCP >= 0 && s.PCP <= 1 && s.AR >= 0 && s.AR <= 1 &&
			s.F1 >= 0 && s.F1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPerfectClusteringScoresOneProperty: evaluating a partition against
// itself always yields perfect scores.
func TestPerfectClusteringScoresOneProperty(t *testing.T) {
	f := func(seed int64, rows, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rows%30) + 2
		g := randomPartition(rng, n, int(k%6)+1)
		s := EvaluateClustering(g, g)
		return s.PCP == 1 && s.AR == 1 && s.F1 == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMapClustersConsistencyProperty: MapClusters returns an index into
// gold or -1, never anything else.
func TestMapClustersConsistencyProperty(t *testing.T) {
	f := func(seed int64, rows, gk, pk uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rows%25) + 2
		gold := randomPartition(rng, n, int(gk%4)+1)
		produced := randomPartition(rng, n, int(pk%4)+1)
		for _, m := range MapClusters(gold, produced) {
			if m < -1 || m >= len(gold) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
