package fusion

import (
	"repro/internal/cluster"
	"repro/internal/strsim"
)

// DedupConfig controls post-clustering entity deduplication — the
// extension the paper's §5 lessons suggest ("implement more sophisticated
// row clustering methods or, alternatively, perform deduplication after
// clustering") to bring the entity-to-instance matching ratio down
// (Table 11 reports 1.39 entities per matched instance for Song).
type DedupConfig struct {
	// LabelThreshold is the minimum Monge-Elkan label similarity for two
	// entities to be merge candidates (default 0.95).
	LabelThreshold float64
	// MaxConflicts is the number of conflicting fact pairs tolerated in a
	// merge (default 0: any conflicting overlapping fact blocks the
	// merge, since homonym entities typically conflict on artist,
	// runtime, or location).
	MaxConflicts int
}

// Deduplicate merges near-duplicate entities: pairs whose labels are
// near-identical and whose overlapping facts agree. Merged entities are
// re-fused from the union of their rows. The relative order of surviving
// entities is preserved and IDs are reassigned sequentially.
func Deduplicate(src *Sources, entities []*Entity, cfg DedupConfig) []*Entity {
	if cfg.LabelThreshold <= 0 {
		cfg.LabelThreshold = 0.95
	}
	n := len(entities)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	// Block on the normalized primary label's first token to avoid the
	// quadratic scan over all entity pairs.
	blocks := make(map[string][]int)
	for i, e := range entities {
		toks := strsim.Tokens(e.Label())
		if len(toks) == 0 {
			continue
		}
		blocks[toks[0]] = append(blocks[toks[0]], i)
	}
	for _, members := range blocks {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := entities[members[i]], entities[members[j]]
				if find(members[i]) == find(members[j]) {
					continue
				}
				if mergeable(src, a, b, cfg) {
					union(members[i], members[j])
				}
			}
		}
	}

	// Re-fuse merged groups.
	groups := make(map[int][]*Entity)
	var order []int
	for i := range entities {
		r := find(i)
		if _, seen := groups[r]; !seen {
			order = append(order, r)
		}
		groups[r] = append(groups[r], entities[i])
	}
	out := make([]*Entity, 0, len(order))
	for _, r := range order {
		group := groups[r]
		if len(group) == 1 {
			e := group[0]
			e.ID = len(out)
			out = append(out, e)
			continue
		}
		var rows []*cluster.Row
		for _, e := range group {
			rows = append(rows, e.Rows...)
		}
		merged := Create(src, rows)
		merged.ID = len(out)
		out = append(out, merged)
	}
	return out
}

// mergeable reports whether two entities can be merged: near-identical
// labels, overlapping facts that agree (up to MaxConflicts), and at least
// one shared equal fact when both carry facts (pure-label merges are
// allowed only when one side has no facts to compare).
func mergeable(src *Sources, a, b *Entity, cfg DedupConfig) bool {
	best := 0.0
	for _, la := range a.Labels {
		pa := strsim.PrepareCached(la)
		for _, lb := range b.Labels {
			if s := pa.MongeElkanSym(strsim.PrepareCached(lb)); s > best {
				best = s
			}
		}
	}
	if best < cfg.LabelThreshold {
		return false
	}
	overlap, agree, conflicts := 0, 0, 0
	for pid, va := range a.Facts {
		vb, ok := b.Facts[pid]
		if !ok {
			continue
		}
		overlap++
		if src.Thresholds.Equal(va, vb) {
			agree++
		} else {
			conflicts++
		}
	}
	if conflicts > cfg.MaxConflicts {
		return false
	}
	if overlap > 0 && agree == 0 {
		return false
	}
	return true
}
