package fusion

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/strsim"
	"repro/internal/webtable"
)

// dedupScenario builds two tables describing the same player and one table
// describing a homonym with conflicting facts.
func dedupScenario() (*Sources, []*Entity) {
	k := kb.New()
	tables := []*webtable.Table{
		{Headers: []string{"Player", "Pos"}, Cells: [][]string{{"Alvin Crumb", "QB"}}, LabelCol: 0},
		{Headers: []string{"Name", "Position"}, Cells: [][]string{{"Alvin Crumb", "QB"}}, LabelCol: 0},
		{Headers: []string{"Player", "Pos"}, Cells: [][]string{{"Alvin Crumb", "DT"}}, LabelCol: 0},
		{Headers: []string{"Player", "Pos"}, Cells: [][]string{{"Zeke Farrow", "K"}}, LabelCol: 0},
	}
	corpus := webtable.NewCorpus(tables)
	mapping := map[int]map[int]kb.PropertyID{
		0: {1: "dbo:position"}, 1: {1: "dbo:position"},
		2: {1: "dbo:position"}, 3: {1: "dbo:position"},
	}
	src := &Sources{
		KB: k, Corpus: corpus, Class: kb.ClassGFPlayer,
		Mapping: mapping, Thresholds: dtype.DefaultThresholds(),
	}
	var entities []*Entity
	for tid, t := range tables {
		label := t.Cell(0, 0)
		row := &cluster.Row{
			Ref:       webtable.RowRef{Table: tid, Row: 0},
			Label:     label,
			NormLabel: strsim.Normalize(label),
			BOW:       strsim.BinaryTermVector(label),
			Implicit:  map[kb.PropertyID]cluster.ImplicitAttr{},
			Values:    map[kb.PropertyID]dtype.Value{},
		}
		e := Create(src, []*cluster.Row{row})
		e.ID = tid
		entities = append(entities, e)
	}
	return src, entities
}

func TestDeduplicateMergesAgreeingDuplicates(t *testing.T) {
	src, entities := dedupScenario()
	out := Deduplicate(src, entities, DedupConfig{})
	// Entities 0 and 1 agree (QB/QB) and merge; entity 2 conflicts
	// (DT) and survives; entity 3 has a different label.
	if len(out) != 3 {
		t.Fatalf("deduplicated to %d entities, want 3", len(out))
	}
	merged := out[0]
	if len(merged.Rows) != 2 {
		t.Errorf("merged entity has %d rows, want 2", len(merged.Rows))
	}
	if merged.Facts["dbo:position"].Str != "qb" {
		t.Errorf("merged fact = %+v", merged.Facts["dbo:position"])
	}
	for i, e := range out {
		if e.ID != i {
			t.Errorf("entity %d has ID %d", i, e.ID)
		}
	}
}

func TestDeduplicateKeepsConflictingHomonyms(t *testing.T) {
	src, entities := dedupScenario()
	out := Deduplicate(src, entities, DedupConfig{})
	// The DT homonym must remain separate.
	foundDT := false
	for _, e := range out {
		if v, ok := e.Facts["dbo:position"]; ok && v.Str == "dt" {
			foundDT = true
			if len(e.Rows) != 1 {
				t.Error("conflicting homonym should not merge")
			}
		}
	}
	if !foundDT {
		t.Error("DT homonym disappeared")
	}
}

func TestDeduplicateTolerance(t *testing.T) {
	src, entities := dedupScenario()
	// With one conflict tolerated, the DT homonym merges too (conflicting
	// position is the single overlap... but agree==0 still blocks).
	out := Deduplicate(src, entities, DedupConfig{MaxConflicts: 1})
	// agree == 0 across the only overlapping fact, so the merge is still
	// blocked: conflicting-only overlap never merges.
	if len(out) != 3 {
		t.Errorf("conflict-only overlap should still block merge: %d entities", len(out))
	}
}

func TestDeduplicateLabelThreshold(t *testing.T) {
	src, entities := dedupScenario()
	out := Deduplicate(src, entities, DedupConfig{LabelThreshold: 1.01})
	if len(out) != len(entities) {
		t.Errorf("impossible threshold should merge nothing: %d", len(out))
	}
}

func TestDeduplicateEmpty(t *testing.T) {
	src, _ := dedupScenario()
	if out := Deduplicate(src, nil, DedupConfig{}); len(out) != 0 {
		t.Error("empty input")
	}
}

func BenchmarkDeduplicate(b *testing.B) {
	src, entities := dedupScenario()
	// Multiply the entity set to a realistic size.
	var big []*Entity
	for i := 0; i < 50; i++ {
		big = append(big, entities...)
	}
	cfg := DedupConfig{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Deduplicate(src, big, cfg)
	}
}
