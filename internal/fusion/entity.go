// Package fusion implements the entity creation step of the pipeline
// (§3.3): each row cluster is transformed into an entity whose facts are
// fused from the cluster's candidate values in four steps — scoring
// (VOTING, KBT, or MATCHING), grouping by data-type equality, selecting the
// highest-scoring group, and type-specific fusion.
package fusion

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/strsim"
	"repro/internal/webtable"
)

// Entity is a created entity: labels extracted from the cluster's rows and
// fused facts mapped to the knowledge base schema.
type Entity struct {
	ID    int
	Class kb.ClassID
	// Labels holds the distinct raw labels of the entity's rows, most
	// frequent first.
	Labels []string
	// Facts are the fused property values.
	Facts map[kb.PropertyID]dtype.Value
	// Rows are the member rows the entity was created from.
	Rows []*cluster.Row
	// BOW is the union of the member rows' term vectors.
	BOW map[string]float64
	// Implicit holds entity-level implicit attributes: per property, the
	// best-supported value with a confidence equal to the summed row
	// confidences divided by the number of rows.
	Implicit map[kb.PropertyID]cluster.ImplicitAttr
}

// Label returns the entity's primary (most frequent) label.
func (e *Entity) Label() string {
	if len(e.Labels) == 0 {
		return ""
	}
	return e.Labels[0]
}

// ScoringMethod selects how candidate values are scored before grouping.
type ScoringMethod int

const (
	// Voting assigns every candidate value a score of 1.
	Voting ScoringMethod = iota
	// KBT scores values by the trustworthiness of their source attribute,
	// estimated from the correctness of the attribute's overlapping
	// values against the knowledge base (Dong et al.'s Knowledge-Based
	// Trust).
	KBT
	// Matching scores values by the attribute-to-property matching score
	// of their source column.
	Matching
)

// String names the scoring method as the paper does.
func (s ScoringMethod) String() string {
	switch s {
	case KBT:
		return "KBT"
	case Matching:
		return "MATCHING"
	default:
		return "VOTING"
	}
}

// Sources carries the inputs entity creation needs.
type Sources struct {
	KB     *kb.KB
	Corpus *webtable.Corpus
	Class  kb.ClassID
	// Mapping holds the attribute-to-property correspondences:
	// Mapping[tableID][col] = property.
	Mapping map[int]map[int]kb.PropertyID
	// Thresholds are the data-type equivalence thresholds for grouping.
	Thresholds dtype.Thresholds

	// Scoring selects the value scoring method.
	Scoring ScoringMethod
	// MatchScores holds per-column matching scores (used by Matching).
	MatchScores map[ColKey]float64
	// RowInstance holds row-to-instance correspondences (used by KBT to
	// measure attribute correctness). May be nil; KBT then degrades to
	// uniform trust.
	RowInstance map[webtable.RowRef]kb.InstanceID

	kbtCache map[ColKey]float64
}

// ColKey addresses one column of one table.
type ColKey struct {
	Table int
	Col   int
}

// CreateAll transforms every cluster into an entity.
func CreateAll(src *Sources, cl *cluster.Clustering) []*Entity {
	out := make([]*Entity, 0, len(cl.Clusters))
	for _, rows := range cl.Clusters {
		if len(rows) == 0 {
			continue
		}
		e := Create(src, rows)
		e.ID = len(out)
		out = append(out, e)
	}
	return out
}

// Create fuses one cluster of rows into an entity.
func Create(src *Sources, rows []*cluster.Row) *Entity {
	e := &Entity{
		Class:    src.Class,
		Facts:    make(map[kb.PropertyID]dtype.Value),
		Rows:     rows,
		BOW:      make(map[string]float64),
		Implicit: make(map[kb.PropertyID]cluster.ImplicitAttr),
	}
	// Labels: distinct raw labels ordered by frequency (ties by first
	// appearance for determinism).
	labelCount := make(map[string]int)
	var labelOrder []string
	for _, r := range rows {
		if _, seen := labelCount[r.Label]; !seen {
			labelOrder = append(labelOrder, r.Label)
		}
		labelCount[r.Label]++
		strsim.MergeBinary(e.BOW, r.BOW)
	}
	sort.SliceStable(labelOrder, func(i, j int) bool {
		return labelCount[labelOrder[i]] > labelCount[labelOrder[j]]
	})
	e.Labels = labelOrder

	// Entity-level implicit attributes: sum the confidence scores of
	// equal implicit attributes over all rows' tables, divided by the
	// number of rows (§3.4 IMPLICIT_ATT).
	type accum struct {
		v   dtype.Value
		sum float64
	}
	impl := make(map[kb.PropertyID][]*accum)
	for _, r := range rows {
		for pid, ia := range r.Implicit {
			merged := false
			for _, a := range impl[pid] {
				if src.Thresholds.Equal(a.v, ia.Value) {
					a.sum += ia.Score
					merged = true
					break
				}
			}
			if !merged {
				impl[pid] = append(impl[pid], &accum{v: ia.Value, sum: ia.Score})
			}
		}
	}
	for pid, list := range impl {
		best := list[0]
		for _, a := range list[1:] {
			if a.sum > best.sum {
				best = a
			}
		}
		e.Implicit[pid] = cluster.ImplicitAttr{
			Value: best.v,
			Score: best.sum / float64(len(rows)),
		}
	}

	// Candidate values per property with their scores.
	type cand struct {
		v dtype.Value
		w float64
	}
	candidates := make(map[kb.PropertyID][]cand)
	for _, r := range rows {
		mapping := src.Mapping[r.Ref.Table]
		// Visit columns in ascending order: candidate value order feeds
		// grouping and tie-breaking, so it must be deterministic.
		cols := make([]int, 0, len(mapping))
		for c := range mapping {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		for _, col := range cols {
			pid := mapping[col]
			prop, ok := src.KB.Property(src.Class, pid)
			if !ok {
				continue
			}
			t := src.Corpus.Table(r.Ref.Table)
			if t == nil {
				continue
			}
			v, ok := dtype.Parse(t.Cell(r.Ref.Row, col), prop.Kind)
			if !ok {
				continue
			}
			w := src.score(r.Ref.Table, col)
			candidates[pid] = append(candidates[pid], cand{v: v, w: w})
		}
	}

	// Group → select → fuse.
	for pid, cands := range candidates {
		type group struct {
			values  []dtype.Value
			weights []float64
			total   float64
		}
		var groups []*group
		for _, c := range cands {
			placed := false
			for _, g := range groups {
				if src.Thresholds.Equal(g.values[0], c.v) {
					g.values = append(g.values, c.v)
					g.weights = append(g.weights, c.w)
					g.total += c.w
					placed = true
					break
				}
			}
			if !placed {
				groups = append(groups, &group{
					values:  []dtype.Value{c.v},
					weights: []float64{c.w},
					total:   c.w,
				})
			}
		}
		best := groups[0]
		for _, g := range groups[1:] {
			if g.total > best.total {
				best = g
			}
		}
		// Groups are built above and never empty, so a Fuse error can only
		// mean malformed candidate assembly; skip the fact rather than
		// crash — one bad property must not take a serving process down.
		if v, err := dtype.Fuse(best.values, best.weights); err == nil {
			e.Facts[pid] = v
		}
	}
	return e
}

// score returns the weight of a value from (table, col) under the
// configured scoring method.
func (src *Sources) score(table, col int) float64 {
	switch src.Scoring {
	case KBT:
		return src.kbtTrust(table, col)
	case Matching:
		if s, ok := src.MatchScores[ColKey{table, col}]; ok && s > 0 {
			return s
		}
		return 0.5
	default:
		return 1
	}
}

// kbtTrust estimates the trustworthiness of a table attribute as the
// Laplace-smoothed fraction of its values that agree with the knowledge
// base fact of the instance the row is matched to.
func (src *Sources) kbtTrust(table, col int) float64 {
	key := ColKey{table, col}
	if src.kbtCache == nil {
		src.kbtCache = make(map[ColKey]float64)
	}
	if v, ok := src.kbtCache[key]; ok {
		return v
	}
	trust := 0.5
	if src.RowInstance != nil {
		t := src.Corpus.Table(table)
		pid, mapped := src.Mapping[table][col]
		if t != nil && mapped {
			if prop, ok := src.KB.Property(src.Class, pid); ok {
				correct, total := 0, 0
				for r := 0; r < t.NumRows(); r++ {
					iid, ok := src.RowInstance[webtable.RowRef{Table: table, Row: r}]
					if !ok {
						continue
					}
					fact, ok := src.KB.Fact(iid, pid)
					if !ok {
						continue
					}
					v, ok := dtype.Parse(t.Cell(r, col), prop.Kind)
					if !ok {
						continue
					}
					total++
					if src.Thresholds.Equal(v, fact) {
						correct++
					}
				}
				trust = (float64(correct) + 1) / (float64(total) + 2)
			}
		}
	}
	src.kbtCache[key] = trust
	return trust
}
