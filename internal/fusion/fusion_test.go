package fusion

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/strsim"
	"repro/internal/webtable"
)

// buildScenario creates a tiny corpus of three tables all describing the
// same player with one conflicting position value.
func buildScenario() (*Sources, []*cluster.Row) {
	k := kb.New()
	tables := []*webtable.Table{
		{Headers: []string{"Player", "Pos", "Weight"},
			Cells: [][]string{{"John Example", "QB", "220"}}, LabelCol: 0},
		{Headers: []string{"Name", "Position"},
			Cells: [][]string{{"John Example", "QB"}}, LabelCol: 0},
		{Headers: []string{"Player", "Role", "Wt"},
			Cells: [][]string{{"J. Example", "WR", "224"}}, LabelCol: 0},
	}
	corpus := webtable.NewCorpus(tables)
	mapping := map[int]map[int]kb.PropertyID{
		0: {1: "dbo:position", 2: "dbo:weight"},
		1: {1: "dbo:position"},
		2: {1: "dbo:position", 2: "dbo:weight"},
	}
	src := &Sources{
		KB: k, Corpus: corpus, Class: kb.ClassGFPlayer,
		Mapping: mapping, Thresholds: dtype.DefaultThresholds(),
	}
	var rows []*cluster.Row
	for tid, t := range tables {
		label := t.Cell(0, 0)
		rows = append(rows, &cluster.Row{
			Ref:       webtable.RowRef{Table: tid, Row: 0},
			Label:     label,
			NormLabel: strsim.Normalize(label),
			BOW:       strsim.BinaryTermVector(label),
			Implicit:  map[kb.PropertyID]cluster.ImplicitAttr{},
			Values:    map[kb.PropertyID]dtype.Value{},
		})
	}
	return src, rows
}

func TestCreateMajorityFusion(t *testing.T) {
	src, rows := buildScenario()
	e := Create(src, rows)
	// Two QB votes beat one WR.
	if got := e.Facts["dbo:position"]; got.Str != "qb" {
		t.Errorf("position = %+v, want qb", got)
	}
	// Weights 220 and 224 are within the 5% tolerance: one group, fused
	// by weighted median.
	wgt := e.Facts["dbo:weight"]
	if wgt.Num != 220 && wgt.Num != 224 {
		t.Errorf("weight = %v, want one of the group members", wgt.Num)
	}
}

func TestCreateLabels(t *testing.T) {
	src, rows := buildScenario()
	e := Create(src, rows)
	if e.Label() != "John Example" {
		t.Errorf("primary label = %q (labels %v)", e.Label(), e.Labels)
	}
	if len(e.Labels) != 2 {
		t.Errorf("distinct labels = %v, want 2 (John Example, J. Example)", e.Labels)
	}
}

func TestCreateBOWUnion(t *testing.T) {
	src, rows := buildScenario()
	e := Create(src, rows)
	if e.BOW["john"] != 1 || e.BOW["example"] != 1 || e.BOW["j"] != 1 {
		t.Errorf("BOW union = %v", e.BOW)
	}
}

func TestCreateImplicitAggregation(t *testing.T) {
	src, rows := buildScenario()
	rows[0].Implicit = map[kb.PropertyID]cluster.ImplicitAttr{
		"dbo:team": {Value: dtype.NewRef("Patriots"), Score: 0.9},
	}
	rows[1].Implicit = map[kb.PropertyID]cluster.ImplicitAttr{
		"dbo:team": {Value: dtype.NewRef("Patriots"), Score: 0.6},
	}
	e := Create(src, rows)
	ia, ok := e.Implicit["dbo:team"]
	if !ok {
		t.Fatal("implicit attribute lost")
	}
	// (0.9 + 0.6) / 3 rows = 0.5
	if ia.Score < 0.49 || ia.Score > 0.51 {
		t.Errorf("entity implicit confidence = %v, want 0.5", ia.Score)
	}
	if ia.Value.Str != "patriots" {
		t.Errorf("implicit value = %+v", ia.Value)
	}
}

func TestMatchingScoringOutvotesMajority(t *testing.T) {
	src, rows := buildScenario()
	src.Scoring = Matching
	// Give the WR column overwhelming matching confidence and the QB
	// columns almost none.
	src.MatchScores = map[ColKey]float64{
		{Table: 0, Col: 1}: 0.05,
		{Table: 1, Col: 1}: 0.05,
		{Table: 2, Col: 1}: 0.95,
	}
	e := Create(src, rows)
	if got := e.Facts["dbo:position"]; got.Str != "wr" {
		t.Errorf("matching-scored position = %+v, want wr", got)
	}
}

func TestKBTScoring(t *testing.T) {
	src, rows := buildScenario()
	src.Scoring = KBT
	// Register the true instance in the KB and match rows to it; table 2
	// (the WR table) then has a low-trust position column.
	iid := src.KB.AddInstance(&kb.Instance{
		Class:  kb.ClassGFPlayer,
		Labels: []string{"John Example"},
		Facts: map[kb.PropertyID]dtype.Value{
			"dbo:position": dtype.NewNominal("QB"),
		},
	})
	src.RowInstance = map[webtable.RowRef]kb.InstanceID{
		{Table: 0, Row: 0}: iid,
		{Table: 1, Row: 0}: iid,
		{Table: 2, Row: 0}: iid,
	}
	e := Create(src, rows)
	if got := e.Facts["dbo:position"]; got.Str != "qb" {
		t.Errorf("KBT position = %+v, want qb", got)
	}
	// Trust of the agreeing column is higher than the disagreeing one.
	tGood := src.kbtTrust(0, 1)
	tBad := src.kbtTrust(2, 1)
	if tGood <= tBad {
		t.Errorf("KBT trust: good column %v should exceed bad column %v", tGood, tBad)
	}
}

func TestKBTWithoutCorrespondences(t *testing.T) {
	src, rows := buildScenario()
	src.Scoring = KBT
	e := Create(src, rows) // no RowInstance: uniform trust, majority wins
	if got := e.Facts["dbo:position"]; got.Str != "qb" {
		t.Errorf("KBT fallback position = %+v, want qb", got)
	}
}

func TestScoringMethodString(t *testing.T) {
	if Voting.String() != "VOTING" || KBT.String() != "KBT" || Matching.String() != "MATCHING" {
		t.Error("scoring method names")
	}
}

func TestCreateAll(t *testing.T) {
	src, rows := buildScenario()
	cl := &cluster.Clustering{
		Assign: map[webtable.RowRef]int{},
		Clusters: [][]*cluster.Row{
			{rows[0], rows[1]},
			{rows[2]},
			{}, // empty clusters are skipped
		},
	}
	entities := CreateAll(src, cl)
	if len(entities) != 2 {
		t.Fatalf("entities = %d, want 2", len(entities))
	}
	if entities[0].ID != 0 || entities[1].ID != 1 {
		t.Error("entity IDs should be sequential")
	}
	if len(entities[0].Rows) != 2 || len(entities[1].Rows) != 1 {
		t.Error("entity row membership")
	}
}

func TestCreateEmptyValues(t *testing.T) {
	// Rows with unmapped tables still produce an entity with labels only.
	src, rows := buildScenario()
	src.Mapping = map[int]map[int]kb.PropertyID{}
	e := Create(src, rows)
	if len(e.Facts) != 0 {
		t.Errorf("facts without mapping = %v", e.Facts)
	}
	if e.Label() == "" {
		t.Error("labels should survive")
	}
}

func BenchmarkCreate(b *testing.B) {
	src, rows := buildScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Create(src, rows)
	}
}
