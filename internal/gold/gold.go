// Package gold implements the annotated gold standard (§2.3): clusters of
// rows describing the same instance, new/existing flags with instance
// correspondences, attribute-to-property annotations, and per-cluster facts
// — plus the 3-fold cross-validation split that keeps homonym groups in one
// fold and spreads new clusters evenly.
//
// The paper's gold standard was annotated manually; ours is derived from
// the synthetic world's generation provenance, which records the entity
// behind every row and the property behind every column.
package gold

import (
	"fmt"
	"sort"

	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/match"
	"repro/internal/ml"
	"repro/internal/strsim"
	"repro/internal/webtable"
	"repro/internal/world"
)

// Cluster is one annotated cluster of rows that describe the same instance.
type Cluster struct {
	ID   int
	Rows []webtable.RowRef
	// IsNew marks clusters describing instances absent from the KB.
	IsNew bool
	// Instance is the corresponding KB instance for existing clusters.
	Instance kb.InstanceID
	// HomonymGroup is non-zero for clusters whose label collides with
	// other clusters ("homonym groups ... always placed in one fold").
	HomonymGroup int
	// Label is the entity's canonical label.
	Label string
	// Facts annotates, for every value group (cluster × property with at
	// least one candidate value in the tables), the correct value.
	Facts map[kb.PropertyID]dtype.Value
	// CorrectPresent marks the value groups whose correct value actually
	// appears among the candidate values in the web tables.
	CorrectPresent map[kb.PropertyID]bool
}

// Standard is the gold standard for one class.
type Standard struct {
	Class kb.ClassID
	// TableIDs lists the annotated tables.
	TableIDs []int
	// Attributes holds the attribute-to-property annotations for all
	// non-label columns of the annotated tables ("" = maps to nothing).
	Attributes []match.Example
	// Clusters holds the annotated row clusters.
	Clusters []*Cluster
	// RowCluster maps each annotated row to its cluster ID.
	RowCluster map[webtable.RowRef]int
}

// Stats summarizes the gold standard for Table 5.
type Stats struct {
	Tables, Attributes, Rows      int
	ExistingClusters, NewClusters int
	MatchedValues                 int
	ValueGroups                   int
	CorrectValuePresent           int
}

// FromWorld derives the gold standard of one class from generation
// provenance. maxTables bounds the number of annotated tables (0 = all).
func FromWorld(w *world.World, corpus *webtable.Corpus, class kb.ClassID, maxTables int) *Standard {
	g := &Standard{Class: class, RowCluster: make(map[webtable.RowRef]int)}
	th := dtype.DefaultThresholds()

	byEntity := make(map[int][]webtable.RowRef)
	entityTables := make(map[int]map[int]bool) // entity -> table set
	for _, t := range corpus.Tables {
		if t.Truth == nil || t.Truth.Class != class {
			continue
		}
		if maxTables > 0 && len(g.TableIDs) >= maxTables {
			break
		}
		g.TableIDs = append(g.TableIDs, t.ID)
		// Attribute annotations for all non-label columns. Column 0 is
		// the generated label column.
		for c, pid := range t.Truth.ColProperty {
			if c == 0 {
				continue
			}
			g.Attributes = append(g.Attributes, match.Example{Table: t, Col: c, Want: pid})
		}
		for r, uid := range t.Truth.RowEntity {
			if uid < 0 {
				continue
			}
			ref := webtable.RowRef{Table: t.ID, Row: r}
			byEntity[uid] = append(byEntity[uid], ref)
			if entityTables[uid] == nil {
				entityTables[uid] = make(map[int]bool)
			}
			entityTables[uid][t.ID] = true
		}
	}

	// Build clusters in deterministic entity order.
	uids := make([]int, 0, len(byEntity))
	for uid := range byEntity {
		uids = append(uids, uid)
	}
	sort.Ints(uids)
	labelCount := make(map[string]int)
	for _, uid := range uids {
		labelCount[strsim.Normalize(w.Entities[uid].Name)]++
	}
	for _, uid := range uids {
		e := w.Entities[uid]
		c := &Cluster{
			ID:             len(g.Clusters),
			Rows:           byEntity[uid],
			IsNew:          !e.InKB,
			Label:          e.Name,
			HomonymGroup:   e.HomonymGroup,
			Facts:          make(map[kb.PropertyID]dtype.Value),
			CorrectPresent: make(map[kb.PropertyID]bool),
		}
		if e.InKB {
			c.Instance = e.KBID
		}
		// Accidental homonyms (same normalized label, no intentional
		// group) also form a homonym group for fold assignment.
		if c.HomonymGroup == 0 && labelCount[strsim.Normalize(e.Name)] > 1 {
			c.HomonymGroup = -1 - int(labelHash(strsim.Normalize(e.Name)))
		}
		// Value groups: properties with at least one candidate value in
		// the cluster's rows (per provenance column mapping).
		for _, ref := range c.Rows {
			t := corpus.Table(ref.Table)
			for col, pid := range t.Truth.ColProperty {
				if pid == "" || col == 0 {
					continue
				}
				prop, ok := w.KB.Property(class, pid)
				if !ok {
					continue
				}
				cellV, ok := dtype.Parse(t.Cell(ref.Row, col), prop.Kind)
				if !ok {
					continue
				}
				truth, hasTruth := e.Truth[pid]
				if !hasTruth {
					continue
				}
				c.Facts[pid] = truth
				if th.Equal(cellV, truth) {
					c.CorrectPresent[pid] = true
				}
			}
		}
		for _, ref := range c.Rows {
			g.RowCluster[ref] = c.ID
		}
		g.Clusters = append(g.Clusters, c)
	}
	return g
}

func labelHash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h % (1 << 20)
}

// Stats computes the Table 5 row of this gold standard.
func (g *Standard) Stats(corpus *webtable.Corpus) Stats {
	var s Stats
	s.Tables = len(g.TableIDs)
	for _, ex := range g.Attributes {
		if ex.Want != "" {
			s.Attributes++
		}
	}
	rows := make(map[webtable.RowRef]bool)
	for _, c := range g.Clusters {
		if c.IsNew {
			s.NewClusters++
		} else {
			s.ExistingClusters++
		}
		for _, r := range c.Rows {
			rows[r] = true
		}
		s.ValueGroups += len(c.Facts)
		for range c.CorrectPresent {
			s.CorrectValuePresent++
		}
		// Matched values: cells of the cluster's rows in annotated
		// columns.
		for _, ref := range c.Rows {
			t := corpus.Table(ref.Table)
			if t == nil || t.Truth == nil {
				continue
			}
			for col, pid := range t.Truth.ColProperty {
				if pid != "" && col != 0 && t.Cell(ref.Row, col) != "" {
					s.MatchedValues++
				}
			}
		}
	}
	s.Rows = len(rows)
	return s
}

// Folds splits the clusters into k cross-validation folds, keeping homonym
// groups together and spreading new clusters evenly (§2.3). It returns
// cluster-index folds.
func (g *Standard) Folds(k int, seed int64) [][]int {
	return ml.Folds(len(g.Clusters), k, seed,
		func(i int) string {
			hg := g.Clusters[i].HomonymGroup
			if hg == 0 {
				return ""
			}
			return fmt.Sprintf("hom-%d", hg)
		},
		func(i int) bool { return g.Clusters[i].IsNew },
	)
}

// ClusterRows returns the row sets of the given cluster indices.
func (g *Standard) ClusterRows(idx []int) []webtable.RowRef {
	var out []webtable.RowRef
	for _, i := range idx {
		out = append(out, g.Clusters[i].Rows...)
	}
	return out
}

// Subset returns a gold standard restricted to the given cluster indices
// (e.g. one cross-validation fold). Cluster IDs are renumbered; table and
// attribute annotations are carried over unchanged.
func (g *Standard) Subset(idx []int) *Standard {
	sub := &Standard{
		Class:      g.Class,
		TableIDs:   g.TableIDs,
		Attributes: g.Attributes,
		RowCluster: make(map[webtable.RowRef]int),
	}
	for _, i := range idx {
		c := g.Clusters[i]
		nc := *c
		nc.ID = len(sub.Clusters)
		sub.Clusters = append(sub.Clusters, &nc)
		for _, r := range c.Rows {
			sub.RowCluster[r] = nc.ID
		}
	}
	return sub
}
