package gold

import (
	"sync"
	"testing"

	"repro/internal/kb"
	"repro/internal/webtable"
	"repro/internal/world"
)

var (
	once sync.Once
	tw   *world.World
	tc   *webtable.Corpus
)

func testData() (*world.World, *webtable.Corpus) {
	once.Do(func() {
		tw = world.Generate(world.DefaultConfig(0.2))
		tc = webtable.Synthesize(tw, webtable.DefaultSynthConfig(0.12))
	})
	return tw, tc
}

func TestFromWorldBasic(t *testing.T) {
	w, corpus := testData()
	for _, class := range kb.EvalClasses() {
		g := FromWorld(w, corpus, class, 0)
		if len(g.TableIDs) == 0 {
			t.Fatalf("%s: no gold tables", class)
		}
		if len(g.Clusters) == 0 {
			t.Fatalf("%s: no gold clusters", class)
		}
		hasNew, hasExisting := false, false
		for _, c := range g.Clusters {
			if len(c.Rows) == 0 {
				t.Fatalf("%s: empty cluster %d", class, c.ID)
			}
			if c.IsNew {
				hasNew = true
			} else {
				hasExisting = true
				if w.KB.Instance(c.Instance) == nil {
					t.Fatalf("%s: existing cluster %d has no instance", class, c.ID)
				}
			}
		}
		if !hasNew || !hasExisting {
			t.Errorf("%s: want both new and existing clusters (new=%v existing=%v)",
				class, hasNew, hasExisting)
		}
	}
}

func TestRowClusterConsistency(t *testing.T) {
	w, corpus := testData()
	g := FromWorld(w, corpus, kb.ClassGFPlayer, 0)
	for _, c := range g.Clusters {
		for _, ref := range c.Rows {
			if g.RowCluster[ref] != c.ID {
				t.Fatalf("RowCluster inconsistent for %v", ref)
			}
		}
	}
}

func TestClusterCorrespondencesMatchWorld(t *testing.T) {
	w, corpus := testData()
	g := FromWorld(w, corpus, kb.ClassSong, 0)
	for _, c := range g.Clusters {
		if c.IsNew {
			continue
		}
		e := w.ByKBID[c.Instance]
		if e == nil {
			t.Fatalf("cluster %d instance %d not in world", c.ID, c.Instance)
		}
		if e.Name != c.Label {
			t.Errorf("cluster label %q != entity name %q", c.Label, e.Name)
		}
	}
}

func TestFactsAndCorrectPresent(t *testing.T) {
	w, corpus := testData()
	g := FromWorld(w, corpus, kb.ClassGFPlayer, 0)
	groups, present := 0, 0
	for _, c := range g.Clusters {
		groups += len(c.Facts)
		present += len(c.CorrectPresent)
		for pid := range c.CorrectPresent {
			if _, ok := c.Facts[pid]; !ok {
				t.Fatal("CorrectPresent property missing from Facts")
			}
		}
	}
	if groups == 0 {
		t.Fatal("no value groups annotated")
	}
	// Most candidate values are correct in the synthetic corpus, so the
	// correct value should usually be present (as in Table 5).
	if float64(present)/float64(groups) < 0.6 {
		t.Errorf("correct-present ratio = %d/%d, suspiciously low", present, groups)
	}
}

func TestStats(t *testing.T) {
	w, corpus := testData()
	g := FromWorld(w, corpus, kb.ClassSong, 0)
	s := g.Stats(corpus)
	if s.Tables != len(g.TableIDs) {
		t.Errorf("stats tables = %d", s.Tables)
	}
	if s.ExistingClusters+s.NewClusters != len(g.Clusters) {
		t.Errorf("cluster counts = %d + %d != %d", s.ExistingClusters, s.NewClusters, len(g.Clusters))
	}
	if s.Rows == 0 || s.MatchedValues == 0 || s.ValueGroups == 0 {
		t.Errorf("degenerate stats: %+v", s)
	}
	if s.CorrectValuePresent > s.ValueGroups {
		t.Error("CorrectValuePresent cannot exceed ValueGroups")
	}
}

func TestFoldsKeepHomonymsTogether(t *testing.T) {
	w, corpus := testData()
	g := FromWorld(w, corpus, kb.ClassSong, 0)
	folds := g.Folds(3, 1)
	foldOf := make(map[int]int)
	total := 0
	for f, idx := range folds {
		for _, i := range idx {
			foldOf[i] = f
			total++
		}
	}
	if total != len(g.Clusters) {
		t.Fatalf("folds cover %d clusters, want %d", total, len(g.Clusters))
	}
	byGroup := make(map[int][]int)
	for i, c := range g.Clusters {
		if c.HomonymGroup != 0 {
			byGroup[c.HomonymGroup] = append(byGroup[c.HomonymGroup], i)
		}
	}
	checked := false
	for hg, members := range byGroup {
		if len(members) < 2 {
			continue
		}
		checked = true
		want := foldOf[members[0]]
		for _, m := range members[1:] {
			if foldOf[m] != want {
				t.Errorf("homonym group %d split across folds", hg)
			}
		}
	}
	if !checked {
		t.Log("no multi-member homonym groups in this sample")
	}
}

func TestFoldsSpreadNewClusters(t *testing.T) {
	w, corpus := testData()
	g := FromWorld(w, corpus, kb.ClassGFPlayer, 0)
	folds := g.Folds(3, 1)
	counts := make([]int, 3)
	for f, idx := range folds {
		for _, i := range idx {
			if g.Clusters[i].IsNew {
				counts[f]++
			}
		}
	}
	max, min := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	// Homonym grouping can skew the spread slightly; it must stay rough.
	if min == 0 && max > 2 {
		t.Errorf("new clusters unevenly spread: %v", counts)
	}
}

func TestMaxTables(t *testing.T) {
	w, corpus := testData()
	g := FromWorld(w, corpus, kb.ClassSong, 5)
	if len(g.TableIDs) > 5 {
		t.Errorf("maxTables not honored: %d", len(g.TableIDs))
	}
}

func TestAttributeAnnotations(t *testing.T) {
	w, corpus := testData()
	g := FromWorld(w, corpus, kb.ClassGFPlayer, 0)
	withProp, without := 0, 0
	for _, ex := range g.Attributes {
		if ex.Want == "" {
			without++
		} else {
			withProp++
		}
	}
	if withProp == 0 {
		t.Error("no positive attribute annotations")
	}
	if without == 0 {
		t.Error("no negative attribute annotations (extra columns)")
	}
}

func TestClusterRows(t *testing.T) {
	w, corpus := testData()
	g := FromWorld(w, corpus, kb.ClassSettlement, 0)
	rows := g.ClusterRows([]int{0})
	if len(rows) != len(g.Clusters[0].Rows) {
		t.Errorf("ClusterRows = %d rows", len(rows))
	}
}
