package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// batchCorpus generates n (doc, label) entries with a narrow alphabet so
// vocabulary collisions, repeat tokens, and multi-label docs all occur.
func batchCorpus(rng *rand.Rand, n int) []Entry {
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		doc := i
		if rng.Intn(5) == 0 && i > 0 {
			doc = rng.Intn(i) // multi-label doc
		}
		label := fmt.Sprintf("%s %s %d", randASCIIWord(rng), randASCIIWord(rng), i%13)
		if rng.Intn(7) == 0 {
			w := randASCIIWord(rng)
			label = w + " " + w // repeated token in one label
		}
		entries = append(entries, Entry{Doc: doc, Label: label})
	}
	return entries
}

// TestAddBatchEquivalentToAdds proves AddBatch produces byte-identical
// internal state to the same entries applied through serial Adds — postings,
// document frequencies, length buckets, and every sharded deletion
// neighborhood list, regardless of worker count.
func TestAddBatchEquivalentToAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	entries := batchCorpus(rng, 300)
	serial := New()
	for _, e := range entries {
		serial.Add(e.Doc, e.Label)
	}
	for _, workers := range []int{1, 4, 16} {
		batched := New()
		batched.AddBatch(entries, workers)
		if !reflect.DeepEqual(serial.postings, batched.postings) {
			t.Fatalf("workers=%d: postings differ", workers)
		}
		if !reflect.DeepEqual(serial.docFreq, batched.docFreq) {
			t.Fatalf("workers=%d: docFreq differs", workers)
		}
		if !reflect.DeepEqual(serial.labels, batched.labels) {
			t.Fatalf("workers=%d: labels differ", workers)
		}
		if !reflect.DeepEqual(serial.byLen, batched.byLen) {
			t.Fatalf("workers=%d: byLen buckets differ", workers)
		}
		if serial.numDocs != batched.numDocs {
			t.Fatalf("workers=%d: numDocs %d vs %d", workers, serial.numDocs, batched.numDocs)
		}
		for s := range serial.delNeighbors {
			a, b := serial.delNeighbors[s], batched.delNeighbors[s]
			if len(a) == 0 && len(b) == 0 {
				continue
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("workers=%d: deletion shard %d differs", workers, s)
			}
		}
	}
}

// TestAddBatchThenAdd proves a batch build composes with later incremental
// Adds exactly as an all-serial build does.
func TestAddBatchThenAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	entries := batchCorpus(rng, 200)
	serial := New()
	for _, e := range entries {
		serial.Add(e.Doc, e.Label)
	}
	mixed := New()
	mixed.AddBatch(entries[:150], 8)
	for _, e := range entries[150:] {
		mixed.Add(e.Doc, e.Label)
	}
	for i := 0; i < 100; i++ {
		q := randASCIIWord(rng) + " " + randASCIIWord(rng)
		if !reflect.DeepEqual(serial.Search(q, 10), mixed.Search(q, 10)) {
			t.Fatalf("Search(%q) differs between serial and batch+incremental builds", q)
		}
	}
}

// TestScoreDocsMatchesSearch proves the re-rank contract: scoring the full
// document universe through ScoreDocs and truncating to k reproduces
// Search's hits float-for-float, for exact, fuzzy, and mixed queries.
func TestScoreDocsMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ix := New()
	words := make([]string, 0, 250)
	allDocs := make([]int, 0, 250)
	for i := 0; i < 250; i++ {
		w := randASCIIWord(rng)
		words = append(words, w)
		ix.Add(i, fmt.Sprintf("%s %s %d", w, randASCIIWord(rng), i%11))
		allDocs = append(allDocs, i)
	}
	for i := 0; i < 300; i++ {
		w := words[rng.Intn(len(words))]
		q := w + " " + randASCIIWord(rng)
		if i%3 == 0 {
			q = w[:len(w)-1] + "zq " + w // misspelling → fuzzy path
		}
		want := ix.Search(q, 10)
		got := ix.ScoreDocs(q, allDocs)
		if len(got) > 10 {
			got = got[:10]
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("ScoreDocs(%q) truncated = %+v, Search = %+v", q, got, want)
		}
	}
}

// TestScoreDocsSubset proves scoring a candidate subset yields exactly the
// Search scores of its members (scores are per-doc, independent of the
// candidate set), and that unknown docs are dropped.
func TestScoreDocsSubset(t *testing.T) {
	ix := New()
	ix.Add(1, "green bay packers")
	ix.Add(2, "green day")
	ix.Add(3, "bay city")
	ix.Add(2, "green bay")
	full := ix.Search("green bay", 10)
	byDoc := make(map[int]float64, len(full))
	for _, h := range full {
		byDoc[h.Doc] = h.Score
	}
	got := ix.ScoreDocs("green bay", []int{3, 1, 99})
	if len(got) != 2 {
		t.Fatalf("subset hits = %+v, want docs 1 and 3 only", got)
	}
	for _, h := range got {
		if byDoc[h.Doc] != h.Score {
			t.Fatalf("doc %d scored %v via subset, %v via Search", h.Doc, h.Score, byDoc[h.Doc])
		}
	}
	sorted := sort.SliceIsSorted(got, func(i, j int) bool {
		if got[i].Score != got[j].Score {
			return got[i].Score > got[j].Score
		}
		return got[i].Doc < got[j].Doc
	})
	if !sorted {
		t.Fatalf("subset hits not in (score desc, doc asc) order: %+v", got)
	}
}

// TestScoreDocsEmpty covers the degenerate inputs.
func TestScoreDocsEmpty(t *testing.T) {
	ix := New()
	ix.Add(1, "alpha beta")
	if h := ix.ScoreDocs("", []int{1}); h != nil {
		t.Fatalf("empty query scored %+v", h)
	}
	if h := ix.ScoreDocs("alpha", nil); h != nil {
		t.Fatalf("empty candidates scored %+v", h)
	}
	if h := ix.ScoreDocs("zzzz qqqq", []int{1}); h != nil {
		t.Fatalf("zero-overlap query scored %+v", h)
	}
}
