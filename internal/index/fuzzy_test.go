package index

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randASCIIWord generates a lowercase word of 4-10 letters.
func randASCIIWord(rng *rand.Rand) string {
	n := 4 + rng.Intn(7)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(6)) // narrow alphabet → many near-misses
	}
	return string(b)
}

// TestFuzzyMatchesAgreeWithScan proves the deletion-neighborhood index
// retrieves exactly the distance-1 vocabulary the reference scan did (on
// ASCII vocabularies, where the scan's byte-length buckets are exact).
func TestFuzzyMatchesAgreeWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix := New()
	for i := 0; i < 400; i++ {
		ix.Add(i, randASCIIWord(rng)+" "+randASCIIWord(rng))
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for i := 0; i < 500; i++ {
		q := randASCIIWord(rng)
		if _, exact := ix.postings[q]; exact {
			continue // Search would not fall back for this token
		}
		fast := ix.fuzzyMatches(q)
		slow := ix.scanMatches(q)
		sort.Strings(slow)
		if len(fast) == 0 && len(slow) == 0 {
			continue
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("fuzzyMatches(%q) = %v, scan = %v", q, fast, slow)
		}
	}
}

// TestSearchEquivalentAcrossStrategies proves full Search retrieval is
// unchanged by the deletion index: same documents, same scores (to float
// accumulation-order rounding), same ranking.
func TestSearchEquivalentAcrossStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ix := New()
	words := make([]string, 0, 300)
	for i := 0; i < 300; i++ {
		w := randASCIIWord(rng)
		words = append(words, w)
		ix.Add(i, fmt.Sprintf("%s %s %d", w, randASCIIWord(rng), i%17))
	}
	for i := 0; i < 200; i++ {
		// Query with one misspelled vocabulary word, so the fuzzy path
		// carries the score.
		w := words[rng.Intn(len(words))]
		q := w[:len(w)-1] + "zq"
		got := ix.Search(q, 10)
		SetScanFuzzy(true)
		want := ix.Search(q, 10)
		SetScanFuzzy(false)
		if len(got) != len(want) {
			t.Fatalf("Search(%q): %d hits via deletion index, %d via scan", q, len(got), len(want))
		}
		for j := range got {
			if got[j].Doc != want[j].Doc {
				t.Fatalf("Search(%q) hit %d: doc %d vs %d", q, j, got[j].Doc, want[j].Doc)
			}
			if math.Abs(got[j].Score-want[j].Score) > 1e-9 {
				t.Fatalf("Search(%q) hit %d: score %v vs %v", q, j, got[j].Score, want[j].Score)
			}
		}
	}
}

// TestFuzzyUnicodeRecall documents the recall improvement over the scan:
// a one-rune substitution that changes the byte length by two (ASCII →
// 3-byte rune) was invisible to the byte-length-bucketed scan but is
// found by the deletion-neighborhood index.
func TestFuzzyUnicodeRecall(t *testing.T) {
	ix := New()
	ix.Add(1, "tok東yo sights")     // vocab token "tok東yo"
	hits := ix.Search("tokayo", 5) // one substitution away, byte length 6 vs 8
	found := false
	for _, h := range hits {
		if h.Doc == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("deletion index did not find the multi-byte substitution neighbor")
	}
}

// BenchmarkFuzzySearch measures a fuzzy (misspelled-token) search through
// both strategies at a realistic vocabulary size.
func BenchmarkFuzzySearch(b *testing.B) {
	ix := New()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 10000; i++ {
		ix.Add(i, randASCIIWord(rng)+" "+randASCIIWord(rng))
	}
	run := func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Search("abcdzq misspeled", 20)
		}
	}
	b.Run("deletion-index", run)
	b.Run("scan", func(b *testing.B) {
		SetScanFuzzy(true)
		defer SetScanFuzzy(false)
		run(b)
	})
}
