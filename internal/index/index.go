// Package index implements an inverted label index that substitutes for the
// Lucene index the paper uses in two places: blocking for row clustering
// (§3.2) and candidate selection for new detection (§3.4).
//
// Labels are tokenized with the shared normalizer; postings are scored with
// TF-IDF, and fuzzy retrieval additionally admits index tokens within edit
// distance one of any query token that has no exact posting of its own.
package index

import (
	"sort"
	"sync"
	"sync/atomic"
	"unicode/utf8"

	"repro/internal/par"
	"repro/internal/strsim"
)

// scanFuzzy, when set, forces Search's fuzzy fallback onto the reference
// length-bucketed vocabulary scan instead of the deletion-neighborhood
// posting index. It exists for benchmarks (quantifying the index win) and
// equivalence tests (both strategies must retrieve the same documents);
// production code never sets it.
var scanFuzzy atomic.Bool

// SetScanFuzzy toggles the reference fuzzy-scan fallback. Benchmark and
// test knob only.
func SetScanFuzzy(v bool) { scanFuzzy.Store(v) }

// Index is an inverted token index over string labels. Each added label is
// associated with a caller-chosen document ID; several labels may share an
// ID (e.g. an instance with multiple labels). All methods are safe for
// concurrent use: Add takes the write lock, Search/SearchLabels/Labels/Len
// take the read lock, so lookups may run while later batches add postings
// (each lookup observes a consistent snapshot — either before or after any
// concurrent Add, never a torn one).
type Index struct {
	mu       sync.RWMutex
	postings map[string][]posting // token -> docs containing it
	docFreq  map[string]int       // token -> number of distinct docs
	labels   map[int][]string     // doc -> normalized labels
	// byLen buckets the vocabulary by token length. It backs the
	// reference fuzzy scan (SetScanFuzzy), kept so benchmarks and
	// equivalence tests can compare strategies.
	byLen map[int][]string
	// delNeighbors is the single-deletion neighborhood index behind the
	// fuzzy fallback (the SymSpell construction): every vocabulary token
	// is filed under itself and each of its one-rune-deleted variants.
	// Two tokens within edit distance one necessarily share an entry
	// (equal, one a deletion of the other, or both deleting down to the
	// same variant on a substitution), so a query token reaches its
	// distance-1 vocabulary in O(|token|) map lookups plus a
	// bounded-Levenshtein verification per candidate — instead of
	// scanning every near-length vocabulary token. On ASCII vocabularies
	// it retrieves exactly the tokens the reference scan did; on
	// multi-byte vocabularies it additionally finds distance-1 tokens
	// whose byte length differs by more than one (which the
	// byte-length-bucketed scan missed).
	//
	// The index is sharded by the variant's first byte so AddBatch can
	// build it in parallel: each worker owns a disjoint set of shards, so
	// no shard is ever written by two goroutines. Shards need no locks of
	// their own — ix.mu already excludes every reader while any writer
	// (Add, AddBatch) holds the write lock.
	delNeighbors [delShardCount]map[string][]string
	numDocs      int
}

// delShardCount is the number of first-byte shards of delNeighbors.
const delShardCount = 256

// delShardOf returns the shard index of a deletion variant (the empty
// variant of single-rune tokens lands in shard 0).
func delShardOf(v string) int {
	if len(v) == 0 {
		return 0
	}
	return int(v[0])
}

// minFuzzyQueryLen is the minimum query-token byte length for the fuzzy
// fallback (an edit on a 1-3 letter token changes its identity).
const minFuzzyQueryLen = 4

type posting struct {
	doc int
	tf  float64
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[string][]posting),
		docFreq:  make(map[string]int),
		labels:   make(map[int][]string),
		byLen:    make(map[int][]string),
	}
}

// Add indexes label under the document ID doc.
func (ix *Index) Add(doc int, label string) {
	toks := strsim.Tokens(label)
	if len(toks) == 0 {
		return
	}
	norm := strsim.Normalize(label)
	counts := make(map[string]int, len(toks))
	for _, t := range toks {
		counts[t]++
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, seen := ix.labels[doc]; !seen {
		ix.numDocs++
	}
	ix.labels[doc] = append(ix.labels[doc], norm)
	// Insert tokens in sorted order: the byLen buckets drive the order of
	// the fuzzy pass's float accumulation, which must not inherit Go's
	// randomized map iteration (the repo's outputs are bit-identical
	// across runs).
	ts := make([]string, 0, len(counts))
	for t := range counts {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	for _, t := range ts {
		// Count each doc once per token for document frequency.
		ps := ix.postings[t]
		if len(ps) == 0 || ps[len(ps)-1].doc != doc {
			ix.docFreq[t]++
		}
		if len(ps) == 0 {
			ix.byLen[len(t)] = append(ix.byLen[len(t)], t)
			ix.indexDeletions(t)
		}
		ix.postings[t] = append(ps, posting{doc: doc, tf: float64(counts[t]) / float64(len(toks))})
	}
}

// Entry is one (document, label) pair for AddBatch.
type Entry struct {
	Doc   int
	Label string
}

// AddBatch indexes a batch of labels, equivalent to calling Add for each
// entry in order, with the deletion-neighborhood construction — the bulk of
// a cold build or warm restart — parallelized over the worker pool. The
// write lock is held for the whole batch, so concurrent readers observe
// either none or all of it.
//
// Determinism: postings, document frequencies, and byLen buckets are built
// serially in entry order, exactly as repeated Adds would. The parallel
// phases cannot reorder anything — variant computation is pure, and the
// per-shard insertion phase groups (variant, token) pairs by shard in token
// discovery order before handing each shard to exactly one worker, so every
// neighborhood list is byte-identical to the serial build's.
func (ix *Index) AddBatch(entries []Entry, workers int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()

	// Phase 1: serial postings build, collecting first-seen vocabulary.
	var newTokens []string
	for _, e := range entries {
		toks := strsim.Tokens(e.Label)
		if len(toks) == 0 {
			continue
		}
		norm := strsim.Normalize(e.Label)
		counts := make(map[string]int, len(toks))
		for _, t := range toks {
			counts[t]++
		}
		if _, seen := ix.labels[e.Doc]; !seen {
			ix.numDocs++
		}
		ix.labels[e.Doc] = append(ix.labels[e.Doc], norm)
		ts := make([]string, 0, len(counts))
		for t := range counts {
			ts = append(ts, t)
		}
		sort.Strings(ts)
		for _, t := range ts {
			ps := ix.postings[t]
			if len(ps) == 0 || ps[len(ps)-1].doc != e.Doc {
				ix.docFreq[t]++
			}
			if len(ps) == 0 {
				ix.byLen[len(t)] = append(ix.byLen[len(t)], t)
				newTokens = append(newTokens, t)
			}
			ix.postings[t] = append(ps, posting{doc: e.Doc, tf: float64(counts[t]) / float64(len(toks))})
		}
	}
	if len(newTokens) == 0 {
		return
	}

	// Phase 2: per-token deletion variants, computed in parallel (pure).
	variants := par.Map(workers, newTokens, func(_ int, t string) []string {
		return appendDeletionVariants(make([]string, 0, len(t)+1), t)
	})

	// Phase 3: group pairs by shard in token order, then insert with one
	// worker per shard (disjoint writes, no locks needed).
	var groups [delShardCount]struct{ vs, ts []string }
	for i, vs := range variants {
		for _, v := range vs {
			g := &groups[delShardOf(v)]
			g.vs = append(g.vs, v)
			g.ts = append(g.ts, newTokens[i])
		}
	}
	par.ForEach(workers, delShardCount, func(s int) {
		g := &groups[s]
		if len(g.vs) == 0 {
			return
		}
		if ix.delNeighbors[s] == nil {
			ix.delNeighbors[s] = make(map[string][]string, len(g.vs))
		}
		for i, v := range g.vs {
			ix.delNeighbors[s][v] = append(ix.delNeighbors[s][v], g.ts[i])
		}
	})
}

// Len returns the number of distinct documents in the index.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.numDocs
}

// Labels returns the normalized labels stored for doc. The returned slice
// is a copy the caller may retain while concurrent Adds extend the doc.
func (ix *Index) Labels(doc int) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ls := ix.labels[doc]
	if ls == nil {
		return nil
	}
	out := make([]string, len(ls))
	copy(out, ls)
	return out
}

// Hit is one search result: a document and its retrieval score.
type Hit struct {
	Doc   int
	Score float64
}

// Search returns up to k documents whose labels best match the query label,
// scored by TF-IDF over shared tokens. Query tokens without any exact
// posting fall back individually to a fuzzy pass that admits index tokens
// within Levenshtein distance 1 (distance-penalized), which keeps recall up
// for misspelled long-tail labels even when the query's other tokens match
// exactly — "beatles yeserday" still reaches the documents of "yesterday".
func (ix *Index) Search(label string, k int) []Hit {
	toks := strsim.Tokens(label)
	if len(toks) == 0 || k <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	scores := make(map[int]float64)
	for _, t := range toks {
		if ps, ok := ix.postings[t]; ok {
			idf := ix.idf(t)
			for _, p := range ps {
				scores[p.doc] += p.tf * idf
			}
			continue
		}
		// Fuzzy fallback, per token: admit vocabulary tokens within edit
		// distance one, distance-penalized. Short tokens are excluded
		// (an edit on a 1-3 letter token changes its identity). The
		// candidates come from the deletion-neighborhood index (or the
		// reference scan when SetScanFuzzy is forced), verified with the
		// bounded Levenshtein, and are accumulated in sorted order so
		// float summation order is fixed across runs.
		if len(t) < minFuzzyQueryLen {
			continue
		}
		for _, vt := range ix.fuzzyMatches(t) {
			idf := ix.idf(vt)
			for _, p := range ix.postings[vt] {
				scores[p.doc] += 0.5 * p.tf * idf
			}
		}
	}
	if len(scores) == 0 {
		return nil
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		hits = append(hits, Hit{Doc: doc, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// ScoreDocs scores the given candidate documents against the query label
// with exactly the TF-IDF computation Search uses, returning every
// candidate with a nonzero score sorted by (score desc, doc asc), without
// truncation. It exists as the re-rank half of LSH retrieval: when the
// candidate set covers Search's top-k documents, the truncated ScoreDocs
// ranking is float-for-float identical to Search's, because each document's
// score is accumulated in the same order (query tokens in order, sorted
// fuzzy variants within a token, the document's labels in insertion order)
// with the same tf and idf factors. Documents not in the index and
// zero-overlap candidates are omitted. docs must not contain duplicates.
func (ix *Index) ScoreDocs(label string, docs []int) []Hit {
	toks := strsim.Tokens(label)
	if len(toks) == 0 || len(docs) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	// Expand the query once: each contribution is an index token paired
	// with its weight factors, in Search's accumulation order.
	type contrib struct {
		tok   string
		idf   float64
		fuzzy bool
	}
	contribs := make([]contrib, 0, len(toks))
	for _, t := range toks {
		if _, ok := ix.postings[t]; ok {
			contribs = append(contribs, contrib{tok: t, idf: ix.idf(t)})
			continue
		}
		if len(t) < minFuzzyQueryLen {
			continue
		}
		for _, vt := range ix.fuzzyMatches(t) {
			contribs = append(contribs, contrib{tok: vt, idf: ix.idf(vt), fuzzy: true})
		}
	}
	if len(contribs) == 0 {
		return nil
	}

	hits := make([]Hit, 0, len(docs))
	for _, d := range docs {
		labels := ix.labels[d]
		if len(labels) == 0 {
			continue
		}
		score, found := 0.0, false
		for _, c := range contribs {
			for _, l := range labels {
				lt := strsim.PrepareCached(l).Tokens
				n := 0
				for _, x := range lt {
					if x == c.tok {
						n++
					}
				}
				if n == 0 {
					continue
				}
				// The same floats Add stored in the posting: tf is
				// count/len for this label, multiplied in Search's order.
				tf := float64(n) / float64(len(lt))
				if c.fuzzy {
					score += 0.5 * tf * c.idf
				} else {
					score += tf * c.idf
				}
				found = true
			}
		}
		if found {
			hits = append(hits, Hit{Doc: d, Score: score})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	return hits
}

// DefaultRareCap is the posting-list length bound of AppendRareDocs used
// by the LSH retrieval paths. Tokens whose document frequency stays within
// the cap are exactly the high-IDF tokens whose single-token matches can
// rank above the relative score floors downstream — and whose posting
// walks are cheap by the same definition.
const DefaultRareCap = 64

// AppendRareDocs appends to dst every document posted under a query token
// whose posting list holds at most maxDocs documents, fuzzy-expanding
// query tokens without an exact posting exactly as Search does. It is the
// complement of MinHash retrieval: a match sharing only one rare token
// with the query sits at a low Jaccard similarity, where banding collides
// rarely, yet can carry enough IDF mass to belong in the exact top hits.
// IDF is invisible to MinHash signatures, so those matches are retrieved
// directly from the (bounded, by construction) postings instead. Common
// tokens — the ones whose posting lists grow with the corpus — stay
// excluded; matches through them need several shared tokens to rank,
// which is the high-similarity regime banding does cover.
//
// The result may contain duplicates and is unsorted; callers union it
// with the LSH candidates via SortDedupDocs before ScoreDocs.
func (ix *Index) AppendRareDocs(dst []int, label string, maxDocs int) []int {
	toks := strsim.Tokens(label)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, t := range toks {
		if ps, ok := ix.postings[t]; ok {
			if len(ps) <= maxDocs {
				for _, p := range ps {
					dst = append(dst, p.doc)
				}
			}
			continue
		}
		if len(t) < minFuzzyQueryLen {
			continue
		}
		for _, vt := range ix.fuzzyMatches(t) {
			if ps := ix.postings[vt]; len(ps) <= maxDocs {
				for _, p := range ps {
					dst = append(dst, p.doc)
				}
			}
		}
	}
	return dst
}

// SortDedupDocs sorts docs ascending and removes duplicates in place,
// returning the shortened slice — the candidate-set union step between
// retrieval (LSH buckets plus rare-token postings) and ScoreDocs, which
// requires duplicate-free input.
func SortDedupDocs(docs []int) []int {
	if len(docs) < 2 {
		return docs
	}
	sort.Ints(docs)
	n := 1
	for _, d := range docs[1:] {
		if d != docs[n-1] {
			docs[n] = d
			n++
		}
	}
	return docs[:n]
}

// SearchLabels returns the distinct normalized labels of the top-k hits for
// the query. Blocking uses this to assign rows to label blocks.
func (ix *Index) SearchLabels(label string, k int) []string {
	hits := ix.Search(label, k)
	seen := make(map[string]bool)
	var out []string
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, h := range hits {
		for _, l := range ix.labels[h.Doc] {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// appendDeletionVariants appends t's neighborhood entries — t itself and
// each of its one-rune deletions — to dst. Adjacent equal runes produce
// identical variants and are emitted once.
func appendDeletionVariants(dst []string, t string) []string {
	dst = append(dst, t)
	var prev rune = -1
	for bi, r := range t {
		if r == prev {
			continue
		}
		prev = r
		dst = append(dst, t[:bi]+t[bi+utf8.RuneLen(r):])
	}
	return dst
}

// indexDeletions files a new vocabulary token under itself and each of
// its one-rune deletions. The caller holds the write lock.
func (ix *Index) indexDeletions(t string) {
	for _, v := range appendDeletionVariants(nil, t) {
		s := delShardOf(v)
		if ix.delNeighbors[s] == nil {
			ix.delNeighbors[s] = make(map[string][]string, 64)
		}
		ix.delNeighbors[s][v] = append(ix.delNeighbors[s][v], t)
	}
}

// fuzzyMatches returns the vocabulary tokens within edit distance exactly
// one of query token t, sorted (fixed float accumulation order for the
// caller). With SetScanFuzzy forced it runs the reference length-bucketed
// scan instead, in the scan's historical bucket order. The caller holds
// the read lock.
func (ix *Index) fuzzyMatches(t string) []string {
	if scanFuzzy.Load() {
		return ix.scanMatches(t)
	}
	// Gather candidate tokens sharing a deletion-neighborhood entry with
	// t: the entry of t itself (insertions into t and t's own postings —
	// the latter cannot occur, Search only falls back for tokens without
	// postings) and the entries of t's one-rune deletions (deletions and
	// substitutions).
	var cand []string
	collect := func(list []string) {
		for _, vt := range list {
			dup := false
			for _, c := range cand {
				if c == vt {
					dup = true
					break
				}
			}
			if !dup {
				cand = append(cand, vt)
			}
		}
	}
	collect(ix.delNeighbors[delShardOf(t)][t])
	vbuf := make([]byte, 0, 64)
	var prev rune = -1
	for bi, r := range t {
		if r == prev {
			continue
		}
		prev = r
		vbuf = append(vbuf[:0], t[:bi]...)
		vbuf = append(vbuf, t[bi+utf8.RuneLen(r):]...)
		s := 0
		if len(vbuf) > 0 {
			s = int(vbuf[0])
		}
		// string(vbuf) in a map lookup does not allocate.
		collect(ix.delNeighbors[s][string(vbuf)])
	}
	// Verify: sharing a deletion variant bounds the distance by two, not
	// one ("ab" and "ba" share "a"), so each candidate is checked with
	// the bounded kernel.
	matches := cand[:0]
	for _, vt := range cand {
		if vt != t && strsim.LevenshteinBounded(vt, t, 1) == 1 {
			matches = append(matches, vt)
		}
	}
	sort.Strings(matches)
	return matches
}

// scanMatches is the pre-optimization fuzzy fallback: scan the
// byte-length buckets within ±1 of the query token and keep distance-1
// tokens, in bucket insertion order.
func (ix *Index) scanMatches(t string) []string {
	var out []string
	for l := len(t) - 1; l <= len(t)+1; l++ {
		for _, vt := range ix.byLen[l] {
			if strsim.LevenshteinBounded(vt, t, 1) == 1 {
				out = append(out, vt)
			}
		}
	}
	return out
}

func (ix *Index) idf(tok string) float64 {
	df := ix.docFreq[tok]
	if df == 0 {
		return 0
	}
	// Smoothed IDF; rare tokens weigh more.
	return 1 + float64(ix.numDocs)/float64(df+1)
}
