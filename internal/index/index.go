// Package index implements an inverted label index that substitutes for the
// Lucene index the paper uses in two places: blocking for row clustering
// (§3.2) and candidate selection for new detection (§3.4).
//
// Labels are tokenized with the shared normalizer; postings are scored with
// TF-IDF, and fuzzy retrieval additionally admits tokens within edit
// distance one for labels with no exact-token overlap.
package index

import (
	"sort"
	"sync"

	"repro/internal/strsim"
)

// Index is an inverted token index over string labels. Each added label is
// associated with a caller-chosen document ID; several labels may share an
// ID (e.g. an instance with multiple labels). All methods are safe for
// concurrent use: Add takes the write lock, Search/SearchLabels/Labels/Len
// take the read lock, so lookups may run while later batches add postings
// (each lookup observes a consistent snapshot — either before or after any
// concurrent Add, never a torn one).
type Index struct {
	mu       sync.RWMutex
	postings map[string][]posting // token -> docs containing it
	docFreq  map[string]int       // token -> number of distinct docs
	labels   map[int][]string     // doc -> normalized labels
	numDocs  int
}

type posting struct {
	doc int
	tf  float64
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[string][]posting),
		docFreq:  make(map[string]int),
		labels:   make(map[int][]string),
	}
}

// Add indexes label under the document ID doc.
func (ix *Index) Add(doc int, label string) {
	toks := strsim.Tokens(label)
	if len(toks) == 0 {
		return
	}
	norm := strsim.Normalize(label)
	counts := make(map[string]int, len(toks))
	for _, t := range toks {
		counts[t]++
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, seen := ix.labels[doc]; !seen {
		ix.numDocs++
	}
	ix.labels[doc] = append(ix.labels[doc], norm)
	for t, c := range counts {
		// Count each doc once per token for document frequency.
		ps := ix.postings[t]
		if len(ps) == 0 || ps[len(ps)-1].doc != doc {
			ix.docFreq[t]++
		}
		ix.postings[t] = append(ps, posting{doc: doc, tf: float64(c) / float64(len(toks))})
	}
}

// Len returns the number of distinct documents in the index.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.numDocs
}

// Labels returns the normalized labels stored for doc. The returned slice
// is a copy the caller may retain while concurrent Adds extend the doc.
func (ix *Index) Labels(doc int) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ls := ix.labels[doc]
	if ls == nil {
		return nil
	}
	out := make([]string, len(ls))
	copy(out, ls)
	return out
}

// Hit is one search result: a document and its retrieval score.
type Hit struct {
	Doc   int
	Score float64
}

// Search returns up to k documents whose labels best match the query label,
// scored by TF-IDF over shared tokens. If no document shares an exact token
// with the query, a fuzzy pass admits index tokens within Levenshtein
// distance 1 of a query token (distance-penalized), which keeps recall up
// for misspelled long-tail labels.
func (ix *Index) Search(label string, k int) []Hit {
	toks := strsim.Tokens(label)
	if len(toks) == 0 || k <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	scores := make(map[int]float64)
	matched := false
	for _, t := range toks {
		if ps, ok := ix.postings[t]; ok {
			matched = true
			idf := ix.idf(t)
			for _, p := range ps {
				scores[p.doc] += p.tf * idf
			}
		}
	}
	if !matched {
		// Fuzzy fallback: scan the vocabulary for near tokens. Short
		// tokens are excluded (an edit on a 1-3 letter token changes its
		// identity), and the vocabulary scan is bounded by token length
		// difference before paying for an edit-distance computation.
		for _, t := range toks {
			if len(t) < 4 {
				continue
			}
			for vt, ps := range ix.postings {
				if absInt(len(vt)-len(t)) > 1 {
					continue
				}
				if strsim.Levenshtein(vt, t) == 1 {
					idf := ix.idf(vt)
					for _, p := range ps {
						scores[p.doc] += 0.5 * p.tf * idf
					}
				}
			}
		}
	}
	if len(scores) == 0 {
		return nil
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		hits = append(hits, Hit{Doc: doc, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// SearchLabels returns the distinct normalized labels of the top-k hits for
// the query. Blocking uses this to assign rows to label blocks.
func (ix *Index) SearchLabels(label string, k int) []string {
	hits := ix.Search(label, k)
	seen := make(map[string]bool)
	var out []string
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, h := range hits {
		for _, l := range ix.labels[h.Doc] {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

func (ix *Index) idf(tok string) float64 {
	df := ix.docFreq[tok]
	if df == 0 {
		return 0
	}
	// Smoothed IDF; rare tokens weigh more.
	return 1 + float64(ix.numDocs)/float64(df+1)
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
