// Package index implements an inverted label index that substitutes for the
// Lucene index the paper uses in two places: blocking for row clustering
// (§3.2) and candidate selection for new detection (§3.4).
//
// Labels are tokenized with the shared normalizer; postings are scored with
// TF-IDF, and fuzzy retrieval additionally admits index tokens within edit
// distance one of any query token that has no exact posting of its own.
package index

import (
	"sort"
	"sync"
	"sync/atomic"
	"unicode/utf8"

	"repro/internal/strsim"
)

// scanFuzzy, when set, forces Search's fuzzy fallback onto the reference
// length-bucketed vocabulary scan instead of the deletion-neighborhood
// posting index. It exists for benchmarks (quantifying the index win) and
// equivalence tests (both strategies must retrieve the same documents);
// production code never sets it.
var scanFuzzy atomic.Bool

// SetScanFuzzy toggles the reference fuzzy-scan fallback. Benchmark and
// test knob only.
func SetScanFuzzy(v bool) { scanFuzzy.Store(v) }

// Index is an inverted token index over string labels. Each added label is
// associated with a caller-chosen document ID; several labels may share an
// ID (e.g. an instance with multiple labels). All methods are safe for
// concurrent use: Add takes the write lock, Search/SearchLabels/Labels/Len
// take the read lock, so lookups may run while later batches add postings
// (each lookup observes a consistent snapshot — either before or after any
// concurrent Add, never a torn one).
type Index struct {
	mu       sync.RWMutex
	postings map[string][]posting // token -> docs containing it
	docFreq  map[string]int       // token -> number of distinct docs
	labels   map[int][]string     // doc -> normalized labels
	// byLen buckets the vocabulary by token length. It backs the
	// reference fuzzy scan (SetScanFuzzy), kept so benchmarks and
	// equivalence tests can compare strategies.
	byLen map[int][]string
	// delNeighbors is the single-deletion neighborhood index behind the
	// fuzzy fallback (the SymSpell construction): every vocabulary token
	// is filed under itself and each of its one-rune-deleted variants.
	// Two tokens within edit distance one necessarily share an entry
	// (equal, one a deletion of the other, or both deleting down to the
	// same variant on a substitution), so a query token reaches its
	// distance-1 vocabulary in O(|token|) map lookups plus a
	// bounded-Levenshtein verification per candidate — instead of
	// scanning every near-length vocabulary token. On ASCII vocabularies
	// it retrieves exactly the tokens the reference scan did; on
	// multi-byte vocabularies it additionally finds distance-1 tokens
	// whose byte length differs by more than one (which the
	// byte-length-bucketed scan missed).
	delNeighbors map[string][]string
	numDocs      int
}

// minFuzzyQueryLen is the minimum query-token byte length for the fuzzy
// fallback (an edit on a 1-3 letter token changes its identity).
const minFuzzyQueryLen = 4

type posting struct {
	doc int
	tf  float64
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings:     make(map[string][]posting),
		docFreq:      make(map[string]int),
		labels:       make(map[int][]string),
		byLen:        make(map[int][]string),
		delNeighbors: make(map[string][]string),
	}
}

// Add indexes label under the document ID doc.
func (ix *Index) Add(doc int, label string) {
	toks := strsim.Tokens(label)
	if len(toks) == 0 {
		return
	}
	norm := strsim.Normalize(label)
	counts := make(map[string]int, len(toks))
	for _, t := range toks {
		counts[t]++
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, seen := ix.labels[doc]; !seen {
		ix.numDocs++
	}
	ix.labels[doc] = append(ix.labels[doc], norm)
	// Insert tokens in sorted order: the byLen buckets drive the order of
	// the fuzzy pass's float accumulation, which must not inherit Go's
	// randomized map iteration (the repo's outputs are bit-identical
	// across runs).
	ts := make([]string, 0, len(counts))
	for t := range counts {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	for _, t := range ts {
		// Count each doc once per token for document frequency.
		ps := ix.postings[t]
		if len(ps) == 0 || ps[len(ps)-1].doc != doc {
			ix.docFreq[t]++
		}
		if len(ps) == 0 {
			ix.byLen[len(t)] = append(ix.byLen[len(t)], t)
			ix.indexDeletions(t)
		}
		ix.postings[t] = append(ps, posting{doc: doc, tf: float64(counts[t]) / float64(len(toks))})
	}
}

// Len returns the number of distinct documents in the index.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.numDocs
}

// Labels returns the normalized labels stored for doc. The returned slice
// is a copy the caller may retain while concurrent Adds extend the doc.
func (ix *Index) Labels(doc int) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ls := ix.labels[doc]
	if ls == nil {
		return nil
	}
	out := make([]string, len(ls))
	copy(out, ls)
	return out
}

// Hit is one search result: a document and its retrieval score.
type Hit struct {
	Doc   int
	Score float64
}

// Search returns up to k documents whose labels best match the query label,
// scored by TF-IDF over shared tokens. Query tokens without any exact
// posting fall back individually to a fuzzy pass that admits index tokens
// within Levenshtein distance 1 (distance-penalized), which keeps recall up
// for misspelled long-tail labels even when the query's other tokens match
// exactly — "beatles yeserday" still reaches the documents of "yesterday".
func (ix *Index) Search(label string, k int) []Hit {
	toks := strsim.Tokens(label)
	if len(toks) == 0 || k <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	scores := make(map[int]float64)
	for _, t := range toks {
		if ps, ok := ix.postings[t]; ok {
			idf := ix.idf(t)
			for _, p := range ps {
				scores[p.doc] += p.tf * idf
			}
			continue
		}
		// Fuzzy fallback, per token: admit vocabulary tokens within edit
		// distance one, distance-penalized. Short tokens are excluded
		// (an edit on a 1-3 letter token changes its identity). The
		// candidates come from the deletion-neighborhood index (or the
		// reference scan when SetScanFuzzy is forced), verified with the
		// bounded Levenshtein, and are accumulated in sorted order so
		// float summation order is fixed across runs.
		if len(t) < minFuzzyQueryLen {
			continue
		}
		for _, vt := range ix.fuzzyMatches(t) {
			idf := ix.idf(vt)
			for _, p := range ix.postings[vt] {
				scores[p.doc] += 0.5 * p.tf * idf
			}
		}
	}
	if len(scores) == 0 {
		return nil
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		hits = append(hits, Hit{Doc: doc, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// SearchLabels returns the distinct normalized labels of the top-k hits for
// the query. Blocking uses this to assign rows to label blocks.
func (ix *Index) SearchLabels(label string, k int) []string {
	hits := ix.Search(label, k)
	seen := make(map[string]bool)
	var out []string
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, h := range hits {
		for _, l := range ix.labels[h.Doc] {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// indexDeletions files a new vocabulary token under itself and each of
// its one-rune deletions. Adjacent equal runes produce identical variants
// and are emitted once. The caller holds the write lock.
func (ix *Index) indexDeletions(t string) {
	ix.delNeighbors[t] = append(ix.delNeighbors[t], t)
	var prev rune = -1
	for bi, r := range t {
		if r == prev {
			continue
		}
		prev = r
		v := t[:bi] + t[bi+utf8.RuneLen(r):]
		ix.delNeighbors[v] = append(ix.delNeighbors[v], t)
	}
}

// fuzzyMatches returns the vocabulary tokens within edit distance exactly
// one of query token t, sorted (fixed float accumulation order for the
// caller). With SetScanFuzzy forced it runs the reference length-bucketed
// scan instead, in the scan's historical bucket order. The caller holds
// the read lock.
func (ix *Index) fuzzyMatches(t string) []string {
	if scanFuzzy.Load() {
		return ix.scanMatches(t)
	}
	// Gather candidate tokens sharing a deletion-neighborhood entry with
	// t: the entry of t itself (insertions into t and t's own postings —
	// the latter cannot occur, Search only falls back for tokens without
	// postings) and the entries of t's one-rune deletions (deletions and
	// substitutions).
	var cand []string
	collect := func(list []string) {
		for _, vt := range list {
			dup := false
			for _, c := range cand {
				if c == vt {
					dup = true
					break
				}
			}
			if !dup {
				cand = append(cand, vt)
			}
		}
	}
	collect(ix.delNeighbors[t])
	vbuf := make([]byte, 0, 64)
	var prev rune = -1
	for bi, r := range t {
		if r == prev {
			continue
		}
		prev = r
		vbuf = append(vbuf[:0], t[:bi]...)
		vbuf = append(vbuf, t[bi+utf8.RuneLen(r):]...)
		collect(ix.delNeighbors[string(vbuf)])
	}
	// Verify: sharing a deletion variant bounds the distance by two, not
	// one ("ab" and "ba" share "a"), so each candidate is checked with
	// the bounded kernel.
	matches := cand[:0]
	for _, vt := range cand {
		if vt != t && strsim.LevenshteinBounded(vt, t, 1) == 1 {
			matches = append(matches, vt)
		}
	}
	sort.Strings(matches)
	return matches
}

// scanMatches is the pre-optimization fuzzy fallback: scan the
// byte-length buckets within ±1 of the query token and keep distance-1
// tokens, in bucket insertion order.
func (ix *Index) scanMatches(t string) []string {
	var out []string
	for l := len(t) - 1; l <= len(t)+1; l++ {
		for _, vt := range ix.byLen[l] {
			if strsim.LevenshteinBounded(vt, t, 1) == 1 {
				out = append(out, vt)
			}
		}
	}
	return out
}

func (ix *Index) idf(tok string) float64 {
	df := ix.docFreq[tok]
	if df == 0 {
		return 0
	}
	// Smoothed IDF; rare tokens weigh more.
	return 1 + float64(ix.numDocs)/float64(df+1)
}
