// Package index implements an inverted label index that substitutes for the
// Lucene index the paper uses in two places: blocking for row clustering
// (§3.2) and candidate selection for new detection (§3.4).
//
// Labels are tokenized with the shared normalizer; postings are scored with
// TF-IDF, and fuzzy retrieval additionally admits index tokens within edit
// distance one of any query token that has no exact posting of its own.
package index

import (
	"sort"
	"sync"

	"repro/internal/strsim"
)

// Index is an inverted token index over string labels. Each added label is
// associated with a caller-chosen document ID; several labels may share an
// ID (e.g. an instance with multiple labels). All methods are safe for
// concurrent use: Add takes the write lock, Search/SearchLabels/Labels/Len
// take the read lock, so lookups may run while later batches add postings
// (each lookup observes a consistent snapshot — either before or after any
// concurrent Add, never a torn one).
type Index struct {
	mu       sync.RWMutex
	postings map[string][]posting // token -> docs containing it
	docFreq  map[string]int       // token -> number of distinct docs
	labels   map[int][]string     // doc -> normalized labels
	// byLen buckets the vocabulary by token length so the per-token fuzzy
	// fallback scans only near-length tokens instead of the whole
	// vocabulary (the fallback sits on the hot Candidates path).
	byLen   map[int][]string
	numDocs int
}

type posting struct {
	doc int
	tf  float64
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[string][]posting),
		docFreq:  make(map[string]int),
		labels:   make(map[int][]string),
		byLen:    make(map[int][]string),
	}
}

// Add indexes label under the document ID doc.
func (ix *Index) Add(doc int, label string) {
	toks := strsim.Tokens(label)
	if len(toks) == 0 {
		return
	}
	norm := strsim.Normalize(label)
	counts := make(map[string]int, len(toks))
	for _, t := range toks {
		counts[t]++
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, seen := ix.labels[doc]; !seen {
		ix.numDocs++
	}
	ix.labels[doc] = append(ix.labels[doc], norm)
	// Insert tokens in sorted order: the byLen buckets drive the order of
	// the fuzzy pass's float accumulation, which must not inherit Go's
	// randomized map iteration (the repo's outputs are bit-identical
	// across runs).
	ts := make([]string, 0, len(counts))
	for t := range counts {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	for _, t := range ts {
		// Count each doc once per token for document frequency.
		ps := ix.postings[t]
		if len(ps) == 0 || ps[len(ps)-1].doc != doc {
			ix.docFreq[t]++
		}
		if len(ps) == 0 {
			ix.byLen[len(t)] = append(ix.byLen[len(t)], t)
		}
		ix.postings[t] = append(ps, posting{doc: doc, tf: float64(counts[t]) / float64(len(toks))})
	}
}

// Len returns the number of distinct documents in the index.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.numDocs
}

// Labels returns the normalized labels stored for doc. The returned slice
// is a copy the caller may retain while concurrent Adds extend the doc.
func (ix *Index) Labels(doc int) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ls := ix.labels[doc]
	if ls == nil {
		return nil
	}
	out := make([]string, len(ls))
	copy(out, ls)
	return out
}

// Hit is one search result: a document and its retrieval score.
type Hit struct {
	Doc   int
	Score float64
}

// Search returns up to k documents whose labels best match the query label,
// scored by TF-IDF over shared tokens. Query tokens without any exact
// posting fall back individually to a fuzzy pass that admits index tokens
// within Levenshtein distance 1 (distance-penalized), which keeps recall up
// for misspelled long-tail labels even when the query's other tokens match
// exactly — "beatles yeserday" still reaches the documents of "yesterday".
func (ix *Index) Search(label string, k int) []Hit {
	toks := strsim.Tokens(label)
	if len(toks) == 0 || k <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	scores := make(map[int]float64)
	for _, t := range toks {
		if ps, ok := ix.postings[t]; ok {
			idf := ix.idf(t)
			for _, p := range ps {
				scores[p.doc] += p.tf * idf
			}
			continue
		}
		// Fuzzy fallback, per token: scan the near-length vocabulary
		// buckets for tokens within edit distance one. Short tokens are
		// excluded (an edit on a 1-3 letter token changes its identity).
		if len(t) < 4 {
			continue
		}
		for l := len(t) - 1; l <= len(t)+1; l++ {
			for _, vt := range ix.byLen[l] {
				if strsim.Levenshtein(vt, t) != 1 {
					continue
				}
				idf := ix.idf(vt)
				for _, p := range ix.postings[vt] {
					scores[p.doc] += 0.5 * p.tf * idf
				}
			}
		}
	}
	if len(scores) == 0 {
		return nil
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		hits = append(hits, Hit{Doc: doc, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// SearchLabels returns the distinct normalized labels of the top-k hits for
// the query. Blocking uses this to assign rows to label blocks.
func (ix *Index) SearchLabels(label string, k int) []string {
	hits := ix.Search(label, k)
	seen := make(map[string]bool)
	var out []string
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, h := range hits {
		for _, l := range ix.labels[h.Doc] {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

func (ix *Index) idf(tok string) float64 {
	df := ix.docFreq[tok]
	if df == 0 {
		return 0
	}
	// Smoothed IDF; rare tokens weigh more.
	return 1 + float64(ix.numDocs)/float64(df+1)
}
