package index

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestAddAndSearchExact(t *testing.T) {
	ix := New()
	ix.Add(1, "Tom Brady")
	ix.Add(2, "Peyton Manning")
	ix.Add(3, "Eli Manning")

	hits := ix.Search("Tom Brady", 10)
	if len(hits) == 0 || hits[0].Doc != 1 {
		t.Fatalf("exact search hits = %v", hits)
	}
	hits = ix.Search("Manning", 10)
	if len(hits) != 2 {
		t.Fatalf("shared-token search = %v, want 2 hits", hits)
	}
}

func TestSearchRanking(t *testing.T) {
	ix := New()
	ix.Add(1, "Brady")          // full token match on a short label
	ix.Add(2, "Tom Brady Jr X") // same token diluted by label length
	hits := ix.Search("Brady", 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Doc != 1 {
		t.Errorf("shorter label should rank first: %v", hits)
	}
}

func TestSearchTopK(t *testing.T) {
	ix := New()
	for i := 0; i < 50; i++ {
		ix.Add(i, fmt.Sprintf("Springfield %d", i))
	}
	hits := ix.Search("Springfield", 5)
	if len(hits) != 5 {
		t.Errorf("top-k = %d hits, want 5", len(hits))
	}
}

func TestSearchFuzzy(t *testing.T) {
	ix := New()
	ix.Add(1, "Springfield")
	hits := ix.Search("Sprinfield", 5) // one deletion away
	if len(hits) != 1 || hits[0].Doc != 1 {
		t.Errorf("fuzzy search = %v, want doc 1", hits)
	}
	// Two edits away: no match expected.
	if hits := ix.Search("Sprnfeld", 5); len(hits) != 0 {
		t.Errorf("too-far fuzzy search = %v, want none", hits)
	}
}

// TestSearchFuzzyPerToken is the recall regression test for the
// all-or-nothing fallback bug: the fuzzy pass used to run only when *no*
// query token had exact postings, so a query mixing an exact token with a
// misspelled one ("beatles yeserday") never fuzzy-expanded the misspelled
// token and lost exactly the long-tail labels the fallback exists for.
func TestSearchFuzzyPerToken(t *testing.T) {
	ix := New()
	ix.Add(1, "Yesterday")        // the intended target, reachable only fuzzily
	ix.Add(2, "Beatles for Sale") // shares the exact token "beatles"

	hits := ix.Search("beatles yeserday", 10)
	found := make(map[int]bool)
	for _, h := range hits {
		found[h.Doc] = true
	}
	if !found[2] {
		t.Errorf("exact token lost: hits = %v", hits)
	}
	if !found[1] {
		t.Errorf("misspelled token not fuzzy-expanded (pre-fix behavior): hits = %v", hits)
	}
	// The fully exact query still ranks its exact hits without interference.
	hits = ix.Search("beatles for sale", 10)
	if len(hits) == 0 || hits[0].Doc != 2 {
		t.Errorf("exact query = %v, want doc 2 first", hits)
	}
}

func TestSearchEmptyAndZeroK(t *testing.T) {
	ix := New()
	ix.Add(1, "Anything")
	if hits := ix.Search("", 5); hits != nil {
		t.Error("empty query should return nil")
	}
	if hits := ix.Search("Anything", 0); hits != nil {
		t.Error("k=0 should return nil")
	}
	if hits := ix.Search("!!!", 5); hits != nil {
		t.Error("punctuation-only query should return nil")
	}
}

func TestMultipleLabelsPerDoc(t *testing.T) {
	ix := New()
	ix.Add(7, "New York")
	ix.Add(7, "NYC")
	if ix.Len() != 1 {
		t.Errorf("Len = %d, want 1", ix.Len())
	}
	if ls := ix.Labels(7); len(ls) != 2 {
		t.Errorf("Labels = %v", ls)
	}
	hits := ix.Search("NYC", 5)
	if len(hits) != 1 || hits[0].Doc != 7 {
		t.Errorf("alias search = %v", hits)
	}
}

func TestSearchLabels(t *testing.T) {
	ix := New()
	ix.Add(1, "Springfield")
	ix.Add(2, "Springfield Heights")
	labels := ix.SearchLabels("springfield", 10)
	if len(labels) != 2 {
		t.Errorf("SearchLabels = %v", labels)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	ix := New()
	ix.Add(5, "Alpha")
	ix.Add(3, "Alpha")
	for i := 0; i < 5; i++ {
		hits := ix.Search("Alpha", 10)
		if len(hits) != 2 || hits[0].Doc != 3 {
			t.Fatalf("tie break should order by doc ID: %v", hits)
		}
	}
}

func TestConcurrentAdd(t *testing.T) {
	ix := New()
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ix.Add(i, fmt.Sprintf("label %d alpha", i))
		}(i)
	}
	wg.Wait()
	if ix.Len() != 100 {
		t.Errorf("Len = %d, want 100", ix.Len())
	}
	if hits := ix.Search("alpha", 200); len(hits) != 100 {
		t.Errorf("search after concurrent add = %d hits", len(hits))
	}
}

// TestConcurrentAddSearch exercises the full concurrency contract under
// the race detector: Search, SearchLabels, Labels and Len run while other
// goroutines add postings — the mode the incremental ingestion engine
// relies on (lookups keep serving while later batches grow the index).
func TestConcurrentAddSearch(t *testing.T) {
	ix := New()
	for i := 0; i < 20; i++ {
		ix.Add(i, fmt.Sprintf("seed town %d", i))
	}
	const writers, readers, perWriter = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				doc := 100 + w*perWriter + i
				ix.Add(doc, fmt.Sprintf("grown town %d alpha", doc))
				ix.Add(doc, fmt.Sprintf("alias %d", doc)) // multi-label doc
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if hits := ix.Search("town", 50); len(hits) < 20 {
					t.Errorf("seed docs lost mid-growth: %d hits", len(hits))
					return
				}
				ix.Search("grwn", 5) // fuzzy path scans the vocabulary
				ix.SearchLabels("seed town 3", 4)
				ix.Labels(5)
				ix.Len()
			}
		}()
	}
	wg.Wait()

	if got, want := ix.Len(), 20+writers*perWriter; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	// Everything added concurrently is retrievable afterwards.
	hits := ix.Search("alias 142", 5)
	if len(hits) == 0 || hits[0].Doc != 142 {
		t.Errorf("post-growth search = %v, want doc 142", hits)
	}
}

func TestLabelsReturnsCopy(t *testing.T) {
	ix := New()
	ix.Add(1, "Alpha Beta")
	ls := ix.Labels(1)
	if len(ls) != 1 {
		t.Fatalf("Labels = %v", ls)
	}
	ls[0] = "mutated"
	if again := ix.Labels(1); again[0] != "alpha beta" {
		t.Errorf("Labels returned internal storage: %v", again)
	}
}

func TestSelfRetrievalProperty(t *testing.T) {
	// Any indexed label must retrieve its own document.
	f := func(words []string) bool {
		ix := New()
		label := ""
		for i, w := range words {
			if i >= 4 {
				break
			}
			if len(w) > 8 {
				w = w[:8]
			}
			label += " " + w
		}
		ix.Add(42, label)
		if len(ix.Labels(42)) == 0 {
			return true // label normalized to nothing; nothing to assert
		}
		hits := ix.Search(label, 5)
		return len(hits) > 0 && hits[0].Doc == 42
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSearch(b *testing.B) {
	ix := New()
	for i := 0; i < 10000; i++ {
		ix.Add(i, fmt.Sprintf("entity %d town %d", i, i%100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search("town 42", 20)
	}
}
