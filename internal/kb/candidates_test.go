package kb

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// candidateCorpus builds instances over a narrow shared vocabulary across
// the three evaluation classes, the regime candidate retrieval serves.
func candidateCorpus(rng *rand.Rand, n int) []*Instance {
	word := func(ln int) string {
		b := make([]byte, ln)
		for i := range b {
			b[i] = byte('a' + rng.Intn(9))
		}
		return string(b)
	}
	classes := []ClassID{ClassGFPlayer, ClassSong, ClassSettlement}
	ins := make([]*Instance, 0, n)
	for i := 0; i < n; i++ {
		labels := []string{fmt.Sprintf("%s %s", word(5+rng.Intn(4)), word(6+rng.Intn(3)))}
		if rng.Intn(6) == 0 {
			labels = append(labels, labels[0]+" "+word(4)) // alias
		}
		ins = append(ins, &Instance{Class: classes[i%len(classes)], Labels: labels})
	}
	return ins
}

// TestCandidatesLSHEquivalence compares the LSH candidate path against the
// reference full search: deterministic output, identical relative order of
// shared candidates (both paths rank with the same exact scores), and
// candidate-set recall at or above the stated floor — including misspelled
// queries, which exercise the trigram recall of the LSH buckets.
func TestCandidatesLSHEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	k := New()
	ins := candidateCorpus(rng, 300)
	for _, in := range ins {
		k.AddInstance(in)
	}
	queries := make([]string, 0, 200)
	for i := 0; i < 200; i++ {
		l := ins[rng.Intn(len(ins))].Labels[0]
		if i%3 == 0 && len(l) > 6 { // typo: drop a rune mid-label
			cut := 2 + rng.Intn(len(l)-4)
			if l[cut] != ' ' {
				l = l[:cut] + l[cut+1:]
			}
		}
		queries = append(queries, l)
	}
	refTotal, hit := 0, 0
	for qi, q := range queries {
		opts := CandidateOpts{K: 8, Class: ins[qi%len(ins)].Class}
		got := k.Candidates(q, opts)
		got2 := k.Candidates(q, opts)
		if !reflect.DeepEqual(got, got2) {
			t.Fatalf("Candidates(%q) not deterministic: %v vs %v", q, got, got2)
		}
		SetScanCandidates(true)
		ref := k.Candidates(q, opts)
		SetScanCandidates(false)
		// Relative order of shared members must match (same score floats,
		// same tie-break on both paths).
		pos := make(map[InstanceID]int, len(got))
		for i, id := range got {
			pos[id] = i
		}
		last := -1
		for _, id := range ref {
			refTotal++
			p, ok := pos[id]
			if !ok {
				continue
			}
			hit++
			if p <= last {
				t.Fatalf("Candidates(%q): shared candidates out of order: %v vs ref %v", q, got, ref)
			}
			last = p
		}
	}
	if recall := float64(hit) / float64(refTotal); recall < 0.97 {
		t.Fatalf("LSH candidate recall = %.3f over %d reference candidates, want >= 0.97", recall, refTotal)
	}
}

// TestSearchInstancesStaysExact proves the serving path ignores the LSH
// index entirely: its results are identical whether or not the reference
// toggle is set.
func TestSearchInstancesStaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	k := New()
	for _, in := range candidateCorpus(rng, 120) {
		k.AddInstance(in)
	}
	for i := 0; i < 50; i++ {
		q := candidateCorpus(rng, 1)[0].Labels[0]
		a, err := k.SearchInstances(context.Background(), q, CandidateOpts{K: 10})
		if err != nil {
			t.Fatal(err)
		}
		SetScanCandidates(true)
		b, err := k.SearchInstances(context.Background(), q, CandidateOpts{K: 10})
		SetScanCandidates(false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("SearchInstances(%q) changed under the candidates toggle", q)
		}
	}
}

// TestAddInstancesEquivalent proves the bulk loader is observably identical
// to serial AddInstance calls: same IDs, same class rosters, and the same
// retrieval results on both the exact and LSH paths.
func TestAddInstancesEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	mk := func() []*Instance {
		r := rand.New(rand.NewSource(54))
		return candidateCorpus(r, 150)
	}
	serial := New()
	for _, in := range mk() {
		serial.AddInstance(in)
	}
	bulk := New()
	batch := mk()
	ids := bulk.AddInstances(batch)
	for i, id := range ids {
		if id != InstanceID(i+bulk.NumInstances()-len(batch)) {
			t.Fatalf("bulk ID %d = %v", i, id)
		}
	}
	if serial.NumInstances() != bulk.NumInstances() {
		t.Fatalf("instance counts differ: %d vs %d", serial.NumInstances(), bulk.NumInstances())
	}
	if bulk.Version() == 0 {
		t.Fatal("AddInstances did not bump the version")
	}
	for _, class := range []ClassID{ClassGFPlayer, ClassSong, ClassSettlement} {
		if !reflect.DeepEqual(serial.InstancesOf(class), bulk.InstancesOf(class)) {
			t.Fatalf("class %s rosters differ", class)
		}
	}
	for i := 0; i < 80; i++ {
		q := batch[rng.Intn(len(batch))].Labels[0]
		opts := CandidateOpts{K: 10, Class: ClassSong}
		if !reflect.DeepEqual(serial.Candidates(q, opts), bulk.Candidates(q, opts)) {
			t.Fatalf("Candidates(%q) differ between serial and bulk builds", q)
		}
		a, _ := serial.SearchInstances(context.Background(), q, opts)
		b, _ := bulk.SearchInstances(context.Background(), q, opts)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("SearchInstances(%q) differ between serial and bulk builds", q)
		}
	}
}
