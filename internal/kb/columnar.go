package kb

import (
	"sort"

	"repro/internal/dtype"
	"repro/internal/strsim"
)

// This file holds the columnar instance storage behind KB. Instances of a
// class live in one classStore as struct-of-arrays: per-row slices for
// the always-present fields (labels, provenance, epoch) and one sparse
// fact column per schema property, keyed by the class schema's
// PropertyID order (ascending, the package's canonical property order).
// Strings — labels and the Raw/Str payloads of fact values — are interned
// through a per-KB strsim.Interner, so the heavy repetition of nominal
// values, referenced labels, and shared vocabulary across a grown KB is
// stored once. A dtype.Value packs into 32 bytes (packedValue) instead of
// the ~96-byte struct plus two string payloads per fact.
//
// Rows append only; fact-column row lists are therefore strictly
// increasing and lookups are binary searches. Facts outside the class
// schema (instances of schema-less classes, hand-built test instances)
// go to a per-row overflow map — correctness for the long tail, columns
// for the mass.
//
// The *Instance values the public API returns are materialized views
// copied out of the columns on demand; mutating one never touches the
// store. All classStore access is synchronized by the owning KB's lock:
// writes under kb.mu.Lock, reads under kb.mu.RLock.

// instLoc locates a global InstanceID inside a class store: an index
// into KB.storeList plus a row. Eight bytes per instance.
type instLoc struct {
	store uint32
	row   int32
}

// packedValue is the columnar form of a dtype.Value: string payloads as
// intern IDs, date parts narrowed. packable reports the rare value that
// cannot be narrowed; it is stored unpacked in the extras map instead.
type packedValue struct {
	num        float64
	raw, str   int32
	year       int32
	month, day int16
	kind, gran uint8
}

// packable reports whether v's date parts fit packedValue's narrowed
// fields (any sane date does; io.go accepts arbitrary JSON numbers).
func packable(v dtype.Value) bool {
	return v.Year >= -1<<31 && v.Year < 1<<31 &&
		v.Month >= -1<<15 && v.Month < 1<<15 &&
		v.Day >= -1<<15 && v.Day < 1<<15
}

func packValue(v dtype.Value, strs *strsim.Interner) packedValue {
	return packedValue{
		num:   v.Num,
		raw:   strs.Intern(v.Raw),
		str:   strs.Intern(v.Str),
		year:  int32(v.Year),
		month: int16(v.Month),
		day:   int16(v.Day),
		kind:  uint8(v.Kind),
		gran:  uint8(v.Gran),
	}
}

func unpackValue(pv packedValue, strs *strsim.Interner) dtype.Value {
	return dtype.Value{
		Kind: dtype.Kind(pv.kind),
		Raw:  strs.Lookup(pv.raw),
		Str:  strs.Lookup(pv.str),
		Num:  pv.num,
		Year: int(pv.year), Month: int(pv.month), Day: int(pv.day),
		Gran: dtype.Granularity(pv.gran),
	}
}

// factCol is one sparse fact column: rows (strictly increasing, since
// rows append in order) and their packed values, parallel slices.
type factCol struct {
	rows []int32
	vals []packedValue
}

// find returns the position of row in the column, or -1.
func (c *factCol) find(row int32) int {
	i := sort.Search(len(c.rows), func(i int) bool { return c.rows[i] >= row })
	if i < len(c.rows) && c.rows[i] == row {
		return i
	}
	return -1
}

// sparseStrCol stores a string for the sparse subset of rows that have
// one (abstracts: seed instances carry them, write-backs do not).
type sparseStrCol struct {
	rows []int32
	vals []string
}

func (c *sparseStrCol) find(row int32) int {
	i := sort.Search(len(c.rows), func(i int) bool { return c.rows[i] >= row })
	if i < len(c.rows) && c.rows[i] == row {
		return i
	}
	return -1
}

// sparseF64Col stores a float64 for the sparse subset of rows with a
// nonzero value (popularity: write-backs default to zero).
type sparseF64Col struct {
	rows []int32
	vals []float64
}

func (c *sparseF64Col) find(row int32) int {
	i := sort.Search(len(c.rows), func(i int) bool { return c.rows[i] >= row })
	if i < len(c.rows) && c.rows[i] == row {
		return i
	}
	return -1
}

// classStore holds all instances of one class in columnar form.
type classStore struct {
	class ClassID
	// ids[row] is the global InstanceID of the row, in insertion order
	// (this is the byClass list of the old layout, owned here).
	ids []InstanceID

	// pids is the fact-column key set: the class schema's property IDs
	// in ascending order, frozen when the store is created. ppos maps a
	// property to its column.
	pids []PropertyID
	ppos map[PropertyID]int
	cols []factCol
	// extras holds the facts of a row that fall outside the schema
	// columns, keyed by row. Rare by construction.
	extras     map[int32]map[PropertyID]dtype.Value
	extraFacts int

	// labelIDs is a flat arena of interned label IDs;
	// labelOff[row]..labelOff[row+1] bound a row's labels.
	labelOff []int32
	labelIDs []int32

	abstracts sparseStrCol
	pops      sparseF64Col
	// provIngest marks rows with Provenance == ProvenanceIngest (the
	// only non-empty provenance the model has; a bitmap-of-bytes keeps
	// the general shape cheap).
	provIngest []bool
	epochs     []int32
}

// newClassStore creates the store for a class, columnizing the schema of
// c (nil for schema-less classes: every fact then lands in extras).
func newClassStore(class ClassID, c *Class) *classStore {
	st := &classStore{class: class, labelOff: []int32{0}}
	if c != nil && len(c.Properties) > 0 {
		st.pids = make([]PropertyID, 0, len(c.Properties))
		for _, p := range c.Properties {
			st.pids = append(st.pids, p.ID)
		}
		sort.Slice(st.pids, func(i, j int) bool { return st.pids[i] < st.pids[j] })
		st.ppos = make(map[PropertyID]int, len(st.pids))
		for i, pid := range st.pids {
			st.ppos[pid] = i
		}
		st.cols = make([]factCol, len(st.pids))
	}
	return st
}

// add appends in as a new row and returns it. Caller holds the KB write
// lock and has assigned in.ID.
func (st *classStore) add(in *Instance, strs *strsim.Interner) int32 {
	row := int32(len(st.ids))
	st.ids = append(st.ids, in.ID)
	for _, l := range in.Labels {
		st.labelIDs = append(st.labelIDs, strs.Intern(l))
	}
	st.labelOff = append(st.labelOff, int32(len(st.labelIDs)))
	if in.Abstract != "" {
		st.abstracts.rows = append(st.abstracts.rows, row)
		st.abstracts.vals = append(st.abstracts.vals, in.Abstract)
	}
	if in.Popularity != 0 {
		st.pops.rows = append(st.pops.rows, row)
		st.pops.vals = append(st.pops.vals, in.Popularity)
	}
	st.provIngest = append(st.provIngest, in.Provenance == ProvenanceIngest)
	st.epochs = append(st.epochs, int32(in.IngestEpoch))
	for _, pid := range sortedKeys(in.Facts) {
		v := in.Facts[pid]
		ci, ok := st.ppos[pid]
		if !ok || !packable(v) {
			if st.extras == nil {
				st.extras = make(map[int32]map[PropertyID]dtype.Value)
			}
			m := st.extras[row]
			if m == nil {
				m = make(map[PropertyID]dtype.Value, 1)
				st.extras[row] = m
			}
			m[pid] = v
			st.extraFacts++
			continue
		}
		c := &st.cols[ci]
		c.rows = append(c.rows, row)
		c.vals = append(c.vals, packValue(v, strs))
	}
	return row
}

// fact returns the row's value for pid.
func (st *classStore) fact(row int32, pid PropertyID, strs *strsim.Interner) (dtype.Value, bool) {
	if ci, ok := st.ppos[pid]; ok {
		if i := st.cols[ci].find(row); i >= 0 {
			return unpackValue(st.cols[ci].vals[i], strs), true
		}
		// A packable schema fact lives in its column; fall through for
		// the unpackable remainder in extras.
	}
	if m, ok := st.extras[row]; ok {
		if v, ok := m[pid]; ok {
			return v, true
		}
	}
	return dtype.Value{}, false
}

// numFacts counts the row's facts across columns and extras.
func (st *classStore) numFacts(row int32) int {
	n := len(st.extras[row])
	for i := range st.cols {
		if st.cols[i].find(row) >= 0 {
			n++
		}
	}
	return n
}

// forEachFact visits the row's facts in ascending PropertyID order — the
// package's canonical iteration order (SortedPropertyIDs), which every
// float accumulation downstream depends on. Schema columns are already
// ascending; rows with extras merge the two sorted sequences.
func (st *classStore) forEachFact(row int32, strs *strsim.Interner, fn func(PropertyID, dtype.Value)) {
	extra := st.extras[row]
	if len(extra) == 0 {
		for ci := range st.cols {
			if i := st.cols[ci].find(row); i >= 0 {
				fn(st.pids[ci], unpackValue(st.cols[ci].vals[i], strs))
			}
		}
		return
	}
	epids := sortedKeys(extra)
	e := 0
	for ci := range st.cols {
		i := st.cols[ci].find(row)
		if i < 0 {
			continue
		}
		for e < len(epids) && epids[e] < st.pids[ci] {
			fn(epids[e], extra[epids[e]])
			e++
		}
		fn(st.pids[ci], unpackValue(st.cols[ci].vals[i], strs))
	}
	for ; e < len(epids); e++ {
		fn(epids[e], extra[epids[e]])
	}
}

// labels returns the row's interned label IDs.
func (st *classStore) labels(row int32) []int32 {
	return st.labelIDs[st.labelOff[row]:st.labelOff[row+1]]
}

// label returns the row's primary label ("" when unlabeled).
func (st *classStore) label(row int32, strs *strsim.Interner) string {
	ls := st.labels(row)
	if len(ls) == 0 {
		return ""
	}
	return strs.Lookup(ls[0])
}

// abstract returns the row's abstract ("" for the sparse default).
func (st *classStore) abstract(row int32) string {
	if i := st.abstracts.find(row); i >= 0 {
		return st.abstracts.vals[i]
	}
	return ""
}

// popularity returns the row's popularity (0 for the sparse default).
func (st *classStore) popularity(row int32) float64 {
	if i := st.pops.find(row); i >= 0 {
		return st.pops.vals[i]
	}
	return 0
}

// provenance returns the row's provenance string.
func (st *classStore) provenance(row int32) string {
	if st.provIngest[row] {
		return ProvenanceIngest
	}
	return ""
}

// materialize copies the row out into a standalone Instance. The copy
// owns its Labels slice and Facts map; mutating it cannot reach the
// store.
func (st *classStore) materialize(row int32, strs *strsim.Interner) *Instance {
	in := &Instance{
		ID:          st.ids[row],
		Class:       st.class,
		Abstract:    st.abstract(row),
		Popularity:  st.popularity(row),
		Provenance:  st.provenance(row),
		IngestEpoch: int(st.epochs[row]),
		Facts:       make(map[PropertyID]dtype.Value),
	}
	if ls := st.labels(row); len(ls) > 0 {
		in.Labels = make([]string, len(ls))
		for i, id := range ls {
			in.Labels[i] = strs.Lookup(id)
		}
	}
	st.forEachFact(row, strs, func(pid PropertyID, v dtype.Value) {
		in.Facts[pid] = v
	})
	return in
}

// numFactsTotal returns the store's total fact count (Table 1 profile).
func (st *classStore) numFactsTotal() int {
	n := st.extraFacts
	for i := range st.cols {
		n += len(st.cols[i].rows)
	}
	return n
}

// approxBytes estimates the store's resident bytes: slice capacities
// times element sizes plus the extras maps (string payloads live in the
// KB interner and are counted there).
func (st *classStore) approxBytes() int64 {
	var n int64
	n += int64(cap(st.ids)) * 8
	n += int64(cap(st.labelOff)+cap(st.labelIDs)) * 4
	n += int64(cap(st.abstracts.rows)) * 4
	for _, s := range st.abstracts.vals {
		n += 16 + int64(len(s))
	}
	n += int64(cap(st.pops.rows))*4 + int64(cap(st.pops.vals))*8
	n += int64(cap(st.provIngest)) + int64(cap(st.epochs))*4
	for i := range st.cols {
		n += int64(cap(st.cols[i].rows))*4 + int64(cap(st.cols[i].vals))*32
	}
	n += int64(st.extraFacts) * 160 // unpacked values plus map overhead
	return n
}

// sortedKeys returns m's keys in ascending order (SortedPropertyIDs,
// kept local so store code does not depend on the public helper).
func sortedKeys[V any](m map[PropertyID]V) []PropertyID {
	if len(m) == 0 {
		return nil
	}
	pids := make([]PropertyID, 0, len(m))
	for pid := range m {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}
