// Package kb implements the cross-domain knowledge base substrate the
// pipeline extends. It substitutes for the DBpedia 2014 release the paper
// uses: a class hierarchy, typed properties, instances with labels,
// abstracts and facts, and a popularity score per instance (substituting
// the Wikipedia page-link dataset used by the POPULARITY metric). The
// package also provides profiling (instance/fact counts and property
// densities, Tables 1-2).
//
// # Columnar storage
//
// Instances are not stored as structs. Each class owns a columnar store
// (columnar.go): struct-of-arrays slices for the per-row fields and one
// sparse fact column per schema property, the columns keyed by the class
// schema's PropertyID order (ascending). Labels and the string payloads
// of fact values are interned through a per-KB strsim.Interner, so the
// heavy repetition of nominal values and referenced labels across a
// grown KB is stored once; a fact costs ~32 bytes plus its share of the
// intern pool instead of a ~96-byte map entry with private strings.
//
// Readers use the O(1)/O(log n) accessors — Fact, InstanceClass,
// InstanceLabel, ForEachFact, ForEachFactOfClass and friends — on the
// hot paths. Instance returns a materialized copy-on-read view: a
// standalone *Instance assembled from the columns that the caller may
// retain or mutate freely, because mutations cannot reach the store.
// ForEachFact iterates in ascending PropertyID order, the package's
// canonical order (SortedPropertyIDs), so float accumulations over facts
// are deterministic.
//
// A KB supports safe concurrent post-construction growth: AddInstance and
// AddClass may run while other goroutines read or search, and every
// mutation bumps a monotonic Version counter that downstream caches
// (match.Context profiles, newdet.Detector candidates, the serve LRU)
// key their validity on. Instances written back by the incremental
// ingestion engine carry a Provenance marker and the ingest epoch that
// created them.
//
// # Snapshots
//
// Persistence (snapshot.go) is append-only and epoch-oriented. A
// snapshot directory holds numbered instance segments
// (segment-NNNNNN.ndjson, each a run of ingested instances in write-back
// order) plus manifest.json describing the chain. SaveSnapshot writes
// only the instances ingested since the manifest's chain was last
// extended — one new segment per call, or none when nothing changed —
// then commits by rewriting the manifest via temp-file+rename+fsync:
// the manifest is written last, so a crash at any point leaves the
// previous complete snapshot loadable. LoadSnapshot replays the chain
// in order. CompactSnapshot merges the chain into a single segment
// under the same manifest-last discipline and then deletes unreferenced
// segment files, so a crash mid-compaction also leaves a loadable
// directory (plus, at worst, orphan files the next compaction removes).
//
// Manifests of the pre-segment format (a monolithic instances.ndjson,
// manifest format 0) are converted on first contact: LoadSnapshot reads
// the monolith as a single-segment chain, and the next SaveSnapshot or
// CompactSnapshot rewrites the directory in segmented form.
package kb
