package kb

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dtype"
)

// TestVersionBumpsOnGrowth verifies the cache-invalidation contract: every
// AddInstance and AddClass bumps the monotonic version counter.
func TestVersionBumpsOnGrowth(t *testing.T) {
	k := New()
	v0 := k.Version()
	if v0 == 0 {
		t.Fatal("ontology construction should already have bumped the version")
	}
	k.AddInstance(&Instance{Class: ClassSong, Labels: []string{"Yesterday"}})
	if k.Version() != v0+1 {
		t.Errorf("AddInstance: version %d, want %d", k.Version(), v0+1)
	}
	k.AddClass(&Class{ID: "dbo:Island", Label: "Island", Parent: ClassPlace})
	if k.Version() != v0+2 {
		t.Errorf("AddClass: version %d, want %d", k.Version(), v0+2)
	}
}

// TestProvenanceFields verifies write-back provenance is stored and that
// seed instances default to no provenance.
func TestProvenanceFields(t *testing.T) {
	k := newTestKB(t)
	if in := k.Instance(0); in.Provenance != "" || in.IngestEpoch != 0 {
		t.Errorf("seed instance carries provenance: %q epoch %d", in.Provenance, in.IngestEpoch)
	}
	id := k.AddInstance(&Instance{
		Class:       ClassGFPlayer,
		Labels:      []string{"Joe Rookie"},
		Provenance:  ProvenanceIngest,
		IngestEpoch: 3,
	})
	in := k.Instance(id)
	if in.Provenance != ProvenanceIngest || in.IngestEpoch != 3 {
		t.Errorf("write-back provenance lost: %q epoch %d", in.Provenance, in.IngestEpoch)
	}
}

// TestConcurrentGrowthAndSearch is the post-construction growth contract
// under the race detector: writers add instances while readers search,
// look up instances, profile classes and list candidates.
func TestConcurrentGrowthAndSearch(t *testing.T) {
	k := newTestKB(t)
	const writers, readers, perWriter = 4, 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k.AddInstance(&Instance{
					Class:  ClassSettlement,
					Labels: []string{fmt.Sprintf("Growtown %d-%d", w, i)},
					Facts: map[PropertyID]dtype.Value{
						"dbo:country": dtype.NewRef("United States"),
					},
					Provenance:  ProvenanceIngest,
					IngestEpoch: 1,
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k.Candidates("Growtown", CandidateOpts{K: 10, Class: ClassSettlement})
				n := k.NumInstances()
				if in := k.Instance(InstanceID(n - 1)); in == nil {
					t.Error("instance visible in count but not by ID")
					return
				}
				k.ProfileClass(ClassSettlement)
				k.InstancesOf(ClassSettlement)
				_ = k.Version()
			}
		}()
	}
	wg.Wait()

	want := 3 + writers*perWriter
	if k.NumInstances() != want {
		t.Fatalf("NumInstances = %d, want %d", k.NumInstances(), want)
	}
	// Every written instance is matchable via the label index afterwards.
	cands := k.Candidates("Growtown 0-0", CandidateOpts{K: 5, Class: ClassSettlement})
	if len(cands) == 0 {
		t.Fatal("grown instance not matchable by label")
	}
	found := false
	for _, id := range cands {
		if k.Instance(id).Label() == "Growtown 0-0" {
			found = true
		}
	}
	if !found {
		t.Error("candidate search did not retrieve the grown instance")
	}
}

// TestInstancesOfIsACopy guards the snapshot contract: mutating the
// returned slice must not corrupt the KB's class listing.
func TestInstancesOfIsACopy(t *testing.T) {
	k := newTestKB(t)
	ids := k.InstancesOf(ClassGFPlayer)
	if len(ids) != 2 {
		t.Fatalf("InstancesOf = %v", ids)
	}
	ids[0] = -99
	if again := k.InstancesOf(ClassGFPlayer); again[0] == -99 {
		t.Error("InstancesOf returned the internal slice")
	}
}
