package kb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dtype"
)

// jsonValue is the serialized form of a typed value.
type jsonValue struct {
	Kind  string  `json:"kind"`
	Raw   string  `json:"raw,omitempty"`
	Str   string  `json:"str,omitempty"`
	Num   float64 `json:"num,omitempty"`
	Year  int     `json:"year,omitempty"`
	Month int     `json:"month,omitempty"`
	Day   int     `json:"day,omitempty"`
	Gran  string  `json:"gran,omitempty"`
}

// jsonInstance is the serialized form of one instance (one JSON object per
// line, in the style of DBpedia entity dumps).
type jsonInstance struct {
	Class      string               `json:"class"`
	Labels     []string             `json:"labels"`
	Abstract   string               `json:"abstract,omitempty"`
	Popularity float64              `json:"popularity,omitempty"`
	Facts      map[string]jsonValue `json:"facts"`
	// Provenance and epoch survive serialization so a dumped KB keeps the
	// audit trail of which instances the ingestion engine wrote back.
	Provenance  string `json:"provenance,omitempty"`
	IngestEpoch int    `json:"ingestEpoch,omitempty"`
}

var kindByName = map[string]dtype.Kind{
	"text":              dtype.Text,
	"nominalString":     dtype.NominalString,
	"instanceReference": dtype.InstanceReference,
	"date":              dtype.Date,
	"quantity":          dtype.Quantity,
	"nominalInteger":    dtype.NominalInteger,
}

func toJSONValue(v dtype.Value) jsonValue {
	jv := jsonValue{
		Kind: v.Kind.String(), Raw: v.Raw, Str: v.Str, Num: v.Num,
		Year: v.Year, Month: v.Month, Day: v.Day,
	}
	if v.Kind == dtype.Date {
		if v.Gran == dtype.GranDay {
			jv.Gran = "day"
		} else {
			jv.Gran = "year"
		}
	}
	return jv
}

func fromJSONValue(jv jsonValue) (dtype.Value, error) {
	kind, ok := kindByName[jv.Kind]
	if !ok {
		return dtype.Value{}, fmt.Errorf("kb: unknown value kind %q", jv.Kind)
	}
	v := dtype.Value{
		Kind: kind, Raw: jv.Raw, Str: jv.Str, Num: jv.Num,
		Year: jv.Year, Month: jv.Month, Day: jv.Day,
	}
	if kind == dtype.Date && jv.Gran == "day" {
		v.Gran = dtype.GranDay
	}
	return v, nil
}

// WriteInstances serializes all instances as newline-delimited JSON.
// Classes and schemas are part of the ontology and are not serialized;
// loading requires a KB constructed with the same ontology.
func (kb *KB) WriteInstances(w io.Writer) error {
	return kb.WriteInstancesIf(w, nil)
}

// WriteInstancesIf serializes the instances for which keep returns true
// (all of them when keep is nil) as newline-delimited JSON, in insertion
// order. keep sees a materialized view of each instance. Snapshot
// persistence instead dumps by ID ranges (writeInstancesByID); this
// filtered form serves ad-hoc exports.
func (kb *KB) WriteInstancesIf(w io.Writer, keep func(*Instance) bool) error {
	n := kb.NumInstances()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for id := 0; id < n; id++ {
		in := kb.Instance(InstanceID(id))
		if keep != nil && !keep(in) {
			continue
		}
		if err := encodeInstance(enc, in); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeInstancesByID serializes the given instances, in the given order,
// as newline-delimited JSON. Snapshot segments are written through this:
// the ID list is a contiguous run of the KB's ingestion order.
func (kb *KB) writeInstancesByID(w io.Writer, ids []InstanceID) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, id := range ids {
		in := kb.Instance(id)
		if in == nil {
			return fmt.Errorf("kb: writing instance %d: no such instance", id)
		}
		if err := encodeInstance(enc, in); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// encodeInstance writes one instance as a JSON line. Facts marshal as a
// map, and encoding/json sorts map keys, so the line's fact order is the
// package's canonical ascending PropertyID order regardless of storage
// layout.
func encodeInstance(enc *json.Encoder, in *Instance) error {
	ji := jsonInstance{
		Class:       string(in.Class),
		Labels:      in.Labels,
		Abstract:    in.Abstract,
		Popularity:  in.Popularity,
		Facts:       make(map[string]jsonValue, len(in.Facts)),
		Provenance:  in.Provenance,
		IngestEpoch: in.IngestEpoch,
	}
	for pid, v := range in.Facts {
		ji.Facts[string(pid)] = toJSONValue(v)
	}
	if err := enc.Encode(&ji); err != nil {
		return fmt.Errorf("kb: writing instance %d: %w", in.ID, err)
	}
	return nil
}

// ReadInstances loads newline-delimited JSON instances into the KB,
// appending to any existing instances. Instances referencing classes
// unknown to the ontology are rejected. The whole stream is parsed before
// anything is stored (a malformed line therefore adds nothing) and then
// indexed in one AddInstances batch, which parallelizes the label-index
// build — the dominant cost of a warm restart over a written-back KB.
func (kb *KB) ReadInstances(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	var ins []*Instance
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ji jsonInstance
		if err := json.Unmarshal(raw, &ji); err != nil {
			return fmt.Errorf("kb: line %d: %w", line, err)
		}
		class := ClassID(ji.Class)
		if kb.Class(class) == nil {
			return fmt.Errorf("kb: line %d: unknown class %q", line, ji.Class)
		}
		facts := make(map[PropertyID]dtype.Value, len(ji.Facts))
		for pid, jv := range ji.Facts {
			v, err := fromJSONValue(jv)
			if err != nil {
				return fmt.Errorf("kb: line %d, property %s: %w", line, pid, err)
			}
			facts[PropertyID(pid)] = v
		}
		ins = append(ins, &Instance{
			Class:       class,
			Labels:      ji.Labels,
			Abstract:    ji.Abstract,
			Popularity:  ji.Popularity,
			Facts:       facts,
			Provenance:  ji.Provenance,
			IngestEpoch: ji.IngestEpoch,
		})
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("kb: reading instances: %w", err)
	}
	kb.AddInstances(ins)
	return nil
}
