package kb

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dtype"
)

func TestInstanceRoundTrip(t *testing.T) {
	src := newTestKB(t)
	src.AddInstance(&Instance{
		Class:  ClassSong,
		Labels: []string{"Endless Night", "The Endless Night"},
		Facts: map[PropertyID]dtype.Value{
			"dbo:runtime":     dtype.NewQuantity(215),
			"dbo:releaseDate": dtype.NewDate(1999, 4, 2),
			"dbo:genre":       dtype.NewNominal("Rock"),
		},
		Abstract:   "A song.",
		Popularity: 12.5,
	})

	var buf bytes.Buffer
	if err := src.WriteInstances(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.ReadInstances(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.NumInstances() != src.NumInstances() {
		t.Fatalf("instances %d != %d", dst.NumInstances(), src.NumInstances())
	}
	for i := 0; i < src.NumInstances(); i++ {
		a, b := src.Instance(InstanceID(i)), dst.Instance(InstanceID(i))
		if a.Class != b.Class || a.Label() != b.Label() || a.Popularity != b.Popularity {
			t.Fatalf("instance %d metadata mismatch: %+v vs %+v", i, a, b)
		}
		if len(a.Facts) != len(b.Facts) {
			t.Fatalf("instance %d facts %d != %d", i, len(a.Facts), len(b.Facts))
		}
		th := dtype.DefaultThresholds()
		for pid, av := range a.Facts {
			bv, ok := b.Facts[pid]
			if !ok || !th.Equal(av, bv) || av.Kind != bv.Kind {
				t.Fatalf("instance %d fact %s: %+v vs %+v", i, pid, av, bv)
			}
		}
	}
	// The loaded KB must answer candidate queries (labels re-indexed).
	if c := dst.Candidates("Endless Night", CandidateOpts{Class: ClassSong}); len(c) == 0 {
		t.Error("loaded instance not retrievable by label")
	}
}

func TestProvenanceRoundTrip(t *testing.T) {
	k := New()
	k.AddInstance(&Instance{
		Class:       ClassSong,
		Labels:      []string{"New Tune"},
		Provenance:  ProvenanceIngest,
		IngestEpoch: 2,
	})
	var buf bytes.Buffer
	if err := k.WriteInstances(&buf); err != nil {
		t.Fatal(err)
	}
	k2 := New()
	if err := k2.ReadInstances(&buf); err != nil {
		t.Fatal(err)
	}
	in := k2.Instance(0)
	if in.Provenance != ProvenanceIngest || in.IngestEpoch != 2 {
		t.Errorf("provenance lost in round trip: %q epoch %d", in.Provenance, in.IngestEpoch)
	}
}

func TestDateGranularityRoundTrip(t *testing.T) {
	src := New()
	src.AddInstance(&Instance{
		Class:  ClassGFPlayer,
		Labels: []string{"X"},
		Facts: map[PropertyID]dtype.Value{
			"dbo:draftYear": dtype.NewYear(2001),
			"dbo:birthDate": dtype.NewDate(1980, 2, 3),
		},
	})
	var buf bytes.Buffer
	if err := src.WriteInstances(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.ReadInstances(&buf); err != nil {
		t.Fatal(err)
	}
	in := dst.Instance(0)
	if in.Facts["dbo:draftYear"].Gran != dtype.GranYear {
		t.Error("year granularity lost")
	}
	if in.Facts["dbo:birthDate"].Gran != dtype.GranDay {
		t.Error("day granularity lost")
	}
}

func TestReadInstancesErrors(t *testing.T) {
	k := New()
	if err := k.ReadInstances(strings.NewReader("{bad")); err == nil {
		t.Error("want error on malformed JSON")
	}
	if err := k.ReadInstances(strings.NewReader(`{"class":"dbo:Nope","labels":["x"],"facts":{}}`)); err == nil {
		t.Error("want error on unknown class")
	}
	bad := `{"class":"dbo:Song","labels":["x"],"facts":{"dbo:genre":{"kind":"mystery"}}}`
	if err := k.ReadInstances(strings.NewReader(bad)); err == nil {
		t.Error("want error on unknown value kind")
	}
	// Blank lines are fine.
	if err := k.ReadInstances(strings.NewReader("\n\n")); err != nil {
		t.Errorf("blank input: %v", err)
	}
}
