package kb

import (
	"testing"

	"repro/internal/dtype"
)

func newTestKB(t *testing.T) *KB {
	t.Helper()
	k := New()
	k.AddInstance(&Instance{
		Class:  ClassGFPlayer,
		Labels: []string{"Tom Brady"},
		Facts: map[PropertyID]dtype.Value{
			"dbo:position": dtype.NewNominal("QB"),
			"dbo:team":     dtype.NewRef("Patriots"),
		},
		Popularity: 100,
	})
	k.AddInstance(&Instance{
		Class:  ClassGFPlayer,
		Labels: []string{"Kyle Brady"},
		Facts: map[PropertyID]dtype.Value{
			"dbo:position": dtype.NewNominal("TE"),
		},
		Popularity: 5,
	})
	k.AddInstance(&Instance{
		Class:  ClassSettlement,
		Labels: []string{"Springfield", "Springfield Town"},
		Facts: map[PropertyID]dtype.Value{
			"dbo:country": dtype.NewRef("United States"),
		},
		Popularity: 50,
	})
	return k
}

func TestOntology(t *testing.T) {
	k := New()
	if k.Class(ClassGFPlayer) == nil || k.Class(ClassSong) == nil || k.Class(ClassSettlement) == nil {
		t.Fatal("evaluation classes missing from default ontology")
	}
	anc := k.Ancestors(ClassGFPlayer)
	want := []ClassID{ClassAthlete, ClassPerson, ClassAgent, ClassThing}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors = %v, want %v", anc, want)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Errorf("ancestor %d = %v, want %v", i, anc[i], want[i])
		}
	}
}

func TestSharesParent(t *testing.T) {
	k := New()
	if !k.SharesParent(ClassGFPlayer, ClassGFPlayer) {
		t.Error("class shares parent with itself")
	}
	if !k.SharesParent(ClassSettlement, ClassRegion) {
		t.Error("Settlement and Region share PopulatedPlace")
	}
	if k.SharesParent(ClassGFPlayer, ClassSong) {
		t.Error("player and song must not share a (non-root) parent")
	}
	if !k.SharesParent(ClassGFPlayer, ClassAthlete) {
		t.Error("class shares parent with its ancestor")
	}
}

func TestTypeOverlap(t *testing.T) {
	k := New()
	if o := k.TypeOverlap(ClassGFPlayer, ClassGFPlayer); o != 1 {
		t.Errorf("self overlap = %v, want 1", o)
	}
	same := k.TypeOverlap(ClassSettlement, ClassRegion)
	diff := k.TypeOverlap(ClassSettlement, ClassSong)
	if same <= diff {
		t.Errorf("sibling overlap %v should exceed unrelated overlap %v", same, diff)
	}
	if diff != 0 {
		t.Errorf("unrelated classes overlap = %v, want 0", diff)
	}
}

func TestPropertyLookup(t *testing.T) {
	k := New()
	p, ok := k.Property(ClassGFPlayer, "dbo:position")
	if !ok || p.Kind != dtype.NominalString {
		t.Fatalf("Property lookup = %+v ok=%v", p, ok)
	}
	if _, ok := k.Property(ClassGFPlayer, "dbo:genre"); ok {
		t.Error("player class must not have genre")
	}
}

func TestAddAndGetInstance(t *testing.T) {
	k := newTestKB(t)
	if k.NumInstances() != 3 {
		t.Fatalf("NumInstances = %d", k.NumInstances())
	}
	in := k.Instance(0)
	if in == nil || in.Label() != "Tom Brady" {
		t.Fatalf("Instance(0) = %+v", in)
	}
	if k.Instance(-1) != nil || k.Instance(99) != nil {
		t.Error("out-of-range lookups should return nil")
	}
	if got := len(k.InstancesOf(ClassGFPlayer)); got != 2 {
		t.Errorf("InstancesOf player = %d, want 2", got)
	}
}

func TestCandidates(t *testing.T) {
	k := newTestKB(t)
	cands := k.Candidates("Brady", CandidateOpts{Class: ClassGFPlayer})
	if len(cands) != 2 {
		t.Fatalf("candidates = %v, want both Bradys", cands)
	}
	// Class restriction excludes the settlement.
	cands = k.Candidates("Springfield", CandidateOpts{Class: ClassGFPlayer})
	if len(cands) != 0 {
		t.Errorf("class-restricted candidates = %v, want none", cands)
	}
	cands = k.Candidates("Springfield", CandidateOpts{Class: ClassSettlement})
	if len(cands) != 1 {
		t.Errorf("settlement candidates = %v", cands)
	}
	// Alias retrieval.
	cands = k.Candidates("Springfield Town", CandidateOpts{})
	if len(cands) == 0 {
		t.Error("alias should retrieve the instance")
	}
}

func TestCandidatesK(t *testing.T) {
	k := New()
	for i := 0; i < 40; i++ {
		k.AddInstance(&Instance{Class: ClassSong, Labels: []string{"Love Song"}})
	}
	c := k.Candidates("Love Song", CandidateOpts{K: 10})
	if len(c) != 10 {
		t.Errorf("K-capped candidates = %d, want 10", len(c))
	}
}

func TestProfileClass(t *testing.T) {
	k := newTestKB(t)
	p := k.ProfileClass(ClassGFPlayer)
	if p.Instances != 2 || p.Facts != 3 {
		t.Errorf("ProfileClass = %+v, want 2 instances / 3 facts", p)
	}
}

func TestProfileProperties(t *testing.T) {
	k := newTestKB(t)
	profs := k.ProfileProperties(ClassGFPlayer)
	if len(profs) != len(GFPlayerSchema()) {
		t.Fatalf("profiles = %d, want full schema", len(profs))
	}
	// position appears in 2/2 instances, team in 1/2.
	if profs[0].Property != "dbo:position" || profs[0].Density != 1 {
		t.Errorf("densest property = %+v, want position at 1.0", profs[0])
	}
	for i := 1; i < len(profs); i++ {
		if profs[i].Density > profs[i-1].Density {
			t.Error("profiles must be sorted by descending density")
		}
	}
}

func TestDensityFloor(t *testing.T) {
	k := newTestKB(t)
	profs := k.DensityFloor(ClassGFPlayer, 0.3)
	for _, p := range profs {
		if p.Density < 0.3 {
			t.Errorf("property %s below floor: %v", p.Property, p.Density)
		}
	}
	if len(profs) != 2 {
		t.Errorf("floor filter = %d props, want 2 (position, team)", len(profs))
	}
}

func TestClassShortName(t *testing.T) {
	if ClassShortName(ClassGFPlayer) != "GF-Player" {
		t.Error("short name")
	}
	if ClassShortName(ClassSong) != "Song" || ClassShortName(ClassSettlement) != "Settlement" {
		t.Error("short names")
	}
}

func TestEvalClasses(t *testing.T) {
	if got := EvalClasses(); len(got) != 3 || got[0] != ClassGFPlayer {
		t.Errorf("EvalClasses = %v", got)
	}
}
