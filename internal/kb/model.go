package kb

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dtype"
	"repro/internal/index"
	"repro/internal/lsh"
	"repro/internal/par"
	"repro/internal/strsim"
)

// scanCandidates, when set, forces the pipeline's Candidates retrieval onto
// the reference full-index search instead of LSH retrieval plus exact
// re-ranking. It mirrors index.SetScanFuzzy: an equivalence-test and
// benchmark knob so recall is verified against the reference, not assumed;
// production code never sets it. SearchInstances (the serving path) always
// uses the reference search regardless.
var scanCandidates atomic.Bool

// SetScanCandidates toggles the reference candidate-retrieval path.
// Benchmark and test knob only.
func SetScanCandidates(v bool) { scanCandidates.Store(v) }

// ClassID identifies a class in the knowledge base ontology.
type ClassID string

// Well-known first-level and evaluation classes, mirroring the paper's
// selection: one class each from Agent, Work and Place.
const (
	ClassThing      ClassID = "owl:Thing"
	ClassAgent      ClassID = "dbo:Agent"
	ClassPerson     ClassID = "dbo:Person"
	ClassAthlete    ClassID = "dbo:Athlete"
	ClassGFPlayer   ClassID = "dbo:GridironFootballPlayer"
	ClassWork       ClassID = "dbo:Work"
	ClassMusicWork  ClassID = "dbo:MusicalWork"
	ClassSong       ClassID = "dbo:Song"
	ClassPlace      ClassID = "dbo:Place"
	ClassPopPlace   ClassID = "dbo:PopulatedPlace"
	ClassSettlement ClassID = "dbo:Settlement"
	// ClassRegion and ClassMountain exist so that table-to-class matching
	// has realistic confusable neighbours for Settlement (§5 error
	// analysis: "the new entity does not describe a settlement, but a
	// different place, like a region or a mountain").
	ClassRegion   ClassID = "dbo:Region"
	ClassMountain ClassID = "dbo:Mountain"
)

// ProvenanceIngest marks instances written back into the KB by the
// incremental ingestion engine (core.Engine), as opposed to seed instances
// loaded or generated at construction time (empty provenance).
const ProvenanceIngest = "ltee:ingest"

// PropertyID identifies a property of the knowledge base schema.
type PropertyID string

// Property describes one property of a class schema.
type Property struct {
	ID    PropertyID
	Label string
	// Kind is the fine-grained data type of the property's values.
	Kind dtype.Kind
	// AltLabels are alternative header labels seen in the wild; the
	// KB-Label matcher compares column headers against Label and these.
	AltLabels []string
}

// Class is a node in the ontology with an attached property schema.
type Class struct {
	ID     ClassID
	Label  string
	Parent ClassID // empty for the root
	// Properties lists the schema of the class (only evaluation classes
	// carry schemas; intermediate classes have none).
	Properties []Property
}

// InstanceID identifies an instance.
type InstanceID int

// Instance is one entity in the knowledge base.
type Instance struct {
	ID    InstanceID
	Class ClassID
	// Labels holds the primary label first, then aliases.
	Labels []string
	// Abstract is a short free-text description (used by the BOW
	// entity-to-instance metric).
	Abstract string
	// Facts maps property to value. The model keeps one value per
	// property, as the paper's density tables do.
	Facts map[PropertyID]dtype.Value
	// Popularity substitutes the count of incoming Wikipedia page links.
	Popularity float64
	// Provenance records how the instance entered the KB: empty for seed
	// instances, ProvenanceIngest for pipeline write-back.
	Provenance string
	// IngestEpoch is the ingestion epoch that wrote the instance back
	// (0 for seed instances).
	IngestEpoch int
}

// Label returns the primary label or "" for an unlabeled instance.
func (in *Instance) Label() string {
	if len(in.Labels) == 0 {
		return ""
	}
	return in.Labels[0]
}

// KB is an in-memory knowledge base. The zero value is not usable; call
// New. All methods are safe for concurrent use, including growth via
// AddInstance/AddClass while readers search. Instances live in per-class
// columnar stores (columnar.go); the *Instance values returned by
// Instance are materialized copies the caller may retain or mutate
// without affecting the KB.
type KB struct {
	mu      sync.RWMutex
	version atomic.Uint64
	classes map[ClassID]*Class
	// strs interns instance labels and fact string payloads for the
	// columnar stores. Mutated only under mu.Lock; read under mu.RLock.
	strs *strsim.Interner
	// storeList holds one columnar store per class that has instances;
	// storeOf maps a class to its position. locs maps a global
	// InstanceID to (store, row).
	storeList []*classStore
	storeOf   map[ClassID]uint32
	locs      []instLoc
	// ingested lists the IDs of write-back instances (Provenance ==
	// ProvenanceIngest) in insertion order — the persistence order of
	// snapshot segments.
	ingested []InstanceID
	// labelIdx supports candidate selection: one label index per
	// evaluation class plus a global one.
	labelIdx map[ClassID]*index.Index
	globalIx *index.Index
	// cand is the LSH candidate index over all instance labels: the
	// pipeline's Candidates path retrieves from its buckets in
	// near-constant time and re-ranks the survivors through globalIx's
	// exact scorer, so retrieval cost no longer grows with the KB.
	cand *lsh.Index
}

// New returns an empty knowledge base preloaded with the ontology used
// throughout the reproduction (Thing → Agent/Work/Place → … → the three
// evaluation classes plus the confusable Place neighbours).
func New() *KB {
	kb := &KB{
		classes:  make(map[ClassID]*Class),
		strs:     strsim.NewInterner(),
		storeOf:  make(map[ClassID]uint32),
		labelIdx: make(map[ClassID]*index.Index),
		globalIx: index.New(),
		cand:     lsh.NewIndex(lsh.DefaultParams()),
	}
	for _, c := range defaultOntology() {
		kb.AddClass(c)
	}
	return kb
}

// storeFor returns the columnar store of class id, creating it (with the
// class's current schema as column set) on first instance. Caller holds
// the write lock.
func (kb *KB) storeFor(id ClassID) *classStore {
	if si, ok := kb.storeOf[id]; ok {
		return kb.storeList[si]
	}
	st := newClassStore(id, kb.classes[id])
	kb.storeOf[id] = uint32(len(kb.storeList))
	kb.storeList = append(kb.storeList, st)
	return st
}

// loc resolves an InstanceID to its store and row. Caller holds at least
// the read lock.
func (kb *KB) loc(id InstanceID) (*classStore, int32, bool) {
	if id < 0 || int(id) >= len(kb.locs) {
		return nil, 0, false
	}
	l := kb.locs[id]
	return kb.storeList[l.store], l.row, true
}

func defaultOntology() []*Class {
	return []*Class{
		{ID: ClassThing, Label: "Thing"},
		{ID: ClassAgent, Label: "Agent", Parent: ClassThing},
		{ID: ClassPerson, Label: "Person", Parent: ClassAgent},
		{ID: ClassAthlete, Label: "Athlete", Parent: ClassPerson},
		{ID: ClassGFPlayer, Label: "Gridiron Football Player", Parent: ClassAthlete,
			Properties: GFPlayerSchema()},
		{ID: ClassWork, Label: "Work", Parent: ClassThing},
		{ID: ClassMusicWork, Label: "Musical Work", Parent: ClassWork},
		{ID: ClassSong, Label: "Song", Parent: ClassMusicWork, Properties: SongSchema()},
		{ID: ClassPlace, Label: "Place", Parent: ClassThing},
		{ID: ClassPopPlace, Label: "Populated Place", Parent: ClassPlace},
		{ID: ClassSettlement, Label: "Settlement", Parent: ClassPopPlace,
			Properties: SettlementSchema()},
		{ID: ClassRegion, Label: "Region", Parent: ClassPopPlace},
		{ID: ClassMountain, Label: "Mountain", Parent: ClassPlace},
	}
}

// Version returns a monotonic counter bumped on every mutation of the KB
// (AddInstance, AddClass). Caches built over KB contents record the version
// they were built at and must invalidate when it changes.
func (kb *KB) Version() uint64 { return kb.version.Load() }

// AddClass registers a class. Re-adding a class replaces it.
func (kb *KB) AddClass(c *Class) {
	kb.mu.Lock()
	kb.classes[c.ID] = c
	if _, ok := kb.labelIdx[c.ID]; !ok {
		kb.labelIdx[c.ID] = index.New()
	}
	kb.mu.Unlock()
	kb.version.Add(1)
}

// Class returns the class with the given ID, or nil.
func (kb *KB) Class(id ClassID) *Class {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return kb.classes[id]
}

// Classes returns all class IDs in deterministic order.
func (kb *KB) Classes() []ClassID {
	kb.mu.RLock()
	ids := make([]ClassID, 0, len(kb.classes))
	for id := range kb.classes {
		ids = append(ids, id)
	}
	kb.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Ancestors returns the chain of parent classes from id (exclusive) to the
// root (inclusive).
func (kb *KB) Ancestors(id ClassID) []ClassID {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return kb.ancestorsLocked(id)
}

func (kb *KB) ancestorsLocked(id ClassID) []ClassID {
	var out []ClassID
	c := kb.classes[id]
	for c != nil && c.Parent != "" {
		out = append(out, c.Parent)
		c = kb.classes[c.Parent]
	}
	return out
}

// SharesParent reports whether class a equals b or either is an ancestor of
// the other or they share an immediate parent. Candidate selection uses
// this relaxed check ("must be of the class of the created entity or share
// one parent class").
func (kb *KB) SharesParent(a, b ClassID) bool {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return kb.sharesParentLocked(a, b)
}

func (kb *KB) sharesParentLocked(a, b ClassID) bool {
	if a == b {
		return true
	}
	ancA := append([]ClassID{a}, kb.ancestorsLocked(a)...)
	ancB := append([]ClassID{b}, kb.ancestorsLocked(b)...)
	setA := make(map[ClassID]bool, len(ancA))
	for _, x := range ancA {
		setA[x] = true
	}
	for _, x := range ancB {
		if x == ClassThing {
			continue // everything shares Thing; too weak
		}
		if setA[x] {
			return true
		}
	}
	ca, cb := kb.classes[a], kb.classes[b]
	return ca != nil && cb != nil && ca.Parent != "" && ca.Parent == cb.Parent
}

// TypeOverlap computes the paper's TYPE metric: the overlap of the
// candidate instance's class chain with the entity's class chain, as the
// Jaccard of the two ancestor sets (root excluded).
func (kb *KB) TypeOverlap(a, b ClassID) float64 {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	chain := func(id ClassID) map[ClassID]bool {
		s := map[ClassID]bool{id: true}
		for _, x := range kb.ancestorsLocked(id) {
			if x != ClassThing {
				s[x] = true
			}
		}
		return s
	}
	sa, sb := chain(a), chain(b)
	inter := 0
	for x := range sa {
		if sb[x] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Property looks up a property in the schema of class id (or its ancestors).
func (kb *KB) Property(id ClassID, pid PropertyID) (Property, bool) {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	for c := kb.classes[id]; c != nil; c = kb.classes[c.Parent] {
		for _, p := range c.Properties {
			if p.ID == pid {
				return p, true
			}
		}
		if c.Parent == "" {
			break
		}
	}
	return Property{}, false
}

// Schema returns the property list of class id (schema of the class itself;
// evaluation classes carry the full schema directly).
func (kb *KB) Schema(id ClassID) []Property {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	if c := kb.classes[id]; c != nil {
		return c.Properties
	}
	return nil
}

// AddInstance stores an instance into its class's columnar store,
// assigns it an ID, and indexes its labels. The instance's Facts map may
// be nil. The passed *Instance is copied out — the KB keeps no reference
// to it. Safe to call while other goroutines read or search the KB: the
// instance becomes visible to ID lookups before its labels enter the
// indexes, so a concurrent search never retrieves a document without a
// backing instance.
func (kb *KB) AddInstance(in *Instance) InstanceID {
	kb.mu.Lock()
	in.ID = InstanceID(len(kb.locs))
	st := kb.storeFor(in.Class)
	row := st.add(in, kb.strs)
	kb.locs = append(kb.locs, instLoc{store: kb.storeOf[in.Class], row: row})
	if in.Provenance == ProvenanceIngest {
		kb.ingested = append(kb.ingested, in.ID)
	}
	classIx := kb.labelIdx[in.Class]
	kb.mu.Unlock()

	for _, l := range in.Labels {
		kb.globalIx.Add(int(in.ID), l)
		kb.cand.Add(int(in.ID), strsim.Normalize(l))
		if classIx != nil {
			classIx.Add(int(in.ID), l)
		}
	}
	kb.version.Add(1)
	return in.ID
}

// AddInstances stores a batch of instances, equivalent to calling
// AddInstance for each in order, but builds the label indexes in bulk: the
// deletion-neighborhood construction — the dominant cost of a warm restart
// that replays a written-back KB — parallelizes across index.AddBatch's
// workers. The version counter is bumped once for the whole batch.
func (kb *KB) AddInstances(ins []*Instance) []InstanceID {
	if len(ins) == 0 {
		return nil
	}
	kb.mu.Lock()
	ids := make([]InstanceID, len(ins))
	classIxs := make([]*index.Index, len(ins))
	for i, in := range ins {
		in.ID = InstanceID(len(kb.locs))
		ids[i] = in.ID
		st := kb.storeFor(in.Class)
		row := st.add(in, kb.strs)
		kb.locs = append(kb.locs, instLoc{store: kb.storeOf[in.Class], row: row})
		if in.Provenance == ProvenanceIngest {
			kb.ingested = append(kb.ingested, in.ID)
		}
		classIxs[i] = kb.labelIdx[in.Class]
	}
	kb.mu.Unlock()

	workers := par.DefaultWorkers()
	var global []index.Entry
	perClass := make(map[*index.Index][]index.Entry)
	for i, in := range ins {
		for _, l := range in.Labels {
			global = append(global, index.Entry{Doc: int(in.ID), Label: l})
			kb.cand.Add(int(in.ID), strsim.Normalize(l))
			if ix := classIxs[i]; ix != nil {
				perClass[ix] = append(perClass[ix], index.Entry{Doc: int(in.ID), Label: l})
			}
		}
	}
	kb.globalIx.AddBatch(global, workers)
	for ix, entries := range perClass {
		ix.AddBatch(entries, workers)
	}
	kb.version.Add(1)
	return ids
}

// Instance returns a materialized view of the instance with the given
// ID, or nil. The returned copy owns its Labels slice and Facts map; the
// caller may retain or mutate it without affecting the KB. Hot paths
// should prefer the field accessors (Fact, InstanceClass, InstanceLabel,
// ForEachFact, ...), which read the columns without materializing.
func (kb *KB) Instance(id InstanceID) *Instance {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	st, row, ok := kb.loc(id)
	if !ok {
		return nil
	}
	return st.materialize(row, kb.strs)
}

// NumInstances returns the total number of instances.
func (kb *KB) NumInstances() int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return len(kb.locs)
}

// NumIngested returns the number of write-back instances (Provenance ==
// ProvenanceIngest) — the length of the persistence order snapshot
// segments follow.
func (kb *KB) NumIngested() int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return len(kb.ingested)
}

// InstancesOf returns the instance IDs of class id (not descendants), in
// insertion order. The returned slice is a copy the caller may retain.
func (kb *KB) InstancesOf(id ClassID) []InstanceID {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	var ids []InstanceID
	if si, ok := kb.storeOf[id]; ok {
		ids = kb.storeList[si].ids
	}
	out := make([]InstanceID, len(ids))
	copy(out, ids)
	return out
}

// NumInstancesOf returns the instance count of class id (not
// descendants) without copying the ID list.
func (kb *KB) NumInstancesOf(id ClassID) int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	if si, ok := kb.storeOf[id]; ok {
		return len(kb.storeList[si].ids)
	}
	return 0
}

// CandidateOpts configures Candidates.
type CandidateOpts struct {
	// K is the number of index hits to retrieve (default 20).
	K int
	// Class restricts candidates to instances whose class equals or
	// shares a parent with this class; empty means no restriction.
	Class ClassID
}

// SearchHit pairs a retrieved instance with its label-index retrieval
// score (TF-IDF over shared tokens, fuzzy-expanded per token).
type SearchHit struct {
	Instance InstanceID
	Score    float64
}

// SearchInstances returns up to opts.K instances whose labels best match
// the query via the global label index, with retrieval scores, applying
// the class restriction of §3.4. The serve layer's fuzzy search endpoint
// is a thin wrapper over this.
//
// The class filter is applied to the global top 3·K hits (the paper's
// bounded candidate-selection heuristic, shared with Candidates so serving
// and pipeline retrieval agree): a class whose matches all rank below
// 3·K other-class hits for the query can come back empty even though
// matching instances exist.
//
// Cancelling ctx (a caller's HTTP request context, typically) makes the
// search return the context's error before the index walk and before the
// hit-filtering pass; a nil ctx means no cancellation.
func (kb *KB) SearchInstances(ctx context.Context, label string, opts CandidateOpts) ([]SearchHit, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	var out []SearchHit
	kb.filteredHits(ctx, label, opts, false, func(id InstanceID, _ ClassID, score float64) {
		out = append(out, SearchHit{Instance: id, Score: score})
	})
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Candidates returns candidate instances for a label using the label index,
// applying the class restriction of §3.4. It shares the retrieval walk
// with SearchInstances but emits IDs directly — this is the pipeline's
// hottest retrieval path (blocking, implicit attributes, new detection),
// so it must not pay for scored hits it would throw away. Retrieval goes
// through the LSH candidate index unioned with a bounded rare-token
// posting walk, re-ranked by the exact scorer (identical results whenever
// the candidates cover the reference's top hits — the recall-equivalence
// tests assert they do); SetScanCandidates forces the reference search
// instead.
func (kb *KB) Candidates(label string, opts CandidateOpts) []InstanceID {
	var out []InstanceID
	kb.filteredHits(nil, label, opts, !scanCandidates.Load(), func(id InstanceID, _ ClassID, _ float64) {
		out = append(out, id)
	})
	return out
}

// filteredHits walks the top class-filtered index hits for label, calling
// visit for each of up to opts.K surviving instances. A non-nil cancelled
// ctx skips the index walk entirely (the pipeline's Candidates path passes
// nil and pays nothing). With useLSH the top hits come from LSH bucket
// retrieval re-ranked by the exact scorer; otherwise from the reference
// full search. Both orderings use the same floats and tie-breaks, so the
// class-filtering walk behaves identically.
func (kb *KB) filteredHits(ctx context.Context, label string, opts CandidateOpts, useLSH bool, visit func(InstanceID, ClassID, float64)) {
	k := opts.K
	if k <= 0 {
		k = 20
	}
	if ctx != nil && ctx.Err() != nil {
		return
	}
	var hits []index.Hit
	if useLSH {
		norm := strsim.Normalize(label)
		docs := kb.cand.AppendQuery(nil, norm)
		docs = kb.globalIx.AppendRareDocs(docs, norm, index.DefaultRareCap)
		hits = kb.globalIx.ScoreDocs(norm, index.SortDedupDocs(docs))
		if len(hits) > k*3 {
			hits = hits[:k*3]
		}
	} else {
		hits = kb.globalIx.Search(label, k*3)
	}
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	n := 0
	for _, h := range hits {
		if h.Doc < 0 || h.Doc >= len(kb.locs) {
			continue
		}
		class := kb.storeList[kb.locs[h.Doc].store].class
		if opts.Class != "" && !kb.sharesParentLocked(class, opts.Class) {
			continue
		}
		visit(InstanceID(h.Doc), class, h.Score)
		n++
		if n == k {
			break
		}
	}
}

// String summarizes the KB for logging.
func (kb *KB) String() string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return fmt.Sprintf("KB{classes: %d, instances: %d}", len(kb.classes), len(kb.locs))
}

// SortedPropertyIDs returns a property-keyed map's keys in ascending
// order — the fixed iteration order shared by every component whose float
// accumulations must not depend on map iteration order (the IMPLICIT_ATT
// metrics of row clustering and new detection).
func SortedPropertyIDs[V any](m map[PropertyID]V) []PropertyID {
	if len(m) == 0 {
		return nil
	}
	pids := make([]PropertyID, 0, len(m))
	for pid := range m {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}
