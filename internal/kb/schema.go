package kb

import "repro/internal/dtype"

// The three evaluation-class schemas mirror Table 2 of the paper: the
// properties, their data types, and (in synth.go) their densities.

// GFPlayerSchema returns the GridironFootballPlayer property schema.
func GFPlayerSchema() []Property {
	return []Property{
		{ID: "dbo:birthDate", Label: "birth date", Kind: dtype.Date,
			AltLabels: []string{"born", "dob", "date of birth", "birthdate"}},
		{ID: "dbo:college", Label: "college", Kind: dtype.InstanceReference,
			AltLabels: []string{"school", "university", "alma mater"}},
		{ID: "dbo:birthPlace", Label: "birth place", Kind: dtype.InstanceReference,
			AltLabels: []string{"hometown", "birthplace", "place of birth"}},
		{ID: "dbo:team", Label: "team", Kind: dtype.InstanceReference,
			AltLabels: []string{"club", "franchise", "nfl team"}},
		{ID: "dbo:number", Label: "number", Kind: dtype.NominalInteger,
			AltLabels: []string{"no", "jersey", "jersey number", "#"}},
		{ID: "dbo:position", Label: "position", Kind: dtype.NominalString,
			AltLabels: []string{"pos", "role"}},
		{ID: "dbo:height", Label: "height", Kind: dtype.Quantity,
			AltLabels: []string{"ht", "height in"}},
		{ID: "dbo:weight", Label: "weight", Kind: dtype.Quantity,
			AltLabels: []string{"wt", "weight lbs", "lbs"}},
		{ID: "dbo:draftYear", Label: "draft year", Kind: dtype.Date,
			AltLabels: []string{"drafted", "year drafted", "draft"}},
		{ID: "dbo:draftRound", Label: "draft round", Kind: dtype.NominalInteger,
			AltLabels: []string{"round", "rd"}},
		{ID: "dbo:draftPick", Label: "draft pick", Kind: dtype.NominalInteger,
			AltLabels: []string{"pick", "overall", "overall pick", "selection"}},
	}
}

// SongSchema returns the Song property schema.
func SongSchema() []Property {
	return []Property{
		{ID: "dbo:genre", Label: "genre", Kind: dtype.NominalString,
			AltLabels: []string{"style", "music genre"}},
		{ID: "dbo:musicalArtist", Label: "musical artist", Kind: dtype.InstanceReference,
			AltLabels: []string{"artist", "performer", "singer", "band", "by"}},
		{ID: "dbo:recordLabel", Label: "record label", Kind: dtype.InstanceReference,
			AltLabels: []string{"label"}},
		{ID: "dbo:runtime", Label: "runtime", Kind: dtype.Quantity,
			AltLabels: []string{"length", "duration", "time"}},
		{ID: "dbo:album", Label: "album", Kind: dtype.InstanceReference,
			AltLabels: []string{"from album", "appears on", "record"}},
		{ID: "dbo:writer", Label: "writer", Kind: dtype.InstanceReference,
			AltLabels: []string{"written by", "songwriter", "composer"}},
		{ID: "dbo:releaseDate", Label: "release date", Kind: dtype.Date,
			AltLabels: []string{"released", "release", "year", "date"}},
	}
}

// SettlementSchema returns the Settlement property schema.
func SettlementSchema() []Property {
	return []Property{
		{ID: "dbo:country", Label: "country", Kind: dtype.InstanceReference,
			AltLabels: []string{"nation", "state"}},
		{ID: "dbo:isPartOf", Label: "is part of", Kind: dtype.InstanceReference,
			AltLabels: []string{"district", "county", "region", "province", "part of"}},
		{ID: "dbo:populationTotal", Label: "population total", Kind: dtype.Quantity,
			AltLabels: []string{"population", "pop", "inhabitants", "residents"}},
		{ID: "dbo:postalCode", Label: "postal code", Kind: dtype.NominalString,
			AltLabels: []string{"zip", "zip code", "plz", "postcode"}},
		{ID: "dbo:elevation", Label: "elevation", Kind: dtype.Quantity,
			AltLabels: []string{"altitude", "elevation m", "height above sea level"}},
	}
}

// EvalClasses returns the three evaluation classes in paper order.
func EvalClasses() []ClassID {
	return []ClassID{ClassGFPlayer, ClassSong, ClassSettlement}
}

// ClassShortName returns the paper's short display name for a class.
func ClassShortName(id ClassID) string {
	switch id {
	case ClassGFPlayer:
		return "GF-Player"
	case ClassSong:
		return "Song"
	case ClassSettlement:
		return "Settlement"
	default:
		c := ClassID(id)
		return string(c)
	}
}
