package kb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Snapshot persistence is append-only and epoch-oriented: a directory
// holds numbered instance segments (segment-NNNNNN.ndjson) plus a
// manifest listing the chain. SaveSnapshot writes one segment per call —
// only the instances ingested since the chain was last extended — and
// commits by rewriting the manifest last (temp-file+rename+fsync), so a
// crash at any point leaves the previous complete snapshot loadable.
// CompactSnapshot merges the chain back into one segment under the same
// discipline. The pre-segment format (a monolithic instances.ndjson) is
// read as a single-segment chain and rewritten in segmented form by the
// next save or compaction.
const (
	legacyInstancesFile  = "instances.ndjson"
	snapshotManifestFile = "manifest.json"
	segmentPattern       = "segment-%06d.ndjson"
	// snapshotFormatSegmented is the Manifest.Format of the segmented
	// layout; zero is the legacy monolithic format.
	snapshotFormatSegmented = 2
)

// ErrNoSnapshot is returned by LoadSnapshot when the directory holds no
// complete snapshot (no manifest).
var ErrNoSnapshot = errors.New("kb: no snapshot manifest")

// snapshotFault, when non-nil, is called at the named commit points of
// SaveSnapshot and CompactSnapshot ("segment" after a delta segment is
// in place, "compact-merge" after a merged segment is in place — both
// before the manifest commit). A returned error aborts the operation
// there, simulating a crash between segment write and manifest rename.
// Test hook only.
var snapshotFault func(stage string) error

// SegmentInfo describes one instance segment of a snapshot chain.
type SegmentInfo struct {
	// File is the segment's file name inside the snapshot directory.
	File string `json:"file"`
	// Instances is the number of instance lines in the segment.
	Instances int `json:"instances"`
	// FirstEpoch and LastEpoch bound the ingest epochs of the segment's
	// instances (diagnostic; zero for segments converted from the legacy
	// monolithic format).
	FirstEpoch int `json:"firstEpoch,omitempty"`
	LastEpoch  int `json:"lastEpoch,omitempty"`
}

// Manifest describes a KB snapshot: the seed world it was taken against,
// the segment chain holding its ingested instances, and the engine
// bookkeeping (epochs, ingested tables) needed to resume.
type Manifest struct {
	// Format versions the directory layout: snapshotFormatSegmented for
	// the segment chain, zero for the legacy monolithic instances.ndjson.
	Format int `json:"format,omitempty"`
	// SeedInstances is the number of non-ingested (seed) instances in the
	// KB at save time. LoadSnapshot refuses to load over a KB whose seed
	// size differs: the snapshot's discoveries were made against that world.
	SeedInstances int `json:"seedInstances"`
	// Instances is the total number of ingested instances across the
	// segment chain.
	Instances int `json:"instances"`
	// KBVersion is the KB's mutation counter at save time (diagnostic;
	// version counters restart from the reloaded state's own mutations).
	KBVersion uint64 `json:"kbVersion"`
	// WorldKey identifies the deterministic seed world the snapshot was
	// taken against (the caller encodes generation seed and scales).
	// Loaders that know their own world key must refuse a mismatch: the
	// seed-count check alone cannot tell two same-sized worlds apart, and
	// loading discoveries onto a different world silently misaligns every
	// label, signature and table ID.
	WorldKey string `json:"worldKey,omitempty"`
	// Epochs maps class ID to the number of completed ingest epochs.
	Epochs map[string]int `json:"epochs,omitempty"`
	// Tables maps class ID to the corpus table IDs ingested so far, so a
	// resumed engine does not re-ingest (and "auto" ingestion does not
	// re-pick) tables processed before the snapshot.
	Tables map[string][]int `json:"tables,omitempty"`
	// Segments is the ordered chain of instance segments; LoadSnapshot
	// replays them in order. Empty in the legacy format, whose single
	// implicit segment is instances.ndjson.
	Segments []SegmentInfo `json:"segments,omitempty"`
	// NextSegment is the sequence number the next written segment file
	// will use; it only grows, so a crashed save's orphan file is
	// overwritten by the retry rather than joined to the chain.
	NextSegment int `json:"nextSegment,omitempty"`
	// CompactedAt records the last compaction: the highest ingest epoch
	// merged into a single segment (zero when never compacted).
	CompactedAt int `json:"compactedAt,omitempty"`
}

// segmentChain returns the manifest's segment chain, synthesizing the
// implicit single segment of a legacy monolithic manifest.
func segmentChain(m Manifest) []SegmentInfo {
	if len(m.Segments) > 0 {
		return m.Segments
	}
	if m.Format == 0 && m.Instances > 0 {
		return []SegmentInfo{{File: legacyInstancesFile, Instances: m.Instances}}
	}
	return nil
}

// chainReusable reports whether the prior manifest's segment chain is a
// valid persisted prefix of this KB's ingestion order: same world, same
// seed count, chain not longer than what the KB holds, internally
// consistent, and every segment file present. When it is not, SaveSnapshot
// falls back to rewriting a fresh single-segment chain.
func chainReusable(dir string, prior Manifest, seeds int, worldKey string, ingested int) bool {
	if prior.WorldKey != worldKey || prior.SeedInstances != seeds || prior.Instances > ingested {
		return false
	}
	total := 0
	for _, seg := range segmentChain(prior) {
		if seg.Instances < 0 || strings.ContainsRune(seg.File, os.PathSeparator) {
			return false
		}
		if _, err := os.Stat(filepath.Join(dir, seg.File)); err != nil {
			return false
		}
		total += seg.Instances
	}
	return total == prior.Instances
}

// SaveSnapshot persists the KB's ingested instances (Provenance ==
// ProvenanceIngest) plus a manifest into dir, creating it if needed. meta
// carries the caller-owned manifest fields (WorldKey, Epochs, Tables);
// counts, chain and KB version are filled in here.
//
// The save is incremental: when dir already holds a snapshot of the same
// world, only the instances ingested since that snapshot are written, as
// one new segment appended to the chain (no segment at all when nothing
// new was ingested). The manifest commits last via temp-file+rename, so
// a crash mid-save leaves the prior snapshot intact; files a crashed
// save orphaned are overwritten or removed by the next successful one.
func (kb *KB) SaveSnapshot(dir string, meta Manifest) (Manifest, error) {
	m := Manifest{
		Format:    snapshotFormatSegmented,
		KBVersion: kb.Version(),
		WorldKey:  meta.WorldKey,
		Epochs:    meta.Epochs,
		Tables:    meta.Tables,
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("kb: creating snapshot dir: %w", err)
	}

	// Pin the persistence state under one lock section, so the manifest
	// can never disagree with the segments when the KB grows concurrently
	// with the save.
	kb.mu.RLock()
	seeds := len(kb.locs) - len(kb.ingested)
	ingested := make([]InstanceID, len(kb.ingested))
	copy(ingested, kb.ingested)
	kb.mu.RUnlock()
	m.SeedInstances = seeds
	m.Instances = len(ingested)

	var chain []SegmentInfo
	next := 1
	if prior, err := ReadManifest(dir); err == nil && chainReusable(dir, prior, seeds, meta.WorldKey, len(ingested)) {
		chain = segmentChain(prior)
		if prior.NextSegment > next {
			next = prior.NextSegment
		}
		m.CompactedAt = prior.CompactedAt
	} else if err != nil && !errors.Is(err, ErrNoSnapshot) {
		return Manifest{}, err
	}

	persisted := 0
	for _, seg := range chain {
		persisted += seg.Instances
	}
	if delta := ingested[persisted:]; len(delta) > 0 {
		name := fmt.Sprintf(segmentPattern, next)
		if err := atomicWrite(filepath.Join(dir, name), func(f *os.File) error {
			return kb.writeInstancesByID(f, delta)
		}); err != nil {
			return Manifest{}, err
		}
		_, first := kb.InstanceProvenance(delta[0])
		_, last := kb.InstanceProvenance(delta[len(delta)-1])
		chain = append(chain, SegmentInfo{File: name, Instances: len(delta), FirstEpoch: first, LastEpoch: last})
		next++
		if snapshotFault != nil {
			if err := snapshotFault("segment"); err != nil {
				return Manifest{}, err
			}
		}
	}
	m.Segments = chain
	m.NextSegment = next

	if err := writeManifest(dir, m); err != nil {
		return Manifest{}, err
	}
	removeUnreferenced(dir, m)
	return m, nil
}

// writeManifest commits the manifest atomically (temp-file+rename with
// file and directory fsync) — the snapshot's single commit point.
func writeManifest(dir string, m Manifest) error {
	raw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("kb: encoding manifest: %w", err)
	}
	raw = append(raw, '\n')
	return atomicWrite(filepath.Join(dir, snapshotManifestFile), func(f *os.File) error {
		_, werr := f.Write(raw)
		return werr
	})
}

// removeUnreferenced deletes instance files in dir that the committed
// manifest does not list — segments a crashed or superseded save left
// behind, the legacy monolith after conversion, and stale atomicWrite
// temporaries. Best effort: a file that cannot be removed is retried by
// the next save or compaction, and never corrupts the snapshot.
func removeUnreferenced(dir string, m Manifest) {
	keep := make(map[string]bool, len(m.Segments))
	for _, seg := range m.Segments {
		keep[seg.File] = true
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if !e.Type().IsRegular() || keep[name] || name == snapshotManifestFile {
			continue
		}
		stale := name == legacyInstancesFile ||
			(strings.HasPrefix(name, "segment-") && strings.HasSuffix(name, ".ndjson")) ||
			strings.Contains(name, ".tmp")
		if stale {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// atomicWrite writes path via a temporary sibling file and a rename, with
// an fsync before the rename so the content is durable when the name is.
func atomicWrite(path string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("kb: creating temp file for %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := fill(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("kb: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("kb: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("kb: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("kb: committing %s: %w", path, err)
	}
	// Fsync the parent directory so the rename itself is durable — without
	// it a power loss can roll back the name while keeping the content (or
	// the reverse), breaking the segments-then-manifest commit ordering.
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("kb: opening dir of %s: %w", path, err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("kb: syncing dir of %s: %w", path, err)
	}
	return nil
}

// ReadManifest reads the manifest of a snapshot directory without loading
// instances. A missing manifest returns ErrNoSnapshot.
func ReadManifest(dir string) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, snapshotManifestFile))
	if errors.Is(err, fs.ErrNotExist) {
		return Manifest{}, ErrNoSnapshot
	}
	if err != nil {
		return Manifest{}, fmt.Errorf("kb: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("kb: decoding manifest: %w", err)
	}
	return m, nil
}

// LoadSnapshot appends a snapshot's ingested instances to the KB by
// replaying its segment chain in order, and returns its manifest. The KB
// must hold exactly the seed world the snapshot was taken against (same
// seed instance count, no ingested instances yet); a mismatch returns an
// error rather than silently duplicating or misaligning instance IDs. A
// directory without a manifest returns ErrNoSnapshot, which callers
// treat as a cold start. Legacy monolithic snapshots load as a
// single-segment chain.
func (kb *KB) LoadSnapshot(dir string) (Manifest, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return Manifest{}, err
	}
	if got := kb.NumInstances(); got != m.SeedInstances {
		return Manifest{}, fmt.Errorf("kb: snapshot expects %d seed instances, KB has %d (world mismatch?)",
			m.SeedInstances, got)
	}
	total := 0
	for _, seg := range segmentChain(m) {
		f, err := os.Open(filepath.Join(dir, seg.File))
		if err != nil {
			return Manifest{}, fmt.Errorf("kb: opening snapshot segment: %w", err)
		}
		before := kb.NumInstances()
		err = kb.ReadInstances(f)
		f.Close()
		if err != nil {
			return Manifest{}, fmt.Errorf("kb: segment %s: %w", seg.File, err)
		}
		if got := kb.NumInstances() - before; got != seg.Instances {
			return Manifest{}, fmt.Errorf("kb: segment %s lists %d instances, file held %d", seg.File, seg.Instances, got)
		}
		total += seg.Instances
	}
	if total != m.Instances {
		return Manifest{}, fmt.Errorf("kb: snapshot manifest lists %d instances, chain held %d", m.Instances, total)
	}
	return m, nil
}

// CompactSnapshot merges dir's segment chain into a single segment and
// commits the shortened manifest, returning it. The merged segment is
// written first and the manifest last, so a crash mid-compaction leaves
// the old chain loadable (plus an orphan merged file the next compaction
// or save removes). A chain of one segmented-format segment is already
// compact and returns unchanged; a legacy monolithic snapshot is
// converted to a numbered segment. Instance bytes are copied verbatim,
// so compaction can never alter what LoadSnapshot reconstructs.
func CompactSnapshot(dir string) (Manifest, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return Manifest{}, err
	}
	chain := segmentChain(m)
	if len(chain) == 0 || (len(chain) == 1 && m.Format == snapshotFormatSegmented && len(m.Segments) == 1) {
		removeUnreferenced(dir, m)
		return m, nil
	}

	next := m.NextSegment
	if next < 1 {
		next = 1
	}
	merged := SegmentInfo{File: fmt.Sprintf(segmentPattern, next)}
	for _, seg := range chain {
		merged.Instances += seg.Instances
		if seg.FirstEpoch > 0 && (merged.FirstEpoch == 0 || seg.FirstEpoch < merged.FirstEpoch) {
			merged.FirstEpoch = seg.FirstEpoch
		}
		if seg.LastEpoch > merged.LastEpoch {
			merged.LastEpoch = seg.LastEpoch
		}
	}
	if err := atomicWrite(filepath.Join(dir, merged.File), func(f *os.File) error {
		lines := 0
		w := bufio.NewWriter(f)
		for _, seg := range chain {
			n, err := appendSegment(w, filepath.Join(dir, seg.File))
			if err != nil {
				return err
			}
			lines += n
		}
		if lines != merged.Instances {
			return fmt.Errorf("chain holds %d instance lines, manifest lists %d", lines, merged.Instances)
		}
		return w.Flush()
	}); err != nil {
		return Manifest{}, err
	}
	if snapshotFault != nil {
		if err := snapshotFault("compact-merge"); err != nil {
			return Manifest{}, err
		}
	}

	m.Format = snapshotFormatSegmented
	m.Segments = []SegmentInfo{merged}
	m.NextSegment = next + 1
	if merged.LastEpoch > 0 {
		m.CompactedAt = merged.LastEpoch
	} else {
		// A chain converted from the legacy format carries no per-segment
		// epochs; fall back to the engine bookkeeping.
		for _, e := range m.Epochs {
			if e > m.CompactedAt {
				m.CompactedAt = e
			}
		}
	}
	if err := writeManifest(dir, m); err != nil {
		return Manifest{}, err
	}
	removeUnreferenced(dir, m)
	return m, nil
}

// appendSegment copies one segment's lines into w, returning how many
// instance lines it held.
func appendSegment(w io.Writer, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lines := 0
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		if _, err := w.Write(sc.Bytes()); err != nil {
			return lines, err
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return lines, err
		}
		lines++
	}
	return lines, sc.Err()
}
