package kb

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Snapshot file names inside a snapshot directory. The manifest is written
// last and atomically, so its presence marks a complete snapshot.
const (
	snapshotInstancesFile = "instances.ndjson"
	snapshotManifestFile  = "manifest.json"
)

// ErrNoSnapshot is returned by LoadSnapshot when the directory holds no
// complete snapshot (no manifest).
var ErrNoSnapshot = errors.New("kb: no snapshot manifest")

// Manifest describes a KB snapshot: how many seed instances the world had
// when it was taken (a restart must regenerate the identical seed world
// before loading), how many ingested instances the snapshot holds, the KB
// version at save time, and the completed ingest epoch per class so
// resumed engines continue the epoch sequence.
type Manifest struct {
	// SeedInstances is the number of non-ingested (seed) instances in the
	// KB at save time. LoadSnapshot refuses to load over a KB whose seed
	// size differs: the snapshot's discoveries were made against that world.
	SeedInstances int `json:"seedInstances"`
	// Instances is the number of ingested instances in the snapshot file.
	Instances int `json:"instances"`
	// KBVersion is the KB's mutation counter at save time (diagnostic;
	// version counters restart from the reloaded state's own mutations).
	KBVersion uint64 `json:"kbVersion"`
	// WorldKey identifies the deterministic seed world the snapshot was
	// taken against (the caller encodes generation seed and scales).
	// Loaders that know their own world key must refuse a mismatch: the
	// seed-count check alone cannot tell two same-sized worlds apart, and
	// loading discoveries onto a different world silently misaligns every
	// label, signature and table ID.
	WorldKey string `json:"worldKey,omitempty"`
	// Epochs maps class ID to the number of completed ingest epochs.
	Epochs map[string]int `json:"epochs,omitempty"`
	// Tables maps class ID to the corpus table IDs ingested so far, so a
	// resumed engine does not re-ingest (and "auto" ingestion does not
	// re-pick) tables processed before the snapshot.
	Tables map[string][]int `json:"tables,omitempty"`
}

// SaveSnapshot persists the KB's ingested instances (Provenance ==
// ProvenanceIngest) plus a manifest into dir, creating it if needed. meta
// carries the caller-owned manifest fields (Epochs, Tables); the counts
// and KB version are filled in here. Both files are written to temporary
// names and renamed into place — instances first, manifest last — so a
// crash mid-save never leaves a directory that LoadSnapshot would accept
// with torn contents.
func (kb *KB) SaveSnapshot(dir string, meta Manifest) (Manifest, error) {
	m := Manifest{KBVersion: kb.Version(), WorldKey: meta.WorldKey, Epochs: meta.Epochs, Tables: meta.Tables}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("kb: creating snapshot dir: %w", err)
	}

	// Collect the instance set and the counts under one lock section, so
	// the manifest can never disagree with the instances file when the KB
	// grows concurrently with the save.
	kb.mu.RLock()
	snap := make([]*Instance, 0, len(kb.instances))
	for _, in := range kb.instances {
		if in.Provenance == ProvenanceIngest {
			snap = append(snap, in)
		}
	}
	m.SeedInstances = len(kb.instances) - len(snap)
	kb.mu.RUnlock()
	m.Instances = len(snap)

	instPath := filepath.Join(dir, snapshotInstancesFile)
	if err := atomicWrite(instPath, func(f *os.File) error {
		return writeInstanceList(f, snap)
	}); err != nil {
		return Manifest{}, err
	}

	raw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("kb: encoding manifest: %w", err)
	}
	raw = append(raw, '\n')
	manPath := filepath.Join(dir, snapshotManifestFile)
	if err := atomicWrite(manPath, func(f *os.File) error {
		_, werr := f.Write(raw)
		return werr
	}); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// atomicWrite writes path via a temporary sibling file and a rename, with
// an fsync before the rename so the content is durable when the name is.
func atomicWrite(path string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("kb: creating temp file for %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := fill(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("kb: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("kb: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("kb: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("kb: committing %s: %w", path, err)
	}
	// Fsync the parent directory so the rename itself is durable — without
	// it a power loss can roll back the name while keeping the content (or
	// the reverse), breaking the instances-then-manifest commit ordering.
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("kb: opening dir of %s: %w", path, err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("kb: syncing dir of %s: %w", path, err)
	}
	return nil
}

// ReadManifest reads the manifest of a snapshot directory without loading
// instances. A missing manifest returns ErrNoSnapshot.
func ReadManifest(dir string) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, snapshotManifestFile))
	if errors.Is(err, fs.ErrNotExist) {
		return Manifest{}, ErrNoSnapshot
	}
	if err != nil {
		return Manifest{}, fmt.Errorf("kb: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("kb: decoding manifest: %w", err)
	}
	return m, nil
}

// LoadSnapshot appends a snapshot's ingested instances to the KB and
// returns its manifest. The KB must hold exactly the seed world the
// snapshot was taken against (same seed instance count, no ingested
// instances yet); a mismatch returns an error rather than silently
// duplicating or misaligning instance IDs. A directory without a manifest
// returns ErrNoSnapshot, which callers treat as a cold start.
func (kb *KB) LoadSnapshot(dir string) (Manifest, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return Manifest{}, err
	}
	if got := kb.NumInstances(); got != m.SeedInstances {
		return Manifest{}, fmt.Errorf("kb: snapshot expects %d seed instances, KB has %d (world mismatch?)",
			m.SeedInstances, got)
	}
	f, err := os.Open(filepath.Join(dir, snapshotInstancesFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("kb: opening snapshot instances: %w", err)
	}
	defer f.Close()
	if err := kb.ReadInstances(f); err != nil {
		return Manifest{}, err
	}
	if got := kb.NumInstances() - m.SeedInstances; got != m.Instances {
		return Manifest{}, fmt.Errorf("kb: snapshot manifest lists %d instances, file held %d", m.Instances, got)
	}
	return m, nil
}
