package kb

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dtype"
)

// mustSearch runs an uncancellable SearchInstances.
func mustSearch(t *testing.T, k *KB, q string, opts CandidateOpts) []SearchHit {
	t.Helper()
	hits, err := k.SearchInstances(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	return hits
}

// seedPlusIngested builds a KB with two seed instances and two ingested
// write-backs, mirroring a server's state after an epoch.
func seedPlusIngested(t *testing.T) *KB {
	t.Helper()
	k := New()
	k.AddInstance(&Instance{Class: ClassSong, Labels: []string{"Seed Song"}})
	k.AddInstance(&Instance{Class: ClassGFPlayer, Labels: []string{"Seed Player"}})
	k.AddInstance(&Instance{
		Class:  ClassSong,
		Labels: []string{"Found Tune"},
		Facts: map[PropertyID]dtype.Value{
			"dbo:runtime": dtype.NewQuantity(200),
		},
		Provenance:  ProvenanceIngest,
		IngestEpoch: 1,
	})
	k.AddInstance(&Instance{
		Class:       ClassSong,
		Labels:      []string{"Second Find"},
		Provenance:  ProvenanceIngest,
		IngestEpoch: 2,
	})
	return k
}

func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := seedPlusIngested(t)

	m, err := src.SaveSnapshot(dir, Manifest{
		Epochs: map[string]int{string(ClassSong): 2},
		Tables: map[string][]int{string(ClassSong): {3, 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.SeedInstances != 2 || m.Instances != 2 {
		t.Fatalf("manifest = %+v, want 2 seed / 2 ingested", m)
	}
	if m.Epochs[string(ClassSong)] != 2 {
		t.Fatalf("manifest epochs = %v", m.Epochs)
	}
	if got := m.Tables[string(ClassSong)]; len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("manifest tables = %v", m.Tables)
	}

	// A restart regenerates the seed world, then loads the discoveries.
	dst := New()
	dst.AddInstance(&Instance{Class: ClassSong, Labels: []string{"Seed Song"}})
	dst.AddInstance(&Instance{Class: ClassGFPlayer, Labels: []string{"Seed Player"}})
	lm, err := dst.LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Instances != 2 || lm.Epochs[string(ClassSong)] != 2 || len(lm.Tables[string(ClassSong)]) != 2 {
		t.Fatalf("loaded manifest = %+v", lm)
	}

	// Full-KB serialization must be byte-identical to the unsnapshotted KB.
	var want, got bytes.Buffer
	if err := src.WriteInstances(&want); err != nil {
		t.Fatal(err)
	}
	if err := dst.WriteInstances(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("reloaded KB serialization differs from the original")
	}
	// The reloaded discoveries answer label-index queries (caches rebuilt
	// over the restored state).
	hits := mustSearch(t, dst, "Found Tune", CandidateOpts{Class: ClassSong})
	if len(hits) == 0 || dst.Instance(hits[0].Instance).Label() != "Found Tune" {
		t.Errorf("reloaded instance not retrievable: %v", hits)
	}
	if dst.Instance(2).Provenance != ProvenanceIngest || dst.Instance(2).IngestEpoch != 1 {
		t.Error("reloaded instance lost provenance or epoch")
	}
}

func TestSnapshotSeedMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	if _, err := seedPlusIngested(t).SaveSnapshot(dir, Manifest{}); err != nil {
		t.Fatal(err)
	}
	// Wrong world: one seed instance instead of two.
	dst := New()
	dst.AddInstance(&Instance{Class: ClassSong, Labels: []string{"Seed Song"}})
	if _, err := dst.LoadSnapshot(dir); err == nil {
		t.Error("seed-count mismatch should be rejected")
	}
}

func TestSnapshotMissingIsErrNoSnapshot(t *testing.T) {
	dir := t.TempDir()
	if _, err := New().LoadSnapshot(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("empty dir error = %v, want ErrNoSnapshot", err)
	}
	if _, err := ReadManifest(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("ReadManifest error = %v, want ErrNoSnapshot", err)
	}
}

func TestSnapshotOverwriteAndNoTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	k := seedPlusIngested(t)
	if _, err := k.SaveSnapshot(dir, Manifest{Epochs: map[string]int{string(ClassSong): 1}}); err != nil {
		t.Fatal(err)
	}
	// A later save overwrites atomically.
	k.AddInstance(&Instance{
		Class: ClassSong, Labels: []string{"Third Find"},
		Provenance: ProvenanceIngest, IngestEpoch: 3,
	})
	m, err := k.SaveSnapshot(dir, Manifest{Epochs: map[string]int{string(ClassSong): 3}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Instances != 3 {
		t.Fatalf("second save manifest = %+v", m)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("snapshot dir holds %v, want exactly instances + manifest", names)
	}
	if _, err := ReadManifest(filepath.Join(dir)); err != nil {
		t.Fatal(err)
	}
}
