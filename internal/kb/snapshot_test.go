package kb

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dtype"
)

// mustSearch runs an uncancellable SearchInstances.
func mustSearch(t *testing.T, k *KB, q string, opts CandidateOpts) []SearchHit {
	t.Helper()
	hits, err := k.SearchInstances(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	return hits
}

// seedPlusIngested builds a KB with two seed instances and two ingested
// write-backs, mirroring a server's state after an epoch.
func seedPlusIngested(t *testing.T) *KB {
	t.Helper()
	k := New()
	k.AddInstance(&Instance{Class: ClassSong, Labels: []string{"Seed Song"}})
	k.AddInstance(&Instance{Class: ClassGFPlayer, Labels: []string{"Seed Player"}})
	k.AddInstance(&Instance{
		Class:  ClassSong,
		Labels: []string{"Found Tune"},
		Facts: map[PropertyID]dtype.Value{
			"dbo:runtime": dtype.NewQuantity(200),
		},
		Provenance:  ProvenanceIngest,
		IngestEpoch: 1,
	})
	k.AddInstance(&Instance{
		Class:       ClassSong,
		Labels:      []string{"Second Find"},
		Provenance:  ProvenanceIngest,
		IngestEpoch: 2,
	})
	return k
}

func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := seedPlusIngested(t)

	m, err := src.SaveSnapshot(dir, Manifest{
		Epochs: map[string]int{string(ClassSong): 2},
		Tables: map[string][]int{string(ClassSong): {3, 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.SeedInstances != 2 || m.Instances != 2 {
		t.Fatalf("manifest = %+v, want 2 seed / 2 ingested", m)
	}
	if m.Epochs[string(ClassSong)] != 2 {
		t.Fatalf("manifest epochs = %v", m.Epochs)
	}
	if got := m.Tables[string(ClassSong)]; len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("manifest tables = %v", m.Tables)
	}

	// A restart regenerates the seed world, then loads the discoveries.
	dst := New()
	dst.AddInstance(&Instance{Class: ClassSong, Labels: []string{"Seed Song"}})
	dst.AddInstance(&Instance{Class: ClassGFPlayer, Labels: []string{"Seed Player"}})
	lm, err := dst.LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Instances != 2 || lm.Epochs[string(ClassSong)] != 2 || len(lm.Tables[string(ClassSong)]) != 2 {
		t.Fatalf("loaded manifest = %+v", lm)
	}

	// Full-KB serialization must be byte-identical to the unsnapshotted KB.
	var want, got bytes.Buffer
	if err := src.WriteInstances(&want); err != nil {
		t.Fatal(err)
	}
	if err := dst.WriteInstances(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("reloaded KB serialization differs from the original")
	}
	// The reloaded discoveries answer label-index queries (caches rebuilt
	// over the restored state).
	hits := mustSearch(t, dst, "Found Tune", CandidateOpts{Class: ClassSong})
	if len(hits) == 0 || dst.Instance(hits[0].Instance).Label() != "Found Tune" {
		t.Errorf("reloaded instance not retrievable: %v", hits)
	}
	if dst.Instance(2).Provenance != ProvenanceIngest || dst.Instance(2).IngestEpoch != 1 {
		t.Error("reloaded instance lost provenance or epoch")
	}
}

func TestSnapshotSeedMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	if _, err := seedPlusIngested(t).SaveSnapshot(dir, Manifest{}); err != nil {
		t.Fatal(err)
	}
	// Wrong world: one seed instance instead of two.
	dst := New()
	dst.AddInstance(&Instance{Class: ClassSong, Labels: []string{"Seed Song"}})
	if _, err := dst.LoadSnapshot(dir); err == nil {
		t.Error("seed-count mismatch should be rejected")
	}
}

func TestSnapshotMissingIsErrNoSnapshot(t *testing.T) {
	dir := t.TempDir()
	if _, err := New().LoadSnapshot(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("empty dir error = %v, want ErrNoSnapshot", err)
	}
	if _, err := ReadManifest(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("ReadManifest error = %v, want ErrNoSnapshot", err)
	}
}

// readFile returns a file's bytes, failing the test on error.
func readFile(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// loadFresh regenerates the two-instance seed world and loads dir onto it,
// returning the serialized instances for byte-level comparison.
func loadFresh(t *testing.T, dir string) []byte {
	t.Helper()
	dst := New()
	dst.AddInstance(&Instance{Class: ClassSong, Labels: []string{"Seed Song"}})
	dst.AddInstance(&Instance{Class: ClassGFPlayer, Labels: []string{"Seed Player"}})
	if _, err := dst.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dst.WriteInstances(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotCrashMidSegmentRecovers simulates a crash between the delta
// segment write and the manifest commit: the previous manifest must stay
// byte-identical, the previous snapshot must stay loadable, and the
// retried save must converge to the same state an uncrashed save reaches.
func TestSnapshotCrashMidSegmentRecovers(t *testing.T) {
	dir := t.TempDir()
	k := seedPlusIngested(t)
	if _, err := k.SaveSnapshot(dir, Manifest{}); err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(dir, "manifest.json")
	wantManifest := readFile(t, manifestPath)
	wantLoad := loadFresh(t, dir)

	// Crash: the delta segment reaches disk, the manifest never does.
	k.AddInstance(&Instance{
		Class: ClassSong, Labels: []string{"Third Find"},
		Provenance: ProvenanceIngest, IngestEpoch: 3,
	})
	boom := errors.New("crash between segment write and manifest commit")
	snapshotFault = func(stage string) error {
		if stage == "segment" {
			return boom
		}
		return nil
	}
	t.Cleanup(func() { snapshotFault = nil })
	if _, err := k.SaveSnapshot(dir, Manifest{}); !errors.Is(err, boom) {
		t.Fatalf("crashed save error = %v, want injected fault", err)
	}

	// The committed snapshot is exactly the previous one.
	if !bytes.Equal(readFile(t, manifestPath), wantManifest) {
		t.Error("crashed save altered the committed manifest")
	}
	if !bytes.Equal(loadFresh(t, dir), wantLoad) {
		t.Error("crashed save altered what LoadSnapshot reconstructs")
	}

	// The retry overwrites the orphan segment (NextSegment never moved)
	// and commits; the orphan does not join the chain twice.
	snapshotFault = nil
	m, err := k.SaveSnapshot(dir, Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Instances != 3 || len(m.Segments) != 2 {
		t.Fatalf("retried save manifest = %+v, want 3 instances across 2 segments", m)
	}
	if names := dirNames(t, dir); len(names) != 3 {
		t.Errorf("dir after retry holds %v, want two segments + manifest", names)
	}
	var want bytes.Buffer
	if err := k.WriteInstances(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loadFresh(t, dir), want.Bytes()) {
		t.Error("retried save reconstructs a different KB")
	}
}

// TestSnapshotCrashMidCompactionRecovers simulates a crash between the
// merged segment write and the manifest commit: the old chain must stay
// the committed snapshot, and the retried compaction must succeed.
func TestSnapshotCrashMidCompactionRecovers(t *testing.T) {
	dir := t.TempDir()
	k := seedPlusIngested(t)
	if _, err := k.SaveSnapshot(dir, Manifest{}); err != nil {
		t.Fatal(err)
	}
	k.AddInstance(&Instance{
		Class: ClassSong, Labels: []string{"Third Find"},
		Provenance: ProvenanceIngest, IngestEpoch: 3,
	})
	if _, err := k.SaveSnapshot(dir, Manifest{}); err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(dir, "manifest.json")
	wantManifest := readFile(t, manifestPath)
	wantLoad := loadFresh(t, dir)

	boom := errors.New("crash between merged segment and manifest commit")
	snapshotFault = func(stage string) error {
		if stage == "compact-merge" {
			return boom
		}
		return nil
	}
	t.Cleanup(func() { snapshotFault = nil })
	if _, err := CompactSnapshot(dir); !errors.Is(err, boom) {
		t.Fatalf("crashed compaction error = %v, want injected fault", err)
	}
	if !bytes.Equal(readFile(t, manifestPath), wantManifest) {
		t.Error("crashed compaction altered the committed manifest")
	}
	if !bytes.Equal(loadFresh(t, dir), wantLoad) {
		t.Error("crashed compaction altered what LoadSnapshot reconstructs")
	}

	snapshotFault = nil
	m, err := CompactSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 1 || m.Segments[0].Instances != 3 || m.CompactedAt != 3 {
		t.Fatalf("retried compaction manifest = %+v", m)
	}
	if names := dirNames(t, dir); len(names) != 2 {
		t.Errorf("dir after retried compaction holds %v, want one segment + manifest", names)
	}
	if !bytes.Equal(loadFresh(t, dir), wantLoad) {
		t.Error("retried compaction reconstructs a different KB")
	}
}

// dirNames lists the regular files of dir, sorted by ReadDir.
func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestSnapshotAppendsSegmentsAndCompacts(t *testing.T) {
	dir := t.TempDir()
	k := seedPlusIngested(t)
	if _, err := k.SaveSnapshot(dir, Manifest{Epochs: map[string]int{string(ClassSong): 1}}); err != nil {
		t.Fatal(err)
	}
	// A later save appends one delta segment; nothing is rewritten.
	firstSegment := filepath.Join(dir, "segment-000001.ndjson")
	firstBytes := readFile(t, firstSegment)
	k.AddInstance(&Instance{
		Class: ClassSong, Labels: []string{"Third Find"},
		Provenance: ProvenanceIngest, IngestEpoch: 3,
	})
	m, err := k.SaveSnapshot(dir, Manifest{Epochs: map[string]int{string(ClassSong): 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readFile(t, firstSegment), firstBytes) {
		t.Error("delta save rewrote the already-persisted segment")
	}
	if m.Instances != 3 || len(m.Segments) != 2 {
		t.Fatalf("second save manifest = %+v, want 3 instances across 2 segments", m)
	}
	if m.Segments[1].Instances != 1 || m.Segments[1].FirstEpoch != 3 || m.Segments[1].LastEpoch != 3 {
		t.Fatalf("delta segment = %+v, want exactly the epoch-3 write-back", m.Segments[1])
	}
	if names := dirNames(t, dir); len(names) != 3 {
		t.Errorf("snapshot dir holds %v, want two segments + manifest", names)
	}

	// A save with nothing new ingested appends no segment.
	m, err = k.SaveSnapshot(dir, Manifest{Epochs: map[string]int{string(ClassSong): 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 2 {
		t.Fatalf("no-op save changed the chain: %+v", m.Segments)
	}

	// Compaction merges the chain into one segment and removes the old
	// files; the reconstructed KB is unchanged.
	cm, err := CompactSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.Segments) != 1 || cm.Segments[0].Instances != 3 || cm.CompactedAt != 3 {
		t.Fatalf("compacted manifest = %+v", cm)
	}
	if names := dirNames(t, dir); len(names) != 2 {
		t.Errorf("compacted dir holds %v, want one segment + manifest", names)
	}
	dst := New()
	dst.AddInstance(&Instance{Class: ClassSong, Labels: []string{"Seed Song"}})
	dst.AddInstance(&Instance{Class: ClassGFPlayer, Labels: []string{"Seed Player"}})
	if _, err := dst.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := k.WriteInstances(&want); err != nil {
		t.Fatal(err)
	}
	if err := dst.WriteInstances(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("compacted snapshot reconstructs a different KB")
	}
	if _, err := ReadManifest(filepath.Join(dir)); err != nil {
		t.Fatal(err)
	}
}
