package kb

import "sort"

// ClassProfile summarizes one class for Table 1: instance and fact counts.
type ClassProfile struct {
	Class     ClassID
	Instances int
	Facts     int
}

// PropertyProfile summarizes one property for Table 2: fact count and
// density over the class's instances.
type PropertyProfile struct {
	Class    ClassID
	Property PropertyID
	Facts    int
	Density  float64
}

// ProfileClass computes the Table 1 row for a class. Columnar storage
// makes this O(columns): instance and per-column fact counts are slice
// lengths.
func (kb *KB) ProfileClass(id ClassID) ClassProfile {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	p := ClassProfile{Class: id}
	if si, ok := kb.storeOf[id]; ok {
		st := kb.storeList[si]
		p.Instances = len(st.ids)
		p.Facts = st.numFactsTotal()
	}
	return p
}

// ProfileProperties computes the Table 2 rows for a class, ordered by
// descending density (as the paper prints them). Only properties in the
// class schema are reported. Schema-property counts are column lengths;
// only the rare extras maps are walked.
func (kb *KB) ProfileProperties(id ClassID) []PropertyProfile {
	kb.mu.RLock()
	counts := make(map[PropertyID]int)
	n := 0
	if si, ok := kb.storeOf[id]; ok {
		st := kb.storeList[si]
		n = len(st.ids)
		for ci, pid := range st.pids {
			counts[pid] += len(st.cols[ci].rows)
		}
		for _, m := range st.extras {
			for pid := range m {
				counts[pid]++
			}
		}
	}
	kb.mu.RUnlock()
	var out []PropertyProfile
	for _, prop := range kb.Schema(id) {
		c := counts[prop.ID]
		d := 0.0
		if n > 0 {
			d = float64(c) / float64(n)
		}
		out = append(out, PropertyProfile{Class: id, Property: prop.ID, Facts: c, Density: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Density != out[j].Density {
			return out[i].Density > out[j].Density
		}
		return out[i].Property < out[j].Property
	})
	return out
}

// DensityFloor filters ProfileProperties to properties with at least the
// given density, mirroring the paper's "initial density of at least 30%"
// selection rule.
func (kb *KB) DensityFloor(id ClassID, floor float64) []PropertyProfile {
	var out []PropertyProfile
	for _, p := range kb.ProfileProperties(id) {
		if p.Density >= floor {
			out = append(out, p)
		}
	}
	return out
}
