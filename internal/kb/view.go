package kb

import (
	"sort"

	"repro/internal/dtype"
)

// This file holds the field accessors over the columnar stores: the hot
// paths (candidate scoring, profile building, clustering reps) read
// single fields in O(1)/O(log n) without materializing an Instance.
// Every accessor returns either a value copy or memory the caller owns;
// none leaks an internal column slice (the aliasret analyzer holds the
// package to that).

// Fact returns instance id's value for property pid.
func (kb *KB) Fact(id InstanceID, pid PropertyID) (dtype.Value, bool) {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	st, row, ok := kb.loc(id)
	if !ok {
		return dtype.Value{}, false
	}
	return st.fact(row, pid, kb.strs)
}

// InstanceClass returns the class of instance id ("" for an unknown ID).
func (kb *KB) InstanceClass(id InstanceID) ClassID {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	st, _, ok := kb.loc(id)
	if !ok {
		return ""
	}
	return st.class
}

// InstanceLabel returns the primary label of instance id ("" for an
// unlabeled instance or unknown ID).
func (kb *KB) InstanceLabel(id InstanceID) string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	st, row, ok := kb.loc(id)
	if !ok {
		return ""
	}
	return st.label(row, kb.strs)
}

// AppendInstanceLabels appends all labels of instance id (primary first,
// then aliases) to dst and returns it.
func (kb *KB) AppendInstanceLabels(dst []string, id InstanceID) []string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	st, row, ok := kb.loc(id)
	if !ok {
		return dst
	}
	for _, lid := range st.labels(row) {
		dst = append(dst, kb.strs.Lookup(lid))
	}
	return dst
}

// NumInstanceLabels returns how many labels instance id carries.
func (kb *KB) NumInstanceLabels(id InstanceID) int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	st, row, ok := kb.loc(id)
	if !ok {
		return 0
	}
	return len(st.labels(row))
}

// InstanceAbstract returns the abstract of instance id ("" when absent).
func (kb *KB) InstanceAbstract(id InstanceID) string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	st, row, ok := kb.loc(id)
	if !ok {
		return ""
	}
	return st.abstract(row)
}

// InstancePopularity returns the popularity of instance id.
func (kb *KB) InstancePopularity(id InstanceID) float64 {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	st, row, ok := kb.loc(id)
	if !ok {
		return 0
	}
	return st.popularity(row)
}

// InstanceProvenance returns the provenance marker and ingest epoch of
// instance id ("" and 0 for seed instances).
func (kb *KB) InstanceProvenance(id InstanceID) (string, int) {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	st, row, ok := kb.loc(id)
	if !ok {
		return "", 0
	}
	return st.provenance(row), int(st.epochs[row])
}

// NumFacts returns how many facts instance id carries.
func (kb *KB) NumFacts(id InstanceID) int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	st, row, ok := kb.loc(id)
	if !ok {
		return 0
	}
	return st.numFacts(row)
}

// ForEachFact visits every fact of instance id in ascending PropertyID
// order — the package's canonical property order (SortedPropertyIDs), so
// float accumulations over the visit are deterministic. fn must not call
// back into the KB's mutating methods.
func (kb *KB) ForEachFact(id InstanceID, fn func(PropertyID, dtype.Value)) {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	st, row, ok := kb.loc(id)
	if !ok {
		return
	}
	st.forEachFact(row, kb.strs, fn)
}

// ForEachFactOfClass walks property pid's fact column of class id in
// instance insertion order — the bulk path for building per-property
// profiles without touching each instance's other fields. Facts of the
// property that fall outside the column (schema-less classes, unpackable
// values) are visited after the column, still in insertion order. fn
// must not call back into the KB's mutating methods.
func (kb *KB) ForEachFactOfClass(class ClassID, pid PropertyID, fn func(InstanceID, dtype.Value)) {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	si, ok := kb.storeOf[class]
	if !ok {
		return
	}
	st := kb.storeList[si]
	if ci, ok := st.ppos[pid]; ok {
		c := &st.cols[ci]
		for i, row := range c.rows {
			fn(st.ids[row], unpackValue(c.vals[i], kb.strs))
		}
		if st.extras == nil {
			return
		}
	}
	// The slow remainder: rows whose pid fact sits in extras.
	if len(st.extras) == 0 {
		return
	}
	rows := make([]int32, 0, len(st.extras))
	for row, m := range st.extras {
		if _, ok := m[pid]; ok {
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	for _, row := range rows {
		fn(st.ids[row], st.extras[row][pid])
	}
}

// ClassStorage summarizes one class's columnar store for StorageStats.
type ClassStorage struct {
	Class     ClassID
	Instances int
	Facts     int
}

// StorageStats summarizes the KB's instance storage: counts per class
// and the approximate resident bytes of the columnar stores plus the
// intern pool (the label indexes are separate structures and are not
// counted).
type StorageStats struct {
	Instances int
	Ingested  int
	// Classes lists the non-empty classes in ascending ClassID order.
	Classes []ClassStorage
	// ApproxBytes estimates the resident bytes of instance storage:
	// column slices, extras maps, and the interned string pool.
	ApproxBytes int64
}

// StorageStats reports the KB's storage footprint.
func (kb *KB) StorageStats() StorageStats {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	s := StorageStats{
		Instances: len(kb.locs),
		Ingested:  len(kb.ingested),
	}
	s.ApproxBytes = kb.strs.Bytes() + int64(cap(kb.locs))*8 + int64(cap(kb.ingested))*8
	for _, st := range kb.storeList {
		if len(st.ids) == 0 {
			continue
		}
		s.Classes = append(s.Classes, ClassStorage{
			Class:     st.class,
			Instances: len(st.ids),
			Facts:     st.numFactsTotal(),
		})
		s.ApproxBytes += st.approxBytes()
	}
	sort.Slice(s.Classes, func(i, j int) bool { return s.Classes[i].Class < s.Classes[j].Class })
	return s
}
