package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AliasRet enforces the aliasing discipline of mutex-guarded types (the
// PR 3 Engine-audit class): a method on a type that carries a mutex must
// not return one of its map or slice fields directly (the caller would
// read it unguarded while the owner keeps mutating it — copy under the
// lock instead), nor hand out a pointer into the guarded struct; and a
// mutex-carrying struct must never be copied by value (`c := *e` smuggles
// the lock — the historical Engine.Fork bug), including via value
// receivers.
var AliasRet = &Analyzer{
	Name: "aliasret",
	Doc: "flags mutex-guarded methods returning internal maps/slices or interior " +
		"pointers without copying, and struct copies that smuggle a sync.Mutex",
	Run: runAliasRet,
}

func runAliasRet(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			checkReceiver(pass, fd)
		}
		checkDerefCopies(pass, f)
	}
	return nil
}

// checkReceiver inspects one method of a mutex-carrying type.
func checkReceiver(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	recvField := fd.Recv.List[0]
	recvType := info.TypeOf(recvField.Type)
	if recvType == nil {
		return
	}
	base := recvType
	if ptr, ok := base.Underlying().(*types.Pointer); ok {
		base = ptr.Elem()
	} else if typeHasMutex(base) {
		pass.Reportf(recvField.Pos(),
			"method %s copies its mutex-carrying receiver %s by value; use a pointer receiver",
			fd.Name.Name, types.TypeString(base, types.RelativeTo(pass.Pkg)))
	}
	if !typeHasMutex(base) {
		return
	}
	if len(recvField.Names) == 0 {
		return // anonymous receiver cannot leak fields by name
	}
	recvObj := objectOf(info, recvField.Names[0])
	if recvObj == nil {
		return
	}
	typeName := types.TypeString(base, types.RelativeTo(pass.Pkg))
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			res := ast.Unparen(res)
			// return &s.f — a pointer into the guarded struct. Peel index
			// expressions so &s.col[i] (a pointer into a column slice) is
			// caught the same as &s.f.
			if un, ok := res.(*ast.UnaryExpr); ok && un.Op == token.AND {
				inner := ast.Unparen(un.X)
				for {
					idx, ok := inner.(*ast.IndexExpr)
					if !ok {
						break
					}
					inner = ast.Unparen(idx.X)
				}
				if sel, ok := inner.(*ast.SelectorExpr); ok && rootedAt(info, sel, recvObj) {
					pass.Reportf(res.Pos(),
						"%s returns a pointer into mutex-guarded %s; copy the value instead", fd.Name.Name, typeName)
				}
				continue
			}
			// return s.f with map/slice f — aliases guarded internals.
			sel, ok := res.(*ast.SelectorExpr)
			if !ok || !rootedAt(info, sel, recvObj) {
				continue
			}
			switch info.TypeOf(sel).Underlying().(type) {
			case *types.Map, *types.Slice:
				pass.Reportf(res.Pos(),
					"%s returns internal %s of mutex-guarded %s without copying; the caller reads it unguarded",
					fd.Name.Name, exprText(sel), typeName)
			}
		}
		return true
	})
}

// rootedAt reports whether the selector chain bottoms out at obj
// (s.a.b rooted at s).
func rootedAt(info *types.Info, sel *ast.SelectorExpr, obj types.Object) bool {
	id := rootIdent(sel)
	return id != nil && objectOf(info, id) == obj
}

// checkDerefCopies flags value copies made by dereferencing a pointer to a
// mutex-carrying struct (`c := *e`, `return *e`, `f(*e)` — each copies the
// lock along with the state it guards).
func checkDerefCopies(pass *Pass, f *ast.File) {
	info := pass.TypesInfo
	walkStack(f, func(n ast.Node, stack []ast.Node) bool {
		star, ok := n.(*ast.StarExpr)
		if !ok {
			return true
		}
		tv, ok := info.Types[star]
		if !ok || !tv.IsValue() {
			return true // *T in type position
		}
		if !typeHasMutex(tv.Type) {
			return true
		}
		if !isValueCopyContext(star, stack) {
			return true
		}
		pass.Reportf(star.Pos(), "*%s copies mutex-carrying %s by value (the lock is smuggled along); copy the guarded state explicitly instead",
			exprText(star.X), types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		return true
	})
}

// isValueCopyContext reports whether the deref is used as a whole value
// (copied) rather than as a place (selected, indexed, assigned through, or
// re-addressed).
func isValueCopyContext(star *ast.StarExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	// Skip parens between the deref and its real context.
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	switch parent := stack[i].(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		return false // (*p).f / (*p)[i]: access through, no copy
	case *ast.UnaryExpr:
		return parent.Op != token.AND // &*p re-addresses, no copy
	case *ast.StarExpr:
		return false // **p: inner deref is a place
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if ast.Unparen(lhs) == star {
				return false // *p = v stores through the pointer
			}
		}
		return true
	}
	return true
}
