package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each fixture package includes one case reproducing the exact historical
// bug its analyzer exists to catch: PHI's map-order float accumulation
// (PR 1), the severed report context (PR 5), the Engine.Fork mutex copy
// (PR 3), the kernel pool leak (PR 4), and an internal import on the
// public surface (the CI grep this suite replaces).

func TestSortedRange(t *testing.T) {
	linttest.Run(t, "testdata", lint.SortedRange, "sortedrange")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "testdata", lint.CtxFlow, "ctxflow", "ctxflowmain")
}

func TestAliasRet(t *testing.T) {
	linttest.Run(t, "testdata", lint.AliasRet, "aliasret")
}

func TestPoolPut(t *testing.T) {
	linttest.Run(t, "testdata", lint.PoolPut, "poolput")
}

func TestInternalBoundary(t *testing.T) {
	linttest.Run(t, "testdata", lint.InternalBoundary,
		"repro", "repro/examples/demo", "repro/cmd/ltee", "repro/cmd/ltee-bench", "repro/ltee/kb")
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.LockOrder, "lockorder")
}

func TestGoLeak(t *testing.T) {
	linttest.Run(t, "testdata", lint.GoLeak, "goleak")
}

func TestFsyncDisc(t *testing.T) {
	linttest.Run(t, "testdata", lint.FsyncDisc, "fsyncdisc")
}

func TestErrDrop(t *testing.T) {
	linttest.Run(t, "testdata", lint.ErrDrop, "errdrop")
}

func TestAllListsEveryAnalyzer(t *testing.T) {
	want := []string{
		"sortedrange", "ctxflow", "aliasret", "poolput", "internalboundary",
		"lockorder", "goleak", "fsyncdisc", "errdrop",
	}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s has no Doc", a.Name)
		}
	}
}
