package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// CtxFlow flags context.Background() / context.TODO() calls that sever the
// cancellation chain the public API threads end to end (the PR 5
// invariant): in non-main, non-test packages, a fresh root context is
// wrong whenever a context.Context is already in scope, and an exported
// function that needs a context should accept one as its first parameter
// rather than minting its own.
//
// The standard nil-guard fallback
//
//	if ctx == nil { ctx = context.Background() }
//
// is recognized and exempt.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "flags context.Background()/context.TODO() where a context is in scope " +
		"or an exported function should accept one ctx-first",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		// Binaries are where root contexts are legitimately born.
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			// Tests are the other place root contexts are legitimately born.
			continue
		}
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := rootCtxCall(pass, call)
			if name == "" {
				return true
			}
			if isNilGuardFallback(pass, call, stack) {
				return true
			}
			inScope := false
			var outermost *ast.FuncDecl
			for _, a := range stack {
				switch fn := a.(type) {
				case *ast.FuncDecl:
					outermost = fn
					if funcHasCtxParam(pass.TypesInfo, fn.Type) {
						inScope = true
					}
				case *ast.FuncLit:
					if funcHasCtxParam(pass.TypesInfo, fn.Type) {
						inScope = true
					}
				}
			}
			switch {
			case inScope:
				pass.Reportf(call.Pos(),
					"context.%s severs the in-scope cancellation chain; use (or derive from) the context already available here", name)
			case outermost != nil && outermost.Name.IsExported() &&
				!funcHasCtxFirstParam(pass.TypesInfo, outermost.Type):
				pass.Reportf(call.Pos(),
					"exported %s calls context.%s; accept a context.Context as its first parameter and thread it through instead",
					outermost.Name.Name, name)
			}
			return true
		})
	}
	return nil
}

// rootCtxCall returns "Background" or "TODO" when call is
// context.Background() or context.TODO(), "" otherwise.
func rootCtxCall(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if n := fn.Name(); n == "Background" || n == "TODO" {
		return n
	}
	return ""
}

// isNilGuardFallback recognizes `if ctx == nil { ctx = context.Background() }`:
// the call is the sole RHS of an assignment to a context variable, inside
// an if whose condition tests that same variable against nil.
func isNilGuardFallback(pass *Pass, call *ast.CallExpr, stack []ast.Node) bool {
	info := pass.TypesInfo
	var assigned ast.Expr
	for i := len(stack) - 1; i >= 0; i-- {
		switch st := stack[i].(type) {
		case *ast.AssignStmt:
			if assigned != nil {
				continue
			}
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 || ast.Unparen(st.Rhs[0]) != call {
				return false
			}
			if !isContextType(info.TypeOf(st.Lhs[0])) {
				return false
			}
			assigned = st.Lhs[0]
		case *ast.IfStmt:
			if assigned == nil {
				continue
			}
			if cond, ok := ast.Unparen(st.Cond).(*ast.BinaryExpr); ok && cond.Op == token.EQL {
				for _, pair := range [2][2]ast.Expr{{cond.X, cond.Y}, {cond.Y, cond.X}} {
					v, null := ast.Unparen(pair[0]), ast.Unparen(pair[1])
					if id, ok := null.(*ast.Ident); !ok || id.Name != "nil" {
						continue
					}
					vID, ok1 := v.(*ast.Ident)
					aID, ok2 := ast.Unparen(assigned).(*ast.Ident)
					if ok1 && ok2 && objectOf(info, vID) != nil && objectOf(info, vID) == objectOf(info, aID) {
						return true
					}
				}
			}
			return false
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}
