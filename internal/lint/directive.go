package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment. The full grammar is
//
//	//lteelint:ignore <analyzer> <reason>
//
// where <analyzer> names one analyzer from All() and <reason> is free text
// explaining why the finding is acceptable (required — an unreviewable
// bare suppression is rejected). The directive suppresses findings of that
// analyzer on the directive's own line and on the line immediately below
// it, so it works both as a trailing comment and on its own line above the
// flagged statement.
const directivePrefix = "lteelint:"

// A directive is one parsed //lteelint:ignore comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// collectDirectives extracts the suppression directives of a package.
// Malformed directives (wrong verb, unknown analyzer, missing reason) are
// returned as findings of the pseudo-analyzer "lteelint".
func collectDirectives(pkg *Package, known map[string]bool) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var diags []Diagnostic
	bad := func(pos token.Position, format string, args ...any) {
		diags = append(diags, Diagnostic{Analyzer: "lteelint", Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, directivePrefix)
				verb, args, _ := strings.Cut(rest, " ")
				if verb != "ignore" {
					bad(pos, "unknown lteelint directive %q (only %q is supported)", verb, "ignore")
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
				reason = strings.TrimSpace(reason)
				if name == "" {
					bad(pos, "lteelint:ignore needs an analyzer name and a reason")
					continue
				}
				if !known[name] {
					bad(pos, "lteelint:ignore names unknown analyzer %q", name)
					continue
				}
				if reason == "" {
					bad(pos, "lteelint:ignore %s needs a reason", name)
					continue
				}
				dirs = append(dirs, &directive{pos: pos, analyzer: name, reason: reason})
			}
		}
	}
	return dirs, diags
}

// ApplyDirectives filters diags through the package's //lteelint:ignore
// directives. It returns the surviving findings plus directive findings:
// malformed directives and directives that suppressed nothing (stale
// suppressions must be deleted, not accumulated).
func ApplyDirectives(pkg *Package, diags []Diagnostic) []Diagnostic {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	dirs, out := collectDirectives(pkg, known)
	byLine := map[string][]*directive{}
	key := func(file string, line int, analyzer string) string {
		return fmt.Sprintf("%s:%d:%s", file, line, analyzer)
	}
	for _, d := range dirs {
		byLine[key(d.pos.Filename, d.pos.Line, d.analyzer)] = append(byLine[key(d.pos.Filename, d.pos.Line, d.analyzer)], d)
	}
	for _, d := range diags {
		suppressed := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, dir := range byLine[key(d.Pos.Filename, line, d.Analyzer)] {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			out = append(out, Diagnostic{
				Analyzer: "lteelint",
				Pos:      dir.pos,
				Message:  fmt.Sprintf("unused lteelint:ignore directive for %s (no finding here; delete it)", dir.analyzer),
			})
		}
	}
	return out
}
