package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestDirectives drives the //lteelint:ignore machinery over the suppress
// fixture: a justified suppression vanishes, a stale one and two
// malformed ones surface as lteelint findings, and a malformed one does
// not suppress the finding below it.
func TestDirectives(t *testing.T) {
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader(".")
	loader.SrcRoot = src
	pkg, err := loader.Load("suppress")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzer(lint.CtxFlow, pkg)
	if err != nil {
		t.Fatal(err)
	}
	diags = lint.ApplyDirectives(pkg, diags)

	want := []struct{ analyzer, substr string }{
		{"ctxflow", "severs the in-scope cancellation chain"}, // NoReason's body: bad directive must not suppress
		{"ctxflow", "severs the in-scope cancellation chain"}, // WrongLine: a directive two lines up covers nothing
		{"lteelint", "needs a reason"},
		{"lteelint", `names unknown analyzer "nosuchcheck"`},
		{"lteelint", "unused lteelint:ignore directive for ctxflow"}, // Stale
		{"lteelint", "unused lteelint:ignore directive for ctxflow"}, // WrongLine's out-of-range directive
	}
	for _, w := range want {
		found := false
		for _, d := range diags {
			if d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing expected finding [%s] ~%q in:\n%s", w.analyzer, w.substr, render(diags))
		}
	}
	if len(diags) != len(want) {
		t.Errorf("got %d findings, want %d:\n%s", len(diags), len(want), render(diags))
	}
	for _, d := range diags {
		if d.Analyzer == "ctxflow" && strings.Contains(d.Message, "Detach") {
			t.Errorf("justified suppression did not apply: %s", d)
		}
	}
}

func render(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
