// Package lint implements the repository's project-specific static
// analyzers: mechanical enforcement of the invariants earlier PRs
// established by hand and that code review kept re-finding. The v1 suite
// (PR 6) covers determinism, cancellation, aliasing, pooling and the
// import boundary; the v2 suite adds the concurrency and durability
// invariant classes the PR 8/9 scheduler and persistence work introduced.
//
// # Framework
//
// The framework mirrors the Analyzer/Pass shapes of
// golang.org/x/tools/go/analysis, reimplemented on the standard library
// (go/ast, go/types) because the build is dependency-free. An Analyzer is
// a name, a doc string and a Run function over a Pass; a Pass carries one
// parsed, type-checked package (files, *types.Package, *types.Info) and a
// Reportf sink. Packages under analysis are type-checked from source;
// their imports resolve through the compiler's export data obtained from
// `go list -e -export -deps`, so type identity holds across the whole
// load without golang.org/x/tools. The Loader also supports a GOPATH-style
// SrcRoot for the testdata fixture trees, and IncludeTests widens a load
// to the packages' test files (in-package test files join their package's
// variant; package foo_test files are analyzed as their own "<path>_test"
// package).
//
// The analyzers are run by cmd/ltee-lint (a multichecker: `go run
// ./cmd/ltee-lint ./...`, `-tests` to include test files, `-json` for
// NDJSON findings) and unit-tested against testdata fixtures with
// linttest, an analysistest-style harness that diffs findings against
// `// want "regexp"` comments.
//
// # The analyzers and the bugs behind them
//
// Each analyzer exists because a specific defect class already happened
// (or was caught in review) in this repository:
//
//   - sortedrange — appending to a result or accumulating floats while
//     ranging over a map records map iteration order; the PHI metric's
//     map-order float accumulation (PR 1) made scores differ run to run.
//   - ctxflow — context.Background()/TODO() where a context is already in
//     scope severs the cancellation chain the public API threads end to
//     end; a severed report context (PR 5) made cancellation silently
//     stop propagating. Main packages and test files are exempt: that is
//     where root contexts are legitimately born.
//   - aliasret — mutex-guarded accessors returning their internal slice or
//     map alias their own state to callers outside the lock; Engine.Fork
//     (PR 3) leaked a mutable snapshot that raced with the trainer.
//   - poolput — a sync.Pool.Get whose value does not reach Put on every
//     return path re-inflates allocations; the PR 4 kernel pool leaked
//     buffers on an error path added later.
//   - internalboundary — public consumers (the root package, examples,
//     public binaries) must not import repro/internal; replaces the CI
//     grep that previously guarded the ltee/ alias surface. Test files
//     are in-module code, not consumer surface, and are exempt.
//   - lockorder — the PR 9 scheduler stacked an execution RWMutex over a
//     job mutex, the kb mutex and the corpus RWMutex, all ordered by
//     convention only. The analyzer builds an intra-package lock graph
//     (receiver-field and package-level locks, RLock/Lock modes apart)
//     and flags double-locks on the same lock value (sync mutexes are not
//     reentrant; an RLock→Lock upgrade deadlocks against a writer),
//     critical sections calling back into a function that acquires the
//     held lock, and acquisition-order cycles between two code paths.
//   - goleak — the scheduler's per-class writer lanes are `go`-launched
//     drain loops whose shutdown edge is a channel close; a loop with no
//     return/break/terminal call, or a `for range ch` whose channel
//     nothing in the package closes, leaks the goroutine and whatever it
//     holds past shutdown.
//   - fsyncdisc — journal and snapshot correctness (PR 8/9) depend on the
//     temp-file + fsync(file) + rename + fsync(parent-dir) commit
//     discipline, with the manifest written last; an os.Rename without
//     the surrounding fsyncs, a rename source that is not an os.CreateTemp
//     sibling, an in-place os.WriteFile in a persisting package, or a
//     write after the manifest commit each break crash-atomicity in a way
//     only a power-loss test would catch. Test files are exempt (recovery
//     tests deliberately build torn sequences).
//   - errdrop — a discarded Close/Sync/Flush/Rename error on a durability
//     path is a silently-lost write; the job journal's close() (PR 9)
//     dropped its file's Close error until this analyzer flagged it.
//     Files opened with os.Open (reads) and error-unwind paths are
//     exempt.
//
// # Suppressing a finding
//
// A finding can be suppressed only with a reasoned directive:
//
//	//lteelint:ignore <analyzer> <reason>
//
// The directive covers its own line and the line immediately following it,
// must name a known analyzer, and must carry a non-empty reason; malformed
// and unused directives are themselves reported as findings (under the
// pseudo-analyzer name "lteelint"), so suppressions cannot rot silently.
package lint
