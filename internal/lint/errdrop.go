package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop guards error handling on the durability paths (the PR 8/9
// journal and snapshot code): a dropped Close/Sync/Flush/Rename error on a
// written file is a silently-lost write — the classic shape being a
// journal handle whose Close error vanishes while the in-memory state
// moves on. The analyzer activates per file: a file that performs durable
// writes (calls (*os.File).Sync or os.Rename) is a durability file, and in
// it the analyzer flags
//
//   - a Close/Sync/Flush/Rename call used as a bare statement (error
//     discarded), and
//   - `_ = f()` assignments that blank an error-returning call,
//
// with two exemptions that keep read paths and error unwinding clean:
// a file opened with os.Open (read-only — its Close cannot lose writes),
// and statements on an error-exit path (the enclosing block goes on to
// return a non-nil error; the first failure is the one worth reporting).
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flags discarded Close/Sync/Flush/Rename errors and _ = assignments of " +
		"error-returning calls in files that perform durable writes",
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		if !fileDoesDurableWrites(pass.TypesInfo, f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkErrDropFunc(pass, fd)
			}
		}
	}
	return nil
}

// fileDoesDurableWrites reports whether the file contains a
// (*os.File).Sync or os.Rename call — the signature of commit code.
func fileDoesDurableWrites(info *types.Info, f *ast.File) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if isFileSync(info, call) || isPkgCall(info, call, "os", "Rename") {
				found = true
			}
		}
		return !found
	})
	return found
}

// droppableCall reports whether call is a Close/Sync/Flush/Rename whose
// single error result matters, returning a display name.
func droppableCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	switch fn.Name() {
	case "Close", "Sync", "Flush", "Rename":
	default:
		return "", false
	}
	if !callReturnsError(info, call) {
		return "", false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return exprText(sel.X) + "." + fn.Name(), true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "os" {
		return "os." + fn.Name(), true
	}
	return fn.Name(), true
}

// callReturnsError reports whether the call's last result is of type error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Unalias(t) == types.Universe.Lookup("error").Type()
}

func checkErrDropFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// readOnly tracks variables opened with os.Open in this function:
	// their Close cannot lose a write.
	readOnly := map[types.Object]bool{}
	walkSkipFuncLits(fd.Body, func(n ast.Node) {
		if st, ok := n.(*ast.AssignStmt); ok {
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isPkgCall(info, call, "os", "Open") {
					if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok {
						if obj := objectOf(info, id); obj != nil {
							readOnly[obj] = true
						}
					}
				}
			}
		}
	})

	check := func(call *ast.CallExpr, deferred bool) {
		name, ok := droppableCall(info, call)
		if !ok {
			return
		}
		if receiverIsReadOnly(info, call, readOnly) {
			return
		}
		if !deferred && onErrorExitPath(info, fd.Body, call) {
			return
		}
		how := "discards its error"
		if deferred {
			how = "defers with its error discarded"
		}
		pass.Reportf(call.Pos(),
			"%s %s on a durability path; a lost %s error is a silently-lost write — check it",
			name, how, calleeFunc(info, call).Name())
	}

	walkStmtsSkipFuncLits(fd.Body, func(st ast.Stmt) {
		switch s := st.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				check(call, false)
			}
		case *ast.DeferStmt:
			check(s.Call, true)
		case *ast.GoStmt:
			// A goroutine's result was never observable; skip.
		case *ast.AssignStmt:
			// `_ = call()` blanking an error-returning call.
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return
			}
			if id, ok := s.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
				return
			}
			call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			if !ok || !callReturnsError(info, call) {
				return
			}
			if onErrorExitPath(info, fd.Body, call) {
				return
			}
			pass.Reportf(s.Pos(),
				"_ = %s blanks an error on a durability path; handle it or suppress with a reasoned directive",
				exprText(call.Fun))
		}
	})
}

// receiverIsReadOnly reports whether the call's receiver chain is rooted
// at a variable opened with os.Open in this function.
func receiverIsReadOnly(info *types.Info, call *ast.CallExpr, readOnly map[types.Object]bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	root := rootIdent(sel.X)
	if root == nil {
		return false
	}
	obj := objectOf(info, root)
	return obj != nil && readOnly[obj]
}

// onErrorExitPath reports whether the call's statement is followed, in its
// innermost enclosing block, by a return carrying a non-nil error — the
// unwind of an earlier failure, where the original error is the one that
// matters.
func onErrorExitPath(info *types.Info, body *ast.BlockStmt, call *ast.CallExpr) bool {
	result := false
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if result {
			return false
		}
		if n != ast.Node(call) {
			return true
		}
		// Find the statement containing the call and its enclosing block.
		for i := len(stack) - 1; i > 0; i-- {
			block, ok := stack[i-1].(*ast.BlockStmt)
			if !ok {
				continue
			}
			stmt, ok := stack[i].(ast.Stmt)
			if !ok {
				continue
			}
			idx := -1
			for k, s := range block.List {
				if s == stmt {
					idx = k
					break
				}
			}
			if idx < 0 {
				continue
			}
			for _, later := range block.List[idx+1:] {
				if ret, ok := later.(*ast.ReturnStmt); ok && returnsNonNilError(info, ret) {
					result = true
				}
			}
			return false
		}
		return false
	})
	return result
}

// returnsNonNilError reports whether the return carries an error-typed
// expression that is not the nil literal.
func returnsNonNilError(info *types.Info, ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		t := info.TypeOf(res)
		if t == nil || types.Unalias(t) != types.Universe.Lookup("error").Type() {
			continue
		}
		if id, ok := ast.Unparen(res).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		return true
	}
	return false
}

// walkStmtsSkipFuncLits visits every statement of body in source order,
// skipping function literal subtrees.
func walkStmtsSkipFuncLits(body *ast.BlockStmt, fn func(st ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if st, ok := n.(ast.Stmt); ok {
			fn(st)
		}
		return true
	})
}
