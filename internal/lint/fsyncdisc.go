package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FsyncDisc guards the durable-write discipline the kb snapshot segments
// and the serve job journal depend on (the PR 8/9 invariant): a durable
// file is written to a temporary sibling from os.CreateTemp, fsynced,
// renamed over the final name, and the parent directory is fsynced so the
// rename itself survives power loss; and in a multi-file commit the
// manifest — the record that makes everything else reachable — is written
// last. The analyzer activates only in packages that persist state (they
// call (*os.File).Sync or os.Rename somewhere) and reports, per function:
//
//   - an os.Rename whose source does not come from os.CreateTemp in the
//     same function (in-place or cross-name commits are not crash-atomic);
//   - an os.Rename with no file fsync before it (content may be lost while
//     the name survives) or no directory fsync after it (the rename may be
//     lost while the content survives);
//   - os.WriteFile in a persisting package (in-place, not crash-atomic —
//     route it through the package's temp+rename helper);
//   - a manifest write followed by further writes in the same function
//     (a crash in between leaves a manifest describing files that do not
//     exist yet).
var FsyncDisc = &Analyzer{
	Name: "fsyncdisc",
	Doc: "flags durable-write sequences that break the temp-file+rename+fsync " +
		"discipline or commit the manifest before other writes",
	Run: runFsyncDisc,
}

func runFsyncDisc(pass *Pass) error {
	if !packagePersists(pass) {
		return nil
	}
	commits := commitHelpers(pass)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			// Crash-recovery tests deliberately build torn and reordered
			// write sequences; the discipline binds the shipped code.
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFsyncFunc(pass, fd, commits)
			}
		}
	}
	return nil
}

// packagePersists reports whether the package touches the durability
// surface at all: a (*os.File).Sync or an os.Rename call anywhere.
func packagePersists(pass *Pass) bool {
	found := false
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if isFileSync(pass.TypesInfo, call) || isPkgCall(pass.TypesInfo, call, "os", "Rename") {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isFileSync reports whether call is (*os.File).Sync.
func isFileSync(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "Sync"
}

// commitHelpers computes which same-package functions (transitively)
// perform a commit write — an os.Rename or os.WriteFile — so that calls to
// them count as write operations for the manifest-last ordering.
func commitHelpers(pass *Pass) map[*types.Func]bool {
	info := pass.TypesInfo
	direct := map[*types.Func]bool{}
	callees := map[*types.Func][]*types.Func{}
	var fns []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fn)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgCall(info, call, "os", "Rename") || isPkgCall(info, call, "os", "WriteFile") {
					direct[fn] = true
				}
				if callee := calleeFunc(info, call); callee != nil {
					callees[fn] = append(callees[fn], callee)
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if direct[fn] {
				continue
			}
			for _, c := range callees[fn] {
				if direct[c] {
					direct[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return direct
}

// writeOp is one durable write operation in a function, in source order.
type writeOp struct {
	pos      token.Pos
	desc     string
	manifest bool
}

func checkFsyncFunc(pass *Pass, fd *ast.FuncDecl, commits map[*types.Func]bool) {
	info := pass.TypesInfo
	// tempObjs are variables bound to os.CreateTemp results in this
	// function; a rename source must be rooted at one of them.
	tempObjs := map[types.Object]bool{}
	type syncEvent struct{ pos token.Pos }
	type renameEvent struct {
		call *ast.CallExpr
		pos  token.Pos
	}
	var syncs []syncEvent
	var renames []renameEvent
	var writes []writeOp

	walkSkipFuncLits(fd.Body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isPkgCall(info, call, "os", "CreateTemp") {
					if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok {
						if obj := objectOf(info, id); obj != nil {
							tempObjs[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			switch {
			case isFileSync(info, st):
				syncs = append(syncs, syncEvent{pos: st.Pos()})
			case isPkgCall(info, st, "os", "Rename"):
				renames = append(renames, renameEvent{call: st, pos: st.Pos()})
				writes = append(writes, writeOp{pos: st.Pos(), desc: "os.Rename", manifest: mentionsManifest(st)})
			case isPkgCall(info, st, "os", "WriteFile"):
				pass.Reportf(st.Pos(),
					"os.WriteFile writes in place (not crash-atomic) in a package that persists state; commit via temp-file+rename+fsync")
				writes = append(writes, writeOp{pos: st.Pos(), desc: "os.WriteFile", manifest: mentionsManifest(st)})
			default:
				if callee := calleeFunc(info, st); callee != nil && commits[callee] {
					writes = append(writes, writeOp{pos: st.Pos(),
						desc: callee.Name(), manifest: mentionsManifest(st) || containsManifest(callee.Name())})
				}
			}
		}
	})

	syncBefore := func(p token.Pos) bool {
		for _, s := range syncs {
			if s.pos < p {
				return true
			}
		}
		return false
	}
	syncAfter := func(p token.Pos) bool {
		for _, s := range syncs {
			if s.pos > p {
				return true
			}
		}
		return false
	}
	for _, r := range renames {
		if len(r.call.Args) > 0 && !derivesFromTemp(info, r.call.Args[0], tempObjs) {
			pass.Reportf(r.pos,
				"os.Rename source %s is not an os.CreateTemp file from this function; durable commits go through a temp sibling",
				exprText(r.call.Args[0]))
		}
		if !syncBefore(r.pos) {
			pass.Reportf(r.pos,
				"os.Rename commits a file with no fsync before it; Sync the file so its content is durable when its name is")
		}
		if !syncAfter(r.pos) {
			pass.Reportf(r.pos,
				"os.Rename is not followed by an fsync of the parent directory; the rename itself may not survive power loss")
		}
	}

	// Manifest-last ordering: once a manifest write happened, any further
	// write in the same function breaks the commit ordering.
	sort.Slice(writes, func(i, j int) bool { return writes[i].pos < writes[j].pos })
	manifestAt := token.NoPos
	for _, w := range writes {
		if w.manifest {
			manifestAt = w.pos
			continue
		}
		if manifestAt.IsValid() {
			pass.Reportf(w.pos,
				"%s writes after the manifest committed at line %d; the manifest must be the last write of the sequence",
				w.desc, pass.Fset.Position(manifestAt).Line)
		}
	}
}

// mentionsManifest reports whether any argument of the call names the
// manifest (an identifier or string literal containing "manifest").
func mentionsManifest(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if containsManifest(x.Name) {
					found = true
				}
			case *ast.BasicLit:
				if containsManifest(x.Value) {
					found = true
				}
			case *ast.FuncLit:
				return false
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func containsManifest(s string) bool {
	return strings.Contains(strings.ToLower(s), "manifest")
}

// derivesFromTemp reports whether the expression is rooted at (or calls a
// method of, e.g. tmp.Name()) a variable holding an os.CreateTemp result.
func derivesFromTemp(info *types.Info, e ast.Expr, tempObjs map[types.Object]bool) bool {
	if len(tempObjs) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := objectOf(info, id); obj != nil && tempObjs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
