package lint

import (
	"go/ast"
	"go/types"
)

// GoLeak guards goroutine lifecycles (the PR 9 writer-lane class): every
// goroutine launched with `go` must have a termination path, or it leaks —
// and a leaked writer holds its resources (journal handles, lanes, test
// servers) past shutdown. Two shapes are reported:
//
//   - an unconditional `for { ... }` loop containing no return, no break
//     out of the loop and no terminal call (panic, os.Exit,
//     runtime.Goexit): nothing ever ends the goroutine, ctx.Done() cases
//     included only if they return or break;
//   - `for range ch` over a channel that nothing in the package closes:
//     the drain loop blocks forever once the senders stop.
//
// Close sites are matched by channel identity where possible (field path
// such as lane.q, package variable, local object) and by element type as
// a fallback for channels handed across functions.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "flags go-launched goroutines with no termination path (endless loops, ranges over never-closed channels)",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) error {
	g := &goLeakPass{pass: pass, closed: map[string]bool{}, closedElems: map[string]bool{},
		funcBodies: map[*types.Func]*ast.FuncDecl{}, litBindings: map[types.Object]*ast.FuncLit{}}
	g.collect()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				g.checkGo(gs)
			}
			return true
		})
	}
	return nil
}

type goLeakPass struct {
	pass *Pass
	// closed keys every close(x) target: "Type.field" for field channels,
	// "var name" for package-level ones, and object-pointer identity is
	// handled separately via closedObjs.
	closed      map[string]bool
	closedElems map[string]bool // types.TypeString of closed channels' element types
	closedObjs  map[types.Object]bool
	funcBodies  map[*types.Func]*ast.FuncDecl
	litBindings map[types.Object]*ast.FuncLit
}

// collect indexes the package: close() targets, function declarations, and
// `name := func(){...}` bindings (so `go name(...)` resolves).
func (g *goLeakPass) collect() {
	info := g.pass.TypesInfo
	g.closedObjs = map[types.Object]bool{}
	for _, f := range g.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncDecl:
				if st.Body != nil {
					if fn, ok := info.Defs[st.Name].(*types.Func); ok {
						g.funcBodies[fn] = st
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range st.Rhs {
					if i >= len(st.Lhs) {
						break
					}
					lit, ok := rhs.(*ast.FuncLit)
					if !ok {
						continue
					}
					if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok {
						if obj := objectOf(info, id); obj != nil {
							g.litBindings[obj] = lit
						}
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "close" && len(st.Args) == 1 {
					if _, isBuiltin := objectOf(info, id).(*types.Builtin); isBuiltin {
						g.recordClose(st.Args[0])
					}
				}
			}
			return true
		})
	}
}

func (g *goLeakPass) recordClose(e ast.Expr) {
	info := g.pass.TypesInfo
	if key, obj, ok := chanKey(info, e); ok {
		if key != "" {
			g.closed[key] = true
		}
		if obj != nil {
			g.closedObjs[obj] = true
		}
	}
	if t := info.TypeOf(e); t != nil {
		if ch, ok := t.Underlying().(*types.Chan); ok {
			g.closedElems[types.TypeString(ch.Elem(), nil)] = true
		}
	}
}

// chanKey derives a stable identity for a channel expression: field
// channels key by root type + field path ("lane.q"), package variables by
// name; the root object is returned for local-identity matches.
func chanKey(info *types.Info, e ast.Expr) (string, types.Object, bool) {
	var path []string
	cur := e
	for {
		switch x := ast.Unparen(cur).(type) {
		case *ast.SelectorExpr:
			path = append([]string{x.Sel.Name}, path...)
			cur = x.X
		case *ast.StarExpr:
			cur = x.X
		case *ast.IndexExpr:
			cur = x.X
		case *ast.Ident:
			obj := objectOf(info, x)
			if obj == nil {
				return "", nil, false
			}
			if len(path) == 0 {
				if v, ok := obj.(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
					_ = v
					return "pkg." + obj.Name(), obj, true
				}
				return "", obj, true
			}
			t := obj.Type()
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := types.Unalias(t).(*types.Named); ok {
				key := named.Obj().Name()
				for _, p := range path {
					key += "." + p
				}
				return key, nil, true
			}
			return "", nil, false
		default:
			return "", nil, false
		}
	}
}

// checkGo analyzes one `go` statement's target body.
func (g *goLeakPass) checkGo(gs *ast.GoStmt) {
	body := g.resolveBody(gs.Call)
	if body == nil {
		return
	}
	walkSkipFuncLits(body, func(n ast.Node) {
		switch loop := n.(type) {
		case *ast.ForStmt:
			if !isUnconditionalFor(loop) {
				return
			}
			if loopHasExit(loop, loop.Body, g.pass.TypesInfo) {
				return
			}
			g.pass.Reportf(gs.Pos(),
				"goroutine loops forever: the for-loop at line %d has no return, break, or terminal call — add a ctx.Done()/done-channel exit",
				g.pass.Fset.Position(loop.Pos()).Line)
		case *ast.RangeStmt:
			t := g.pass.TypesInfo.TypeOf(loop.X)
			if t == nil {
				return
			}
			ch, ok := t.Underlying().(*types.Chan)
			if !ok {
				return
			}
			if loopHasExit(loop, loop.Body, g.pass.TypesInfo) {
				return
			}
			if g.chanIsClosed(loop.X, ch) {
				return
			}
			g.pass.Reportf(gs.Pos(),
				"goroutine ranges over %s but nothing in the package closes it: the drain loop never terminates",
				exprText(loop.X))
		}
	})
}

func (g *goLeakPass) chanIsClosed(e ast.Expr, ch *types.Chan) bool {
	key, obj, ok := chanKey(g.pass.TypesInfo, e)
	if ok {
		if key != "" && g.closed[key] {
			return true
		}
		if obj != nil && g.closedObjs[obj] {
			return true
		}
		if key != "" || obj != nil {
			// Identity resolved but no matching close: only the weaker
			// element-type fallback can still clear it (the channel may have
			// been handed over from the closing function under another name).
			return obj != nil && g.closedElems[types.TypeString(ch.Elem(), nil)]
		}
	}
	return g.closedElems[types.TypeString(ch.Elem(), nil)]
}

// resolveBody finds the body the go statement executes: a literal, a
// local variable bound to a literal, or a same-package declaration.
func (g *goLeakPass) resolveBody(call *ast.CallExpr) *ast.BlockStmt {
	info := g.pass.TypesInfo
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if obj := objectOf(info, fun); obj != nil {
			if lit := g.litBindings[obj]; lit != nil {
				return lit.Body
			}
			if fn, ok := obj.(*types.Func); ok {
				if fd := g.funcBodies[fn]; fd != nil {
					return fd.Body
				}
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := objectOf(info, fun.Sel).(*types.Func); ok {
			if fd := g.funcBodies[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// isUnconditionalFor reports whether the loop can only be left from
// inside: `for {}` or `for true {}`.
func isUnconditionalFor(f *ast.ForStmt) bool {
	if f.Cond == nil {
		return true
	}
	if id, ok := ast.Unparen(f.Cond).(*ast.Ident); ok && id.Name == "true" {
		return true
	}
	return false
}

// loopHasExit reports whether the loop body contains a statement that
// leaves the loop (and with it, eventually, the goroutine): a return, a
// break targeting this loop, a goto, or a terminal call. Nested function
// literals are their own control flow and do not count.
func loopHasExit(loop ast.Stmt, body *ast.BlockStmt, info *types.Info) bool {
	exit := false
	// depth tracks enclosing breakable statements below the loop: an
	// unlabeled break only exits our loop when no for/range/switch/select
	// sits in between.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if exit || n == nil {
			return
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			exit = true
			return
		case *ast.BranchStmt:
			if st.Tok.String() == "goto" {
				exit = true // target is outside our conservative model
				return
			}
			if st.Tok.String() == "break" && (st.Label != nil || depth == 0) {
				// A labeled break targets an outer statement; treat any label
				// as an exit of this loop (labels on inner loops would be
				// unusual inside a drain goroutine).
				exit = true
			}
			return
		case *ast.CallExpr:
			if isTerminalCall(info, st) {
				exit = true
				return
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			depth++
		}
		// Recurse over children at the adjusted depth.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return true
			}
			walk(c, depth)
			return false
		})
	}
	for _, st := range body.List {
		walk(st, 0)
	}
	return exit
}

// isTerminalCall reports calls that never return: panic, os.Exit,
// runtime.Goexit, and the testing Fatal/FailNow family.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := objectOf(info, id).(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "testing":
		switch fn.Name() {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}
