package lint

import (
	"go/ast"
	"go/types"
)

// walkStack traverses the AST depth-first, invoking fn with each node and
// the stack of its ancestors (outermost first, excluding n itself). fn
// returning false prunes the subtree under n.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// objectOf resolves an identifier to its object (use or definition).
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// rootIdent returns the base identifier of a selector/index/deref chain
// (the s of s.a.b[i]), or nil when the expression is not rooted at one.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isNamed reports whether t (after alias resolution) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && isNamed(t, "context", "Context")
}

// typeHasMutex reports whether a value of type t embeds lock state directly
// (a sync.Mutex or sync.RWMutex field, possibly nested in value-typed
// struct fields), so that copying the value would copy the lock. Locks
// reached only through pointers, maps or slices are shared, not copied, and
// do not count.
func typeHasMutex(t types.Type) bool {
	return hasMutex(t, make(map[types.Type]bool), 0)
}

func hasMutex(t types.Type, seen map[types.Type]bool, depth int) bool {
	if t == nil || depth > 8 || seen[t] {
		return false
	}
	seen[t] = true
	if isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex") {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if hasMutex(st.Field(i).Type(), seen, depth+1) {
			return true
		}
	}
	return false
}

// enclosingFuncBody returns the body of the innermost function literal or
// declaration on the stack, or nil.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// funcHasCtxParam reports whether any parameter of ft has type
// context.Context.
func funcHasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		if isContextType(info.TypeOf(f.Type)) {
			return true
		}
	}
	return false
}

// funcHasCtxFirstParam reports whether the first parameter of ft has type
// context.Context.
func funcHasCtxFirstParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	return isContextType(info.TypeOf(ft.Params.List[0].Type))
}

// isPkgCall reports whether call invokes the package-level function
// pkgPath.name (e.g. sort.Strings).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// calleeFunc resolves the called function object, or nil (builtin, func
// value, conversion).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := objectOf(info, id).(*types.Func)
	return fn
}

// exprText renders an expression as source text (for diagnostics).
func exprText(e ast.Expr) string { return types.ExprString(e) }

// mentionsObject reports whether the expression subtree references obj.
func mentionsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objectOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}
