package lint

import (
	"strings"
)

// InternalBoundary enforces the public-consumer guarantee as a real
// import-graph check (replacing the grep over source text that CI used
// through PR 5): every package that claims to sit on the public API — the
// examples, the root documentation package, and the public binaries — must
// not import repro/internal. The ltee/ tree is the sanctioned bridge (its
// alias packages re-export the internal implementations and are exactly
// what an external module would import).
var InternalBoundary = &Analyzer{
	Name: "internalboundary",
	Doc:  "flags repro/internal imports in public consumers (examples, root package, public binaries)",
	Run:  runInternalBoundary,
}

// boundaryModule is the module path; fixture trees mirror it.
const boundaryModule = "repro"

// boundaryExemptCmds are binaries that legitimately reach into internal
// packages: the benchmark runner (drives internal/bench, the repository's
// benchmark corpus) and the lint driver itself (internal/lint is the
// analysis framework, not product surface).
var boundaryExemptCmds = map[string]bool{
	boundaryModule + "/cmd/ltee-bench": true,
	boundaryModule + "/cmd/ltee-lint":  true,
}

func runInternalBoundary(pass *Pass) error {
	path := pass.Pkg.Path()
	if !isPublicConsumer(path) {
		return nil
	}
	internal := boundaryModule + "/internal"
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			// Tests are in-module code, not the consumer surface: the root
			// package's benchmarks drive internals on purpose.
			continue
		}
		for _, spec := range f.Imports {
			imp := strings.Trim(spec.Path.Value, `"`)
			if imp == internal || strings.HasPrefix(imp, internal+"/") {
				pass.Reportf(spec.Pos(),
					"public consumer %s must not import %s; use the public %s/ltee packages instead",
					path, imp, boundaryModule)
			}
		}
	}
	return nil
}

// isPublicConsumer reports whether a package promises to compile against
// the public surface only.
func isPublicConsumer(path string) bool {
	switch {
	case path == boundaryModule:
		return true // the root documentation package
	case strings.HasPrefix(path, boundaryModule+"/examples/"):
		return true
	case strings.HasPrefix(path, boundaryModule+"/cmd/"):
		return !boundaryExemptCmds[path]
	}
	return false
}
