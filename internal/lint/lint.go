package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis pass and its entry point.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //lteelint:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the analysis over one package.
	Run func(*Pass) error
}

// A Pass carries one parsed, type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SortedRange, CtxFlow, AliasRet, PoolPut, InternalBoundary,
		LockOrder, GoLeak, FsyncDisc, ErrDrop,
	}
}

// RunAnalyzer runs one analyzer over one loaded package and returns its raw
// findings (before directive-based suppression; see ApplyDirectives).
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	return diags, nil
}
