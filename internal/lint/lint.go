// Package lint implements the repository's project-specific static
// analyzers: mechanical enforcement of the determinism, cancellation and
// aliasing invariants that earlier PRs established by hand and that code
// review kept re-finding (map-iteration-order float accumulation, severed
// context chains, mutex-guarded accessors leaking their internals, pooled
// values escaping their pool).
//
// The framework mirrors the Analyzer/Pass shapes of
// golang.org/x/tools/go/analysis, reimplemented on the standard library
// (go/ast, go/types) because the build is dependency-free: packages under
// analysis are parsed and type-checked from source, their imports resolved
// through the compiler's export data via `go list -export`.
//
// The analyzers are run by cmd/ltee-lint (a multichecker: `go run
// ./cmd/ltee-lint ./...`) and unit-tested against testdata fixtures with
// linttest, an analysistest-style harness.
//
// # Suppressing a finding
//
// A finding can be suppressed only with a reasoned directive:
//
//	//lteelint:ignore <analyzer> <reason>
//
// The directive covers its own line and the line immediately following it,
// must name a known analyzer, and must carry a non-empty reason; malformed
// and unused directives are themselves reported as findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis pass and its entry point.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //lteelint:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the analysis over one package.
	Run func(*Pass) error
}

// A Pass carries one parsed, type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{SortedRange, CtxFlow, AliasRet, PoolPut, InternalBoundary}
}

// RunAnalyzer runs one analyzer over one loaded package and returns its raw
// findings (before directive-based suppression; see ApplyDirectives).
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	return diags, nil
}
