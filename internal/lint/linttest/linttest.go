// Package linttest is the analysistest-style harness for the project
// analyzers: it loads fixture packages from a testdata/src tree (import
// paths resolve GOPATH-style below src), runs one analyzer, applies the
// //lteelint:ignore directives, and diffs the surviving findings against
// `// want "regexp"` comments in the fixture source.
//
// A want comment sits at the end of the line it expects a finding on and
// may carry several quoted regexps, one per expected finding:
//
//	sum += v // want `float accumulation`
package linttest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run loads each fixture package below testdata/src, runs the analyzer,
// and reports any mismatch between findings and want comments as test
// errors. testdata is relative to the calling test's package directory.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range pkgPaths {
		loader := lint.NewLoader(".")
		loader.SrcRoot = src
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := lint.RunAnalyzer(a, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		diags = lint.ApplyDirectives(pkg, diags)
		checkWants(t, pkg, diags)
	}
}

// wantRe extracts the quoted regexps of a want comment: double-quoted
// (unescaped via strconv) or backquoted (verbatim).
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// checkWants matches findings against the fixture's want comments:
// every finding must match a want on its line, and every want must be
// matched by exactly one finding.
func checkWants(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " ")
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, quoted := range wantRe.FindAllString(rest, -1) {
					pattern := strings.Trim(quoted, "`")
					if strings.HasPrefix(quoted, `"`) {
						var err error
						pattern, err = strconv.Unquote(quoted)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, quoted, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	matched := map[key][]bool{}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		res := wants[k]
		if matched[k] == nil {
			matched[k] = make([]bool, len(res))
		}
		ok := false
		for i, re := range res {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected finding: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if matched[k] == nil || !matched[k][i] {
				t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, re)
			}
		}
	}
}
