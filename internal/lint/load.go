package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages for analysis. Packages under
// analysis are checked from source; their imports resolve through compiler
// export data obtained from `go list -export` (standard library and module
// dependencies alike), so no analysis-framework dependency is needed.
type Loader struct {
	// Fset positions every file the loader touches.
	Fset *token.FileSet
	// ModDir is the directory go list runs in: the module root for real
	// loads, any in-module directory for fixture loads (which only need
	// go list for standard-library export data).
	ModDir string
	// SrcRoot, when non-empty, resolves import paths to source
	// directories GOPATH-style: import "a/b" loads SrcRoot/a/b. Used by
	// the linttest fixture harness (testdata/src trees).
	SrcRoot string
	// IncludeTests widens LoadPatterns to the packages' test files: each
	// target with in-package test files is analyzed as its test variant
	// (GoFiles + TestGoFiles, replacing the base package so findings are
	// not doubled), and external test packages (package foo_test) are
	// loaded as their own "<path>_test" package, seeing the base package
	// through its export data.
	IncludeTests bool

	exports map[string]string // import path -> export data file
	pkgs    map[string]*Package
	loading map[string]bool
	gc      types.Importer
}

// exportCache shares `go list -export` results across loaders in one
// process (the analyzer unit tests each construct a fresh fixture loader).
var exportCache = struct {
	sync.Mutex
	m map[string]string
}{m: map[string]string{}}

// NewLoader returns a loader rooted at modDir.
func NewLoader(modDir string) *Loader {
	l := &Loader{
		Fset:    token.NewFileSet(),
		ModDir:  modDir,
		exports: map[string]string{},
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return l
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	Error        *struct{ Err string }
}

func (l *Loader) goList(args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e",
		"-json=ImportPath,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles,Standard,Error"}, args...)...)
	cmd.Dir = l.ModDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding: %v", strings.Join(args, " "), err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPatterns loads the packages matching the go package patterns (e.g.
// "./..."), type-checking each from source with dependencies resolved via
// export data. Patterns follow `go list` semantics relative to ModDir.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	deps, err := l.goList(append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	for _, p := range deps {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	targets, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range targets {
		if p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		names := p.GoFiles
		if l.IncludeTests {
			// The test variant replaces the base package: same import path,
			// base findings reported once, test-file findings on top.
			names = append(append([]string{}, p.GoFiles...), p.TestGoFiles...)
		}
		files := make([]string, len(names))
		for i, f := range names {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := l.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
		if l.IncludeTests && len(p.XTestGoFiles) > 0 {
			xfiles := make([]string, len(p.XTestGoFiles))
			for i, f := range p.XTestGoFiles {
				xfiles[i] = filepath.Join(p.Dir, f)
			}
			xpkg, err := l.check(p.ImportPath+"_test", p.Dir, xfiles)
			if err != nil {
				return nil, err
			}
			out = append(out, xpkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Load loads one package by import path: from SrcRoot when it resolves
// there (fixture mode), else via go list.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg := l.pkgs[path]; pkg != nil {
		return pkg, nil
	}
	if l.SrcRoot != "" {
		dir := filepath.Join(l.SrcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return l.loadDir(path, dir)
		}
	}
	pkgs, err := l.LoadPatterns(path)
	if err != nil {
		return nil, err
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("load %q: matched %d packages", path, len(pkgs))
	}
	return pkgs[0], nil
}

// loadDir loads a fixture package from dir (all non-test .go files).
func (l *Loader) loadDir(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load %q: no Go files in %s", path, dir)
	}
	return l.check(path, dir, files)
}

// check parses and type-checks one package from the given source files.
func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	var files []*ast.File
	var stdImports []string
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if l.exports[p] == "" && l.pkgs[p] == nil && !l.srcResolves(p) {
				stdImports = append(stdImports, p)
			}
		}
	}
	if len(stdImports) > 0 {
		if err := l.ensureExports(stdImports); err != nil {
			return nil, err
		}
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) srcResolves(path string) bool {
	if l.SrcRoot == "" {
		return false
	}
	fi, err := os.Stat(filepath.Join(l.SrcRoot, filepath.FromSlash(path)))
	return err == nil && fi.IsDir()
}

// ensureExports fetches export data for import paths not yet known (the
// standard-library imports of fixture packages).
func (l *Loader) ensureExports(paths []string) error {
	exportCache.Lock()
	var missing []string
	for _, p := range paths {
		if p == "unsafe" || p == "C" {
			continue
		}
		if f, ok := exportCache.m[p]; ok {
			l.exports[p] = f
		} else {
			missing = append(missing, p)
		}
	}
	exportCache.Unlock()
	if len(missing) == 0 {
		return nil
	}
	pkgs, err := l.goList(append([]string{"-export", "-deps"}, missing...)...)
	if err != nil {
		return err
	}
	exportCache.Lock()
	defer exportCache.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
			exportCache.m[p.ImportPath] = p.Export
		}
	}
	return nil
}

// importPkg resolves one import during type checking. Export data wins
// when available: every package under analysis then sees its dependencies
// through the same gc importer, so type identity holds across the whole
// load (mixing one source-checked dependency into an export-data graph
// breaks interface satisfaction). Fixture packages have no export data
// and resolve from already-loaded packages or SrcRoot sources.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.exports[path] != "" {
		return l.gc.Import(path)
	}
	if pkg := l.pkgs[path]; pkg != nil {
		return pkg.Types, nil
	}
	if l.SrcRoot != "" {
		dir := filepath.Join(l.SrcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			pkg, err := l.loadDir(path, dir)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	if err := l.ensureExports([]string{path}); err != nil {
		return nil, err
	}
	return l.gc.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
