package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

func writeFile(path, content string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(content), 0o644)
}

func fixtureLoader(t *testing.T) *lint.Loader {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader(".")
	loader.SrcRoot = src
	return loader
}

// TestLoaderBuildError loads a fixture that does not type-check: the
// loader must return the checker's error, not a half-checked package.
func TestLoaderBuildError(t *testing.T) {
	_, err := fixtureLoader(t).Load("broken")
	if err == nil {
		t.Fatal("Load(broken) = nil error, want type-check failure")
	}
	if !strings.Contains(err.Error(), "type-checking broken") {
		t.Errorf("Load(broken) error = %v, want a type-checking error", err)
	}
}

// TestLoaderParseError loads a directory whose file does not parse.
func TestLoaderParseError(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(filepath.Join(dir, "mangled", "mangled.go"),
		"package mangled\n\nfunc Unclosed() {\n"); err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader(".")
	loader.SrcRoot = dir
	if _, err := loader.Load("mangled"); err == nil {
		t.Fatal("Load(mangled) = nil error, want parse failure")
	}
}

// TestLoaderSourceFallback loads a fixture importing a sibling fixture:
// the import has no export data, so it must be type-checked from source,
// and the resulting types must be usable by the analyzers.
func TestLoaderSourceFallback(t *testing.T) {
	loader := fixtureLoader(t)
	pkg, err := loader.Load("depuser")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "deplib" {
			found = true
			if !imp.Complete() {
				t.Error("source-checked import deplib is not marked complete")
			}
		}
	}
	if !found {
		t.Fatalf("depuser imports = %v, want deplib", pkg.Types.Imports())
	}
	for _, a := range lint.All() {
		if _, err := lint.RunAnalyzer(a, pkg); err != nil {
			t.Errorf("%s over source-fallback package: %v", a.Name, err)
		}
	}
}

// TestLoaderMissingPackage exercises the `go list -e` error path: a
// package path that matches nothing must come back as a load error.
func TestLoaderMissingPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped under -short")
	}
	loader := lint.NewLoader(filepath.Join("..", ".."))
	if _, err := loader.LoadPatterns("repro/internal/nonexistent"); err == nil {
		t.Fatal("LoadPatterns(repro/internal/nonexistent) = nil error, want load failure")
	}
}
