package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder guards the scheduler-era lock hierarchy (the PR 9 invariant):
// the execution RWMutex, the corpus RWMutex and the kb mutex are acquired
// in one global order, and no critical section re-enters its own lock.
// The analyzer builds an intra-package lock graph over sync.Mutex /
// sync.RWMutex acquisitions — receiver-field locks keyed by (type, field
// path), package-level locks by variable name, with RLock and Lock modes
// kept apart — and reports three shapes:
//
//   - double-lock: acquiring a lock value that is provably already held on
//     the same path (including an RLock→Lock upgrade, which deadlocks
//     against a concurrent writer);
//   - re-entry through a call: a critical section calling a same-package
//     function whose (transitive) summary acquires the very lock held at
//     the call site, on the same receiver;
//   - ordering cycle: lock A is acquired while B is held somewhere and B
//     while A is held somewhere else — the two paths deadlock when they
//     interleave.
//
// The scan is linear per function body (an inline Unlock releases for the
// statements after it; a deferred Unlock holds to the end), so findings
// are conservative: a lock released on one branch is treated as released.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "flags lock-order cycles, double-locks and critical sections calling " +
		"back into their own mutex",
	Run: runLockOrder,
}

// lockMode distinguishes shared from exclusive acquisition.
type lockMode int

const (
	modeRead  lockMode = iota // RLock
	modeWrite                 // Lock
)

func (m lockMode) String() string {
	if m == modeRead {
		return "RLock"
	}
	return "Lock"
}

// A lockRef identifies one syntactic lock reference: the type-level key
// (hierarchy identity) plus, when resolvable, the instance it is rooted at
// (for same-value double-lock certainty).
type lockRef struct {
	key      string       // "Server.jobMu", "exportCache", "KB" (embedded)
	root     types.Object // root variable, nil when not a simple chain
	pkgLevel bool         // rooted at a package-level variable
	recvOf   types.Object // set when root is the enclosing func's receiver
}

// sameValue reports whether two references provably name the same lock
// value: a package-level lock always does; otherwise both must be rooted
// at the same variable.
func (a lockRef) sameValue(b lockRef) bool {
	if a.key != b.key {
		return false
	}
	if a.pkgLevel && b.pkgLevel {
		return true
	}
	return a.root != nil && a.root == b.root
}

// lockAcq is one acquisition in a function summary.
type lockAcq struct {
	key      string
	mode     lockMode
	pkgLevel bool
	// recvRooted: the acquisition is on the function's own receiver, so a
	// caller invoking the function on value v acquires v's lock.
	recvRooted bool
}

// lockEdge records "to acquired while from was held", once per pair.
type lockEdge struct {
	pos  token.Pos
	desc string // human form of the acquisition site
}

func runLockOrder(pass *Pass) error {
	lo := &lockOrderPass{
		pass:      pass,
		summaries: map[*types.Func]map[string]lockAcq{},
		decls:     map[*types.Func]*ast.FuncDecl{},
		edges:     map[string]map[string]lockEdge{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					lo.decls[fn] = fd
				}
			}
		}
	}
	lo.buildSummaries()
	for fn, fd := range lo.decls {
		lo.scanFunc(fd, fn)
	}
	lo.reportCycles()
	return nil
}

type lockOrderPass struct {
	pass      *Pass
	decls     map[*types.Func]*ast.FuncDecl
	summaries map[*types.Func]map[string]lockAcq
	edges     map[string]map[string]lockEdge
}

// lockCall resolves call as a (*sync.Mutex)/(*sync.RWMutex) method call and
// returns the lock reference, the method name and its mode.
func (lo *lockOrderPass) lockCall(fd *ast.FuncDecl, call *ast.CallExpr) (lockRef, string, lockMode, bool) {
	fn := calleeFunc(lo.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockRef{}, "", 0, false
	}
	name := fn.Name()
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockRef{}, "", 0, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockRef{}, "", 0, false
	}
	ref := lo.refOf(fd, sel.X)
	mode := modeWrite
	if name == "RLock" || name == "RUnlock" {
		mode = modeRead
	}
	return ref, name, mode, true
}

// refOf derives the lock reference of the receiver expression e: package
// variables key by name, everything else by the root's named type plus the
// field path (so two *Server values share the key "Server.jobMu" while
// staying distinct instances).
func (lo *lockOrderPass) refOf(fd *ast.FuncDecl, e ast.Expr) lockRef {
	info := lo.pass.TypesInfo
	var path []string
	cur := e
	for {
		switch x := ast.Unparen(cur).(type) {
		case *ast.SelectorExpr:
			path = append([]string{x.Sel.Name}, path...)
			cur = x.X
		case *ast.StarExpr:
			cur = x.X
		case *ast.IndexExpr:
			cur = x.X
		case *ast.Ident:
			obj := objectOf(info, x)
			if obj == nil {
				return lockRef{key: exprText(e)}
			}
			ref := lockRef{root: obj}
			if v, ok := obj.(*types.Var); ok && !v.IsField() && obj.Pkg() != nil &&
				obj.Parent() == obj.Pkg().Scope() {
				ref.pkgLevel = true
				ref.key = strings.Join(append([]string{obj.Name()}, path...), ".")
				return ref
			}
			t := obj.Type()
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := types.Unalias(t).(*types.Named); ok {
				ref.key = strings.Join(append([]string{named.Obj().Name()}, path...), ".")
			} else {
				ref.key = exprText(e)
			}
			if fd != nil && fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				if objectOf(info, fd.Recv.List[0].Names[0]) == obj {
					ref.recvOf = obj
				}
			}
			return ref
		default:
			return lockRef{key: exprText(e)}
		}
	}
}

// buildSummaries computes, for every declared function, the set of lock
// keys it (transitively, through same-package calls) attempts to acquire.
func (lo *lockOrderPass) buildSummaries() {
	info := lo.pass.TypesInfo
	// Direct acquisitions and callees, function literals excluded: a
	// closure's acquisitions happen on its own schedule (goroutine, defer),
	// not on the caller's path.
	callees := map[*types.Func]map[*types.Func]bool{}
	for fn, fd := range lo.decls {
		sum := map[string]lockAcq{}
		calls := map[*types.Func]bool{}
		walkSkipFuncLits(fd.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if ref, name, mode, ok := lo.lockCall(fd, call); ok {
				if name == "Lock" || name == "RLock" {
					addAcq(sum, lockAcq{key: ref.key, mode: mode, pkgLevel: ref.pkgLevel, recvRooted: ref.recvOf != nil})
				}
				return
			}
			if callee := calleeFunc(info, call); callee != nil && lo.decls[callee] != nil {
				calls[callee] = true
			}
		})
		lo.summaries[fn] = sum
		callees[fn] = calls
	}
	// Fixed point: propagate callee acquisitions. Receiver-rootedness is
	// only preserved when the call is on the caller's own receiver (checked
	// at the call site during scanning); in the summary it degrades to
	// type-level.
	for changed := true; changed; {
		changed = false
		for fn := range lo.decls {
			sum := lo.summaries[fn]
			for callee := range callees[fn] {
				for _, acq := range lo.summaries[callee] {
					prop := acq
					prop.recvRooted = false
					if addAcq(sum, prop) {
						changed = true
					}
				}
			}
		}
	}
}

// addAcq inserts an acquisition, keeping Lock over RLock for a key seen in
// both modes. Reports whether the summary changed.
func addAcq(sum map[string]lockAcq, acq lockAcq) bool {
	cur, ok := sum[acq.key]
	if !ok {
		sum[acq.key] = acq
		return true
	}
	if cur.mode == modeRead && acq.mode == modeWrite {
		cur.mode = modeWrite
		sum[acq.key] = cur
		return true
	}
	return false
}

// heldLock is one acquisition live on the current scan path.
type heldLock struct {
	ref  lockRef
	mode lockMode
	pos  token.Pos
}

// scanFunc walks one function body in source order, tracking the held
// set, and reports double-locks and re-entries. Function literals become
// their own scopes with an empty held set (they run on another schedule).
func (lo *lockOrderPass) scanFunc(fd *ast.FuncDecl, fn *types.Func) {
	lo.scanBody(fd, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lo.scanBody(fd, lit.Body)
		}
		return true
	})
}

func (lo *lockOrderPass) scanBody(fd *ast.FuncDecl, body *ast.BlockStmt) {
	info := lo.pass.TypesInfo
	var held []heldLock
	position := func(p token.Pos) int { return lo.pass.Fset.Position(p).Line }
	walkSkipFuncLits(body, func(n ast.Node) {
		if def, ok := n.(*ast.DeferStmt); ok {
			// A deferred unlock releases at return: the lock stays held for
			// the rest of the linear scan, which is exactly right. Deferred
			// plain calls run after the body; skip them.
			if _, name, _, isLock := lo.lockCall(fd, def.Call); isLock && (name == "Unlock" || name == "RUnlock") {
				return
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if insideDefer(body, call) {
			return
		}
		if ref, name, mode, isLock := lo.lockCall(fd, call); isLock {
			switch name {
			case "Lock", "RLock":
				for _, h := range held {
					if h.ref.sameValue(ref) {
						lo.pass.Reportf(call.Pos(),
							"%s of %s while already holding its %s (line %d): %s",
							mode, ref.key, h.mode, position(h.pos), doubleLockWhy(h.mode, mode))
					} else if h.ref.key != ref.key {
						lo.addEdge(h.ref.key, ref.key, call.Pos(), fmt.Sprintf(
							"%s acquired while %s held", ref.key, h.ref.key))
					}
				}
				held = append(held, heldLock{ref: ref, mode: mode, pos: call.Pos()})
			case "Unlock", "RUnlock":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].ref.key == ref.key {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
			return
		}
		callee := calleeFunc(info, call)
		if callee == nil || lo.decls[callee] == nil || len(held) == 0 {
			return
		}
		recvRoot := lo.callReceiverRoot(call)
		for _, acq := range sortedAcqs(lo.summaries[callee]) {
			for _, h := range held {
				if h.ref.key == acq.key {
					// Re-entry is certain only when the lock value matches:
					// package-level locks always do; receiver-field locks when
					// the call's receiver is the variable the held lock is
					// rooted at.
					if (h.ref.pkgLevel && acq.pkgLevel) ||
						(acq.recvRooted && h.ref.root != nil && h.ref.root == recvRoot) {
						lo.pass.Reportf(call.Pos(),
							"calls %s, which acquires %s (%s) already held here (%s at line %d): self-deadlock",
							callee.Name(), acq.key, acq.mode, h.mode, position(h.pos))
					}
				} else {
					lo.addEdge(h.ref.key, acq.key, call.Pos(), fmt.Sprintf(
						"%s acquires %s while %s held", callee.Name(), acq.key, h.ref.key))
				}
			}
		}
	})
}

// callReceiverRoot returns the object of the receiver chain's root
// identifier of a method call (the s of s.completeJob(...)), or nil.
func (lo *lockOrderPass) callReceiverRoot(call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	root := rootIdent(sel.X)
	if root == nil {
		return nil
	}
	return objectOf(lo.pass.TypesInfo, root)
}

func doubleLockWhy(held, next lockMode) string {
	switch {
	case held == modeWrite:
		return "sync mutexes are not reentrant"
	case next == modeWrite:
		return "a read-to-write upgrade deadlocks against the readers"
	default:
		return "recursive RLock deadlocks once a writer is waiting in between"
	}
}

func (lo *lockOrderPass) addEdge(from, to string, pos token.Pos, desc string) {
	m := lo.edges[from]
	if m == nil {
		m = map[string]lockEdge{}
		lo.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = lockEdge{pos: pos, desc: desc}
	}
}

// reportCycles finds edges that participate in an ordering cycle and
// reports each such edge at its first acquisition site.
func (lo *lockOrderPass) reportCycles() {
	froms := make([]string, 0, len(lo.edges))
	for from := range lo.edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, from := range froms {
		tos := make([]string, 0, len(lo.edges[from]))
		for to := range lo.edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if path := lo.findPath(to, from); path != nil {
				e := lo.edges[from][to]
				cycle := append([]string{from, to}, path[1:]...)
				lo.pass.Reportf(e.pos,
					"lock-order cycle: %s (%s) — acquire these locks in one global order",
					strings.Join(cycle, " -> "), e.desc)
			}
		}
	}
}

// findPath returns a lock-key path from -> ... -> to following edges, or
// nil. Deterministic: neighbors visited in sorted order.
func (lo *lockOrderPass) findPath(from, to string) []string {
	seen := map[string]bool{}
	var dfs func(cur string, path []string) []string
	dfs = func(cur string, path []string) []string {
		if cur == to {
			return append(path, cur)
		}
		if seen[cur] {
			return nil
		}
		seen[cur] = true
		nexts := make([]string, 0, len(lo.edges[cur]))
		for n := range lo.edges[cur] {
			nexts = append(nexts, n)
		}
		sort.Strings(nexts)
		for _, n := range nexts {
			if r := dfs(n, append(path, cur)); r != nil {
				return r
			}
		}
		return nil
	}
	return dfs(from, nil)
}

// sortedAcqs returns a summary's acquisitions in stable key order.
func sortedAcqs(sum map[string]lockAcq) []lockAcq {
	keys := make([]string, 0, len(sum))
	for k := range sum {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lockAcq, 0, len(keys))
	for _, k := range keys {
		out = append(out, sum[k])
	}
	return out
}

// walkSkipFuncLits visits every node of root in source order, pruning
// function literal subtrees (they execute on their own schedule and are
// scanned as separate scopes).
func walkSkipFuncLits(root ast.Node, fn func(n ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// insideDefer reports whether the call is the immediate call of a
// DeferStmt — handled separately by the scan. (Arguments of a deferred
// call still evaluate inline and are visited normally.)
func insideDefer(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Call == call {
			found = true
		}
		return !found
	})
	return found
}
