package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolPut guards the allocation-free kernel's recycling discipline (the
// PR 4 pools): a value taken from a sync.Pool with Get must reach Put on
// every return path of the function, or be deliberately handed off (a
// vend-from-pool helper returning it, or storage into longer-lived state).
// The classic bug shape is an early return — an error path added later —
// that skips the Put and silently re-inflates allocations.
var PoolPut = &Analyzer{
	Name: "poolput",
	Doc:  "flags sync.Pool.Get values that miss Put on some return path of the function",
	Run:  runPoolPut,
}

func runPoolPut(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPoolFunc(pass, fd)
			}
		}
	}
	return nil
}

// poolGet is one P.Get() call and the local variable its result binds to.
type poolGet struct {
	call   *ast.CallExpr
	key    string // source text of the pool expression P
	val    types.Object
	stored bool // result stored straight into a field/map: ownership moved
}

func checkPoolFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var gets []*poolGet
	var puts []struct {
		key string
		pos token.Pos
	}
	deferPut := map[string]bool{}
	var returns []*ast.ReturnStmt
	escaped := map[types.Object]bool{}

	// The whole declaration body is one soup: closure-local puts count for
	// the enclosing function (a defer func(){ p.Put(x) }() is the idiom).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			for key := range poolPutsIn(info, st.Call) {
				deferPut[key] = true
			}
		case *ast.CallExpr:
			if key, ok := poolMethod(info, st, "Get"); ok {
				gets = append(gets, &poolGet{call: st, key: key})
			}
			if key, ok := poolMethod(info, st, "Put"); ok {
				puts = append(puts, struct {
					key string
					pos token.Pos
				}{key, st.Pos()})
			}
		case *ast.ReturnStmt:
			returns = append(returns, st)
		}
		return true
	})
	if len(gets) == 0 {
		return
	}

	// Bind Get results to the variables they define and record handoffs
	// (escapes into fields, maps, channels) that transfer ownership.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				for _, g := range gets {
					if !containsCall(rhs, g.call) {
						continue
					}
					switch lhs := ast.Unparen(st.Lhs[i]).(type) {
					case *ast.Ident:
						if obj := objectOf(info, lhs); obj != nil {
							g.val = obj
						}
					case *ast.SelectorExpr, *ast.IndexExpr:
						g.stored = true
					}
				}
				// v stored into non-local structure: ownership moves.
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
					if obj := objectOf(info, id); obj != nil && isPoolValue(gets, obj) {
						switch ast.Unparen(st.Lhs[i]).(type) {
						case *ast.SelectorExpr, *ast.IndexExpr:
							escaped[obj] = true
						}
					}
				}
			}
		case *ast.SendStmt:
			if id, ok := ast.Unparen(st.Value).(*ast.Ident); ok {
				if obj := objectOf(info, id); obj != nil {
					escaped[obj] = true
				}
			}
		case *ast.CallExpr:
			// Passing the value to a put/release/free/recycle-named helper
			// counts as a Put on this path.
			if fn := calleeFunc(info, st); fn != nil && putNamed(fn.Name()) {
				for _, arg := range st.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if obj := objectOf(info, id); obj != nil && isPoolValue(gets, obj) {
							for _, g := range gets {
								if g.val == obj {
									puts = append(puts, struct {
										key string
										pos token.Pos
									}{g.key, st.Pos()})
								}
							}
						}
					}
				}
			}
		}
		return true
	})

	for _, g := range gets {
		if deferPut[g.key] || g.stored || (g.val != nil && escaped[g.val]) {
			continue
		}
		if directlyHandedOff(info, fd.Body, g) {
			continue
		}
		putBetween := func(lo, hi token.Pos) bool {
			for _, p := range puts {
				if p.key == g.key && p.pos > lo && p.pos < hi {
					return true
				}
			}
			return false
		}
		for _, ret := range returns {
			if ret.Pos() < g.call.Pos() {
				continue
			}
			if g.val != nil && returnsValue(info, ret, g.val) {
				continue // ownership transfers to the caller
			}
			if !putBetween(g.call.Pos(), ret.Pos()) {
				pass.Reportf(g.call.Pos(),
					"%s.Get value does not reach %s.Put before the return at line %d; Put on every path or defer it",
					g.key, g.key, pass.Fset.Position(ret.Pos()).Line)
				break
			}
		}
		// A function body that can fall off its end is one more exit.
		if fallsOffEnd(fd.Body) && !putBetween(g.call.Pos(), fd.Body.End()) {
			pass.Reportf(g.call.Pos(),
				"%s.Get value does not reach %s.Put before the function ends; Put on every path or defer it",
				g.key, g.key)
		}
	}
}

// poolMethod reports whether call is P.<name>() with P a sync.Pool, and
// returns P's source text as the pool key.
func poolMethod(info *types.Info, call *ast.CallExpr, name string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if !isNamed(t, "sync", "Pool") {
		return "", false
	}
	return exprText(sel.X), true
}

// poolPutsIn collects the pool keys Put inside a deferred call: either
// `defer P.Put(v)` directly or `defer func() { ... P.Put(v) ... }()`.
func poolPutsIn(info *types.Info, call *ast.CallExpr) map[string]bool {
	keys := map[string]bool{}
	if key, ok := poolMethod(info, call, "Put"); ok {
		keys[key] = true
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if key, ok := poolMethod(info, c, "Put"); ok {
					keys[key] = true
				}
			}
			return true
		})
	}
	return keys
}

func isPoolValue(gets []*poolGet, obj types.Object) bool {
	for _, g := range gets {
		if g.val == obj {
			return true
		}
	}
	return false
}

func putNamed(name string) bool {
	n := strings.ToLower(name)
	for _, verb := range []string{"put", "release", "free", "recycle"} {
		if strings.Contains(n, verb) {
			return true
		}
	}
	return false
}

// directlyHandedOff reports whether the Get call's result is used without
// being bound (returned directly or passed straight into another call):
// the function is a vend helper and ownership moves with the value.
func directlyHandedOff(info *types.Info, body *ast.BlockStmt, g *poolGet) bool {
	if g.val != nil {
		return false
	}
	handed := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if containsCall(res, g.call) {
					handed = true
				}
			}
		case *ast.CallExpr:
			if _, isGet := poolMethod(info, st, "Get"); isGet {
				return true
			}
			for _, arg := range st.Args {
				if containsCall(arg, g.call) {
					handed = true
				}
			}
		}
		return !handed
	})
	return handed
}

// returnsValue reports whether ret returns obj as one of its results.
func returnsValue(info *types.Info, ret *ast.ReturnStmt, obj types.Object) bool {
	for _, res := range ret.Results {
		if id, ok := ast.Unparen(res).(*ast.Ident); ok && objectOf(info, id) == obj {
			return true
		}
	}
	return false
}

// containsCall reports whether the expression subtree contains call.
func containsCall(e ast.Expr, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if n == ast.Node(call) {
			found = true
		}
		return !found
	})
	return found
}

// fallsOffEnd crudely reports whether control can reach the end of the
// block (its last statement is not a return or an unconditional
// panic/terminal statement).
func fallsOffEnd(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return true
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return false
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
		}
	case *ast.ForStmt:
		if last.Cond == nil {
			return false // for {} without break... close enough
		}
	}
	return true
}
