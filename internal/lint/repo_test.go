package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestRepoIsLintClean runs the full analyzer suite over the repository —
// the same gate CI applies with `go run ./cmd/ltee-lint ./...`. Skipped
// under -short: it type-checks every package in the module.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped under -short")
	}
	diags, err := lint.Run("../..", []string{"./..."}, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestRepoTestFilesAreLintClean widens the gate to the repository's test
// files — the same run CI applies with `ltee-lint -tests ./...`.
func TestRepoTestFilesAreLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module including tests; skipped under -short")
	}
	diags, err := lint.RunTests("../..", []string{"./..."}, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
