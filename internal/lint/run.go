package lint

import (
	"sort"
)

// Run loads the packages matching the go patterns (relative to dir) and
// runs every analyzer over each, returning the findings that survive
// //lteelint:ignore directives, in stable (file, line, column, analyzer)
// order. An empty result means the tree is lint-clean.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	return run(dir, patterns, analyzers, false)
}

// RunTests is Run over the patterns' test files as well: each package is
// analyzed as its test variant and external _test packages are analyzed
// in their own right.
func RunTests(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	return run(dir, patterns, analyzers, true)
}

func run(dir string, patterns []string, analyzers []*Analyzer, includeTests bool) ([]Diagnostic, error) {
	loader := NewLoader(dir)
	loader.IncludeTests = includeTests
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			ds, err := RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			diags = append(diags, ds...)
		}
		all = append(all, ApplyDirectives(pkg, diags)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}
