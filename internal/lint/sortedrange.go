package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SortedRange flags `range` loops over maps whose bodies are sensitive to
// iteration order: accumulating floats (addition is not associative, so
// results differ run to run — the PR 1 PHI-cosine nondeterminism), growing
// an ordered output (append to a slice declared outside the loop that is
// never sorted afterwards), or writing to an output stream or encoder.
// Iterate sorted keys instead, or sort the collected result before use.
var SortedRange = &Analyzer{
	Name: "sortedrange",
	Doc: "flags range-over-map bodies that accumulate floats, append to ordered output, " +
		"or write to an encoder — map iteration order leaks into the result",
	Run: runSortedRange,
}

func runSortedRange(pass *Pass) error {
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			checkMapRange(pass, rs, enclosingFuncBody(stack))
			return true
		})
	}
	return nil
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	info := pass.TypesInfo
	// An object is "outer" when it was declared before the loop, so writes
	// to it survive iterations and observe the (random) iteration order.
	// The loop's own key/value variables sit in the range header, before
	// rs.Body, hence the rs.Pos() bound.
	outer := func(e ast.Expr) (types.Object, bool) {
		id := rootIdent(e)
		if id == nil {
			return nil, false
		}
		obj := objectOf(info, id)
		if obj == nil {
			return nil, false
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return obj, false
		}
		return obj, true
	}
	isFloat := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkRangeAssign(pass, rs, funcBody, st, outer, isFloat)
		case *ast.CallExpr:
			checkRangeWrite(pass, st, outer)
		}
		return true
	})
}

func checkRangeAssign(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt, st *ast.AssignStmt,
	outer func(ast.Expr) (types.Object, bool), isFloat func(ast.Expr) bool) {
	info := pass.TypesInfo
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return
	}
	lhs, rhs := st.Lhs[0], st.Rhs[0]
	obj, isOuter := outer(lhs)
	if perKeyWrite(info, rs, lhs) {
		// m[k] += v / m[k] = append(m[k], x) with k the range key: every
		// key is visited exactly once, so iteration order cannot leak.
		return
	}

	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if isOuter && isFloat(lhs) {
			pass.Reportf(st.Pos(),
				"float accumulation into %s inside range over a map is order-dependent and nondeterministic; iterate sorted keys", obj.Name())
		}
	case token.ASSIGN, token.DEFINE:
		// x = x + y with float x.
		if bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr); ok && isOuter && isFloat(lhs) {
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				if mentionsObject(info, bin, obj) {
					pass.Reportf(st.Pos(),
						"float accumulation into %s inside range over a map is order-dependent and nondeterministic; iterate sorted keys", obj.Name())
				}
			}
		}
		// x = append(x, ...) growing an outer slice.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isOuter && isAppend(info, call) {
			if !sortedAfter(info, funcBody, rs, obj) {
				pass.Reportf(st.Pos(),
					"append to %s inside range over a map records map iteration order; iterate sorted keys or sort %s before use", obj.Name(), obj.Name())
			}
		}
	}
}

// checkRangeWrite flags ordered-output writes inside the loop body: fmt
// printing to a stream and Write/Encode-style method calls on values
// declared outside the loop.
func checkRangeWrite(pass *Pass, call *ast.CallExpr, outer func(ast.Expr) (types.Object, bool)) {
	info := pass.TypesInfo
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		pass.Reportf(call.Pos(),
			"fmt.%s inside range over a map emits output in map iteration order; iterate sorted keys", fn.Name())
		return
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		if _, isOuter := outer(sel.X); isOuter {
			if _, isMethod := info.Selections[sel]; isMethod {
				pass.Reportf(call.Pos(),
					"%s.%s inside range over a map writes in map iteration order; iterate sorted keys", exprText(sel.X), sel.Sel.Name)
			}
		}
	}
}

// perKeyWrite reports whether lhs is an element write indexed by the
// loop's own range key (m[k] with k the key variable of rs). Map keys are
// unique, so such a write happens once per key and is deterministic no
// matter the iteration order.
func perKeyWrite(info *types.Info, rs *ast.RangeStmt, lhs ast.Expr) bool {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := objectOf(info, keyID)
	if keyObj == nil {
		return false
	}
	id, ok := ast.Unparen(idx.Index).(*ast.Ident)
	return ok && objectOf(info, id) == keyObj
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := objectOf(info, id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether obj is passed to a sorting call after the
// range loop in the same function — the collect-then-sort idiom
// (`for k := range m { keys = append(keys, k) }; sort.Strings(keys)`),
// which is deterministic.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		sorting := fn.Pkg().Path() == "sort" ||
			(fn.Pkg().Path() == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
		if !sorting {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(info, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
