// Package aliasret is the fixture for the aliasret analyzer. Fork
// reproduces the historical PR 3 bug shape: the Engine audit found a
// Fork method copying the whole struct — sync.Mutex included — so the
// clone shared lock state with its parent.
package aliasret

import "sync"

type Engine struct {
	mu      sync.Mutex
	epochs  []int
	state   map[string]int
	version int
}

// Fork is the PR 3 mutex-smuggling copy.
func (e *Engine) Fork() *Engine {
	clone := *e // want `copies mutex-carrying Engine by value`
	return &clone
}

// State hands out the guarded map itself.
func (e *Engine) State() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state // want `returns internal e.state of mutex-guarded Engine`
}

// Epochs aliases the guarded slice even though it returns under the lock.
func (e *Engine) Epochs() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epochs // want `returns internal e.epochs of mutex-guarded Engine`
}

// EpochsCopy is the required fix shape: copy under the lock.
func (e *Engine) EpochsCopy() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, len(e.epochs))
	copy(out, e.epochs)
	return out
}

// VersionPtr leaks a pointer into the guarded struct.
func (e *Engine) VersionPtr() *int {
	return &e.version // want `returns a pointer into mutex-guarded Engine`
}

// Snapshot copies the receiver — and its mutex — on every call.
func (e Engine) Snapshot() int { // want `copies its mutex-carrying receiver Engine by value`
	return e.version
}

// Version is fine: scalar copies don't alias anything.
func (e *Engine) Version() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.version
}

// Columnar mirrors the KB's struct-of-arrays instance store: a
// mutex-guarded owner whose fields are parallel column slices. Accessors
// must materialize copies — handing out a column aliases every instance's
// state at once.
type Columnar struct {
	mu     sync.Mutex
	labels []string
	ids    []uint32
	cols   map[string][]float64
}

// Labels leaks the whole label column.
func (c *Columnar) Labels() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.labels // want `returns internal c.labels of mutex-guarded Columnar`
}

// Column leaks the column map itself (and every slice hanging off it).
func (c *Columnar) Column() map[string][]float64 {
	return c.cols // want `returns internal c.cols of mutex-guarded Columnar`
}

// RowPtr leaks a pointer into the guarded store.
func (c *Columnar) RowPtr(i int) *uint32 {
	return &c.ids[i] // want `returns a pointer into mutex-guarded Columnar`
}

// AppendLabels is the view.go fix shape: copy into the caller's buffer
// under the lock, return the grown buffer — no internal slice escapes.
func (c *Columnar) AppendLabels(dst []string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append(dst, c.labels...)
}

// Label returns a scalar element copy — fine.
func (c *Columnar) Label(i int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.labels[i]
}

// Materialize builds an on-demand copy-on-read view — fine.
func (c *Columnar) Materialize(i int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, 1)
	out = append(out, c.labels[i])
	return out
}

// Plain has no mutex, so aliasing its fields is the callers' business.
type Plain struct{ xs []int }

func (p *Plain) Xs() []int { return p.xs }

func (p Plain) Len() int { return len(p.xs) }

// access through the pointer is not a copy.
func bump(e *Engine) {
	(*e).version++
}
