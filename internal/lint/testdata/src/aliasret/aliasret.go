// Package aliasret is the fixture for the aliasret analyzer. Fork
// reproduces the historical PR 3 bug shape: the Engine audit found a
// Fork method copying the whole struct — sync.Mutex included — so the
// clone shared lock state with its parent.
package aliasret

import "sync"

type Engine struct {
	mu      sync.Mutex
	epochs  []int
	state   map[string]int
	version int
}

// Fork is the PR 3 mutex-smuggling copy.
func (e *Engine) Fork() *Engine {
	clone := *e // want `copies mutex-carrying Engine by value`
	return &clone
}

// State hands out the guarded map itself.
func (e *Engine) State() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state // want `returns internal e.state of mutex-guarded Engine`
}

// Epochs aliases the guarded slice even though it returns under the lock.
func (e *Engine) Epochs() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epochs // want `returns internal e.epochs of mutex-guarded Engine`
}

// EpochsCopy is the required fix shape: copy under the lock.
func (e *Engine) EpochsCopy() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, len(e.epochs))
	copy(out, e.epochs)
	return out
}

// VersionPtr leaks a pointer into the guarded struct.
func (e *Engine) VersionPtr() *int {
	return &e.version // want `returns a pointer into mutex-guarded Engine`
}

// Snapshot copies the receiver — and its mutex — on every call.
func (e Engine) Snapshot() int { // want `copies its mutex-carrying receiver Engine by value`
	return e.version
}

// Version is fine: scalar copies don't alias anything.
func (e *Engine) Version() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.version
}

// Plain has no mutex, so aliasing its fields is the callers' business.
type Plain struct{ xs []int }

func (p *Plain) Xs() []int { return p.xs }

func (p Plain) Len() int { return len(p.xs) }

// access through the pointer is not a copy.
func bump(e *Engine) {
	(*e).version++
}
