// Package broken does not type-check: the loader must surface the error
// rather than analyze a half-checked package.
package broken

// Count is declared an int but assigned a string.
var Count int = "not a number"
