// Package ctxflow is the fixture for the ctxflow analyzer. Train
// reproduces the historical PR 5 invariant violation: internal/report's
// suite called core.Train(context.Background(), ...) from exported entry
// points, silently severing the cancellation chain the public API threads
// end to end.
package ctxflow

import "context"

type models struct{}

func train(ctx context.Context) (models, error) { return models{}, ctx.Err() }

// ModelsFor is the severed-chain bug shape: an exported entry point that
// mints its own root context instead of accepting one.
func ModelsFor(class string) models {
	m, _ := train(context.Background()) // want `exported ModelsFor calls context.Background`
	return m
}

// RunAll has a context in scope and ignores it.
func RunAll(ctx context.Context) error {
	_, err := train(context.Background()) // want `severs the in-scope cancellation chain`
	return err
}

// Fallback is the recognized nil-guard idiom: exempt.
func Fallback(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	_, err := train(ctx)
	return err
}

// Fanout's closure severs the chain of the ctx its enclosing function
// carries.
func Fanout(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		go func() {
			_, _ = train(context.TODO()) // want `severs the in-scope cancellation chain`
		}()
	}
}

// helper is unexported with no context anywhere in scope: allowed (the
// root of an internal call tree that has no caller-supplied context yet).
func helper() {
	_, _ = train(context.Background())
}

// Threaded is the fixed shape of ModelsFor.
func Threaded(ctx context.Context, class string) (models, error) {
	return train(ctx)
}
