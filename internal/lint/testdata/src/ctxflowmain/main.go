// Package main shows the ctxflow carve-out: binaries are where root
// contexts are legitimately created, so nothing here is flagged.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}

func Serve(addr string) error {
	return context.Background().Err()
}
