// Package deplib is a fixture dependency with no export data: importers
// must fall back to type-checking it from source.
package deplib

// Weights maps class names to weights.
type Weights map[string]float64

// Total sums w deterministically enough for a fixture.
func Total(w Weights) float64 {
	var sum float64
	for _, v := range w {
		sum += v
	}
	return sum
}
