// Package depuser imports a sibling fixture package, exercising the
// loader's source fallback for imports without export data.
package depuser

import "deplib"

// Describe consumes the dependency's exported type through the
// source-checked import.
func Describe(w deplib.Weights) float64 {
	return deplib.Total(w) / 2
}
