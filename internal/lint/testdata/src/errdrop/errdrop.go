// Package errdrop is the fixture for the errdrop analyzer, guarding
// error handling on durability paths: a dropped Close/Sync/Flush/Rename
// error on a written file is a silently-lost write.
package errdrop

import (
	"bufio"
	"os"
)

type journal struct {
	f *os.File
	w *bufio.Writer
}

// commit is the blessed shape: every durable error is propagated.
func (j *journal) commit(tmpName, path string) error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}

// closeDropped is the historical bug shape: the journal handle's Close
// error vanishes while the in-memory state moves on.
func (j *journal) closeDropped() {
	j.f.Sync()  // want `j\.f\.Sync discards its error on a durability path`
	j.f.Close() // want `j\.f\.Close discards its error on a durability path`
}

// deferDropped defers the close with the error discarded on a write path.
func (j *journal) deferDropped(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `f\.Close defers with its error discarded on a durability path`
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

// blankAssign blanks an error-returning call on the commit path.
func (j *journal) blankAssign(tmpName, path string) {
	_ = os.Rename(tmpName, path) // want `_ = os\.Rename blanks an error on a durability path`
}

// readPath closes a file opened with os.Open: a read-only handle cannot
// lose writes, so the deferred Close is exempt.
func readPath(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	if _, err := f.Read(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// errorExit closes the temp file while unwinding an earlier failure: the
// original error is the one that matters, so the Close is exempt.
func errorExit(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
