// Package fsyncdisc is the fixture for the fsyncdisc analyzer, guarding
// the PR 8 durable-write discipline: temp sibling from os.CreateTemp,
// fsync the file, rename, fsync the parent directory — and in a
// multi-file commit the manifest is written last.
package fsyncdisc

import (
	"os"
	"path/filepath"
)

// atomicWrite is the blessed shape the real kb/serve helpers follow.
func atomicWrite(path string, data []byte) error {
	dirName := filepath.Dir(path)
	tmp, err := os.CreateTemp(dirName, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	dir, err := os.Open(dirName)
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}

// renameNoSync is the historical bug shape: the rename is durable before
// the content is, so a crash leaves the final name with torn bytes — and
// without the directory fsync the rename itself can vanish.
func renameNoSync(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path) // want `os.Rename commits a file with no fsync before it` `os.Rename is not followed by an fsync of the parent directory`
}

// renameInPlace commits a sibling that never came from os.CreateTemp:
// not crash-atomic against the writer of src.
func renameInPlace(src, dst string) error {
	f, err := os.Create(src)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(src, dst); err != nil { // want `os.Rename source src is not an os.CreateTemp file from this function` `os.Rename is not followed by an fsync of the parent directory`
		return err
	}
	return nil
}

// writeInPlace uses os.WriteFile in a persisting package: a crash mid-call
// leaves a half-written file under the final name.
func writeInPlace(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile writes in place \(not crash-atomic\) in a package that persists state`
}

// saveAll is the blessed commit order: segments first, manifest last.
func saveAll(dir string, segs [][]byte, manifest []byte) error {
	for i, seg := range segs {
		if err := atomicWrite(filepath.Join(dir, "seg", string(rune('a'+i))), seg); err != nil {
			return err
		}
	}
	return atomicWrite(filepath.Join(dir, "manifest"), manifest)
}

// saveManifestFirst is the ordering bug: a crash after the manifest
// commit leaves it describing segments that do not exist yet.
func saveManifestFirst(dir string, seg, manifest []byte) error {
	if err := atomicWrite(filepath.Join(dir, "manifest"), manifest); err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, "seg"), seg) // want `atomicWrite writes after the manifest committed at line \d+; the manifest must be the last write of the sequence`
}
