// Package goleak is the fixture for the goleak analyzer, guarding the
// PR 9 writer-lane lifecycle: every go-launched goroutine needs a
// termination path — a return/break out of its loop or a close site for
// the channel it drains.
package goleak

import "context"

type lane struct {
	q    chan int
	done chan struct{}
}

type server struct {
	busy lane
	idle lane
	n    int
}

// spinForever is the historical bug shape: a monitor loop with no exit,
// alive past shutdown.
func (s *server) spinForever() {
	go func() { // want `goroutine loops forever: the for-loop at line \d+ has no return, break, or terminal call`
		for {
			s.n++
		}
	}()
}

// spinTrue is the same bug spelled with a constant condition.
func (s *server) spinTrue() {
	go func() { // want `goroutine loops forever: the for-loop at line \d+ has no return, break, or terminal call`
		for true {
			s.n++
		}
	}()
}

// spinWithCtx is the fixed shape: the ctx.Done() case returns.
func (s *server) spinWithCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-s.busy.q:
				s.n += v
			}
		}
	}()
}

// spinWithDone exits through the lane's done channel.
func (s *server) spinWithDone() {
	go func() {
		for {
			select {
			case <-s.busy.done:
				return
			default:
				s.n++
			}
		}
	}()
}

// innerBreak only leaves the inner loop: the outer one still never ends.
func (s *server) innerBreak() {
	go func() { // want `goroutine loops forever: the for-loop at line \d+ has no return, break, or terminal call`
		for {
			for i := 0; i < 8; i++ {
				if i == s.n {
					break
				}
			}
		}
	}()
}

// labeledBreak does leave the outer loop: fine.
func (s *server) labeledBreak() {
	go func() {
	drain:
		for {
			for i := 0; i < 8; i++ {
				if i == s.n {
					break drain
				}
			}
		}
	}()
}

// drainIdle ranges over a channel nothing in the package ever closes:
// once the senders stop, the drain blocks forever.
func (s *server) drainIdle() {
	go func() { // want `goroutine ranges over s\.idle\.q but nothing in the package closes it`
		for v := range s.idle.q {
			s.n += v
		}
	}()
}

// drainBusy ranges over a channel with a close site below: fine.
func (s *server) drainBusy() {
	go func() {
		for v := range s.busy.q {
			s.n += v
		}
	}()
}

func (s *server) shutdown() {
	close(s.busy.q)
	close(s.busy.done)
}

// runWorker is a declared worker launched by name; its range channel is a
// parameter, cleared by element-type fallback against the close of events.
func runWorker(ch chan string, sink *int) {
	for range ch {
		*sink++
	}
}

var events = make(chan string)

func start(sink *int) {
	go runWorker(events, sink)
}

func stop() {
	close(events)
}
