// Package lockorder is the fixture for the lockorder analyzer, guarding
// the PR 9 scheduler lock hierarchy: the execution RWMutex, the corpus
// RWMutex and the kb mutex are acquired in one global order and no
// critical section re-enters its own lock.
package lockorder

import "sync"

// Server mirrors the scheduler shape: an execution RWMutex ordered before
// the job mutex.
type Server struct {
	execMu sync.RWMutex
	jobMu  sync.Mutex
	jobs   int
}

// doubleLock is the classic non-reentrancy bug: a helper inlined into a
// critical section brings its own Lock along.
func (s *Server) doubleLock() {
	s.jobMu.Lock()
	s.jobMu.Lock() // want `Lock of Server.jobMu while already holding its Lock \(line \d+\): sync mutexes are not reentrant`
	s.jobs++
	s.jobMu.Unlock()
	s.jobMu.Unlock()
}

// upgrade is the read-to-write upgrade deadlock: the writer waits for the
// reader that is waiting for the writer.
func (s *Server) upgrade() {
	s.execMu.RLock()
	defer s.execMu.RUnlock()
	s.execMu.Lock() // want `Lock of Server.execMu while already holding its RLock \(line \d+\): a read-to-write upgrade deadlocks against the readers`
	s.execMu.Unlock()
}

// recursiveRead deadlocks once a writer queues between the two RLocks.
func (s *Server) recursiveRead() int {
	s.execMu.RLock()
	defer s.execMu.RUnlock()
	s.execMu.RLock() // want `RLock of Server.execMu while already holding its RLock \(line \d+\): recursive RLock deadlocks once a writer is waiting in between`
	defer s.execMu.RUnlock()
	return s.jobs
}

// sequential reacquires after release: fine.
func (s *Server) sequential() {
	s.jobMu.Lock()
	s.jobs++
	s.jobMu.Unlock()
	s.jobMu.Lock()
	s.jobs--
	s.jobMu.Unlock()
}

// addJob acquires the job mutex on its receiver.
func (s *Server) addJob() {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.jobs++
}

// reenter calls back into a method that acquires the very lock it holds:
// self-deadlock through one level of indirection.
func (s *Server) reenter() {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.addJob() // want `calls addJob, which acquires Server.jobMu \(Lock\) already held here \(Lock at line \d+\): self-deadlock`
}

// addJobLocked is the fixed shape: the caller holds jobMu, the helper
// only mutates.
func (s *Server) addJobLocked() {
	s.jobs++
}

// reenterFixed routes the held-lock path through the Locked variant.
func (s *Server) reenterFixed() {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.addJobLocked()
}

// otherInstance locks the same field on a different value: no finding,
// the lock values are distinct.
func (s *Server) otherInstance(t *Server) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	t.addJob()
}

// nested acquires exec before job; inverted acquires job before exec.
// Together the two paths are an ordering cycle — two goroutines
// interleaving them deadlock holding one lock each — so both acquisition
// sites are reported.
func (s *Server) nested() {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	s.jobMu.Lock() // want `lock-order cycle: Server.execMu -> Server.jobMu -> Server.execMu`
	s.jobs++
	s.jobMu.Unlock()
}

func (s *Server) inverted() {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.execMu.RLock() // want `lock-order cycle: Server.jobMu -> Server.execMu -> Server.jobMu`
	defer s.execMu.RUnlock()
}

// Package-level lock: re-entry through a helper is certain regardless of
// receiver, the lock value is the one global.
var regMu sync.Mutex
var registry = map[string]int{}

func register(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name]++
}

func registerPair(a, b string) {
	regMu.Lock()
	defer regMu.Unlock()
	register(a) // want `calls register, which acquires regMu \(Lock\) already held here \(Lock at line \d+\): self-deadlock`
	registry[b]++
}

// registerLocked is the fixed shape for the global too.
func registerLocked(name string) {
	registry[name]++
}

func registerPairFixed(a, b string) {
	regMu.Lock()
	defer regMu.Unlock()
	registerLocked(a)
	registerLocked(b)
}

// launch hands the lock work to a goroutine: the closure runs on its own
// schedule, not on the caller's path, so no double-lock is reported.
func (s *Server) launch() {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	go func() {
		s.jobMu.Lock()
		s.jobs++
		s.jobMu.Unlock()
	}()
}
