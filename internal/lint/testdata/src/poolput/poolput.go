// Package poolput is the fixture for the poolput analyzer, guarding the
// PR 4 allocation-free kernel discipline: every sync.Pool.Get must reach
// a Put on every return path, or deliberately hand the value off.
package poolput

import "sync"

var pool = sync.Pool{New: func() interface{} { return new([]float64) }}

// leaky is the classic regression: an error path added later returns
// before the Put and silently re-inflates allocations.
func leaky(fail bool) int {
	buf := pool.Get().(*[]float64) // want `does not reach pool.Put before the return at line 15`
	if fail {
		return 0
	}
	n := len(*buf)
	pool.Put(buf)
	return n
}

// deferred is the recommended shape.
func deferred(fail bool) int {
	buf := pool.Get().(*[]float64)
	defer pool.Put(buf)
	if fail {
		return 0
	}
	return len(*buf)
}

// deferredClosure puts inside a deferred func literal.
func deferredClosure() int {
	buf := pool.Get().(*[]float64)
	defer func() {
		*buf = (*buf)[:0]
		pool.Put(buf)
	}()
	return len(*buf)
}

// explicit puts on every path by hand.
func explicit(fail bool) int {
	buf := pool.Get().(*[]float64)
	if fail {
		pool.Put(buf)
		return 0
	}
	n := len(*buf)
	pool.Put(buf)
	return n
}

// noput never returns but still leaks when control falls off the end.
func noput() {
	buf := pool.Get().(*[]float64) // want `does not reach pool.Put before the function ends`
	_ = buf
}

// vend transfers ownership to the caller: exempt.
func vend() *[]float64 {
	return pool.Get().(*[]float64)
}

// vendBound binds first, then returns the value itself: still a handoff.
func vendBound() *[]float64 {
	buf := pool.Get().(*[]float64)
	*buf = (*buf)[:0]
	return buf
}

// release is a named helper the analyzer treats as a Put.
func release(buf *[]float64) {
	*buf = (*buf)[:0]
	pool.Put(buf)
}

// viaHelper recycles through release on both paths.
func viaHelper(fail bool) int {
	buf := pool.Get().(*[]float64)
	if fail {
		release(buf)
		return 0
	}
	n := len(*buf)
	release(buf)
	return n
}

type cache struct {
	mu   sync.Mutex
	slot *[]float64
}

// keep stores the value into longer-lived state: ownership moves.
func (c *cache) keep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slot = pool.Get().(*[]float64)
}
