// The benchmark runner is exempt: it exists to drive internal packages.
package main

import (
	ikb "repro/internal/kb"
)

func main() {
	_ = ikb.New()
}
