// The public CLI must stay on the public surface too.
package main

import (
	ikb "repro/internal/kb" // want `public consumer repro/cmd/ltee must not import repro/internal/kb`
)

func main() {
	_ = ikb.New()
}
