// Package repro is the fixture's root documentation package: it promises
// to compile against the public surface only.
package repro

import "repro/internal/kb" // want `public consumer repro must not import repro/internal/kb`

// Default is the kind of convenience the root package must build from
// public packages, not internal ones.
var Default = kb.New()
