// The examples tree documents the public API; reaching into internal
// packages here would teach users an import that fails outside the module.
package main

import (
	"fmt"

	"repro/internal/kb" // want `public consumer repro/examples/demo must not import repro/internal/kb`
	pub "repro/ltee/kb"
)

func main() {
	fmt.Println(kb.New(), pub.New())
}
