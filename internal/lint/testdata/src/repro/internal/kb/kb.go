// Package kb is the internal implementation the boundary fixture guards.
package kb

// KB is a stand-in for the real knowledge base.
type KB struct{ N int }

// New returns an empty knowledge base.
func New() *KB { return &KB{} }
