// Package kb is the sanctioned public alias bridge: re-exporting
// internal implementations is exactly its job, so the boundary check
// leaves the ltee/ tree alone.
package kb

import ikb "repro/internal/kb"

// KB re-exports the internal knowledge base.
type KB = ikb.KB

// New re-exports the internal constructor.
func New() *KB { return ikb.New() }
