// Package sortedrange is the fixture for the sortedrange analyzer. The
// first case reproduces the historical PR 1 bug shape: PHI cosine
// accumulated float products in map iteration order, so parallel and
// serial runs diverged in the low bits.
package sortedrange

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// cosine is the PR 1 nondeterminism class: order-dependent float addition.
func cosine(a, b map[string]float64) float64 {
	var dot float64
	for k, v := range a {
		dot += v * b[k] // want `float accumulation into dot`
	}
	return dot
}

// cosineSorted is the required fix shape: collect keys, sort, accumulate.
func cosineSorted(a, b map[string]float64) float64 {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k) // collected keys are sorted below: exempt
	}
	sort.Strings(keys)
	var dot float64
	for _, k := range keys {
		dot += a[k] * b[k]
	}
	return dot
}

// longForm catches the x = x + y spelling too.
func longForm(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v // want `float accumulation into sum`
	}
	return sum
}

// counts shows integer accumulation is fine: addition of ints commutes
// exactly.
func counts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// collectUnsorted appends map values in iteration order and never sorts.
func collectUnsorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `append to out inside range over a map`
	}
	return out
}

// collectSorted is exempt: the result is sorted before use.
func collectSorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// localAccumulation is fine: acc is reset every iteration.
func localAccumulation(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		acc := 0.0
		for _, v := range vs {
			acc += v
		}
		out[k] = acc
	}
	return out
}

// printInOrder emits output in map iteration order.
func printInOrder(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside range over a map`
	}
}

// buildOutside writes into a builder that outlives the loop.
func buildOutside(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `b.WriteString inside range over a map`
	}
	return b.String()
}

// buildInside is fine: the builder is per-iteration state.
func buildInside(m map[string][]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, parts := range m {
		var b strings.Builder
		for _, p := range parts {
			b.WriteString(p)
		}
		out[k] = b.String()
	}
	return out
}

// bucketUnion collects LSH bucket candidates in map iteration order — the
// shape a banding index's query path must not have: the candidate list
// feeds exact re-ranking, whose float summation and tie-breaks would then
// depend on map iteration order.
func bucketUnion(buckets map[uint64][]int) []int {
	var docs []int
	for _, ds := range buckets {
		docs = append(docs, ds...) // want `append to docs inside range over a map`
	}
	return docs
}

// bucketUnionSorted is the fix shape the LSH index uses: union the
// buckets, then sort (and dedup) so downstream scoring sees a canonical
// candidate order.
func bucketUnionSorted(buckets map[uint64][]int) []int {
	var docs []int
	for _, ds := range buckets {
		docs = append(docs, ds...)
	}
	sort.Ints(docs)
	return docs
}
