// Package suppress is the fixture for the //lteelint:ignore directive
// machinery: a justified suppression, a stale (unused) one, and two
// malformed ones. directive_test.go asserts on the surviving findings
// directly instead of using want comments.
package suppress

import "context"

// Detach deliberately severs the chain: report jobs outlive the request
// that spawned them.
func Detach(ctx context.Context) context.Context {
	//lteelint:ignore ctxflow report jobs outlive the request that spawned them
	return jobContext(context.Background())
}

func jobContext(ctx context.Context) context.Context { return ctx }

// Stale carries a directive with nothing left to suppress.
func Stale(ctx context.Context) error {
	//lteelint:ignore ctxflow nothing on the next line triggers ctxflow anymore
	return ctx.Err()
}

// NoReason is missing the mandatory justification.
func NoReason(ctx context.Context) error {
	//lteelint:ignore ctxflow
	_ = context.Background()
	return nil
}

// UnknownAnalyzer names an analyzer that does not exist.
func UnknownAnalyzer(ctx context.Context) error {
	//lteelint:ignore nosuchcheck because reasons
	return ctx.Err()
}

// WrongLine puts the directive two lines above the offending call: a
// directive covers its own line and the next only, so the finding
// survives and the directive itself is reported as unused.
func WrongLine(ctx context.Context) context.Context {
	//lteelint:ignore ctxflow too far above the call to cover it

	return jobContext(context.Background())
}
