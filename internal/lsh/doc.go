// Package lsh implements MinHash/LSH banding for sub-linear candidate
// retrieval over labels: the blocking lever of the entity-matching
// literature and the reason the paper's §3.4 candidate selection stays
// cheap as the knowledge base grows.
//
// # Construction
//
// A label's set representation is its normalized tokens plus the character
// trigrams of each token padded as "^token$" — the trigrams are what give
// the scheme the fuzzy recall the exact paths get from the SymSpell
// deletion index: an edit-distance-1 typo ("yesterday" → "yeserday")
// shares no token with the original, but roughly half of its padded
// trigrams, so its trigram Jaccard similarity sits near 0.5 where plain
// token Jaccard is 0.
//
// A Hasher computes a MinHash signature of Bands·Rows values per label
// under a seeded hash family, and folds each band of Rows values into one
// bucket key. Two labels with Jaccard similarity s collide in at least one
// band with probability 1−(1−s^Rows)^Bands — with the default 21 bands of
// 3 rows, s=0.7 collides with probability ≈0.9998, s=0.5 with ≈0.94,
// s=0.3 with ≈0.44, and s=0.2 with ≈0.15, while unrelated labels (s≈0)
// almost never do. The sharp knee is deliberate: fuzzy variants of the
// same label (a typo across a multi-token label keeps most of its
// trigrams, s ≥ 0.6) stay above 0.99, while pairs that merely share one
// common token land on the low shoulder — those are exactly the pairs
// whose posting lists grow linearly with the corpus, and pruning them is
// what keeps candidate sets bucket-bounded at scale.
//
// An Index files documents under their band bucket keys and retrieves, per
// query, the union of the query's buckets — near-O(1) per query instead of
// a walk over every posting of every query token.
//
// # Hybrid retrieval
//
// MinHash is blind to token weight: a match sharing a single rare,
// high-IDF token with the query sits at low Jaccard similarity — on the
// banding curve's low shoulder — yet can legitimately rank among the
// exact scorer's top hits. Callers therefore union the bucket candidates
// with a bounded rare-token posting walk (index.AppendRareDocs): every
// posting of a query token whose document frequency is within a fixed cap
// is admitted directly. The two halves complement exactly — rare-token
// matches are cheap to walk by definition, and matches through common
// (past-cap) tokens need several shared tokens to outrank the floor,
// which is the high-similarity regime banding covers. The union is then
// re-ranked with the exact TF-IDF scorer (index.ScoreDocs), so retrieval
// order and tie-breaking are identical to the reference path whenever the
// candidate set covers the reference's top hits; the equivalence test in
// internal/core asserts identical end-to-end output over the seed
// scenarios.
//
// # Determinism
//
// Element hashes are computed from the token and trigram strings (FNV-64a
// with a fixed seed), never from interner state: the process-wide intern
// IDs depend on call history and must not leak into signatures. The intern
// ID only keys a cache of per-token element hashes. Query results are
// returned sorted and deduplicated, and the hash family derives from a
// fixed seed, so every signature, bucket key, and candidate list is
// bit-identical across runs and across processes.
package lsh
