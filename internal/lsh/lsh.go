package lsh

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/strsim"
)

// Params configures the banding scheme. The zero value is replaced by
// DefaultParams' fields.
type Params struct {
	// Bands is the number of bands (default 21). More bands raise recall
	// and cost.
	Bands int
	// Rows is the number of signature values folded into one band key
	// (default 3). More rows sharpen the collision threshold upward.
	Rows int
	// Seed seeds the hash family. Two indexes agree on bucket keys only
	// when built with the same seed.
	Seed uint64
}

// DefaultParams returns the tuned production parameters: 21 bands of 3
// rows (a 63-value signature). The curve 1-(1-J^3)^21 puts fuzzy label
// variants (trigram Jaccard ≥0.6, e.g. an edit-distance-1 typo of a
// multi-token label) above 0.99 collision probability while pruning the
// incidental regime — pairs sharing a single common token (J ≈ 0.2-0.3)
// collide under 25% of the time, so buckets stay small as the corpus
// grows instead of degenerating into the posting lists of an inverted
// index (see the package comment for the full curve).
func DefaultParams() Params {
	return Params{Bands: 21, Rows: 3, Seed: 0x6c746565} // "ltee"
}

// normalize fills in defaults for zero fields.
func (p Params) normalize() Params {
	d := DefaultParams()
	if p.Bands <= 0 {
		p.Bands = d.Bands
	}
	if p.Rows <= 0 {
		p.Rows = d.Rows
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// splitmix64 advances x and returns the next value of the splitmix64
// stream; it derives the per-function hash constants from the seed.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Hasher computes MinHash signatures and band bucket keys under one seeded
// hash family. A Hasher is immutable and safe for concurrent use.
type Hasher struct {
	p Params
	// a (forced odd) and b are the per-function mixing constants of the
	// Bands·Rows hash functions.
	a, b []uint64
}

// NewHasher builds the hash family for the given parameters.
func NewHasher(p Params) *Hasher {
	p = p.normalize()
	k := p.Bands * p.Rows
	h := &Hasher{p: p, a: make([]uint64, k), b: make([]uint64, k)}
	s := p.Seed
	for i := 0; i < k; i++ {
		h.a[i] = splitmix64(&s) | 1
		h.b[i] = splitmix64(&s)
	}
	return h
}

// Params returns the (defaulted) parameters the hasher was built with.
func (h *Hasher) Params() Params { return h.p }

// mix applies hash function i to an element hash.
func mix(e, a, b uint64) uint64 {
	v := (e ^ b) * a
	v ^= v >> 29
	v *= 0xBF58476D1CE4E5B9
	return v ^ (v >> 32)
}

// Element hashes are FNV-64a over the element string with a salt byte
// distinguishing whole tokens from trigrams, so the token "abc" and the
// trigram "abc" are distinct elements.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3

	tokenSalt = byte('t')
	gramSalt  = byte('g')
)

// tokenHash hashes a whole token element.
func tokenHash(tok string) uint64 {
	h := uint64(fnvOffset)
	h = (h ^ uint64(tokenSalt)) * fnvPrime
	for i := 0; i < len(tok); i++ {
		h = (h ^ uint64(tok[i])) * fnvPrime
	}
	return h
}

// gramHash hashes one 3-byte window of the padded token.
func gramHash(b0, b1, b2 byte) uint64 {
	h := uint64(fnvOffset)
	h = (h ^ uint64(gramSalt)) * fnvPrime
	h = (h ^ uint64(b0)) * fnvPrime
	h = (h ^ uint64(b1)) * fnvPrime
	h = (h ^ uint64(b2)) * fnvPrime
	return h
}

// appendTokenElems appends the element hashes of one token: the token
// itself plus every byte trigram of "^token$". Tokens come from the shared
// normalizer, so padding bytes cannot occur inside them.
func appendTokenElems(dst []uint64, tok string) []uint64 {
	dst = append(dst, tokenHash(tok))
	// Windows over the padded form, without materializing it: index -1 is
	// '^' and index len(tok) is '$'.
	at := func(i int) byte {
		switch {
		case i < 0:
			return '^'
		case i >= len(tok):
			return '$'
		default:
			return tok[i]
		}
	}
	for i := -1; i <= len(tok)-2; i++ {
		dst = append(dst, gramHash(at(i), at(i+1), at(i+2)))
	}
	return dst
}

// elemCache caches each interned token's element hashes. The cache is
// keyed on the intern ID purely for lookup speed — the hashes themselves
// derive from the token string, so two processes with different intern
// histories still compute identical signatures.
var elemCache struct {
	mu   sync.RWMutex
	byID [][]uint64
}

// elemsOf returns the (immutable) element hashes of tok, cached per
// interned token.
func elemsOf(tok string) []uint64 {
	id, ok := strsim.Intern(tok)
	if ok {
		elemCache.mu.RLock()
		var e []uint64
		if int(id) < len(elemCache.byID) {
			e = elemCache.byID[id]
		}
		elemCache.mu.RUnlock()
		if e != nil {
			return e
		}
	}
	e := appendTokenElems(make([]uint64, 0, len(tok)+3), tok)
	if ok {
		elemCache.mu.Lock()
		for int(id) >= len(elemCache.byID) {
			grow := len(elemCache.byID)*2 + 64
			next := make([][]uint64, grow)
			copy(next, elemCache.byID)
			elemCache.byID = next
		}
		elemCache.byID[id] = e
		elemCache.mu.Unlock()
	}
	return e
}

// Signature computes the MinHash signature of a normalized label into sig
// (reused when capacity allows). It returns nil when the label has no
// tokens — such labels carry no retrievable content and are not indexed.
func (h *Hasher) Signature(normLabel string, sig []uint64) []uint64 {
	k := h.p.Bands * h.p.Rows
	if cap(sig) < k {
		sig = make([]uint64, k)
	}
	sig = sig[:k]
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	any := false
	for _, tok := range strings.Fields(normLabel) {
		for _, e := range elemsOf(tok) {
			any = true
			for i := 0; i < k; i++ {
				if v := mix(e, h.a[i], h.b[i]); v < sig[i] {
					sig[i] = v
				}
			}
		}
	}
	if !any {
		return nil
	}
	return sig
}

// AppendBandKeys folds the signature into one bucket key per band and
// appends them to dst. The band position is mixed into the key so equal
// row values in different bands never share a bucket.
func (h *Hasher) AppendBandKeys(dst []uint64, sig []uint64) []uint64 {
	r := h.p.Rows
	for j := 0; j < h.p.Bands; j++ {
		x := uint64(fnvOffset) ^ uint64(j+1)*0x9E3779B97F4A7C15
		for i := j * r; i < (j+1)*r; i++ {
			x = (x ^ sig[i]) * fnvPrime
		}
		x ^= x >> 33
		dst = append(dst, x)
	}
	return dst
}

// sigScratch recycles the signature and band-key buffers of Add and Query.
type sigScratch struct {
	sig  []uint64
	keys []uint64
}

var scratchPool = sync.Pool{New: func() any { return &sigScratch{} }}

// Index is an incremental banded LSH index over documents identified by
// caller-chosen int IDs. All methods are safe for concurrent use.
type Index struct {
	h  *Hasher
	mu sync.RWMutex
	// bands[j] maps a band-j bucket key to the documents filed under it,
	// in insertion order.
	bands []map[uint64][]int
	adds  int
}

// NewIndex returns an empty index with its own hasher.
func NewIndex(p Params) *Index {
	h := NewHasher(p)
	ix := &Index{h: h, bands: make([]map[uint64][]int, h.p.Bands)}
	for j := range ix.bands {
		ix.bands[j] = make(map[uint64][]int)
	}
	return ix
}

// Hasher returns the index's hasher (shared, immutable).
func (ix *Index) Hasher() *Hasher { return ix.h }

// Len returns the number of (doc, label) pairs added.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.adds
}

// Add files doc under the band buckets of the normalized label. Adding the
// same doc under several labels is allowed (Query deduplicates); labels
// with no tokens are ignored.
func (ix *Index) Add(doc int, normLabel string) {
	sc := scratchPool.Get().(*sigScratch)
	defer scratchPool.Put(sc)
	sig := ix.h.Signature(normLabel, sc.sig)
	if sig == nil {
		return
	}
	sc.sig = sig
	keys := ix.h.AppendBandKeys(sc.keys[:0], sig)
	sc.keys = keys
	ix.mu.Lock()
	for j, key := range keys {
		ix.bands[j][key] = append(ix.bands[j][key], doc)
	}
	ix.adds++
	ix.mu.Unlock()
}

// Query returns the sorted, deduplicated documents sharing at least one
// band bucket with the normalized label. A label with no tokens has no
// candidates.
func (ix *Index) Query(normLabel string) []int {
	return ix.AppendQuery(nil, normLabel)
}

// AppendQuery is Query appending into dst (overwritten, reused when
// capacity allows).
func (ix *Index) AppendQuery(dst []int, normLabel string) []int {
	dst = dst[:0]
	sc := scratchPool.Get().(*sigScratch)
	defer scratchPool.Put(sc)
	sig := ix.h.Signature(normLabel, sc.sig)
	if sig == nil {
		return dst
	}
	sc.sig = sig
	keys := ix.h.AppendBandKeys(sc.keys[:0], sig)
	sc.keys = keys
	ix.mu.RLock()
	for j, key := range keys {
		dst = append(dst, ix.bands[j][key]...)
	}
	ix.mu.RUnlock()
	sort.Ints(dst)
	// In-place dedup of the sorted candidates.
	out := dst[:0]
	for i, d := range dst {
		if i > 0 && dst[i-1] == d {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Clone returns an independent deep copy sharing only the immutable
// hasher.
func (ix *Index) Clone() *Index {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	nc := &Index{h: ix.h, bands: make([]map[uint64][]int, len(ix.bands)), adds: ix.adds}
	for j, m := range ix.bands {
		nm := make(map[uint64][]int, len(m))
		for key, ids := range m {
			nm[key] = append([]int(nil), ids...)
		}
		nc.bands[j] = nm
	}
	return nc
}
