package lsh

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestSignatureDeterminism: same label, same params → identical signatures
// and band keys, across hashers and regardless of intern-cache state.
func TestSignatureDeterminism(t *testing.T) {
	h1 := NewHasher(DefaultParams())
	h2 := NewHasher(DefaultParams())
	labels := []string{"aaron rodgers", "green bay packers", "yesterday", "x"}
	for _, l := range labels {
		s1 := h1.Signature(l, nil)
		s2 := h2.Signature(l, nil)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("signatures differ for %q", l)
		}
		k1 := h1.AppendBandKeys(nil, s1)
		k2 := h2.AppendBandKeys(nil, s2)
		if !reflect.DeepEqual(k1, k2) {
			t.Fatalf("band keys differ for %q", l)
		}
		if len(k1) != h1.Params().Bands {
			t.Fatalf("got %d band keys, want %d", len(k1), h1.Params().Bands)
		}
	}
	if h1.Signature("", nil) != nil || h1.Signature("   ", nil) != nil {
		t.Fatal("tokenless labels must yield a nil signature")
	}
	// A different seed must produce a different family.
	h3 := NewHasher(Params{Seed: 99})
	if reflect.DeepEqual(h1.Signature("aaron rodgers", nil), h3.Signature("aaron rodgers", nil)) {
		t.Fatal("different seeds produced identical signatures")
	}
}

// TestIndexRecall: fuzzy variants (edit distance 1) of indexed labels must
// retrieve their originals essentially always at default parameters, and
// unrelated labels must not flood the candidate set.
func TestIndexRecall(t *testing.T) {
	ix := NewIndex(DefaultParams())
	rng := rand.New(rand.NewSource(7))
	base := make([]string, 400)
	for i := range base {
		base[i] = fmt.Sprintf("%s %s%d", randWord(rng, 6+rng.Intn(4)), randWord(rng, 5+rng.Intn(5)), i)
		ix.Add(i, base[i])
	}
	found, queries := 0, 0
	unrelatedHits := 0
	for i, l := range base {
		// One-character deletion in the longest token.
		variant := mutate(l)
		queries++
		for _, d := range ix.Query(variant) {
			if d == i {
				found++
				break
			}
		}
		unrelatedHits += len(ix.Query(fmt.Sprintf("%s %s", randWord(rng, 8), randWord(rng, 8))))
	}
	if recall := float64(found) / float64(queries); recall < 0.97 {
		t.Fatalf("distance-1 recall = %.3f, want >= 0.97", recall)
	}
	if avg := float64(unrelatedHits) / float64(queries); avg > 5 {
		t.Fatalf("unrelated queries average %.1f candidates, want <= 5", avg)
	}
}

// TestIndexQuerySortedDedup: multi-label docs and shared buckets must not
// produce duplicates or unsorted output.
func TestIndexQuerySortedDedup(t *testing.T) {
	ix := NewIndex(DefaultParams())
	ix.Add(3, "aaron rodgers")
	ix.Add(3, "aaron charles rodgers")
	ix.Add(1, "aaron rodgers qb")
	got := ix.Query("aaron rodgers")
	for i, d := range got {
		if i > 0 && got[i-1] >= d {
			t.Fatalf("query result not sorted/deduped: %v", got)
		}
	}
	if len(got) == 0 || got[len(got)-1] != 3 {
		t.Fatalf("expected doc 3 among candidates, got %v", got)
	}
}

// TestIndexClone: a clone answers identically and is isolated from the
// original afterwards.
func TestIndexClone(t *testing.T) {
	ix := NewIndex(DefaultParams())
	for i, l := range []string{"alpha beta", "alpha gamma", "delta"} {
		ix.Add(i, l)
	}
	cl := ix.Clone()
	if !reflect.DeepEqual(ix.Query("alpha beta"), cl.Query("alpha beta")) {
		t.Fatal("clone answers differ")
	}
	cl.Add(99, "alpha beta")
	for _, d := range ix.Query("alpha beta") {
		if d == 99 {
			t.Fatal("clone add leaked into the original")
		}
	}
	if cl.Len() != ix.Len()+1 {
		t.Fatalf("clone len = %d, original = %d", cl.Len(), ix.Len())
	}
}

// TestIndexConcurrent exercises concurrent Add and Query under -race.
func TestIndexConcurrent(t *testing.T) {
	ix := NewIndex(DefaultParams())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ix.Add(w*100+i, fmt.Sprintf("label %d %d", w, i))
				ix.Query(fmt.Sprintf("label %d %d", w, i/2))
			}
		}(w)
	}
	wg.Wait()
	if ix.Len() != 400 {
		t.Fatalf("len = %d, want 400", ix.Len())
	}
}

func randWord(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// mutate drops one middle character of the longest token.
func mutate(label string) string {
	longest, at := "", -1
	start := 0
	for i := 0; i <= len(label); i++ {
		if i == len(label) || label[i] == ' ' {
			if i-start > len(longest) {
				longest, at = label[start:i], start
			}
			start = i + 1
		}
	}
	if len(longest) < 3 {
		return label
	}
	cut := at + len(longest)/2
	return label[:cut] + label[cut+1:]
}
