package match

import (
	"sort"

	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/ml"
	"repro/internal/webtable"
)

// Model holds the learned attribute-to-property matching parameters for one
// class: matcher weights (aggregated by weighted average) and per-property
// score thresholds.
type Model struct {
	Class kb.ClassID
	// MatcherNames records the matcher order the weights refer to.
	MatcherNames []string
	// Weights is the learned weight per matcher (sums to 1).
	Weights []float64
	// PropThresholds maps each property to its learned acceptance
	// threshold; properties absent from the map use DefaultThreshold.
	PropThresholds map[kb.PropertyID]float64
	// DefaultThreshold applies to properties without a learned threshold.
	DefaultThreshold float64
}

// DefaultModel returns an unlearned model with uniform weights over the
// given matchers and a moderate default threshold.
func DefaultModel(class kb.ClassID, matchers []Matcher) *Model {
	m := &Model{
		Class:            class,
		PropThresholds:   make(map[kb.PropertyID]float64),
		DefaultThreshold: 0.5,
	}
	for _, mt := range matchers {
		m.MatcherNames = append(m.MatcherNames, mt.Name())
		m.Weights = append(m.Weights, 1/float64(len(matchers)))
	}
	return m
}

// Score aggregates the matcher scores for (table, col, prop) by weighted
// average.
func (m *Model) Score(ctx *Context, matchers []Matcher, t *webtable.Table, col int, prop kb.Property) float64 {
	var s float64
	for i, mt := range matchers {
		s += m.Weights[i] * mt.Score(ctx, t, col, prop)
	}
	return s
}

func (m *Model) threshold(pid kb.PropertyID) float64 {
	if th, ok := m.PropThresholds[pid]; ok {
		return th
	}
	return m.DefaultThreshold
}

// Correspondence is one matched column with its aggregated score.
type Correspondence struct {
	Property kb.PropertyID
	Score    float64
}

// MatchAttributes matches every non-label column of the table against the
// candidate properties of the table's class. A column is matched to the
// property with the highest aggregated score, provided that score exceeds
// the property's threshold. The result maps column index to property ID.
func MatchAttributes(ctx *Context, m *Model, matchers []Matcher, t *webtable.Table) map[int]kb.PropertyID {
	scored := MatchAttributesScored(ctx, m, matchers, t)
	out := make(map[int]kb.PropertyID, len(scored))
	for c, corr := range scored {
		out[c] = corr.Property
	}
	return out
}

// MatchAttributesScored is MatchAttributes but retains the aggregated
// matching score per column (used by the MATCHING fusion scoring).
func MatchAttributesScored(ctx *Context, m *Model, matchers []Matcher, t *webtable.Table) map[int]Correspondence {
	if t.ColKinds == nil {
		DetectColumnKinds(t)
	}
	out := make(map[int]Correspondence)
	schema := ctx.KB.Schema(ctx.Class)
	for c := 0; c < t.NumCols(); c++ {
		if c == t.LabelCol {
			continue
		}
		bestProp := kb.PropertyID("")
		bestScore := 0.0
		for _, prop := range schema {
			if !typeCompatible(t.ColKinds[c], prop.Kind) {
				continue
			}
			s := m.Score(ctx, matchers, t, c, prop)
			if s > bestScore {
				bestScore, bestProp = s, prop.ID
			}
		}
		if bestProp != "" && bestScore >= m.threshold(bestProp) {
			out[c] = Correspondence{Property: bestProp, Score: bestScore}
		}
	}
	return out
}

// Example is one labeled attribute for learning: a (table, column) with its
// correct property ("" when the column maps to no property).
type Example struct {
	Table *webtable.Table
	Col   int
	Want  kb.PropertyID
}

// Learn fits matcher weights (genetic algorithm, maximizing F1 on the
// learning set) and per-property thresholds for one class.
func Learn(ctx *Context, matchers []Matcher, class kb.ClassID, examples []Example, seed int64) *Model {
	model := DefaultModel(class, matchers)
	if len(examples) == 0 {
		return model
	}
	ctx2 := *ctx
	ctx2.Class = class

	// Precompute matcher scores per (example, property) once; the GA then
	// only re-aggregates.
	schema := ctx.KB.Schema(class)
	type propScores struct {
		pid kb.PropertyID
		row []float64 // per matcher
	}
	type scored struct {
		want   kb.PropertyID
		scores []propScores // candidate properties in schema order
	}
	data := make([]scored, 0, len(examples))
	for _, ex := range examples {
		if ex.Table.ColKinds == nil {
			DetectColumnKinds(ex.Table)
		}
		sc := scored{want: ex.Want}
		for _, prop := range schema {
			if !typeCompatible(ex.Table.ColKinds[ex.Col], prop.Kind) {
				continue
			}
			row := make([]float64, len(matchers))
			for i, mt := range matchers {
				row[i] = mt.Score(&ctx2, ex.Table, ex.Col, prop)
			}
			sc.scores = append(sc.scores, propScores{pid: prop.ID, row: row})
		}
		data = append(data, sc)
	}

	// Candidates are visited in schema order so exact score ties resolve
	// identically on every run (map iteration order must not leak in).
	aggregate := func(weights []float64, sc scored) (kb.PropertyID, float64) {
		best, bestS := kb.PropertyID(""), 0.0
		for _, ps := range sc.scores {
			var s float64
			for i := range ps.row {
				s += weights[i] * ps.row[i]
			}
			if s > bestS {
				bestS, best = s, ps.pid
			}
		}
		return best, bestS
	}

	// Fitness: F1 of attribute matching with a single provisional
	// threshold gene; the per-property thresholds are refined afterwards.
	fitness := func(genes []float64) float64 {
		weights := ml.NormalizeWeights(genes[:len(matchers)])
		th := genes[len(matchers)]
		tp, fp, fn := 0, 0, 0
		for _, sc := range data {
			got, s := aggregate(weights, sc)
			if s < th {
				got = ""
			}
			switch {
			case got != "" && got == sc.want:
				tp++
			case got != "" && got != sc.want:
				fp++
				if sc.want != "" {
					fn++
				}
			case got == "" && sc.want != "":
				fn++
			}
		}
		return f1(tp, fp, fn)
	}
	genes, _ := ml.Optimize(ml.GAConfig{
		Genes: len(matchers) + 1, Seed: seed, Generations: 40, Population: 40,
	}, fitness)
	model.Weights = ml.NormalizeWeights(genes[:len(matchers)])

	// Per-property threshold: sweep candidate thresholds over the scores
	// observed for that property and keep the F1-maximizing one.
	type obs struct {
		score   float64
		correct bool
	}
	perProp := make(map[kb.PropertyID][]obs)
	positives := make(map[kb.PropertyID]int)
	for _, sc := range data {
		got, s := aggregate(model.Weights, sc)
		if got != "" {
			perProp[got] = append(perProp[got], obs{score: s, correct: got == sc.want})
		}
		if sc.want != "" {
			positives[sc.want]++
		}
	}
	for pid, list := range perProp {
		sort.Slice(list, func(i, j int) bool { return list[i].score < list[j].score })
		bestTh, bestF1 := model.DefaultThreshold, -1.0
		for k := 0; k <= len(list); k++ {
			var th float64
			if k == len(list) {
				th = list[len(list)-1].score + 1e-9
			} else {
				th = list[k].score
			}
			tp, fp := 0, 0
			for _, o := range list {
				if o.score >= th {
					if o.correct {
						tp++
					} else {
						fp++
					}
				}
			}
			fn := positives[pid] - tp
			if f := f1(tp, fp, fn); f > bestF1 {
				bestF1, bestTh = f, th
			}
		}
		model.PropThresholds[pid] = bestTh
	}
	return model
}

// EvaluateAttributes computes precision, recall and F1 of an attribute
// mapping against labeled examples.
func EvaluateAttributes(ctx *Context, m *Model, matchers []Matcher, examples []Example) (p, r, f float64) {
	tp, fp, fn := 0, 0, 0
	for _, ex := range examples {
		got := matchOne(ctx, m, matchers, ex.Table, ex.Col)
		switch {
		case got != "" && got == ex.Want:
			tp++
		case got != "" && got != ex.Want:
			fp++
			if ex.Want != "" {
				fn++
			}
		case got == "" && ex.Want != "":
			fn++
		}
	}
	return precision(tp, fp), recall(tp, fn), f1(tp, fp, fn)
}

func matchOne(ctx *Context, m *Model, matchers []Matcher, t *webtable.Table, col int) kb.PropertyID {
	if t.ColKinds == nil {
		DetectColumnKinds(t)
	}
	bestProp := kb.PropertyID("")
	bestScore := 0.0
	for _, prop := range ctx.KB.Schema(ctx.Class) {
		if !typeCompatible(t.ColKinds[col], prop.Kind) {
			continue
		}
		s := m.Score(ctx, matchers, t, col, prop)
		if s > bestScore {
			bestScore, bestProp = s, prop.ID
		}
	}
	if bestProp == "" || bestScore < m.threshold(bestProp) {
		return ""
	}
	return bestProp
}

// ExtractRowValues parses, for one row, the typed values of all matched
// columns according to the knowledge base schema ("these values are
// required to create descriptions for new instances"). After matching, the
// data type of the attribute is the data type of the matched property and
// values are normalized accordingly.
func ExtractRowValues(ctx *Context, t *webtable.Table, row int, mapping map[int]kb.PropertyID) map[kb.PropertyID]dtype.Value {
	out := make(map[kb.PropertyID]dtype.Value)
	for col, pid := range mapping {
		prop, ok := ctx.KB.Property(ctx.Class, pid)
		if !ok {
			continue
		}
		if v, ok := dtype.Parse(t.Cell(row, col), prop.Kind); ok {
			out[pid] = v
		}
	}
	return out
}

func precision(tp, fp int) float64 {
	if tp+fp == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fp)
}

func recall(tp, fn int) float64 {
	if tp+fn == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fn)
}

func f1(tp, fp, fn int) float64 {
	p, r := precision(tp, fp), recall(tp, fn)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
