// Package match implements the schema matching step of the pipeline (§3.1):
// data type detection, label attribute detection, table-to-class matching,
// and attribute-to-property matching with five matchers (KB-Overlap,
// KB-Label, KB-Duplicate, WT-Label, WT-Duplicate) aggregated by a learned
// weighted average with per-property thresholds.
package match

import (
	"sync"

	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/webtable"
)

// ColRef addresses one attribute column of one table.
type ColRef struct {
	Table int
	Col   int
}

// Context carries the inputs available to the matchers. The duplicate-based
// matchers (KB-Duplicate, WT-Duplicate) and WT-Label additionally need the
// outputs of a previous pipeline iteration; those fields are nil during the
// first iteration and the corresponding matchers then score zero.
type Context struct {
	KB     *kb.KB
	Corpus *webtable.Corpus
	// Class is the class the current table was matched to.
	Class kb.ClassID

	// RowInstance maps rows to existing KB instances (output of the new
	// detection component of the previous iteration).
	RowInstance map[webtable.RowRef]kb.InstanceID
	// RowCluster maps rows to cluster IDs (output of the row clustering
	// of the previous iteration).
	RowCluster map[webtable.RowRef]int
	// Prelim is the preliminary attribute-to-property mapping from the
	// previous matching run.
	Prelim map[ColRef]kb.PropertyID

	// Thresholds are the data-type equivalence thresholds in effect.
	Thresholds dtype.Thresholds

	// caches holds the lazily built matcher caches behind a mutex, so
	// matching may run for many tables concurrently over one context. The
	// pointer is shared by shallow copies of the context (e.g. the copy
	// Learn takes), never across iteration boundaries.
	caches *ctxCaches
}

// ctxCaches bundles the lazily built caches of one matching context. All
// three are built under mu; readers take the shared lock so cache hits on
// the matching hot path do not serialize the worker pool.
//
// The KB property profiles depend on the KB's instances, which may grow
// between ingest epochs (the engine writes new entities back). kbVersion
// records the kb.Version the profiles were built at; a version mismatch
// drops them so they are rebuilt over the grown KB. The KB must not grow
// while a matching pass is in flight — the engine only writes back after
// its iterations complete, so invalidation happens between passes.
type ctxCaches struct {
	mu         sync.RWMutex
	kbVersion  uint64
	kbProfiles map[kb.ClassID]map[kb.PropertyID]*propProfile
	wtLabels   map[kb.PropertyID]map[string]float64
	wtDone     bool
	clusterVal map[clusterPropKey][]tableValue
}

// tableValue is a parsed cell value tagged with the table it came from.
type tableValue struct {
	v     dtype.Value
	table int
}

// NewContext builds a first-iteration context.
func NewContext(k *kb.KB, corpus *webtable.Corpus) *Context {
	return &Context{
		KB:         k,
		Corpus:     corpus,
		Thresholds: dtype.DefaultThresholds(),
		caches:     &ctxCaches{},
	}
}

// WithIterationOutput returns a copy of the context enriched with the
// outputs of a previous pipeline iteration, enabling the duplicate-based
// and corpus-based matchers.
func (c *Context) WithIterationOutput(
	rowInstance map[webtable.RowRef]kb.InstanceID,
	rowCluster map[webtable.RowRef]int,
	prelim map[ColRef]kb.PropertyID,
) *Context {
	out := *c
	out.RowInstance = rowInstance
	out.RowCluster = rowCluster
	out.Prelim = prelim
	// Fresh caches for the parts that depend on iteration outputs (label
	// statistics, cluster value pool); the KB property profiles depend
	// only on the immutable KB and carry over. They are copied into the
	// new cache struct rather than aliased, so each context's mutex
	// guards its own maps.
	out.caches = c.caches.deriveWithProfiles()
	return &out
}

// deriveWithProfiles returns a fresh cache struct seeded with a copy of
// the already-built KB property profiles (the profiles themselves are
// immutable once built and safe to share). The recorded KB version carries
// over, so a stale profile set is still dropped on first use.
func (cc *ctxCaches) deriveWithProfiles() *ctxCaches {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	nc := &ctxCaches{kbVersion: cc.kbVersion}
	if cc.kbProfiles != nil {
		nc.kbProfiles = make(map[kb.ClassID]map[kb.PropertyID]*propProfile, len(cc.kbProfiles))
		for class, byProp := range cc.kbProfiles {
			m := make(map[kb.PropertyID]*propProfile, len(byProp))
			for pid, p := range byProp {
				m[pid] = p
			}
			nc.kbProfiles[class] = m
		}
	}
	return nc
}

type clusterPropKey struct {
	cluster int
	prop    kb.PropertyID
}
