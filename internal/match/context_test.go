package match

import (
	"testing"

	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/webtable"
)

func addPlayer(k *kb.KB, name, pos string) {
	k.AddInstance(&kb.Instance{
		Class:  kb.ClassGFPlayer,
		Labels: []string{name},
		Facts: map[kb.PropertyID]dtype.Value{
			"dbo:position": dtype.NewNominal(pos),
		},
	})
}

// TestProfileCacheInvalidatesOnKBGrowth is the engine's cache contract:
// a context built before a KB write-back must rebuild its property
// profiles over the grown instance set instead of serving stale ones.
func TestProfileCacheInvalidatesOnKBGrowth(t *testing.T) {
	k := kb.New()
	addPlayer(k, "Amos Quill", "QB")
	ctx := NewContext(k, webtable.NewCorpus(nil))

	p1 := ctx.profile(kb.ClassGFPlayer, "dbo:position")
	if p1 == nil || p1.n != 1 {
		t.Fatalf("initial profile n = %v", p1)
	}
	if again := ctx.profile(kb.ClassGFPlayer, "dbo:position"); again != p1 {
		t.Error("stable KB: profile should be served from cache")
	}

	addPlayer(k, "Barton Hedge", "TE")
	p2 := ctx.profile(kb.ClassGFPlayer, "dbo:position")
	if p2 == p1 {
		t.Fatal("profile not invalidated after KB growth")
	}
	if p2.n != 2 {
		t.Errorf("rebuilt profile covers %d facts, want 2", p2.n)
	}

	// A context derived via WithIterationOutput inherits the version stamp
	// and keeps serving the (still valid) rebuilt profiles.
	derived := ctx.WithIterationOutput(nil, nil, nil)
	if p3 := derived.profile(kb.ClassGFPlayer, "dbo:position"); p3 != p2 {
		t.Error("derived context dropped still-valid profiles")
	}
}
