package match

import (
	"repro/internal/dtype"
	"repro/internal/strsim"
	"repro/internal/webtable"
)

// EnsureDetected runs column-kind and label-attribute detection on a
// table unless both have already run. The skip-when-done guards are
// load-bearing for concurrency: once a corpus is prepared (e.g. by
// report.Suite), EnsureDetected never writes, so tables may be shared
// across worker pools. Callers that touch a table before matching should
// go through this instead of hand-rolling the guard pair.
func EnsureDetected(t *webtable.Table) {
	if t.ColKinds == nil {
		DetectColumnKinds(t)
	}
	if t.LabelCol < 0 {
		DetectLabelColumn(t)
	}
}

// DetectColumnKinds assigns each column of the table one of the three
// coarse detection types (Text, Date, Quantity) by majority vote over its
// non-empty cells, and stores the result in t.ColKinds.
func DetectColumnKinds(t *webtable.Table) []dtype.Kind {
	kinds := make([]dtype.Kind, t.NumCols())
	for c := 0; c < t.NumCols(); c++ {
		counts := make(map[dtype.Kind]int)
		for r := 0; r < t.NumRows(); r++ {
			k := dtype.DetectKind(t.Cell(r, c))
			if k != dtype.Unknown {
				counts[k]++
			}
		}
		best, bestN := dtype.Unknown, 0
		// Deterministic priority on ties: Text > Date > Quantity.
		for _, k := range []dtype.Kind{dtype.Text, dtype.Date, dtype.Quantity} {
			if counts[k] > bestN {
				best, bestN = k, counts[k]
			}
		}
		kinds[c] = best
	}
	t.ColKinds = kinds
	return kinds
}

// DetectLabelColumn finds the label attribute of a table: the column with
// detected type Text and the highest number of unique values; ties break to
// the leftmost column. It stores the result in t.LabelCol and returns it
// (-1 when the table has no text column).
func DetectLabelColumn(t *webtable.Table) int {
	if t.ColKinds == nil {
		DetectColumnKinds(t)
	}
	best, bestUnique := -1, -1
	for c := 0; c < t.NumCols(); c++ {
		if t.ColKinds[c] != dtype.Text {
			continue
		}
		uniq := make(map[string]bool)
		for r := 0; r < t.NumRows(); r++ {
			if s := strsim.Normalize(t.Cell(r, c)); s != "" {
				uniq[s] = true
			}
		}
		// Strictly-greater comparison keeps the leftmost column on ties.
		if len(uniq) > bestUnique {
			best, bestUnique = c, len(uniq)
		}
	}
	t.LabelCol = best
	return best
}
