package match

import (
	"testing"

	"repro/internal/kb"
	"repro/internal/webtable"
)

func TestLearnEmptyExamples(t *testing.T) {
	w, corpus := testWorld()
	ctx := NewContext(w.KB, corpus)
	m := Learn(ctx, FirstIterationMatchers(), kb.ClassGFPlayer, nil, 1)
	if m == nil || len(m.Weights) != 2 {
		t.Fatalf("empty-example model = %+v", m)
	}
	// Uniform fallback weights.
	if m.Weights[0] != 0.5 || m.Weights[1] != 0.5 {
		t.Errorf("weights = %v, want uniform", m.Weights)
	}
}

func TestLearnedThresholdsBlockWeakMatches(t *testing.T) {
	w, corpus := testWorld()
	ctx := NewContext(w.KB, corpus)
	ctx.Class = kb.ClassGFPlayer
	matchers := FirstIterationMatchers()

	// Build examples: real position columns plus junk columns annotated
	// as mapping to nothing.
	var examples []Example
	for _, tbl := range corpus.Tables {
		if tbl.Truth == nil || tbl.Truth.Class != kb.ClassGFPlayer {
			continue
		}
		DetectColumnKinds(tbl)
		for c, pid := range tbl.Truth.ColProperty {
			if c == 0 {
				continue
			}
			examples = append(examples, Example{Table: tbl, Col: c, Want: pid})
		}
	}
	if len(examples) < 8 {
		t.Skip("not enough examples")
	}
	m := Learn(ctx, matchers, kb.ClassGFPlayer, examples, 2)

	// A junk column (rank numbers) must not be matched to any property.
	junk := &webtable.Table{
		ID:       99999,
		Headers:  []string{"Player", "Rank"},
		Cells:    [][]string{{"Nobody Special", "1"}, {"Someone Else", "2"}},
		LabelCol: 0,
	}
	DetectColumnKinds(junk)
	got := MatchAttributes(ctx, m, matchers, junk)
	if pid, ok := got[1]; ok && pid != "" {
		// Rank 1,2 could plausibly hit draftRound; tolerate only that.
		if pid != "dbo:draftRound" && pid != "dbo:draftPick" && pid != "dbo:number" {
			t.Errorf("junk column matched to %s", pid)
		}
	}
}

func TestCorrespondenceScores(t *testing.T) {
	w, corpus := testWorld()
	ctx := NewContext(w.KB, corpus)
	ctx.Class = kb.ClassGFPlayer
	matchers := FirstIterationMatchers()
	model := DefaultModel(kb.ClassGFPlayer, matchers)
	model.DefaultThreshold = 0.4
	tb := playerTable()
	DetectColumnKinds(tb)
	DetectLabelColumn(tb)
	scored := MatchAttributesScored(ctx, model, matchers, tb)
	for col, corr := range scored {
		if corr.Score < model.DefaultThreshold || corr.Score > 1 {
			t.Errorf("column %d score %v out of range", col, corr.Score)
		}
		if corr.Property == "" {
			t.Errorf("column %d matched to empty property", col)
		}
	}
	// Scored and unscored variants agree on the mapping.
	plain := MatchAttributes(ctx, model, matchers, tb)
	if len(plain) != len(scored) {
		t.Fatalf("scored (%d) and plain (%d) mappings differ", len(scored), len(plain))
	}
	for col, pid := range plain {
		if scored[col].Property != pid {
			t.Errorf("column %d: %s vs %s", col, scored[col].Property, pid)
		}
	}
}

func TestDefaultModelThresholdLookup(t *testing.T) {
	m := DefaultModel(kb.ClassSong, FirstIterationMatchers())
	if th := m.threshold("dbo:genre"); th != m.DefaultThreshold {
		t.Errorf("unlearned property threshold = %v", th)
	}
	m.PropThresholds["dbo:genre"] = 0.9
	if th := m.threshold("dbo:genre"); th != 0.9 {
		t.Errorf("learned property threshold = %v", th)
	}
}
