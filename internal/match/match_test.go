package match

import (
	"sync"
	"testing"

	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/webtable"
	"repro/internal/world"
)

var (
	worldOnce sync.Once
	sharedW   *world.World
	sharedC   *webtable.Corpus
)

func testWorld() (*world.World, *webtable.Corpus) {
	worldOnce.Do(func() {
		sharedW = world.Generate(world.DefaultConfig(0.2))
		sharedC = webtable.Synthesize(sharedW, webtable.DefaultSynthConfig(0.1))
	})
	return sharedW, sharedC
}

func playerTable() *webtable.Table {
	return &webtable.Table{
		ID:      0,
		Headers: []string{"Player", "Position", "Weight", "Born"},
		Cells: [][]string{
			{"Tom Brady", "QB", "225", "August 3, 1977"},
			{"Joe Montana", "QB", "200", "June 11, 1956"},
			{"Jerry Rice", "WR", "200", "October 13, 1962"},
		},
		LabelCol: -1,
	}
}

func TestDetectColumnKinds(t *testing.T) {
	tb := playerTable()
	kinds := DetectColumnKinds(tb)
	want := []dtype.Kind{dtype.Text, dtype.Text, dtype.Quantity, dtype.Date}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("column %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestDetectColumnKindsMajority(t *testing.T) {
	tb := &webtable.Table{
		Headers: []string{"A", "B"},
		Cells: [][]string{
			{"12", "x"}, {"34", "y"}, {"abc", "z"},
		},
	}
	kinds := DetectColumnKinds(tb)
	if kinds[0] != dtype.Quantity {
		t.Errorf("majority-numeric column = %v, want Quantity", kinds[0])
	}
	// Empty cells are ignored in the vote.
	tb2 := &webtable.Table{
		Headers: []string{"A", "B"},
		Cells:   [][]string{{"", "x"}, {"", "y"}, {"7", "z"}},
	}
	if DetectColumnKinds(tb2)[0] != dtype.Quantity {
		t.Error("empty cells should not vote")
	}
}

func TestDetectLabelColumn(t *testing.T) {
	tb := playerTable()
	if got := DetectLabelColumn(tb); got != 0 {
		t.Errorf("label column = %d, want 0 (most unique text values)", got)
	}
	// Position has fewer unique values than Player.
	if tb.LabelCol != 0 {
		t.Error("LabelCol not stored")
	}
}

func TestDetectLabelColumnTieBreaksLeft(t *testing.T) {
	tb := &webtable.Table{
		Headers: []string{"A", "B"},
		Cells:   [][]string{{"x", "p"}, {"y", "q"}},
	}
	if got := DetectLabelColumn(tb); got != 0 {
		t.Errorf("tie should break to leftmost, got %d", got)
	}
}

func TestDetectLabelColumnNoText(t *testing.T) {
	tb := &webtable.Table{
		Headers: []string{"A", "B"},
		Cells:   [][]string{{"1", "2"}, {"3", "4"}},
	}
	if got := DetectLabelColumn(tb); got != -1 {
		t.Errorf("numeric-only table label column = %d, want -1", got)
	}
}

func TestTypeCompatible(t *testing.T) {
	cases := []struct {
		col, prop dtype.Kind
		want      bool
	}{
		{dtype.Text, dtype.InstanceReference, true},
		{dtype.Text, dtype.NominalString, true},
		{dtype.Text, dtype.Text, true},
		{dtype.Text, dtype.Quantity, false},
		{dtype.Quantity, dtype.Quantity, true},
		{dtype.Quantity, dtype.NominalInteger, true},
		{dtype.Quantity, dtype.Date, false},
		{dtype.Date, dtype.Date, true},
		{dtype.Date, dtype.Quantity, true},
		{dtype.Date, dtype.NominalInteger, true},
		{dtype.Date, dtype.Text, false},
		{dtype.Unknown, dtype.Text, false},
	}
	for _, c := range cases {
		if got := typeCompatible(c.col, c.prop); got != c.want {
			t.Errorf("typeCompatible(%v,%v) = %v, want %v", c.col, c.prop, got, c.want)
		}
	}
}

func TestKBLabelMatcher(t *testing.T) {
	w, corpus := testWorld()
	ctx := NewContext(w.KB, corpus)
	ctx.Class = kb.ClassGFPlayer
	tb := playerTable()
	DetectColumnKinds(tb)
	posProp, _ := w.KB.Property(kb.ClassGFPlayer, "dbo:position")
	teamProp, _ := w.KB.Property(kb.ClassGFPlayer, "dbo:team")
	m := kbLabel{}
	sPos := m.Score(ctx, tb, 1, posProp)
	sTeam := m.Score(ctx, tb, 1, teamProp)
	if sPos <= sTeam {
		t.Errorf("header 'Position' should score higher for position (%v) than team (%v)", sPos, sTeam)
	}
	if sPos < 0.9 {
		t.Errorf("near-exact header similarity = %v", sPos)
	}
}

func TestKBOverlapMatcher(t *testing.T) {
	w, corpus := testWorld()
	ctx := NewContext(w.KB, corpus)
	ctx.Class = kb.ClassGFPlayer
	tb := playerTable()
	DetectColumnKinds(tb)
	m := kbOverlap{}
	posProp, _ := w.KB.Property(kb.ClassGFPlayer, "dbo:position")
	weightProp, _ := w.KB.Property(kb.ClassGFPlayer, "dbo:weight")
	// "QB"/"WR" are in the KB's position vocabulary.
	if s := m.Score(ctx, tb, 1, posProp); s < 0.9 {
		t.Errorf("position overlap = %v, want high", s)
	}
	// Weights 200-225 lie in the KB weight range.
	if s := m.Score(ctx, tb, 2, weightProp); s < 0.9 {
		t.Errorf("weight overlap = %v, want high", s)
	}
	// A column of implausible values scores low.
	bad := &webtable.Table{
		Headers:  []string{"Player", "Weight"},
		Cells:    [][]string{{"X", "99999"}, {"Y", "88888"}},
		LabelCol: 0,
	}
	DetectColumnKinds(bad)
	if s := m.Score(ctx, bad, 1, weightProp); s > 0.1 {
		t.Errorf("implausible weight overlap = %v, want ~0", s)
	}
}

func TestDuplicateMatchersNeedIterationOutput(t *testing.T) {
	w, corpus := testWorld()
	ctx := NewContext(w.KB, corpus)
	ctx.Class = kb.ClassGFPlayer
	tb := playerTable()
	DetectColumnKinds(tb)
	prop, _ := w.KB.Property(kb.ClassGFPlayer, "dbo:position")
	if s := (kbDuplicate{}).Score(ctx, tb, 1, prop); s != 0 {
		t.Errorf("KB-Duplicate without correspondences = %v, want 0", s)
	}
	if s := (wtLabel{}).Score(ctx, tb, 1, prop); s != 0 {
		t.Errorf("WT-Label without preliminary mapping = %v, want 0", s)
	}
	if s := (wtDuplicate{}).Score(ctx, tb, 1, prop); s != 0 {
		t.Errorf("WT-Duplicate without clusters = %v, want 0", s)
	}
}

func TestKBDuplicateMatcher(t *testing.T) {
	w, corpus := testWorld()
	// Build a table over real KB head entities with their true positions.
	heads := w.HeadEntities(kb.ClassGFPlayer)[:3]
	tb := &webtable.Table{
		ID:       999,
		Headers:  []string{"Player", "Pos"},
		LabelCol: 0,
	}
	rowInstance := make(map[webtable.RowRef]kb.InstanceID)
	for i, e := range heads {
		tb.Cells = append(tb.Cells, []string{e.Name, e.Truth["dbo:position"].Raw})
		rowInstance[webtable.RowRef{Table: 999, Row: i}] = e.KBID
	}
	DetectColumnKinds(tb)
	ctx := NewContext(w.KB, corpus).WithIterationOutput(rowInstance, nil, nil)
	ctx.Class = kb.ClassGFPlayer
	prop, _ := w.KB.Property(kb.ClassGFPlayer, "dbo:position")
	s := (kbDuplicate{}).Score(ctx, tb, 1, prop)
	// Some KB instances may lack the position fact (55% density), but
	// matched ones should agree.
	if s < 0.5 {
		t.Errorf("KB-Duplicate on true values = %v, want high", s)
	}
	wrongProp, _ := w.KB.Property(kb.ClassGFPlayer, "dbo:college")
	if sw := (kbDuplicate{}).Score(ctx, tb, 1, wrongProp); sw >= s {
		t.Errorf("wrong property should score lower: %v vs %v", sw, s)
	}
}

func TestWTLabelMatcher(t *testing.T) {
	w, corpus := testWorld()
	// Preliminary mapping from provenance; then query with a header that
	// actually occurs for dbo:position columns in this corpus sample.
	prelim := make(map[ColRef]kb.PropertyID)
	queryHeader := ""
	for _, tbl := range corpus.Tables {
		if tbl.Truth == nil || tbl.Truth.Class != kb.ClassGFPlayer {
			continue
		}
		for c, pid := range tbl.Truth.ColProperty {
			if pid != "" {
				prelim[ColRef{Table: tbl.ID, Col: c}] = pid
				if pid == "dbo:position" && queryHeader == "" {
					queryHeader = tbl.Headers[c]
				}
			}
		}
	}
	if len(prelim) == 0 || queryHeader == "" {
		t.Skip("corpus sample has no mapped position column")
	}
	ctx := NewContext(w.KB, corpus).WithIterationOutput(nil, nil, prelim)
	ctx.Class = kb.ClassGFPlayer
	tb := &webtable.Table{
		ID:       12345,
		Headers:  []string{"Player", queryHeader},
		Cells:    [][]string{{"Somebody New", "QB"}},
		LabelCol: 0,
	}
	DetectColumnKinds(tb)
	prop, _ := w.KB.Property(kb.ClassGFPlayer, "dbo:position")
	if s := (wtLabel{}).Score(ctx, tb, 1, prop); s <= 0 {
		t.Errorf("WT-Label for observed header %q = %v, want positive", queryHeader, s)
	}
	// A property the header never co-occurred with should score lower.
	other, _ := w.KB.Property(kb.ClassGFPlayer, "dbo:birthPlace")
	sPos := (wtLabel{}).Score(ctx, tb, 1, prop)
	sOther := (wtLabel{}).Score(ctx, tb, 1, other)
	if sOther > sPos {
		t.Errorf("WT-Label: birthPlace %v should not beat position %v", sOther, sPos)
	}
}

func TestMatchTableClass(t *testing.T) {
	w, corpus := testWorld()
	ctx := NewContext(w.KB, corpus)
	// Take a synthetic player table that contains at least one head row.
	var target *webtable.Table
	for _, tbl := range corpus.Tables {
		if tbl.Truth == nil || tbl.Truth.Class != kb.ClassGFPlayer {
			continue
		}
		heads := 0
		for _, uid := range tbl.Truth.RowEntity {
			if uid >= 0 && w.Entities[uid].InKB {
				heads++
			}
		}
		if heads >= 2 && tbl.NumRows() >= 3 {
			target = tbl
			break
		}
	}
	if target == nil {
		t.Skip("no suitable player table in small corpus")
	}
	DetectColumnKinds(target)
	DetectLabelColumn(target)
	cm := MatchTableClass(ctx, target, 0.3)
	if cm.Class != kb.ClassGFPlayer {
		t.Errorf("table class = %v, want GF-Player (score %v)", cm.Class, cm.Score)
	}
	if len(cm.RowInstance) == 0 {
		t.Error("expected row-to-instance matches")
	}
}

func TestMatchTableClassRejectsJunk(t *testing.T) {
	w, corpus := testWorld()
	ctx := NewContext(w.KB, corpus)
	junk := &webtable.Table{
		Headers:  []string{"Product", "Price"},
		Cells:    [][]string{{"Widget Q-55", "9.99"}, {"Gadget Z-12", "19.99"}},
		LabelCol: -1,
	}
	_ = w
	DetectColumnKinds(junk)
	DetectLabelColumn(junk)
	cm := MatchTableClass(ctx, junk, 0.3)
	if cm.Class != "" {
		t.Errorf("junk table matched to %v", cm.Class)
	}
}

func TestMatchAttributesEndToEnd(t *testing.T) {
	w, corpus := testWorld()
	ctx := NewContext(w.KB, corpus)
	ctx.Class = kb.ClassGFPlayer
	tb := playerTable()
	DetectColumnKinds(tb)
	DetectLabelColumn(tb)
	matchers := FirstIterationMatchers()
	model := DefaultModel(kb.ClassGFPlayer, matchers)
	model.DefaultThreshold = 0.4
	mapping := MatchAttributes(ctx, model, matchers, tb)
	if mapping[1] != "dbo:position" {
		t.Errorf("column 1 mapped to %q, want dbo:position", mapping[1])
	}
	if mapping[2] != "dbo:weight" {
		t.Errorf("column 2 mapped to %q, want dbo:weight", mapping[2])
	}
	if mapping[3] != "dbo:birthDate" {
		t.Errorf("column 3 mapped to %q, want dbo:birthDate", mapping[3])
	}
	if _, ok := mapping[0]; ok {
		t.Error("label column must not be mapped")
	}
}

func TestExtractRowValues(t *testing.T) {
	w, corpus := testWorld()
	ctx := NewContext(w.KB, corpus)
	ctx.Class = kb.ClassGFPlayer
	tb := playerTable()
	DetectColumnKinds(tb)
	mapping := map[int]kb.PropertyID{1: "dbo:position", 2: "dbo:weight", 3: "dbo:birthDate"}
	vals := ExtractRowValues(ctx, tb, 0, mapping)
	if vals["dbo:position"].Str != "qb" {
		t.Errorf("position = %+v", vals["dbo:position"])
	}
	if vals["dbo:weight"].Num != 225 {
		t.Errorf("weight = %+v", vals["dbo:weight"])
	}
	if vals["dbo:birthDate"].Year != 1977 {
		t.Errorf("birthDate = %+v", vals["dbo:birthDate"])
	}
	// The value kind is normalized to the property kind.
	if vals["dbo:position"].Kind != dtype.NominalString {
		t.Errorf("position kind = %v, want NominalString", vals["dbo:position"].Kind)
	}
}

func TestLearnImprovesOverUniform(t *testing.T) {
	w, corpus := testWorld()
	ctx := NewContext(w.KB, corpus)
	ctx.Class = kb.ClassGFPlayer

	// Labeled examples from corpus provenance.
	var examples []Example
	for _, tbl := range corpus.Tables {
		if tbl.Truth == nil || tbl.Truth.Class != kb.ClassGFPlayer {
			continue
		}
		DetectColumnKinds(tbl)
		DetectLabelColumn(tbl)
		for c, pid := range tbl.Truth.ColProperty {
			if c == tbl.LabelCol {
				continue
			}
			examples = append(examples, Example{Table: tbl, Col: c, Want: pid})
		}
	}
	if len(examples) < 10 {
		t.Skip("not enough examples")
	}
	matchers := FirstIterationMatchers()
	model := Learn(ctx, matchers, kb.ClassGFPlayer, examples, 1)
	_, _, fLearned := EvaluateAttributes(ctx, model, matchers, examples)
	if fLearned < 0.5 {
		t.Errorf("learned model F1 = %v, want reasonable matching", fLearned)
	}
	// Weights normalized.
	var sum float64
	for _, wgt := range model.Weights {
		sum += wgt
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("weights sum = %v", sum)
	}
}

func TestF1Helpers(t *testing.T) {
	if precision(0, 0) != 0 || recall(0, 0) != 0 || f1(0, 0, 0) != 0 {
		t.Error("degenerate metrics should be 0")
	}
	if precision(5, 0) != 1 || recall(5, 0) != 1 || f1(5, 0, 0) != 1 {
		t.Error("perfect metrics should be 1")
	}
	if got := f1(1, 1, 1); got < 0.49 || got > 0.51 {
		t.Errorf("f1(1,1,1) = %v, want 0.5", got)
	}
}

func BenchmarkMatchAttributes(b *testing.B) {
	w, corpus := testWorld()
	ctx := NewContext(w.KB, corpus)
	ctx.Class = kb.ClassGFPlayer
	tb := playerTable()
	DetectColumnKinds(tb)
	DetectLabelColumn(tb)
	matchers := FirstIterationMatchers()
	model := DefaultModel(kb.ClassGFPlayer, matchers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchAttributes(ctx, model, matchers, tb)
	}
}

func BenchmarkMatchTableClass(b *testing.B) {
	w, corpus := testWorld()
	ctx := NewContext(w.KB, corpus)
	tb := playerTable()
	DetectColumnKinds(tb)
	DetectLabelColumn(tb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchTableClass(ctx, tb, 0.3)
	}
}
