package match

import (
	"math"
	"sort"

	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/strsim"
	"repro/internal/webtable"
)

// Matcher scores how likely a table column matches a candidate KB property,
// returning a value in [0, 1].
type Matcher interface {
	Name() string
	Score(ctx *Context, t *webtable.Table, col int, prop kb.Property) float64
}

// AllMatchers returns the five matchers of the paper in a fixed order:
// KB-Overlap, KB-Label, KB-Duplicate, WT-Label, WT-Duplicate.
func AllMatchers() []Matcher {
	return []Matcher{kbOverlap{}, kbLabel{}, kbDuplicate{}, wtLabel{}, wtDuplicate{}}
}

// FirstIterationMatchers returns the matchers usable before any pipeline
// output exists (the duplicate-based ones require output from the other
// pipeline components and are excluded in the first iteration).
func FirstIterationMatchers() []Matcher {
	return []Matcher{kbOverlap{}, kbLabel{}}
}

// ---------------------------------------------------------------------------
// KB-Overlap: proportion of column values that generally fit the candidate
// property in the knowledge base.

// propProfile summarizes the value distribution of one property over all KB
// instances of a class: a normalized-string set for string-like kinds, a
// numeric range for quantities, a year range for dates, and an integer set
// for nominal integers.
type propProfile struct {
	kind       dtype.Kind
	strs       map[string]bool
	ints       map[int]bool
	minQ, maxQ float64
	minY, maxY int
	n          int
}

func (c *Context) profile(class kb.ClassID, pid kb.PropertyID) *propProfile {
	cc := c.caches
	ver := c.KB.Version()
	// Fast path: cache hit under the shared lock, valid only while the KB
	// has not grown since the profiles were built.
	cc.mu.RLock()
	if cc.kbVersion == ver {
		if p, ok := cc.kbProfiles[class][pid]; ok {
			cc.mu.RUnlock()
			return p
		}
	}
	cc.mu.RUnlock()
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.kbVersion != ver {
		// The KB grew (engine write-back between epochs): every profile is
		// stale, drop them all and rebuild against the current instances.
		cc.kbProfiles = nil
		cc.kbVersion = ver
	}
	if cc.kbProfiles == nil {
		cc.kbProfiles = make(map[kb.ClassID]map[kb.PropertyID]*propProfile)
	}
	if byProp, ok := cc.kbProfiles[class]; ok {
		if p, ok := byProp[pid]; ok {
			return p
		}
	} else {
		cc.kbProfiles[class] = make(map[kb.PropertyID]*propProfile)
	}
	prop, ok := c.KB.Property(class, pid)
	if !ok {
		return nil
	}
	p := &propProfile{
		kind: prop.Kind,
		strs: make(map[string]bool),
		ints: make(map[int]bool),
		minQ: math.Inf(1), maxQ: math.Inf(-1),
		minY: 1 << 30, maxY: -(1 << 30),
	}
	c.KB.ForEachFactOfClass(class, pid, func(_ kb.InstanceID, v dtype.Value) {
		p.n++
		switch v.Kind {
		case dtype.Quantity:
			p.minQ = math.Min(p.minQ, v.Num)
			p.maxQ = math.Max(p.maxQ, v.Num)
		case dtype.NominalInteger:
			p.ints[int(v.Num)] = true
		case dtype.Date:
			if v.Year < p.minY {
				p.minY = v.Year
			}
			if v.Year > p.maxY {
				p.maxY = v.Year
			}
		default:
			p.strs[v.Str] = true
		}
	})
	cc.kbProfiles[class][pid] = p
	return p
}

// fits reports whether a parsed cell value is plausible for the profile.
func (p *propProfile) fits(v dtype.Value) bool {
	switch p.kind {
	case dtype.Quantity:
		if p.n == 0 {
			return false
		}
		span := p.maxQ - p.minQ
		slack := 0.1 * (span + 1)
		return v.Num >= p.minQ-slack && v.Num <= p.maxQ+slack
	case dtype.NominalInteger:
		return p.ints[int(v.Num)]
	case dtype.Date:
		return p.n > 0 && v.Year >= p.minY-2 && v.Year <= p.maxY+2
	default:
		return p.strs[v.Str]
	}
}

type kbOverlap struct{}

func (kbOverlap) Name() string { return "KB-Overlap" }

func (kbOverlap) Score(ctx *Context, t *webtable.Table, col int, prop kb.Property) float64 {
	p := ctx.profile(ctx.Class, prop.ID)
	if p == nil || p.n == 0 {
		return 0
	}
	total, fit := 0, 0
	for r := 0; r < t.NumRows(); r++ {
		v, ok := dtype.Parse(t.Cell(r, col), prop.Kind)
		if !ok {
			continue
		}
		total++
		if p.fits(v) {
			fit++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(fit) / float64(total)
}

// ---------------------------------------------------------------------------
// KB-Label: header label vs property label similarity.

type kbLabel struct{}

func (kbLabel) Name() string { return "KB-Label" }

func (kbLabel) Score(ctx *Context, t *webtable.Table, col int, prop kb.Property) float64 {
	header := t.Headers[col]
	if header == "" {
		return 0
	}
	// Headers and property labels recur across tables and candidates;
	// prepare each once per process instead of re-tokenizing per pair.
	h := strsim.PrepareCached(header)
	best := h.MongeElkanSym(strsim.PrepareCached(prop.Label))
	for _, alt := range prop.AltLabels {
		if s := h.MongeElkanSym(strsim.PrepareCached(alt)); s > best {
			best = s
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// KB-Duplicate: proportion of cells equal to the fact of the candidate
// property for the instance the row was matched to (correspondences from
// the new detection component of the previous iteration).

type kbDuplicate struct{}

func (kbDuplicate) Name() string { return "KB-Duplicate" }

func (kbDuplicate) Score(ctx *Context, t *webtable.Table, col int, prop kb.Property) float64 {
	if ctx.RowInstance == nil {
		return 0
	}
	total, equal := 0, 0
	for r := 0; r < t.NumRows(); r++ {
		iid, ok := ctx.RowInstance[webtable.RowRef{Table: t.ID, Row: r}]
		if !ok {
			continue
		}
		fact, ok := ctx.KB.Fact(iid, prop.ID)
		if !ok {
			continue
		}
		v, ok := dtype.Parse(t.Cell(r, col), prop.Kind)
		if !ok {
			continue
		}
		total++
		if ctx.Thresholds.Equal(v, fact) {
			equal++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(equal) / float64(total)
}

// ---------------------------------------------------------------------------
// WT-Label: label-to-property likelihood derived from the preliminary
// mapping over the whole corpus: how often a given (normalized) header
// label was preliminarily mapped to the candidate property.

type wtLabel struct{}

func (wtLabel) Name() string { return "WT-Label" }

func (wtLabel) Score(ctx *Context, t *webtable.Table, col int, prop kb.Property) float64 {
	stats := ctx.wtLabelStats()
	if stats == nil {
		return 0
	}
	header := strsim.Normalize(t.Headers[col])
	if header == "" {
		return 0
	}
	byLabel, ok := stats[prop.ID]
	if !ok {
		return 0
	}
	return byLabel[header]
}

// wtLabelStats builds, per property, the conditional likelihood that a
// header label maps to that property, from the preliminary mapping.
func (c *Context) wtLabelStats() map[kb.PropertyID]map[string]float64 {
	if c.Prelim == nil {
		return nil
	}
	cc := c.caches
	cc.mu.RLock()
	if cc.wtDone {
		stats := cc.wtLabels
		cc.mu.RUnlock()
		return stats
	}
	cc.mu.RUnlock()
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.wtDone {
		return cc.wtLabels
	}
	// count[label][prop] = number of columns with that header mapped to prop.
	count := make(map[string]map[kb.PropertyID]int)
	totals := make(map[string]int)
	for ref, pid := range c.Prelim {
		tbl := c.Corpus.Table(ref.Table)
		if tbl == nil || ref.Col >= tbl.NumCols() {
			continue
		}
		label := strsim.Normalize(tbl.Headers[ref.Col])
		if label == "" {
			continue
		}
		if count[label] == nil {
			count[label] = make(map[kb.PropertyID]int)
		}
		count[label][pid]++
		totals[label]++
	}
	stats := make(map[kb.PropertyID]map[string]float64)
	for label, byProp := range count {
		for pid, n := range byProp {
			if stats[pid] == nil {
				stats[pid] = make(map[string]float64)
			}
			stats[pid][label] = float64(n) / float64(totals[label])
		}
	}
	cc.wtLabels = stats
	cc.wtDone = true
	return stats
}

// ---------------------------------------------------------------------------
// WT-Duplicate: proportion of values in the attribute for which an equal
// value exists elsewhere in the corpus, matched (via the preliminary
// mapping) to the same instance — where "same instance" is approximated by
// the row clusters of the previous clustering run.

type wtDuplicate struct{}

func (wtDuplicate) Name() string { return "WT-Duplicate" }

func (wtDuplicate) Score(ctx *Context, t *webtable.Table, col int, prop kb.Property) float64 {
	if ctx.RowCluster == nil || ctx.Prelim == nil {
		return 0
	}
	pool := ctx.clusterValues()
	total, dup := 0, 0
	for r := 0; r < t.NumRows(); r++ {
		ref := webtable.RowRef{Table: t.ID, Row: r}
		cluster, ok := ctx.RowCluster[ref]
		if !ok {
			continue
		}
		v, ok := dtype.Parse(t.Cell(r, col), prop.Kind)
		if !ok {
			continue
		}
		total++
		for _, other := range pool[clusterPropKey{cluster, prop.ID}] {
			if other.table == t.ID {
				continue // need independent support from another table
			}
			if ctx.Thresholds.Equal(v, other.v) {
				dup++
				break
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(dup) / float64(total)
}

// clusterValues collects, per (cluster, property), the values of all cells
// whose column is preliminarily mapped to that property, together with the
// table each value came from.
func (c *Context) clusterValues() map[clusterPropKey][]tableValue {
	cc := c.caches
	cc.mu.RLock()
	if cc.clusterVal != nil {
		pool := cc.clusterVal
		cc.mu.RUnlock()
		return pool
	}
	cc.mu.RUnlock()
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.clusterVal != nil {
		return cc.clusterVal
	}
	// Iterate the preliminary mapping in sorted column order so each
	// pool's value list comes out the same every run (several columns can
	// feed one (cluster, property) key).
	refs := make([]ColRef, 0, len(c.Prelim))
	for ref := range c.Prelim {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Table != refs[j].Table {
			return refs[i].Table < refs[j].Table
		}
		return refs[i].Col < refs[j].Col
	})
	pool := make(map[clusterPropKey][]tableValue)
	for _, ref := range refs {
		pid := c.Prelim[ref]
		tbl := c.Corpus.Table(ref.Table)
		if tbl == nil {
			continue
		}
		prop, ok := c.KB.Property(c.Class, pid)
		if !ok {
			continue
		}
		for r := 0; r < tbl.NumRows(); r++ {
			cluster, ok := c.RowCluster[webtable.RowRef{Table: tbl.ID, Row: r}]
			if !ok {
				continue
			}
			if v, ok := dtype.Parse(tbl.Cell(r, ref.Col), prop.Kind); ok {
				key := clusterPropKey{cluster, pid}
				pool[key] = append(pool[key], tableValue{v: v, table: tbl.ID})
			}
		}
	}
	cc.clusterVal = pool
	return pool
}
