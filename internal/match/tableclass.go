package match

import (
	"sort"

	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/webtable"
)

// ClassMatch is the result of table-to-class matching for one table.
type ClassMatch struct {
	Class kb.ClassID
	// Score aggregates the row-match and duplicate-based evidence.
	Score float64
	// RowInstance holds the row-to-instance matches that produced the
	// score (used as a by-product for duplicate-based matching).
	RowInstance map[int]kb.InstanceID
}

// MatchTableClass performs the duplicate-based table-to-class matching of
// Ritze et al. (§3.1): row labels retrieve candidate instances; classes are
// scored by the number of rows with a candidate; candidate classes are then
// re-scored by how well cell values match the candidate instances' facts
// (duplicate-based attribute-to-property matching), and the best class
// wins. A table whose best class matches fewer than minRowFrac of its rows
// is left unmatched (zero ClassMatch).
func MatchTableClass(ctx *Context, t *webtable.Table, minRowFrac float64) ClassMatch {
	if t.LabelCol < 0 {
		DetectLabelColumn(t)
	}
	if t.LabelCol < 0 {
		return ClassMatch{}
	}
	type rowCand struct {
		row      int
		instance kb.InstanceID
	}
	byClass := make(map[kb.ClassID][]rowCand)
	for r := 0; r < t.NumRows(); r++ {
		label := t.RowLabel(r)
		if label == "" {
			continue
		}
		seen := make(map[kb.ClassID]bool)
		for _, iid := range ctx.KB.Candidates(label, kb.CandidateOpts{K: 8}) {
			class := ctx.KB.InstanceClass(iid)
			if seen[class] {
				continue // one candidate per class per row for the row score
			}
			seen[class] = true
			byClass[class] = append(byClass[class], rowCand{row: r, instance: iid})
		}
	}
	if len(byClass) == 0 {
		return ClassMatch{}
	}

	best := ClassMatch{}
	classes := make([]kb.ClassID, 0, len(byClass))
	for class := range byClass {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, class := range classes {
		cands := byClass[class]
		rowScore := float64(len(cands))
		// Duplicate-based evidence: per column, count cells equal to the
		// candidate instance's fact for the best-fitting property, then
		// take each column's best property count.
		dupScore := 0.0
		schema := ctx.KB.Schema(class)
		if len(schema) > 0 {
			for c := 0; c < t.NumCols(); c++ {
				if c == t.LabelCol {
					continue
				}
				bestCol := 0
				for _, prop := range schema {
					if !typeCompatible(t.ColKinds[c], prop.Kind) {
						continue
					}
					cnt := 0
					for _, rc := range cands {
						fact, ok := ctx.KB.Fact(rc.instance, prop.ID)
						if !ok {
							continue
						}
						v, ok := dtype.Parse(t.Cell(rc.row, c), prop.Kind)
						if !ok {
							continue
						}
						if ctx.Thresholds.Equal(v, fact) {
							cnt++
						}
					}
					if cnt > bestCol {
						bestCol = cnt
					}
				}
				dupScore += float64(bestCol)
			}
		}
		score := rowScore + dupScore
		if score > best.Score {
			ri := make(map[int]kb.InstanceID, len(cands))
			for _, rc := range cands {
				if _, ok := ri[rc.row]; !ok {
					ri[rc.row] = rc.instance
				}
			}
			best = ClassMatch{Class: class, Score: score, RowInstance: ri}
		}
	}
	if best.Class == "" {
		return ClassMatch{}
	}
	if float64(len(best.RowInstance)) < minRowFrac*float64(t.NumRows()) {
		return ClassMatch{}
	}
	return best
}

// typeCompatible implements the candidate-property blocking by data type
// (§3.1): text attributes may match instance references, nominal strings
// and texts; quantity attributes match quantities and nominal integers;
// date attributes match dates, quantities and nominal integers.
func typeCompatible(colKind, propKind dtype.Kind) bool {
	switch colKind {
	case dtype.Text:
		return propKind == dtype.InstanceReference ||
			propKind == dtype.NominalString || propKind == dtype.Text
	case dtype.Quantity:
		return propKind == dtype.Quantity || propKind == dtype.NominalInteger
	case dtype.Date:
		return propKind == dtype.Date || propKind == dtype.Quantity ||
			propKind == dtype.NominalInteger
	default:
		return false
	}
}
