package match

import (
	"testing"

	"repro/internal/kb"
	"repro/internal/webtable"
)

// TestWTDuplicateMatcher exercises the positive path of WT-Duplicate: two
// tables whose rows are clustered together and whose columns are
// preliminarily mapped to the same property; values that agree across the
// tables raise the score for the query table's column.
func TestWTDuplicateMatcher(t *testing.T) {
	w, _ := testWorld()
	tables := []*webtable.Table{
		{
			Headers:  []string{"Player", "Pos"},
			Cells:    [][]string{{"Quintus Marrow", "QB"}, {"Rex Tangle", "WR"}},
			LabelCol: 0,
		},
		{
			Headers:  []string{"Name", "info"}, // cryptic header
			Cells:    [][]string{{"Quintus Marrow", "QB"}, {"Rex Tangle", "WR"}},
			LabelCol: 0,
		},
	}
	corpus := webtable.NewCorpus(tables)
	for _, tb := range tables {
		DetectColumnKinds(tb)
	}
	// Previous-iteration outputs: rows of the same player share a cluster;
	// table 0's position column is preliminarily mapped.
	rowCluster := map[webtable.RowRef]int{
		{Table: 0, Row: 0}: 1, {Table: 1, Row: 0}: 1,
		{Table: 0, Row: 1}: 2, {Table: 1, Row: 1}: 2,
	}
	prelim := map[ColRef]kb.PropertyID{
		{Table: 0, Col: 1}: "dbo:position",
	}
	ctx := NewContext(w.KB, corpus).WithIterationOutput(nil, rowCluster, prelim)
	ctx.Class = kb.ClassGFPlayer
	prop, _ := w.KB.Property(kb.ClassGFPlayer, "dbo:position")

	// Table 1's cryptic column: both of its values have an equal value in
	// the same cluster from table 0 → score 1.0.
	if s := (wtDuplicate{}).Score(ctx, tables[1], 1, prop); s < 0.99 {
		t.Errorf("WT-Duplicate with cross-table agreement = %v, want 1.0", s)
	}
	// Table 0's own column: the only supporting values come from table 0
	// itself (same table excluded) — no independent support.
	if s := (wtDuplicate{}).Score(ctx, tables[0], 1, prop); s != 0 {
		t.Errorf("WT-Duplicate without independent support = %v, want 0", s)
	}
	// A conflicting table scores 0.
	conflict := &webtable.Table{
		Headers:  []string{"Player", "data"},
		Cells:    [][]string{{"Quintus Marrow", "DT"}},
		LabelCol: 0,
	}
	corpus2 := webtable.NewCorpus(append(tables, conflict))
	DetectColumnKinds(conflict)
	rowCluster[webtable.RowRef{Table: 2, Row: 0}] = 1
	ctx2 := NewContext(w.KB, corpus2).WithIterationOutput(nil, rowCluster, prelim)
	ctx2.Class = kb.ClassGFPlayer
	if s := (wtDuplicate{}).Score(ctx2, conflict, 1, prop); s != 0 {
		t.Errorf("WT-Duplicate with conflicting value = %v, want 0", s)
	}
}
