package ml

import "math/rand"

// Folds partitions n item indices into k folds for cross-validation. Items
// with the same group key always land in the same fold (the paper keeps all
// clusters of a homonym group in one fold). Groups are assigned round-robin
// after shuffling, which keeps fold sizes even.
//
// groupOf may be nil, in which case every item is its own group. positive
// marks items that should be distributed evenly across folds (the paper
// "evenly split[s] new clusters"); it may be nil.
func Folds(n, k int, seed int64, groupOf func(i int) string, positive func(i int) bool) [][]int {
	if k <= 0 {
		k = 3
	}
	rng := rand.New(rand.NewSource(seed + 3))
	// Collect groups.
	groups := make(map[string][]int)
	var order []string
	for i := 0; i < n; i++ {
		g := ""
		if groupOf != nil {
			g = groupOf(i)
		}
		if g == "" {
			g = "item-" + itoa(i)
		}
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], i)
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	folds := make([][]int, k)
	// Distribute positive-containing groups first, round-robin, so each
	// fold receives a similar number of positives.
	hasPos := func(g string) bool {
		if positive == nil {
			return false
		}
		for _, i := range groups[g] {
			if positive(i) {
				return true
			}
		}
		return false
	}
	next := 0
	for _, g := range order {
		if hasPos(g) {
			folds[next%k] = append(folds[next%k], groups[g]...)
			next++
		}
	}
	// Remaining groups go to the currently smallest fold.
	for _, g := range order {
		if hasPos(g) {
			continue
		}
		smallest := 0
		for f := 1; f < k; f++ {
			if len(folds[f]) < len(folds[smallest]) {
				smallest = f
			}
		}
		folds[smallest] = append(folds[smallest], groups[g]...)
	}
	return folds
}

// TrainTest returns the training indices (all folds except test) and the
// test fold.
func TrainTest(folds [][]int, test int) (train, testIdx []int) {
	for f, idx := range folds {
		if f == test {
			testIdx = append(testIdx, idx...)
		} else {
			train = append(train, idx...)
		}
	}
	return train, testIdx
}

// Upsample balances a binary-labeled dataset by repeating minority samples
// until both label counts match ("in all cases we upsample to balance the
// number of matching and non-matching row pairs"). isPositive classifies a
// sample index; the returned slice contains indices into the original data.
func Upsample(n int, seed int64, isPositive func(i int) bool) []int {
	var pos, neg []int
	for i := 0; i < n; i++ {
		if isPositive(i) {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	out := make([]int, 0, n)
	out = append(out, pos...)
	out = append(out, neg...)
	minority, target := pos, len(neg)
	if len(neg) < len(pos) {
		minority, target = neg, len(pos)
	}
	if len(minority) == 0 || len(minority) == target {
		return out
	}
	rng := rand.New(rand.NewSource(seed + 11))
	for deficit := target - len(minority); deficit > 0; deficit-- {
		out = append(out, minority[rng.Intn(len(minority))])
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
