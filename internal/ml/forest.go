package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrNoTrainingData is returned when forest training receives an empty
// sample matrix.
var ErrNoTrainingData = errors.New("ml: forest training needs a non-empty sample matrix")

// ForestConfig configures random forest regression training.
type ForestConfig struct {
	// Trees is the number of bagged trees (default 40).
	Trees int
	// Tree configures individual tree induction. A zero FeatureSample
	// defaults to sqrt(p)/p.
	Tree TreeConfig
	// BagFraction is the fraction of samples drawn (with replacement)
	// per tree (the paper tunes the out-of-bag rate; default 1.0).
	BagFraction float64
	// Seed makes training deterministic.
	Seed int64
}

// Forest is a trained random-forest regressor.
type Forest struct {
	trees      []*treeNode
	importance []float64
	oobError   float64
	nFeatures  int
}

// TrainForest fits a random forest on X (rows of features) and y (targets).
// Empty, featureless, or inconsistently sized input returns an error rather
// than panicking: training sets can derive from user-supplied ingest
// batches, and a degenerate batch must not take a long-running process
// down.
func TrainForest(X [][]float64, y []float64, cfg ForestConfig) (*Forest, error) {
	if len(X) == 0 {
		return nil, ErrNoTrainingData
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("ml: TrainForest got %d samples but %d targets", len(X), len(y))
	}
	nf := len(X[0])
	if nf == 0 {
		return nil, errors.New("ml: TrainForest needs at least one feature")
	}
	for i, row := range X {
		if len(row) != nf {
			return nil, fmt.Errorf("ml: TrainForest sample %d has %d features, want %d", i, len(row), nf)
		}
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 40
	}
	if cfg.BagFraction <= 0 || cfg.BagFraction > 1 {
		cfg.BagFraction = 1.0
	}
	if cfg.Tree.FeatureSample <= 0 {
		cfg.Tree.FeatureSample = math.Sqrt(float64(nf)) / float64(nf)
	}
	if cfg.Tree.MinLeaf <= 0 {
		cfg.Tree.MinLeaf = 1
	}
	if cfg.Tree.MaxDepth <= 0 {
		cfg.Tree.MaxDepth = 12
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	f := &Forest{importance: make([]float64, nf), nFeatures: nf}
	n := len(X)
	bagSize := int(cfg.BagFraction * float64(n))
	if bagSize < 1 {
		bagSize = 1
	}
	// Out-of-bag bookkeeping: accumulated prediction and count per sample.
	oobSum := make([]float64, n)
	oobCnt := make([]int, n)

	for t := 0; t < cfg.Trees; t++ {
		inBag := make([]bool, n)
		idx := make([]int, bagSize)
		for i := range idx {
			j := rng.Intn(n)
			idx[i] = j
			inBag[j] = true
		}
		tree := buildTree(X, y, idx, cfg.Tree, 0, rng)
		f.trees = append(f.trees, tree)
		tree.importanceInto(f.importance)
		for i := 0; i < n; i++ {
			if !inBag[i] {
				oobSum[i] += tree.predict(X[i])
				oobCnt[i]++
			}
		}
	}
	// OOB mean squared error.
	var sse float64
	var cnt int
	for i := 0; i < n; i++ {
		if oobCnt[i] > 0 {
			d := oobSum[i]/float64(oobCnt[i]) - y[i]
			sse += d * d
			cnt++
		}
	}
	if cnt > 0 {
		f.oobError = sse / float64(cnt)
	}
	normalize(f.importance)
	return f, nil
}

// Predict returns the forest's prediction (mean over trees) for x.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range f.trees {
		s += t.predict(x)
	}
	return s / float64(len(f.trees))
}

// Importance returns the normalized per-feature importance (sums to 1
// unless the forest never split).
func (f *Forest) Importance() []float64 {
	out := make([]float64, len(f.importance))
	copy(out, f.importance)
	return out
}

// OOBError returns the out-of-bag mean squared error observed in training.
func (f *Forest) OOBError() float64 { return f.oobError }

// NumFeatures returns the feature dimensionality the forest was trained on.
func (f *Forest) NumFeatures() int { return f.nFeatures }

// TuneForest trains forests over the given candidate configurations and
// returns the one with the lowest out-of-bag error, mirroring the paper's
// hyperparameter selection "using the out-of-bag error with different
// out-of-bag rates on the learning set". It propagates TrainForest's error
// on degenerate input.
func TuneForest(X [][]float64, y []float64, candidates []ForestConfig) (*Forest, error) {
	if len(candidates) == 0 {
		return TrainForest(X, y, ForestConfig{})
	}
	var best *Forest
	for _, cfg := range candidates {
		f, err := TrainForest(X, y, cfg)
		if err != nil {
			return nil, err
		}
		if best == nil || f.oobError < best.oobError {
			best = f
		}
	}
	return best, nil
}

func normalize(v []float64) {
	var s float64
	for _, x := range v {
		s += x
	}
	if s == 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}
