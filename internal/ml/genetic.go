package ml

import (
	"math/rand"
)

// GAConfig configures the genetic algorithm used to learn weighted-average
// weights and thresholds ("when learning weights we utilize a genetic
// algorithm that attempts to maximize the matching performance on the
// learning set").
type GAConfig struct {
	// Genes is the chromosome length (number of weights + thresholds).
	Genes int
	// Population size (default 60).
	Population int
	// Generations to evolve (default 50).
	Generations int
	// MutationRate is the per-gene mutation probability (default 0.15).
	MutationRate float64
	// CrossoverRate is the probability of crossover vs cloning (0.9).
	CrossoverRate float64
	// Seed makes the run deterministic.
	Seed int64
	// Min and Max bound the gene values (default [0, 1]).
	Min, Max float64
}

// Optimize evolves a chromosome of cfg.Genes values in [Min, Max] that
// maximizes fitness. It returns the best chromosome and its fitness.
func Optimize(cfg GAConfig, fitness func(genes []float64) float64) ([]float64, float64) {
	if cfg.Genes <= 0 {
		return nil, 0
	}
	if cfg.Population <= 0 {
		cfg.Population = 60
	}
	if cfg.Generations <= 0 {
		cfg.Generations = 50
	}
	if cfg.MutationRate <= 0 {
		cfg.MutationRate = 0.15
	}
	if cfg.CrossoverRate <= 0 {
		cfg.CrossoverRate = 0.9
	}
	if cfg.Max <= cfg.Min {
		cfg.Min, cfg.Max = 0, 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	span := cfg.Max - cfg.Min

	pop := make([][]float64, cfg.Population)
	fit := make([]float64, cfg.Population)
	for i := range pop {
		g := make([]float64, cfg.Genes)
		for j := range g {
			g[j] = cfg.Min + rng.Float64()*span
		}
		pop[i] = g
		fit[i] = fitness(g)
	}
	bestIdx := argmax(fit)
	best := clone(pop[bestIdx])
	bestFit := fit[bestIdx]

	next := make([][]float64, cfg.Population)
	for gen := 0; gen < cfg.Generations; gen++ {
		// Elitism: carry the best chromosome over unchanged.
		next[0] = clone(best)
		for i := 1; i < cfg.Population; i++ {
			a := tournament(pop, fit, rng)
			child := clone(a)
			if rng.Float64() < cfg.CrossoverRate {
				b := tournament(pop, fit, rng)
				cut := rng.Intn(cfg.Genes)
				copy(child[cut:], b[cut:])
			}
			for j := range child {
				if rng.Float64() < cfg.MutationRate {
					// Gaussian perturbation clipped into bounds.
					child[j] += rng.NormFloat64() * 0.15 * span
					if child[j] < cfg.Min {
						child[j] = cfg.Min
					}
					if child[j] > cfg.Max {
						child[j] = cfg.Max
					}
				}
			}
			next[i] = child
		}
		pop, next = next, pop
		for i := range pop {
			fit[i] = fitness(pop[i])
			if fit[i] > bestFit {
				bestFit = fit[i]
				best = clone(pop[i])
			}
		}
	}
	return best, bestFit
}

// tournament selects the fitter of two random individuals.
func tournament(pop [][]float64, fit []float64, rng *rand.Rand) []float64 {
	i, j := rng.Intn(len(pop)), rng.Intn(len(pop))
	if fit[i] >= fit[j] {
		return pop[i]
	}
	return pop[j]
}

func argmax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

func clone(g []float64) []float64 {
	out := make([]float64, len(g))
	copy(out, g)
	return out
}

// NormalizeWeights scales a weight slice to sum to 1 (uniform if all zero).
func NormalizeWeights(w []float64) []float64 {
	out := make([]float64, len(w))
	var s float64
	for _, x := range w {
		s += x
	}
	if s == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i, x := range w {
		out[i] = x / s
	}
	return out
}
