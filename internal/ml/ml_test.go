package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mustTrain trains or fails the test: happy-path tests use well-formed
// datasets, so an error is a test bug.
func mustTrain(t testing.TB, X [][]float64, y []float64, cfg ForestConfig) *Forest {
	t.Helper()
	f, err := TrainForest(X, y, cfg)
	if err != nil {
		t.Fatalf("TrainForest: %v", err)
	}
	return f
}

// makeRegression builds a dataset where y depends on features 0 and 1 only.
func makeRegression(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		X[i] = x
		y[i] = 2*x[0] - x[1] // features 2, 3 are noise
	}
	return X, y
}

func TestForestLearnsSignal(t *testing.T) {
	X, y := makeRegression(400, 5)
	f := mustTrain(t, X, y, ForestConfig{Trees: 30, Seed: 1})
	var sse, variance float64
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for i, x := range X {
		d := f.Predict(x) - y[i]
		sse += d * d
		dv := y[i] - mean
		variance += dv * dv
	}
	if sse >= variance*0.3 {
		t.Errorf("forest failed to learn: SSE %.3f vs variance %.3f", sse, variance)
	}
}

func TestForestImportanceFindsSignalFeatures(t *testing.T) {
	X, y := makeRegression(400, 6)
	f := mustTrain(t, X, y, ForestConfig{Trees: 40, Seed: 2})
	imp := f.Importance()
	if len(imp) != 4 {
		t.Fatalf("importance dims = %d", len(imp))
	}
	// Signal features 0 and 1 must outrank noise features 2 and 3.
	if imp[0] <= imp[2] || imp[0] <= imp[3] {
		t.Errorf("feature 0 importance %.3f should exceed noise %.3f/%.3f", imp[0], imp[2], imp[3])
	}
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance should normalize to 1, got %v", sum)
	}
}

func TestForestDeterministic(t *testing.T) {
	X, y := makeRegression(100, 7)
	a := mustTrain(t, X, y, ForestConfig{Trees: 10, Seed: 3})
	b := mustTrain(t, X, y, ForestConfig{Trees: 10, Seed: 3})
	for i := 0; i < 10; i++ {
		x := X[i]
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed should give identical forests")
		}
	}
}

func TestForestOOBError(t *testing.T) {
	X, y := makeRegression(300, 8)
	f := mustTrain(t, X, y, ForestConfig{Trees: 30, Seed: 4})
	if f.OOBError() <= 0 {
		t.Error("OOB error should be positive on noisy data")
	}
	if f.OOBError() > 1.5 {
		t.Errorf("OOB error suspiciously high: %v", f.OOBError())
	}
	if f.NumFeatures() != 4 {
		t.Errorf("NumFeatures = %d", f.NumFeatures())
	}
}

func TestTuneForestPicksLowerOOB(t *testing.T) {
	X, y := makeRegression(200, 9)
	weak := ForestConfig{Trees: 2, Tree: TreeConfig{MaxDepth: 1}, Seed: 5}
	strong := ForestConfig{Trees: 30, Seed: 5}
	tuned, err := TuneForest(X, y, []ForestConfig{weak, strong})
	if err != nil {
		t.Fatalf("TuneForest: %v", err)
	}
	solo := mustTrain(t, X, y, weak)
	if tuned.OOBError() > solo.OOBError() {
		t.Errorf("tuning picked worse config: %v > %v", tuned.OOBError(), solo.OOBError())
	}
}

// TestTrainForestDegenerateInput is the crash-vector regression test:
// training sets can derive from user-supplied ingest batches, so empty or
// inconsistent input must return an error instead of panicking.
func TestTrainForestDegenerateInput(t *testing.T) {
	if _, err := TrainForest(nil, nil, ForestConfig{}); !errors.Is(err, ErrNoTrainingData) {
		t.Errorf("empty input error = %v, want ErrNoTrainingData", err)
	}
	if _, err := TrainForest([][]float64{{1}}, []float64{1, 2}, ForestConfig{}); err == nil {
		t.Error("mismatched X/y should return an error")
	}
	if _, err := TrainForest([][]float64{{}}, []float64{1}, ForestConfig{}); err == nil {
		t.Error("featureless samples should return an error")
	}
	if _, err := TrainForest([][]float64{{1, 2}, {3}}, []float64{1, 2}, ForestConfig{}); err == nil {
		t.Error("ragged samples should return an error")
	}
	if _, err := TuneForest(nil, nil, nil); !errors.Is(err, ErrNoTrainingData) {
		t.Error("TuneForest should propagate the training error")
	}
}

func TestForestConstantTarget(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}}
	y := []float64{5, 5, 5}
	f := mustTrain(t, X, y, ForestConfig{Trees: 5, Seed: 1})
	if got := f.Predict([]float64{0.5}); math.Abs(got-5) > 1e-9 {
		t.Errorf("constant target prediction = %v", got)
	}
}

func TestForestPredictionWithinRange(t *testing.T) {
	// Regression trees cannot extrapolate beyond observed targets.
	X, y := makeRegression(200, 10)
	f := mustTrain(t, X, y, ForestConfig{Trees: 20, Seed: 11})
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	check := func(a, b, c, d float64) bool {
		p := f.Predict([]float64{a, b, c, d})
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeFindsMaximum(t *testing.T) {
	// Maximize -(g0-0.3)² -(g1-0.7)²; optimum at (0.3, 0.7).
	genes, fit := Optimize(GAConfig{Genes: 2, Seed: 1, Generations: 60}, func(g []float64) float64 {
		return -(g[0]-0.3)*(g[0]-0.3) - (g[1]-0.7)*(g[1]-0.7)
	})
	if math.Abs(genes[0]-0.3) > 0.08 || math.Abs(genes[1]-0.7) > 0.08 {
		t.Errorf("GA solution = %v, want ≈ (0.3, 0.7)", genes)
	}
	if fit < -0.01 {
		t.Errorf("fitness = %v", fit)
	}
}

func TestOptimizeRespectsBounds(t *testing.T) {
	genes, _ := Optimize(GAConfig{Genes: 3, Min: 0.2, Max: 0.8, Seed: 2}, func(g []float64) float64 {
		return g[0] + g[1] + g[2] // push toward max
	})
	for _, v := range genes {
		if v < 0.2 || v > 0.8 {
			t.Errorf("gene %v out of [0.2, 0.8]", v)
		}
	}
	if genes[0] < 0.7 {
		t.Errorf("gene should approach upper bound, got %v", genes[0])
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	f := func(g []float64) float64 { return -math.Abs(g[0] - 0.5) }
	a, _ := Optimize(GAConfig{Genes: 1, Seed: 9}, f)
	b, _ := Optimize(GAConfig{Genes: 1, Seed: 9}, f)
	if a[0] != b[0] {
		t.Error("same seed should reproduce the GA run")
	}
}

func TestOptimizeZeroGenes(t *testing.T) {
	g, fit := Optimize(GAConfig{}, func([]float64) float64 { return 1 })
	if g != nil || fit != 0 {
		t.Error("zero genes should return nil")
	}
}

func TestNormalizeWeights(t *testing.T) {
	w := NormalizeWeights([]float64{1, 3})
	if math.Abs(w[0]-0.25) > 1e-9 || math.Abs(w[1]-0.75) > 1e-9 {
		t.Errorf("normalized = %v", w)
	}
	u := NormalizeWeights([]float64{0, 0, 0})
	for _, v := range u {
		if math.Abs(v-1.0/3.0) > 1e-9 {
			t.Errorf("all-zero weights should become uniform: %v", u)
		}
	}
}

func TestFoldsPartition(t *testing.T) {
	folds := Folds(30, 3, 1, nil, nil)
	seen := make(map[int]int)
	for _, f := range folds {
		for _, i := range f {
			seen[i]++
		}
	}
	if len(seen) != 30 {
		t.Fatalf("folds cover %d items, want 30", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("item %d appears %d times", i, c)
		}
	}
	for _, f := range folds {
		if len(f) < 8 || len(f) > 12 {
			t.Errorf("unbalanced fold size %d", len(f))
		}
	}
}

func TestFoldsKeepGroupsTogether(t *testing.T) {
	group := func(i int) string {
		if i < 10 {
			return "homonyms"
		}
		return ""
	}
	folds := Folds(30, 3, 2, group, nil)
	foldOf := make(map[int]int)
	for f, idx := range folds {
		for _, i := range idx {
			foldOf[i] = f
		}
	}
	want := foldOf[0]
	for i := 1; i < 10; i++ {
		if foldOf[i] != want {
			t.Fatalf("group split across folds: item %d in fold %d, item 0 in fold %d",
				i, foldOf[i], want)
		}
	}
}

func TestFoldsSpreadPositives(t *testing.T) {
	positive := func(i int) bool { return i%5 == 0 } // 6 positives in 30
	folds := Folds(30, 3, 3, nil, positive)
	for f, idx := range folds {
		pos := 0
		for _, i := range idx {
			if positive(i) {
				pos++
			}
		}
		if pos != 2 {
			t.Errorf("fold %d has %d positives, want 2", f, pos)
		}
	}
}

func TestTrainTest(t *testing.T) {
	folds := [][]int{{0, 1}, {2, 3}, {4, 5}}
	train, test := TrainTest(folds, 1)
	if len(train) != 4 || len(test) != 2 {
		t.Fatalf("train=%v test=%v", train, test)
	}
	if test[0] != 2 || test[1] != 3 {
		t.Errorf("test fold = %v", test)
	}
}

func TestUpsample(t *testing.T) {
	// 3 positives, 9 negatives → upsampled to 9/9.
	isPos := func(i int) bool { return i < 3 }
	out := Upsample(12, 1, isPos)
	pos, neg := 0, 0
	for _, i := range out {
		if isPos(i) {
			pos++
		} else {
			neg++
		}
	}
	if pos != neg {
		t.Errorf("upsample imbalance: %d pos vs %d neg", pos, neg)
	}
	if neg != 9 {
		t.Errorf("negatives should be unchanged: %d", neg)
	}
}

func TestUpsampleDegenerate(t *testing.T) {
	// All one class: unchanged.
	out := Upsample(5, 1, func(int) bool { return true })
	if len(out) != 5 {
		t.Errorf("all-positive upsample length = %d", len(out))
	}
	out = Upsample(4, 1, func(int) bool { return false })
	if len(out) != 4 {
		t.Errorf("all-negative upsample length = %d", len(out))
	}
	// Already balanced: unchanged.
	out = Upsample(4, 1, func(i int) bool { return i < 2 })
	if len(out) != 4 {
		t.Errorf("balanced upsample length = %d", len(out))
	}
}

func BenchmarkTrainForest(b *testing.B) {
	X, y := makeRegression(300, 20)
	cfg := ForestConfig{Trees: 20, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainForest(X, y, cfg)
	}
}

func BenchmarkForestPredict(b *testing.B) {
	X, y := makeRegression(300, 21)
	f := mustTrain(b, X, y, ForestConfig{Trees: 30, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(X[i%len(X)])
	}
}

func BenchmarkOptimize(b *testing.B) {
	cfg := GAConfig{Genes: 6, Generations: 20, Population: 30, Seed: 1}
	fit := func(g []float64) float64 { return -(g[0] - 0.5) * (g[0] - 0.5) }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Optimize(cfg, fit)
	}
}
