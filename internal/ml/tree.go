// Package ml provides the learning substrate the pipeline needs: CART
// regression trees and a bagged random-forest regressor (substituting the
// WEKA random forest the paper uses), a genetic-algorithm optimizer for
// learning weighted-average weights and thresholds, k-fold utilities, and
// class-balancing upsampling.
package ml

import (
	"math"
	"math/rand"
	"sort"
)

// treeNode is one node of a CART regression tree.
type treeNode struct {
	// Leaf nodes predict value; internal nodes split on feature <= thresh.
	feature     int
	thresh      float64
	value       float64
	left, right *treeNode
}

// TreeConfig configures regression tree induction.
type TreeConfig struct {
	// MaxDepth limits tree depth (<=0 means unlimited).
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (default 1).
	MinLeaf int
	// FeatureSample, when in (0,1], is the fraction of features examined
	// at each split (random forests use sqrt(p)/p by default).
	FeatureSample float64
}

// buildTree grows a regression tree on rows X (features) and targets y,
// considering only the given sample indices.
func buildTree(X [][]float64, y []float64, idx []int, cfg TreeConfig, depth int, rng *rand.Rand) *treeNode {
	if len(idx) == 0 {
		return &treeNode{feature: -1}
	}
	mean, variance := meanVar(y, idx)
	if variance < 1e-12 || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) ||
		len(idx) <= cfg.MinLeaf || len(idx) < 2 {
		return &treeNode{feature: -1, value: mean}
	}
	nf := len(X[0])
	feats := featureSubset(nf, cfg.FeatureSample, rng)

	bestFeat, bestThresh, bestScore := -1, 0.0, math.Inf(1)
	vals := make([]float64, 0, len(idx))
	for _, f := range feats {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][f])
		}
		sort.Float64s(vals)
		// Candidate thresholds: midpoints of distinct adjacent values.
		for k := 1; k < len(vals); k++ {
			if vals[k] == vals[k-1] {
				continue
			}
			th := (vals[k] + vals[k-1]) / 2
			score := splitSSE(X, y, idx, f, th)
			if score < bestScore {
				bestFeat, bestThresh, bestScore = f, th, score
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{feature: -1, value: mean}
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 || len(li) < cfg.MinLeaf || len(ri) < cfg.MinLeaf {
		return &treeNode{feature: -1, value: mean}
	}
	return &treeNode{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    buildTree(X, y, li, cfg, depth+1, rng),
		right:   buildTree(X, y, ri, cfg, depth+1, rng),
	}
}

// predict walks the tree for one feature vector.
func (n *treeNode) predict(x []float64) float64 {
	for n.left != nil {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// importanceInto accumulates a simple split-count importance per feature.
func (n *treeNode) importanceInto(imp []float64) {
	if n == nil || n.left == nil {
		return
	}
	imp[n.feature]++
	n.left.importanceInto(imp)
	n.right.importanceInto(imp)
}

// splitSSE computes the summed squared error of a candidate split.
func splitSSE(X [][]float64, y []float64, idx []int, f int, th float64) float64 {
	var ln, rn int
	var lsum, rsum, lsq, rsq float64
	for _, i := range idx {
		v := y[i]
		if X[i][f] <= th {
			ln++
			lsum += v
			lsq += v * v
		} else {
			rn++
			rsum += v
			rsq += v * v
		}
	}
	if ln == 0 || rn == 0 {
		return math.Inf(1)
	}
	// SSE = sum(y²) - n*mean².
	lsse := lsq - lsum*lsum/float64(ln)
	rsse := rsq - rsum*rsum/float64(rn)
	return lsse + rsse
}

func meanVar(y []float64, idx []int) (mean, variance float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := y[i] - mean
		variance += d * d
	}
	variance /= float64(len(idx))
	return mean, variance
}

func featureSubset(nf int, frac float64, rng *rand.Rand) []int {
	if frac <= 0 || frac >= 1 || rng == nil {
		all := make([]int, nf)
		for i := range all {
			all[i] = i
		}
		return all
	}
	k := int(math.Ceil(frac * float64(nf)))
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(nf)
	return perm[:k]
}
