package newdet

import (
	"testing"

	"repro/internal/kb"
)

// TestCandidateCacheExtendsOnKBGrowth is the write-back contract: an
// entity whose label had no candidates must, after the engine writes a
// matching instance into the KB, see that instance as a candidate — the
// detector's cache extends instead of serving the stale empty list.
func TestCandidateCacheExtendsOnKBGrowth(t *testing.T) {
	k := testKB()
	d := NewDetector(k, uniformAgg(len(MetricSet())))
	e := mkEntity("Zebulon Quirk", nil)

	if cands := d.candidates(e); len(cands) != 0 {
		t.Fatalf("unexpected candidates before growth: %v", cands)
	}
	// Second lookup hits the cache (same version, same result).
	if cands := d.candidates(e); len(cands) != 0 {
		t.Fatalf("cached lookup differs: %v", cands)
	}

	id := k.AddInstance(&kb.Instance{
		Class:       kb.ClassGFPlayer,
		Labels:      []string{"Zebulon Quirk"},
		Provenance:  kb.ProvenanceIngest,
		IngestEpoch: 1,
	})
	cands := d.candidates(e)
	found := false
	for _, c := range cands {
		if c == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("written-back instance %d not in candidates %v after growth", id, cands)
	}

	// And the detector now matches the entity to its written-back copy.
	res := d.Detect(e)
	if !res.Matched || res.Instance != id {
		t.Errorf("Detect = %+v, want match to instance %d", res, id)
	}
}
