package newdet

import (
	"sync"

	"repro/internal/agg"
	"repro/internal/dtype"
	"repro/internal/fusion"
	"repro/internal/kb"
	"repro/internal/ml"
	"repro/internal/strsim"
)

// Result is the classification of one entity.
type Result struct {
	// IsNew reports that the entity describes an instance absent from the
	// knowledge base.
	IsNew bool
	// Matched reports that the entity was matched to an existing instance
	// (IsNew and Matched are mutually exclusive; both false means the
	// detector abstained because the best score fell between thresholds).
	Matched bool
	// Instance is the matched instance when Matched.
	Instance kb.InstanceID
	// BestScore is the highest aggregated candidate similarity in
	// [-1, 1]; -1 when the entity had no candidates at all.
	BestScore float64
}

// Detector classifies created entities as new or existing.
type Detector struct {
	KB      *kb.KB
	Metrics []Metric
	Agg     agg.Aggregator
	// NewThreshold: the entity is new when the best candidate score is
	// below it. ExistThreshold: the entity is matched when the best score
	// is at or above it. NewThreshold <= ExistThreshold.
	NewThreshold   float64
	ExistThreshold float64
	// CandidateK is the number of label-index candidates considered
	// (default 20).
	CandidateK int
	// Thresholds are the data-type equivalence thresholds.
	Thresholds dtype.Thresholds

	// candMu guards the per-(class, label) candidate cache. Detect runs
	// concurrently on the pipeline's worker pool, and the same entity
	// labels recur across ingest epochs; the cache is keyed on the KB
	// version so it extends naturally when the engine writes new instances
	// back — a grown KB drops the cache and later lookups see the
	// write-backs as candidates.
	candMu      sync.Mutex
	candVersion uint64
	candCache   map[candKey][]kb.InstanceID

	// bowMu guards the per-instance sparse BOW cache. Instances are
	// immutable once added and IDs are never reused, so entries never
	// invalidate; the cache grows with the distinct candidates scored.
	bowMu    sync.RWMutex
	bowCache map[kb.InstanceID]strsim.SparseVec
}

// instanceBOW returns the instance's term vector in sorted sparse form,
// cached per instance ID.
func (d *Detector) instanceBOW(inst kb.InstanceID) strsim.SparseVec {
	d.bowMu.RLock()
	v, ok := d.bowCache[inst]
	d.bowMu.RUnlock()
	if ok {
		return v
	}
	v = strsim.ToSparse(instanceBOW(d.KB, inst))
	d.bowMu.Lock()
	if d.bowCache == nil {
		d.bowCache = make(map[kb.InstanceID]strsim.SparseVec, 256)
	}
	d.bowCache[inst] = v
	d.bowMu.Unlock()
	return v
}

// candKey addresses one candidate lookup: the entity class (the §3.4 class
// restriction) and the raw label queried.
type candKey struct {
	class kb.ClassID
	label string
}

// NewDetector returns a detector with the full metric set, the given
// aggregator, and zero thresholds (score > 0 means match).
func NewDetector(k *kb.KB, aggr agg.Aggregator) *Detector {
	return &Detector{
		KB: k, Metrics: MetricSet(), Agg: aggr,
		CandidateK: 20, Thresholds: dtype.DefaultThresholds(),
	}
}

// Detect classifies one entity: candidate selection, per-candidate
// aggregated similarity, then threshold classification.
func (d *Detector) Detect(e *fusion.Entity) Result {
	best, bestScore := d.BestCandidate(e)
	if best < 0 {
		return Result{IsNew: true, BestScore: -1}
	}
	switch {
	case bestScore < d.NewThreshold:
		return Result{IsNew: true, BestScore: bestScore}
	case bestScore >= d.ExistThreshold:
		return Result{Matched: true, Instance: best, BestScore: bestScore}
	default:
		return Result{BestScore: bestScore}
	}
}

// BestCandidate returns the best-matching candidate instance and its
// aggregated score, or (-1, 0) when no candidates exist.
func (d *Detector) BestCandidate(e *fusion.Entity) (kb.InstanceID, float64) {
	cands := d.candidates(e)
	if len(cands) == 0 {
		return -1, 0
	}
	env := &Env{
		KB: d.KB, Thresholds: d.Thresholds,
		PopRank: BuildPopRank(d.KB, cands),
	}
	env.PrepareEnv(d, e)
	best, bestScore := kb.InstanceID(-1), -2.0
	for _, iid := range cands {
		s := d.Score(env, e, iid)
		if s > bestScore {
			best, bestScore = iid, s
		}
	}
	return best, bestScore
}

// Score aggregates all metrics for one entity-instance pair.
func (d *Detector) Score(env *Env, e *fusion.Entity, inst kb.InstanceID) float64 {
	f := agg.BorrowFeatures(len(d.Metrics))
	for i, m := range d.Metrics {
		f.Scores[i], f.Confs[i] = m.Compare(env, e, inst)
	}
	score := d.Agg.Score(*f)
	agg.ReturnFeatures(f)
	return score
}

// candidates finds candidate instances for all entity labels with the class
// restriction of §3.4 (same class or sharing a parent class). Per-label
// lookups are memoized until the KB grows.
func (d *Detector) candidates(e *fusion.Entity) []kb.InstanceID {
	seen := make(map[kb.InstanceID]bool)
	var out []kb.InstanceID
	for _, label := range e.Labels {
		for _, iid := range d.labelCandidates(e.Class, label) {
			if !seen[iid] {
				seen[iid] = true
				out = append(out, iid)
			}
		}
	}
	return out
}

// labelCandidates returns the cached candidate list for one (class, label)
// pair, recomputing it when the KB version moved (engine write-back).
func (d *Detector) labelCandidates(class kb.ClassID, label string) []kb.InstanceID {
	k := d.CandidateK
	if k <= 0 {
		k = 20
	}
	ver := d.KB.Version()
	key := candKey{class: class, label: label}
	d.candMu.Lock()
	if d.candVersion != ver {
		d.candCache = nil
		d.candVersion = ver
	}
	cached, ok := d.candCache[key]
	d.candMu.Unlock()
	if ok {
		return cached
	}
	cands := d.KB.Candidates(label, kb.CandidateOpts{K: k, Class: class})
	d.candMu.Lock()
	// Re-check the version: a concurrent write-back between the lookup and
	// the store must not poison the fresh cache with a stale list.
	if d.candVersion == ver {
		if d.candCache == nil {
			d.candCache = make(map[candKey][]kb.InstanceID)
		}
		d.candCache[key] = cands
	}
	d.candMu.Unlock()
	return cands
}

// Example is one labeled entity for learning: the entity plus its correct
// instance (or IsNew when it has none).
type Example struct {
	Entity   *fusion.Entity
	IsNew    bool
	Instance kb.InstanceID
}

// LearnAggregator builds pair-level training data from labeled entities
// (positive: entity vs its correct instance; negative: entity vs its other
// candidates) and learns the combined aggregator.
func LearnAggregator(k *kb.KB, metrics []Metric, examples []Example, seed int64) (*agg.Combined, []agg.Example) {
	d := &Detector{KB: k, Metrics: metrics, Thresholds: dtype.DefaultThresholds(), CandidateK: 20}
	var pairs []agg.Example
	for _, ex := range examples {
		cands := d.candidates(ex.Entity)
		if !ex.IsNew {
			found := false
			for _, c := range cands {
				if c == ex.Instance {
					found = true
					break
				}
			}
			if !found {
				cands = append(cands, ex.Instance)
			}
		}
		if len(cands) == 0 {
			continue
		}
		env := &Env{
			KB: k, Thresholds: d.Thresholds,
			PopRank: BuildPopRank(k, cands),
		}
		env.PrepareEnv(d, ex.Entity)
		for _, c := range cands {
			f := agg.Features{
				Scores: make([]float64, len(metrics)),
				Confs:  make([]float64, len(metrics)),
			}
			for i, m := range metrics {
				f.Scores[i], f.Confs[i] = m.Compare(env, ex.Entity, c)
			}
			pairs = append(pairs, agg.Example{F: f, Match: !ex.IsNew && c == ex.Instance})
		}
	}
	return agg.LearnCombined(pairs, len(metrics), seed), pairs
}

// LearnThresholds fits the new/exist thresholds on labeled entities by
// maximizing classification accuracy with a genetic algorithm. It returns
// a ready detector.
func LearnThresholds(k *kb.KB, metrics []Metric, aggr agg.Aggregator, examples []Example, seed int64) *Detector {
	d := &Detector{
		KB: k, Metrics: metrics, Agg: aggr,
		CandidateK: 20, Thresholds: dtype.DefaultThresholds(),
	}
	// Precompute each entity's best candidate under the aggregator.
	type scored struct {
		ex    Example
		best  kb.InstanceID
		score float64
	}
	data := make([]scored, 0, len(examples))
	for _, ex := range examples {
		best, score := d.BestCandidate(ex.Entity)
		if best < 0 {
			score = -1
		}
		data = append(data, scored{ex: ex, best: best, score: score})
	}
	genes, _ := ml.Optimize(ml.GAConfig{
		Genes: 2, Min: -1, Max: 1, Seed: seed, Generations: 40, Population: 40,
	}, func(g []float64) float64 {
		newTh, existTh := g[0], g[1]
		if existTh < newTh {
			existTh = newTh
		}
		correct := 0
		for _, s := range data {
			switch {
			case s.score < newTh || s.best < 0:
				if s.ex.IsNew {
					correct++
				}
			case s.score >= existTh:
				if !s.ex.IsNew && s.best == s.ex.Instance {
					correct++
				}
			}
		}
		return float64(correct) / float64(len(data))
	})
	d.NewThreshold = genes[0]
	d.ExistThreshold = genes[1]
	if d.ExistThreshold < d.NewThreshold {
		d.ExistThreshold = d.NewThreshold
	}
	return d
}
