// Package newdet implements the new detection step of the pipeline (§3.4):
// candidate selection over a label index, six entity-to-instance similarity
// metrics (LABEL, TYPE, BOW, ATTRIBUTE, IMPLICIT_ATT, POPULARITY), the
// shared aggregation strategies, and the two-threshold classification into
// new entities and existing entities with instance correspondences.
package newdet

import (
	"sort"

	"repro/internal/dtype"
	"repro/internal/fusion"
	"repro/internal/kb"
	"repro/internal/strsim"
)

// Env carries the per-detection context the metrics need: the knowledge
// base, the equivalence thresholds, and the popularity ranking of the
// current candidate set.
type Env struct {
	KB         *kb.KB
	Thresholds dtype.Thresholds
	// PopRank maps candidate instances to their popularity-based rank
	// score in the current candidate set (1.0 for the most popular).
	PopRank map[kb.InstanceID]float64
	// ImplicitOrder caches the current entity's implicit property IDs in
	// ascending order (see ImplicitOrder), so the IMPLICIT_ATT metric
	// sorts once per entity instead of once per candidate. Nil means
	// "compute on demand".
	ImplicitOrder []kb.PropertyID
	// EntityPreps caches the prepared forms of the entity's labels
	// (parallel to e.Labels), so the LABEL metric tokenizes the entity
	// once per detection instead of once per candidate label. Nil means
	// "use the string kernel".
	EntityPreps []*strsim.PreparedLabel
	// EntityBOW caches the entity's term vector in sorted sparse form.
	// Valid only when InstBOW is also set (the two sides of the BOW
	// cosine must use the same representation).
	EntityBOW strsim.SparseVec
	// InstBOW returns the (cached) sparse term vector of an instance;
	// nil means the BOW metric rebuilds the instance vector per call.
	InstBOW func(kb.InstanceID) strsim.SparseVec

	// labelScratch is reused across the LABEL metric's per-candidate
	// label reads, so scoring k candidates costs one slice, not k.
	labelScratch []string
}

// PrepareEnv fills the per-entity caches of env (implicit order, prepared
// labels, sparse entity BOW) and wires the detector-level instance vector
// cache when d is non-nil. Detector entry points call it once per entity;
// hand-built Envs in tests may skip it and the metrics fall back to the
// reference paths.
func (env *Env) PrepareEnv(d *Detector, e *fusion.Entity) {
	env.ImplicitOrder = ImplicitOrder(e)
	if len(e.Labels) > 0 {
		env.EntityPreps = make([]*strsim.PreparedLabel, len(e.Labels))
		for i, l := range e.Labels {
			env.EntityPreps[i] = strsim.PrepareCached(l)
		}
	}
	if d != nil {
		env.EntityBOW = strsim.ToSparse(e.BOW)
		env.InstBOW = d.instanceBOW
	}
}

// ImplicitOrder returns an entity's implicit property IDs in ascending
// order — the fixed accumulation order the IMPLICIT_ATT metric needs so
// map iteration order cannot leak into its confidence sum.
func ImplicitOrder(e *fusion.Entity) []kb.PropertyID {
	return kb.SortedPropertyIDs(e.Implicit)
}

// Metric is one entity-to-instance similarity metric. Metrics take the
// instance by ID and read single fields through the KB's columnar
// accessors: scoring k candidates per entity must not materialize k
// instances.
type Metric interface {
	Name() string
	Compare(env *Env, e *fusion.Entity, inst kb.InstanceID) (score, confidence float64)
}

// MetricSet returns the six metrics in the ablation order of Table 8:
// LABEL, TYPE, BOW, ATTRIBUTE, IMPLICIT_ATT, POPULARITY.
func MetricSet() []Metric {
	return []Metric{
		labelMetric{}, typeMetric{}, bowMetric{},
		attributeMetric{}, implicitMetric{}, popularityMetric{},
	}
}

// MetricPrefix returns the first n metrics, for the ablation study.
func MetricPrefix(n int) []Metric {
	set := MetricSet()
	if n > len(set) {
		n = len(set)
	}
	return set[:n]
}

// LABEL: best Monge-Elkan similarity between any entity label and any
// instance label.
type labelMetric struct{}

func (labelMetric) Name() string { return "LABEL" }

func (labelMetric) Compare(env *Env, e *fusion.Entity, inst kb.InstanceID) (float64, float64) {
	env.labelScratch = env.KB.AppendInstanceLabels(env.labelScratch[:0], inst)
	labels := env.labelScratch
	best := 0.0
	if env.EntityPreps != nil {
		// Prepared path: the entity side was tokenized once per
		// detection; instance labels are prepared once per process
		// (instances are immutable and their labels recur across
		// detections).
		for _, ep := range env.EntityPreps {
			for _, il := range labels {
				if s := ep.MongeElkanSym(strsim.PrepareCached(il)); s > best {
					best = s
				}
			}
		}
		return best, 1
	}
	for _, el := range e.Labels {
		for _, il := range labels {
			if s := strsim.MongeElkanSym(el, il); s > best {
				best = s
			}
		}
	}
	return best, 1
}

// TYPE: overlap of the candidate instance's class chain with the entity's
// class chain.
type typeMetric struct{}

func (typeMetric) Name() string { return "TYPE" }

func (typeMetric) Compare(env *Env, e *fusion.Entity, inst kb.InstanceID) (float64, float64) {
	return env.KB.TypeOverlap(e.Class, env.KB.InstanceClass(inst)), 1
}

// BOW: cosine similarity of the entity's term vector (union of its rows)
// with the instance's vector built from labels, abstract and facts.
type bowMetric struct{}

func (bowMetric) Name() string { return "BOW" }

func (bowMetric) Compare(env *Env, e *fusion.Entity, inst kb.InstanceID) (float64, float64) {
	if env.InstBOW != nil {
		// Prepared path: both sides in sorted sparse form (the instance
		// vector cached per instance), cosine as a merge join. Binary
		// weights make the values exactly equal to the map-based path.
		return strsim.CosineSparse(env.EntityBOW, env.InstBOW(inst)), 1
	}
	iv := instanceBOW(env.KB, inst)
	return strsim.Cosine(e.BOW, iv), 1
}

func instanceBOW(k *kb.KB, inst kb.InstanceID) map[string]float64 {
	v := make(map[string]float64)
	for _, l := range k.AppendInstanceLabels(nil, inst) {
		strsim.MergeBinary(v, strsim.BinaryTermVector(l))
	}
	strsim.MergeBinary(v, strsim.BinaryTermVector(k.InstanceAbstract(inst)))
	k.ForEachFact(inst, func(_ kb.PropertyID, f dtype.Value) {
		strsim.MergeBinary(v, strsim.BinaryTermVector(f.String()))
	})
	return v
}

// ATTRIBUTE: for properties with a fact on both sides, the fraction of
// equal facts; confidence is the number of overlapping properties.
type attributeMetric struct{}

func (attributeMetric) Name() string { return "ATTRIBUTE" }

func (attributeMetric) Compare(env *Env, e *fusion.Entity, inst kb.InstanceID) (float64, float64) {
	pairs, equal := 0, 0
	for pid, v := range e.Facts {
		fact, ok := env.KB.Fact(inst, pid)
		if !ok {
			continue
		}
		pairs++
		if env.Thresholds.Equal(v, fact) {
			equal++
		}
	}
	if pairs == 0 {
		return 0, 0
	}
	return float64(equal) / float64(pairs), float64(pairs)
}

// IMPLICIT_ATT: entity-level implicit property-value combinations compared
// against overlapping instance facts.
type implicitMetric struct{}

func (implicitMetric) Name() string { return "IMPLICIT_ATT" }

func (implicitMetric) Compare(env *Env, e *fusion.Entity, inst kb.InstanceID) (float64, float64) {
	pairs := 0
	var sim, conf float64
	// Fixed property order: conf accumulates floats, so map iteration
	// order must not leak into the score.
	pids := env.ImplicitOrder
	if pids == nil {
		pids = ImplicitOrder(e)
	}
	for _, pid := range pids {
		ia := e.Implicit[pid]
		fact, ok := env.KB.Fact(inst, pid)
		if !ok {
			continue
		}
		pairs++
		conf += ia.Score
		if env.Thresholds.Equal(ia.Value, fact) {
			sim++
		}
	}
	if pairs == 0 {
		return 0, 0
	}
	return sim / float64(pairs), conf
}

// POPULARITY: candidates ranked by popularity; the most popular candidate
// scores 1.0. An entity with a single candidate scores 1.0.
type popularityMetric struct{}

func (popularityMetric) Name() string { return "POPULARITY" }

func (popularityMetric) Compare(env *Env, e *fusion.Entity, inst kb.InstanceID) (float64, float64) {
	if env.PopRank == nil {
		return 0, 0
	}
	s, ok := env.PopRank[inst]
	if !ok {
		return 0, 0
	}
	return s, 1
}

// BuildPopRank assigns rank scores 1, 1/2, 1/3, … to candidates by
// descending popularity. A single candidate receives 1.0.
func BuildPopRank(k *kb.KB, candidates []kb.InstanceID) map[kb.InstanceID]float64 {
	out := make(map[kb.InstanceID]float64, len(candidates))
	if len(candidates) == 0 {
		return out
	}
	sorted := make([]kb.InstanceID, len(candidates))
	copy(sorted, candidates)
	pops := make(map[kb.InstanceID]float64, len(candidates))
	for _, iid := range candidates {
		pops[iid] = k.InstancePopularity(iid)
	}
	sort.Slice(sorted, func(i, j int) bool {
		pi, pj := pops[sorted[i]], pops[sorted[j]]
		if pi != pj {
			return pi > pj
		}
		return sorted[i] < sorted[j]
	})
	for rank, iid := range sorted {
		out[iid] = 1 / float64(rank+1)
	}
	return out
}
