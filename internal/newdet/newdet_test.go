package newdet

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/cluster"
	"repro/internal/dtype"
	"repro/internal/fusion"
	"repro/internal/kb"
	"repro/internal/strsim"
)

// testKB builds a small KB with two similar players and one settlement.
func testKB() *kb.KB {
	k := kb.New()
	k.AddInstance(&kb.Instance{
		Class:    kb.ClassGFPlayer,
		Labels:   []string{"Mark Stone"},
		Abstract: "Mark Stone is a football player.",
		Facts: map[kb.PropertyID]dtype.Value{
			"dbo:position": dtype.NewNominal("QB"),
			"dbo:team":     dtype.NewRef("Patriots"),
			"dbo:weight":   dtype.NewQuantity(220),
		},
		Popularity: 90,
	})
	k.AddInstance(&kb.Instance{
		Class:    kb.ClassGFPlayer,
		Labels:   []string{"Mark Stone"},
		Abstract: "Mark Stone is a linebacker.",
		Facts: map[kb.PropertyID]dtype.Value{
			"dbo:position": dtype.NewNominal("LB"),
			"dbo:team":     dtype.NewRef("Raiders"),
		},
		Popularity: 5,
	})
	k.AddInstance(&kb.Instance{
		Class:      kb.ClassSettlement,
		Labels:     []string{"Stonefield"},
		Facts:      map[kb.PropertyID]dtype.Value{},
		Popularity: 10,
	})
	return k
}

// mkEntity builds a player entity.
func mkEntity(label string, facts map[kb.PropertyID]dtype.Value) *fusion.Entity {
	if facts == nil {
		facts = map[kb.PropertyID]dtype.Value{}
	}
	return &fusion.Entity{
		Class:    kb.ClassGFPlayer,
		Labels:   []string{label},
		Facts:    facts,
		BOW:      strsim.BinaryTermVector(label),
		Implicit: map[kb.PropertyID]cluster.ImplicitAttr{},
	}
}

func uniformAgg(n int) agg.Aggregator {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return &agg.WeightedAverage{Weights: w, Threshold: 0.5}
}

func TestMetricLabel(t *testing.T) {
	k := testKB()
	env := &Env{KB: k, Thresholds: dtype.DefaultThresholds()}
	e := mkEntity("Mark Stone", nil)
	s, _ := (labelMetric{}).Compare(env, e, 0)
	if s != 1 {
		t.Errorf("identical labels = %v", s)
	}
	s, _ = (labelMetric{}).Compare(env, e, 2)
	if s >= 1 {
		t.Errorf("different labels = %v", s)
	}
}

func TestMetricType(t *testing.T) {
	k := testKB()
	env := &Env{KB: k, Thresholds: dtype.DefaultThresholds()}
	e := mkEntity("X", nil)
	sPlayer, _ := (typeMetric{}).Compare(env, e, 0)
	sSettle, _ := (typeMetric{}).Compare(env, e, 2)
	if sPlayer != 1 {
		t.Errorf("same class TYPE = %v, want 1", sPlayer)
	}
	if sSettle != 0 {
		t.Errorf("unrelated class TYPE = %v, want 0", sSettle)
	}
}

func TestMetricAttribute(t *testing.T) {
	k := testKB()
	env := &Env{KB: k, Thresholds: dtype.DefaultThresholds()}
	e := mkEntity("Mark Stone", map[kb.PropertyID]dtype.Value{
		"dbo:position": dtype.NewNominal("QB"),
		"dbo:team":     dtype.NewRef("Patriots"),
	})
	s, conf := (attributeMetric{}).Compare(env, e, 0)
	if s != 1 || conf != 2 {
		t.Errorf("ATTRIBUTE vs matching instance = %v/%v", s, conf)
	}
	s, _ = (attributeMetric{}).Compare(env, e, 1)
	if s != 0 {
		t.Errorf("ATTRIBUTE vs conflicting instance = %v", s)
	}
	// No overlapping properties: zero confidence.
	empty := mkEntity("Mark Stone", nil)
	if _, conf := (attributeMetric{}).Compare(env, empty, 0); conf != 0 {
		t.Errorf("no overlap confidence = %v", conf)
	}
}

func TestMetricImplicit(t *testing.T) {
	k := testKB()
	env := &Env{KB: k, Thresholds: dtype.DefaultThresholds()}
	e := mkEntity("Mark Stone", nil)
	e.Implicit = map[kb.PropertyID]cluster.ImplicitAttr{
		"dbo:team": {Value: dtype.NewRef("Patriots"), Score: 0.7},
	}
	s, conf := (implicitMetric{}).Compare(env, e, 0)
	if s != 1 || conf != 0.7 {
		t.Errorf("IMPLICIT_ATT = %v/%v", s, conf)
	}
	s, _ = (implicitMetric{}).Compare(env, e, 1)
	if s != 0 {
		t.Errorf("conflicting implicit = %v", s)
	}
}

func TestMetricPopularity(t *testing.T) {
	k := testKB()
	rank := BuildPopRank(k, []kb.InstanceID{0, 1})
	if rank[0] != 1 || rank[1] != 0.5 {
		t.Errorf("pop rank = %v", rank)
	}
	env := &Env{KB: k, Thresholds: dtype.DefaultThresholds(), PopRank: rank}
	e := mkEntity("Mark Stone", nil)
	s0, _ := (popularityMetric{}).Compare(env, e, 0)
	s1, _ := (popularityMetric{}).Compare(env, e, 1)
	if s0 <= s1 {
		t.Errorf("more popular instance should rank higher: %v vs %v", s0, s1)
	}
	// Single candidate scores 1.
	solo := BuildPopRank(k, []kb.InstanceID{1})
	if solo[1] != 1 {
		t.Errorf("single candidate = %v, want 1", solo[1])
	}
	// Missing env: zero confidence.
	if _, conf := (popularityMetric{}).Compare(&Env{KB: k}, e, 0); conf != 0 {
		t.Error("popularity without rank should have no signal")
	}
}

func TestDetectorMatchesExisting(t *testing.T) {
	k := testKB()
	d := NewDetector(k, uniformAgg(6))
	e := mkEntity("Mark Stone", map[kb.PropertyID]dtype.Value{
		"dbo:position": dtype.NewNominal("QB"),
		"dbo:team":     dtype.NewRef("Patriots"),
		"dbo:weight":   dtype.NewQuantity(221),
	})
	res := d.Detect(e)
	if !res.Matched || res.Instance != 0 {
		t.Errorf("Detect = %+v, want match to instance 0", res)
	}
}

func TestDetectorDisambiguatesHomonyms(t *testing.T) {
	k := testKB()
	d := NewDetector(k, uniformAgg(6))
	// Same name as both instances, but facts agree with the linebacker.
	e := mkEntity("Mark Stone", map[kb.PropertyID]dtype.Value{
		"dbo:position": dtype.NewNominal("LB"),
		"dbo:team":     dtype.NewRef("Raiders"),
	})
	best, _ := d.BestCandidate(e)
	if best != 1 {
		t.Errorf("best candidate = %v, want the linebacker (1)", best)
	}
}

func TestDetectorNewWithoutCandidates(t *testing.T) {
	k := testKB()
	d := NewDetector(k, uniformAgg(6))
	e := mkEntity("Zebulon Quixote", nil)
	res := d.Detect(e)
	if !res.IsNew {
		t.Errorf("unknown label should be new: %+v", res)
	}
	if res.BestScore != -1 {
		t.Errorf("no-candidate BestScore = %v, want -1", res.BestScore)
	}
}

func TestDetectorAbstains(t *testing.T) {
	k := testKB()
	d := NewDetector(k, uniformAgg(6))
	d.NewThreshold = -0.9
	d.ExistThreshold = 0.9
	// A weakly similar entity lands between thresholds.
	e := mkEntity("Mark Stone", map[kb.PropertyID]dtype.Value{
		"dbo:position": dtype.NewNominal("K"),
		"dbo:team":     dtype.NewRef("Jets"),
	})
	res := d.Detect(e)
	if res.IsNew || res.Matched {
		t.Errorf("expected abstention, got %+v (score %v)", res, res.BestScore)
	}
}

func TestLearnAggregatorAndThresholds(t *testing.T) {
	k := testKB()
	// Labeled examples: entities matching instance 0, instance 1, and new.
	var examples []Example
	for i := 0; i < 6; i++ {
		examples = append(examples,
			Example{Entity: mkEntity("Mark Stone", map[kb.PropertyID]dtype.Value{
				"dbo:position": dtype.NewNominal("QB"),
				"dbo:team":     dtype.NewRef("Patriots"),
			}), Instance: 0},
			Example{Entity: mkEntity("Mark Stone", map[kb.PropertyID]dtype.Value{
				"dbo:position": dtype.NewNominal("LB"),
				"dbo:team":     dtype.NewRef("Raiders"),
			}), Instance: 1},
			Example{Entity: mkEntity("Mark Stoney", map[kb.PropertyID]dtype.Value{
				"dbo:position": dtype.NewNominal("WR"),
				"dbo:team":     dtype.NewRef("Bills"),
			}), IsNew: true},
		)
	}
	metrics := MetricSet()
	combined, pairs := LearnAggregator(k, metrics, examples, 1)
	if combined == nil || len(pairs) == 0 {
		t.Fatal("no aggregator learned")
	}
	d := LearnThresholds(k, metrics, combined, examples, 1)
	if d.ExistThreshold < d.NewThreshold {
		t.Errorf("thresholds out of order: %v > %v", d.NewThreshold, d.ExistThreshold)
	}
	correct := 0
	for _, ex := range examples {
		res := d.Detect(ex.Entity)
		if ex.IsNew && res.IsNew {
			correct++
		}
		if !ex.IsNew && res.Matched && res.Instance == ex.Instance {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(examples)); acc < 0.8 {
		t.Errorf("learned detector accuracy = %v", acc)
	}
}

func TestMetricPrefix(t *testing.T) {
	if len(MetricPrefix(2)) != 2 || len(MetricPrefix(10)) != 6 {
		t.Error("prefix lengths")
	}
	names := []string{"LABEL", "TYPE", "BOW", "ATTRIBUTE", "IMPLICIT_ATT", "POPULARITY"}
	for i, m := range MetricSet() {
		if m.Name() != names[i] {
			t.Errorf("metric %d = %s, want %s", i, m.Name(), names[i])
		}
	}
}

func BenchmarkDetect(b *testing.B) {
	k := testKB()
	d := NewDetector(k, uniformAgg(6))
	e := mkEntity("Mark Stone", map[kb.PropertyID]dtype.Value{
		"dbo:position": dtype.NewNominal("QB"),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(e)
	}
}

func TestCandidatesDedupAcrossLabels(t *testing.T) {
	k := testKB()
	d := NewDetector(k, uniformAgg(6))
	// Two labels that retrieve the same instances: candidates must be
	// unique.
	e := mkEntity("Mark Stone", nil)
	e.Labels = []string{"Mark Stone", "mark stone"}
	cands := d.candidates(e)
	seen := map[kb.InstanceID]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[c] = true
	}
	if len(cands) != 2 {
		t.Errorf("candidates = %v, want both Mark Stones", cands)
	}
}

func TestDetectorClassRestriction(t *testing.T) {
	k := testKB()
	d := NewDetector(k, uniformAgg(6))
	// A settlement-class entity must not receive player candidates.
	e := mkEntity("Mark Stone", nil)
	e.Class = kb.ClassSettlement
	for _, c := range d.candidates(e) {
		inst := k.Instance(c)
		if inst.Class == kb.ClassGFPlayer {
			t.Errorf("player instance %v offered to settlement entity", c)
		}
	}
}

func TestBuildPopRankDeterministicTies(t *testing.T) {
	k := kb.New()
	a := k.AddInstance(&kb.Instance{Class: kb.ClassSong, Labels: []string{"X"}, Popularity: 5})
	b := k.AddInstance(&kb.Instance{Class: kb.ClassSong, Labels: []string{"Y"}, Popularity: 5})
	r1 := BuildPopRank(k, []kb.InstanceID{b, a})
	r2 := BuildPopRank(k, []kb.InstanceID{a, b})
	if r1[a] != r2[a] || r1[b] != r2[b] {
		t.Error("tie ranking depends on input order")
	}
	if r1[a] != 1 { // lower instance ID wins the tie
		t.Errorf("tie winner rank = %v", r1[a])
	}
}
