// Package par provides the shared bounded worker pool and memoization
// primitives used across the pipeline (internal/core), the clusterer
// (internal/cluster) and the evaluation harness (internal/report).
//
// The pool primitives (ForEach, Map) fan work out over a fixed number of
// workers and leave result placement to the caller by index, so a parallel
// run reduces to exactly the same output as the serial one. Workers <= 1
// always takes a plain serial loop with no goroutines, which keeps the
// serial path trivially debuggable and byte-identical by construction.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the default pool size: one worker per usable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Workers normalizes a requested worker count: values <= 0 select
// DefaultWorkers.
func Workers(n int) int {
	if n <= 0 {
		return DefaultWorkers()
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n), distributing the calls over
// at most workers goroutines, and returns when all calls have finished.
// With workers <= 1 (or n <= 1) the calls run serially, in index order, on
// the calling goroutine.
//
// fn must confine its writes to index-distinct locations (slot i of a
// results slice); the caller then reduces the slots in index order, making
// the parallel and serial paths produce identical output.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every element of items on a pool of at most workers
// goroutines and returns the results in input order.
func Map[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	ForEach(workers, len(items), func(i int) {
		out[i] = fn(i, items[i])
	})
	return out
}

// Cell is a lazily computed, memoized value: the first Get computes it
// exactly once and concurrent Gets block until that computation finishes
// and then share its result (singleflight semantics).
//
// The zero value is ready to use.
type Cell[T any] struct {
	once sync.Once
	val  T
}

// Get returns the memoized value, computing it with compute on first use.
func (c *Cell[T]) Get(compute func() T) T {
	c.once.Do(func() { c.val = compute() })
	return c.val
}

// Group memoizes one Cell per key: each key's value is computed exactly
// once, while distinct keys compute concurrently. The group mutex guards
// only the cell map, never a computation, so a slow key does not block the
// others.
//
// The zero value is ready to use.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	cells map[K]*Cell[V]
}

// Get returns the memoized value for key, computing it with compute on the
// key's first use.
func (g *Group[K, V]) Get(key K, compute func() V) V {
	g.mu.Lock()
	if g.cells == nil {
		g.cells = make(map[K]*Cell[V])
	}
	c := g.cells[key]
	if c == nil {
		c = &Cell[V]{}
		g.cells[key] = c
	}
	g.mu.Unlock()
	return c.Get(compute)
}
