// Package par provides the shared bounded worker pool and memoization
// primitives used across the pipeline (internal/core), the clusterer
// (internal/cluster) and the evaluation harness (internal/report).
//
// The pool primitives (ForEach, Map) fan work out over a fixed number of
// workers and leave result placement to the caller by index, so a parallel
// run reduces to exactly the same output as the serial one. Workers <= 1
// always takes a plain serial loop with no goroutines, which keeps the
// serial path trivially debuggable and byte-identical by construction.
//
// The Ctx variants (ForEachCtx, MapCtx) add cooperative cancellation:
// workers stop claiming new indexes once the context is cancelled, so a
// fan-out over heavyweight items (tables, entities) unwinds within one
// item's worth of work. They are the checkpoint substrate behind the
// public API's context threading (ltee.Engine.Ingest and friends).
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the default pool size: one worker per usable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Workers normalizes a requested worker count: values <= 0 select
// DefaultWorkers.
func Workers(n int) int {
	if n <= 0 {
		return DefaultWorkers()
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n), distributing the calls over
// at most workers goroutines, and returns when all calls have finished.
// With workers <= 1 (or n <= 1) the calls run serially, in index order, on
// the calling goroutine.
//
// fn must confine its writes to index-distinct locations (slot i of a
// results slice); the caller then reduces the slots in index order, making
// the parallel and serial paths produce identical output.
func ForEach(workers, n int, fn func(i int)) {
	//lteelint:ignore ctxflow ForEachCtx is the cancellable form; this wrapper exists for callers with no context
	ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: every worker checks
// the context before claiming the next index and stops claiming once it is
// cancelled. Indexes already claimed run to completion (fn is never
// interrupted mid-call), so the caller's per-slot writes stay well-formed;
// the slots of unclaimed indexes keep their zero values and the caller must
// discard the whole result set when an error is returned.
//
// The returned error is nil when all n calls ran, ctx.Err() otherwise. A
// context that can never be cancelled (ctx.Done() == nil, e.g.
// context.Background()) adds no per-index overhead.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	done := ctx.Done()
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cancelled() {
				return ctx.Err()
			}
			fn(i)
		}
		return nil
	}
	var next, completed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if cancelled() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	// A cancellation arriving after the last call finished is not a failed
	// fan-out: every slot is filled, so the caller may use the results.
	if int(completed.Load()) == n {
		return nil
	}
	return ctx.Err()
}

// Map applies fn to every element of items on a pool of at most workers
// goroutines and returns the results in input order.
func Map[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	//lteelint:ignore ctxflow MapCtx is the cancellable form; this wrapper exists for callers with no context
	out, _ := MapCtx(context.Background(), workers, items, fn)
	return out
}

// MapCtx is Map with cooperative cancellation (see ForEachCtx). On a
// non-nil error the returned slice is partial — slots whose index was never
// claimed hold zero values — and must be discarded.
func MapCtx[T, R any](ctx context.Context, workers int, items []T, fn func(i int, item T) R) ([]R, error) {
	out := make([]R, len(items))
	err := ForEachCtx(ctx, workers, len(items), func(i int) {
		out[i] = fn(i, items[i])
	})
	return out, err
}

// Cell is a lazily computed, memoized value: the first Get computes it
// exactly once and concurrent Gets block until that computation finishes
// and then share its result (singleflight semantics).
//
// The zero value is ready to use.
type Cell[T any] struct {
	once sync.Once
	val  T
}

// Get returns the memoized value, computing it with compute on first use.
func (c *Cell[T]) Get(compute func() T) T {
	c.once.Do(func() { c.val = compute() })
	return c.val
}

// Group memoizes one Cell per key: each key's value is computed exactly
// once, while distinct keys compute concurrently. The group mutex guards
// only the cell map, never a computation, so a slow key does not block the
// others.
//
// The zero value is ready to use.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	cells map[K]*Cell[V]
}

// Get returns the memoized value for key, computing it with compute on the
// key's first use.
func (g *Group[K, V]) Get(key K, compute func() V) V {
	g.mu.Lock()
	if g.cells == nil {
		g.cells = make(map[K]*Cell[V])
	}
	c := g.cells[key]
	if c == nil {
		c = &Cell[V]{}
		g.cells[key] = c
	}
	g.mu.Unlock()
	return c.Get(compute)
}

// ErrCell is a Cell for fallible (typically context-aware) computations: a
// successful result is memoized and shared by every caller, while a failed
// computation is returned only to the caller that ran it and is NOT
// memoized, so the next caller retries with its own compute closure. A
// first caller whose context is cancelled mid-computation therefore cannot
// poison the cell for everyone else.
//
// Like Cell, concurrent Gets for the same cell serialize (singleflight);
// compute must not re-enter the same cell. The zero value is ready to use.
type ErrCell[T any] struct {
	mu   sync.Mutex
	done bool
	val  T
}

// Get returns the memoized value, computing it with compute on first use.
// A non-nil error from compute is returned without being memoized.
func (c *ErrCell[T]) Get(compute func() (T, error)) (T, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.done {
		v, err := compute()
		if err != nil {
			var zero T
			return zero, err
		}
		c.val, c.done = v, true
	}
	return c.val, nil
}

// ErrGroup memoizes one ErrCell per key: each key's value is computed at
// most once per success, distinct keys compute concurrently, and failures
// are retried by later callers (see ErrCell).
//
// The zero value is ready to use.
type ErrGroup[K comparable, V any] struct {
	mu    sync.Mutex
	cells map[K]*ErrCell[V]
}

// Get returns the memoized value for key, computing it with compute on the
// key's first (or first successful) use.
func (g *ErrGroup[K, V]) Get(key K, compute func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.cells == nil {
		g.cells = make(map[K]*ErrCell[V])
	}
	c := g.cells[key]
	if c == nil {
		c = &ErrCell[V]{}
		g.cells[key] = c
	}
	g.mu.Unlock()
	return c.Get(compute)
}
