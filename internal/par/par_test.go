package par

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 100
		hits := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	ForEach(4, -1, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var got []int
	ForEach(1, 5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial order broken: %v", got)
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := []int{5, 3, 9, 1, 7, 2}
	for _, workers := range []int{1, 4} {
		out := Map(workers, in, func(i, v int) int { return v * v })
		for i, v := range out {
			if v != in[i]*in[i] {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("non-positive requests must normalize to >= 1")
	}
	if Workers(5) != 5 {
		t.Error("positive requests pass through")
	}
}

func TestCellComputesOnce(t *testing.T) {
	var c Cell[int]
	var calls atomic.Int32
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			if v := c.Get(func() int { calls.Add(1); return 42 }); v != 42 {
				t.Error("wrong value")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times", calls.Load())
	}
}

func TestGroupPerKeyMemoization(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int32
	done := make(chan struct{})
	keys := []string{"a", "b", "a", "b", "a", "b"}
	for _, k := range keys {
		k := k
		go func() {
			defer func() { done <- struct{}{} }()
			g.Get(k, func() int {
				calls.Add(1)
				return len(k)
			})
		}()
	}
	for range keys {
		<-done
	}
	if calls.Load() != 2 {
		t.Errorf("compute ran %d times, want once per key", calls.Load())
	}
}

func TestForEachCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := ForEachCtx(ctx, 1, 100, func(i int) { ran++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("pre-cancelled serial fan-out ran %d items", ran)
	}
}

func TestForEachCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, 4, 10000, func(i int) {
		if ran.Add(1) == 50 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Errorf("cancellation did not stop the fan-out (%d ran)", n)
	}
}

func TestForEachCtxCompletesDespiteLateCancel(t *testing.T) {
	// A cancellation that lands after the last item completed is not a
	// failed fan-out.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	if err := ForEachCtx(ctx, 4, 100, func(i int) { ran.Add(1) }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 100 {
		t.Errorf("ran %d of 100", ran.Load())
	}
}

func TestMapCtxMatchesMap(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	want := Map(4, items, func(_, v int) int { return v * v })
	got, err := MapCtx(context.Background(), 4, items, func(_, v int) int { return v * v })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("MapCtx diverged from Map")
	}
}

func TestErrCellMemoizesSuccess(t *testing.T) {
	var c ErrCell[int]
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Get(compute)
		if err != nil || v != 42 {
			t.Fatalf("Get = %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
}

func TestErrCellRetriesAfterFailure(t *testing.T) {
	var c ErrCell[int]
	boom := errors.New("boom")
	if _, err := c.Get(func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("first Get error = %v, want boom", err)
	}
	// A failure must not poison the cell: the next caller retries and its
	// success is then memoized.
	v, err := c.Get(func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry Get = %d, %v", v, err)
	}
	v, err = c.Get(func() (int, error) { t.Error("recomputed after success"); return 0, nil })
	if err != nil || v != 7 {
		t.Fatalf("memoized Get = %d, %v", v, err)
	}
}

func TestErrGroupKeysIndependent(t *testing.T) {
	var g ErrGroup[string, int]
	boom := errors.New("boom")
	if _, err := g.Get("a", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("a: error = %v", err)
	}
	if v, err := g.Get("b", func() (int, error) { return 2, nil }); err != nil || v != 2 {
		t.Fatalf("b: Get = %d, %v", v, err)
	}
	// "a" failed above, so it retries; "b" stays memoized.
	if v, err := g.Get("a", func() (int, error) { return 1, nil }); err != nil || v != 1 {
		t.Fatalf("a retry: Get = %d, %v", v, err)
	}
	if v, err := g.Get("b", func() (int, error) { t.Error("b recomputed"); return 0, nil }); err != nil || v != 2 {
		t.Fatalf("b memoized: Get = %d, %v", v, err)
	}
}

func TestErrGroupConcurrentSameKey(t *testing.T) {
	var g ErrGroup[int, int]
	var computes atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := g.Get(1, func() (int, error) { computes.Add(1); return 9, nil })
			if err != nil || v != 9 {
				t.Errorf("Get = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if computes.Load() != 1 {
		t.Errorf("compute ran %d times, want 1", computes.Load())
	}
}
