package report

import (
	"fmt"
	"strings"
)

// TextTable renders rows of cells as a fixed-width text table with a
// header, matching the style of the paper's tables for easy side-by-side
// comparison.
type TextTable struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row of stringified cells.
func (t *TextTable) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *TextTable) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
