package report

import (
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/webtable"
)

func rowRef(table, row int) webtable.RowRef {
	return webtable.RowRef{Table: table, Row: row}
}

// producedClusters converts a pipeline output's clustering into row-ref
// cluster lists.
func producedClusters(out *core.Output) [][]webtable.RowRef {
	res := make([][]webtable.RowRef, 0, len(out.Clustering.Clusters))
	for _, members := range out.Clustering.Clusters {
		refs := make([]webtable.RowRef, len(members))
		for i, r := range members {
			refs[i] = r.Ref
		}
		res = append(res, refs)
	}
	return res
}

// entityResults converts a pipeline output into eval.NewEntityResult pairs.
func entityResults(out *core.Output) []eval.NewEntityResult {
	res := make([]eval.NewEntityResult, len(out.Entities))
	for i, e := range out.Entities {
		refs := make([]webtable.RowRef, len(e.Rows))
		for j, r := range e.Rows {
			refs[j] = r.Ref
		}
		res[i] = eval.NewEntityResult{Rows: refs, Result: out.Detections[i]}
	}
	return res
}

// avg returns the mean of a float slice (0 for empty).
func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
