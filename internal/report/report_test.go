package report

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/kb"
)

// kbEvalClass0 returns the first evaluation class.
func kbEvalClass0() kb.ClassID { return kb.EvalClasses()[0] }

var (
	suiteOnce sync.Once
	suiteVal  *Suite
)

// testSuite returns a shared, small suite so the expensive training runs
// only once across the package's tests.
func testSuite() *Suite {
	suiteOnce.Do(func() {
		suiteVal = NewSuite(Options{WorldScale: 0.18, CorpusScale: 0.10, Seed: 1})
	})
	return suiteVal
}

// TestSuiteConcurrentAccess drives the suite's memoized cells from many
// goroutines at once: the cheap tables, the fold splits and the
// table-to-class matching must each compute once and produce identical
// results for every caller (this is the -race exercise for the per-class
// lazy cells that replaced the coarse suite mutex).
func TestSuiteConcurrentAccess(t *testing.T) {
	s := testSuite()
	ctx := context.Background()
	byClassFirst, err := s.TablesByClass(ctx)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan string, 24)
	for i := 0; i < 8; i++ {
		go func() {
			tbl, err := s.Table1(ctx)
			if err != nil {
				done <- "error: " + err.Error()
				return
			}
			done <- tbl.String()
		}()
		go func() {
			s.Folds(kbEvalClass0())
			done <- ""
		}()
		go func() {
			byClass, err := s.TablesByClass(ctx)
			if err != nil || len(byClass) != len(byClassFirst) {
				done <- "tables-by-class mismatch"
				return
			}
			done <- ""
		}()
	}
	var table1 string
	for i := 0; i < 24; i++ {
		msg := <-done
		switch {
		case msg == "":
		case msg == "tables-by-class mismatch" || strings.HasPrefix(msg, "error: "):
			t.Error(msg)
		case table1 == "":
			table1 = msg
		case msg != table1:
			t.Error("Table1 rendered differently across goroutines")
		}
	}
}

func TestTable1(t *testing.T) {
	tbl, err := testSuite().Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if !strings.Contains(tbl.String(), "GF-Player") {
		t.Error("missing class name")
	}
}

func TestTable2DensityShape(t *testing.T) {
	s := testSuite()
	tbl, err := s.Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11+7+5 {
		t.Fatalf("rows = %d, want full schemas", len(tbl.Rows))
	}
}

func TestTable3(t *testing.T) {
	tbl, err := testSuite().Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestTable5(t *testing.T) {
	s := testSuite()
	tbl, err := s.Table5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestTable6IterationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipeline models; skipped in -short")
	}
	s := testSuite()
	rows, err := s.Table6Data(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("iterations = %d", len(rows))
	}
	// The paper's key shape: the second iteration improves matching over
	// the first (recall headroom comes from cryptically-headed columns
	// that only duplicate-based evidence can match), and a third
	// iteration adds little. A small tolerance absorbs the noise of the
	// scaled-down gold standard.
	if rows[1].F1 < rows[0].F1-0.05 {
		t.Errorf("second iteration F1 %.3f should not drop below first %.3f",
			rows[1].F1, rows[0].F1)
	}
	if diff := rows[2].F1 - rows[1].F1; diff > 0.15 {
		t.Errorf("third iteration gain %.3f too large — should be marginal", diff)
	}
}

func TestTable7AblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipeline models; skipped in -short")
	}
	s := testSuite()
	rows, err := s.Table7Data(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	// All-metrics F1 should not be materially worse than LABEL-only.
	if rows[5].F1 < rows[0].F1-0.08 {
		t.Errorf("all metrics F1 %.3f well below LABEL-only %.3f", rows[5].F1, rows[0].F1)
	}
	// Label is the paper's single most important metric.
	var miSum float64
	for _, r := range rows {
		if r.MI < 0 {
			t.Errorf("negative importance: %+v", r)
		}
		miSum += r.MI
	}
	if miSum <= 0 {
		t.Error("importances all zero")
	}
	if rows[0].F1 < 0.4 {
		t.Errorf("LABEL-only clustering F1 = %.3f, unreasonably low", rows[0].F1)
	}
}

func TestTable8AblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipeline models; skipped in -short")
	}
	s := testSuite()
	rows, err := s.Table8Data(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	if rows[5].ACC < rows[0].ACC-0.08 {
		t.Errorf("all metrics ACC %.3f well below LABEL-only %.3f", rows[5].ACC, rows[0].ACC)
	}
	if rows[0].ACC < 0.4 {
		t.Errorf("LABEL-only accuracy = %.3f, unreasonably low", rows[0].ACC)
	}
}

func TestTable9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipeline models; skipped in -short")
	}
	s := testSuite()
	rows, err := s.Table9Data(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // 3 classes × 2 conditions + average
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Class != "Average" {
		t.Fatal("missing average row")
	}
	if last.F1 < 0.3 {
		t.Errorf("average F1 = %.3f, want meaningful performance", last.F1)
	}
}

func TestTable10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipeline models; skipped in -short")
	}
	s := testSuite()
	rows, err := s.Table10Data(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 3 classes × 3 conditions + average
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	// The paper's lesson: scoring method choice barely matters.
	spread := maxF(last.F1Voting, last.F1KBT, last.F1Matching) -
		minF(last.F1Voting, last.F1KBT, last.F1Matching)
	if spread > 0.15 {
		t.Errorf("scoring methods diverge too much: %.3f", spread)
	}
}

func TestTable11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipeline models; skipped in -short")
	}
	s := testSuite()
	rows, err := s.Table11Data(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byClass := map[string]Table11Row{}
	for _, r := range rows {
		byClass[r.Class] = r
		if r.TotalRows == 0 {
			t.Errorf("%s: no rows processed", r.Class)
		}
	}
	// Song and GF-Player yield new entities; Settlement may yield none at
	// this scale — the paper's own finding is a near-zero increase there.
	if byClass["Song"].NewEntities == 0 {
		t.Error("Song: no new entities found")
	}
	if byClass["GF-Player"].NewEntities == 0 {
		t.Error("GF-Player: no new entities found")
	}
	// Song must yield the largest relative increase, Settlement the
	// smallest (the paper's headline contrast).
	if byClass["Song"].IncEntities <= byClass["Settlement"].IncEntities {
		t.Errorf("Song increase (%.2f) should exceed Settlement (%.2f)",
			byClass["Song"].IncEntities, byClass["Settlement"].IncEntities)
	}
	// Fact accuracy stays high (paper: ~0.9 average) wherever new
	// entities were returned.
	for _, r := range rows {
		if r.NewEntities > 0 && r.FactAccuracy < 0.5 {
			t.Errorf("%s: fact accuracy = %.3f, too low", r.Class, r.FactAccuracy)
		}
	}
}

func TestTable12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipeline models; skipped in -short")
	}
	s := testSuite()
	tbl, err := s.Table12(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11+7+5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestRankedData(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipeline models; skipped in -short")
	}
	s := testSuite()
	rs, err := s.RankedData(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rs.MAP < 0 || rs.MAP > 1 || rs.P5 < 0 || rs.P5 > 1 {
		t.Errorf("ranked scores out of range: %+v", rs)
	}
	if rs.MAP == 0 {
		t.Error("MAP = 0: ranking produced nothing")
	}
}

func TestTextTableRendering(t *testing.T) {
	tt := &TextTable{Title: "T", Headers: []string{"A", "BB"}}
	tt.Add("x", 1)
	tt.Add("yy", 0.5)
	out := tt.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "0.500") {
		t.Errorf("rendering:\n%s", out)
	}
}

func maxF(xs ...float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func minF(xs ...float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipeline models; skipped in -short")
	}
	s := testSuite()
	tbl, err := s.Table4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestMatcherWeights(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipeline models; skipped in -short")
	}
	s := testSuite()
	tbl, err := s.MatcherWeights(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Five weight columns after the class column.
	if len(tbl.Headers) != 6 {
		t.Errorf("headers = %v", tbl.Headers)
	}
}

func TestAblationAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregation ablation is expensive")
	}
	s := testSuite()
	tbl, err := s.AblationAggregation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// All three strategies should land in a plausible range; the paper
	// has them within 2pp of each other (0.81-0.83).
	for _, r := range tbl.Rows {
		if r[1] == "0.000" {
			t.Errorf("aggregation %s scored zero", r[0])
		}
	}
}

func TestPct(t *testing.T) {
	if got := pct(0.5); got != "50.00%" {
		t.Errorf("pct = %q", got)
	}
}

func TestTable13Rendering(t *testing.T) {
	s := testSuite()
	tbl, err := s.Table13(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}
