// Package report regenerates every table of the paper's evaluation
// (Tables 1-12 plus the §6 ranked evaluation) over the synthetic world.
// The same harness backs the ltee CLI (cmd/ltee) and the repository-level
// benchmarks (bench_test.go); EXPERIMENTS.md records paper-vs-measured for
// each table.
package report

import (
	"sync"

	"repro/internal/core"
	"repro/internal/gold"
	"repro/internal/kb"
	"repro/internal/webtable"
	"repro/internal/world"
)

// Suite bundles the synthetic world, corpus and per-class gold standards,
// caching trained models and pipeline runs across tables.
type Suite struct {
	World  *world.World
	Corpus *webtable.Corpus
	Golds  map[kb.ClassID]*gold.Standard
	Seed   int64

	mu           sync.Mutex
	models       map[kb.ClassID]core.Models  // trained on the full gold standard
	foldsOf      map[kb.ClassID][][]int      // 3-fold CV splits
	byClass      map[kb.ClassID][]int        // table-to-class matching result
	fullRuns     map[kb.ClassID]*core.Output // full-corpus pipeline runs
	goldRuns     map[kb.ClassID]*core.Output // gold-tables pipeline runs
	foldRunCache map[kb.ClassID][]*foldRun   // per-fold models and entities
}

// Options sizes the suite.
type Options struct {
	// WorldScale scales entity counts (1.0 ≈ a thousand entities).
	WorldScale float64
	// CorpusScale scales table counts (1.0 ≈ 800 tables).
	CorpusScale float64
	// Seed drives generation and learning.
	Seed int64
}

// DefaultOptions returns the laptop-scale defaults used by the CLI and the
// benchmarks.
func DefaultOptions() Options {
	return Options{WorldScale: 0.35, CorpusScale: 0.22, Seed: 1}
}

// NewSuite generates the world, corpus and gold standards.
func NewSuite(opts Options) *Suite {
	if opts.WorldScale <= 0 {
		opts.WorldScale = 0.35
	}
	if opts.CorpusScale <= 0 {
		opts.CorpusScale = 0.22
	}
	wcfg := world.DefaultConfig(opts.WorldScale)
	wcfg.Seed = opts.Seed
	w := world.Generate(wcfg)
	ccfg := webtable.DefaultSynthConfig(opts.CorpusScale)
	ccfg.Seed = opts.Seed + 100
	corpus := webtable.Synthesize(w, ccfg)
	s := &Suite{
		World:  w,
		Corpus: corpus,
		Golds:  make(map[kb.ClassID]*gold.Standard),
		Seed:   opts.Seed,

		models:   make(map[kb.ClassID]core.Models),
		foldsOf:  make(map[kb.ClassID][][]int),
		byClass:  nil,
		fullRuns: make(map[kb.ClassID]*core.Output),
		goldRuns: make(map[kb.ClassID]*core.Output),
	}
	for _, class := range kb.EvalClasses() {
		s.Golds[class] = gold.FromWorld(w, corpus, class, 0)
	}
	return s
}

// Config returns the default pipeline configuration for a class.
func (s *Suite) Config(class kb.ClassID) core.Config {
	cfg := core.DefaultConfig(s.World.KB, s.Corpus, class)
	cfg.Seed = s.Seed
	return cfg
}

// ModelsFor trains (once) the pipeline models of a class on the full gold
// standard.
func (s *Suite) ModelsFor(class kb.ClassID) core.Models {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.models[class]; ok {
		return m
	}
	g := s.Golds[class]
	all := make([]int, len(g.Clusters))
	for i := range all {
		all[i] = i
	}
	m := core.Train(s.Config(class), g, all)
	s.models[class] = m
	return m
}

// Folds returns (and caches) the 3-fold split of a class's gold clusters.
func (s *Suite) Folds(class kb.ClassID) [][]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.foldsOf[class]; ok {
		return f
	}
	f := s.Golds[class].Folds(3, s.Seed)
	s.foldsOf[class] = f
	return f
}

// TablesByClass runs (and caches) table-to-class matching over the corpus.
func (s *Suite) TablesByClass() map[kb.ClassID][]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byClass == nil {
		s.byClass = core.ClassifyTables(s.World.KB, s.Corpus, 0.3)
	}
	return s.byClass
}

// GoldRun runs (and caches) the full two-iteration pipeline over the gold
// tables of a class with models trained on the full gold standard.
func (s *Suite) GoldRun(class kb.ClassID) *core.Output {
	models := s.ModelsFor(class)
	s.mu.Lock()
	defer s.mu.Unlock()
	if out, ok := s.goldRuns[class]; ok {
		return out
	}
	p := core.New(s.Config(class), models)
	out := p.Run(s.Golds[class].TableIDs)
	s.goldRuns[class] = out
	return out
}

// FullRun runs (and caches) the pipeline over every corpus table matched to
// the class (the §5 large-scale profiling).
func (s *Suite) FullRun(class kb.ClassID) *core.Output {
	byClass := s.TablesByClass()
	models := s.ModelsFor(class)
	s.mu.Lock()
	defer s.mu.Unlock()
	if out, ok := s.fullRuns[class]; ok {
		return out
	}
	p := core.New(s.Config(class), models)
	out := p.Run(byClass[class])
	s.fullRuns[class] = out
	return out
}
