// Package report regenerates every table of the paper's evaluation
// (Tables 1-12 plus the §6 ranked evaluation) over the synthetic world.
// The same harness backs the ltee CLI (cmd/ltee) and the repository-level
// benchmarks (bench_test.go); EXPERIMENTS.md records paper-vs-measured for
// each table.
package report

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gold"
	"repro/internal/kb"
	"repro/internal/match"
	"repro/internal/par"
	"repro/internal/webtable"
	"repro/internal/world"
)

// Suite bundles the synthetic world, corpus and per-class gold standards,
// caching trained models and pipeline runs across tables.
//
// Every cache is a per-class memoized lazy cell: the first caller of a
// (cache, class) pair computes it exactly once while concurrent callers
// for the same class wait and share the result, and independent classes
// train and run concurrently. This replaces the coarse suite-wide mutex
// that used to serialize all training; all table generators may therefore
// run in parallel (cmd/ltee -workers drives them that way). Only successes
// are memoized: a computation that fails — in practice, context
// cancellation — reports its error to the observing caller and leaves the
// cell empty for the next caller to retry.
type Suite struct {
	World  *world.World
	Corpus *webtable.Corpus
	Golds  map[kb.ClassID]*gold.Standard
	Seed   int64
	// Workers bounds the worker pools of the suite and its pipeline runs
	// (0 = GOMAXPROCS, 1 = serial).
	Workers int

	prepared     par.ErrCell[struct{}]
	models       par.ErrGroup[kb.ClassID, core.Models]  // trained on the full gold standard
	foldsOf      par.Group[kb.ClassID, [][]int]         // 3-fold CV splits
	byClass      par.ErrCell[map[kb.ClassID][]int]      // table-to-class matching result
	fullRuns     par.ErrGroup[kb.ClassID, *core.Output] // full-corpus pipeline runs
	goldRuns     par.ErrGroup[kb.ClassID, *core.Output] // gold-tables pipeline runs
	rowsOf       par.ErrGroup[kb.ClassID, classRows]    // prepared rows + first-iteration mapping
	foldRunCache par.ErrGroup[kb.ClassID, []*foldRun]   // per-fold models and entities
}

// classRows carries the memoized output of clusterRows for one class.
type classRows struct {
	rows    []*cluster.Row
	mapping map[int]map[int]kb.PropertyID
}

// Options sizes the suite.
type Options struct {
	// WorldScale scales entity counts (1.0 ≈ a thousand entities).
	WorldScale float64
	// CorpusScale scales table counts (1.0 ≈ 800 tables).
	CorpusScale float64
	// Seed drives generation and learning.
	Seed int64
	// Workers bounds the suite's worker pools (0 = GOMAXPROCS, 1 = serial).
	Workers int
}

// DefaultOptions returns the laptop-scale defaults used by the CLI and the
// benchmarks.
func DefaultOptions() Options {
	return Options{WorldScale: 0.35, CorpusScale: 0.22, Seed: 1}
}

// NewSuite generates the world, corpus and gold standards.
func NewSuite(opts Options) *Suite {
	if opts.WorldScale <= 0 {
		opts.WorldScale = 0.35
	}
	if opts.CorpusScale <= 0 {
		opts.CorpusScale = 0.22
	}
	wcfg := world.DefaultConfig(opts.WorldScale)
	wcfg.Seed = opts.Seed
	w := world.Generate(wcfg)
	ccfg := webtable.DefaultSynthConfig(opts.CorpusScale)
	ccfg.Seed = opts.Seed + 100
	corpus := webtable.Synthesize(w, ccfg)
	s := &Suite{
		World:   w,
		Corpus:  corpus,
		Golds:   make(map[kb.ClassID]*gold.Standard),
		Seed:    opts.Seed,
		Workers: opts.Workers,
	}
	for _, class := range kb.EvalClasses() {
		s.Golds[class] = gold.FromWorld(w, corpus, class, 0)
	}
	return s
}

// prepare runs column-kind and label-attribute detection over the whole
// corpus once (parallel over tables, each table owned by one worker).
// Afterwards the pipeline's per-table detection guards never write, so
// per-class work can safely touch the shared corpus concurrently. A
// cancelled preparation is not memoized: the next caller retries.
func (s *Suite) prepare(ctx context.Context) error {
	_, err := s.prepared.Get(func() (struct{}, error) {
		err := par.ForEachCtx(ctx, s.Workers, len(s.Corpus.Tables), func(i int) {
			t := s.Corpus.Tables[i]
			match.EnsureDetected(t)
		})
		return struct{}{}, err
	})
	return err
}

// Config returns the default pipeline configuration for a class.
func (s *Suite) Config(class kb.ClassID) core.Config {
	cfg := core.DefaultConfig(s.World.KB, s.Corpus, class)
	cfg.Seed = s.Seed
	cfg.Workers = s.Workers
	cfg.ClusterOpts.Workers = s.Workers
	return cfg
}

// clusterOptions returns the default clustering options bounded by the
// suite's worker pool (so workers=1 really is fully serial).
func (s *Suite) clusterOptions() cluster.Options {
	opts := cluster.NewOptions()
	opts.Workers = s.Workers
	return opts
}

// ModelsFor trains (once) the pipeline models of a class on the full gold
// standard. Distinct classes train concurrently; a failed (for instance
// cancelled) training is not memoized, so a later caller retries.
func (s *Suite) ModelsFor(ctx context.Context, class kb.ClassID) (core.Models, error) {
	return s.models.Get(class, func() (core.Models, error) {
		if err := s.prepare(ctx); err != nil {
			return core.Models{}, err
		}
		g := s.Golds[class]
		all := make([]int, len(g.Clusters))
		for i := range all {
			all[i] = i
		}
		return core.Train(ctx, s.Config(class), g, all)
	})
}

// Folds returns (and caches) the 3-fold split of a class's gold clusters.
func (s *Suite) Folds(class kb.ClassID) [][]int {
	return s.foldsOf.Get(class, func() [][]int {
		return s.Golds[class].Folds(3, s.Seed)
	})
}

// TablesByClass runs (and caches) table-to-class matching over the corpus.
func (s *Suite) TablesByClass(ctx context.Context) (map[kb.ClassID][]int, error) {
	return s.byClass.Get(func() (map[kb.ClassID][]int, error) {
		if err := s.prepare(ctx); err != nil {
			return nil, err
		}
		return core.ClassifyTables(ctx, s.World.KB, s.Corpus, 0.3, s.Workers)
	})
}

// GoldRun runs (and caches) the full two-iteration pipeline over the gold
// tables of a class with models trained on the full gold standard.
func (s *Suite) GoldRun(ctx context.Context, class kb.ClassID) (*core.Output, error) {
	return s.goldRuns.Get(class, func() (*core.Output, error) {
		models, err := s.ModelsFor(ctx, class)
		if err != nil {
			return nil, err
		}
		p := core.New(s.Config(class), models)
		return p.Run(ctx, s.Golds[class].TableIDs)
	})
}

// FullRun runs (and caches) the pipeline over every corpus table matched to
// the class (the §5 large-scale profiling).
func (s *Suite) FullRun(ctx context.Context, class kb.ClassID) (*core.Output, error) {
	return s.fullRuns.Get(class, func() (*core.Output, error) {
		byClass, err := s.TablesByClass(ctx)
		if err != nil {
			return nil, err
		}
		models, err := s.ModelsFor(ctx, class)
		if err != nil {
			return nil, err
		}
		p := core.New(s.Config(class), models)
		return p.Run(ctx, byClass[class])
	})
}
