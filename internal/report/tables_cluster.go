package report

import (
	"context"
	"sort"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/gold"
	"repro/internal/kb"
	"repro/internal/match"
	"repro/internal/par"
	"repro/internal/webtable"
)

// Table7Row is one ablation step of the row clustering study.
type Table7Row struct {
	Run         string
	PCP, AR, F1 float64
	MI          float64 // metric importance of the newly added metric
}

// Table7Data reproduces the row clustering ablation (paper Table 7): for
// each prefix of the metric set (LABEL, +BOW, +PHI, +ATTRIBUTE,
// +IMPLICIT_ATT, +SAME_TABLE), learn the combined aggregator on the
// training folds, cluster the test-fold rows, and evaluate with the
// Hassanzadeh scores, averaging over classes and folds. The MI column is
// the learned importance of each metric in the all-metrics aggregator.
func (s *Suite) Table7Data(ctx context.Context) ([]Table7Row, error) {
	names := []string{"LABEL", "+ BOW", "+ PHI", "+ ATTRIBUTE", "+ IMPLICIT_ATT", "+ SAME_TABLE"}
	nMetrics := len(names)
	pcp := make([][]float64, nMetrics)
	ar := make([][]float64, nMetrics)
	f1 := make([][]float64, nMetrics)
	var importances [][]float64

	for _, class := range kb.EvalClasses() {
		g := s.Golds[class]
		folds := s.Folds(class)
		rows, mapping, err := s.clusterRows(ctx, class)
		if err != nil {
			return nil, err
		}
		rowByRef := make(map[webtable.RowRef]*cluster.Row, len(rows))
		for _, r := range rows {
			rowByRef[r.Ref] = r
		}
		_ = mapping
		for fold := range folds {
			train, test := splitFolds(folds, fold)
			trainSet := toSet(train)
			pairs := trainingPairs(g, trainSet, rows)
			// Test rows: rows of test-fold clusters.
			var testRows []*cluster.Row
			var goldRows [][]webtable.RowRef
			for _, ci := range test {
				c := g.Clusters[ci]
				var present []webtable.RowRef
				for _, ref := range c.Rows {
					if r, ok := rowByRef[ref]; ok {
						testRows = append(testRows, r)
						present = append(present, ref)
					}
				}
				if len(present) > 0 {
					goldRows = append(goldRows, present)
				}
			}
			if len(testRows) == 0 {
				continue
			}
			for n := 1; n <= nMetrics; n++ {
				metrics := cluster.MetricPrefix(n)
				scorer, combined := cluster.LearnScorer(metrics, pairs, s.Seed)
				cl := cluster.ClusterCtx(ctx, testRows, scorer, s.clusterOptions())
				var produced [][]webtable.RowRef
				for _, members := range cl.Clusters {
					refs := make([]webtable.RowRef, len(members))
					for i, r := range members {
						refs[i] = r.Ref
					}
					produced = append(produced, refs)
				}
				cs := eval.EvaluateClustering(goldRows, produced)
				pcp[n-1] = append(pcp[n-1], cs.PCP)
				ar[n-1] = append(ar[n-1], cs.AR)
				f1[n-1] = append(f1[n-1], cs.F1)
				if n == nMetrics {
					importances = append(importances, combined.Importance())
				}
			}
		}
	}
	mi := averageVectors(importances, nMetrics)
	out := make([]Table7Row, nMetrics)
	for i := range out {
		out[i] = Table7Row{
			Run: names[i],
			PCP: avg(pcp[i]), AR: avg(ar[i]), F1: avg(f1[i]),
			MI: mi[i],
		}
	}
	return out, ctx.Err()
}

// Table7 renders Table7Data.
func (s *Suite) Table7(ctx context.Context) (*TextTable, error) {
	t := &TextTable{
		Title:   "Table 7: Row clustering ablation (averages over classes and folds)",
		Headers: []string{"Run", "PCP", "AR", "F1", "MI"},
	}
	rows, err := s.Table7Data(ctx)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Add(r.Run, r.PCP, r.AR, r.F1, r.MI)
	}
	return t, nil
}

// ClusterRows returns the prepared rows of the class's gold tables,
// built with the learned first-iteration attribute mapping — the input a
// clustering study (e.g. examples/songs) feeds to cluster.ClusterCtx with
// different scorers. The rows are cached per class; callers must treat
// them as read-only.
func (s *Suite) ClusterRows(ctx context.Context, class kb.ClassID) ([]*cluster.Row, error) {
	rows, _, err := s.clusterRows(ctx, class)
	return rows, err
}

// clusterRows builds (and caches per class) the prepared rows of a class's
// gold tables using the first-iteration attribute mapping. The matching
// fan-out runs on the suite's worker pool with an ordered reduction.
func (s *Suite) clusterRows(ctx context.Context, class kb.ClassID) ([]*cluster.Row, map[int]map[int]kb.PropertyID, error) {
	cr, err := s.rowsOf.Get(class, func() (classRows, error) {
		if err := s.prepare(ctx); err != nil {
			return classRows{}, err
		}
		g := s.Golds[class]
		models, err := s.ModelsFor(ctx, class)
		if err != nil {
			return classRows{}, err
		}
		mctx := match.NewContext(s.World.KB, s.Corpus)
		mctx.Class = class
		firstMatchers := match.FirstIterationMatchers()
		perTable, err := par.MapCtx(ctx, s.Workers, g.TableIDs, func(_ int, tid int) map[int]kb.PropertyID {
			t := s.Corpus.Table(tid)
			match.EnsureDetected(t)
			return match.MatchAttributes(mctx, models.AttrFirst, firstMatchers, t)
		})
		if err != nil {
			return classRows{}, err
		}
		mapping := make(map[int]map[int]kb.PropertyID, len(g.TableIDs))
		for i, tid := range g.TableIDs {
			mapping[tid] = perTable[i]
		}
		builder := &cluster.Builder{
			KB: s.World.KB, Corpus: s.Corpus, Class: class, Mapping: mapping,
		}
		return classRows{rows: builder.Build(g.TableIDs), mapping: mapping}, nil
	})
	return cr.rows, cr.mapping, err
}

// trainingPairs builds labeled row pairs from the training clusters.
func trainingPairs(g *gold.Standard, trainSet map[int]bool, rows []*cluster.Row) []cluster.PairExample {
	var annotated []*cluster.Row
	for _, r := range rows {
		if ci, ok := g.RowCluster[r.Ref]; ok && trainSet[ci] {
			annotated = append(annotated, r)
		}
	}
	var pairs []cluster.PairExample
	byBlock := make(map[string][]*cluster.Row)
	for _, r := range annotated {
		for _, b := range r.Blocks {
			byBlock[b] = append(byBlock[b], r)
		}
	}
	seen := make(map[[2]webtable.RowRef]bool)
	add := func(a, b *cluster.Row, m bool) {
		ka, kp := a.Ref, b.Ref
		if kp.Table < ka.Table || (kp.Table == ka.Table && kp.Row < ka.Row) {
			ka, kp = kp, ka
		}
		key := [2]webtable.RowRef{ka, kp}
		if ka == kp || seen[key] {
			return
		}
		seen[key] = true
		pairs = append(pairs, cluster.PairExample{A: a, B: b, Match: m})
	}
	// Visit clusters and blocks in sorted order: pair order feeds the
	// learners, so map iteration order must not leak into the models.
	byCluster := make(map[int][]*cluster.Row)
	for _, r := range annotated {
		ci := g.RowCluster[r.Ref]
		byCluster[ci] = append(byCluster[ci], r)
	}
	cids := make([]int, 0, len(byCluster))
	for ci := range byCluster {
		cids = append(cids, ci)
	}
	sort.Ints(cids)
	for _, ci := range cids {
		members := byCluster[ci]
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				add(members[i], members[j], true)
			}
		}
	}
	blockNames := make([]string, 0, len(byBlock))
	for b := range byBlock {
		blockNames = append(blockNames, b)
	}
	sort.Strings(blockNames)
	for _, b := range blockNames {
		members := byBlock[b]
		for i := 0; i < len(members) && len(pairs) < 3000; i++ {
			for j := i + 1; j < len(members); j++ {
				if g.RowCluster[members[i].Ref] != g.RowCluster[members[j].Ref] {
					add(members[i], members[j], false)
				}
			}
		}
	}
	for i := 0; i+1 < len(annotated) && len(pairs) < 3000; i += 2 {
		if g.RowCluster[annotated[i].Ref] != g.RowCluster[annotated[i+1].Ref] {
			add(annotated[i], annotated[i+1], false)
		}
	}
	return pairs
}

func splitFolds(folds [][]int, test int) (train, testIdx []int) {
	for f, idx := range folds {
		if f == test {
			testIdx = append(testIdx, idx...)
		} else {
			train = append(train, idx...)
		}
	}
	return train, testIdx
}

func toSet(idx []int) map[int]bool {
	m := make(map[int]bool, len(idx))
	for _, i := range idx {
		m[i] = true
	}
	return m
}

func averageVectors(vs [][]float64, n int) []float64 {
	out := make([]float64, n)
	if len(vs) == 0 {
		return out
	}
	for _, v := range vs {
		for i := 0; i < n && i < len(v); i++ {
			out[i] += v[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(vs))
	}
	return out
}

// AblationAggregation compares the three aggregation strategies on the full
// metric set (§3.2: weighted average 0.81, random forest 0.82, combined
// 0.83).
func (s *Suite) AblationAggregation(ctx context.Context) (*TextTable, error) {
	t := &TextTable{
		Title:   "Ablation: clustering score aggregation strategies (F1)",
		Headers: []string{"Aggregation", "F1"},
	}
	type variant struct {
		name string
		mode int // 0=WA, 1=RF, 2=combined
	}
	for _, v := range []variant{{"Weighted average", 0}, {"Random forest", 1}, {"Combined", 2}} {
		var f1s []float64
		for _, class := range kb.EvalClasses() {
			g := s.Golds[class]
			folds := s.Folds(class)
			rows, _, err := s.clusterRows(ctx, class)
			if err != nil {
				return nil, err
			}
			rowByRef := make(map[webtable.RowRef]*cluster.Row, len(rows))
			for _, r := range rows {
				rowByRef[r.Ref] = r
			}
			for fold := range folds {
				train, test := splitFolds(folds, fold)
				pairs := trainingPairs(g, toSet(train), rows)
				metrics := cluster.MetricSet()
				scorer, combined := cluster.LearnScorer(metrics, pairs, s.Seed)
				switch v.mode {
				case 0:
					scorer = &cluster.Scorer{Metrics: metrics, Agg: combined.WA}
				case 1:
					if combined.RF != nil {
						scorer = &cluster.Scorer{Metrics: metrics, Agg: combined.RF}
					}
				}
				var testRows []*cluster.Row
				var goldRows [][]webtable.RowRef
				for _, ci := range test {
					c := g.Clusters[ci]
					var present []webtable.RowRef
					for _, ref := range c.Rows {
						if r, ok := rowByRef[ref]; ok {
							testRows = append(testRows, r)
							present = append(present, ref)
						}
					}
					if len(present) > 0 {
						goldRows = append(goldRows, present)
					}
				}
				if len(testRows) == 0 {
					continue
				}
				cl := cluster.ClusterCtx(ctx, testRows, scorer, s.clusterOptions())
				var produced [][]webtable.RowRef
				for _, members := range cl.Clusters {
					refs := make([]webtable.RowRef, len(members))
					for i, r := range members {
						refs[i] = r.Ref
					}
					produced = append(produced, refs)
				}
				f1s = append(f1s, eval.EvaluateClustering(goldRows, produced).F1)
			}
		}
		t.Add(v.name, avg(f1s))
	}
	return t, ctx.Err()
}
