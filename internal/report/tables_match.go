package report

import (
	"context"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/match"
	"repro/internal/webtable"
)

// Table6Row is one iteration's attribute-to-property matching performance.
type Table6Row struct {
	Iteration string
	P, R, F1  float64
}

// Table6Data measures attribute-to-property matching by iteration (paper
// Table 6): the first iteration uses the KB-only matchers; the second adds
// the duplicate- and corpus-based matchers fed with the first run's
// clustering and correspondences; the third uses the second run's outputs
// and should add almost nothing. Attribute annotations are split 2/3
// learning, 1/3 testing, averaged over the three classes.
func (s *Suite) Table6Data(ctx context.Context) ([]Table6Row, error) {
	type sums struct{ p, r, f []float64 }
	rows := []sums{{}, {}, {}}
	for _, class := range kb.EvalClasses() {
		g := s.Golds[class]
		n := len(g.Attributes)
		if n == 0 {
			continue
		}
		learnN := n * 2 / 3
		learn, test := g.Attributes[:learnN], g.Attributes[learnN:]

		mctx := match.NewContext(s.World.KB, s.Corpus)
		mctx.Class = class

		// Iteration 1: KB-only matchers.
		m1 := match.Learn(mctx, match.FirstIterationMatchers(), class, learn, s.Seed)
		p, r, f := match.EvaluateAttributes(mctx, m1, match.FirstIterationMatchers(), test)
		rows[0].p = append(rows[0].p, p)
		rows[0].r = append(rows[0].r, r)
		rows[0].f = append(rows[0].f, f)

		// Iteration 2: all matchers with the first pipeline run's output.
		out1, err := s.goldRunIterations(ctx, class, 1)
		if err != nil {
			return nil, err
		}
		mctx2 := iterationContext(mctx, out1)
		m2 := match.Learn(mctx2, match.AllMatchers(), class, learn, s.Seed)
		p, r, f = match.EvaluateAttributes(mctx2, m2, match.AllMatchers(), test)
		rows[1].p = append(rows[1].p, p)
		rows[1].r = append(rows[1].r, r)
		rows[1].f = append(rows[1].f, f)

		// Iteration 3: all matchers with the second run's output.
		out2, err := s.goldRunIterations(ctx, class, 2)
		if err != nil {
			return nil, err
		}
		mctx3 := iterationContext(mctx, out2)
		m3 := match.Learn(mctx3, match.AllMatchers(), class, learn, s.Seed)
		p, r, f = match.EvaluateAttributes(mctx3, m3, match.AllMatchers(), test)
		rows[2].p = append(rows[2].p, p)
		rows[2].r = append(rows[2].r, r)
		rows[2].f = append(rows[2].f, f)
	}
	names := []string{"First", "Second", "Third"}
	out := make([]Table6Row, 3)
	for i := range rows {
		out[i] = Table6Row{
			Iteration: names[i],
			P:         avg(rows[i].p), R: avg(rows[i].r), F1: avg(rows[i].f),
		}
	}
	return out, nil
}

// Table6 renders Table6Data.
func (s *Suite) Table6(ctx context.Context) (*TextTable, error) {
	t := &TextTable{
		Title:   "Table 6: Attribute-to-property matching performance by iteration",
		Headers: []string{"Iteration", "P", "R", "F1"},
	}
	rows, err := s.Table6Data(ctx)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Add(r.Iteration, r.P, r.R, r.F1)
	}
	return t, nil
}

// goldRunIterations runs the pipeline over the gold tables with the given
// iteration count (cached models, not cached output).
func (s *Suite) goldRunIterations(ctx context.Context, class kb.ClassID, iterations int) (*core.Output, error) {
	models, err := s.ModelsFor(ctx, class)
	if err != nil {
		return nil, err
	}
	cfg := s.Config(class)
	cfg.Iterations = iterations
	p := core.New(cfg, models)
	return p.Run(ctx, s.Golds[class].TableIDs)
}

// iterationContext wraps a pipeline output into a matching context carrying
// the iteration outputs.
func iterationContext(ctx *match.Context, out *core.Output) *match.Context {
	prelim := make(map[match.ColRef]kb.PropertyID)
	for tid, m := range out.Mapping {
		for col, pid := range m {
			prelim[match.ColRef{Table: tid, Col: col}] = pid
		}
	}
	rowCluster := make(map[webtable.RowRef]int, len(out.Clustering.Assign))
	for ref, c := range out.Clustering.Assign {
		rowCluster[ref] = c
	}
	return ctx.WithIterationOutput(out.RowInstance, rowCluster, prelim)
}

// MatcherWeights reports the learned second-iteration matcher weights per
// class (the §3.1 weight analysis).
func (s *Suite) MatcherWeights(ctx context.Context) (*TextTable, error) {
	t := &TextTable{
		Title:   "Learned matcher weights (second iteration)",
		Headers: []string{"Class", "KB-Overlap", "KB-Label", "KB-Duplicate", "WT-Label", "WT-Duplicate"},
	}
	for _, class := range kb.EvalClasses() {
		models, err := s.ModelsFor(ctx, class)
		if err != nil {
			return nil, err
		}
		w := make([]float64, 5)
		copy(w, models.AttrSecond.Weights)
		t.Add(kb.ClassShortName(class), w[0], w[1], w[2], w[3], w[4])
	}
	return t, nil
}
