package report

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/dtype"
	"repro/internal/eval"
	"repro/internal/fusion"
	"repro/internal/kb"
	"repro/internal/newdet"
	"repro/internal/webtable"
)

// Table8Row is one ablation step of the new detection study.
type Table8Row struct {
	Run        string
	ACC        float64
	F1Existing float64
	F1New      float64
	MI         float64
}

// Table8Data reproduces the new detection ablation (paper Table 8): for
// each prefix of the metric set (LABEL, +TYPE, +BOW, +ATTRIBUTE,
// +IMPLICIT_ATT, +POPULARITY), learn the combined aggregator and
// thresholds on the training folds' entities and classify the test-fold
// entities, averaging accuracy and per-class F1 over classes and folds.
func (s *Suite) Table8Data(ctx context.Context) ([]Table8Row, error) {
	names := []string{"LABEL", "+ TYPE", "+ BOW", "+ ATTRIBUTE", "+ IMPLICIT_ATT", "+ POPULARITY"}
	nMetrics := len(names)
	acc := make([][]float64, nMetrics)
	f1e := make([][]float64, nMetrics)
	f1n := make([][]float64, nMetrics)
	var importances [][]float64

	for _, class := range kb.EvalClasses() {
		g := s.Golds[class]
		folds := s.Folds(class)
		entities, err := s.goldEntities(ctx, class)
		if err != nil {
			return nil, err
		}
		for fold := range folds {
			train, test := splitFolds(folds, fold)
			var trainEx, testEx []newdet.Example
			var testIdx []int
			for _, ci := range train {
				if e := entities[ci]; e != nil {
					trainEx = append(trainEx, newdet.Example{
						Entity: e, IsNew: g.Clusters[ci].IsNew, Instance: g.Clusters[ci].Instance,
					})
				}
			}
			for _, ci := range test {
				if e := entities[ci]; e != nil {
					testEx = append(testEx, newdet.Example{
						Entity: e, IsNew: g.Clusters[ci].IsNew, Instance: g.Clusters[ci].Instance,
					})
					testIdx = append(testIdx, ci)
				}
			}
			if len(trainEx) == 0 || len(testEx) == 0 {
				continue
			}
			for n := 1; n <= nMetrics; n++ {
				metrics := newdet.MetricPrefix(n)
				combined, _ := newdet.LearnAggregator(s.World.KB, metrics, trainEx, s.Seed)
				det := newdet.LearnThresholds(s.World.KB, metrics, combined, trainEx, s.Seed)
				results := make([]newdet.Result, len(testEx))
				for i, ex := range testEx {
					results[i] = det.Detect(ex.Entity)
				}
				ds := eval.EvaluateDetection(g, testIdx, results)
				acc[n-1] = append(acc[n-1], ds.Accuracy)
				f1e[n-1] = append(f1e[n-1], ds.F1Existing)
				f1n[n-1] = append(f1n[n-1], ds.F1New)
				if n == nMetrics {
					importances = append(importances, combined.Importance())
				}
			}
		}
	}
	mi := averageVectors(importances, nMetrics)
	out := make([]Table8Row, nMetrics)
	for i := range out {
		out[i] = Table8Row{
			Run: names[i],
			ACC: avg(acc[i]), F1Existing: avg(f1e[i]), F1New: avg(f1n[i]),
			MI: mi[i],
		}
	}
	return out, nil
}

// Table8 renders Table8Data.
func (s *Suite) Table8(ctx context.Context) (*TextTable, error) {
	t := &TextTable{
		Title:   "Table 8: New detection ablation (averages over classes and folds)",
		Headers: []string{"Run", "ACC", "F1-Existing", "F1-New", "MI"},
	}
	rows, err := s.Table8Data(ctx)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Add(r.Run, r.ACC, r.F1Existing, r.F1New, r.MI)
	}
	return t, nil
}

// goldEntities creates one entity per gold cluster (indexed by cluster ID)
// using the first-iteration mapping — the §3.4 evaluation setting ("before
// we run new detection on those clusters, we create entities from them").
func (s *Suite) goldEntities(ctx context.Context, class kb.ClassID) (map[int]*fusion.Entity, error) {
	g := s.Golds[class]
	rows, mapping, err := s.clusterRows(ctx, class)
	if err != nil {
		return nil, err
	}
	rowByRef := make(map[webtable.RowRef]*cluster.Row, len(rows))
	for _, r := range rows {
		rowByRef[r.Ref] = r
	}
	src := &fusion.Sources{
		KB: s.World.KB, Corpus: s.Corpus, Class: class,
		Mapping: mapping, Thresholds: dtype.DefaultThresholds(),
	}
	out := make(map[int]*fusion.Entity, len(g.Clusters))
	for ci, c := range g.Clusters {
		var members []*cluster.Row
		for _, ref := range c.Rows {
			if r, ok := rowByRef[ref]; ok {
				members = append(members, r)
			}
		}
		if len(members) == 0 {
			continue
		}
		out[ci] = fusion.Create(src, members)
	}
	return out, nil
}
