package report

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dtype"
	"repro/internal/eval"
	"repro/internal/fusion"
	"repro/internal/gold"
	"repro/internal/kb"
	"repro/internal/newdet"
	"repro/internal/par"
	"repro/internal/webtable"
)

// Table9Row is one row of the new-instances-found evaluation.
type Table9Row struct {
	Class      string
	Clustering string // "GS" or "ALL"
	NewDet     string
	P, R, F1   float64
}

// Table9Data reproduces the §4.1 evaluation (paper Table 9): per class,
// once with the gold clustering (GS) and once with the learned clustering
// (ALL), both with the learned new detection (ALL), under 3-fold
// cross-validation.
func (s *Suite) Table9Data(ctx context.Context) ([]Table9Row, error) {
	var out []Table9Row
	var avgP, avgR, avgF []float64
	for _, class := range kb.EvalClasses() {
		frs, err := s.foldRuns(ctx, class)
		if err != nil {
			return nil, err
		}
		for _, useGS := range []bool{true, false} {
			var ps, rs, fs []float64
			for _, fr := range frs {
				var prf eval.PRF
				if useGS {
					prf = eval.EvaluateNewInstancesFound(fr.testGold, fr.gsResults)
				} else {
					prf = eval.EvaluateNewInstancesFound(fr.testGold, fr.allResults)
				}
				ps = append(ps, prf.P)
				rs = append(rs, prf.R)
				fs = append(fs, prf.F1)
			}
			name := "ALL"
			if useGS {
				name = "GS"
			}
			out = append(out, Table9Row{
				Class: kb.ClassShortName(class), Clustering: name, NewDet: "ALL",
				P: avg(ps), R: avg(rs), F1: avg(fs),
			})
			if !useGS {
				avgP = append(avgP, avg(ps))
				avgR = append(avgR, avg(rs))
				avgF = append(avgF, avg(fs))
			}
		}
	}
	out = append(out, Table9Row{
		Class: "Average", Clustering: "ALL", NewDet: "ALL",
		P: avg(avgP), R: avg(avgR), F1: avg(avgF),
	})
	return out, nil
}

// Table9 renders Table9Data.
func (s *Suite) Table9(ctx context.Context) (*TextTable, error) {
	t := &TextTable{
		Title:   "Table 9: New instances found evaluation",
		Headers: []string{"Class", "Clust.", "New Det.", "P", "R", "F1"},
	}
	rows, err := s.Table9Data(ctx)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Add(r.Class, r.Clustering, r.NewDet, r.P, r.R, r.F1)
	}
	return t, nil
}

// Table10Row is one row of the facts-found evaluation.
type Table10Row struct {
	Class      string
	Clustering string
	NewDet     string
	F1Voting   float64
	F1KBT      float64
	F1Matching float64
}

// Table10Data reproduces the §4.2 facts-found evaluation (paper Table 10):
// three pipeline conditions — gold clustering + gold detection, gold
// clustering + learned detection, learned clustering + learned detection —
// each with the three fusion scoring methods.
func (s *Suite) Table10Data(ctx context.Context) ([]Table10Row, error) {
	var out []Table10Row
	scorings := []fusion.ScoringMethod{fusion.Voting, fusion.KBT, fusion.Matching}
	avgF := make(map[fusion.ScoringMethod][]float64)
	th := dtype.DefaultThresholds()
	for _, class := range kb.EvalClasses() {
		frs, err := s.foldRuns(ctx, class)
		if err != nil {
			return nil, err
		}
		type cond struct{ clust, det string }
		for _, c := range []cond{{"GS", "GS"}, {"GS", "ALL"}, {"ALL", "ALL"}} {
			f1s := make(map[fusion.ScoringMethod][]float64)
			for _, fr := range frs {
				for _, scoring := range scorings {
					entities, isNew := fr.factsInput(c.clust, c.det, scoring)
					prf := eval.EvaluateFactsFound(fr.testGold, entities, isNew, th)
					f1s[scoring] = append(f1s[scoring], prf.F1)
				}
			}
			row := Table10Row{
				Class: kb.ClassShortName(class), Clustering: c.clust, NewDet: c.det,
				F1Voting: avg(f1s[fusion.Voting]), F1KBT: avg(f1s[fusion.KBT]),
				F1Matching: avg(f1s[fusion.Matching]),
			}
			out = append(out, row)
			if c.clust == "ALL" && c.det == "ALL" {
				for _, sc := range scorings {
					avgF[sc] = append(avgF[sc], avg(f1s[sc]))
				}
			}
		}
	}
	out = append(out, Table10Row{
		Class: "Average", Clustering: "ALL", NewDet: "ALL",
		F1Voting: avg(avgF[fusion.Voting]), F1KBT: avg(avgF[fusion.KBT]),
		F1Matching: avg(avgF[fusion.Matching]),
	})
	return out, nil
}

// Table10 renders Table10Data.
func (s *Suite) Table10(ctx context.Context) (*TextTable, error) {
	t := &TextTable{
		Title:   "Table 10: Facts found evaluation",
		Headers: []string{"Class", "Clust.", "New Det.", "F1 VOTING", "F1 KBT", "F1 MATCHING"},
	}
	rows, err := s.Table10Data(ctx)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Add(r.Class, r.Clustering, r.NewDet, r.F1Voting, r.F1KBT, r.F1Matching)
	}
	return t, nil
}

// foldRun carries everything one CV fold needs for Tables 9 and 10.
type foldRun struct {
	suite    *Suite
	class    kb.ClassID
	testGold *gold.Standard
	testIdx  []int
	models   core.Models
	mapping  map[int]map[int]kb.PropertyID
	scores   map[fusion.ColKey]float64
	rowInst  map[webtable.RowRef]kb.InstanceID

	// Gold-clustering entities (per test cluster) and their detections.
	gsEntities map[int]*fusion.Entity
	gsDetect   map[int]newdet.Result
	gsResults  []eval.NewEntityResult

	// Learned-clustering entities and detections.
	allEntities []*fusion.Entity
	allDetect   []newdet.Result
	allResults  []eval.NewEntityResult
	allClusters [][]*cluster.Row
}

// foldRuns trains per-fold models and materializes the fold's entities and
// detections (cached per class). The three CV folds are independent and
// train concurrently on the suite's worker pool.
func (s *Suite) foldRuns(ctx context.Context, class kb.ClassID) ([]*foldRun, error) {
	return s.foldRunCache.Get(class, func() ([]*foldRun, error) {
		g := s.Golds[class]
		folds := s.Folds(class)
		rows, _, err := s.clusterRows(ctx, class)
		if err != nil {
			return nil, err
		}
		rowByRef := make(map[webtable.RowRef]*cluster.Row, len(rows))
		for _, r := range rows {
			rowByRef[r.Ref] = r
		}
		out := make([]*foldRun, len(folds))
		errs := make([]error, len(folds))
		if err := par.ForEachCtx(ctx, s.Workers, len(folds), func(i int) {
			out[i], errs[i] = s.runFold(ctx, class, g, folds, i, rowByRef)
		}); err != nil {
			return nil, err
		}
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		return out, nil
	})
}

// runFold trains one CV fold's models and materializes its entities and
// detections.
func (s *Suite) runFold(ctx context.Context, class kb.ClassID, g *gold.Standard, folds [][]int, fold int, rowByRef map[webtable.RowRef]*cluster.Row) (*foldRun, error) {
	train, test := splitFolds(folds, fold)
	models, err := core.Train(ctx, s.Config(class), g, train)
	if err != nil {
		return nil, err
	}
	fr := &foldRun{
		suite: s, class: class,
		testGold: g.Subset(test), testIdx: test, models: models,
	}
	// Final mapping for the fold: apply the second-iteration model
	// with iteration outputs from a 1-iteration pipeline run.
	out, err := core.New(withIterations(s.Config(class), 2), models).Run(ctx, g.TableIDs)
	if err != nil {
		return nil, err
	}
	fr.mapping = out.Mapping
	fr.scores = out.MatchScores
	fr.rowInst = out.RowInstance

	// Gold clustering condition: entities from the test gold clusters.
	src := &fusion.Sources{
		KB: s.World.KB, Corpus: s.Corpus, Class: class,
		Mapping: fr.mapping, Thresholds: dtype.DefaultThresholds(),
	}
	fr.gsEntities = make(map[int]*fusion.Entity)
	fr.gsDetect = make(map[int]newdet.Result)
	for subID, c := range fr.testGold.Clusters {
		var members []*cluster.Row
		for _, ref := range c.Rows {
			if r, ok := rowByRef[ref]; ok {
				members = append(members, r)
			}
		}
		if len(members) == 0 {
			continue
		}
		e := fusion.Create(src, members)
		fr.gsEntities[subID] = e
		fr.gsDetect[subID] = models.Detector.Detect(e)
		fr.gsResults = append(fr.gsResults, eval.NewEntityResult{
			Rows: c.Rows, Result: fr.gsDetect[subID],
		})
	}

	// Learned clustering condition: cluster the test rows.
	var testRows []*cluster.Row
	for _, c := range fr.testGold.Clusters {
		for _, ref := range c.Rows {
			if r, ok := rowByRef[ref]; ok {
				testRows = append(testRows, r)
			}
		}
	}
	cl := cluster.ClusterCtx(ctx, testRows, models.ClusterScorer, s.clusterOptions())
	fr.allClusters = cl.Clusters
	fr.allEntities = fusion.CreateAll(src, cl)
	fr.allDetect = make([]newdet.Result, len(fr.allEntities))
	for i, e := range fr.allEntities {
		fr.allDetect[i] = models.Detector.Detect(e)
		var refs []webtable.RowRef
		for _, r := range e.Rows {
			refs = append(refs, r.Ref)
		}
		fr.allResults = append(fr.allResults, eval.NewEntityResult{
			Rows: refs, Result: fr.allDetect[i],
		})
	}
	return fr, ctx.Err()
}

// factsInput assembles the entity list and is-new flags for one Table 10
// condition, re-fusing entities under the requested scoring method.
func (fr *foldRun) factsInput(clust, det string, scoring fusion.ScoringMethod) ([]*fusion.Entity, []bool) {
	src := &fusion.Sources{
		KB: fr.suite.World.KB, Corpus: fr.suite.Corpus, Class: fr.class,
		Mapping: fr.mapping, Thresholds: dtype.DefaultThresholds(),
		Scoring: scoring, MatchScores: fr.scores, RowInstance: fr.rowInst,
	}
	var entities []*fusion.Entity
	var isNew []bool
	if clust == "GS" {
		for subID, c := range fr.testGold.Clusters {
			e, ok := fr.gsEntities[subID]
			if !ok {
				continue
			}
			refused := fusion.Create(src, e.Rows)
			entities = append(entities, refused)
			if det == "GS" {
				isNew = append(isNew, c.IsNew)
			} else {
				isNew = append(isNew, fr.gsDetect[subID].IsNew)
			}
		}
		return entities, isNew
	}
	for i, e := range fr.allEntities {
		refused := fusion.Create(src, e.Rows)
		entities = append(entities, refused)
		isNew = append(isNew, fr.allDetect[i].IsNew)
	}
	return entities, isNew
}

func withIterations(cfg core.Config, n int) core.Config {
	cfg.Iterations = n
	return cfg
}
